// Benchmark harness regenerating every table and figure of the paper's
// evaluation (§5). Each benchmark prints the reproduced rows/series with
// -v (b.Logf) and reports headline values as custom metrics, so
//
//	go test -bench=. -benchmem
//
// regenerates: Table 1 (standards), Figure 4 (spectrum with adjacent
// channel), Figure 5 (BER vs filter bandwidth), Figure 6 (BER vs LNA
// compression point), Table 2 (system-level vs co-simulation run time), the
// §5.1 IP3 sweep and noise artifact, and the §5.2 EVM measurement — plus the
// design-choice ablations called out in DESIGN.md.
package wlansim_test

import (
	"fmt"
	"testing"

	"wlansim"
	"wlansim/internal/rf"
)

// benchPackets keeps the per-iteration cost manageable; raise it for
// tighter BER confidence.
const benchPackets = 2

func smallConfig() wlansim.Config {
	cfg := wlansim.DefaultConfig()
	cfg.Packets = benchPackets
	cfg.PSDULen = 60
	return cfg
}

func runBench(b *testing.B, cfg wlansim.Config) *wlansim.Result {
	b.Helper()
	bench, err := wlansim.NewBench(cfg)
	if err != nil {
		b.Fatal(err)
	}
	var res *wlansim.Result
	for i := 0; i < b.N; i++ {
		res, err = bench.Run()
		if err != nil {
			b.Fatal(err)
		}
	}
	return res
}

// BenchmarkTable1_StandardsTable regenerates the paper's Table 1.
func BenchmarkTable1_StandardsTable(b *testing.B) {
	var txt string
	for i := 0; i < b.N; i++ {
		txt = wlansim.StandardsTableText()
	}
	b.Logf("\n%s", txt)
}

// BenchmarkFigure4_SpectrumAdjacentChannel regenerates Figure 4: the OFDM
// signal with its +16 dB adjacent channel (and +32 dB second adjacent) at
// the 5.2 GHz carrier.
func BenchmarkFigure4_SpectrumAdjacentChannel(b *testing.B) {
	var report string
	var adjacentOffset float64
	for i := 0; i < b.N; i++ {
		psd, rep, err := wlansim.SpectrumExperiment(-62, true, 42)
		if err != nil {
			b.Fatal(err)
		}
		report = rep.String()
		adjacentOffset = rep.AdjacentDBm - rep.WantedDBm
		_ = psd
	}
	b.ReportMetric(adjacentOffset, "adjacent_offset_dB")
	b.Logf("Figure 4 channel powers: %s", report)
}

// BenchmarkFigure5_BERvsFilterBandwidth regenerates Figure 5: BER versus
// the Chebyshev channel-filter passband edge with the adjacent channel
// present (x axis in 1e8 Hz like the paper).
func BenchmarkFigure5_BERvsFilterBandwidth(b *testing.B) {
	base := wlansim.Figure5Config()
	base.Packets = 4
	base.PSDULen = 100
	edges := []float64{6e6, 8e6, 10e6, 12e6, 14e6, 16e6}
	var series *wlansim.Series
	for i := 0; i < b.N; i++ {
		var err error
		series, err = wlansim.FilterBandwidthSweep(base, edges)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, p := range series.Points {
		b.Logf("edge %.2fe8 Hz -> BER %.4g", p.X, p.Y)
	}
	narrow, _ := series.YAt(0.06)
	wide, _ := series.YAt(0.16)
	b.ReportMetric(narrow, "ber_narrow_6MHz")
	b.ReportMetric(series.Min().Y, "ber_best")
	b.ReportMetric(wide, "ber_wide_16MHz")
}

// BenchmarkFigure6_BERvsCompressionPoint regenerates Figure 6: BER versus
// the first LNA's 1 dB compression point, with and without the adjacent
// channel.
func BenchmarkFigure6_BERvsCompressionPoint(b *testing.B) {
	base := wlansim.Figure6Config()
	base.Packets = benchPackets
	base.PSDULen = 60
	cps := []float64{-30, -25, -20, -15, -10, -5}
	var with, without *wlansim.Series
	for i := 0; i < b.N; i++ {
		var err error
		with, err = wlansim.CompressionPointSweep(base, cps, true)
		if err != nil {
			b.Fatal(err)
		}
		without, err = wlansim.CompressionPointSweep(base, cps, false)
		if err != nil {
			b.Fatal(err)
		}
	}
	for i, p := range with.Points {
		b.Logf("CP1dB %5.1f dBm -> BER %.4g (with adj) / %.4g (without)",
			p.X, p.Y, without.Points[i].Y)
	}
	low, _ := with.YAt(-30)
	high, _ := with.YAt(-5)
	b.ReportMetric(low, "ber_cp_-30dBm_adj")
	b.ReportMetric(high, "ber_cp_-5dBm_adj")
	b.ReportMetric(without.Max().Y, "ber_worst_no_adj")
}

// BenchmarkTable2_SystemLevel times the pure system-level (complex
// baseband) simulation per packet: the left column of Table 2.
func BenchmarkTable2_SystemLevel(b *testing.B) {
	cfg := smallConfig()
	cfg.Packets = 1
	cfg.FrontEnd = wlansim.FrontEndBehavioral
	runBench(b, cfg)
}

// BenchmarkTable2_CoSimulation times the analog co-simulation per packet:
// the right column of Table 2. The ns/op ratio against
// BenchmarkTable2_SystemLevel reproduces the paper's 30-40x slowdown.
func BenchmarkTable2_CoSimulation(b *testing.B) {
	cfg := smallConfig()
	cfg.Packets = 1
	cfg.FrontEnd = wlansim.FrontEndCoSim
	runBench(b, cfg)
}

// BenchmarkText_BERvsIP3 regenerates the §5.1 IP3 sweep.
func BenchmarkText_BERvsIP3(b *testing.B) {
	base := wlansim.Figure6Config()
	base.Packets = benchPackets
	base.PSDULen = 60
	var series *wlansim.Series
	for i := 0; i < b.N; i++ {
		var err error
		series, err = wlansim.IP3Sweep(base, []float64{-20, -12, -4, 4}, true)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, p := range series.Points {
		b.Logf("IIP3 %5.1f dBm -> BER %.4g", p.X, p.Y)
	}
	low, _ := series.YAt(-20)
	high, _ := series.YAt(4)
	b.ReportMetric(low, "ber_iip3_-20dBm")
	b.ReportMetric(high, "ber_iip3_+4dBm")
}

// BenchmarkText_CoSimNoiseArtifact regenerates the §4.3/§5.1 artifact: the
// co-simulation without noise functions reports a better BER than the
// noise-accurate system-level run.
func BenchmarkText_CoSimNoiseArtifact(b *testing.B) {
	base := smallConfig()
	base.WantedPowerDBm = -95
	var res wlansim.NoiseArtifactResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = wlansim.NoiseArtifactExperiment(base)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.Logf("behavioral %.3g, cosim-no-noise %.3g, cosim-with-noise %.3g",
		res.BehavioralBER, res.CoSimNoNoiseBER, res.CoSimWithNoiseBER)
	b.ReportMetric(res.BehavioralBER, "ber_behavioral")
	b.ReportMetric(res.CoSimNoNoiseBER, "ber_cosim_no_noise")
	b.ReportMetric(res.CoSimWithNoiseBER, "ber_cosim_with_noise")
}

// BenchmarkText_EVMIdealReceiver regenerates the §5.2 EVM measurement with
// the ideal receiver model.
func BenchmarkText_EVMIdealReceiver(b *testing.B) {
	base := smallConfig()
	var series *wlansim.Series
	for i := 0; i < b.N; i++ {
		var err error
		series, err = wlansim.EVMvsSNR(base, []float64{10, 15, 20, 25, 30, 35})
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, p := range series.Points {
		b.Logf("SNR %4.1f dB -> EVM %.2f%%", p.X, p.Y)
	}
	e20, _ := series.YAt(20)
	b.ReportMetric(e20, "evm_pct_at_20dB")
}

// BenchmarkText_KModelBlackBox times the §4 "other solution": the K-model
// black box extracted from the detailed analog receiver, running in the
// system simulation (extraction included in the first iteration's cost).
func BenchmarkText_KModelBlackBox(b *testing.B) {
	cfg := smallConfig()
	cfg.Packets = 1
	cfg.FrontEnd = wlansim.FrontEndBlackBox
	res := runBench(b, cfg)
	b.ReportMetric(res.BER(), "ber")
}

// --- Design-choice ablations (DESIGN.md) ---

// BenchmarkAblation_SoftDecisions vs BenchmarkAblation_HardDecisions: the
// soft-metric Viterbi input buys ~2 dB; at the sensitivity edge that is the
// difference between a working and a broken link.
func BenchmarkAblation_SoftDecisions(b *testing.B) {
	cfg := smallConfig()
	cfg.WantedPowerDBm = -92
	res := runBench(b, cfg)
	b.ReportMetric(res.BER(), "ber")
}

func BenchmarkAblation_HardDecisions(b *testing.B) {
	cfg := smallConfig()
	cfg.WantedPowerDBm = -92
	cfg.HardDecisions = true
	res := runBench(b, cfg)
	b.ReportMetric(res.BER(), "ber")
}

// BenchmarkAblation_CSIWeighting vs BenchmarkAblation_NoCSIWeighting:
// per-carrier channel-state weighting of the soft metrics matters under
// frequency-selective conditions — here a deliberately narrow (6.5 MHz)
// channel filter that buries the outer subcarriers.
func narrowFilterConfig() wlansim.Config {
	cfg := wlansim.Figure5Config()
	cfg.Packets = 3
	cfg.PSDULen = 60
	prev := cfg.TuneRF
	cfg.TuneRF = func(rc *rf.ReceiverConfig) {
		prev(rc)
		rc.ChannelFilterEdgeHz = 6.5e6
	}
	return cfg
}

func BenchmarkAblation_CSIWeighting(b *testing.B) {
	res := runBench(b, narrowFilterConfig())
	b.ReportMetric(res.BER(), "ber")
}

func BenchmarkAblation_NoCSIWeighting(b *testing.B) {
	cfg := narrowFilterConfig()
	cfg.DisableCSI = true
	res := runBench(b, cfg)
	b.ReportMetric(res.BER(), "ber")
}

// BenchmarkAblation_AGCDisabled fixes the baseband gain instead of running
// the loop: with the +16 dB adjacent channel the ADC clips or starves.
func BenchmarkAblation_AGCDisabled(b *testing.B) {
	cfg := smallConfig()
	cfg.Interferers = []wlansim.InterfererSpec{wlansim.AdjacentChannelSpec(cfg.WantedPowerDBm)}
	cfg.TuneRF = func(rc *rf.ReceiverConfig) {
		rc.AGC.Freeze = true // hold the calibrated initial gain
	}
	res := runBench(b, cfg)
	b.ReportMetric(res.BER(), "ber")
	b.ReportMetric(res.EVM.Percent(), "evm_pct")
}

// BenchmarkAblation_NoInterstageHPF removes the DC-block between the mixer
// stages: the self-mixing DC offset then rides through the chain.
func BenchmarkAblation_NoInterstageHPF(b *testing.B) {
	cfg := smallConfig()
	cfg.TuneRF = func(rc *rf.ReceiverConfig) {
		rc.DCBlockCornerHz = 0
		rc.Mixer1.EnableDC = true
		rc.Mixer1.DCOffsetDBm = -22 // strong stage-1 self-mixing product
	}
	res := runBench(b, cfg)
	b.ReportMetric(res.BER(), "ber")
	b.ReportMetric(res.EVM.Percent(), "evm_pct")
}

// BenchmarkAblation_Oversampling2x composes the adjacent channel on an
// undersized grid — rejected by the composer, demonstrating the §4.1
// sampling-theorem requirement (the measurement falls back to the minimum
// legal factor and reports it).
func BenchmarkAblation_Oversampling2x(b *testing.B) {
	cfg := smallConfig()
	cfg.Interferers = []wlansim.InterfererSpec{wlansim.AdjacentChannelSpec(cfg.WantedPowerDBm)}
	res := runBench(b, cfg)
	b.ReportMetric(float64(res.OversampleFactor), "oversample_factor")
	b.ReportMetric(res.BER(), "ber")
}

// --- Micro-benchmarks of the hot kernels ---

func BenchmarkKernel_TransmitPacket(b *testing.B) {
	tx, err := wlansim.NewTransmitter(54)
	if err != nil {
		b.Fatal(err)
	}
	psdu := make([]byte, 1000)
	b.SetBytes(1000)
	for i := 0; i < b.N; i++ {
		if _, err := tx.Transmit(psdu); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKernel_ReceivePacket(b *testing.B) {
	tx, err := wlansim.NewTransmitter(54)
	if err != nil {
		b.Fatal(err)
	}
	frame, err := tx.Transmit(make([]byte, 1000))
	if err != nil {
		b.Fatal(err)
	}
	x := make([]complex128, 200+len(frame.Samples)+100)
	copy(x[200:], frame.Samples)
	rx := wlansim.NewPacketReceiver()
	b.SetBytes(1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rx.Receive(x, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKernel_RFFrontEnd(b *testing.B) {
	rxCfg := wlansim.DefaultReceiverConfig(1)
	fe, err := wlansim.NewRFReceiver(rxCfg)
	if err != nil {
		b.Fatal(err)
	}
	x := make([]complex128, 4096)
	for i := range x {
		x[i] = complex(1e-4, -1e-4)
	}
	b.SetBytes(int64(len(x) * 16))
	for i := 0; i < b.N; i++ {
		buf := make([]complex128, len(x))
		copy(buf, x)
		fe.Process(buf)
	}
}

func BenchmarkKernel_AnalogSolver(b *testing.B) {
	cfg := wlansim.DefaultAnalogFrontEndConfig()
	fe, err := wlansim.NewAnalogFrontEnd(cfg)
	if err != nil {
		b.Fatal(err)
	}
	x := make([]complex128, 2048)
	for i := range x {
		x[i] = complex(1e-4, 1e-4)
	}
	b.SetBytes(int64(len(x) * 16))
	for i := 0; i < b.N; i++ {
		buf := make([]complex128, len(x))
		copy(buf, x)
		fe.Process(buf)
	}
}

// sanity check that the benchmark harness agrees with the test suite on the
// headline reproduction claims (runs as a test, not a benchmark).
func TestBenchmarkScenariosSane(t *testing.T) {
	cfg := smallConfig()
	bench, err := wlansim.NewBench(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := bench.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.BER() != 0 {
		t.Errorf("baseline scenario BER %v", res.BER())
	}
	fmt.Println("baseline:", res.Counter.String())
}
