module wlansim

go 1.22
