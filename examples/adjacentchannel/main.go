// Adjacent-channel study: the paper's §4.1 test setup. A second 802.11a
// transmitter is duplicated 20 MHz away at +16 dB, the composite is built on
// an oversampled baseband grid, and the channel-select filter bandwidth is
// swept to show how an underdimensioned or overdimensioned filter destroys
// the link (Figure 5 of the paper, in miniature).
package main

import (
	"flag"
	"fmt"
	"log"

	"wlansim"
)

func main() {
	workers := flag.Int("workers", 0, "concurrent sweep points (0 = all CPUs; results identical for any value)")
	flag.Parse()

	base := wlansim.Figure5Config()
	base.Packets = 3
	base.Workers = *workers

	// First show the spectrum the receiver faces (Figure 4).
	psd, report, err := wlansim.SpectrumExperiment(base.WantedPowerDBm, false, base.Seed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Composite spectrum at the antenna:", report)
	series := wlansim.SeriesDBm(psd, 5.2e9, 16)
	for _, p := range series.Points {
		fmt.Printf("  %.4f GHz  %7.1f dBm/Hz\n", p.X/1e9, p.Y)
	}

	// Then sweep the Chebyshev channel filter's passband edge.
	edges := []float64{6e6, 8e6, 10e6, 12e6, 14e6}
	sweep, err := wlansim.FilterBandwidthSweep(base, edges)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nBER vs channel-filter passband edge (adjacent channel present):")
	for _, p := range sweep.Points {
		fmt.Printf("  %4.1f MHz edge -> BER %.4g\n", p.X*100, p.Y)
	}
	best := sweep.Min()
	fmt.Printf("best passband edge: %.1f MHz (BER %.4g)\n", best.X*100, best.Y)
}
