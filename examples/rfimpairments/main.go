// RF impairment study: how the analog front end's nonlinearity budget shows
// up in the system bit error rate. Reproduces Figure 6 in miniature (BER vs
// the first LNA's 1 dB compression point, with and without the +16 dB
// adjacent channel) and demonstrates the cascade (Friis) analysis used to
// budget the line-up.
package main

import (
	"flag"
	"fmt"
	"log"
	"math"

	"wlansim"
)

func main() {
	workers := flag.Int("workers", 0, "concurrent sweep points (0 = all CPUs; results identical for any value)")
	flag.Parse()

	base := wlansim.Figure6Config()
	base.Packets = 3
	base.Workers = *workers

	cps := []float64{-30, -22, -14, -6}
	with, err := wlansim.CompressionPointSweep(base, cps, true)
	if err != nil {
		log.Fatal(err)
	}
	without, err := wlansim.CompressionPointSweep(base, cps, false)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("BER vs LNA compression point (wanted", base.WantedPowerDBm, "dBm):")
	fmt.Printf("  %-12s %-22s %s\n", "CP1dB [dBm]", "with adjacent channel", "without")
	for i, p := range with.Points {
		fmt.Printf("  %-12g %-22.4g %.4g\n", p.X, p.Y, without.Points[i].Y)
	}

	// The same story in cascade numbers: each compression point implies a
	// cascade IIP3; the adjacent channel at -24 dBm needs headroom.
	fmt.Println("\nCascade view (LNA + mixers):")
	for _, cp := range cps {
		res, err := wlansim.Cascade([]wlansim.CascadeStage{
			{Name: "LNA1", GainDB: 18, NoiseFigureDB: 2.5, IIP3DBm: cp + 9.64},
			{Name: "MIX1", GainDB: 9, NoiseFigureDB: 9, IIP3DBm: math.Inf(1)},
			{Name: "MIX2", GainDB: 6, NoiseFigureDB: 12, IIP3DBm: math.Inf(1)},
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  CP1dB %5.1f dBm -> cascade %s\n", cp, res)
	}
}
