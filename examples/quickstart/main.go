// Quickstart: transmit one IEEE 802.11a packet, pass it through the
// behavioral double-conversion RF receiver and the synchronizing DSP
// receiver, and report BER and EVM — the smallest complete use of the
// library.
package main

import (
	"fmt"
	"log"

	"wlansim"
)

func main() {
	// A scenario is one wanted 802.11a link at a chosen rate and receive
	// power, plus the abstraction level of the analog front end.
	cfg := wlansim.DefaultConfig()
	cfg.RateMbps = 24
	cfg.PSDULen = 256
	cfg.Packets = 5
	cfg.WantedPowerDBm = -62
	cfg.FrontEnd = wlansim.FrontEndBehavioral

	bench, err := wlansim.NewBench(cfg)
	if err != nil {
		log.Fatal(err)
	}
	res, err := bench.Run()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("802.11a link at %d Mbps, %d dBm, front end: %s\n",
		cfg.RateMbps, int(cfg.WantedPowerDBm), res.FrontEnd)
	fmt.Println(res.Counter.String())
	fmt.Println(res.EVM)

	// The RF line-up behind the scenario, with its Friis cascade figures.
	rxCfg := wlansim.DefaultReceiverConfig(1)
	rx, err := wlansim.NewRFReceiver(rxCfg)
	if err != nil {
		log.Fatal(err)
	}
	cas, err := rx.Cascade()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nDouble-conversion receiver:", rx.BlockNames())
	fmt.Println("Cascade:", cas)
	fmt.Printf("Sensitivity estimate (20 MHz, 10 dB SNR): %.1f dBm\n",
		cas.SensitivityDBm(20e6, 10))
}
