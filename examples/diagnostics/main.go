// Receiver diagnostics: decode a burst of packets from one capture with the
// stream receiver, report per-packet link quality (SNR estimate, CFO, EVM),
// check the transmit waveform against the clause-17 spectral mask, and
// print the per-impairment EVM budget of the RF front end.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"wlansim"
)

func main() {
	// Build a capture with three packets at different rates and a CFO.
	rng := rand.New(rand.NewSource(7))
	var capture []complex128
	capture = append(capture, make([]complex128, 400)...)
	var sent [][]byte
	for _, rate := range []int{6, 24, 54} {
		tx, err := wlansim.NewTransmitter(rate)
		if err != nil {
			log.Fatal(err)
		}
		psdu := make([]byte, 80)
		rng.Read(psdu)
		frame, err := tx.Transmit(psdu)
		if err != nil {
			log.Fatal(err)
		}
		sent = append(sent, psdu)
		capture = append(capture, frame.Samples...)
		capture = append(capture, make([]complex128, 350)...)
	}
	wlansim.NewCFO(90e3, 20e6, 0.4).Process(capture)
	wlansim.AddNoiseSNR(capture, 24, 8)

	// Decode everything in one pass.
	rx := wlansim.NewPacketReceiver()
	results := rx.ReceiveAll(capture)
	fmt.Printf("decoded %d packets from the capture:\n", len(results))
	for i, res := range results {
		errs := 0
		for j := range sent[i] {
			if j < len(res.PSDU) && res.PSDU[j] != sent[i][j] {
				errs++
			}
		}
		ev, _ := wlansim.EVM(res.EqualizedCarriers, res.Signal.Mode.Modulation)
		fmt.Printf("  #%d: %-28s CFO %+6.1f kHz, link SNR %4.1f dB, EVM %5.2f%%, byte errors %d\n",
			i+1, res.Signal.Mode.String(), res.CFO*20e6/1e3, res.LinkSNRdB, ev.Percent(), errs)
	}

	// Transmit-side verification: spectral mask on an oversampled burst.
	tx, _ := wlansim.NewTransmitter(54)
	frame, _ := tx.Transmit(make([]byte, 400))
	// Oversample 4x via the library's composer so the mask region out to
	// +-30 MHz is represented.
	comp, _ := wlansim.NewComposer(4)
	up, err := comp.Compose([]wlansim.Emitter{{Samples: frame.Samples, PowerDBm: -10}})
	if err != nil {
		log.Fatal(err)
	}
	viol, err := wlansim.TransmitMask().CheckMask(up, 80e6)
	if err != nil {
		log.Fatal(err)
	}
	if len(viol) == 0 {
		fmt.Println("\ntransmit spectral mask: PASS")
	} else {
		fmt.Printf("\ntransmit spectral mask: %d violations (first at %+.1f MHz, %.1f dB over)\n",
			len(viol), viol[0].OffsetHz/1e6, viol[0].ExcessDB())
	}

	// RF impairment budget of the default front end.
	base := wlansim.DefaultConfig()
	base.Packets = 2
	base.PSDULen = 60
	rows, err := wlansim.EVMBudget(base)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nEVM budget of the behavioral front end:")
	fmt.Print(wlansim.FormatEVMBudget(rows))
}
