// Co-simulation study: the same receiver at two abstraction levels. The
// complex-baseband behavioral model (the pure system-level run) is compared
// with the continuous-time analog solver (the SPW/AMS co-simulation run) on
// identical packets: both must decode, the co-simulation costs 30-40x more
// wall clock (Table 2 of the paper), and disabling its noise sources
// reproduces the §4.3 artifact where the co-simulated BER looks better than
// reality.
package main

import (
	"fmt"
	"log"

	"wlansim"
)

func main() {
	base := wlansim.DefaultConfig()
	base.Packets = 2
	base.PSDULen = 100

	// 1. Same packets through both abstraction levels.
	for _, fe := range []wlansim.FrontEndKind{wlansim.FrontEndBehavioral, wlansim.FrontEndCoSim} {
		cfg := base
		cfg.FrontEnd = fe
		bench, err := wlansim.NewBench(cfg)
		if err != nil {
			log.Fatal(err)
		}
		res, err := bench.Run()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22s BER %.4g, EVM %.2f%%\n", fe.String()+":", res.BER(), res.EVM.Percent())
	}

	// 2. Wall-clock comparison (Table 2).
	rows, err := wlansim.TimingComparison(base, []int{1, 2})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nSimulation time comparison:")
	for _, r := range rows {
		fmt.Printf("  %d packet(s): system-level %.3fs, co-sim %.3fs (%.0fx)\n",
			r.Packets, r.FastSeconds, r.CoSimSeconds, r.Ratio())
	}

	// 3. The noise artifact at a power below sensitivity.
	weak := base
	weak.Packets = 3
	weak.WantedPowerDBm = -95
	art, err := wlansim.NoiseArtifactExperiment(weak)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nNoise artifact at -95 dBm:")
	fmt.Printf("  behavioral (noise on):      BER %.3g\n", art.BehavioralBER)
	fmt.Printf("  co-sim without noise:       BER %.3g  (misleadingly good)\n", art.CoSimNoNoiseBER)
	fmt.Printf("  co-sim with noise restored: BER %.3g\n", art.CoSimWithNoiseBER)
}
