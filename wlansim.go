// Package wlansim is the public API of the WLAN system-level verification
// library: a complete IEEE 802.11a physical layer, behavioral models of the
// double-conversion RF receiver front end at three abstraction levels
// (ideal, complex-baseband behavioral, continuous-time analog co-simulation),
// radio channel models with adjacent-channel interferers, and the
// measurement harnesses (BER, EVM, spectrum, run-time comparison) that
// reproduce the evaluation of "Verification of the RF Subsystem within
// Wireless LAN System Level Simulation" (DATE 2003).
//
// Quick start:
//
//	cfg := wlansim.DefaultConfig()
//	bench, err := wlansim.NewBench(cfg)
//	if err != nil { ... }
//	res, err := bench.Run()
//	fmt.Println(res.Counter.String(), res.EVM)
//
// The deeper layers are exposed as curated aliases: the 802.11a transmitter
// and receiver (Transmitter, Receiver), the RF blocks (ReceiverConfig,
// AmplifierConfig, ...), the channel (Emitter, Composer) and the analog
// solver (AnalogFrontEndConfig).
package wlansim

import (
	"wlansim/internal/analog"
	"wlansim/internal/channel"
	"wlansim/internal/core"
	"wlansim/internal/dsp"
	"wlansim/internal/measure"
	"wlansim/internal/phy"
	"wlansim/internal/rf"
	"wlansim/internal/rxdsp"
	"wlansim/internal/trace"
)

// Scenario configuration and measurement bench (the paper's verification
// flow).
type (
	// Config describes one measurement scenario (rate, packets, power,
	// interferers, front-end abstraction level).
	Config = core.Config
	// Bench runs a scenario and measures BER/EVM.
	Bench = core.Bench
	// Result is the outcome of a bench run.
	Result = core.Result
	// FrontEndKind selects the analog model abstraction level.
	FrontEndKind = core.FrontEndKind
	// InterfererSpec places an interfering 802.11a emitter.
	InterfererSpec = core.InterfererSpec
	// TimingRow is one row of the reproduced Table 2.
	TimingRow = core.TimingRow
	// NoiseArtifactResult captures the co-simulation noise artifact.
	NoiseArtifactResult = core.NoiseArtifactResult
)

// Front-end abstraction levels.
const (
	FrontEndIdeal      = core.FrontEndIdeal
	FrontEndBehavioral = core.FrontEndBehavioral
	FrontEndCoSim      = core.FrontEndCoSim
	FrontEndBlackBox   = core.FrontEndBlackBox
)

// Scenario constructors and experiment harnesses.
var (
	// DefaultConfig returns a baseline 24 Mbps scenario.
	DefaultConfig = core.DefaultConfig
	// NewBench validates a scenario.
	NewBench = core.NewBench
	// Figure5Config and FilterBandwidthSweep reproduce Figure 5.
	Figure5Config        = core.Figure5Config
	FilterBandwidthSweep = core.FilterBandwidthSweep
	// Figure6Config and CompressionPointSweep reproduce Figure 6.
	Figure6Config         = core.Figure6Config
	CompressionPointSweep = core.CompressionPointSweep
	// IP3Sweep reproduces the IIP3 sweep of §5.1.
	IP3Sweep = core.IP3Sweep
	// SpectrumExperiment reproduces Figure 4.
	SpectrumExperiment = core.SpectrumExperiment
	// EVMvsSNR reproduces the §5.2 EVM methodology.
	EVMvsSNR = core.EVMvsSNR
	// TimingComparison reproduces Table 2.
	TimingComparison = core.TimingComparison
	// NoiseArtifactExperiment reproduces the §4.3 noise artifact.
	NoiseArtifactExperiment = core.NoiseArtifactExperiment
	// AdjacentChannelSpec / SecondAdjacentChannelSpec build the paper's
	// interferer levels.
	AdjacentChannelSpec       = core.AdjacentChannelSpec
	SecondAdjacentChannelSpec = core.SecondAdjacentChannelSpec
	// StandardsTableText renders Table 1.
	StandardsTableText = core.StandardsTableText
	// WaterfallBERvsSNR produces per-mode BER vs SNR curves.
	WaterfallBERvsSNR = core.WaterfallBERvsSNR
	// SensitivitySearch bisects the receiver sensitivity.
	SensitivitySearch = core.SensitivitySearch
	// InputRangeCheck verifies the paper's -88..-23 dBm input range.
	InputRangeCheck = core.InputRangeCheck
	// EVMBudget decomposes link EVM per analog impairment.
	EVMBudget = core.EVMBudget
	// MeasureACR / ACRReport measure adjacent channel rejection against the
	// clause-17.3.10.2 requirements.
	MeasureACR = core.MeasureACR
	ACRReport  = core.ACRReport
	FormatACR  = core.FormatACR
	// SpectralRegrowthSweep measures PA backoff against the transmit mask.
	SpectralRegrowthSweep = core.SpectralRegrowthSweep
	RequiredBackoffDB     = core.RequiredBackoffDB
	// PAPRCCDF computes the envelope peak-to-average CCDF.
	PAPRCCDF = measure.PAPRCCDF
	// RunVerificationReport executes the aggregated sign-off suite.
	RunVerificationReport = core.RunVerificationReport
	// FormatEVMBudget renders the budget table.
	FormatEVMBudget = core.FormatEVMBudget
)

// EVMBudgetRow is one line of the per-impairment EVM budget.
type EVMBudgetRow = core.EVMBudgetRow

// ACRResult is a measured adjacent-channel-rejection verdict.
type ACRResult = core.ACRResult

// VerificationReport is the aggregated sign-off summary.
type VerificationReport = core.VerificationReport

// SystemGraph is the SPW-style block-diagram realization of a scenario
// (built with (*Bench).BuildSystemGraph).
type SystemGraph = core.SystemGraph

// InputRangeResult reports the input-range corner verification.
type InputRangeResult = core.InputRangeResult

// IEEE 802.11a physical layer.
type (
	// Mode is one clause-17 transmission rate.
	Mode = phy.Mode
	// Frame is an assembled PPDU with its waveform.
	Frame = phy.Frame
	// Transmitter builds PPDUs.
	Transmitter = phy.Transmitter
	// SignalField is the decoded PLCP SIGNAL content.
	SignalField = phy.SignalField
)

// SpectrumMask is the clause-17 transmit spectral mask.
type SpectrumMask = phy.SpectrumMask

// PHY helpers.
var (
	// Modes lists all eight 802.11a rates.
	Modes = phy.Modes
	// ModeByRate looks a mode up by its Mbps value.
	ModeByRate = phy.ModeByRate
	// NewTransmitter builds a transmitter for a rate.
	NewTransmitter = phy.NewTransmitter
	// TransmitMask returns the clause-17.3.9.2 spectral mask.
	TransmitMask = phy.TransmitMask
)

// DSP receiver.
type (
	// PacketReceiver is the synchronizing 802.11a receiver.
	PacketReceiver = rxdsp.Receiver
	// IdealReceiver decodes with genie timing (EVM methodology).
	IdealReceiver = rxdsp.IdealReceiver
	// PacketResult is a decoded packet with diagnostics.
	PacketResult = rxdsp.PacketResult
)

// NewPacketReceiver returns a synchronizing receiver with default settings.
var NewPacketReceiver = rxdsp.NewReceiver

// RF front-end models.
type (
	// ReceiverConfig parameterizes the behavioral double-conversion
	// receiver.
	ReceiverConfig = rf.ReceiverConfig
	// RFReceiver is the behavioral front end.
	RFReceiver = rf.Receiver
	// FrontEnd abstracts the analog model implementations.
	FrontEnd = rf.FrontEnd
	// AmplifierConfig, MixerConfig, AGCConfig, ADCConfig parameterize the
	// individual blocks.
	AmplifierConfig = rf.AmplifierConfig
	MixerConfig     = rf.MixerConfig
	AGCConfig       = rf.AGCConfig
	ADCConfig       = rf.ADCConfig
	// CascadeStage and CascadeResult support Friis line-up analysis.
	CascadeStage  = rf.Stage
	CascadeResult = rf.CascadeResult
	// AnalogFrontEndConfig parameterizes the co-simulation solver.
	AnalogFrontEndConfig = analog.FrontEndConfig
)

// Characterizer drives tone-test benches against RF blocks (the
// SpectreRF-style analyses); BlockReport is the resulting datasheet.
type (
	Characterizer = rf.Characterizer
	BlockReport   = rf.BlockReport
	// CTBench is the passband tone bench for continuous-time stages.
	CTBench = analog.CTBench
)

// RF constructors.
var (
	// NewCharacterizer builds a tone bench at a sample rate.
	NewCharacterizer = rf.NewCharacterizer
	// NewCTBench builds a passband tone bench at a solver rate.
	NewCTBench = analog.NewCTBench
	// DefaultReceiverConfig returns the paper-tuned line-up.
	DefaultReceiverConfig = rf.DefaultReceiverConfig
	// NewRFReceiver assembles the behavioral front end.
	NewRFReceiver = rf.NewReceiver
	// NewIdealFrontEnd builds the distortion-free reference.
	NewIdealFrontEnd = rf.NewIdealFrontEnd
	// NewAnalogFrontEnd builds the co-simulation solver.
	NewAnalogFrontEnd = analog.NewFrontEnd
	// DefaultAnalogFrontEndConfig returns the solver defaults.
	DefaultAnalogFrontEndConfig = analog.DefaultFrontEndConfig
	// Cascade computes Friis gain/NF/IIP3 of a line-up.
	Cascade = rf.Cascade
	// NewAmplifier / NewMixer build individual behavioral RF blocks.
	NewAmplifier = rf.NewAmplifier
	NewMixer     = rf.NewMixer
	// ExtractKModel extracts a black-box (K-model) from a detailed front
	// end; DefaultKModelConfig returns extraction settings.
	ExtractKModel       = rf.ExtractKModel
	DefaultKModelConfig = rf.DefaultKModelConfig
)

// KModel is an extracted black-box front end (the paper's ref [6] flow).
type KModel = rf.KModel

// KModelConfig controls black-box extraction.
type KModelConfig = rf.KModelConfig

// Radio channel.
type (
	// Emitter is one signal entering the air interface.
	Emitter = channel.Emitter
	// Composer mixes emitters onto an oversampled baseband grid.
	Composer = channel.Composer
	// Multipath is a frequency-selective block-fading channel.
	Multipath = channel.Multipath
	// FadingChannel is the time-varying (Jakes-Doppler) Rayleigh channel.
	FadingChannel = channel.FadingChannel
	// SampleClockOffset models TX/RX sampling-clock mismatch in ppm.
	SampleClockOffset = channel.SampleClockOffset
)

// Channel constructors.
var (
	// NewComposer builds an interferer composer.
	NewComposer = channel.NewComposer
	// NewRayleighChannel draws a Rayleigh multipath realization.
	NewRayleighChannel = channel.NewRayleighChannel
	// NewFadingChannel draws a time-varying Rayleigh channel.
	NewFadingChannel = channel.NewFadingChannel
	// NewSampleClockOffset builds a ppm-scale resampling impairment.
	NewSampleClockOffset = channel.NewSampleClockOffset
	// NewCFO builds a carrier-frequency-offset impairment.
	NewCFO = channel.NewCFO
	// AddNoiseSNR adds AWGN at a given SNR.
	AddNoiseSNR = channel.AddNoiseSNR
)

// Measurements.
type (
	// BERCounter accumulates bit/packet error statistics.
	BERCounter = measure.BERCounter
	// EVMResult is an error-vector-magnitude measurement.
	EVMResult = measure.EVMResult
	// Series and Figure hold sweep results.
	Series = measure.Series
	Figure = measure.Figure
	// PSD is a power spectral density estimate.
	PSD = dsp.PSD
)

// Measurement helpers.
var (
	// EVM measures decision-directed EVM on equalized carriers.
	EVM = measure.EVM
	// SeriesDBm converts a PSD to a printable series.
	SeriesDBm = measure.SeriesDBm
	// ChannelPowers integrates the 20 MHz channel raster of a PSD.
	ChannelPowers = measure.ChannelPowers
)

// Waveform capture I/O (the SPW flow's waveform-file equivalent).
type TraceHeader = trace.Header

// WriteTrace / ReadTrace store and load complex baseband captures.
var (
	WriteTrace = trace.Write
	ReadTrace  = trace.Read
)
