package wlansim_test

import (
	"math"
	"strings"
	"testing"

	"wlansim"
)

// Tests of the public API surface: everything a downstream user touches must
// be reachable through the root package aliases.

func TestAPITransmitterAndReceiver(t *testing.T) {
	tx, err := wlansim.NewTransmitter(24)
	if err != nil {
		t.Fatal(err)
	}
	frame, err := tx.Transmit([]byte{1, 2, 3, 4, 5, 6, 7, 8})
	if err != nil {
		t.Fatal(err)
	}
	x := make([]complex128, 300+len(frame.Samples)+200)
	copy(x[300:], frame.Samples)
	wlansim.AddNoiseSNR(x, 25, 1)

	rx := wlansim.NewPacketReceiver()
	res, err := rx.Receive(x, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Signal.Mode.RateMbps != 24 {
		t.Errorf("decoded rate %d", res.Signal.Mode.RateMbps)
	}
	for i, b := range frame.PSDU {
		if res.PSDU[i] != b {
			t.Fatalf("payload byte %d differs", i)
		}
	}
	// Diagnostics exposed.
	if res.LinkSNRdB < 15 || res.LinkSNRdB > 35 {
		t.Errorf("link SNR %v dB at true 25 dB", res.LinkSNRdB)
	}
	ev, err := wlansim.EVM(res.EqualizedCarriers, frame.Mode.Modulation)
	if err != nil || ev.RMS <= 0 {
		t.Errorf("EVM %v err %v", ev, err)
	}
}

func TestAPIModesAndMask(t *testing.T) {
	if len(wlansim.Modes) != 8 {
		t.Errorf("%d modes", len(wlansim.Modes))
	}
	m, err := wlansim.ModeByRate(54)
	if err != nil || m.NDBPS() != 216 {
		t.Errorf("54 Mbps mode lookup: %v %v", m, err)
	}
	mask := wlansim.TransmitMask()
	if mask.LimitDBr(20e6) != -28 {
		t.Errorf("mask at 20 MHz = %v", mask.LimitDBr(20e6))
	}
}

func TestAPIRFCascadeAndCharacterizer(t *testing.T) {
	cfg := wlansim.DefaultReceiverConfig(1)
	rx, err := wlansim.NewRFReceiver(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cas, err := rx.Cascade()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cas.GainDB-33) > 0.1 {
		t.Errorf("cascade gain %v", cas.GainDB)
	}
	// The Friis sensitivity estimate lands at the paper's -88 dBm corner.
	if s := cas.SensitivityDBm(20e6, 10); math.Abs(s-(-88.1)) > 0.5 {
		t.Errorf("sensitivity %v dBm, want ~-88.1", s)
	}
	// Tone-test characterization agrees with the configuration.
	bench := wlansim.NewCharacterizer(cfg.SampleRateHz)
	lna, err := wlansim.NewAmplifier(cfg.LNA)
	if err != nil {
		t.Fatal(err)
	}
	rep := bench.Characterize(lna)
	if math.Abs(rep.GainDB-cfg.LNA.GainDB) > 0.3 {
		t.Errorf("characterized gain %v", rep.GainDB)
	}
	if !strings.Contains(rep.String(), "P1dB") {
		t.Error("report formatting")
	}
}

func TestAPIChannelModels(t *testing.T) {
	mp, err := wlansim.NewRayleighChannel(4, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]complex128, 100)
	x[0] = 1
	mp.Process(x)

	fc, err := wlansim.NewFadingChannel(3, 2, 100, 20e6, 2)
	if err != nil {
		t.Fatal(err)
	}
	fc.Process(make([]complex128, 100))

	sco, err := wlansim.NewSampleClockOffset(20)
	if err != nil {
		t.Fatal(err)
	}
	if out := sco.Process(make([]complex128, 1000)); len(out) < 995 || len(out) > 1005 {
		t.Errorf("SCO output %d samples", len(out))
	}

	comp, err := wlansim.NewComposer(3)
	if err != nil {
		t.Fatal(err)
	}
	sig := make([]complex128, 64)
	for i := range sig {
		sig[i] = 1
	}
	if _, err := comp.Compose([]wlansim.Emitter{{Samples: sig, PowerDBm: -50, OffsetHz: 20e6}}); err != nil {
		t.Errorf("compose: %v", err)
	}
}

func TestAPISystemGraph(t *testing.T) {
	cfg := wlansim.DefaultConfig()
	cfg.Packets = 1
	cfg.PSDULen = 40
	bench, err := wlansim.NewBench(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := bench.BuildSystemGraph()
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.BER() != 0 {
		t.Errorf("graph run BER %v", res.BER())
	}
}

func TestAPIInputRangeAndSensitivity(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	base := wlansim.DefaultConfig()
	base.Packets = 2
	base.PSDULen = 60
	res, err := wlansim.InputRangeCheck(base)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Pass() {
		t.Errorf("input range: %v", res)
	}
}

func TestAPIStandardsTable(t *testing.T) {
	if !strings.Contains(wlansim.StandardsTableText(), "802.11a") {
		t.Error("standards table missing 802.11a")
	}
}
