#!/bin/sh
# check.sh — the repository's full verification gate.
#
# Usage: scripts/check.sh
#
# Runs, in order: build, go vet, the domain-invariant wlanlint suite
# (cmd/wlanlint), the compiler-backed escape gate, the tests under the race
# detector, per-package coverage floors, allocation gates, benchmark smoke
# and regression gates, and short fixed-duration fuzz runs of every
# discovered fuzz target. Exits non-zero on the first failure. This is the
# gate every PR must pass.
#
# Knobs:
#   CHECK_SKIP_BENCH=1     skip the benchmark regression gate (for CI
#                          machines whose timing is too noisy to gate on)
#   CHECK_BENCH_TIME       go test -benchtime of the first round (default 50x)
#   CHECK_BENCH_SLACK_PCT  allowed regression in percent (default 10)
set -eu

cd "$(dirname "$0")/.."

echo "==> go build ./..."
go build ./...

echo "==> go vet ./..."
go vet ./...

echo "==> wlanlint ./..."
go run ./cmd/wlanlint ./...

echo "==> wlanlint -escape ./... (compiler-backed hot-path allocation gate)"
go run ./cmd/wlanlint -escape ./...

echo "==> go test -race ./..."
go test -race ./...

# Kernel dispatch tiers. The assembly tier must be bit-identical to the
# pure-Go tier, and every configuration that can disable it must actually
# run: the WLANSIM_SIMD=off env override, the purego build tag, and (on
# amd64) the asm-twin differential suite itself. `go test -list` guards make
# a silent skip impossible — if a build tag or rename ever drops the suites
# from the compiled set, the gate fails loudly instead of passing on an
# empty run.
echo "==> kernel dispatch tiers"
if [ "$(go env GOARCH)" = "amd64" ]; then
    asm_pat='AsmMatchesGo|Exported.*KernelsMatchRefBothTiers|SetDispatchToggles|GoldenBER(Dispatch|SymbolMajor)Invariant'
    n="$(go test -run '^$' -list "$asm_pat" ./internal/kernels | grep -c '^Test' || true)"
    if [ "$n" -lt 16 ]; then
        echo "FAIL: internal/kernels lists only $n asm-twin differential tests matching '$asm_pat' (silent skip)" >&2
        exit 1
    fi
    echo "    asm-twin differential suite ($n kernel tests), both tiers under -race"
    go test -race -run "$asm_pat" -count=1 ./internal/kernels ./internal/core > /dev/null
else
    echo "    $(go env GOARCH): no assembly tier; pure-Go path is the only tier"
fi
echo "    WLANSIM_SIMD=off (env-forced pure-Go dispatch)"
WLANSIM_SIMD=off go test -race -count=1 ./internal/kernels > /dev/null
echo "    -tags purego (assembly tier compiled out)"
go build -tags purego ./...
go vet -tags purego ./...
go test -tags purego -count=1 ./internal/kernels ./internal/core > /dev/null

# Coverage floors. The sweep engine and the experiment layer carry the
# determinism contract, and the lint engine is itself the verifier every
# other gate trusts, so their coverage must not regress. Each floor sits
# several points under the package's measured coverage at the time it was
# set — enough headroom to absorb line-count churn without letting whole
# paths go dark. When a floor trips on an intentional change, raise the
# tests, not the slack.
check_coverage() {
    pkg="$1"
    floor="$2"
    profile="$(mktemp)"
    go test -count=1 -coverprofile="$profile" "$pkg" > /dev/null
    pct="$(go tool cover -func="$profile" | awk '/^total:/ {sub(/%/, "", $NF); print $NF}')"
    rm -f "$profile"
    echo "    $pkg coverage: ${pct}% (floor ${floor}%)"
    if awk "BEGIN {exit !($pct < $floor)}"; then
        echo "FAIL: $pkg coverage ${pct}% is below the ${floor}% floor" >&2
        exit 1
    fi
}

echo "==> coverage floors"
check_coverage ./internal/sim 90
check_coverage ./internal/core 75
check_coverage ./internal/lint 80
check_coverage ./internal/kernels 85

# Batch≡sequential equivalence suite. Every batched kernel and every layer
# above it (RF front end, Viterbi, DATA-field decode, full bench) carries a
# differential test pinning batch lane l bit-identical to the sequential
# path. The `go test -list` guard makes a silent skip impossible: if a
# build-tag or rename ever removes the tests from the compiled set, the gate
# fails loudly instead of passing on an empty run.
echo "==> batch-equivalence differential suite"
batch_pat='Batch.*(Matches|Invariant)|Matches.*Batch|DeferredBatch|DemapSoftSeparable|SweepBatch|FillNormPairsMatches'
for pkg in ./internal/kernels ./internal/dsp ./internal/randutil ./internal/rf \
           ./internal/phy ./internal/phy/viterbi ./internal/rxdsp ./internal/sim ./internal/core; do
    n="$(go test -run '^$' -list "$batch_pat" "$pkg" | grep -c '^Test' || true)"
    if [ "$n" -eq 0 ]; then
        echo "FAIL: $pkg lists no batch-equivalence tests matching '$batch_pat' (silent skip)" >&2
        exit 1
    fi
    echo "    $pkg: $n batch-equivalence tests"
    go test -run "$batch_pat" -count=1 "$pkg" > /dev/null
done

# Sweep service. The daemon's whole value rests on two properties: a served
# series is byte-identical to the in-process run, and the content-addressed
# store survives crashes. Both are pinned by tests; the `go test -list`
# guards make a silent skip impossible — if a rename or build tag ever drops
# the suites from the compiled set, the gate fails loudly instead of passing
# on an empty run. The suites already ran under -race above; the guard +
# named re-run here is the no-skip proof.
echo "==> sweep service gates"
svc_pat='ServedSeriesByteIdentical|ConcurrentClients|Backpressure429|DrainFinishesAcceptedJobs|StreamedPrefixMatchesFinalSeries|OverlappingSweepComputesOnlyNovelPoints'
n="$(go test -run '^$' -list "$svc_pat" ./internal/service | grep -c '^Test' || true)"
if [ "$n" -lt 6 ]; then
    echo "FAIL: internal/service lists only $n service tests matching '$svc_pat' (silent skip)" >&2
    exit 1
fi
echo "    internal/service: $n byte-identity/load/backpressure/drain tests"
go test -run "$svc_pat" -count=1 ./internal/service > /dev/null
store_pat='DiskCrashRecovery|DiskRoundTripAcrossReopen|TieredPromotionAndStats|StoreConcurrent'
n="$(go test -run '^$' -list "$store_pat" ./internal/service/store | grep -c '^Test' || true)"
if [ "$n" -lt 4 ]; then
    echo "FAIL: internal/service/store lists only $n store tests matching '$store_pat' (silent skip)" >&2
    exit 1
fi
echo "    internal/service/store: $n crash-recovery/persistence tests"
go test -run "$store_pat" -count=1 ./internal/service/store > /dev/null

# Daemon smoke: boot the real wlansimd binary on a loopback port with a disk
# store, run one cold and one warm submission through the real wlansim
# client, require the warm one fully store-served, then SIGTERM and require
# a clean drain. This is the only place the actual process lifecycle
# (flags, signal handling, store reopen) executes.
echo "==> wlansimd daemon smoke"
smoke_dir="$(mktemp -d)"
go build -o "$smoke_dir/wlansimd" ./cmd/wlansimd
go build -o "$smoke_dir/wlansim" ./cmd/wlansim
"$smoke_dir/wlansimd" -addr 127.0.0.1:18931 -store-dir "$smoke_dir/store" 2> "$smoke_dir/daemon.log" &
smoke_pid=$!
trap 'kill "$smoke_pid" 2> /dev/null || true; rm -rf "$smoke_dir"' EXIT
for i in $(seq 1 50); do
    if grep -q 'listening' "$smoke_dir/daemon.log" 2> /dev/null; then break; fi
    sleep 0.1
done
"$smoke_dir/wlansim" submit -addr http://127.0.0.1:18931 -kind evm -packets 2 -points 3 > /dev/null 2> "$smoke_dir/cold.log"
"$smoke_dir/wlansim" submit -addr http://127.0.0.1:18931 -kind evm -packets 2 -points 3 > /dev/null 2> "$smoke_dir/warm.log"
if ! grep -q '3/3 points from store' "$smoke_dir/warm.log"; then
    echo "FAIL: warm resubmission was not fully store-served:" >&2
    cat "$smoke_dir/warm.log" >&2
    exit 1
fi
kill -TERM "$smoke_pid"
wait "$smoke_pid"
if ! grep -q 'drained' "$smoke_dir/daemon.log"; then
    echo "FAIL: wlansimd did not drain cleanly on SIGTERM:" >&2
    cat "$smoke_dir/daemon.log" >&2
    exit 1
fi
echo "    cold+warm submissions through the real daemon, warm 3/3 store-served, SIGTERM drained"
rm -rf "$smoke_dir"
trap - EXIT

# Hot-path guarantees. The allocation gates pin the zero-steady-state-alloc
# contract of the packet kernels (they also run under -race above, but the
# race detector's instrumentation changes allocation behavior, so they are
# re-run natively here), and the short benchmark run smoke-tests every
# scenario scripts/bench.sh tracks in BENCH_*.json without timing anything.
echo "==> allocation gates"
go test -run 'AllocFree|TestFIRProcessSteadyStateAllocs|TestRestartAllocs' -count=1 \
    ./internal/phy ./internal/phy/viterbi ./internal/dsp ./internal/randutil
go test -run 'TestPacketRunAllocBounded' -count=1 ./internal/core
go test -run 'TestSweepExecutorBuffersPooled|TestSweepScratchPooledAcrossConcurrentExecutes' -count=1 ./internal/sim

echo "==> benchmark smoke (1 iteration per scenario)"
go test -run '^$' -bench 'BenchmarkPacketBehavioral|BenchmarkSweepExecutor|BenchmarkSweepFilterBW|BenchmarkPacketIdeal24|BenchmarkSweepBatched' -benchtime 1x ./internal/core > /dev/null
go test -run '^$' -bench 'BenchmarkDecodeSoft' -benchtime 1x ./internal/phy/viterbi > /dev/null
go test -run '^$' -bench 'BenchmarkFFTStage' -benchtime 1x ./internal/kernels > /dev/null
go test -run '^$' -bench 'BenchmarkFIRProcess|BenchmarkComplexFIRProcess|BenchmarkFFT|BenchmarkDFT|BenchmarkIIRCascade3' -benchtime 1x ./internal/dsp > /dev/null
go test -run '^$' -bench 'BenchmarkDemodulateSymbol|BenchmarkModulateSymbol' -benchtime 1x ./internal/phy > /dev/null
go test -run '^$' -bench 'BenchmarkServiceJob' -benchtime 1x ./internal/service > /dev/null

# Benchmark regression gate. Re-measures the tracked packet/sweep scenarios
# >= 5 times each and compares every scenario's MEDIAN ns/op (benchstat
# compares distributions; the median over 5+ samples is the shell-portable
# analogue — unlike best-of-N it is robust to noise in both directions, and
# unlike the mean one co-tenant spike cannot drag it) against the medians
# recorded in the reference BENCH_*.json, failing on a regression beyond the slack. A
# first failure triggers one escalation round with longer runs that decides
# from its own samples alone — merging would keep round-one samples that a
# transient co-tenant load spike already poisoned. The first
# round uses the same -benchtime as scripts/bench.sh records with (50x):
# shorter runs measure colder caches and branch predictors and sit a
# near-constant ~10% above the recorded medians, which would eat the whole
# slack budget. Tune with CHECK_BENCH_TIME and CHECK_BENCH_SLACK_PCT (see
# the knobs above); CHECK_SKIP_BENCH=1 skips the gate entirely.
bench_ref="BENCH_10.json"
echo "==> benchmark regression gate (vs $bench_ref, >${CHECK_BENCH_SLACK_PCT:-10}% fails)"
if [ "${CHECK_SKIP_BENCH:-0}" = "1" ]; then
    echo "    CHECK_SKIP_BENCH=1; skipping"
elif [ -f "$bench_ref" ]; then
    bench_raw="$(mktemp)"
    bench_round() {
        : > "$bench_raw"
        go test -run '^$' -bench 'BenchmarkPacketBehavioral|BenchmarkSweepExecutor|BenchmarkSweepFilterBW|BenchmarkPacketIdeal24|BenchmarkSweepBatched' \
            -benchtime "$1" -count 5 ./internal/core >> "$bench_raw"
        awk -v slack="${CHECK_BENCH_SLACK_PCT:-10}" -v ref="$bench_ref" '
        function median(key,    n, i, j, tmp, a) {
            n = cnt[key]
            for (i = 1; i <= n; i++) a[i] = samp[key, i]
            for (i = 2; i <= n; i++) {
                tmp = a[i]
                for (j = i - 1; j >= 1 && a[j] > tmp; j--) a[j + 1] = a[j]
                a[j + 1] = tmp
            }
            if (n % 2) return a[(n + 1) / 2]
            return (a[n / 2] + a[n / 2 + 1]) / 2
        }
        BEGIN {
            while ((getline line < ref) > 0) {
                if (match(line, /"name": "[^"]+"/)) {
                    name = substr(line, RSTART + 9, RLENGTH - 10)
                    if (match(line, /"ns_per_op": [0-9.]+/))
                        want[name] = substr(line, RSTART + 13, RLENGTH - 13) + 0
                }
            }
            close(ref)
        }
        /^Benchmark/ {
            name = $1
            sub(/-[0-9]+$/, "", name) # strip the GOMAXPROCS suffix
            samp[name, ++cnt[name]] = $3 + 0
        }
        END {
            fail = 0
            for (name in cnt) {
                if (!(name in want)) continue
                med = median(name)
                limit = want[name] * (1 + slack / 100)
                verdict = "ok"
                if (med > limit) { verdict = "REGRESSED"; fail = 1 }
                printf "    %-28s median of %2d %12.0f ns/op  recorded %12.0f  limit %12.0f  %s\n", \
                    name, cnt[name], med, want[name], limit, verdict
            }
            exit fail
        }' "$bench_raw"
    }
    if ! bench_round "${CHECK_BENCH_TIME:-50x}"; then
        echo "    regression suspected; escalating with longer runs to rule out machine noise"
        if ! bench_round 100x; then
            rm -f "$bench_raw"
            echo "FAIL: tracked benchmark regressed more than ${CHECK_BENCH_SLACK_PCT:-10}% vs $bench_ref" >&2
            exit 1
        fi
    fi
    rm -f "$bench_raw"
else
    echo "    $bench_ref not found; skipping (run scripts/bench.sh first)"
fi

# Short fuzz runs on top of the seed-corpus replay that `go test` already
# performs. Targets are discovered with `go test -list` rather than
# hardcoded, so a new Fuzz* function joins the gate the moment it is
# committed. `go test -fuzz` accepts one target per invocation.
echo "==> go test -fuzz (5s per target)"
for dir in $(grep -rl '^func Fuzz' --include='*_test.go' . | xargs -n1 dirname | sort -u); do
    for target in $(go test -run '^$' -list '^Fuzz' "$dir" | grep '^Fuzz' || true); do
        echo "    $dir $target"
        go test -run '^$' -fuzz "^${target}\$" -fuzztime 5s "$dir"
    done
done

echo "OK: build, vet, wlanlint, escape gate, race tests, dispatch tiers, coverage floors, service gates, daemon smoke, alloc gates, bench smoke, regression gate and fuzz all clean"
