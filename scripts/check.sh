#!/bin/sh
# check.sh — the repository's full verification gate.
#
# Usage: scripts/check.sh
#
# Runs, in order: build, go vet, the domain-invariant wlanlint suite
# (cmd/wlanlint), and the tests under the race detector. Exits non-zero on
# the first failure. This is the gate every PR must pass.
set -eu

cd "$(dirname "$0")/.."

echo "==> go build ./..."
go build ./...

echo "==> go vet ./..."
go vet ./...

echo "==> wlanlint ./..."
go run ./cmd/wlanlint ./...

echo "==> go test -race ./..."
go test -race ./...

echo "OK: build, vet, wlanlint and race tests all clean"
