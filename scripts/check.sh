#!/bin/sh
# check.sh — the repository's full verification gate.
#
# Usage: scripts/check.sh
#
# Runs, in order: build, go vet, the domain-invariant wlanlint suite
# (cmd/wlanlint), the tests under the race detector, per-package coverage
# floors for the simulation engine, and short fixed-duration fuzz runs of
# the phy bit-permutation targets. Exits non-zero on the first failure.
# This is the gate every PR must pass.
set -eu

cd "$(dirname "$0")/.."

echo "==> go build ./..."
go build ./...

echo "==> go vet ./..."
go vet ./...

echo "==> wlanlint ./..."
go run ./cmd/wlanlint ./...

echo "==> go test -race ./..."
go test -race ./...

# Coverage floors. The sweep engine and the experiment layer carry the
# determinism contract, so their coverage must not regress. Floors sit a few
# points under the current numbers (sim 96.5%, core 82.5% as of the parallel
# sweep PR) to absorb line-count churn without letting whole paths go dark.
check_coverage() {
    pkg="$1"
    floor="$2"
    profile="$(mktemp)"
    go test -count=1 -coverprofile="$profile" "$pkg" > /dev/null
    pct="$(go tool cover -func="$profile" | awk '/^total:/ {sub(/%/, "", $NF); print $NF}')"
    rm -f "$profile"
    echo "    $pkg coverage: ${pct}% (floor ${floor}%)"
    if awk "BEGIN {exit !($pct < $floor)}"; then
        echo "FAIL: $pkg coverage ${pct}% is below the ${floor}% floor" >&2
        exit 1
    fi
}

echo "==> coverage floors"
check_coverage ./internal/sim 90
check_coverage ./internal/core 75

# Hot-path guarantees. The allocation gates pin the zero-steady-state-alloc
# contract of the packet kernels (they also run under -race above, but the
# race detector's instrumentation changes allocation behavior, so they are
# re-run natively here), and the short benchmark run smoke-tests every
# scenario scripts/bench.sh tracks in BENCH_*.json without timing anything.
echo "==> allocation gates"
go test -run 'AllocFree|TestFIRProcessSteadyStateAllocs|TestRestartAllocs' -count=1 \
    ./internal/phy ./internal/phy/viterbi ./internal/dsp ./internal/randutil

echo "==> benchmark smoke (1 iteration per scenario)"
go test -run '^$' -bench 'BenchmarkPacketBehavioral|BenchmarkSweepExecutor|BenchmarkPacketIdeal24' -benchtime 1x ./internal/core > /dev/null
go test -run '^$' -bench 'BenchmarkDecodeSoft' -benchtime 1x ./internal/phy/viterbi > /dev/null
go test -run '^$' -bench 'BenchmarkFIRProcess|BenchmarkComplexFIRProcess|BenchmarkFFT|BenchmarkDFT' -benchtime 1x ./internal/dsp > /dev/null
go test -run '^$' -bench 'BenchmarkDemodulateSymbol|BenchmarkModulateSymbol' -benchtime 1x ./internal/phy > /dev/null

# Short fuzz runs on top of the seed-corpus replay that `go test` already
# performs. `go test -fuzz` accepts one target per invocation.
echo "==> go test -fuzz (5s per target)"
go test -run '^$' -fuzz '^FuzzScramblerRoundTrip$' -fuzztime 5s ./internal/phy
go test -run '^$' -fuzz '^FuzzInterleaverRoundTrip$' -fuzztime 5s ./internal/phy

echo "OK: build, vet, wlanlint, race tests, coverage floors, alloc gates, bench smoke and fuzz all clean"
