#!/bin/sh
# bench.sh — canonical benchmark runner for the tracked perf trajectory.
#
# Usage: scripts/bench.sh [output.json]
#
# Runs the named hot-path benchmark scenarios (behavioral BER packets at
# 6/24/54 Mbit/s, the parallel sweep executor, and the Viterbi / FIR / FFT /
# OFDM microbenches) with -benchmem and writes one machine-readable JSON
# document — BENCH_<issue>.json — holding ns/op, B/op and allocs/op per
# scenario. Each perf PR checks in its BENCH_*.json so regressions against
# the trajectory are diffable.
#
# Environment:
#   BENCH_COUNT  go test -benchtime value (default 50x; raise for stability)
set -eu

cd "$(dirname "$0")/.."

out="${1:-BENCH_4.json}"
benchtime="${BENCH_COUNT:-50x}"
raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

run_bench() {
    pkg="$1"
    pattern="$2"
    echo "==> go test -bench '$pattern' $pkg" >&2
    go test -run '^$' -bench "$pattern" -benchtime "$benchtime" -benchmem -count 1 "$pkg" >> "$raw"
}

run_bench ./internal/core         'BenchmarkPacketBehavioral|BenchmarkSweepExecutor|BenchmarkSweepFilterBW|BenchmarkPacketIdeal24'
run_bench ./internal/phy/viterbi  'BenchmarkDecodeSoft'
run_bench ./internal/dsp          'BenchmarkFIRProcess|BenchmarkComplexFIRProcess|BenchmarkFFT|BenchmarkDFT'
run_bench ./internal/phy          'BenchmarkDemodulateSymbol|BenchmarkModulateSymbol'

awk -v out_date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" '
/^cpu:/ { sub(/^cpu: */, ""); cpu = $0 }
/^pkg:/ { pkg = $2 }
/^Benchmark/ {
    name = $1
    ns = ""; bytes = ""; allocs = ""
    for (i = 2; i <= NF; i++) {
        if ($i == "ns/op")     ns = $(i - 1)
        if ($i == "B/op")      bytes = $(i - 1)
        if ($i == "allocs/op") allocs = $(i - 1)
    }
    if (ns == "") next
    if (n++) printf ",\n"
    printf "    {\"package\": \"%s\", \"name\": \"%s\", \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}", pkg, name, ns, bytes, allocs
}
END {
    printf "\n  ],\n"
    printf "  \"cpu\": \"%s\",\n", cpu
    printf "  \"date\": \"%s\"\n}\n", out_date
}
BEGIN {
    printf "{\n  \"issue\": 4,\n"
    # Pre-PR baseline for the acceptance scenarios, measured at commit
    # 6f62449 (before the invariant-prefix stage cache) on the same machine.
    # BenchmarkSweepFilterBW did not exist at that commit; its baseline was
    # measured by running the identical benchmark body in a 6f62449 worktree,
    # interleaved with the post-PR runs on the same machine.
    printf "  \"baseline\": {\n"
    printf "    \"commit\": \"6f62449\",\n"
    printf "    \"BenchmarkSweepFilterBW\":      {\"ns_per_op\": 31262987, \"bytes_per_op\": 8498305, \"allocs_per_op\": 1891},\n"
    printf "    \"BenchmarkSweepExecutor\":      {\"ns_per_op\": 2299878, \"bytes_per_op\": 958587, \"allocs_per_op\": 354},\n"
    printf "    \"BenchmarkPacketBehavioral6\":  {\"ns_per_op\": 1757691, \"bytes_per_op\": 94778, \"allocs_per_op\": 21},\n"
    printf "    \"BenchmarkPacketBehavioral24\": {\"ns_per_op\": 1122633, \"bytes_per_op\": 33036, \"allocs_per_op\": 23},\n"
    printf "    \"BenchmarkPacketBehavioral54\": {\"ns_per_op\": 1102344, \"bytes_per_op\": 23039, \"allocs_per_op\": 24},\n"
    printf "    \"BenchmarkPacketIdeal24\":      {\"ns_per_op\": 729923, \"bytes_per_op\": 37638, \"allocs_per_op\": 25},\n"
    printf "    \"BenchmarkDFT/n=1024\":         {\"ns_per_op\": 3818518, \"bytes_per_op\": 32768, \"allocs_per_op\": 2},\n"
    printf "    \"BenchmarkDFT/n=257\":          {\"ns_per_op\": 248098, \"bytes_per_op\": 9728, \"allocs_per_op\": 2}\n"
    printf "  },\n"
    printf "  \"benchmarks\": [\n"
}
' "$raw" > "$out"

echo "wrote $out" >&2
