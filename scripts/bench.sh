#!/bin/sh
# bench.sh — canonical benchmark runner for the tracked perf trajectory.
#
# Usage: scripts/bench.sh [output.json]
#
# Runs the named hot-path benchmark scenarios (behavioral BER packets at
# 6/24/54 Mbit/s, the parallel sweep executor, the sweep-service job path
# cold vs warm, and the Viterbi / FIR / FFT / OFDM microbenches) with
# -benchmem, repeating every scenario BENCH_RUNS
# times, and writes one machine-readable JSON document — BENCH_<issue>.json —
# holding the per-scenario MEDIAN ns/op, B/op and allocs/op. The median over
# >= 5 samples is robust to one co-tenant load spike in either direction,
# which a single run (or a mean) is not; each perf PR checks in its
# BENCH_*.json so regressions against the trajectory are diffable.
#
# Environment:
#   BENCH_COUNT  go test -benchtime value (default 50x; raise for stability)
#   BENCH_RUNS   samples per scenario for the median (default 5, minimum 5)
set -eu

cd "$(dirname "$0")/.."

out="${1:-BENCH_9.json}"
benchtime="${BENCH_COUNT:-50x}"
runs="${BENCH_RUNS:-5}"
if [ "$runs" -lt 5 ]; then
    echo "BENCH_RUNS=$runs is below the 5-sample median minimum; using 5" >&2
    runs=5
fi
raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

# Kernel-dispatch identity of this run (avx2 / purego and the SIMD lane
# width), recorded in the JSON so benchmark numbers are attributable to a
# kernel tier. WLANSIM_SIMD=off and the purego build tag both surface here.
dispatch_line="$(go run ./cmd/wlansim version | grep '^kernels:')"
dispatch="$(echo "$dispatch_line" | awk '{gsub(/,/, "", $3); print $3}')"
lane_width="$(echo "$dispatch_line" | awk '{for (i = 1; i < NF; i++) if ($i == "width") {gsub(/[^0-9]/, "", $(i+1)); print $(i+1)}}')"

run_bench() {
    pkg="$1"
    pattern="$2"
    echo "==> go test -bench '$pattern' -count $runs $pkg" >&2
    go test -run '^$' -bench "$pattern" -benchtime "$benchtime" -benchmem -count "$runs" "$pkg" >> "$raw"
}

run_bench ./internal/core         'BenchmarkPacketBehavioral|BenchmarkSweepExecutor|BenchmarkSweepFilterBW|BenchmarkPacketIdeal24|BenchmarkSweepBatched'
run_bench ./internal/phy/viterbi  'BenchmarkDecodeSoft'
run_bench ./internal/dsp          'BenchmarkFIRProcess|BenchmarkComplexFIRProcess|BenchmarkFFT|BenchmarkDFT'
run_bench ./internal/phy          'BenchmarkDemodulateSymbol|BenchmarkModulateSymbol'
run_bench ./internal/service      'BenchmarkServiceJob'

awk -v out_date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" -v dispatch="$dispatch" -v lane_width="$lane_width" '
function median(arr, n,    i, j, tmp) {
    # insertion sort: n is tiny (BENCH_RUNS samples)
    for (i = 2; i <= n; i++) {
        tmp = arr[i]
        for (j = i - 1; j >= 1 && arr[j] > tmp; j--) arr[j + 1] = arr[j]
        arr[j + 1] = tmp
    }
    if (n % 2) return arr[(n + 1) / 2]
    return (arr[n / 2] + arr[n / 2 + 1]) / 2
}
/^cpu:/ { sub(/^cpu: */, ""); cpu = $0 }
/^pkg:/ { pkg = $2 }
/^Benchmark/ {
    name = $1
    ns = ""; bytes = ""; allocs = ""
    for (i = 2; i <= NF; i++) {
        if ($i == "ns/op")     ns = $(i - 1)
        if ($i == "B/op")      bytes = $(i - 1)
        if ($i == "allocs/op") allocs = $(i - 1)
    }
    if (ns == "") next
    if (!(name in cnt)) { order[++m] = name; pkgOf[name] = pkg }
    k = ++cnt[name]
    nsS[name, k] = ns + 0; byS[name, k] = bytes + 0; alS[name, k] = allocs + 0
}
END {
    for (i = 1; i <= m; i++) {
        name = order[i]
        n = cnt[name]
        for (j = 1; j <= n; j++) { a[j] = nsS[name, j] }
        medNs = median(a, n)
        for (j = 1; j <= n; j++) { a[j] = byS[name, j] }
        medBy = median(a, n)
        for (j = 1; j <= n; j++) { a[j] = alS[name, j] }
        medAl = median(a, n)
        if (i > 1) printf ",\n"
        printf "    {\"package\": \"%s\", \"name\": \"%s\", \"samples\": %d, \"ns_per_op\": %d, \"bytes_per_op\": %d, \"allocs_per_op\": %d}", \
            pkgOf[name], name, n, medNs, medBy, medAl
    }
    printf "\n  ],\n"
    printf "  \"cpu\": \"%s\",\n", cpu
    printf "  \"dispatch\": {\"kernels\": \"%s\", \"lane_width\": %d},\n", dispatch, lane_width
    printf "  \"date\": \"%s\"\n}\n", out_date
}
BEGIN {
    printf "{\n  \"issue\": 9,\n"
    # PR 9 acceptance scenario: a repeated identical sweep served by the
    # wlansimd result store must be >= 10x faster than computing it cold.
    # Both sides are medians from this same run (cold and warm are the two
    # BenchmarkServiceJob scenarios, same machine, same process), so machine
    # load cancels out of the ratio; the ratio check below enforces it.
    printf "  \"acceptance\": {\n"
    printf "    \"scenario\": \"repeated identical 5-point evm sweep, warm store vs cold\",\n"
    printf "    \"metric\": \"median BenchmarkServiceJobCold ns_per_op / median BenchmarkServiceJobWarm ns_per_op\",\n"
    printf "    \"required_ratio\": 10\n"
    printf "  },\n"
    printf "  \"benchmarks\": [\n"
}
' "$raw" > "$out"

# Warm-vs-cold acceptance ratio, computed from the medians just recorded.
ratio_ok="$(awk '
    /"name": "BenchmarkServiceJobCold"/ { if (match($0, /"ns_per_op": [0-9]+/)) cold = substr($0, RSTART + 13, RLENGTH - 13) + 0 }
    /"name": "BenchmarkServiceJobWarm"/ { if (match($0, /"ns_per_op": [0-9]+/)) warm = substr($0, RSTART + 13, RLENGTH - 13) + 0 }
    END {
        if (cold == 0 || warm == 0) { print "missing"; exit }
        printf "%.1f", cold / warm
    }' "$out")"
echo "service warm-vs-cold ratio: ${ratio_ok}x (required >= 10x)" >&2
case "$ratio_ok" in
    missing) echo "FAIL: service benchmarks missing from $out" >&2; exit 1 ;;
esac
if awk "BEGIN {exit !($ratio_ok < 10)}"; then
    echo "FAIL: warm store speedup ${ratio_ok}x is below the 10x acceptance ratio" >&2
    exit 1
fi

echo "wrote $out" >&2
