#!/bin/sh
# bench.sh — canonical benchmark runner for the tracked perf trajectory.
#
# Usage: scripts/bench.sh [output.json]
#
# Runs the named hot-path benchmark scenarios (behavioral BER packets at
# 6/24/54 Mbit/s, the parallel sweep executor, and the Viterbi / FIR / FFT /
# OFDM microbenches) with -benchmem and writes one machine-readable JSON
# document — BENCH_<issue>.json — holding ns/op, B/op and allocs/op per
# scenario. Each perf PR checks in its BENCH_*.json so regressions against
# the trajectory are diffable.
#
# Environment:
#   BENCH_COUNT  go test -benchtime value (default 50x; raise for stability)
set -eu

cd "$(dirname "$0")/.."

out="${1:-BENCH_3.json}"
benchtime="${BENCH_COUNT:-50x}"
raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

run_bench() {
    pkg="$1"
    pattern="$2"
    echo "==> go test -bench '$pattern' $pkg" >&2
    go test -run '^$' -bench "$pattern" -benchtime "$benchtime" -benchmem -count 1 "$pkg" >> "$raw"
}

run_bench ./internal/core         'BenchmarkPacketBehavioral|BenchmarkSweepExecutor|BenchmarkPacketIdeal24'
run_bench ./internal/phy/viterbi  'BenchmarkDecodeSoft'
run_bench ./internal/dsp          'BenchmarkFIRProcess|BenchmarkComplexFIRProcess|BenchmarkFFT|BenchmarkDFT'
run_bench ./internal/phy          'BenchmarkDemodulateSymbol|BenchmarkModulateSymbol'

awk -v out_date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" '
/^cpu:/ { sub(/^cpu: */, ""); cpu = $0 }
/^pkg:/ { pkg = $2 }
/^Benchmark/ {
    name = $1
    ns = ""; bytes = ""; allocs = ""
    for (i = 2; i <= NF; i++) {
        if ($i == "ns/op")     ns = $(i - 1)
        if ($i == "B/op")      bytes = $(i - 1)
        if ($i == "allocs/op") allocs = $(i - 1)
    }
    if (ns == "") next
    if (n++) printf ",\n"
    printf "    {\"package\": \"%s\", \"name\": \"%s\", \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}", pkg, name, ns, bytes, allocs
}
END {
    printf "\n  ],\n"
    printf "  \"cpu\": \"%s\",\n", cpu
    printf "  \"date\": \"%s\"\n}\n", out_date
}
BEGIN {
    printf "{\n  \"issue\": 3,\n"
    # Pre-PR baseline for the acceptance scenario, measured at commit
    # da84645 (before the kernel rewrite) on the same machine class.
    printf "  \"baseline\": {\n"
    printf "    \"commit\": \"da84645\",\n"
    printf "    \"BenchmarkPacketBehavioral24\": {\"ns_per_op\": 2394108, \"bytes_per_op\": 631497, \"allocs_per_op\": 245},\n"
    printf "    \"BenchmarkPacketBehavioral6\":  {\"ns_per_op\": 2996052, \"bytes_per_op\": 1186601, \"allocs_per_op\": 612},\n"
    printf "    \"BenchmarkPacketBehavioral54\": {\"ns_per_op\": 1883006, \"bytes_per_op\": 483097, \"allocs_per_op\": 171},\n"
    printf "    \"BenchmarkSweepExecutor\":      {\"ns_per_op\": 3964208, \"bytes_per_op\": 1742011, \"allocs_per_op\": 655},\n"
    printf "    \"BenchmarkDecodeSoft/bits=8112\": {\"ns_per_op\": 6088301, \"bytes_per_op\": 1056768, \"allocs_per_op\": 3}\n"
    printf "  },\n"
    printf "  \"benchmarks\": [\n"
}
' "$raw" > "$out"

echo "wrote $out" >&2
