#!/bin/sh
# bench.sh — canonical benchmark runner for the tracked perf trajectory.
#
# Usage: scripts/bench.sh [output.json]
#
# Runs the named hot-path benchmark scenarios (behavioral BER packets at
# 6/24/54 Mbit/s, the parallel sweep executor, the sweep-service job path
# cold vs warm, and the Viterbi / FIR / FFT / OFDM microbenches) with
# -benchmem, repeating every scenario BENCH_RUNS
# times, and writes one machine-readable JSON document — BENCH_<issue>.json —
# holding the per-scenario MEDIAN ns/op, B/op and allocs/op. The median over
# >= 5 samples is robust to one co-tenant load spike in either direction,
# which a single run (or a mean) is not; each perf PR checks in its
# BENCH_*.json so regressions against the trajectory are diffable.
#
# Environment:
#   BENCH_COUNT  go test -benchtime value (default 50x; raise for stability)
#   BENCH_RUNS   samples per scenario for the median (default 5, minimum 5)
set -eu

cd "$(dirname "$0")/.."

out="${1:-BENCH_10.json}"
benchtime="${BENCH_COUNT:-50x}"
runs="${BENCH_RUNS:-5}"
if [ "$runs" -lt 5 ]; then
    echo "BENCH_RUNS=$runs is below the 5-sample median minimum; using 5" >&2
    runs=5
fi
raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

# Kernel-dispatch identity of this run (avx2 / purego and the SIMD lane
# width), recorded in the JSON so benchmark numbers are attributable to a
# kernel tier. WLANSIM_SIMD=off and the purego build tag both surface here.
dispatch_line="$(go run ./cmd/wlansim version | grep '^kernels:')"
dispatch="$(echo "$dispatch_line" | awk '{gsub(/,/, "", $3); print $3}')"
lane_width="$(echo "$dispatch_line" | awk '{for (i = 1; i < NF; i++) if ($i == "width") {gsub(/[^0-9]/, "", $(i+1)); print $(i+1)}}')"

run_bench() {
    pkg="$1"
    pattern="$2"
    echo "==> go test -bench '$pattern' -count $runs $pkg" >&2
    go test -run '^$' -bench "$pattern" -benchtime "$benchtime" -benchmem -count "$runs" "$pkg" >> "$raw"
}

run_bench ./internal/core         'BenchmarkPacketBehavioral|BenchmarkSweepExecutor|BenchmarkSweepFilterBW|BenchmarkPacketIdeal24|BenchmarkSweepBatched'
run_bench ./internal/phy/viterbi  'BenchmarkDecodeSoft'
run_bench ./internal/kernels      'BenchmarkFFTStage'
run_bench ./internal/dsp          'BenchmarkFIRProcess|BenchmarkComplexFIRProcess|BenchmarkFFT|BenchmarkDFT|BenchmarkIIRCascade3'
run_bench ./internal/phy          'BenchmarkDemodulateSymbol|BenchmarkModulateSymbol'
run_bench ./internal/service      'BenchmarkServiceJob'

awk -v out_date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" -v dispatch="$dispatch" -v lane_width="$lane_width" '
function median(arr, n,    i, j, tmp) {
    # insertion sort: n is tiny (BENCH_RUNS samples)
    for (i = 2; i <= n; i++) {
        tmp = arr[i]
        for (j = i - 1; j >= 1 && arr[j] > tmp; j--) arr[j + 1] = arr[j]
        arr[j + 1] = tmp
    }
    if (n % 2) return arr[(n + 1) / 2]
    return (arr[n / 2] + arr[n / 2 + 1]) / 2
}
/^cpu:/ { sub(/^cpu: */, ""); cpu = $0 }
/^pkg:/ { pkg = $2 }
/^Benchmark/ {
    name = $1
    ns = ""; bytes = ""; allocs = ""
    for (i = 2; i <= NF; i++) {
        if ($i == "ns/op")     ns = $(i - 1)
        if ($i == "B/op")      bytes = $(i - 1)
        if ($i == "allocs/op") allocs = $(i - 1)
    }
    if (ns == "") next
    if (!(name in cnt)) { order[++m] = name; pkgOf[name] = pkg }
    k = ++cnt[name]
    nsS[name, k] = ns + 0; byS[name, k] = bytes + 0; alS[name, k] = allocs + 0
}
END {
    for (i = 1; i <= m; i++) {
        name = order[i]
        n = cnt[name]
        for (j = 1; j <= n; j++) { a[j] = nsS[name, j] }
        medNs = median(a, n)
        for (j = 1; j <= n; j++) { a[j] = byS[name, j] }
        medBy = median(a, n)
        for (j = 1; j <= n; j++) { a[j] = alS[name, j] }
        medAl = median(a, n)
        if (i > 1) printf ",\n"
        printf "    {\"package\": \"%s\", \"name\": \"%s\", \"samples\": %d, \"ns_per_op\": %d, \"bytes_per_op\": %d, \"allocs_per_op\": %d}", \
            pkgOf[name], name, n, medNs, medBy, medAl
    }
    printf "\n  ],\n"
    printf "  \"cpu\": \"%s\",\n", cpu
    printf "  \"dispatch\": {\"kernels\": \"%s\", \"lane_width\": %d},\n", dispatch, lane_width
    printf "  \"date\": \"%s\"\n}\n", out_date
}
BEGIN {
    printf "{\n  \"issue\": 10,\n"
    # PR 10 acceptance scenario: the planar FFT engine + symbol-major OFDM
    # path must hold BenchmarkPacketBehavioral24 at >= 1.2x the pre-PR
    # baseline (commit 912826b). Both sides of the recorded ratio were
    # measured with interleaved worktree rounds (16 order-alternated pairs,
    # both binaries precompiled, 400 packets per sample, medians) so machine
    # drift cancels from the ratio; a re-record of these numbers must repeat
    # that protocol. The live median this run collects is NOT comparable:
    # it is a single-run number at a different benchtime, so the post-write
    # check below treats it as advisory only.
    printf "  \"acceptance\": {\n"
    printf "    \"scenario\": \"behavioral 24 Mbit/s packet vs pre-PR baseline\",\n"
    printf "    \"metric\": \"baseline BenchmarkPacketBehavioral24 ns_per_op / measured BenchmarkPacketBehavioral24 ns_per_op\",\n"
    printf "    \"required_ratio\": 1.2,\n"
    printf "    \"measured_ratio\": 1.25,\n"
    printf "    \"measured\": {\"ns_per_op\": 459186}\n"
    printf "  },\n"
    printf "  \"baseline\": {\n"
    printf "    \"commit\": \"912826b\",\n"
    printf "    \"protocol\": \"median of 16 order-alternated interleaved worktree rounds, 400 packets per sample\",\n"
    printf "    \"BenchmarkPacketBehavioral24\": {\"ns_per_op\": 572170}\n"
    printf "  },\n"
    printf "  \"benchmarks\": [\n"
}
' "$raw" > "$out"

# Acceptance checks on the JSON just written. The recorded acceptance ratio
# (baseline / measured, both from the interleaved-worktree protocol) is the
# authoritative number and must stay at or above the floor — a re-record
# that regressed it has to come with a re-measurement, not a silent edit.
# The ratio of the frozen baseline to THIS run's live median is also printed,
# but only as a warning when low: it compares across runs and benchtimes, so
# on a co-tenant machine it routinely undershoots without meaning anything
# (the same-benchtime regression gate in scripts/check.sh carries the live
# timing enforcement).
acc="$(awk '
    /"required_ratio":/  { if (match($0, /[0-9.]+/)) req = substr($0, RSTART, RLENGTH) + 0 }
    /"measured_ratio":/  { if (match($0, /[0-9.]+/)) meas = substr($0, RSTART, RLENGTH) + 0 }
    /"BenchmarkPacketBehavioral24": \{/ { if (match($0, /"ns_per_op": [0-9]+/)) base = substr($0, RSTART + 13, RLENGTH - 13) + 0 }
    /"name": "BenchmarkPacketBehavioral24"/ { if (match($0, /"ns_per_op": [0-9]+/)) cur = substr($0, RSTART + 13, RLENGTH - 13) + 0 }
    END {
        if (req == 0 || meas == 0 || base == 0 || cur == 0) { print "missing"; exit }
        printf "%.2f %.2f %.2f", req, meas, base / cur
    }' "$out")"
case "$acc" in
    missing) echo "FAIL: acceptance block or BenchmarkPacketBehavioral24 missing from $out" >&2; exit 1 ;;
esac
req="${acc%% *}"; rest="${acc#* }"; meas="${rest%% *}"; live="${rest#* }"
echo "recorded acceptance: ${meas}x (required >= ${req}x); live median vs frozen baseline: ${live}x (advisory)" >&2
if awk "BEGIN {exit !($meas < $req)}"; then
    echo "FAIL: recorded acceptance ratio ${meas}x is below the ${req}x floor" >&2
    exit 1
fi
if awk "BEGIN {exit !($live < $req)}"; then
    echo "WARN: live cross-run ratio ${live}x is below ${req}x — meaningless under load or at short benchtimes; see the check.sh regression gate for the enforced live comparison" >&2
fi

echo "wrote $out" >&2
