package measure

import (
	"fmt"
	"strings"

	"wlansim/internal/dsp"
	"wlansim/internal/units"
)

// Spectrum estimates and formats power spectral densities — the instrument
// behind the paper's Figure 4 (OFDM signal with adjacent channel).
type Spectrum struct {
	// SegmentLength is the Welch segment size (power of two, default 1024).
	SegmentLength int
	// Window tapers the segments (default Blackman).
	Window dsp.Window
}

// NewSpectrum returns an analyzer with default settings.
func NewSpectrum() *Spectrum {
	return &Spectrum{SegmentLength: 1024, Window: dsp.Blackman}
}

// Analyze estimates the two-sided PSD of x at the given sample rate.
func (s *Spectrum) Analyze(x []complex128, sampleRateHz float64) (*dsp.PSD, error) {
	seg := s.SegmentLength
	if seg == 0 {
		seg = 1024
	}
	for seg > 2 && len(x) < seg {
		seg /= 2
	}
	return dsp.WelchPSD(x, sampleRateHz, seg, s.Window)
}

// SeriesDBm converts a PSD to a Series in dBm per resolution bandwidth,
// decimating to at most maxPoints points and offsetting the frequency axis
// by centerHz (pass the RF carrier to plot at 5.2 GHz like Figure 4).
func SeriesDBm(p *dsp.PSD, centerHz float64, maxPoints int) *Series {
	s := &Series{
		Label:  "PSD",
		XLabel: "frequency [Hz]",
		YLabel: "power density [dBm/Hz]",
	}
	step := 1
	if maxPoints > 0 && len(p.FreqHz) > maxPoints {
		step = len(p.FreqHz) / maxPoints
	}
	for i := 0; i < len(p.FreqHz); i += step {
		s.Points = append(s.Points, Point{X: centerHz + p.FreqHz[i], Y: p.DBmPerHz(i)})
	}
	return s
}

// ChannelPowerReport integrates the PSD over the wanted channel and its
// first and second adjacent channels (20 MHz raster) and reports the powers
// in dBm, reproducing the level relationships of Figure 4.
type ChannelPowerReport struct {
	WantedDBm         float64
	AdjacentDBm       float64 // +20 MHz
	SecondAdjacentDBm float64 // +40 MHz
}

// ChannelPowers integrates 18 MHz-wide channels on the 20 MHz raster.
func ChannelPowers(p *dsp.PSD) ChannelPowerReport {
	half := 9e6
	return ChannelPowerReport{
		WantedDBm:         units.WattsToDBm(p.BandPowerW(-half, half)),
		AdjacentDBm:       units.WattsToDBm(p.BandPowerW(20e6-half, 20e6+half)),
		SecondAdjacentDBm: units.WattsToDBm(p.BandPowerW(40e6-half, 40e6+half)),
	}
}

// String formats the report.
func (r ChannelPowerReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "wanted %.1f dBm, adjacent %.1f dBm, 2nd adjacent %.1f dBm",
		r.WantedDBm, r.AdjacentDBm, r.SecondAdjacentDBm)
	return b.String()
}
