package measure

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"wlansim/internal/bits"
	"wlansim/internal/phy"
)

func TestBERCounterBasics(t *testing.T) {
	var c BERCounter
	c.AddPacket([]byte{0, 1, 0, 1}, []byte{0, 1, 0, 1})
	c.AddPacket([]byte{0, 1, 0, 1}, []byte{1, 1, 0, 1})
	if c.Bits != 8 || c.Errors != 1 {
		t.Errorf("bits/errors = %d/%d", c.Bits, c.Errors)
	}
	if c.BER() != 0.125 {
		t.Errorf("BER %v", c.BER())
	}
	if c.PER() != 0.5 {
		t.Errorf("PER %v", c.PER())
	}
	if !strings.Contains(c.String(), "BER") {
		t.Error("String() malformed")
	}
}

func TestBERCounterLengthMismatchCountsErrors(t *testing.T) {
	var c BERCounter
	c.AddPacket([]byte{0, 0, 0, 0}, []byte{0, 0})
	if c.Errors != 2 {
		t.Errorf("missing bits counted as %d errors, want 2", c.Errors)
	}
}

func TestBERCounterLostPacket(t *testing.T) {
	var c BERCounter
	c.AddLostPacket(100)
	if c.BER() != 0.5 || c.PER() != 1 || c.LostPackets != 1 {
		t.Errorf("lost packet accounting wrong: %v", c.String())
	}
}

func TestBERCounterEmpty(t *testing.T) {
	var c BERCounter
	if c.BER() != 0 || c.PER() != 0 {
		t.Error("empty counter should report 0")
	}
	lo, hi := c.ConfidenceInterval95()
	if lo != 0 || hi != 0 {
		t.Error("empty confidence interval should be zero")
	}
}

func TestConfidenceIntervalBracketsTruth(t *testing.T) {
	// Simulate a known BER of 0.01 and verify the interval contains it.
	r := rand.New(rand.NewSource(1))
	var c BERCounter
	for p := 0; p < 100; p++ {
		ref := make([]byte, 1000)
		got := make([]byte, 1000)
		for i := range got {
			if r.Float64() < 0.01 {
				got[i] = 1
			}
		}
		c.AddPacket(ref, got)
	}
	lo, hi := c.ConfidenceInterval95()
	if lo > 0.01 || hi < 0.01 {
		t.Errorf("interval [%v, %v] misses the true BER 0.01 (est %v)", lo, hi, c.BER())
	}
	if hi-lo > 0.005 {
		t.Errorf("interval [%v, %v] too wide for 1e5 bits", lo, hi)
	}
}

func TestEVMZeroForPerfectPoints(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	raw := bits.Random(r, 48*4)
	syms, _ := phy.MapBits(raw, phy.QAM16)
	res, err := EVM([][]complex128{syms}, phy.QAM16)
	if err != nil {
		t.Fatal(err)
	}
	if res.RMS != 0 || res.Peak != 0 {
		t.Errorf("perfect constellation EVM %v", res)
	}
	if !math.IsInf(res.DB(), -1) {
		t.Error("zero EVM should be -Inf dB")
	}
	if res.Symbols != 48 {
		t.Errorf("symbols %d", res.Symbols)
	}
}

func TestEVMKnownOffset(t *testing.T) {
	// Shift every QPSK point by 0.1 radially: EVM = 0.1 (10%).
	raw := []byte{0, 0, 1, 1, 0, 1, 1, 0}
	syms, _ := phy.MapBits(raw, phy.QPSK)
	for i := range syms {
		syms[i] += complex(0.08, 0.06) // |offset| = 0.1
	}
	res, err := EVM([][]complex128{syms}, phy.QPSK)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.RMS-0.1) > 1e-12 {
		t.Errorf("EVM %v, want 0.1", res.RMS)
	}
	if math.Abs(res.Percent()-10) > 1e-9 {
		t.Errorf("percent %v", res.Percent())
	}
	if math.Abs(res.DB()+20) > 1e-9 {
		t.Errorf("dB %v, want -20", res.DB())
	}
}

func TestEVMDataAided(t *testing.T) {
	ref := [][]complex128{{1, -1, 1i}}
	got := [][]complex128{{1.1, -1, 1i}}
	res, err := EVMDataAided(got, ref)
	if err != nil {
		t.Fatal(err)
	}
	want := math.Sqrt(0.01 / 3)
	if math.Abs(res.RMS-want) > 1e-12 {
		t.Errorf("EVM %v, want %v", res.RMS, want)
	}
	if _, err := EVMDataAided(got, [][]complex128{{1}}); err == nil {
		t.Error("accepted shape mismatch")
	}
	if _, err := EVMDataAided(nil, nil); err == nil {
		t.Error("accepted empty input")
	}
}

func TestEVMEmptyInput(t *testing.T) {
	if _, err := EVM(nil, phy.QPSK); err == nil {
		t.Error("accepted empty carrier list")
	}
}

func TestSeriesOperations(t *testing.T) {
	s := &Series{Label: "test"}
	s.Add(3, 30)
	s.Add(1, 10)
	s.Add(2, 5)
	if s.Points[0].X != 1 || s.Points[2].X != 3 {
		t.Errorf("series not sorted: %+v", s.Points)
	}
	if m := s.Min(); m.X != 2 || m.Y != 5 {
		t.Errorf("Min = %+v", m)
	}
	if m := s.Max(); m.X != 3 || m.Y != 30 {
		t.Errorf("Max = %+v", m)
	}
	if y, ok := s.YAt(2); !ok || y != 5 {
		t.Errorf("YAt(2) = %v, %v", y, ok)
	}
	if _, ok := s.YAt(9); ok {
		t.Error("YAt(9) should not exist")
	}
}

func TestFigureRendering(t *testing.T) {
	f := &Figure{Title: "Figure X"}
	a := f.AddSeries("with", "x", "ber")
	b := f.AddSeries("without", "x", "ber")
	a.Add(1, 0.5)
	a.Add(2, 0.1)
	b.Add(1, 0.01)
	out := f.String()
	for _, want := range []string{"Figure X", "with", "without", "0.5", "0.01", "-"} {
		if !strings.Contains(out, want) {
			t.Errorf("figure output missing %q:\n%s", want, out)
		}
	}
	empty := &Figure{Title: "empty"}
	if !strings.Contains(empty.String(), "empty") {
		t.Error("empty figure should still render its title")
	}
}

func TestSpectrumAnalyzeAndChannelPowers(t *testing.T) {
	// Two noise-like channels at 0 and +20 MHz with 16 dB offset.
	r := rand.New(rand.NewSource(3))
	fs := 80e6
	n := 1 << 14
	x := make([]complex128, n)
	for i := range x {
		// Wanted: white-ish noise scaled to land mostly in-band after the
		// composite — for this unit test we only need total power ratios,
		// so use narrowband tones instead.
		ph1 := 2 * math.Pi * 1e6 * float64(i) / fs
		ph2 := 2 * math.Pi * 20e6 * float64(i) / fs
		a1 := 1e-3
		a2 := a1 * math.Pow(10, 16.0/20)
		x[i] = complex(a1*math.Cos(ph1), a1*math.Sin(ph1)) +
			complex(a2*math.Cos(ph2), a2*math.Sin(ph2)) +
			complex(r.NormFloat64(), r.NormFloat64())*1e-9
	}
	sp := NewSpectrum()
	psd, err := sp.Analyze(x, fs)
	if err != nil {
		t.Fatal(err)
	}
	rep := ChannelPowers(psd)
	if d := rep.AdjacentDBm - rep.WantedDBm; math.Abs(d-16) > 0.5 {
		t.Errorf("adjacent offset %v dB, want 16", d)
	}
	if rep.SecondAdjacentDBm > rep.WantedDBm-30 {
		t.Errorf("second adjacent %v dBm should be near the noise floor", rep.SecondAdjacentDBm)
	}
	if !strings.Contains(rep.String(), "adjacent") {
		t.Error("report String() malformed")
	}
	// Series conversion respects the center offset and decimation.
	ser := SeriesDBm(psd, 5.2e9, 128)
	if len(ser.Points) > 140 {
		t.Errorf("series not decimated: %d points", len(ser.Points))
	}
	if ser.Points[0].X < 5.1e9 {
		t.Errorf("center offset not applied: first X %v", ser.Points[0].X)
	}
}

func TestSpectrumShrinksSegmentForShortInput(t *testing.T) {
	sp := NewSpectrum()
	x := make([]complex128, 300)
	for i := range x {
		x[i] = complex(float64(i%7), 0)
	}
	if _, err := sp.Analyze(x, 1e6); err != nil {
		t.Errorf("short input not handled: %v", err)
	}
}

func TestSeriesWriteCSV(t *testing.T) {
	s := &Series{Label: "ber", XLabel: "edge", YLabel: "ber"}
	s.Add(1, 0.5)
	s.Add(2, 0.25)
	var buf strings.Builder
	if err := s.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	want := "edge,ber\n1,0.5\n2,0.25\n"
	if buf.String() != want {
		t.Errorf("CSV = %q, want %q", buf.String(), want)
	}
	// Defaults for unnamed axes.
	u := &Series{}
	u.Add(3, 4)
	buf.Reset()
	if err := u.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "x,y\n") {
		t.Errorf("default header missing: %q", buf.String())
	}
}

func TestFigureWriteCSV(t *testing.T) {
	f := &Figure{Title: "fig"}
	a := f.AddSeries("with", "cp", "ber")
	b := f.AddSeries("without", "cp", "ber")
	a.Add(1, 0.5)
	a.Add(2, 0.1)
	b.Add(2, 0.01)
	var buf strings.Builder
	if err := f.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("CSV lines %v", lines)
	}
	if lines[0] != "cp,with,without" {
		t.Errorf("header %q", lines[0])
	}
	if lines[1] != "1,0.5," {
		t.Errorf("row 1 %q (missing cell should be empty)", lines[1])
	}
	if lines[2] != "2,0.1,0.01" {
		t.Errorf("row 2 %q", lines[2])
	}
}

func TestPAPRCCDF(t *testing.T) {
	// A constant-envelope signal has all window PAPRs at 0 dB: the CCDF
	// drops from 1 immediately.
	n := 8000
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(math.Cos(float64(i)), math.Sin(float64(i)))
	}
	s, err := PAPRCCDF(x, 80)
	if err != nil {
		t.Fatal(err)
	}
	if y, ok := s.YAt(0); !ok || y != 1 {
		t.Errorf("CCDF(0) = %v, want 1", y)
	}
	if s.Max().X > 1 {
		t.Errorf("constant envelope shows PAPR up to %v dB", s.Max().X)
	}

	// Gaussian-like OFDM envelope: CCDF decreasing, nonzero mass above 6 dB.
	r := rand.New(rand.NewSource(4))
	g := make([]complex128, n)
	for i := range g {
		g[i] = complex(r.NormFloat64(), r.NormFloat64())
	}
	s2, err := PAPRCCDF(g, 80)
	if err != nil {
		t.Fatal(err)
	}
	prev := 2.0
	for _, p := range s2.Points {
		if p.Y > prev+1e-12 {
			t.Errorf("CCDF not non-increasing at %v", p.X)
		}
		prev = p.Y
	}
	if y, _ := s2.YAt(6); y <= 0 || y >= 0.9 {
		t.Errorf("CCDF(6 dB) = %v for Gaussian envelope", y)
	}

	if _, err := PAPRCCDF(x, 0); err == nil {
		t.Error("accepted zero window")
	}
	if _, err := PAPRCCDF(x[:10], 80); err == nil {
		t.Error("accepted too-short signal")
	}
	if _, err := PAPRCCDF(make([]complex128, 200), 80); err == nil {
		t.Error("accepted zero-power signal")
	}
}
