package measure

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"
)

// WriteCSV renders the series as CSV with a header row. Points annotated
// with confidence intervals (BER sweeps) gain ci95_lo/ci95_hi/bits columns;
// plain series keep the two-column format.
func (s *Series) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	x := s.XLabel
	if x == "" {
		x = "x"
	}
	y := s.YLabel
	if y == "" {
		y = s.Label
	}
	if y == "" {
		y = "y"
	}
	withCI := false
	for _, p := range s.Points {
		if p.CIHi > p.CILo || p.Bits > 0 {
			withCI = true
			break
		}
	}
	header := []string{x, y}
	if withCI {
		header = append(header, "ci95_lo", "ci95_hi", "bits")
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, p := range s.Points {
		row := []string{
			strconv.FormatFloat(p.X, 'g', -1, 64),
			strconv.FormatFloat(p.Y, 'g', -1, 64),
		}
		if withCI {
			row = append(row,
				strconv.FormatFloat(p.CILo, 'g', -1, 64),
				strconv.FormatFloat(p.CIHi, 'g', -1, 64),
				strconv.Itoa(p.Bits))
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteCSV renders the figure as CSV: the first column is the union of X
// values, one column per series; missing points are empty cells.
func (f *Figure) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := []string{"x"}
	if len(f.Series) > 0 && f.Series[0].XLabel != "" {
		header[0] = f.Series[0].XLabel
	}
	for _, s := range f.Series {
		label := s.Label
		if label == "" {
			label = fmt.Sprintf("series%d", len(header))
		}
		header = append(header, label)
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	xs := map[float64]bool{}
	for _, s := range f.Series {
		for _, p := range s.Points {
			xs[p.X] = true
		}
	}
	sorted := make([]float64, 0, len(xs))
	for x := range xs {
		sorted = append(sorted, x)
	}
	sort.Float64s(sorted)
	for _, x := range sorted {
		row := []string{strconv.FormatFloat(x, 'g', -1, 64)}
		for _, s := range f.Series {
			if y, ok := s.YAt(x); ok {
				row = append(row, strconv.FormatFloat(y, 'g', -1, 64))
			} else {
				row = append(row, "")
			}
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
