// Package measure provides the evaluation instruments of the paper's §5:
// bit-error-rate counting with confidence intervals, error vector magnitude,
// spectrum estimation, and generic parameter-sweep result containers used to
// regenerate the paper's figures and tables.
package measure

import (
	"fmt"
	"math"
)

// BERCounter accumulates bit- and packet-error statistics.
type BERCounter struct {
	// Bits is the number of compared bits.
	Bits int
	// Errors is the number of bit errors.
	Errors int
	// Packets is the number of compared packets.
	Packets int
	// PacketErrors is the number of packets with at least one bit error
	// (lost packets count too).
	PacketErrors int
	// LostPackets is the number of packets the receiver failed to deliver
	// at all (sync or SIGNAL failure).
	LostPackets int
}

// AddPacket compares one packet's reference and received bits.
func (c *BERCounter) AddPacket(ref, got []byte) {
	n := len(ref)
	if len(got) < n {
		n = len(got)
	}
	errs := 0
	for i := 0; i < n; i++ {
		if ref[i] != got[i] {
			errs++
		}
	}
	errs += len(ref) - n // missing bits are errors
	c.Bits += len(ref)
	c.Errors += errs
	c.Packets++
	if errs > 0 {
		c.PacketErrors++
	}
}

// AddLostPacket records a packet the receiver never delivered. Its bits
// count as 50% errors — the error rate of guessing — so an undecodable link
// saturates at BER 0.5 like the paper's figures.
func (c *BERCounter) AddLostPacket(refBits int) {
	c.Bits += refBits
	c.Errors += refBits / 2
	c.Packets++
	c.PacketErrors++
	c.LostPackets++
}

// BER returns the bit error rate (0 when nothing was counted).
func (c *BERCounter) BER() float64 {
	if c.Bits == 0 {
		return 0
	}
	return float64(c.Errors) / float64(c.Bits)
}

// PER returns the packet error rate.
func (c *BERCounter) PER() float64 {
	if c.Packets == 0 {
		return 0
	}
	return float64(c.PacketErrors) / float64(c.Packets)
}

// ConfidenceInterval95 returns the Wilson 95% score interval for the BER.
func (c *BERCounter) ConfidenceInterval95() (lo, hi float64) {
	if c.Bits == 0 {
		return 0, 0
	}
	const z = 1.959963984540054
	n := float64(c.Bits)
	p := c.BER()
	den := 1 + z*z/n
	center := (p + z*z/(2*n)) / den
	half := z * math.Sqrt(p*(1-p)/n+z*z/(4*n*n)) / den
	lo = center - half
	hi = center + half
	if lo < 0 {
		lo = 0
	}
	if hi > 1 {
		hi = 1
	}
	return lo, hi
}

// Point packages the counter's BER, its 95% confidence interval and the
// sample counts as one sweep point; the caller sets X.
func (c *BERCounter) Point() Point {
	lo, hi := c.ConfidenceInterval95()
	return Point{Y: c.BER(), CILo: lo, CIHi: hi, Bits: c.Bits, Errors: c.Errors}
}

// String summarizes the counter.
func (c *BERCounter) String() string {
	return fmt.Sprintf("BER %.3g (%d/%d bits), PER %.3g (%d/%d packets, %d lost)",
		c.BER(), c.Errors, c.Bits, c.PER(), c.PacketErrors, c.Packets, c.LostPackets)
}
