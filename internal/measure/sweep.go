package measure

import (
	"fmt"
	"sort"
	"strings"
)

// Point is one (x, y) sample of a swept measurement, optionally annotated
// with the statistical quality of the Y estimate.
type Point struct {
	X float64
	Y float64
	// CILo and CIHi bound the 95% confidence interval of Y when the sweep
	// recorded one (BER sweeps do); both stay zero when not measured.
	CILo float64
	CIHi float64
	// Bits and Errors are the underlying Monte-Carlo sample counts behind
	// Y for error-rate measurements (zero otherwise). They make early
	// stopping observable: a point that reached its target error count
	// with fewer bits carries a wider confidence interval.
	Bits   int
	Errors int
}

// Series is a named curve: one line of a figure.
type Series struct {
	// Label names the curve (e.g. "adjacent channel").
	Label string
	// XLabel and YLabel document the axes.
	XLabel string
	YLabel string
	// Points holds the sweep samples in X order.
	Points []Point
	// Cache reports the invariant-prefix stage cache's hit/miss/byte
	// statistics for the sweep run that produced the series (zero when the
	// sweep ran without a cache).
	Cache CacheStats
}

// Add appends a point, keeping the series sorted by X.
func (s *Series) Add(x, y float64) {
	s.AddPoint(Point{X: x, Y: y})
}

// AddPoint appends a fully annotated point, keeping the series sorted by X.
// Insertion is by binary search, so adding keeps whatever capacity Points
// already has and allocates nothing beyond slice growth; points sharing an X
// stay in insertion order.
func (s *Series) AddPoint(p Point) {
	i := sort.Search(len(s.Points), func(j int) bool { return s.Points[j].X > p.X })
	s.Points = append(s.Points, Point{})
	copy(s.Points[i+1:], s.Points[i:])
	s.Points[i] = p
}

// Min returns the point with the smallest Y (zero Point for an empty series).
func (s *Series) Min() Point {
	var best Point
	for i, p := range s.Points {
		if i == 0 || p.Y < best.Y {
			best = p
		}
	}
	return best
}

// Max returns the point with the largest Y.
func (s *Series) Max() Point {
	var best Point
	for i, p := range s.Points {
		if i == 0 || p.Y > best.Y {
			best = p
		}
	}
	return best
}

// YAt returns the Y value at the given X (exact match) and whether it exists.
func (s *Series) YAt(x float64) (float64, bool) {
	for _, p := range s.Points {
		//lint:ignore floateq documented exact-match lookup of a previously stored sweep value
		if p.X == x {
			return p.Y, true
		}
	}
	return 0, false
}

// Figure is a collection of series sharing axes — one paper figure.
type Figure struct {
	// Title names the figure (e.g. "Figure 5: BER vs filter bandwidth").
	Title  string
	Series []*Series
}

// AddSeries appends and returns a new series.
func (f *Figure) AddSeries(label, xLabel, yLabel string) *Series {
	s := &Series{Label: label, XLabel: xLabel, YLabel: yLabel}
	f.Series = append(f.Series, s)
	return s
}

// String renders the figure as an aligned text table, one row per X value
// and one column per series, matching how the harness prints reproduced
// figures.
func (f *Figure) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", f.Title)
	if len(f.Series) == 0 {
		return b.String()
	}
	// Collect the union of X values.
	xs := map[float64]bool{}
	for _, s := range f.Series {
		for _, p := range s.Points {
			xs[p.X] = true
		}
	}
	sorted := make([]float64, 0, len(xs))
	for x := range xs {
		sorted = append(sorted, x)
	}
	sort.Float64s(sorted)

	fmt.Fprintf(&b, "%-14s", f.Series[0].XLabel)
	for _, s := range f.Series {
		fmt.Fprintf(&b, "  %-22s", s.Label)
	}
	b.WriteString("\n")
	for _, x := range sorted {
		fmt.Fprintf(&b, "%-14.6g", x)
		for _, s := range f.Series {
			if y, ok := s.YAt(x); ok {
				fmt.Fprintf(&b, "  %-22.6g", y)
			} else {
				fmt.Fprintf(&b, "  %-22s", "-")
			}
		}
		b.WriteString("\n")
	}
	return b.String()
}
