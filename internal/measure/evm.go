package measure

import (
	"fmt"
	"math"

	"wlansim/internal/phy"
	"wlansim/internal/units"
)

// EVMResult summarizes an error-vector-magnitude measurement over equalized
// constellation points (paper §5.2: the distance between each received
// symbol and its ideal constellation point, before Viterbi decoding).
type EVMResult struct {
	// RMS is the root-mean-square error vector magnitude normalized to the
	// constellation's rms symbol amplitude (a fraction, not percent).
	RMS float64
	// Peak is the largest single-symbol EVM.
	Peak float64
	// Symbols is the number of measured constellation points.
	Symbols int
}

// DB returns the rms EVM in dB (20*log10).
func (r EVMResult) DB() float64 {
	if r.RMS <= 0 {
		return math.Inf(-1)
	}
	return units.VoltageGainToDB(r.RMS)
}

// Percent returns the rms EVM in percent.
func (r EVMResult) Percent() float64 { return r.RMS * 100 }

// String formats the result.
func (r EVMResult) String() string {
	return fmt.Sprintf("EVM %.2f%% (%.1f dB) over %d symbols", r.Percent(), r.DB(), r.Symbols)
}

// EVM measures the blind (decision-directed) EVM of equalized data carriers:
// each point is compared against the nearest constellation point of the
// given modulation. carriers holds one slice of 48 points per OFDM symbol.
func EVM(carriers [][]complex128, m phy.Modulation) (EVMResult, error) {
	var res EVMResult
	var acc float64
	var hard []byte
	var ideal []complex128
	var err error
	for _, sym := range carriers {
		hard, err = phy.DemapHardAppend(hard[:0], sym, m)
		if err != nil {
			return res, err
		}
		ideal, err = phy.MapBitsInto(ideal, hard, m)
		if err != nil {
			return res, err
		}
		for i, y := range sym {
			d := y - ideal[i]
			e2 := real(d)*real(d) + imag(d)*imag(d)
			acc += e2
			if e := math.Sqrt(e2); e > res.Peak {
				res.Peak = e
			}
			res.Symbols++
		}
	}
	if res.Symbols == 0 {
		return res, fmt.Errorf("measure: no symbols for EVM")
	}
	// Unit-energy constellations: normalization amplitude is 1.
	res.RMS = math.Sqrt(acc / float64(res.Symbols))
	return res, nil
}

// EVMDataAided measures EVM against the known transmitted constellation
// points, avoiding decision errors at low SNR. ref must be the same shape as
// carriers.
func EVMDataAided(carriers, ref [][]complex128) (EVMResult, error) {
	var res EVMResult
	var acc float64
	if len(carriers) != len(ref) {
		return res, fmt.Errorf("measure: EVM reference shape mismatch (%d vs %d symbols)", len(carriers), len(ref))
	}
	for s := range carriers {
		if len(carriers[s]) != len(ref[s]) {
			return res, fmt.Errorf("measure: EVM reference shape mismatch at symbol %d", s)
		}
		for i, y := range carriers[s] {
			d := y - ref[s][i]
			e2 := real(d)*real(d) + imag(d)*imag(d)
			acc += e2
			if e := math.Sqrt(e2); e > res.Peak {
				res.Peak = e
			}
			res.Symbols++
		}
	}
	if res.Symbols == 0 {
		return res, fmt.Errorf("measure: no symbols for EVM")
	}
	res.RMS = math.Sqrt(acc / float64(res.Symbols))
	return res, nil
}
