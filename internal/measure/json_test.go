package measure

import (
	"encoding/json"
	"math"
	"strings"
	"testing"
)

// TestSeriesJSONRoundTripExact pins the wire-format contract the sweep
// service relies on: a series decoded from its JSON encoding is
// Float64bits-identical to the original, including denormals, shortest-form
// extremes and negative zero. This is what makes a daemon-served series
// byte-comparable to an in-process run.
func TestSeriesJSONRoundTripExact(t *testing.T) {
	s := &Series{
		Label:  "BER vs filter bandwidth",
		XLabel: "passband edge frequency (1.0e8 Hz)",
		YLabel: "bit error rate",
		Points: []Point{
			{X: 0.06, Y: 0.4921875, CILo: 0.45, CIHi: 0.53, Bits: 4096, Errors: 2016},
			{X: math.Pi, Y: 5e-324, CILo: math.Copysign(0, -1), CIHi: 2.2250738585072014e-308},
			{X: 1e17, Y: 0, Bits: 1},
			{X: math.MaxFloat64, Y: 0.3333333333333333, Errors: 7},
		},
		Cache: CacheStats{Enabled: true, Hits: 41, Misses: 7, BytesInUse: 1 << 20, PeakBytes: 2 << 20, Evictions: 3},
	}
	b, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var got Series
	if err := json.Unmarshal(b, &got); err != nil {
		t.Fatal(err)
	}
	if got.Label != s.Label || got.XLabel != s.XLabel || got.YLabel != s.YLabel {
		t.Errorf("labels changed: %+v", got)
	}
	if got.Cache != s.Cache {
		t.Errorf("cache stats changed: %+v != %+v", got.Cache, s.Cache)
	}
	if len(got.Points) != len(s.Points) {
		t.Fatalf("point count %d != %d", len(got.Points), len(s.Points))
	}
	for i, want := range s.Points {
		have := got.Points[i]
		for _, c := range []struct {
			name       string
			want, have float64
		}{
			{"X", want.X, have.X}, {"Y", want.Y, have.Y},
			{"CILo", want.CILo, have.CILo}, {"CIHi", want.CIHi, have.CIHi},
		} {
			if math.Float64bits(c.want) != math.Float64bits(c.have) {
				t.Errorf("point %d %s: %x != %x (%v != %v)", i, c.name,
					math.Float64bits(c.have), math.Float64bits(c.want), c.have, c.want)
			}
		}
		if want.Bits != have.Bits || want.Errors != have.Errors {
			t.Errorf("point %d counts changed: %+v != %+v", i, have, want)
		}
	}
}

// TestSeriesJSONCacheOmittedWhenDisabled keeps uncached series free of a
// noise "cache" object, and a decode of such a document yields the zero
// CacheStats.
func TestSeriesJSONCacheOmittedWhenDisabled(t *testing.T) {
	s := &Series{Label: "plain", Points: []Point{{X: 1, Y: 2}}}
	b, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(b), `"cache"`) {
		t.Errorf("disabled cache encoded: %s", b)
	}
	var got Series
	if err := json.Unmarshal(b, &got); err != nil {
		t.Fatal(err)
	}
	if got.Cache != (CacheStats{}) {
		t.Errorf("decoded cache not zero: %+v", got.Cache)
	}
}

// TestFigureJSONRoundTrip covers the multi-series (waterfall) shape.
func TestFigureJSONRoundTrip(t *testing.T) {
	f := &Figure{Title: "BER vs SNR per mode"}
	a := f.AddSeries("6 Mbps", "channel SNR (dB)", "bit error rate")
	a.Add(2, 0.25)
	a.Add(4, 0.125)
	b := f.AddSeries("54 Mbps", "channel SNR (dB)", "bit error rate")
	b.Add(2, 0.5)
	raw, err := json.Marshal(f)
	if err != nil {
		t.Fatal(err)
	}
	var got Figure
	if err := json.Unmarshal(raw, &got); err != nil {
		t.Fatal(err)
	}
	if got.Title != f.Title || len(got.Series) != 2 {
		t.Fatalf("decoded figure %+v", got)
	}
	if got.Series[0].Label != "6 Mbps" || len(got.Series[0].Points) != 2 ||
		got.Series[1].Label != "54 Mbps" || len(got.Series[1].Points) != 1 {
		t.Errorf("series content changed: %+v %+v", got.Series[0], got.Series[1])
	}
}
