package measure

import "fmt"

// CacheStats reports the effectiveness of the invariant-prefix stage cache
// over one sweep run. The type lives in measure (not in the sim engine that
// maintains the cache) so a Series can carry it without an import cycle.
//
// With an ample byte budget the counters are a pure function of the sweep
// configuration — every worker count produces the same numbers, because the
// cache computes each key exactly once (single-flight) and the set of keys is
// fixed by the sweep. Under byte-budget pressure the eviction order, and with
// it Misses/Evictions, can depend on scheduling; the simulated physics never
// does (evicted entries are recomputed bit-identically from their content
// key).
type CacheStats struct {
	// Enabled reports whether a stage cache was attached to the run at all;
	// the zero value means the sweep ran uncached.
	Enabled bool `json:"enabled"`
	// Hits and Misses count lookups that reused respectively computed an
	// entry. A lookup that waits for another worker's in-flight computation
	// of the same key counts as a hit.
	Hits   int64 `json:"hits"`
	Misses int64 `json:"misses"`
	// BytesInUse is the resident entry payload at the end of the run;
	// PeakBytes is the high-water mark.
	BytesInUse int64 `json:"bytes_in_use"`
	PeakBytes  int64 `json:"peak_bytes"`
	// Evictions counts entries dropped to keep BytesInUse under the budget.
	Evictions int64 `json:"evictions"`
}

// Lookups returns the total number of cache queries.
func (s CacheStats) Lookups() int64 { return s.Hits + s.Misses }

// HitRate returns the fraction of lookups served from the cache (0 when the
// cache saw no traffic).
func (s CacheStats) HitRate() float64 {
	if n := s.Lookups(); n > 0 {
		return float64(s.Hits) / float64(n)
	}
	return 0
}

// String formats the statistics for the CLI reports.
func (s CacheStats) String() string {
	if !s.Enabled {
		return "stage cache: disabled"
	}
	return fmt.Sprintf("stage cache: %d hits / %d misses (%.1f%% hit rate), %d bytes resident (peak %d, %d evictions)",
		s.Hits, s.Misses, 100*s.HitRate(), s.BytesInUse, s.PeakBytes, s.Evictions)
}
