package measure

import "encoding/json"

// JSON codecs for the measurement types. One encoder serves every consumer:
// the `wlansim -format json` CLI output and the wlansimd daemon's HTTP
// responses marshal through the same methods, so a client decoding a served
// series sees exactly the document an in-process run would have printed.
//
// Floating-point fields round-trip exactly: encoding/json emits the shortest
// decimal that parses back to the identical float64 bit pattern (including
// negative zero), so a decoded series is Float64bits-identical to the
// encoded one. NaN and infinities are not representable in JSON and fail to
// encode; measurement series never carry them.

// pointJSON is the wire form of a Point. Every field is always present —
// omitempty on float columns would erase the sign of a negative zero and
// make the CI columns appear and disappear between points.
type pointJSON struct {
	X      float64 `json:"x"`
	Y      float64 `json:"y"`
	CILo   float64 `json:"ci95_lo"`
	CIHi   float64 `json:"ci95_hi"`
	Bits   int     `json:"bits"`
	Errors int     `json:"errors"`
}

// seriesJSON is the wire form of a Series.
type seriesJSON struct {
	Label  string      `json:"label"`
	XLabel string      `json:"x_label"`
	YLabel string      `json:"y_label"`
	Points []pointJSON `json:"points"`
	Cache  *CacheStats `json:"cache,omitempty"`
}

// figureJSON is the wire form of a Figure.
type figureJSON struct {
	Title  string            `json:"title"`
	Series []json.RawMessage `json:"series"`
}

// MarshalJSON renders a single point in the same wire form the series
// encoder uses for its points array — the daemon's NDJSON stream emits
// points through this, so a streamed point and the matching entry of the
// final series document are byte-identical.
func (p Point) MarshalJSON() ([]byte, error) {
	return json.Marshal(pointJSON{X: p.X, Y: p.Y, CILo: p.CILo, CIHi: p.CIHi, Bits: p.Bits, Errors: p.Errors})
}

// UnmarshalJSON restores a point from its wire form.
func (p *Point) UnmarshalJSON(data []byte) error {
	var in pointJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return err
	}
	*p = Point{X: in.X, Y: in.Y, CILo: in.CILo, CIHi: in.CIHi, Bits: in.Bits, Errors: in.Errors}
	return nil
}

// MarshalJSON renders the series with its full point annotations (CI bounds,
// sample counts) and, when a stage cache ran, its CacheStats.
func (s *Series) MarshalJSON() ([]byte, error) {
	out := seriesJSON{
		Label:  s.Label,
		XLabel: s.XLabel,
		YLabel: s.YLabel,
		Points: make([]pointJSON, len(s.Points)),
	}
	for i, p := range s.Points {
		out.Points[i] = pointJSON{X: p.X, Y: p.Y, CILo: p.CILo, CIHi: p.CIHi, Bits: p.Bits, Errors: p.Errors}
	}
	if s.Cache.Enabled {
		c := s.Cache
		out.Cache = &c
	}
	return json.Marshal(out)
}

// UnmarshalJSON restores a series from its wire form. Points are adopted in
// their encoded order (the encoder wrote them X-sorted), not re-inserted
// through AddPoint, so a decoded series is field-for-field identical to the
// encoded one.
func (s *Series) UnmarshalJSON(data []byte) error {
	var in seriesJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return err
	}
	s.Label, s.XLabel, s.YLabel = in.Label, in.XLabel, in.YLabel
	s.Points = make([]Point, len(in.Points))
	for i, p := range in.Points {
		s.Points[i] = Point{X: p.X, Y: p.Y, CILo: p.CILo, CIHi: p.CIHi, Bits: p.Bits, Errors: p.Errors}
	}
	if in.Cache != nil {
		s.Cache = *in.Cache
	} else {
		s.Cache = CacheStats{}
	}
	return nil
}

// MarshalJSON renders the figure as a title plus its series documents.
func (f *Figure) MarshalJSON() ([]byte, error) {
	out := figureJSON{Title: f.Title, Series: make([]json.RawMessage, len(f.Series))}
	for i, s := range f.Series {
		b, err := s.MarshalJSON()
		if err != nil {
			return nil, err
		}
		out.Series[i] = b
	}
	return json.Marshal(out)
}

// UnmarshalJSON restores a figure from its wire form.
func (f *Figure) UnmarshalJSON(data []byte) error {
	var in figureJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return err
	}
	f.Title = in.Title
	f.Series = make([]*Series, len(in.Series))
	for i, raw := range in.Series {
		s := new(Series)
		if err := s.UnmarshalJSON(raw); err != nil {
			return err
		}
		f.Series[i] = s
	}
	return nil
}
