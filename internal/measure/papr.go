package measure

import (
	"fmt"
	"sort"

	"wlansim/internal/units"
)

// PAPR analysis: the complementary cumulative distribution of the OFDM
// envelope's peak-to-average power ratio — the standard figure used to size
// PA backoff and ADC headroom.

// PAPRCCDF computes the CCDF of per-window PAPR: the waveform is split into
// windows of windowLen samples (an OFDM symbol, typically 80), each window's
// PAPR is computed against the global mean power, and the CCDF
// P(PAPR > x) is evaluated on a 0.5 dB grid up to the observed maximum.
func PAPRCCDF(x []complex128, windowLen int) (*Series, error) {
	if windowLen < 1 {
		return nil, fmt.Errorf("measure: PAPR window %d < 1", windowLen)
	}
	if len(x) < windowLen {
		return nil, fmt.Errorf("measure: signal shorter than one window")
	}
	var mean float64
	for _, v := range x {
		mean += real(v)*real(v) + imag(v)*imag(v)
	}
	mean /= float64(len(x))
	if mean <= 0 {
		return nil, fmt.Errorf("measure: zero-power signal")
	}
	var paprs []float64
	for start := 0; start+windowLen <= len(x); start += windowLen {
		var peak float64
		for _, v := range x[start : start+windowLen] {
			if p := real(v)*real(v) + imag(v)*imag(v); p > peak {
				peak = p
			}
		}
		if peak > 0 {
			paprs = append(paprs, units.LinearToDB(peak/mean))
		}
	}
	if len(paprs) == 0 {
		return nil, fmt.Errorf("measure: no usable windows")
	}
	sort.Float64s(paprs)
	maxP := paprs[len(paprs)-1]

	s := &Series{
		Label:  "PAPR CCDF",
		XLabel: "PAPR threshold (dB)",
		YLabel: "P(PAPR > x)",
	}
	n := float64(len(paprs))
	for x0 := 0.0; x0 <= maxP+0.5; x0 += 0.5 {
		// Count windows above the threshold.
		idx := sort.SearchFloat64s(paprs, x0)
		s.Add(x0, float64(len(paprs)-idx)/n)
	}
	return s, nil
}
