package dsp

import (
	"fmt"
	"math"
	"math/cmplx"
)

// Upsampler increases the sample rate by an integer factor using zero
// stuffing followed by an anti-imaging lowpass filter.
type Upsampler struct {
	factor int
	filter *FIR
}

// NewUpsampler builds an upsampler for the given integer factor. taps sets
// the anti-imaging filter length (per output rate); 0 selects a default.
func NewUpsampler(factor, taps int) (*Upsampler, error) {
	if factor < 1 {
		return nil, fmt.Errorf("dsp: upsample factor %d < 1", factor)
	}
	if taps == 0 {
		// Long enough that the transition band stays between the 802.11a
		// occupied bandwidth (0.415 of the original Nyquist) and its first
		// image — short interpolators leak images that alias back in-band
		// after unfiltered decimation downstream.
		taps = 48*factor + 1
	}
	var f *FIR
	if factor > 1 {
		var err error
		// Cut at the original Nyquist, i.e. 0.5/factor of the new rate.
		f, err = DesignLowpassFIR(taps, 0.5/float64(factor), Blackman)
		if err != nil {
			return nil, err
		}
	}
	return &Upsampler{factor: factor, filter: f}, nil
}

// Factor returns the rate-change factor.
func (u *Upsampler) Factor() int { return u.factor }

// Reset clears the filter state.
func (u *Upsampler) Reset() {
	if u.filter != nil {
		u.filter.Reset()
	}
}

// Process returns the upsampled signal (len(x)*factor samples). Zero stuffing
// loses a factor of `factor` in amplitude, which the interpolation filter
// compensates by an equal gain so the waveform amplitude is preserved.
func (u *Upsampler) Process(x []complex128) []complex128 {
	return u.ProcessInto(make([]complex128, 0, len(x)*u.factor), x)
}

// ProcessInto appends the upsampled signal to dst and returns it, reusing
// dst's capacity — the allocation-free form of Process for callers that
// carry a buffer across packets.
func (u *Upsampler) ProcessInto(dst, x []complex128) []complex128 {
	if u.factor == 1 {
		return append(dst, x...)
	}
	base := len(dst)
	need := base + len(x)*u.factor
	if cap(dst) < need {
		grown := make([]complex128, base, need)
		copy(grown, dst)
		dst = grown
	}
	dst = dst[:need]
	out := dst[base:]
	for i := range out {
		out[i] = 0
	}
	g := complex(float64(u.factor), 0)
	for i, v := range x {
		out[i*u.factor] = v * g
	}
	u.filter.Process(out)
	return dst
}

// Downsampler reduces the sample rate by an integer factor with an
// anti-aliasing lowpass filter ahead of the decimation.
type Downsampler struct {
	factor int
	filter *FIR
	phase  int
	buf    []complex128 // block-filtering scratch, reused across frames
}

// NewDownsampler builds a decimator for the given integer factor. taps sets
// the anti-aliasing filter length; 0 selects a default. If filtered is false
// the decimator picks raw samples (used to model deliberate aliasing, e.g.
// an ADC sampling an insufficiently filtered signal).
func NewDownsampler(factor, taps int, filtered bool) (*Downsampler, error) {
	if factor < 1 {
		return nil, fmt.Errorf("dsp: downsample factor %d < 1", factor)
	}
	d := &Downsampler{factor: factor}
	if factor > 1 && filtered {
		if taps == 0 {
			taps = 48*factor + 1
		}
		f, err := DesignLowpassFIR(taps, 0.5/float64(factor), Blackman)
		if err != nil {
			return nil, err
		}
		d.filter = f
	}
	return d, nil
}

// Factor returns the rate-change factor.
func (d *Downsampler) Factor() int { return d.factor }

// Reset clears the filter state and decimation phase.
func (d *Downsampler) Reset() {
	if d.filter != nil {
		d.filter.Reset()
	}
	d.phase = 0
}

// Process returns the decimated signal. The decimation phase persists across
// calls so frame boundaries do not disturb the output grid.
func (d *Downsampler) Process(x []complex128) []complex128 {
	return d.ProcessInto(make([]complex128, 0, len(x)/d.factor+1), x)
}

// ProcessInto appends the decimated signal to dst and returns it, reusing
// dst's capacity. The anti-aliasing filter runs block-wise over the frame
// (x itself is left untouched), and the decimation phase persists across
// calls so frame boundaries do not disturb the output grid.
func (d *Downsampler) ProcessInto(dst, x []complex128) []complex128 {
	y := x
	if d.filter != nil {
		if cap(d.buf) < len(x) {
			d.buf = make([]complex128, len(x))
		}
		y = d.buf[:len(x)]
		copy(y, x)
		d.filter.Process(y)
	}
	if d.factor == 1 {
		return append(dst, y...)
	}
	for _, v := range y {
		if d.phase == 0 {
			dst = append(dst, v)
		}
		d.phase++
		if d.phase == d.factor {
			d.phase = 0
		}
	}
	return dst
}

// Oscillator is a numerically controlled oscillator producing
// exp(i*(2*pi*nu*n + phase0)) used for frequency shifting. The phase persists
// across frames.
type Oscillator struct {
	step  complex128
	state complex128
}

// NewOscillator creates an oscillator at normalized frequency nu (cycles per
// sample, may be negative) and initial phase in radians.
func NewOscillator(nu, phase float64) *Oscillator {
	return &Oscillator{
		step:  cmplx.Exp(complex(0, 2*math.Pi*nu)),
		state: cmplx.Exp(complex(0, phase)),
	}
}

// Next returns the current oscillator sample and advances the phase.
func (o *Oscillator) Next() complex128 {
	v := o.state
	o.state *= o.step
	// Renormalize occasionally to counter numeric drift. The squared
	// magnitude screens out the per-sample hypot: with s within
	// (0.9999985, 1.0000015), sqrt(s) — and the correctly-rounded
	// cmplx.Abs, at most a few ulps away — is strictly inside the
	// (0.999999, 1.000001) no-renormalization band (the squared bounds are
	// 0.999998..., 1.000002...), so the old path would leave the state
	// untouched and skipping it is bit-exact. The band is ~7e-7 wide per
	// side, nine orders above the comparison's rounding error.
	re, im := real(o.state), imag(o.state)
	if s := re*re + im*im; s < 0.9999985 || s > 1.0000015 {
		if m := cmplx.Abs(o.state); m < 0.999999 || m > 1.000001 {
			o.state /= complex(m, 0)
		}
	}
	return v
}

// MixInto multiplies x in place by the oscillator output and returns x
// (a complex frequency shift by +nu cycles per sample).
func (o *Oscillator) MixInto(x []complex128) []complex128 {
	for i := range x {
		x[i] *= o.Next()
	}
	return x
}

// FrequencyShift returns a copy of x shifted by nu cycles per sample.
func FrequencyShift(x []complex128, nu float64) []complex128 {
	out := make([]complex128, len(x))
	copy(out, x)
	NewOscillator(nu, 0).MixInto(out)
	return out
}
