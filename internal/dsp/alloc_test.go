package dsp

import (
	"math/rand"
	"testing"

	"wlansim/internal/race"
)

// skipAllocGateUnderRace skips a steady-state allocation gate under the race
// detector, where sync.Pool intentionally drops Puts and the warm-pool
// zero-allocation contract cannot hold. check.sh re-runs these gates without
// -race, where they are enforced.
func skipAllocGateUnderRace(t *testing.T) {
	t.Helper()
	if race.Enabled {
		t.Skip("sync.Pool drops Puts under the race detector; the non-race alloc gate enforces this contract")
	}
}

// TestFFTTransformAllocFree gates the planar FFT engine's steady-state
// contract: once the plan's scratch pool is warm, Forward, Inverse, the
// batched four-lane transforms and the Into entry points (shared-plan path,
// n = 64 — the OFDM hot path) allocate nothing.
func TestFFTTransformAllocFree(t *testing.T) {
	skipAllocGateUnderRace(t)
	rng := rand.New(rand.NewSource(3))
	const n = 64
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	p, err := NewFFTPlan(n)
	if err != nil {
		t.Fatal(err)
	}
	dst := make([]complex128, n)
	frames := make([][]complex128, 5)
	for f := range frames {
		frames[f] = append([]complex128(nil), x...)
	}
	// Warm the plan pools and the shared plan cache.
	p.Forward(dst)
	p.ForwardMany(frames)
	FFTInto(dst, x)
	IFFTInto(dst, x)

	if got := testing.AllocsPerRun(20, func() {
		p.Forward(dst)
		p.Inverse(dst)
		p.ForwardMany(frames)
		p.InverseMany(frames)
		FFTInto(dst, x)
		IFFTInto(dst, x)
	}); got != 0 {
		t.Fatalf("planar FFT path allocates %v objects per steady-state run, want 0", got)
	}
}

// TestOLSConvAllocFree gates the overlap-save block convolution: with a warm
// engine the planar spectral round trip allocates nothing per frame.
func TestOLSConvAllocFree(t *testing.T) {
	skipAllocGateUnderRace(t)
	rng := rand.New(rand.NewSource(4))
	taps := make([]complex128, 64)
	for i := range taps {
		taps[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	c := newOLSConv(taps)
	ext := make([]complex128, len(taps)-1+256)
	for i := range ext {
		ext[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	dst := make([]complex128, 256)
	c.process(dst, ext)

	if got := testing.AllocsPerRun(20, func() {
		c.process(dst, ext)
	}); got != 0 {
		t.Fatalf("overlap-save path allocates %v objects per steady-state run, want 0", got)
	}
}
