package dsp

import (
	"fmt"
	"math/rand"
	"testing"
)

// Equivalence suite for the block-convolution FIR rewrite: every path
// (direct block, FFT overlap-save, single-sample) must reproduce the
// original per-sample ring-buffer filter sample for sample, across awkward
// frame sizes, interleaved Resets and streaming history carried between
// frames.

const firEquivTol = 1e-12

// refFIR is the original modulo ring-buffer implementation, kept as the
// test oracle.
type refFIR struct {
	taps  []complex128
	delay []complex128
	pos   int
}

func newRefFIR(taps []complex128) *refFIR {
	return &refFIR{taps: taps, delay: make([]complex128, len(taps))}
}

func (f *refFIR) reset() {
	for i := range f.delay {
		f.delay[i] = 0
	}
	f.pos = 0
}

func (f *refFIR) process(x []complex128) []complex128 {
	out := make([]complex128, len(x))
	for i, v := range x {
		f.delay[f.pos] = v
		var acc complex128
		idx := f.pos
		for _, t := range f.taps {
			acc += f.delay[idx] * t
			idx--
			if idx < 0 {
				idx = len(f.delay) - 1
			}
		}
		f.pos++
		if f.pos == len(f.delay) {
			f.pos = 0
		}
		out[i] = acc
	}
	return out
}

func realTaps(rng *rand.Rand, n int) []float64 {
	h := make([]float64, n)
	for i := range h {
		h[i] = rng.NormFloat64()
	}
	return h
}

func complexTaps(rng *rand.Rand, n int) []complex128 {
	h := make([]complex128, n)
	for i := range h {
		h[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	return h
}

func toComplex(h []float64) []complex128 {
	out := make([]complex128, len(h))
	for i, v := range h {
		out[i] = complex(v, 0)
	}
	return out
}

func assertClose(t *testing.T, label string, got, want []complex128) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d, want %d", label, len(got), len(want))
	}
	for i := range got {
		if d := cmplxAbs(got[i] - want[i]); d > firEquivTol {
			t.Fatalf("%s: sample %d differs by %g (got %v, want %v)",
				label, i, d, got[i], want[i])
		}
	}
}

func cmplxAbs(v complex128) float64 {
	re, im := real(v), imag(v)
	if re < 0 {
		re = -re
	}
	if im < 0 {
		im = -im
	}
	return re + im
}

// frameSchedules are the frame-length sequences each tap count is streamed
// through: single samples, prime lengths, one big frame, and ragged mixes
// that leave partial history between frames.
func frameSchedules() [][]int {
	return [][]int{
		{1, 1, 1, 1, 1, 1, 1, 1},
		{7, 13, 31, 97, 101},
		{1021},
		{1, 257, 1, 640, 3, 89},
		{5, 500, 5, 500},
	}
}

// TestFIRMatchesPerSampleReference streams random signals through NewFIR
// frame by frame and checks every output against the ring-buffer oracle,
// with a Reset in the middle to prove state clearing matches too.
func TestFIRMatchesPerSampleReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, taps := range []int{1, 2, 3, 11, 47, 48, 64, 101, 193, 331} {
		for si, frames := range frameSchedules() {
			h := realTaps(rng, taps)
			f := NewFIR(h)
			ref := newRefFIR(toComplex(h))
			for pass := 0; pass < 2; pass++ {
				for fi, n := range frames {
					x := randomSignal(rng, n)
					want := ref.process(x)
					got := f.Process(append([]complex128(nil), x...))
					assertClose(t, fmt.Sprintf("taps=%d sched=%d pass=%d frame=%d", taps, si, pass, fi), got, want)
				}
				// Second pass re-runs the schedule after an
				// interleaved Reset.
				f.Reset()
				ref.reset()
			}
		}
	}
}

// TestComplexFIRMatchesPerSampleReference is the same sweep for the
// complex-tap filter.
func TestComplexFIRMatchesPerSampleReference(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for _, taps := range []int{1, 2, 13, 48, 64, 256} {
		for si, frames := range frameSchedules() {
			h := complexTaps(rng, taps)
			f, err := NewComplexFIR(h)
			if err != nil {
				t.Fatal(err)
			}
			ref := newRefFIR(h)
			for pass := 0; pass < 2; pass++ {
				for fi, n := range frames {
					x := randomSignal(rng, n)
					want := ref.process(x)
					got := f.Process(append([]complex128(nil), x...))
					assertClose(t, fmt.Sprintf("taps=%d sched=%d pass=%d frame=%d", taps, si, pass, fi), got, want)
				}
				f.Reset()
				ref.reset()
			}
		}
	}
}

// TestFIRProcessSampleMatchesProcess mixes the two entry points on one
// filter instance: they must advance the same history.
func TestFIRProcessSampleMatchesProcess(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	h := realTaps(rng, 31)
	f := NewFIR(h)
	ref := newRefFIR(toComplex(h))
	for round := 0; round < 6; round++ {
		if round%2 == 0 {
			x := randomSignal(rng, 53)
			want := ref.process(x)
			got := f.Process(append([]complex128(nil), x...))
			assertClose(t, fmt.Sprintf("round=%d frame", round), got, want)
			continue
		}
		for i := 0; i < 29; i++ {
			x := randomSignal(rng, 1)
			want := ref.process(x)
			got := f.ProcessSample(x[0])
			if d := cmplxAbs(got - want[0]); d > firEquivTol {
				t.Fatalf("round=%d sample %d differs by %g", round, i, d)
			}
		}
	}
}

// TestFIROverlapSaveEngaged pins the path-selection contract: the tap/frame
// sizes the long filters run at really do exercise the FFT engine, so the
// equivalence sweep above is testing it (and not silently the direct path).
func TestFIROverlapSaveEngaged(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	f := NewFIR(realTaps(rng, 193))
	f.Process(randomSignal(rng, 4096))
	if f.ols == nil {
		t.Fatal("193-tap filter on a 4096 frame did not build the overlap-save engine")
	}
	g := NewFIR(realTaps(rng, 11))
	g.Process(randomSignal(rng, 4096))
	if g.ols != nil {
		t.Fatal("11-tap filter unexpectedly took the overlap-save path")
	}
	if olsUsable(64, 64) {
		t.Fatal("overlap-save engaged on a frame too short to amortize it")
	}
}

// TestFIRProcessSteadyStateAllocs is the allocation gate from the perf PR:
// once warmed up, frame filtering must not touch the heap on either path.
func TestFIRProcessSteadyStateAllocs(t *testing.T) {
	skipAllocGateUnderRace(t) // the OLS path rides the FFT plan's scratch pool
	rng := rand.New(rand.NewSource(11))
	for _, taps := range []int{11, 193} {
		f := NewFIR(realTaps(rng, taps))
		x := randomSignal(rng, 4096)
		f.Process(append([]complex128(nil), x...)) // warm scratch + OLS engine
		buf := make([]complex128, len(x))
		allocs := testing.AllocsPerRun(10, func() {
			copy(buf, x)
			f.Process(buf)
		})
		if allocs != 0 {
			t.Errorf("taps=%d: %v allocs per Process, want 0", taps, allocs)
		}
	}
}
