package dsp

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
)

func TestComplexFIRImpulseResponse(t *testing.T) {
	taps := []complex128{1i, 0.5, -0.25i}
	f, err := NewComplexFIR(taps)
	if err != nil {
		t.Fatal(err)
	}
	x := []complex128{1, 0, 0, 0}
	f.Process(x)
	want := []complex128{1i, 0.5, -0.25i, 0}
	for i := range want {
		if cmplx.Abs(x[i]-want[i]) > 1e-15 {
			t.Fatalf("impulse response %v, want %v", x, want)
		}
	}
	if _, err := NewComplexFIR(nil); err == nil {
		t.Error("accepted empty taps")
	}
}

func TestComplexFIRAsymmetricResponse(t *testing.T) {
	// A one-tap rotator followed by a delay realizes a response whose
	// positive and negative frequency behavior differ; verify Response
	// against direct evaluation.
	f, _ := NewComplexFIR([]complex128{0.5, 0.25i})
	for _, nu := range []float64{-0.3, -0.1, 0, 0.1, 0.3} {
		want := 0.5 + 0.25i*cmplx.Exp(complex(0, -2*math.Pi*nu))
		if got := f.Response(nu); cmplx.Abs(got-want) > 1e-12 {
			t.Errorf("response at %v: %v, want %v", nu, got, want)
		}
	}
}

func TestComplexFIRStreamingMatchesBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	taps := make([]complex128, 17)
	for i := range taps {
		taps[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	f1, _ := NewComplexFIR(taps)
	f2, _ := NewComplexFIR(taps)
	x := randomSignal(rng, 200)
	batch := f1.Process(Clone(x))
	var stream []complex128
	for s := 0; s < len(x); s += 13 {
		e := s + 13
		if e > len(x) {
			e = len(x)
		}
		stream = append(stream, f2.Process(Clone(x[s:e]))...)
	}
	if d := maxAbsDiff(batch, stream); d > 1e-12 {
		t.Errorf("streaming differs by %g", d)
	}
	f2.Reset()
	if got := f2.ProcessSample(1); cmplx.Abs(got-taps[0]) > 1e-15 {
		t.Error("Reset did not clear state")
	}
}

func TestFIRFromFrequencyResponseRoundTrip(t *testing.T) {
	// Sample the response of a known short filter on the grid, rebuild,
	// and compare taps.
	orig := []complex128{0.5, 0.2 - 0.1i, -0.05i, 0.01}
	n := 16
	h := make([]complex128, n)
	ref, _ := NewComplexFIR(orig)
	for k := range h {
		h[k] = ref.Response(float64(k) / float64(n))
	}
	rebuilt, err := FIRFromFrequencyResponse(h)
	if err != nil {
		t.Fatal(err)
	}
	taps := rebuilt.Taps()
	for i := range orig {
		if cmplx.Abs(taps[i]-orig[i]) > 1e-12 {
			t.Fatalf("tap %d = %v, want %v", i, taps[i], orig[i])
		}
	}
	for i := len(orig); i < n; i++ {
		if cmplx.Abs(taps[i]) > 1e-12 {
			t.Fatalf("spurious tap %d = %v", i, taps[i])
		}
	}
	if _, err := FIRFromFrequencyResponse(make([]complex128, 5)); err == nil {
		t.Error("accepted non-power-of-two grid")
	}
}
