package dsp

import (
	"fmt"
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

func maxAbsDiff(a, b []complex128) float64 {
	var m float64
	for i := range a {
		if d := cmplx.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}

func randomSignal(r *rand.Rand, n int) []complex128 {
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(r.NormFloat64(), r.NormFloat64())
	}
	return x
}

func TestNewFFTPlanRejectsNonPowerOfTwo(t *testing.T) {
	for _, n := range []int{0, -4, 3, 6, 12, 100} {
		if _, err := NewFFTPlan(n); err == nil {
			t.Errorf("NewFFTPlan(%d) accepted a non-power-of-two size", n)
		}
	}
	for _, n := range []int{1, 2, 64, 1024} {
		if _, err := NewFFTPlan(n); err != nil {
			t.Errorf("NewFFTPlan(%d): %v", n, err)
		}
	}
}

func TestFFTMatchesDFT(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 2, 4, 8, 64, 256} {
		x := randomSignal(r, n)
		got := FFT(x)
		want := dftDirect(x)
		if d := maxAbsDiff(got, want); d > 1e-9*float64(n) {
			t.Errorf("n=%d: FFT differs from direct DFT by %g", n, d)
		}
	}
}

// TestDFTRoutingEquivalence pins DFT's routing boundaries: power-of-two
// lengths take the FFT plan cache and must agree with the direct oracle to
// float rounding; non-powers of two at least bluesteinMinSize take the
// chirp-z path (same tolerance); smaller lengths take the direct path and
// must agree with the oracle bit-exactly. The sizes bracket both boundaries
// (n and n±1) so a routing-predicate regression cannot hide.
func TestDFTRoutingEquivalence(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for _, n := range []int{1, 2, 3, 4, 5, 31, 32, 33, 63, 64, 65, 255, 256, 257, 1023, 1024} {
		x := randomSignal(r, n)
		got := DFT(x)
		want := dftDirect(x)
		switch {
		case n&(n-1) == 0:
			if d := maxAbsDiff(got, want); d > 1e-9*float64(n) {
				t.Errorf("n=%d (pow2, FFT-routed): differs from direct oracle by %g", n, d)
			}
			// The fast path must be the plan-cache FFT, not a re-derivation:
			// bit-identical to FFT on the same input.
			if d := maxAbsDiff(got, FFT(x)); d != 0 {
				t.Errorf("n=%d: DFT fast path differs from FFT by %g", n, d)
			}
		case n >= bluesteinMinSize:
			if d := maxAbsDiff(got, want); d > 1e-9*float64(n) {
				t.Errorf("n=%d (chirp-z-routed): differs from direct oracle by %g", n, d)
			}
		default:
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("n=%d (direct-routed): bin %d differs from oracle: %v vs %v", n, i, got[i], want[i])
				}
			}
		}
	}
}

// TestDFTBluesteinMatchesDirect sweeps awkward non-power-of-two lengths —
// primes, prime powers, highly composite sizes, and the padding boundary
// where 2n-1 just crosses a power of two — against the direct-summation
// oracle.
func TestDFTBluesteinMatchesDirect(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	for _, n := range []int{32, 33, 37, 61, 81, 100, 127, 129, 255, 257, 343, 500, 509, 512 + 1, 719, 1000} {
		x := randomSignal(r, n)
		got := dftBluestein(x)
		want := dftDirect(x)
		if d := maxAbsDiff(got, want); d > 1e-9*float64(n) {
			t.Errorf("n=%d: chirp-z differs from direct oracle by %g", n, d)
		}
	}
	// The chirp-z path must also invert cleanly through the pow2 IFFT used
	// in round-trip consumers: spectrum of a pure tone concentrates in one
	// bin.
	n := 257
	x := make([]complex128, n)
	for i := range x {
		s, c := math.Sincos(2 * math.Pi * 17 * float64(i) / float64(n))
		x[i] = complex(c, s)
	}
	fx := dftBluestein(x)
	for k := range fx {
		mag := cmplx.Abs(fx[k])
		if k == 17 {
			if math.Abs(mag-float64(n)) > 1e-8*float64(n) {
				t.Errorf("tone bin magnitude %g, want %d", mag, n)
			}
		} else if mag > 1e-8*float64(n) {
			t.Errorf("leakage %g in bin %d", mag, k)
		}
	}
}

func TestFFTInverseRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for _, n := range []int{2, 16, 128, 1024} {
		x := randomSignal(r, n)
		y := IFFT(FFT(x))
		if d := maxAbsDiff(x, y); d > 1e-10*float64(n) {
			t.Errorf("n=%d: round trip error %g", n, d)
		}
	}
}

func TestFFTKnownValues(t *testing.T) {
	// Impulse transforms to all-ones.
	x := []complex128{1, 0, 0, 0}
	for i, v := range FFT(x) {
		if cmplx.Abs(v-1) > 1e-12 {
			t.Errorf("impulse FFT bin %d = %v, want 1", i, v)
		}
	}
	// Single complex tone at bin 1 of a 8-point transform.
	n := 8
	tone := make([]complex128, n)
	for i := range tone {
		tone[i] = cmplx.Exp(complex(0, 2*math.Pi*float64(i)/float64(n)))
	}
	ft := FFT(tone)
	for k, v := range ft {
		want := complex(0, 0)
		if k == 1 {
			want = complex(float64(n), 0)
		}
		if cmplx.Abs(v-want) > 1e-9 {
			t.Errorf("tone FFT bin %d = %v, want %v", k, v, want)
		}
	}
}

func TestFFTLinearityProperty(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	f := func(ar, ai, br, bi float64) bool {
		a := complex(math.Mod(ar, 10), math.Mod(ai, 10))
		b := complex(math.Mod(br, 10), math.Mod(bi, 10))
		x := randomSignal(r, 64)
		y := randomSignal(r, 64)
		z := make([]complex128, 64)
		for i := range z {
			z[i] = a*x[i] + b*y[i]
		}
		fz := FFT(z)
		fx := FFT(x)
		fy := FFT(y)
		for i := range fz {
			if cmplx.Abs(fz[i]-(a*fx[i]+b*fy[i])) > 1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestFFTParsevalProperty(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	f := func() bool {
		x := randomSignal(r, 256)
		fx := FFT(x)
		et := Energy(x)
		ef := Energy(fx) / 256
		return math.Abs(et-ef) < 1e-8*et
	}
	for i := 0; i < 20; i++ {
		if !f() {
			t.Fatal("Parseval's theorem violated")
		}
	}
}

func TestFFTShift(t *testing.T) {
	x := []complex128{0, 1, 2, 3}
	got := FFTShift(x)
	want := []complex128{2, 3, 0, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("FFTShift = %v, want %v", got, want)
		}
	}
	// Odd length: [0 1 2 3 4] -> [3 4 0 1 2].
	x5 := []complex128{0, 1, 2, 3, 4}
	got5 := FFTShift(x5)
	want5 := []complex128{3, 4, 0, 1, 2}
	for i := range want5 {
		if got5[i] != want5[i] {
			t.Fatalf("FFTShift odd = %v, want %v", got5, want5)
		}
	}
}

func TestFFTPanicsOnWrongLength(t *testing.T) {
	p, _ := NewFFTPlan(8)
	defer func() {
		if recover() == nil {
			t.Error("Forward with wrong length did not panic")
		}
	}()
	p.Forward(make([]complex128, 4))
}

func TestFFTPlanConcurrentUse(t *testing.T) {
	// A plan is documented as safe for concurrent use: hammer one plan
	// from several goroutines and verify every result.
	p, err := NewFFTPlan(256)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(99))
	inputs := make([][]complex128, 16)
	wants := make([][]complex128, 16)
	for i := range inputs {
		inputs[i] = randomSignal(r, 256)
		wants[i] = dftDirect(inputs[i])
	}
	done := make(chan error, len(inputs))
	for i := range inputs {
		go func(i int) {
			buf := make([]complex128, 256)
			copy(buf, inputs[i])
			p.Forward(buf)
			if d := maxAbsDiff(buf, wants[i]); d > 1e-8 {
				done <- fmt.Errorf("goroutine %d: diff %g", i, d)
				return
			}
			done <- nil
		}(i)
	}
	for range inputs {
		if err := <-done; err != nil {
			t.Error(err)
		}
	}
}
