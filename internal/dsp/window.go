package dsp

import "math"

// Window identifies a tapering window function.
type Window int

// Supported window functions.
const (
	Rectangular Window = iota
	Hann
	Hamming
	Blackman
	BlackmanHarris
)

// String returns the window name.
func (w Window) String() string {
	switch w {
	case Rectangular:
		return "rectangular"
	case Hann:
		return "hann"
	case Hamming:
		return "hamming"
	case Blackman:
		return "blackman"
	case BlackmanHarris:
		return "blackman-harris"
	default:
		return "unknown"
	}
}

// Coefficients returns the n window samples. The windows are symmetric
// (suitable for FIR design); for n == 1 the single coefficient is 1.
func (w Window) Coefficients(n int) []float64 {
	out := make([]float64, n)
	if n == 1 {
		out[0] = 1
		return out
	}
	den := float64(n - 1)
	for i := range out {
		x := float64(i) / den
		switch w {
		case Rectangular:
			out[i] = 1
		case Hann:
			out[i] = 0.5 - 0.5*math.Cos(2*math.Pi*x)
		case Hamming:
			out[i] = 0.54 - 0.46*math.Cos(2*math.Pi*x)
		case Blackman:
			out[i] = 0.42 - 0.5*math.Cos(2*math.Pi*x) + 0.08*math.Cos(4*math.Pi*x)
		case BlackmanHarris:
			out[i] = 0.35875 - 0.48829*math.Cos(2*math.Pi*x) +
				0.14128*math.Cos(4*math.Pi*x) - 0.01168*math.Cos(6*math.Pi*x)
		default:
			out[i] = 1
		}
	}
	return out
}

// Apply multiplies x element-wise by the n-point window in place and returns
// x. len(x) determines n.
func (w Window) Apply(x []complex128) []complex128 {
	c := w.Coefficients(len(x))
	for i := range x {
		x[i] *= complex(c[i], 0)
	}
	return x
}

// PowerGain returns the mean squared window value, used to normalize power
// spectral density estimates.
func (w Window) PowerGain(n int) float64 {
	c := w.Coefficients(n)
	var sum float64
	for _, v := range c {
		sum += v * v
	}
	return sum / float64(n)
}
