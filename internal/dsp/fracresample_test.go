package dsp

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
)

func TestFractionalResamplerValidation(t *testing.T) {
	if _, err := NewFractionalResampler(0); err == nil {
		t.Error("accepted zero ratio")
	}
	if _, err := NewFractionalResampler(-1); err == nil {
		t.Error("accepted negative ratio")
	}
	r, err := NewFractionalResampler(1.5)
	if err != nil || r.Ratio() != 1.5 {
		t.Errorf("ratio %v err %v", r.Ratio(), err)
	}
}

func TestFractionalResamplerLengthScaling(t *testing.T) {
	for _, ratio := range []float64{0.5, 0.999, 1.0, 1.001, 2.0} {
		r, _ := NewFractionalResampler(ratio)
		n := 10000
		out := r.Process(make([]complex128, n))
		want := float64(n) * ratio
		if math.Abs(float64(len(out))-want) > 5 {
			t.Errorf("ratio %v: output %d samples, want ~%.0f", ratio, len(out), want)
		}
	}
}

func TestFractionalResamplerExactOnQuadraticSignal(t *testing.T) {
	// Uniform Catmull-Rom interpolation reproduces polynomials up to
	// degree 2 exactly; feed a quadratic ramp and check interior outputs
	// sit on the polynomial. Output sample k corresponds to input time
	// t = -1 + k/ratio (the first interpolation interval spans the primed
	// history).
	r, _ := NewFractionalResampler(1.37)
	n := 64
	in := make([]complex128, n)
	f := func(x float64) complex128 {
		return complex(-0.02*x*x+x, -0.5*x+3)
	}
	for i := range in {
		in[i] = f(float64(i))
	}
	out := r.Process(in)
	for k := 4; k < len(out)-4; k++ {
		tIn := -1 + float64(k)/1.37
		want := f(tIn)
		if cmplx.Abs(out[k]-want) > 1e-9 {
			t.Fatalf("output %d = %v, want %v (t=%v)", k, out[k], want, tIn)
		}
	}
}

func TestFractionalResamplerShiftsToneFrequency(t *testing.T) {
	// A tone at nu through a ratio-rho resampler appears at nu/rho.
	rho := 1.002
	r, _ := NewFractionalResampler(rho)
	in := tone(8192, 0.05)
	out := r.Process(in)
	// Measure the average phase step in the steady state.
	var acc float64
	count := 0
	for i := 1000; i < 7000; i++ {
		acc += cmplx.Phase(out[i] * cmplx.Conj(out[i-1]))
		count++
	}
	gotNu := acc / float64(count) / (2 * math.Pi)
	want := 0.05 / rho
	if math.Abs(gotNu-want) > 1e-6 {
		t.Errorf("resampled tone at %v cycles/sample, want %v", gotNu, want)
	}
}

func TestFractionalResamplerStreamingMatchesBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	x := randomSignal(rng, 3000)
	r1, _ := NewFractionalResampler(1.0001)
	r2, _ := NewFractionalResampler(1.0001)
	batch := r1.Process(x)
	var stream []complex128
	for start := 0; start < len(x); start += 251 {
		end := start + 251
		if end > len(x) {
			end = len(x)
		}
		stream = append(stream, r2.Process(x[start:end])...)
	}
	if len(batch) != len(stream) {
		t.Fatalf("lengths differ: %d vs %d", len(batch), len(stream))
	}
	if d := maxAbsDiff(batch, stream); d > 1e-12 {
		t.Errorf("streaming differs from batch by %g", d)
	}
}

func TestFractionalResamplerReset(t *testing.T) {
	r, _ := NewFractionalResampler(0.75)
	a := r.Process([]complex128{1, 2, 3, 4, 5})
	r.Reset()
	b := r.Process([]complex128{1, 2, 3, 4, 5})
	if len(a) != len(b) {
		t.Fatalf("lengths differ after reset: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("Reset did not restore initial state")
		}
	}
}
