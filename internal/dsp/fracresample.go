package dsp

import "fmt"

// FractionalResampler converts the sample rate by an arbitrary real ratio
// using Catmull-Rom cubic interpolation (a Farrow structure). It models
// sampling-clock offsets between transmitter and receiver as well as
// general non-integer rate changes. State persists across frames.
type FractionalResampler struct {
	ratio float64 // output rate / input rate
	step  float64 // input samples consumed per output sample (1/ratio)
	// hist holds the last three input samples (x[n-3..n-1] relative to the
	// next incoming sample).
	hist [3]complex128
	// mu is the fractional read position within the current interpolation
	// interval [hist[1], hist[2]].
	mu      float64
	started bool
}

// NewFractionalResampler creates a resampler with the given output/input
// rate ratio (must be positive; values near 1 model ppm-scale clock
// offsets).
func NewFractionalResampler(ratio float64) (*FractionalResampler, error) {
	if ratio <= 0 {
		return nil, fmt.Errorf("dsp: resample ratio %g must be positive", ratio)
	}
	return &FractionalResampler{ratio: ratio, step: 1 / ratio}, nil
}

// Ratio returns the configured rate ratio.
func (r *FractionalResampler) Ratio() float64 { return r.ratio }

// Reset clears the interpolation state.
func (r *FractionalResampler) Reset() {
	r.hist = [3]complex128{}
	r.mu = 0
	r.started = false
}

// catmullRom interpolates between p1 and p2 at fraction mu with neighbors
// p0 and p3.
func catmullRom(p0, p1, p2, p3 complex128, mu float64) complex128 {
	m := complex(mu, 0)
	m2 := m * m
	m3 := m2 * m
	a := -0.5*p0 + 1.5*p1 - 1.5*p2 + 0.5*p3
	b := p0 - 2.5*p1 + 2*p2 - 0.5*p3
	c := -0.5*p0 + 0.5*p2
	return a*m3 + b*m2 + c*m + p1
}

// Process consumes a frame and returns the resampled output (length varies
// by ~ratio*len(in); boundaries carry over between calls).
func (r *FractionalResampler) Process(in []complex128) []complex128 {
	out := make([]complex128, 0, int(float64(len(in))*r.ratio)+2)
	for _, x := range in {
		if !r.started {
			// Prime the history with the first sample replicated so the
			// stream starts without a transient spike.
			r.hist = [3]complex128{x, x, x}
			r.started = true
			continue
		}
		// With the new sample x, the interpolation interval is
		// [hist[2], x] with neighbors hist[1] and (next sample); using
		// hist[0..2] and x gives the interval [hist[1], hist[2]].
		for r.mu < 1 {
			out = append(out, catmullRom(r.hist[0], r.hist[1], r.hist[2], x, r.mu))
			r.mu += r.step
		}
		r.mu -= 1
		r.hist[0], r.hist[1], r.hist[2] = r.hist[1], r.hist[2], x
	}
	return out
}
