package dsp

import (
	"fmt"
	"math"
	"math/cmplx"

	"wlansim/internal/kernels"
	"wlansim/internal/units"
)

// Biquad is a second-order IIR section in direct form II transposed with
// complex streaming state. Coefficients follow the convention
//
//	y[n] = b0 x[n] + b1 x[n-1] + b2 x[n-2] - a1 y[n-1] - a2 y[n-2]
type Biquad struct {
	B0, B1, B2 float64
	A1, A2     float64
	s1, s2     complex128
}

// ProcessSample filters one sample through the section. The update is
// written over the real and imaginary parts separately: the coefficients are
// real, so the full complex products would spend half their multiplies on
// zero imaginary parts — this is the innermost loop of every filter in the
// receiver chain.
func (q *Biquad) ProcessSample(x complex128) complex128 {
	xr, xi := real(x), imag(x)
	yr := q.B0*xr + real(q.s1)
	yi := q.B0*xi + imag(q.s1)
	q.s1 = complex(q.B1*xr-q.A1*yr+real(q.s2), q.B1*xi-q.A1*yi+imag(q.s2))
	q.s2 = complex(q.B2*xr-q.A2*yr, q.B2*xi-q.A2*yi)
	return complex(yr, yi)
}

// Process filters a frame in place through the section. It performs exactly
// the per-sample arithmetic of ProcessSample, but keeps the coefficients and
// streaming state in locals across the frame so the compiler can register-
// allocate them — the cascade processes section-major (whole frame per
// section), which is bit-identical to sample-major order because a sample's
// path through a section depends only on earlier samples through that section.
func (q *Biquad) Process(x []complex128) []complex128 {
	b0, b1, b2 := q.B0, q.B1, q.B2
	a1, a2 := q.A1, q.A2
	s1r, s1i := real(q.s1), imag(q.s1)
	s2r, s2i := real(q.s2), imag(q.s2)
	for i, v := range x {
		xr, xi := real(v), imag(v)
		yr := b0*xr + s1r
		yi := b0*xi + s1i
		s1r = b1*xr - a1*yr + s2r
		s1i = b1*xi - a1*yi + s2i
		s2r = b2*xr - a2*yr
		s2i = b2*xi - a2*yi
		x[i] = complex(yr, yi)
	}
	q.s1 = complex(s1r, s1i)
	q.s2 = complex(s2r, s2i)
	return x
}

// ProcessPlanar filters a frame held as split re/im planes in place. It is
// the planar twin of Process: the same recurrence over the same streaming
// state (re chains through real(s1)/real(s2), im through the imaginary
// parts), so planar and interleaved passes can be mixed freely on one section
// without changing a single output bit.
//
//lint:hotpath
func (q *Biquad) ProcessPlanar(xr, xi []float64) {
	b0, b1, b2 := q.B0, q.B1, q.B2
	a1, a2 := q.A1, q.A2
	s1r, s1i := real(q.s1), imag(q.s1)
	s2r, s2i := real(q.s2), imag(q.s2)
	xi = xi[:len(xr)]
	for i := range xr {
		vr, vi := xr[i], xi[i]
		yr := b0*vr + s1r
		yi := b0*vi + s1i
		s1r = b1*vr - a1*yr + s2r
		s1i = b1*vi - a1*yi + s2i
		s2r = b2*vr - a2*yr
		s2i = b2*vi - a2*yi
		xr[i] = yr
		xi[i] = yi
	}
	q.s1 = complex(s1r, s1i)
	q.s2 = complex(s2r, s2i)
}

// Reset clears the section state.
func (q *Biquad) Reset() { q.s1, q.s2 = 0, 0 }

// Response evaluates the section's transfer function at z = exp(2*pi*i*nu).
func (q *Biquad) Response(nu float64) complex128 {
	z1 := cmplx.Exp(complex(0, -2*math.Pi*nu)) // z^-1
	z2 := z1 * z1
	num := complex(q.B0, 0) + complex(q.B1, 0)*z1 + complex(q.B2, 0)*z2
	den := 1 + complex(q.A1, 0)*z1 + complex(q.A2, 0)*z2
	return num / den
}

// IIR is a cascade of biquad sections with an overall gain, representing a
// classical recursive filter. The zero value is an identity filter.
type IIR struct {
	Gain     float64
	Sections []Biquad
}

// NewIIR builds a cascade from sections with the given overall gain.
func NewIIR(gain float64, sections []Biquad) *IIR {
	s := make([]Biquad, len(sections))
	copy(s, sections)
	return &IIR{Gain: gain, Sections: s}
}

// Order returns the filter order (sum of section orders).
func (f *IIR) Order() int {
	order := 0
	for i := range f.Sections {
		if f.Sections[i].B2 != 0 || f.Sections[i].A2 != 0 {
			order += 2
		} else {
			order++
		}
	}
	return order
}

// Reset clears all section states.
func (f *IIR) Reset() {
	for i := range f.Sections {
		f.Sections[i].Reset()
	}
}

// ProcessSample filters one sample through the cascade.
func (f *IIR) ProcessSample(x complex128) complex128 {
	g := f.Gain
	if g == 0 {
		g = 1 // zero value acts as identity
	}
	y := complex(g*real(x), g*imag(x))
	for i := range f.Sections {
		y = f.Sections[i].ProcessSample(y)
	}
	return y
}

// Process filters a frame in place and returns it. The cascade runs
// section-major (each biquad over the whole frame) rather than sample-major;
// the per-sample arithmetic is identical, so the output matches a
// ProcessSample loop bit for bit while the section state stays in registers.
func (f *IIR) Process(x []complex128) []complex128 {
	g := f.Gain
	if g == 0 {
		g = 1
	}
	//lint:ignore floateq multiplying by exactly 1.0 is a bit-exact identity, so the gain pass can be skipped
	if g != 1 {
		for i, v := range x {
			x[i] = complex(g*real(v), g*imag(v))
		}
	}
	for i := range f.Sections {
		f.Sections[i].Process(x)
	}
	return x
}

// ProcessPlanar filters a frame held as split re/im planes in place: the
// planar twin of Process, running each section's ProcessPlanar over the same
// streaming state. The gain pass multiplies each component by the same gain
// the interleaved pass applies, so the two forms stay bit-identical and
// interchangeable mid-stream.
//
//lint:hotpath
func (f *IIR) ProcessPlanar(xr, xi []float64) {
	g := f.Gain
	if g == 0 {
		g = 1
	}
	//lint:ignore floateq multiplying by exactly 1.0 is a bit-exact identity, so the gain pass can be skipped
	if g != 1 {
		kernels.ScalePlane(xr, g)
		kernels.ScalePlane(xi, g)
	}
	for i := range f.Sections {
		f.Sections[i].ProcessPlanar(xr, xi)
	}
}

// Response evaluates the cascade's transfer function at the normalized
// frequency nu (cycles per sample).
func (f *IIR) Response(nu float64) complex128 {
	g := f.Gain
	if g == 0 {
		g = 1
	}
	h := complex(g, 0)
	for i := range f.Sections {
		h *= f.Sections[i].Response(nu)
	}
	return h
}

// MagnitudeDB returns the magnitude response in dB at normalized frequency nu.
func (f *IIR) MagnitudeDB(nu float64) float64 {
	m := cmplx.Abs(f.Response(nu))
	if m <= 0 {
		return math.Inf(-1)
	}
	return units.VoltageGainToDB(m)
}

// FilterShape selects the passband geometry of an IIR design.
type FilterShape int

// Supported shapes.
const (
	Lowpass FilterShape = iota
	Highpass
)

// ButterworthAnalogPoles returns the normalized (cutoff 1 rad/s) analog
// poles of a Butterworth prototype, for use by continuous-time solvers.
func ButterworthAnalogPoles(order int) []complex128 { return butterworthPoles(order) }

// Chebyshev1AnalogPoles returns the normalized analog poles and ripple
// factor epsilon of a type-I Chebyshev prototype, for use by
// continuous-time solvers.
func Chebyshev1AnalogPoles(order int, rippleDB float64) ([]complex128, float64) {
	return chebyshev1Poles(order, rippleDB)
}

// butterworthPoles returns the normalized (cutoff 1 rad/s) analog poles.
func butterworthPoles(order int) []complex128 {
	poles := make([]complex128, order)
	for k := 1; k <= order; k++ {
		theta := math.Pi * float64(2*k-1) / float64(2*order)
		poles[k-1] = complex(-math.Sin(theta), math.Cos(theta))
	}
	return poles
}

// chebyshev1Poles returns the normalized analog poles for a type-I Chebyshev
// prototype with the given passband ripple in dB, plus the ripple factor.
func chebyshev1Poles(order int, rippleDB float64) ([]complex128, float64) {
	eps := math.Sqrt(units.DBToLinear(rippleDB) - 1)
	mu := math.Asinh(1/eps) / float64(order)
	poles := make([]complex128, order)
	for k := 1; k <= order; k++ {
		theta := math.Pi * float64(2*k-1) / float64(2*order)
		poles[k-1] = complex(-math.Sinh(mu)*math.Sin(theta), math.Cosh(mu)*math.Cos(theta))
	}
	return poles, eps
}

// designFromPoles converts normalized analog prototype poles to a digital IIR
// via frequency transform and the bilinear transform. cutoff is the passband
// edge as a fraction of the sample rate. passbandGain is the desired linear
// magnitude at the passband reference point (DC for lowpass, Nyquist for
// highpass).
func designFromPoles(analog []complex128, shape FilterShape, cutoff, passbandGain float64) (*IIR, error) {
	if cutoff <= 0 || cutoff >= 0.5 {
		return nil, fmt.Errorf("dsp: IIR cutoff %g outside (0, 0.5)", cutoff)
	}
	warp := math.Tan(math.Pi * cutoff)
	zPoles := make([]complex128, len(analog))
	for i, p := range analog {
		var ps complex128
		switch shape {
		case Lowpass:
			ps = p * complex(warp, 0)
		case Highpass:
			ps = complex(warp, 0) / p
		default:
			return nil, fmt.Errorf("dsp: unsupported filter shape %d", shape)
		}
		zPoles[i] = (1 + ps) / (1 - ps)
	}
	// All zeros sit at z=-1 (lowpass) or z=+1 (highpass).
	zero := -1.0
	if shape == Highpass {
		zero = 1.0
	}

	// Pair complex-conjugate poles into biquads. The prototype pole list
	// contains conjugates in mirrored positions (k and order-1-k).
	var sections []Biquad
	n := len(zPoles)
	for k := 0; k < n/2; k++ {
		p := zPoles[k]
		// (1 - p z^-1)(1 - conj(p) z^-1) = 1 - 2 Re(p) z^-1 + |p|^2 z^-2
		sections = append(sections, Biquad{
			B0: 1, B1: -2 * zero, B2: 1,
			A1: -2 * real(p), A2: real(p)*real(p) + imag(p)*imag(p),
		})
	}
	if n%2 == 1 {
		p := zPoles[n/2] // the real pole is at the middle index
		sections = append(sections, Biquad{
			B0: 1, B1: -zero, B2: 0,
			A1: -real(p), A2: 0,
		})
	}

	f := NewIIR(1, sections)
	ref := 0.0
	if shape == Highpass {
		ref = 0.5
	}
	h := cmplx.Abs(f.Response(ref))
	if h <= 0 {
		return nil, fmt.Errorf("dsp: degenerate IIR design (zero reference gain)")
	}
	f.Gain = passbandGain / h
	return f, nil
}

// DesignButterworth designs an order-n Butterworth filter with the passband
// edge at cutoff (fraction of the sample rate, 0 < cutoff < 0.5).
func DesignButterworth(order int, shape FilterShape, cutoff float64) (*IIR, error) {
	if order < 1 {
		return nil, fmt.Errorf("dsp: filter order %d < 1", order)
	}
	return designFromPoles(butterworthPoles(order), shape, cutoff, 1)
}

// DesignChebyshev1 designs an order-n type-I Chebyshev filter with the given
// passband ripple in dB and passband edge at cutoff (fraction of the sample
// rate). The maximum passband gain is unity; for even orders the reference
// (DC or Nyquist) gain is 1/sqrt(1+eps^2), which places the ripple band at
// [-ripple, 0] dB as in classical designs.
func DesignChebyshev1(order int, shape FilterShape, cutoff, rippleDB float64) (*IIR, error) {
	if order < 1 {
		return nil, fmt.Errorf("dsp: filter order %d < 1", order)
	}
	if rippleDB <= 0 {
		return nil, fmt.Errorf("dsp: Chebyshev ripple %g dB must be positive", rippleDB)
	}
	poles, eps := chebyshev1Poles(order, rippleDB)
	gain := 1.0
	if order%2 == 0 {
		gain = 1 / math.Sqrt(1+eps*eps)
	}
	return designFromPoles(poles, shape, cutoff, gain)
}

// DesignDCBlock returns a one-pole high-pass DC blocker
//
//	y[n] = x[n] - x[n-1] + r y[n-1]
//
// with the -3 dB corner at approximately cutoff (fraction of the sample
// rate). It is the discrete analog of the series-capacitor coupling used
// between the two mixer stages of the double-conversion receiver.
func DesignDCBlock(cutoff float64) (*IIR, error) {
	if cutoff <= 0 || cutoff >= 0.5 {
		return nil, fmt.Errorf("dsp: DC block cutoff %g outside (0, 0.5)", cutoff)
	}
	r := (1 - math.Sin(2*math.Pi*cutoff)) / math.Cos(2*math.Pi*cutoff)
	g := (1 + r) / 2 // unity gain at Nyquist
	return NewIIR(g, []Biquad{{B0: 1, B1: -1, A1: -r}}), nil
}
