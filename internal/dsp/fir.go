package dsp

import (
	"fmt"
	"math"

	"wlansim/internal/kernels"
)

// FIR is a finite-impulse-response filter with real coefficients and
// streaming complex state. The zero value is not usable; construct with
// NewFIR or one of the design helpers.
//
// Process filters whole frames by linear block convolution over a carried
// history prefix (the last len(taps)-1 inputs), switching to an FFT
// overlap-save engine for long tap sets; ProcessSample remains the
// one-sample streaming form. Both produce the same stream a per-sample
// direct filter would (the FFT path up to transform round-off), and both
// advance the same history, so frames and single samples can be mixed
// freely. A FIR must not be shared between goroutines.
type FIR struct {
	taps []float64
	hist []complex128 // last len(taps)-1 inputs, oldest first
	ext  []complex128 // frame scratch: history prefix + inputs
	ols  *olsConv     // lazily built FFT path for long tap sets

	// extV/outV are the planar views the direct path hands to the kernels
	// layer; conversion happens once per frame at these boundaries.
	extV, outV kernels.Vec
}

// NewFIR builds a streaming filter from the given tap coefficients
// (taps[0] multiplies the newest sample).
func NewFIR(taps []float64) *FIR {
	if len(taps) == 0 {
		panic("dsp: FIR requires at least one tap")
	}
	t := make([]float64, len(taps))
	copy(t, taps)
	return &FIR{taps: t, hist: make([]complex128, len(taps)-1)}
}

// Taps returns a copy of the filter coefficients.
func (f *FIR) Taps() []float64 {
	out := make([]float64, len(f.taps))
	copy(out, f.taps)
	return out
}

// Len returns the number of taps.
func (f *FIR) Len() int { return len(f.taps) }

// GroupDelay returns the delay in samples of a linear-phase (symmetric)
// filter: (N-1)/2.
func (f *FIR) GroupDelay() float64 { return float64(len(f.taps)-1) / 2 }

// Reset clears the filter state.
func (f *FIR) Reset() {
	for i := range f.hist {
		f.hist[i] = 0
	}
}

// ProcessSample filters one sample, updating the internal state.
//
//lint:hotpath
func (f *FIR) ProcessSample(x complex128) complex128 {
	acc := x * complex(f.taps[0], 0)
	p := len(f.hist)
	for j := 1; j < len(f.taps); j++ {
		acc += f.hist[p-j] * complex(f.taps[j], 0)
	}
	if p > 0 {
		copy(f.hist, f.hist[1:])
		f.hist[p-1] = x
	}
	return acc
}

// Process filters a frame in place and returns it. Steady-state frames of a
// recurring size allocate nothing.
//
//lint:hotpath
func (f *FIR) Process(x []complex128) []complex128 {
	if len(x) == 0 {
		return x
	}
	p := len(f.hist)
	if p == 0 {
		t0 := complex(f.taps[0], 0)
		for i, v := range x {
			x[i] = v * t0
		}
		return x
	}
	need := p + len(x)
	if cap(f.ext) < need {
		//lint:ignore escape one-time scratch grow, amortized across frames
		f.ext = make([]complex128, need)
	}
	ext := f.ext[:need]
	copy(ext, f.hist)
	copy(ext[p:], x)
	if olsUsable(len(f.taps), len(x)) {
		if f.ols == nil {
			f.ols = newOLSConvReal(f.taps)
		}
		f.ols.process(x, ext)
	} else {
		// Planar direct path: one transpose per frame, then the unrolled
		// split-complex kernel. Per output the kernel accumulates newest to
		// oldest (taps[0] first) like the per-sample form, bit-identically.
		f.extV.From(ext)
		//lint:ignore escape inlined Vec grow: first-use plane allocation, reused afterwards
		f.outV.Grow(len(x))
		kernels.FIRReal(f.outV.Re, f.outV.Im, f.extV.Re, f.extV.Im, f.taps)
		f.outV.CopyTo(x)
	}
	copy(f.hist, ext[len(ext)-p:])
	return x
}

// Response evaluates the filter's frequency response at the normalized
// frequency nu in cycles per sample (nu = f/fs, in [-0.5, 0.5]).
func (f *FIR) Response(nu float64) complex128 {
	var re, im float64
	for n, t := range f.taps {
		phase := -2 * math.Pi * nu * float64(n)
		re += t * math.Cos(phase)
		im += t * math.Sin(phase)
	}
	return complex(re, im)
}

// DesignLowpassFIR designs a linear-phase lowpass filter with the
// windowed-sinc method. cutoff is the -6 dB edge as a fraction of the sample
// rate (0 < cutoff < 0.5); taps is the filter length.
func DesignLowpassFIR(taps int, cutoff float64, w Window) (*FIR, error) {
	if taps < 1 {
		return nil, fmt.Errorf("dsp: FIR length %d < 1", taps)
	}
	if cutoff <= 0 || cutoff >= 0.5 {
		return nil, fmt.Errorf("dsp: FIR cutoff %g outside (0, 0.5)", cutoff)
	}
	h := make([]float64, taps)
	mid := float64(taps-1) / 2
	win := w.Coefficients(taps)
	for n := range h {
		t := float64(n) - mid
		var s float64
		if t == 0 {
			s = 2 * cutoff
		} else {
			s = math.Sin(2*math.Pi*cutoff*t) / (math.Pi * t)
		}
		h[n] = s * win[n]
	}
	// Normalize for unit DC gain.
	var sum float64
	for _, v := range h {
		sum += v
	}
	if sum != 0 {
		for n := range h {
			h[n] /= sum
		}
	}
	return NewFIR(h), nil
}

// DesignHalfbandFIR designs a lowpass suitable for factor-2 rate changes,
// with the cutoff at a quarter of the sample rate.
func DesignHalfbandFIR(taps int, w Window) (*FIR, error) {
	return DesignLowpassFIR(taps, 0.25, w)
}

// Convolve returns the full linear convolution of x and h
// (length len(x)+len(h)-1).
func Convolve(x []complex128, h []float64) []complex128 {
	if len(x) == 0 || len(h) == 0 {
		return nil
	}
	out := make([]complex128, len(x)+len(h)-1)
	for i, xv := range x {
		for j, hv := range h {
			out[i+j] += xv * complex(hv, 0)
		}
	}
	return out
}
