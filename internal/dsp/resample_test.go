package dsp

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
)

func tone(n int, nu float64) []complex128 {
	x := make([]complex128, n)
	for i := range x {
		x[i] = cmplx.Exp(complex(0, 2*math.Pi*nu*float64(i)))
	}
	return x
}

// dominantBin returns the FFT bin with maximum magnitude.
func dominantBin(x []complex128) int {
	fx := FFT(x)
	best, bestMag := 0, 0.0
	for i, v := range fx {
		if m := cmplx.Abs(v); m > bestMag {
			best, bestMag = i, m
		}
	}
	return best
}

func TestUpsamplerPreservesTone(t *testing.T) {
	// A tone at nu=1/16 upsampled by 4 must appear at nu=1/64.
	u, err := NewUpsampler(4, 0)
	if err != nil {
		t.Fatal(err)
	}
	x := tone(256, 1.0/16)
	y := u.Process(x)
	if len(y) != 1024 {
		t.Fatalf("output length %d, want 1024", len(y))
	}
	// Skip the filter transient, then check the dominant frequency.
	if bin := dominantBin(y[256:768]); bin != 8 { // 512 * 1/64 = 8
		t.Errorf("dominant bin %d, want 8", bin)
	}
	// Amplitude preserved within 5%.
	p := Energy(y[256:768]) / 512
	if math.Abs(p-1) > 0.05 {
		t.Errorf("tone power after upsampling %v, want ~1", p)
	}
}

func TestUpsamplerFactorOneIsCopy(t *testing.T) {
	u, _ := NewUpsampler(1, 0)
	x := []complex128{1, 2i, 3}
	y := u.Process(x)
	if maxAbsDiff(x, y) != 0 {
		t.Error("factor-1 upsampler altered the signal")
	}
	y[0] = 99
	if x[0] == 99 {
		t.Error("factor-1 upsampler aliased the input slice")
	}
}

func TestDownsamplerRemovesOutOfBandTone(t *testing.T) {
	// Signal: in-band tone at nu=0.05 plus out-of-band tone at nu=0.4.
	// After filtered decimation by 4 the out-of-band tone must be gone.
	n := 2048
	x := make([]complex128, n)
	inband := tone(n, 0.05)
	outband := tone(n, 0.4)
	for i := range x {
		x[i] = inband[i] + outband[i]
	}
	d, err := NewDownsampler(4, 0, true)
	if err != nil {
		t.Fatal(err)
	}
	y := d.Process(x)
	if len(y) != n/4 {
		t.Fatalf("output length %d, want %d", len(y), n/4)
	}
	// In the decimated domain the in-band tone sits at nu=0.2.
	seg := y[128:384]
	bin := dominantBin(seg)
	want := 51 // round(0.2 * 256)
	if bin != want {
		t.Errorf("dominant bin %d, want %d", bin, want)
	}
	// The aliased image of the 0.4 tone would land at nu=0.4*4 mod 1 = 0.6
	// (bin 154 of 256); its power must be heavily suppressed.
	fy := FFT(Clone(seg))
	alias := cmplx.Abs(fy[154]) // round(0.6 * 256)
	main := cmplx.Abs(fy[want])
	if alias > main/100 {
		t.Errorf("alias %v not suppressed vs main %v", alias, main)
	}
}

func TestUnfilteredDownsamplerAliases(t *testing.T) {
	// Without the anti-aliasing filter the out-of-band tone folds in-band.
	n := 2048
	x := tone(n, 0.4)
	d, err := NewDownsampler(4, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	y := d.Process(x)
	// 0.4*4 = 1.6 -> folds to 0.6 (equivalently -0.4): full power remains.
	p := Energy(y) / float64(len(y))
	if p < 0.9 {
		t.Errorf("aliased tone power %v, want ~1", p)
	}
}

func TestDownsamplerPhasePersistsAcrossFrames(t *testing.T) {
	d1, _ := NewDownsampler(3, 0, false)
	d2, _ := NewDownsampler(3, 0, false)
	x := make([]complex128, 30)
	for i := range x {
		x[i] = complex(float64(i), 0)
	}
	batch := d1.Process(Clone(x))
	var stream []complex128
	for start := 0; start < len(x); start += 7 {
		end := start + 7
		if end > len(x) {
			end = len(x)
		}
		stream = append(stream, d2.Process(Clone(x[start:end]))...)
	}
	if len(batch) != len(stream) {
		t.Fatalf("lengths differ: %d vs %d", len(batch), len(stream))
	}
	if maxAbsDiff(batch, stream) != 0 {
		t.Errorf("frame-wise decimation differs: %v vs %v", stream, batch)
	}
}

func TestResamplerValidation(t *testing.T) {
	if _, err := NewUpsampler(0, 0); err == nil {
		t.Error("accepted upsample factor 0")
	}
	if _, err := NewDownsampler(0, 0, true); err == nil {
		t.Error("accepted downsample factor 0")
	}
}

func TestOscillatorFrequency(t *testing.T) {
	// 1024 samples of a nu=1/32 oscillator: dominant FFT bin 32.
	o := NewOscillator(1.0/32, 0)
	x := make([]complex128, 1024)
	for i := range x {
		x[i] = o.Next()
	}
	if bin := dominantBin(x); bin != 32 {
		t.Errorf("dominant bin %d, want 32", bin)
	}
}

func TestOscillatorAmplitudeStable(t *testing.T) {
	o := NewOscillator(0.01234, 0.5)
	for i := 0; i < 1_000_000; i++ {
		o.Next()
	}
	if m := cmplx.Abs(o.Next()); math.Abs(m-1) > 1e-6 {
		t.Errorf("oscillator amplitude drifted to %v", m)
	}
}

func TestFrequencyShiftRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	x := randomSignal(r, 512)
	y := FrequencyShift(FrequencyShift(x, 0.123), -0.123)
	if d := maxAbsDiff(x, y); d > 1e-9 {
		t.Errorf("shift round trip error %g", d)
	}
}

func TestFrequencyShiftMovesTone(t *testing.T) {
	x := tone(512, 1.0/64) // bin 8
	y := FrequencyShift(x, 1.0/32)
	if bin := dominantBin(y); bin != 24 { // 8 + 16
		t.Errorf("shifted bin %d, want 24", bin)
	}
}
