package dsp

import (
	"fmt"
	"math"
	"math/cmplx"

	"wlansim/internal/kernels"
)

// ComplexFIR is a finite-impulse-response filter with complex coefficients
// and streaming state — needed to realize asymmetric (non-conjugate-
// symmetric) frequency responses such as an extracted receiver black-box.
//
// Like FIR, Process runs linear block convolution over a carried history
// prefix and switches to FFT overlap-save for long tap sets; see the FIR
// docs for the streaming/equivalence contract.
type ComplexFIR struct {
	taps []complex128
	hist []complex128 // last len(taps)-1 inputs, oldest first
	ext  []complex128 // frame scratch: history prefix + inputs
	ols  *olsConv     // lazily built FFT path for long tap sets

	tapsV      kernels.Vec // planar taps, split once at construction
	extV, outV kernels.Vec // planar frame views for the direct path
}

// NewComplexFIR builds a streaming filter from complex taps.
func NewComplexFIR(taps []complex128) (*ComplexFIR, error) {
	if len(taps) == 0 {
		return nil, fmt.Errorf("dsp: complex FIR requires at least one tap")
	}
	t := make([]complex128, len(taps))
	copy(t, taps)
	f := &ComplexFIR{taps: t, hist: make([]complex128, len(taps)-1)}
	f.tapsV.From(t)
	return f, nil
}

// Taps returns a copy of the coefficients.
func (f *ComplexFIR) Taps() []complex128 {
	out := make([]complex128, len(f.taps))
	copy(out, f.taps)
	return out
}

// Reset clears the filter state.
func (f *ComplexFIR) Reset() {
	for i := range f.hist {
		f.hist[i] = 0
	}
}

// ProcessSample filters one sample.
func (f *ComplexFIR) ProcessSample(x complex128) complex128 {
	acc := x * f.taps[0]
	p := len(f.hist)
	for j := 1; j < len(f.taps); j++ {
		acc += f.hist[p-j] * f.taps[j]
	}
	if p > 0 {
		copy(f.hist, f.hist[1:])
		f.hist[p-1] = x
	}
	return acc
}

// Process filters a frame in place and returns it. Steady-state frames of a
// recurring size allocate nothing.
func (f *ComplexFIR) Process(x []complex128) []complex128 {
	if len(x) == 0 {
		return x
	}
	p := len(f.hist)
	if p == 0 {
		t0 := f.taps[0]
		for i, v := range x {
			x[i] = v * t0
		}
		return x
	}
	need := p + len(x)
	if cap(f.ext) < need {
		f.ext = make([]complex128, need)
	}
	ext := f.ext[:need]
	copy(ext, f.hist)
	copy(ext[p:], x)
	if olsUsable(len(f.taps), len(x)) {
		if f.ols == nil {
			f.ols = newOLSConv(f.taps)
		}
		f.ols.process(x, ext)
	} else {
		// Planar direct path: one transpose per frame, then the unrolled
		// split-complex kernel. Per output the kernel accumulates newest to
		// oldest (taps[0] first) with each product lowered exactly like
		// Go's complex128 multiply, so outputs match the per-sample form
		// bit for bit.
		f.extV.From(ext)
		f.outV.Grow(len(x))
		kernels.FIRCplx(f.outV.Re, f.outV.Im, f.extV.Re, f.extV.Im, f.tapsV.Re, f.tapsV.Im)
		f.outV.CopyTo(x)
	}
	copy(f.hist, ext[len(ext)-p:])
	return x
}

// Response evaluates the frequency response at normalized frequency nu.
func (f *ComplexFIR) Response(nu float64) complex128 {
	var h complex128
	for n, t := range f.taps {
		//lint:ignore hotpathexp analysis helper evaluated per frequency point, not per sample
		h += t * cmplx.Exp(complex(0, -2*math.Pi*nu*float64(n)))
	}
	return h
}

// FIRFromFrequencyResponse designs complex FIR taps whose response matches
// the given samples h[k] at the uniform normalized frequency grid
// nu_k = k/len(h) (FFT bin order, k = 0..N-1), via the inverse DFT. len(h)
// must be a power of two. The response between grid points interpolates
// smoothly when the underlying system's impulse response is shorter than
// the grid.
func FIRFromFrequencyResponse(h []complex128) (*ComplexFIR, error) {
	if len(h) < 2 || len(h)&(len(h)-1) != 0 {
		return nil, fmt.Errorf("dsp: frequency grid length %d not a power of two", len(h))
	}
	taps := IFFT(h)
	return NewComplexFIR(taps)
}
