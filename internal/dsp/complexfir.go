package dsp

import (
	"fmt"
	"math"
	"math/cmplx"
)

// ComplexFIR is a finite-impulse-response filter with complex coefficients
// and streaming state — needed to realize asymmetric (non-conjugate-
// symmetric) frequency responses such as an extracted receiver black-box.
type ComplexFIR struct {
	taps  []complex128
	delay []complex128
	pos   int
}

// NewComplexFIR builds a streaming filter from complex taps.
func NewComplexFIR(taps []complex128) (*ComplexFIR, error) {
	if len(taps) == 0 {
		return nil, fmt.Errorf("dsp: complex FIR requires at least one tap")
	}
	t := make([]complex128, len(taps))
	copy(t, taps)
	return &ComplexFIR{taps: t, delay: make([]complex128, len(taps))}, nil
}

// Taps returns a copy of the coefficients.
func (f *ComplexFIR) Taps() []complex128 {
	out := make([]complex128, len(f.taps))
	copy(out, f.taps)
	return out
}

// Reset clears the filter state.
func (f *ComplexFIR) Reset() {
	for i := range f.delay {
		f.delay[i] = 0
	}
	f.pos = 0
}

// ProcessSample filters one sample.
func (f *ComplexFIR) ProcessSample(x complex128) complex128 {
	f.delay[f.pos] = x
	var acc complex128
	idx := f.pos
	for _, t := range f.taps {
		acc += f.delay[idx] * t
		idx--
		if idx < 0 {
			idx = len(f.delay) - 1
		}
	}
	f.pos++
	if f.pos == len(f.delay) {
		f.pos = 0
	}
	return acc
}

// Process filters a frame in place and returns it.
func (f *ComplexFIR) Process(x []complex128) []complex128 {
	for i, v := range x {
		x[i] = f.ProcessSample(v)
	}
	return x
}

// Response evaluates the frequency response at normalized frequency nu.
func (f *ComplexFIR) Response(nu float64) complex128 {
	var h complex128
	for n, t := range f.taps {
		h += t * cmplx.Exp(complex(0, -2*math.Pi*nu*float64(n)))
	}
	return h
}

// FIRFromFrequencyResponse designs complex FIR taps whose response matches
// the given samples h[k] at the uniform normalized frequency grid
// nu_k = k/len(h) (FFT bin order, k = 0..N-1), via the inverse DFT. len(h)
// must be a power of two. The response between grid points interpolates
// smoothly when the underlying system's impulse response is shorter than
// the grid.
func FIRFromFrequencyResponse(h []complex128) (*ComplexFIR, error) {
	if len(h) < 2 || len(h)&(len(h)-1) != 0 {
		return nil, fmt.Errorf("dsp: frequency grid length %d not a power of two", len(h))
	}
	taps := IFFT(h)
	return NewComplexFIR(taps)
}
