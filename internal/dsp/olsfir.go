package dsp

// Overlap-save block convolution shared by FIR and ComplexFIR. For long tap
// sets the O(taps) per-sample direct form loses to FFT convolution: the
// filter spectrum is computed once, and each block of L = N-(taps-1) output
// samples costs one forward and one inverse N-point transform. The engine
// consumes the same extended frame (history prefix + new samples) the direct
// block path uses, so switching paths never changes the streaming state.

const (
	// olsMinTaps is the tap count above which Process switches from the
	// direct block convolution to FFT overlap-save, provided the frame is
	// long enough (olsMinFrameFactor × taps) to amortize the transforms.
	olsMinTaps        = 48
	olsMinFrameFactor = 2
)

// olsUsable reports whether overlap-save pays off for a filter with the
// given tap count on a frame of m samples. The decision depends only on
// (taps, m), so a fixed call sequence always takes the same path.
func olsUsable(taps, m int) bool {
	return taps >= olsMinTaps && m >= olsMinFrameFactor*taps
}

type olsConv struct {
	taps int
	n    int // FFT size
	l    int // new output samples per block: n - (taps-1)
	plan *FFTPlan
	h    []complex128 // forward transform of the zero-padded taps
	seg  []complex128 // block scratch, reused across calls
}

// newOLSConv builds the overlap-save engine for the given taps. The FFT size
// is the smallest power of two ≥ 4×taps (and ≥ 128), keeping ≥ 3/4 of each
// transform as fresh output.
func newOLSConv(taps []complex128) *olsConv {
	t := len(taps)
	n := 128
	for n < 4*t {
		n <<= 1
	}
	plan, err := NewFFTPlan(n)
	if err != nil {
		panic(err) // unreachable: n is a power of two by construction
	}
	h := make([]complex128, n)
	copy(h, taps)
	plan.Forward(h)
	return &olsConv{taps: t, n: n, l: n - (t - 1), plan: plan, h: h, seg: make([]complex128, n)}
}

func newOLSConvReal(taps []float64) *olsConv {
	c := make([]complex128, len(taps))
	for i, t := range taps {
		c[i] = complex(t, 0)
	}
	return newOLSConv(c)
}

// process computes dst[i] = Σ_j taps[j]·ext[taps-1+i-j] for i in [0,
// len(dst)), where ext is the history prefix of taps-1 samples followed by
// the len(dst) input samples. dst must not alias ext.
//
//lint:hotpath
func (c *olsConv) process(dst, ext []complex128) {
	p := c.taps - 1
	for start := 0; start < len(dst); start += c.l {
		cnt := len(dst) - start
		if cnt > c.l {
			cnt = c.l
		}
		// The block producing outputs [start, start+cnt) reads
		// ext[start : start+n], zero-padded past the end of the frame.
		avail := len(ext) - start
		if avail > c.n {
			avail = c.n
		}
		copied := copy(c.seg, ext[start:start+avail])
		for i := copied; i < c.n; i++ {
			c.seg[i] = 0
		}
		c.plan.Forward(c.seg)
		for i, hv := range c.h {
			c.seg[i] *= hv
		}
		c.plan.Inverse(c.seg)
		// The first taps-1 samples of each block are circular-wrap
		// garbage; samples [p, p+cnt) are exact linear convolution.
		copy(dst[start:start+cnt], c.seg[p:p+cnt])
	}
}
