package dsp

// Overlap-save block convolution shared by FIR and ComplexFIR. For long tap
// sets the O(taps) per-sample direct form loses to FFT convolution: the
// filter spectrum is computed once, and each block of L = N-(taps-1) output
// samples costs one forward and one inverse N-point transform. The engine
// consumes the same extended frame (history prefix + new samples) the direct
// block path uses, so switching paths never changes the streaming state.

import "wlansim/internal/kernels"

const (
	// olsMinTaps is the tap count above which Process switches from the
	// direct block convolution to FFT overlap-save, provided the frame is
	// long enough (olsMinFrameFactor × taps) to amortize the transforms.
	olsMinTaps        = 48
	olsMinFrameFactor = 2
)

// olsUsable reports whether overlap-save pays off for a filter with the
// given tap count on a frame of m samples. The decision depends only on
// (taps, m), so a fixed call sequence always takes the same path.
func olsUsable(taps, m int) bool {
	return taps >= olsMinTaps && m >= olsMinFrameFactor*taps
}

type olsConv struct {
	taps int
	n    int // FFT size
	l    int // new output samples per block: n - (taps-1)
	plan *FFTPlan
	h    []complex128 // forward transform of the zero-padded taps
	hre  []float64    // h deinterleaved: spectral product operands for MulCplx
	him  []float64
	seg  []complex128 // block scratch, reused across calls
}

// newOLSConv builds the overlap-save engine for the given taps. The FFT size
// is the smallest power of two ≥ 4×taps (and ≥ 128), keeping ≥ 3/4 of each
// transform as fresh output.
func newOLSConv(taps []complex128) *olsConv {
	t := len(taps)
	n := 128
	for n < 4*t {
		n <<= 1
	}
	plan, err := NewFFTPlan(n)
	if err != nil {
		panic(err) // unreachable: n is a power of two by construction
	}
	h := make([]complex128, n)
	copy(h, taps)
	plan.Forward(h)
	hre := make([]float64, n)
	him := make([]float64, n)
	kernels.Deinterleave(hre, him, h)
	return &olsConv{taps: t, n: n, l: n - (t - 1), plan: plan, h: h, hre: hre, him: him, seg: make([]complex128, n)}
}

func newOLSConvReal(taps []float64) *olsConv {
	c := make([]complex128, len(taps))
	for i, t := range taps {
		c[i] = complex(t, 0)
	}
	return newOLSConv(c)
}

// process computes dst[i] = Σ_j taps[j]·ext[taps-1+i-j] for i in [0,
// len(dst)), where ext is the history prefix of taps-1 samples followed by
// the len(dst) input samples. dst must not alias ext.
//
//lint:hotpath
func (c *olsConv) process(dst, ext []complex128) {
	p := c.taps - 1
	for start := 0; start < len(dst); start += c.l {
		cnt := len(dst) - start
		if cnt > c.l {
			cnt = c.l
		}
		// The block producing outputs [start, start+cnt) reads
		// ext[start : start+n], zero-padded past the end of the frame.
		avail := len(ext) - start
		if avail > c.n {
			avail = c.n
		}
		copied := copy(c.seg, ext[start:start+avail])
		for i := copied; i < c.n; i++ {
			c.seg[i] = 0
		}
		// Planar round trip: forward stages, spectral product against the
		// deinterleaved filter planes, inverse stages — staying split-complex
		// between the two transforms skips the interleave/deinterleave round
		// trips that Forward + seg[i] *= h[i] + Inverse would perform. The
		// arithmetic per element is identical (MulCplx and ScaleCplx are the
		// compiler's complex128 lowering), so the output is bit-identical to
		// the interleaved sequence.
		s := c.plan.scratch.Get().(*fftScratch)
		kernels.Deinterleave(s.sre, s.sim, c.seg)
		kernels.FFTPermute(s.pre, s.sre, c.plan.rev64)
		kernels.FFTPermute(s.pim, s.sim, c.plan.rev64)
		c.plan.stagesInPlace(s.pre, s.pim, false)
		kernels.MulCplx(s.pre, s.pim, c.hre, c.him)
		kernels.FFTPermute(s.sre, s.pre, c.plan.rev64)
		kernels.FFTPermute(s.sim, s.pim, c.plan.rev64)
		c.plan.stagesInPlace(s.sre, s.sim, true)
		kernels.ScaleCplx(s.sre, s.sim, 1/float64(c.n))
		kernels.Interleave(c.seg, s.sre, s.sim)
		c.plan.scratch.Put(s)
		// The first taps-1 samples of each block are circular-wrap
		// garbage; samples [p, p+cnt) are exact linear convolution.
		copy(dst[start:start+cnt], c.seg[p:p+cnt])
	}
}
