package dsp

import (
	"math"
	"math/rand"
	"testing"

	"wlansim/internal/kernels"
)

// Differential suite pinning the planar split-complex FFT pipeline to the
// frozen scalar transformRef — the pre-planar interleaved butterfly loop with
// its per-butterfly twiddle indexing and inverse-conjugation branch — bit for
// bit, under both kernel dispatch tiers, on Gaussian and adversarial frames.

func planarRestoreDispatch(t *testing.T) {
	t.Helper()
	prev := kernels.DispatchName() != "purego"
	t.Cleanup(func() { kernels.SetDispatch(prev) })
}

func planarRandFrame(rng *rand.Rand, n int, adversarial bool) []complex128 {
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		if adversarial {
			switch rng.Intn(20) {
			case 0:
				x[i] = complex(math.NaN(), rng.NormFloat64())
			case 1:
				x[i] = complex(math.Inf(1), math.Inf(-1))
			case 2:
				x[i] = complex(math.SmallestNonzeroFloat64, -1e308)
			case 3:
				x[i] = complex(math.Copysign(0, -1), 0)
			}
		}
	}
	return x
}

func framesBitsEqual(t *testing.T, ctx string, got, want []complex128) {
	t.Helper()
	for i := range got {
		gr, gi := real(got[i]), imag(got[i])
		wr, wi := real(want[i]), imag(want[i])
		if math.IsNaN(gr) && math.IsNaN(wr) {
			gr, wr = 0, 0
		}
		if math.IsNaN(gi) && math.IsNaN(wi) {
			gi, wi = 0, 0
		}
		if math.Float64bits(gr) != math.Float64bits(wr) ||
			math.Float64bits(gi) != math.Float64bits(wi) {
			t.Fatalf("%s: bin %d: %v != %v", ctx, i, got[i], want[i])
		}
	}
}

// TestPlanarTransformMatchesFrozenRef runs Forward and Inverse against the
// frozen scalar oracle (transformRef, plus the old caller-side 1/N scale
// loop on the inverse path) across sizes and both dispatch tiers.
func TestPlanarTransformMatchesFrozenRef(t *testing.T) {
	planarRestoreDispatch(t)
	rng := rand.New(rand.NewSource(61))
	for _, simd := range []bool{true, false} {
		kernels.SetDispatch(simd)
		for _, n := range []int{1, 2, 4, 8, 64, 128, 512} {
			p, err := NewFFTPlan(n)
			if err != nil {
				t.Fatal(err)
			}
			for trial := 0; trial < 6; trial++ {
				adv := trial%2 == 1
				x := planarRandFrame(rng, n, adv)

				got := append([]complex128(nil), x...)
				p.Forward(got)
				want := append([]complex128(nil), x...)
				p.transformRef(want, false)
				framesBitsEqual(t, "forward", got, want)

				got = append([]complex128(nil), x...)
				p.Inverse(got)
				want = append([]complex128(nil), x...)
				p.transformRef(want, true)
				scale := complex(1/float64(n), 0)
				for i := range want {
					want[i] *= scale
				}
				framesBitsEqual(t, "inverse", got, want)
			}
		}
	}
}

// TestForwardManyMatchesForward drives the four-lane batched transforms over
// frame counts that cover whole quads, the scalar remainder and the empty
// batch, asserting each frame is bit-identical to its single-frame transform
// under both dispatch tiers.
func TestForwardManyMatchesForward(t *testing.T) {
	planarRestoreDispatch(t)
	rng := rand.New(rand.NewSource(62))
	for _, simd := range []bool{true, false} {
		kernels.SetDispatch(simd)
		for _, n := range []int{8, 64, 256} {
			p, err := NewFFTPlan(n)
			if err != nil {
				t.Fatal(err)
			}
			for _, frames := range []int{0, 1, 3, 4, 5, 8, 11} {
				for trial := 0; trial < 2; trial++ {
					adv := trial == 1
					batch := make([][]complex128, frames)
					single := make([][]complex128, frames)
					for f := range batch {
						batch[f] = planarRandFrame(rng, n, adv)
						single[f] = append([]complex128(nil), batch[f]...)
					}
					p.ForwardMany(batch)
					for f := range single {
						p.Forward(single[f])
						framesBitsEqual(t, "forwardmany", batch[f], single[f])
					}

					for f := range batch {
						batch[f] = planarRandFrame(rng, n, adv)
						single[f] = append([]complex128(nil), batch[f]...)
					}
					p.InverseMany(batch)
					for f := range single {
						p.Inverse(single[f])
						framesBitsEqual(t, "inversemany", batch[f], single[f])
					}
				}
			}
		}
	}
}

// TestFFTIntoMatchesFFT pins the allocation-free entry points to the
// allocating ones, including the aliasing dst == x case.
func TestFFTIntoMatchesFFT(t *testing.T) {
	planarRestoreDispatch(t)
	rng := rand.New(rand.NewSource(63))
	for _, simd := range []bool{true, false} {
		kernels.SetDispatch(simd)
		for _, n := range []int{4, 64, 128} {
			x := planarRandFrame(rng, n, true)
			dst := make([]complex128, n)
			FFTInto(dst, x)
			framesBitsEqual(t, "fftinto", dst, FFT(x))
			alias := append([]complex128(nil), x...)
			FFTInto(alias, alias)
			framesBitsEqual(t, "fftinto-alias", alias, FFT(x))

			IFFTInto(dst, x)
			framesBitsEqual(t, "ifftinto", dst, IFFT(x))
			alias = append([]complex128(nil), x...)
			IFFTInto(alias, alias)
			framesBitsEqual(t, "ifftinto-alias", alias, IFFT(x))
		}
	}
}
