package dsp

import (
	"fmt"
	"math"

	"wlansim/internal/units"
)

// PSD is a two-sided power spectral density estimate centered on 0 Hz.
type PSD struct {
	// FreqHz[i] is the frequency of bin i relative to the center (baseband)
	// frequency; bins run from -fs/2 to +fs/2.
	FreqHz []float64
	// DensityWPerHz[i] is the PSD estimate in watts per hertz (1 ohm).
	DensityWPerHz []float64
	// SampleRateHz is the sample rate the estimate was made at.
	SampleRateHz float64
}

// DBmPerHz returns the density of bin i in dBm/Hz, or -Inf for an empty bin.
func (p *PSD) DBmPerHz(i int) float64 {
	d := p.DensityWPerHz[i]
	if d <= 0 {
		return math.Inf(-1)
	}
	return units.WattsToDBm(d)
}

// BandPowerW integrates the PSD between two frequencies (Hz, relative to
// center) and returns the power in watts.
func (p *PSD) BandPowerW(lo, hi float64) float64 {
	if len(p.FreqHz) < 2 {
		return 0
	}
	df := p.FreqHz[1] - p.FreqHz[0]
	var sum float64
	for i, f := range p.FreqHz {
		if f >= lo && f < hi {
			sum += p.DensityWPerHz[i] * df
		}
	}
	return sum
}

// TotalPowerW integrates the full estimate.
func (p *PSD) TotalPowerW() float64 {
	return p.BandPowerW(math.Inf(-1), math.Inf(1))
}

// WelchPSD estimates the two-sided PSD of x sampled at sampleRateHz using
// Welch's method with 50% overlapped segments of length segLen (a power of
// two) tapered by window w. The estimate is centered (FFT-shifted) so that
// index segLen/2 corresponds to 0 Hz.
func WelchPSD(x []complex128, sampleRateHz float64, segLen int, w Window) (*PSD, error) {
	if segLen < 2 || segLen&(segLen-1) != 0 {
		return nil, fmt.Errorf("dsp: Welch segment length %d is not a power of two >= 2", segLen)
	}
	if len(x) < segLen {
		return nil, fmt.Errorf("dsp: signal length %d shorter than segment %d", len(x), segLen)
	}
	if sampleRateHz <= 0 {
		return nil, fmt.Errorf("dsp: sample rate %g must be positive", sampleRateHz)
	}
	plan, err := NewFFTPlan(segLen)
	if err != nil {
		return nil, err
	}
	win := w.Coefficients(segLen)
	wpg := w.PowerGain(segLen)

	acc := make([]float64, segLen)
	buf := make([]complex128, segLen)
	hop := segLen / 2
	segments := 0
	for start := 0; start+segLen <= len(x); start += hop {
		for i := 0; i < segLen; i++ {
			buf[i] = x[start+i] * complex(win[i], 0)
		}
		plan.Forward(buf)
		for i, v := range buf {
			acc[i] += real(v)*real(v) + imag(v)*imag(v)
		}
		segments++
	}
	// Periodogram normalization: P[k] = |X[k]|^2 / (fs * N * windowPowerGain).
	norm := 1 / (sampleRateHz * float64(segLen) * wpg * float64(segments))
	shifted := make([]float64, segLen)
	for i := range acc {
		// FFT-shift: move bin 0 to the middle.
		j := (i + segLen/2) % segLen
		shifted[j] = acc[i] * norm
	}
	freq := make([]float64, segLen)
	for i := range freq {
		freq[i] = (float64(i) - float64(segLen)/2) * sampleRateHz / float64(segLen)
	}
	return &PSD{FreqHz: freq, DensityWPerHz: shifted, SampleRateHz: sampleRateHz}, nil
}
