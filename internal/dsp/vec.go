package dsp

import "math/cmplx"

// Add returns the element-wise sum a+b in a new slice. The inputs must have
// equal length.
func Add(a, b []complex128) []complex128 {
	if len(a) != len(b) {
		panic("dsp: Add length mismatch")
	}
	out := make([]complex128, len(a))
	for i := range a {
		out[i] = a[i] + b[i]
	}
	return out
}

// AddInto accumulates b into a in place (a += b) and returns a. b may be
// shorter than a; the tail of a is left unchanged.
func AddInto(a, b []complex128) []complex128 {
	if len(b) > len(a) {
		panic("dsp: AddInto second operand longer than first")
	}
	for i := range b {
		a[i] += b[i]
	}
	return a
}

// Mul returns the element-wise product in a new slice.
func Mul(a, b []complex128) []complex128 {
	if len(a) != len(b) {
		panic("dsp: Mul length mismatch")
	}
	out := make([]complex128, len(a))
	for i := range a {
		out[i] = a[i] * b[i]
	}
	return out
}

// Conj returns the element-wise complex conjugate in a new slice.
func Conj(a []complex128) []complex128 {
	out := make([]complex128, len(a))
	for i := range a {
		out[i] = cmplx.Conj(a[i])
	}
	return out
}

// Energy returns sum |a[i]|^2.
func Energy(a []complex128) float64 {
	var e float64
	for _, v := range a {
		e += real(v)*real(v) + imag(v)*imag(v)
	}
	return e
}

// Dot returns sum a[i] * conj(b[i]), the complex inner product.
func Dot(a, b []complex128) complex128 {
	if len(a) != len(b) {
		panic("dsp: Dot length mismatch")
	}
	var s complex128
	for i := range a {
		s += a[i] * cmplx.Conj(b[i])
	}
	return s
}

// CrossCorrelate returns c[l] = sum_n x[n+l] * conj(ref[n]) for lags
// l in [0, len(x)-len(ref)]. It is the sliding correlation used by the
// packet detector. len(ref) must not exceed len(x).
func CrossCorrelate(x, ref []complex128) []complex128 {
	if len(ref) == 0 || len(ref) > len(x) {
		return nil
	}
	out := make([]complex128, len(x)-len(ref)+1)
	for l := range out {
		var s complex128
		for n, r := range ref {
			s += x[l+n] * cmplx.Conj(r)
		}
		out[l] = s
	}
	return out
}

// Clone returns a copy of x.
func Clone(x []complex128) []complex128 {
	out := make([]complex128, len(x))
	copy(out, x)
	return out
}
