package dsp

import (
	"fmt"
	"math/rand"
	"testing"
)

// Microbenchmarks of the filtering and transform kernels tracked by
// scripts/bench.sh (BENCH_*.json). Frame and tap sizes mirror the real
// chain: 11 taps ~ a short shaping filter, 64 ~ the K-model black box,
// 193 ~ the factor-4 resampler interpolator.

func benchFrame(n int, seed int64) []complex128 {
	rng := rand.New(rand.NewSource(seed))
	return randomSignal(rng, n)
}

func BenchmarkFIRProcess(b *testing.B) {
	for _, taps := range []int{11, 64, 193} {
		b.Run(fmt.Sprintf("taps=%d", taps), func(b *testing.B) {
			h := make([]float64, taps)
			rng := rand.New(rand.NewSource(int64(taps)))
			for i := range h {
				h[i] = rng.NormFloat64()
			}
			f := NewFIR(h)
			x := benchFrame(4096, 2)
			buf := make([]complex128, len(x))
			b.ReportAllocs()
			b.SetBytes(int64(len(x) * 16))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				copy(buf, x)
				f.Process(buf)
			}
		})
	}
}

func BenchmarkComplexFIRProcess(b *testing.B) {
	for _, taps := range []int{64, 256} {
		b.Run(fmt.Sprintf("taps=%d", taps), func(b *testing.B) {
			h := make([]complex128, taps)
			rng := rand.New(rand.NewSource(int64(taps)))
			for i := range h {
				h[i] = complex(rng.NormFloat64(), rng.NormFloat64())
			}
			f, err := NewComplexFIR(h)
			if err != nil {
				b.Fatal(err)
			}
			x := benchFrame(4096, 3)
			buf := make([]complex128, len(x))
			b.ReportAllocs()
			b.SetBytes(int64(len(x) * 16))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				copy(buf, x)
				f.Process(buf)
			}
		})
	}
}

// BenchmarkFFT exercises the package-level FFT entry point, which the
// spectral estimators and test benches call per segment — plan reuse (or its
// absence) dominates here at small sizes.
func BenchmarkFFT(b *testing.B) {
	for _, n := range []int{64, 4096} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			x := benchFrame(n, 4)
			b.ReportAllocs()
			b.SetBytes(int64(n * 16))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				FFT(x)
			}
		})
	}
}

// BenchmarkFFTPlanForward is the floor: an in-place transform on a
// pre-built plan, no allocation at all.
func BenchmarkFFTPlanForward(b *testing.B) {
	const n = 64
	p, err := NewFFTPlan(n)
	if err != nil {
		b.Fatal(err)
	}
	x := benchFrame(n, 5)
	buf := make([]complex128, n)
	b.ReportAllocs()
	b.SetBytes(n * 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(buf, x)
		p.Forward(buf)
	}
}

// BenchmarkDFT tracks both sides of DFT's routing boundary: n=1024 takes the
// FFT plan cache, n=257 the direct phasor-table path (whose per-element
// cmplx.Exp must stay out of the O(n^2) loop).
func BenchmarkDFT(b *testing.B) {
	for _, n := range []int{257, 1024} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			x := benchFrame(n, 6)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				DFT(x)
			}
		})
	}
}

// BenchmarkIIRCascade3 tracks the sequential channel-select cascade: an
// order-5 Chebyshev low-pass (two biquads plus a first-order tail) over a
// receiver-sized frame, the shape iirFused3 specializes.
func BenchmarkIIRCascade3(b *testing.B) {
	f, err := DesignChebyshev1(5, Lowpass, 9.5e6/20e6, 0.5)
	if err != nil {
		b.Fatal(err)
	}
	x := benchFrame(4096, 3)
	buf := make([]complex128, len(x))
	b.ReportAllocs()
	b.SetBytes(int64(len(x) * 16))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(buf, x)
		f.Process(buf)
	}
}

// BenchmarkFFTBatch tracks the lane-parallel batched transform path
// (ForwardMany: four 64-point transforms per X4 pass), the shape the
// symbol-major OFDM demodulator drives.
func BenchmarkFFTBatch(b *testing.B) {
	p, err := NewFFTPlan(64)
	if err != nil {
		b.Fatal(err)
	}
	const frames = 32
	src := make([][]complex128, frames)
	buf := make([][]complex128, frames)
	for i := range src {
		src[i] = benchFrame(64, int64(100+i))
		buf[i] = make([]complex128, 64)
	}
	b.ReportAllocs()
	b.SetBytes(frames * 64 * 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range src {
			copy(buf[j], src[j])
		}
		p.ForwardMany(buf)
	}
}
