package dsp

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestVecOps(t *testing.T) {
	a := []complex128{1, 2i}
	b := []complex128{3, -1}
	sum := Add(a, b)
	if sum[0] != 4 || sum[1] != -1+2i {
		t.Errorf("Add = %v", sum)
	}
	prod := Mul(a, b)
	if prod[0] != 3 || prod[1] != -2i {
		t.Errorf("Mul = %v", prod)
	}
	cj := Conj(a)
	if cj[1] != -2i {
		t.Errorf("Conj = %v", cj)
	}
	if e := Energy(a); math.Abs(e-5) > 1e-15 {
		t.Errorf("Energy = %v, want 5", e)
	}
	if d := Dot(a, a); cmplx.Abs(d-5) > 1e-15 {
		t.Errorf("Dot(a,a) = %v, want 5", d)
	}
}

func TestAddInto(t *testing.T) {
	a := []complex128{1, 2, 3}
	AddInto(a, []complex128{10, 20})
	if a[0] != 11 || a[1] != 22 || a[2] != 3 {
		t.Errorf("AddInto = %v", a)
	}
}

func TestVecPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic on mismatched lengths", name)
			}
		}()
		f()
	}
	mustPanic("Add", func() { Add([]complex128{1}, []complex128{1, 2}) })
	mustPanic("Mul", func() { Mul([]complex128{1}, []complex128{1, 2}) })
	mustPanic("Dot", func() { Dot([]complex128{1}, []complex128{1, 2}) })
	mustPanic("AddInto", func() { AddInto([]complex128{1}, []complex128{1, 2}) })
}

func TestCrossCorrelatePeakAtOffset(t *testing.T) {
	ref := []complex128{1, -1, 1i, -1i}
	x := make([]complex128, 32)
	copy(x[10:], ref)
	c := CrossCorrelate(x, ref)
	best, bestMag := 0, 0.0
	for i, v := range c {
		if m := cmplx.Abs(v); m > bestMag {
			best, bestMag = i, m
		}
	}
	if best != 10 {
		t.Errorf("correlation peak at %d, want 10", best)
	}
	if math.Abs(bestMag-4) > 1e-12 {
		t.Errorf("peak magnitude %v, want 4 (ref energy)", bestMag)
	}
}

func TestCrossCorrelateEdgeCases(t *testing.T) {
	if CrossCorrelate([]complex128{1}, nil) != nil {
		t.Error("empty ref should return nil")
	}
	if CrossCorrelate([]complex128{1}, []complex128{1, 2}) != nil {
		t.Error("ref longer than x should return nil")
	}
}

func TestWindowProperties(t *testing.T) {
	for _, w := range []Window{Rectangular, Hann, Hamming, Blackman, BlackmanHarris} {
		c := w.Coefficients(64)
		if len(c) != 64 {
			t.Fatalf("%v: wrong length", w)
		}
		// Symmetric.
		for i := range c {
			if math.Abs(c[i]-c[63-i]) > 1e-12 {
				t.Errorf("%v: asymmetric at %d", w, i)
			}
		}
		// Bounded by [0-eps, 1].
		for i, v := range c {
			if v < -1e-9 || v > 1+1e-12 {
				t.Errorf("%v: coefficient %d = %v out of range", w, i, v)
			}
		}
		if g := w.PowerGain(64); g <= 0 || g > 1+1e-12 {
			t.Errorf("%v: power gain %v out of (0,1]", w, g)
		}
	}
	if Rectangular.PowerGain(16) != 1 {
		t.Error("rectangular power gain != 1")
	}
	if c := Hann.Coefficients(1); c[0] != 1 {
		t.Error("length-1 window != 1")
	}
}

func TestWindowNames(t *testing.T) {
	if Hann.String() != "hann" || Window(99).String() != "unknown" {
		t.Error("window String() wrong")
	}
}

func TestWelchPSDWhiteNoiseLevel(t *testing.T) {
	// Complex white noise of power P has a flat two-sided PSD of P/fs per Hz.
	r := rand.New(rand.NewSource(9))
	fs := 20e6
	n := 1 << 16
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(r.NormFloat64(), r.NormFloat64()) * complex(math.Sqrt(0.5), 0)
	}
	psd, err := WelchPSD(x, fs, 256, Hann)
	if err != nil {
		t.Fatal(err)
	}
	want := 1.0 / fs
	var mean float64
	for _, d := range psd.DensityWPerHz {
		mean += d
	}
	mean /= float64(len(psd.DensityWPerHz))
	if math.Abs(mean-want) > 0.1*want {
		t.Errorf("mean density %g, want %g +-10%%", mean, want)
	}
	// Total integrated power equals the signal power (~1 W).
	if p := psd.TotalPowerW(); math.Abs(p-1) > 0.1 {
		t.Errorf("total power %v, want ~1", p)
	}
}

func TestWelchPSDToneLocation(t *testing.T) {
	fs := 80e6
	x := tone(1<<14, 0.25) // tone at +20 MHz
	psd, err := WelchPSD(x, fs, 512, Blackman)
	if err != nil {
		t.Fatal(err)
	}
	best, bestD := 0, 0.0
	for i, d := range psd.DensityWPerHz {
		if d > bestD {
			best, bestD = i, d
		}
	}
	if f := psd.FreqHz[best]; math.Abs(f-20e6) > fs/512 {
		t.Errorf("tone located at %v Hz, want 20 MHz", f)
	}
	// Band power around the tone captures ~unit power.
	if p := psd.BandPowerW(19e6, 21e6); math.Abs(p-1) > 0.05 {
		t.Errorf("band power %v, want ~1", p)
	}
}

func TestWelchPSDValidation(t *testing.T) {
	x := make([]complex128, 100)
	if _, err := WelchPSD(x, 1e6, 100, Hann); err == nil {
		t.Error("accepted non-power-of-two segment")
	}
	if _, err := WelchPSD(x, 1e6, 256, Hann); err == nil {
		t.Error("accepted signal shorter than segment")
	}
	if _, err := WelchPSD(x, 0, 64, Hann); err == nil {
		t.Error("accepted zero sample rate")
	}
}

func TestPSDDBmPerHz(t *testing.T) {
	p := &PSD{FreqHz: []float64{0, 1}, DensityWPerHz: []float64{1e-3, 0}, SampleRateHz: 2}
	if got := p.DBmPerHz(0); math.Abs(got-0) > 1e-9 {
		t.Errorf("1 mW/Hz = %v dBm/Hz, want 0", got)
	}
	if !math.IsInf(p.DBmPerHz(1), -1) {
		t.Error("zero density should be -Inf dBm/Hz")
	}
}

func TestCloneIndependence(t *testing.T) {
	f := func(v float64) bool {
		x := []complex128{complex(v, -v)}
		y := Clone(x)
		y[0] = 0
		return x[0] == complex(v, -v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
