// Package dsp provides the signal-processing primitives the simulator is
// built on: FFTs, window functions, FIR and IIR filter design and filtering,
// resampling, frequency shifting, correlation and spectral estimation.
//
// All routines operate on complex128 baseband samples. Filters carry
// streaming state so that long signals can be processed frame by frame, which
// is how the sim engine drives them.
package dsp

import (
	"fmt"
	"math"
	"math/bits"
	"math/cmplx"
	"sync"

	"wlansim/internal/kernels"
)

// FFTPlan caches the twiddle factors and bit-reversal permutation for a fixed
// power-of-two transform size, plus the planar split-complex machinery the
// transform actually runs on: per-stage twiddle planes (forward and exactly
// conjugated inverse tables, so the stage loop carries neither the k*step
// index multiply nor the inverse-conjugation branch) and a pool of planar
// scratch frames, so steady-state transforms allocate nothing. A plan is safe
// for concurrent use once built.
type FFTPlan struct {
	n       int
	twiddle []complex128 // exp(-2*pi*i*k/n) for k in [0, n/2)
	rev     []int
	rev64   []int64 // rev as gather indices for kernels.FFTPermute
	stages  int     // log2(n)
	// Per-stage twiddle planes: stage s (half = 1<<s) reads stageWr[s][k] +
	// i*fwdWi[s][k]; the inverse transform swaps in invWi[s] — the exact
	// negation of fwdWi[s], bit-identical to cmplx.Conj of each factor. The
	// real planes are shared: conjugation only flips the imaginary part.
	stageWr [][]float64
	fwdWi   [][]float64
	invWi   [][]float64
	scratch sync.Pool // *fftScratch
}

// fftScratch holds the planar working set of one in-flight transform: the
// deinterleaved input planes, the bit-reversed butterfly planes, and the
// lane-interleaved quad planes used by the batched ForwardMany/InverseMany
// path. One allocation per worker at steady state, reused via the plan pool.
type fftScratch struct {
	sre, sim []float64 // deinterleaved input (also inverse-path second pair)
	pre, pim []float64 // bit-reversed working planes the stages run on
	qre, qim []float64 // lane-interleaved planes for four-frame batches
}

// NewFFTPlan builds a plan for an n-point transform. n must be a power of two
// and at least 1.
func NewFFTPlan(n int) (*FFTPlan, error) {
	if n < 1 || n&(n-1) != 0 {
		return nil, fmt.Errorf("dsp: FFT size %d is not a power of two", n)
	}
	p := &FFTPlan{n: n, stages: bits.TrailingZeros(uint(n))}
	p.twiddle = make([]complex128, n/2)
	for k := range p.twiddle {
		//lint:ignore hotpathexp one-time twiddle table construction at plan creation
		p.twiddle[k] = cmplx.Exp(complex(0, -2*math.Pi*float64(k)/float64(n)))
	}
	p.rev = make([]int, n)
	p.rev64 = make([]int64, n)
	shift := 64 - uint(bits.TrailingZeros(uint(n)))
	for i := range p.rev {
		p.rev[i] = int(bits.Reverse64(uint64(i)) >> shift)
		p.rev64[i] = int64(p.rev[i])
	}
	p.stageWr = make([][]float64, p.stages)
	p.fwdWi = make([][]float64, p.stages)
	p.invWi = make([][]float64, p.stages)
	for s := 0; s < p.stages; s++ {
		half := 1 << s
		step := n / (2 * half)
		wr := make([]float64, half)
		fwi := make([]float64, half)
		iwi := make([]float64, half)
		for k := 0; k < half; k++ {
			w := p.twiddle[k*step]
			wr[k], fwi[k] = real(w), imag(w)
			iwi[k] = -imag(w) // == imag(cmplx.Conj(w)), exactly
		}
		p.stageWr[s], p.fwdWi[s], p.invWi[s] = wr, fwi, iwi
	}
	p.scratch.New = func() any {
		return &fftScratch{
			sre: make([]float64, n), sim: make([]float64, n),
			pre: make([]float64, n), pim: make([]float64, n),
			qre: make([]float64, 4*n), qim: make([]float64, 4*n),
		}
	}
	return p, nil
}

// Size returns the transform length of the plan.
func (p *FFTPlan) Size() int { return p.n }

// Forward computes the in-place forward DFT of x, which must have the plan's
// length. The transform is unnormalized: X[k] = sum_n x[n] exp(-2*pi*i*k*n/N).
//
//lint:hotpath
func (p *FFTPlan) Forward(x []complex128) {
	p.transform(x, false)
}

// Inverse computes the in-place inverse DFT of x, including the 1/N
// normalization so that Inverse(Forward(x)) == x.
//
//lint:hotpath
func (p *FFTPlan) Inverse(x []complex128) {
	p.transform(x, true)
}

// transform runs the planar split-complex pipeline: deinterleave into pooled
// planes, out-of-place bit-reversal gather, one kernels.FFTStage call per
// stage against the precomputed twiddle planes (the inverse path swaps in
// the conjugate table instead of branching per butterfly), the 1/N
// normalization as a planar complex scale on the inverse path, and
// reinterleave. Bit-identical to the frozen scalar transformRef (plus its
// caller's scale loop on the inverse path): each plane element carries one
// unchanged scalar butterfly chain in the compiler's own complex128
// lowering. Allocation-free at steady state — the planar working set comes
// from the plan's scratch pool.
//
//lint:hotpath
func (p *FFTPlan) transform(x []complex128, inverse bool) {
	if len(x) != p.n {
		//lint:ignore escape panic path only: the formatted lengths box
		panic(fmt.Sprintf("dsp: FFT input length %d does not match plan size %d", len(x), p.n))
	}
	s := p.scratch.Get().(*fftScratch)
	kernels.Deinterleave(s.sre, s.sim, x)
	kernels.FFTPermute(s.pre, s.sre, p.rev64)
	kernels.FFTPermute(s.pim, s.sim, p.rev64)
	p.stagesInPlace(s.pre, s.pim, inverse)
	if inverse {
		kernels.ScaleCplx(s.pre, s.pim, 1/float64(p.n))
	}
	kernels.Interleave(x, s.pre, s.pim)
	p.scratch.Put(s)
}

// stagesInPlace runs every butterfly stage over bit-reversed planar data.
//
//lint:hotpath
func (p *FFTPlan) stagesInPlace(re, im []float64, inverse bool) {
	wi := p.fwdWi
	if inverse {
		wi = p.invWi
	}
	for st := 0; st < p.stages; st++ {
		kernels.FFTStage(re, im, p.stageWr[st], wi[st], 1<<st)
	}
}

// transformRef is the retained scalar interleaved transform, frozen as the
// differential-test oracle for the planar pipeline. It performs no
// normalization — the inverse caller scales by 1/N afterwards, exactly as
// the old Inverse did.
func (p *FFTPlan) transformRef(x []complex128, inverse bool) {
	if len(x) != p.n {
		panic(fmt.Sprintf("dsp: FFT input length %d does not match plan size %d", len(x), p.n))
	}
	for i, j := range p.rev {
		if i < j {
			x[i], x[j] = x[j], x[i]
		}
	}
	for size := 2; size <= p.n; size <<= 1 {
		half := size / 2
		step := p.n / size
		for start := 0; start < p.n; start += size {
			for k := 0; k < half; k++ {
				w := p.twiddle[k*step]
				if inverse {
					w = cmplx.Conj(w)
				}
				a := x[start+k]
				b := x[start+k+half] * w
				x[start+k] = a + b
				x[start+k+half] = a - b
			}
		}
	}
}

// ForwardMany computes the in-place forward DFT of every frame, four at a
// time through the lane-interleaved planar pipeline (each vector carries the
// same butterfly of four independent transforms, so every stage vectorizes —
// including the half < 4 stages the single-frame path runs scalar). Each
// frame must have the plan's length. Bit-identical, frame for frame, to
// calling Forward on each.
//
//lint:hotpath
func (p *FFTPlan) ForwardMany(xs [][]complex128) {
	p.transformMany(xs, false)
}

// InverseMany computes the in-place normalized inverse DFT of every frame,
// four at a time. Bit-identical, frame for frame, to calling Inverse on each.
//
//lint:hotpath
func (p *FFTPlan) InverseMany(xs [][]complex128) {
	p.transformMany(xs, true)
}

//lint:hotpath
func (p *FFTPlan) transformMany(xs [][]complex128, inverse bool) {
	g := 0
	if len(xs) >= 4 {
		s := p.scratch.Get().(*fftScratch)
		wi := p.fwdWi
		if inverse {
			wi = p.invWi
		}
		for ; g+4 <= len(xs); g += 4 {
			quad := xs[g : g+4]
			for _, x := range quad {
				if len(x) != p.n {
					//lint:ignore escape panic path only: the formatted lengths box
					panic(fmt.Sprintf("dsp: FFT input length %d does not match plan size %d", len(x), p.n))
				}
			}
			kernels.FFTPackX4(s.qre, s.qim, quad, p.rev64)
			for st := 0; st < p.stages; st++ {
				kernels.FFTStageX4(s.qre, s.qim, p.stageWr[st], wi[st], 1<<st)
			}
			if inverse {
				// Elementwise planar scale: layout-agnostic, so it applies to
				// the lane-interleaved planes exactly as to single frames.
				kernels.ScaleCplx(s.qre, s.qim, 1/float64(p.n))
			}
			kernels.FFTUnpackX4(quad, s.qre, s.qim)
		}
		p.scratch.Put(s)
	}
	for ; g < len(xs); g++ {
		p.transform(xs[g], inverse)
	}
}

// planCache holds one immutable FFTPlan per transform size. Plans are safe
// for concurrent use once built, so a lost race at worst builds a duplicate
// that the map discards.
var planCache sync.Map // int -> *FFTPlan

// PlanFor returns the shared plan for an n-point transform, building and
// caching it on first use. n must be a power of two. The returned plan is
// safe for concurrent use and must not be modified.
func PlanFor(n int) (*FFTPlan, error) {
	if p, ok := planCache.Load(n); ok {
		return p.(*FFTPlan), nil
	}
	p, err := NewFFTPlan(n)
	if err != nil {
		return nil, err
	}
	actual, _ := planCache.LoadOrStore(n, p)
	return actual.(*FFTPlan), nil
}

// FFT returns the forward DFT of x in a new slice. len(x) must be a power of
// two.
func FFT(x []complex128) []complex128 {
	p, err := PlanFor(len(x))
	if err != nil {
		panic(err)
	}
	out := make([]complex128, len(x))
	copy(out, x)
	p.Forward(out)
	return out
}

// IFFT returns the normalized inverse DFT of x in a new slice. len(x) must be
// a power of two.
func IFFT(x []complex128) []complex128 {
	p, err := PlanFor(len(x))
	if err != nil {
		panic(err)
	}
	out := make([]complex128, len(x))
	copy(out, x)
	p.Inverse(out)
	return out
}

// FFTInto computes the forward DFT of x into dst without allocating: the
// caller owns the output buffer, and the shared plan's pooled planar scratch
// covers the transform working set. dst and x must have the same power-of-two
// length (they may alias). Bit-identical to FFT.
//
//lint:hotpath
func FFTInto(dst, x []complex128) {
	p, err := PlanFor(len(x))
	if err != nil {
		panic(err)
	}
	if &dst[0] != &x[0] {
		copy(dst, x)
	}
	p.Forward(dst)
}

// IFFTInto computes the normalized inverse DFT of x into dst without
// allocating. dst and x must have the same power-of-two length (they may
// alias). Bit-identical to IFFT.
//
//lint:hotpath
func IFFTInto(dst, x []complex128) {
	p, err := PlanFor(len(x))
	if err != nil {
		panic(err)
	}
	if &dst[0] != &x[0] {
		copy(dst, x)
	}
	p.Inverse(dst)
}

// FFTShift rotates the spectrum so that the zero-frequency bin moves to the
// center: for even n the output order is [n/2, ..., n-1, 0, ..., n/2-1].
// The input is not modified.
func FFTShift(x []complex128) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	half := (n + 1) / 2
	copy(out, x[half:])
	copy(out[n-half:], x[:half])
	return out
}

// DFT computes the forward DFT of any length. Power-of-two lengths route
// through the shared FFT plan cache (O(n log n)); other lengths of at least
// bluesteinMinSize run the Bluestein chirp-z algorithm on top of the same
// plan cache (also O(n log n)); tiny remainders fall back to the direct
// phasor-table evaluation. The paths agree to float rounding (different
// summation orders), which TestDFTRoutingEquivalence pins across both
// routing boundaries.
func DFT(x []complex128) []complex128 {
	n := len(x)
	if n > 0 && n&(n-1) == 0 {
		return FFT(x)
	}
	if n >= bluesteinMinSize {
		return dftBluestein(x)
	}
	return dftDirect(x)
}

// bluesteinMinSize is the length at which the chirp-z path takes over from
// direct summation: below it the three padded FFTs cost more than the O(n^2)
// loop they replace.
const bluesteinMinSize = 32

// bluesteinPlan caches the chirp sequence and the transformed convolution
// kernel for one non-power-of-two size. Immutable once built, safe for
// concurrent use.
type bluesteinPlan struct {
	n     int
	m     int          // padded power-of-two convolution size, >= 2n-1
	plan  *FFTPlan     // shared m-point plan from the global cache
	chirp []complex128 // exp(-i*pi*j^2/n), j in [0, n)
	bft   []complex128 // forward transform of the circular conjugate-chirp kernel
}

var bluesteinCache sync.Map // int -> *bluesteinPlan

func bluesteinFor(n int) *bluesteinPlan {
	if p, ok := bluesteinCache.Load(n); ok {
		return p.(*bluesteinPlan)
	}
	m := 1
	for m < 2*n-1 {
		m <<= 1
	}
	plan, err := PlanFor(m)
	if err != nil {
		panic(err) // unreachable: m is a power of two by construction
	}
	p := &bluesteinPlan{n: n, m: m, plan: plan}
	p.chirp = make([]complex128, n)
	for j := range p.chirp {
		// The chirp phase pi*j^2/n is 2*pi-periodic in j^2 mod 2n; reducing
		// first keeps the Exp argument small for exact phasors at any n.
		//lint:ignore hotpathexp one-time chirp table construction at plan creation
		p.chirp[j] = cmplx.Exp(complex(0, -math.Pi*float64(j*j%(2*n))/float64(n)))
	}
	b := make([]complex128, m)
	b[0] = 1
	for j := 1; j < n; j++ {
		c := cmplx.Conj(p.chirp[j])
		b[j] = c
		b[m-j] = c
	}
	plan.Forward(b)
	p.bft = b
	actual, _ := bluesteinCache.LoadOrStore(n, p)
	return actual.(*bluesteinPlan)
}

// dftBluestein evaluates the DFT of arbitrary length n as a circular
// convolution of chirp-premultiplied input with a fixed chirp kernel, carried
// out by power-of-two FFTs: X[k] = chirp[k] * sum_j (x[j]*chirp[j]) *
// conj(chirp[k-j]). Cost is three m-point transforms with m < 4n.
func dftBluestein(x []complex128) []complex128 {
	p := bluesteinFor(len(x))
	a := make([]complex128, p.m)
	for i, v := range x {
		a[i] = v * p.chirp[i]
	}
	p.plan.Forward(a)
	for i := range a {
		a[i] *= p.bft[i]
	}
	p.plan.Inverse(a)
	out := make([]complex128, p.n)
	for k := range out {
		out[k] = a[k] * p.chirp[k]
	}
	return out
}

// dftDirect computes the forward DFT by direct summation in O(n^2). It
// accepts any length and is the reference oracle for the FFT tests. The
// phasors exp(-2*pi*i*k*n/N) take only N distinct values, so they are
// tabulated once (N evaluations) and indexed by k*n mod N — no
// transcendental calls and no accumulated rotation drift in the O(n^2) loop.
func dftDirect(x []complex128) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	if n == 0 {
		return out
	}
	w := make([]complex128, n)
	for j := range w {
		//lint:ignore hotpathexp reference-oracle phasor table, N evaluations outside the O(n^2) loop
		w[j] = cmplx.Exp(complex(0, -2*math.Pi*float64(j)/float64(n)))
	}
	for k := 0; k < n; k++ {
		var sum complex128
		for i := 0; i < n; i++ {
			sum += x[i] * w[k*i%n]
		}
		out[k] = sum
	}
	return out
}
