package dsp

import (
	"math"
	"math/rand"
	"testing"
)

// TestIIRBatchMatchesSequential pins lane b of the batched cascade
// bit-identical to IIR.Process on that lane alone, across batch widths,
// filter designs (odd/even Chebyshev order, DC block with its non-unity
// gain) and multi-frame streaming state carry.
func TestIIRBatchMatchesSequential(t *testing.T) {
	cheb5, err := DesignChebyshev1(5, Lowpass, 9.5e6/20e6, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	cheb4, err := DesignChebyshev1(4, Lowpass, 0.3, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	dcb, err := DesignDCBlock(150e3 / 20e6)
	if err != nil {
		t.Fatal(err)
	}
	designs := map[string]*IIR{"cheb5": cheb5, "cheb4": cheb4, "dcblock": dcb}

	rng := rand.New(rand.NewSource(31))
	for name, f := range designs {
		for _, B := range []int{1, 2, 3, 5, 8, 16} {
			batch := NewIIRBatch(f)
			// Sequential oracles: one cascade clone per lane so streaming
			// state carries per lane across frames, as the batch states do.
			seq := make([]*IIR, B)
			for l := range seq {
				seq[l] = NewIIR(f.Gain, f.Sections)
			}
			for frame := 0; frame < 3; frame++ {
				n := 1 + rng.Intn(300)
				got := make([][]complex128, B)
				want := make([][]complex128, B)
				for l := 0; l < B; l++ {
					got[l] = make([]complex128, n)
					want[l] = make([]complex128, n)
					for i := range got[l] {
						v := complex(rng.NormFloat64(), rng.NormFloat64())
						got[l][i] = v
						want[l][i] = v
					}
				}
				batch.Process(got)
				for l := 0; l < B; l++ {
					seq[l].Process(want[l])
					for i := range got[l] {
						if math.Float64bits(real(got[l][i])) != math.Float64bits(real(want[l][i])) ||
							math.Float64bits(imag(got[l][i])) != math.Float64bits(imag(want[l][i])) {
							t.Fatalf("%s B=%d frame %d lane %d sample %d: batch %v != sequential %v",
								name, B, frame, l, i, got[l][i], want[l][i])
						}
					}
				}
			}
		}
	}
}

// TestIIRBatchReset pins that Reset zeroes every lane state: a reset batch
// must reproduce a fresh batch bit for bit.
func TestIIRBatchReset(t *testing.T) {
	f, err := DesignChebyshev1(5, Lowpass, 0.25, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(32))
	const B, n = 4, 128
	mk := func(seed int64) [][]complex128 {
		r := rand.New(rand.NewSource(seed))
		lanes := make([][]complex128, B)
		for l := range lanes {
			lanes[l] = make([]complex128, n)
			for i := range lanes[l] {
				lanes[l][i] = complex(r.NormFloat64(), r.NormFloat64())
			}
		}
		return lanes
	}
	_ = rng

	batch := NewIIRBatch(f)
	warm := mk(1)
	batch.Process(warm)
	batch.Reset()
	second := mk(2)
	batch.Process(second)

	fresh := NewIIRBatch(f)
	want := mk(2)
	fresh.Process(want)

	for l := 0; l < B; l++ {
		for i := 0; i < n; i++ {
			if second[l][i] != want[l][i] {
				t.Fatalf("lane %d sample %d: reset batch %v != fresh batch %v", l, i, second[l][i], want[l][i])
			}
		}
	}
}
