package dsp

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
)

func TestFIRImpulseResponseEqualsTaps(t *testing.T) {
	taps := []float64{0.25, 0.5, 0.25}
	f := NewFIR(taps)
	in := []complex128{1, 0, 0, 0, 0}
	out := f.Process(Clone(in))
	want := []complex128{0.25, 0.5, 0.25, 0, 0}
	for i := range want {
		if cmplx.Abs(out[i]-want[i]) > 1e-15 {
			t.Fatalf("impulse response %v, want %v", out, want)
		}
	}
}

func TestFIRStreamingMatchesBatch(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	f1, err := DesignLowpassFIR(31, 0.2, Hamming)
	if err != nil {
		t.Fatal(err)
	}
	f2 := NewFIR(f1.Taps())
	x := randomSignal(r, 200)

	batch := f1.Process(Clone(x))
	var stream []complex128
	for start := 0; start < len(x); start += 17 { // odd frame size on purpose
		end := start + 17
		if end > len(x) {
			end = len(x)
		}
		stream = append(stream, f2.Process(Clone(x[start:end]))...)
	}
	if d := maxAbsDiff(batch, stream); d > 1e-12 {
		t.Errorf("streaming differs from batch by %g", d)
	}
}

func TestFIRReset(t *testing.T) {
	f := NewFIR([]float64{1, 1})
	f.ProcessSample(5)
	f.Reset()
	if got := f.ProcessSample(1); got != 1 {
		t.Errorf("after reset, first output %v, want 1", got)
	}
}

func TestDesignLowpassFIRResponse(t *testing.T) {
	f, err := DesignLowpassFIR(101, 0.125, Blackman)
	if err != nil {
		t.Fatal(err)
	}
	// DC gain exactly one by normalization.
	if g := cmplx.Abs(f.Response(0)); math.Abs(g-1) > 1e-12 {
		t.Errorf("DC gain %v, want 1", g)
	}
	// Passband (well below cutoff) within 0.5 dB.
	if g := cmplx.Abs(f.Response(0.05)); math.Abs(20*math.Log10(g)) > 0.5 {
		t.Errorf("passband gain %v dB, want ~0", 20*math.Log10(g))
	}
	// Stopband (well above cutoff) below -60 dB for a Blackman design.
	if g := cmplx.Abs(f.Response(0.3)); 20*math.Log10(g) > -60 {
		t.Errorf("stopband gain %v dB, want < -60", 20*math.Log10(g))
	}
}

func TestDesignLowpassFIRValidation(t *testing.T) {
	if _, err := DesignLowpassFIR(0, 0.1, Hann); err == nil {
		t.Error("accepted zero taps")
	}
	if _, err := DesignLowpassFIR(11, 0, Hann); err == nil {
		t.Error("accepted zero cutoff")
	}
	if _, err := DesignLowpassFIR(11, 0.5, Hann); err == nil {
		t.Error("accepted cutoff at Nyquist")
	}
}

func TestConvolveKnownValue(t *testing.T) {
	x := []complex128{1, 2, 3}
	h := []float64{1, 1}
	got := Convolve(x, h)
	want := []complex128{1, 3, 5, 3}
	if len(got) != len(want) {
		t.Fatalf("length %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Convolve = %v, want %v", got, want)
		}
	}
	if Convolve(nil, h) != nil {
		t.Error("Convolve(nil, h) != nil")
	}
}

func TestButterworthLowpassResponse(t *testing.T) {
	f, err := DesignButterworth(5, Lowpass, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if got := f.MagnitudeDB(0); math.Abs(got) > 1e-9 {
		t.Errorf("DC gain %v dB, want 0", got)
	}
	// -3 dB at the cutoff for Butterworth.
	if got := f.MagnitudeDB(0.1); math.Abs(got+3.01) > 0.1 {
		t.Errorf("cutoff gain %v dB, want -3.01", got)
	}
	// Monotonic and steep beyond cutoff: 5th order gives -30 dB/octave.
	if got := f.MagnitudeDB(0.2); got > -28 {
		t.Errorf("one octave above cutoff %v dB, want < -28", got)
	}
}

func TestButterworthHighpassResponse(t *testing.T) {
	f, err := DesignButterworth(3, Highpass, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if got := f.MagnitudeDB(0.5); math.Abs(got) > 1e-9 {
		t.Errorf("Nyquist gain %v dB, want 0", got)
	}
	if got := f.MagnitudeDB(0.05); math.Abs(got+3.01) > 0.1 {
		t.Errorf("cutoff gain %v dB, want -3.01", got)
	}
	if got := f.MagnitudeDB(0.01); got > -35 {
		t.Errorf("deep stopband gain %v dB, want < -35", got)
	}
}

func TestChebyshev1LowpassRipple(t *testing.T) {
	const ripple = 0.5
	for _, order := range []int{3, 4, 5, 6, 7} {
		f, err := DesignChebyshev1(order, Lowpass, 0.12, ripple)
		if err != nil {
			t.Fatal(err)
		}
		// Scan the passband: gain must stay within [-ripple, 0] dB
		// (small numerical slack).
		maxG, minG := math.Inf(-1), math.Inf(1)
		for nu := 0.0; nu <= 0.1199; nu += 0.0004 {
			g := f.MagnitudeDB(nu)
			if g > maxG {
				maxG = g
			}
			if g < minG {
				minG = g
			}
		}
		if maxG > 0.02 {
			t.Errorf("order %d: passband peak %v dB > 0", order, maxG)
		}
		if minG < -ripple-0.05 {
			t.Errorf("order %d: passband dip %v dB < -%v", order, minG, ripple)
		}
		// The ripple band must actually be exercised (gain reaches close
		// to both bounds) for orders >= 3.
		if maxG < -0.1 || minG > -ripple+0.1 {
			t.Errorf("order %d: ripple band [%v, %v] dB not exercised", order, minG, maxG)
		}
		// At the passband edge the attenuation equals the ripple.
		if g := f.MagnitudeDB(0.12); math.Abs(g+ripple) > 0.05 {
			t.Errorf("order %d: edge gain %v dB, want -%v", order, g, ripple)
		}
	}
}

func TestChebyshevSteeperThanButterworth(t *testing.T) {
	cb, err := DesignChebyshev1(5, Lowpass, 0.1, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	bw, err := DesignButterworth(5, Lowpass, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if cb.MagnitudeDB(0.2) >= bw.MagnitudeDB(0.2) {
		t.Errorf("Chebyshev (%v dB) not steeper than Butterworth (%v dB) at 2x cutoff",
			cb.MagnitudeDB(0.2), bw.MagnitudeDB(0.2))
	}
}

func TestIIRFilterStability(t *testing.T) {
	// Feed white noise through a sharp filter; output must stay bounded.
	f, err := DesignChebyshev1(7, Lowpass, 0.05, 1)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(6))
	var peak float64
	for i := 0; i < 20000; i++ {
		y := f.ProcessSample(complex(r.NormFloat64(), r.NormFloat64()))
		if a := cmplx.Abs(y); a > peak {
			peak = a
		}
	}
	if peak > 100 || math.IsNaN(peak) || math.IsInf(peak, 0) {
		t.Errorf("filter output peak %v indicates instability", peak)
	}
}

func TestIIRStreamingMatchesBatch(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	f1, _ := DesignButterworth(4, Lowpass, 0.2)
	f2, _ := DesignButterworth(4, Lowpass, 0.2)
	x := randomSignal(r, 300)
	batch := f1.Process(Clone(x))
	var stream []complex128
	for start := 0; start < len(x); start += 23 {
		end := start + 23
		if end > len(x) {
			end = len(x)
		}
		stream = append(stream, f2.Process(Clone(x[start:end]))...)
	}
	if d := maxAbsDiff(batch, stream); d > 1e-12 {
		t.Errorf("streaming differs from batch by %g", d)
	}
}

func TestIIRZeroValueIsIdentity(t *testing.T) {
	var f IIR
	x := complex(3, -4)
	if got := f.ProcessSample(x); got != x {
		t.Errorf("zero-value IIR changed sample: %v", got)
	}
}

func TestIIRResetClearsState(t *testing.T) {
	f, _ := DesignButterworth(2, Lowpass, 0.1)
	a := f.ProcessSample(1)
	f.Reset()
	b := f.ProcessSample(1)
	if a != b {
		t.Errorf("Reset did not clear state: %v vs %v", a, b)
	}
}

func TestDCBlockRemovesDC(t *testing.T) {
	f, err := DesignDCBlock(0.001)
	if err != nil {
		t.Fatal(err)
	}
	// A constant input must decay to ~zero.
	var y complex128
	for i := 0; i < 20000; i++ {
		y = f.ProcessSample(complex(1, 0.5))
	}
	if cmplx.Abs(y) > 1e-3 {
		t.Errorf("DC residual %v after settling", cmplx.Abs(y))
	}
	// A mid-band tone must pass with ~unity gain.
	if g := cmplx.Abs(f.Response(0.25)); math.Abs(g-1) > 0.01 {
		t.Errorf("mid-band gain %v, want ~1", g)
	}
	// The corner is at ~-3 dB.
	if g := 20 * math.Log10(cmplx.Abs(f.Response(0.001))); math.Abs(g+3) > 0.5 {
		t.Errorf("corner gain %v dB, want ~-3", g)
	}
}

func TestFilterDesignValidation(t *testing.T) {
	if _, err := DesignButterworth(0, Lowpass, 0.1); err == nil {
		t.Error("accepted order 0")
	}
	if _, err := DesignButterworth(4, Lowpass, 0.6); err == nil {
		t.Error("accepted cutoff beyond Nyquist")
	}
	if _, err := DesignChebyshev1(4, Lowpass, 0.1, 0); err == nil {
		t.Error("accepted zero ripple")
	}
	if _, err := DesignChebyshev1(4, Lowpass, -0.1, 1); err == nil {
		t.Error("accepted negative cutoff")
	}
	if _, err := DesignDCBlock(0.7); err == nil {
		t.Error("accepted DC block cutoff beyond Nyquist")
	}
}

func TestIIROrder(t *testing.T) {
	for _, order := range []int{1, 2, 3, 6, 7} {
		f, err := DesignButterworth(order, Lowpass, 0.1)
		if err != nil {
			t.Fatal(err)
		}
		if got := f.Order(); got != order {
			t.Errorf("Order() = %d, want %d", got, order)
		}
	}
}
