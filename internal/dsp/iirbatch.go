package dsp

import "wlansim/internal/kernels"

// IIRBatch drives one IIR cascade over B lanes in lock-step. The scalar
// cascade's biquad recurrence is latency-bound — each sample's update waits
// on the previous sample's — so interleaving B independent lanes through
// kernels.BiquadBatch fills the pipeline the scalar section leaves idle.
//
// The batch object owns its per-section, per-lane delay states, separate
// from the scalar cascade's (the design object is shared read-only): lane b
// of Process is bit-identical to running f.Process on that lane alone from
// the same (zero or carried) state — the gain pass and every section apply
// the same per-lane operation sequence, and lanes never mix.
type IIRBatch struct {
	f *IIR
	// s1r[sec][lane] etc. hold lane states per section.
	s1r, s1i, s2r, s2i [][]float64
	// re[lane]/im[lane] are the planar working planes, converted once per
	// frame at entry and exit (the kernels layer is planar).
	re, im [][]float64
}

// NewIIRBatch builds the batch driver for the cascade f. The section
// coefficients are read from f on every call, so retuning f retunes the
// batch; the delay states live here and start zero.
func NewIIRBatch(f *IIR) *IIRBatch {
	return &IIRBatch{f: f}
}

// Reset zeroes every lane's delay states, the batch analogue of IIR.Reset.
func (b *IIRBatch) Reset() {
	for s := range b.s1r {
		for l := range b.s1r[s] {
			b.s1r[s][l] = 0
			b.s1i[s][l] = 0
			b.s2r[s][l] = 0
			b.s2i[s][l] = 0
		}
	}
}

// grow sizes the per-section state arrays and planar planes for B lanes of
// n samples, preserving existing lane states on no-op grows.
func (b *IIRBatch) grow(lanes, n int) {
	secs := len(b.f.Sections)
	if len(b.s1r) < secs || (secs > 0 && len(b.s1r[0]) < lanes) {
		grown := func(old [][]float64) [][]float64 {
			out := make([][]float64, secs)
			for s := range out {
				out[s] = make([]float64, lanes)
				if s < len(old) {
					copy(out[s], old[s])
				}
			}
			return out
		}
		b.s1r = grown(b.s1r)
		b.s1i = grown(b.s1i)
		b.s2r = grown(b.s2r)
		b.s2i = grown(b.s2i)
	}
	if len(b.re) < lanes {
		re := make([][]float64, lanes)
		im := make([][]float64, lanes)
		copy(re, b.re)
		copy(im, b.im)
		b.re, b.im = re, im
	}
	for l := 0; l < lanes; l++ {
		if cap(b.re[l]) < n {
			b.re[l] = make([]float64, n)
			b.im[l] = make([]float64, n)
		}
		b.re[l] = b.re[l][:n]
		b.im[l] = b.im[l][:n]
	}
}

// Process filters B equal-length lanes in place through the cascade,
// lock-step per section. Lane b is bit-identical to f.Process(lanes[b])
// from the same delay state.
func (b *IIRBatch) Process(lanes [][]complex128) {
	if len(lanes) == 0 || len(lanes[0]) == 0 {
		return
	}
	L, n := len(lanes), len(lanes[0])
	b.grow(L, n)

	for l := 0; l < L; l++ {
		re, im := b.re[l], b.im[l]
		for i, v := range lanes[l] {
			re[i] = real(v)
			im[i] = imag(v)
		}
	}

	b.ProcessPlanar(b.re[:L], b.im[:L])

	for l := 0; l < L; l++ {
		re, im := b.re[l], b.im[l]
		lane := lanes[l]
		for i := range lane {
			lane[i] = complex(re[i], im[i])
		}
	}
}

// ProcessPlanar is Process for callers that already hold planar lanes (the
// batched front end keeps its lanes planar across consecutive stages and
// converts only at the ends). The gain pass runs in place over the planes —
// the same per-sample multiply the complex entry point folds into its
// conversion, so both entry points stay bit-identical to the scalar cascade.
func (b *IIRBatch) ProcessPlanar(re, im [][]float64) {
	if len(re) == 0 || len(re[0]) == 0 {
		return
	}
	L := len(re)
	if len(b.s1r) < len(b.f.Sections) || (len(b.f.Sections) > 0 && len(b.s1r[0]) < L) {
		b.grow(L, 0)
	}

	g := b.f.Gain
	if g == 0 {
		g = 1
	}
	// Multiplying by exactly 1.0 is skipped as in IIR.Process (a bit-exact
	// identity).
	//lint:ignore floateq multiplying by exactly 1.0 is a bit-exact identity, so the gain pass can be skipped
	if g != 1 {
		for l := 0; l < L; l++ {
			rl, il := re[l], im[l]
			for i := range rl {
				rl[i] = g * rl[i]
				il[i] = g * il[i]
			}
		}
	}

	for s := range b.f.Sections {
		q := &b.f.Sections[s]
		kernels.BiquadBatch(re, im, q.B0, q.B1, q.B2, q.A1, q.A2,
			b.s1r[s][:L], b.s1i[s][:L], b.s2r[s][:L], b.s2i[s][:L])
	}
}
