package rf

import (
	"math"
	"strings"
	"testing"
)

func TestMeasureGainMatchesConfig(t *testing.T) {
	a, _ := NewAmplifier(AmplifierConfig{Name: "g", GainDB: 14, Model: Linear})
	c := NewCharacterizer(20e6)
	if g := c.MeasureGain(a, -60); math.Abs(g-14) > 0.05 {
		t.Errorf("measured gain %v dB, want 14", g)
	}
}

func TestMeasureP1dBMatchesConfig(t *testing.T) {
	for _, cp := range []float64{-25, -12, -3} {
		a, _ := NewAmplifier(AmplifierConfig{
			Name: "cp", GainDB: 10, Model: Cubic, UseCompression: true, CompressionDBm: cp,
		})
		c := NewCharacterizer(20e6)
		got, err := c.MeasureP1dB(a, 0.25)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-cp) > 0.3 {
			t.Errorf("measured P1dB %v dBm, want %v", got, cp)
		}
	}
}

func TestMeasureP1dBRejectsLinearBlock(t *testing.T) {
	a, _ := NewAmplifier(AmplifierConfig{Name: "lin", GainDB: 10, Model: Linear})
	c := NewCharacterizer(20e6)
	if _, err := c.MeasureP1dB(a, 0.5); err == nil {
		t.Error("found a compression point on a linear block")
	}
}

func TestMeasureIIP3MatchesConfig(t *testing.T) {
	for _, ip3 := range []float64{-10, 0, 8} {
		a, _ := NewAmplifier(AmplifierConfig{
			Name: "ip3", GainDB: 12, Model: Cubic, IIP3DBm: ip3,
		})
		c := NewCharacterizer(20e6)
		got, err := c.MeasureIIP3(a, ip3-25)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-ip3) > 0.3 {
			t.Errorf("measured IIP3 %v dBm, want %v", got, ip3)
		}
	}
}

func TestMeasureNoiseFigureMatchesConfig(t *testing.T) {
	fs := 20e6
	a, _ := NewAmplifier(AmplifierConfig{
		Name: "nf", GainDB: 20, NoiseFigureDB: 5, Model: Linear,
		SampleRateHz: fs, NoiseSeed: 11,
	})
	c := NewCharacterizer(fs)
	got, err := c.MeasureNoiseFigure(a, 20)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-5) > 0.3 {
		t.Errorf("measured NF %v dB, want 5", got)
	}
}

func TestMeasureNoiseFigureRejectsNoiselessBlock(t *testing.T) {
	a, _ := NewAmplifier(AmplifierConfig{Name: "quiet", GainDB: 20, Model: Linear})
	c := NewCharacterizer(20e6)
	if _, err := c.MeasureNoiseFigure(a, 20); err == nil {
		t.Error("measured an NF on a noiseless block")
	}
}

func TestMeasureImageRejectionMatchesMixer(t *testing.T) {
	m, _ := NewMixer(MixerConfig{
		Name: "iq", IQGainImbalanceDB: 0.3, IQPhaseErrorDeg: 1.5,
	})
	c := NewCharacterizer(20e6)
	got, err := c.MeasureImageRejection(m, -40)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-m.ImageRejectionDB()) > 0.3 {
		t.Errorf("measured IRR %v dB, computed %v", got, m.ImageRejectionDB())
	}
	ideal, _ := NewMixer(MixerConfig{Name: "ideal"})
	irr, err := c.MeasureImageRejection(ideal, -40)
	if err != nil {
		t.Fatal(err)
	}
	if irr < 200 { // numerically infinite
		t.Errorf("ideal mixer IRR %v dB", irr)
	}
}

func TestCharacterizeFullDatasheet(t *testing.T) {
	a, _ := NewAmplifier(AmplifierConfig{
		Name: "lna", GainDB: 18, NoiseFigureDB: 2.5,
		Model: Cubic, UseCompression: true, CompressionDBm: -10,
		SampleRateHz: 20e6, NoiseSeed: 5,
	})
	c := NewCharacterizer(20e6)
	rep := c.Characterize(a)
	if math.Abs(rep.GainDB-18) > 0.3 {
		t.Errorf("gain %v", rep.GainDB)
	}
	if math.Abs(rep.P1dBDBm-(-10)) > 0.5 {
		t.Errorf("P1dB %v", rep.P1dBDBm)
	}
	if math.Abs(rep.IIP3DBm-IIP3FromP1dB(-10)) > 1.5 {
		t.Errorf("IIP3 %v, want ~%v", rep.IIP3DBm, IIP3FromP1dB(-10))
	}
	if math.Abs(rep.NoiseFigureDB-2.5) > 0.5 {
		t.Errorf("NF %v", rep.NoiseFigureDB)
	}
	s := rep.String()
	for _, want := range []string{"gain", "P1dB", "IIP3", "NF", "IRR"} {
		if !strings.Contains(s, want) {
			t.Errorf("report missing %q: %s", want, s)
		}
	}
}

func TestCharacterizerDefaults(t *testing.T) {
	c := &Characterizer{SampleRateHz: 20e6, ToneLength: 100} // not a power of two
	if c.length() != 4096 {
		t.Errorf("bad ToneLength not defaulted: %d", c.length())
	}
	c.ToneLength = 1024
	if c.length() != 1024 {
		t.Errorf("valid ToneLength overridden: %d", c.length())
	}
	if _, err := (&Characterizer{}).MeasureNoiseFigure(nil, 0); err == nil {
		t.Error("NF without sample rate accepted")
	}
}
