package rf

import (
	"math"
	"math/rand"
	"testing"
)

// batchFrames builds B random complex frames of n samples near the
// receiver's expected input level.
func batchFrames(seed int64, lanes, n int, amp float64) [][]complex128 {
	rng := rand.New(rand.NewSource(seed))
	out := make([][]complex128, lanes)
	for l := range out {
		out[l] = make([]complex128, n)
		for i := range out[l] {
			out[l][i] = complex(rng.NormFloat64()*amp, rng.NormFloat64()*amp)
		}
	}
	return out
}

func cloneFrames(src [][]complex128) [][]complex128 {
	out := make([][]complex128, len(src))
	for l := range src {
		out[l] = append([]complex128(nil), src[l]...)
	}
	return out
}

// TestBatchReceiverMatchesSequential is the front-end differential test: lane
// b of BatchReceiver.Process must be bit-identical to Reset + Process on a
// fresh sequential receiver that carries the same per-lane packet history
// (the AGC resync counter is the only state Reset preserves). Covered: batch
// widths 1..16, multiple consecutive packets so resync carry is exercised,
// and the noiseless (DisableNoise) configuration.
func TestBatchReceiverMatchesSequential(t *testing.T) {
	const oversample = 4
	amp := math.Sqrt(1e-8) // ≈ -50 dBm envelope, inside the AGC window

	for _, disableNoise := range []bool{false, true} {
		cfg := DefaultReceiverConfig(oversample)
		cfg.DisableNoise = disableNoise
		for _, B := range []int{1, 2, 3, 5, 8, 16} {
			rxBatch, err := NewReceiver(cfg)
			if err != nil {
				t.Fatal(err)
			}
			batch := NewBatchReceiver(rxBatch)

			// One sequential oracle per lane: its AGC resync state evolves
			// per lane exactly as the batch driver's carried state must.
			seq := make([]*Receiver, B)
			for l := range seq {
				if seq[l], err = NewReceiver(cfg); err != nil {
					t.Fatal(err)
				}
			}

			for pkt := 0; pkt < 3; pkt++ {
				n := oversample * (40 + 16*pkt) // vary frame length across packets
				frames := batchFrames(int64(1000*B+pkt), B, n, amp)
				got := batch.Process(cloneFrames(frames))

				for l := 0; l < B; l++ {
					seq[l].Reset()
					want := seq[l].Process(append([]complex128(nil), frames[l]...))
					if len(got[l]) != len(want) {
						t.Fatalf("noise=%v B=%d pkt=%d lane %d: batch len %d != sequential len %d",
							!disableNoise, B, pkt, l, len(got[l]), len(want))
					}
					for i := range want {
						if math.Float64bits(real(got[l][i])) != math.Float64bits(real(want[i])) ||
							math.Float64bits(imag(got[l][i])) != math.Float64bits(imag(want[i])) {
							t.Fatalf("noise=%v B=%d pkt=%d lane %d sample %d: batch %v != sequential %v",
								!disableNoise, B, pkt, l, i, got[l][i], want[i])
						}
					}
				}
			}
		}
	}
}

// TestBatchReceiverEmpty pins the degenerate shapes: an empty batch returns
// nil and panics are reserved for ragged lanes.
func TestBatchReceiverEmpty(t *testing.T) {
	rx, err := NewReceiver(DefaultReceiverConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	b := NewBatchReceiver(rx)
	if out := b.Process(nil); out != nil {
		t.Fatalf("empty batch: got %v, want nil", out)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("ragged batch did not panic")
		}
	}()
	b.Process([][]complex128{make([]complex128, 8), make([]complex128, 6)})
}

// TestBatchReceiverScratchReuse pins that the steady state allocates
// nothing: after the first call sized the lane scratch, repeated batches of
// the same shape must be allocation-free apart from the rand source's
// internals (which are shared with the sequential path).
func TestBatchReceiverScratchReuse(t *testing.T) {
	cfg := DefaultReceiverConfig(2)
	cfg.DisableNoise = true // keep math/rand out of the allocation count
	rx, err := NewReceiver(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b := NewBatchReceiver(rx)
	const B, n = 4, 256
	frames := batchFrames(7, B, n, 1e-4)
	work := cloneFrames(frames)
	b.Process(work)

	allocs := testing.AllocsPerRun(20, func() {
		for l := range work {
			copy(work[l], frames[l])
		}
		b.Process(work)
	})
	if allocs != 0 {
		t.Fatalf("steady-state batch Process allocates %v times per call", allocs)
	}
}
