package rf

import (
	"fmt"
	"math"
	"strings"

	"wlansim/internal/units"
)

// Stage describes one element of an RF line-up for cascade (Friis) analysis.
type Stage struct {
	// Name identifies the stage.
	Name string
	// GainDB is the stage power gain.
	GainDB float64
	// NoiseFigureDB is the stage noise figure.
	NoiseFigureDB float64
	// IIP3DBm is the stage input-referred third-order intercept; use
	// math.Inf(1) for a perfectly linear stage.
	IIP3DBm float64
}

// CascadeResult summarizes the line-up.
type CascadeResult struct {
	// GainDB is the total power gain.
	GainDB float64
	// NoiseFigureDB is the Friis cascade noise figure.
	NoiseFigureDB float64
	// IIP3DBm is the cascade input-referred IP3.
	IIP3DBm float64
}

// Cascade computes total gain, the Friis noise figure and the cascaded IIP3
// of a line-up.
func Cascade(stages []Stage) (CascadeResult, error) {
	if len(stages) == 0 {
		return CascadeResult{}, fmt.Errorf("rf: empty cascade")
	}
	gain := 1.0
	fTotal := 0.0
	invIP3 := 0.0 // 1/IIP3 accumulated in linear watts
	for i, s := range stages {
		g := units.DBToLinear(s.GainDB)
		f := units.DBToLinear(s.NoiseFigureDB)
		if f < 1 {
			return CascadeResult{}, fmt.Errorf("rf: stage %q noise figure below 0 dB", s.Name)
		}
		if i == 0 {
			fTotal = f
		} else {
			fTotal += (f - 1) / gain
		}
		if !math.IsInf(s.IIP3DBm, 1) {
			ip3 := units.DBmToWatts(s.IIP3DBm)
			// Referred to the cascade input: divide by the preceding gain.
			invIP3 += gain / ip3
		}
		gain *= g
	}
	res := CascadeResult{
		GainDB:        units.LinearToDB(gain),
		NoiseFigureDB: units.LinearToDB(fTotal),
	}
	if invIP3 == 0 {
		res.IIP3DBm = math.Inf(1)
	} else {
		res.IIP3DBm = units.WattsToDBm(1 / invIP3)
	}
	return res, nil
}

// SensitivityDBm estimates the receiver sensitivity for the cascade:
// kTB + NF + required SNR, over the given bandwidth.
func (c CascadeResult) SensitivityDBm(bandwidthHz, requiredSNRdB float64) float64 {
	return units.ThermalNoiseDBm(bandwidthHz) + c.NoiseFigureDB + requiredSNRdB
}

// String formats the cascade result.
func (c CascadeResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "gain %.2f dB, NF %.2f dB, IIP3 ", c.GainDB, c.NoiseFigureDB)
	if math.IsInf(c.IIP3DBm, 1) {
		b.WriteString("inf")
	} else {
		fmt.Fprintf(&b, "%.2f dBm", c.IIP3DBm)
	}
	return b.String()
}
