package rf

import (
	"math"
	"math/rand"
	"testing"

	"wlansim/internal/units"
)

func noiseSignal(n int, powerDBm float64, seed int64) []complex128 {
	r := rand.New(rand.NewSource(seed))
	s := units.DBmToAmplitude(powerDBm) / math.Sqrt2
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(r.NormFloat64()*s, r.NormFloat64()*s)
	}
	return x
}

func TestAGCConvergesToTarget(t *testing.T) {
	a, err := NewAGC(AGCConfig{
		TargetDBm: -10, MinGainDB: -40, MaxGainDB: 40, TimeConstantSamples: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	x := noiseSignal(20000, -30, 1)
	out := a.Process(x)
	// After settling, output power near the target. The asymmetric
	// attack/release loop biases a couple of dB low on noise-like signals.
	if got := units.MeanPowerDBm(out[15000:]); math.Abs(got+10) > 3 {
		t.Errorf("settled output %v dBm, want ~-10", got)
	}
	if g := a.GainDB(); math.Abs(g-20) > 3 {
		t.Errorf("AGC gain %v dB, want ~20", g)
	}
}

func TestAGCGainClamped(t *testing.T) {
	a, _ := NewAGC(AGCConfig{
		TargetDBm: 0, MinGainDB: -10, MaxGainDB: 10, TimeConstantSamples: 16,
	})
	// Very weak input: gain rails at max.
	a.Process(noiseSignal(5000, -80, 2))
	if g := a.GainDB(); g != 10 {
		t.Errorf("gain %v, want railed at 10", g)
	}
	a.Reset()
	// Very strong input: gain rails at min.
	a.Process(noiseSignal(5000, 40, 3))
	if g := a.GainDB(); g != -10 {
		t.Errorf("gain %v, want railed at -10", g)
	}
}

func TestAGCFreezeHoldsGain(t *testing.T) {
	a, _ := NewAGC(AGCConfig{
		TargetDBm: -10, MinGainDB: -40, MaxGainDB: 40,
		TimeConstantSamples: 32, InitialGainDB: 5, Freeze: true,
	})
	a.Process(noiseSignal(5000, -60, 4))
	if g := a.GainDB(); g != 5 {
		t.Errorf("frozen gain moved to %v", g)
	}
	a.SetFreeze(false)
	a.Process(noiseSignal(5000, -60, 5))
	if g := a.GainDB(); g == 5 {
		t.Error("unfrozen gain did not adapt")
	}
}

func TestAGCValidation(t *testing.T) {
	if _, err := NewAGC(AGCConfig{MinGainDB: 10, MaxGainDB: -10}); err == nil {
		t.Error("accepted inverted gain bounds")
	}
}

func TestADCQuantizationStep(t *testing.T) {
	a, err := NewADC(ADCConfig{Bits: 8, FullScaleDBm: 0})
	if err != nil {
		t.Fatal(err)
	}
	fsAmp := units.DBmToAmplitude(0)
	step := 2 * fsAmp / 256
	// Two inputs inside the same quantization cell map to the same output.
	y1 := a.ProcessSample(complex(step*10.1, 0))
	y2 := a.ProcessSample(complex(step*10.4, 0))
	if y1 != y2 {
		t.Errorf("same-cell inputs quantized differently: %v vs %v", y1, y2)
	}
	y3 := a.ProcessSample(complex(step*11.2, 0))
	if y1 == y3 {
		t.Error("adjacent cells quantized identically")
	}
}

func TestADCClippingCounter(t *testing.T) {
	a, _ := NewADC(ADCConfig{Bits: 10, FullScaleDBm: -20})
	fsAmp := units.DBmToAmplitude(-20)
	x := []complex128{
		complex(fsAmp*2, 0),       // clips I
		complex(0, -fsAmp*3),      // clips Q
		complex(fsAmp/2, fsAmp/2), // inside
	}
	a.Process(x)
	if got := a.ClippedSamples(); got != 2 {
		t.Errorf("clipped %d, want 2", got)
	}
	a.Reset()
	if a.ClippedSamples() != 0 {
		t.Error("Reset did not clear the clip counter")
	}
	// Clipped samples are bounded by the full scale.
	if math.Abs(real(x[0])) > fsAmp {
		t.Errorf("clipped output %v exceeds full scale", x[0])
	}
}

func TestADCSNRScalesWithBits(t *testing.T) {
	// Quantization SNR improves ~6 dB per bit.
	snr := func(bits int) float64 {
		a, _ := NewADC(ADCConfig{Bits: bits, FullScaleDBm: 0})
		in := noiseSignal(50000, -12, 6) // keep clipping rare
		ref := make([]complex128, len(in))
		copy(ref, in)
		a.Process(in)
		var sp, np float64
		for i := range in {
			d := in[i] - ref[i]
			sp += real(ref[i])*real(ref[i]) + imag(ref[i])*imag(ref[i])
			np += real(d)*real(d) + imag(d)*imag(d)
		}
		return units.LinearToDB(sp / np)
	}
	s8 := snr(8)
	s12 := snr(12)
	if d := s12 - s8; math.Abs(d-24) > 3 {
		t.Errorf("SNR delta for 4 extra bits = %v dB, want ~24", d)
	}
}

func TestADCZeroBitsIsClipperOnly(t *testing.T) {
	a, _ := NewADC(ADCConfig{Bits: 0, FullScaleDBm: 0})
	in := complex(0.001, -0.002)
	if got := a.ProcessSample(in); got != in {
		t.Errorf("0-bit ADC altered in-range sample: %v", got)
	}
}

func TestADCValidation(t *testing.T) {
	if _, err := NewADC(ADCConfig{Bits: -1}); err == nil {
		t.Error("accepted negative bits")
	}
	if _, err := NewADC(ADCConfig{Bits: 32}); err == nil {
		t.Error("accepted absurd resolution")
	}
}
