package rf

import (
	"fmt"

	"wlansim/internal/dsp"
)

// ChebyshevLowpass is the baseband channel-select filter of the receiver
// (paper §2.2/§5.1), a type-I Chebyshev low-pass specified in hertz.
type ChebyshevLowpass struct {
	iir *dsp.IIR
	// PassbandEdgeHz is the design passband edge.
	PassbandEdgeHz float64
	// Order is the filter order.
	Order int
	// RippleDB is the passband ripple.
	RippleDB float64
}

// NewChebyshevLowpass designs the filter for the given sample rate.
func NewChebyshevLowpass(order int, passbandEdgeHz, rippleDB, sampleRateHz float64) (*ChebyshevLowpass, error) {
	if sampleRateHz <= 0 {
		return nil, fmt.Errorf("rf: chebyshev lowpass: sample rate %g", sampleRateHz)
	}
	iir, err := dsp.DesignChebyshev1(order, dsp.Lowpass, passbandEdgeHz/sampleRateHz, rippleDB)
	if err != nil {
		return nil, err
	}
	return &ChebyshevLowpass{
		iir:            iir,
		PassbandEdgeHz: passbandEdgeHz,
		Order:          order,
		RippleDB:       rippleDB,
	}, nil
}

// Process filters a frame in place and returns it.
func (f *ChebyshevLowpass) Process(x []complex128) []complex128 { return f.iir.Process(x) }

// ProcessPlanar filters a frame held as split re/im planes in place, over the
// same streaming state as Process (see dsp.IIR.ProcessPlanar).
func (f *ChebyshevLowpass) ProcessPlanar(xr, xi []float64) { f.iir.ProcessPlanar(xr, xi) }

// Reset clears the filter state.
func (f *ChebyshevLowpass) Reset() { f.iir.Reset() }

// MagnitudeDB evaluates the response at freqHz for the given sample rate.
func (f *ChebyshevLowpass) MagnitudeDB(freqHz, sampleRateHz float64) float64 {
	return f.iir.MagnitudeDB(freqHz / sampleRateHz)
}

// DCBlock is the inter-stage high-pass filter that removes the self-mixing
// DC offset and 1/f noise between the two mixer stages (paper §2.2).
type DCBlock struct {
	iir *dsp.IIR
	// CornerHz is the -3 dB corner frequency.
	CornerHz float64
}

// NewDCBlock designs the high-pass for the given corner and sample rate.
func NewDCBlock(cornerHz, sampleRateHz float64) (*DCBlock, error) {
	if sampleRateHz <= 0 {
		return nil, fmt.Errorf("rf: dc block: sample rate %g", sampleRateHz)
	}
	iir, err := dsp.DesignDCBlock(cornerHz / sampleRateHz)
	if err != nil {
		return nil, err
	}
	return &DCBlock{iir: iir, CornerHz: cornerHz}, nil
}

// Process filters a frame in place and returns it.
func (f *DCBlock) Process(x []complex128) []complex128 { return f.iir.Process(x) }

// ProcessPlanar filters a frame held as split re/im planes in place, over the
// same streaming state as Process (see dsp.IIR.ProcessPlanar).
func (f *DCBlock) ProcessPlanar(xr, xi []float64) { f.iir.ProcessPlanar(xr, xi) }

// Reset clears the filter state.
func (f *DCBlock) Reset() { f.iir.Reset() }

// Chain applies a sequence of blocks in order. It implements Block.
type Chain struct {
	blocks []Block
	names  []string
}

// NewChain assembles blocks into a pipeline.
func NewChain() *Chain { return &Chain{} }

// Append adds a named block to the end of the chain and returns the chain.
func (c *Chain) Append(name string, b Block) *Chain {
	c.blocks = append(c.blocks, b)
	c.names = append(c.names, name)
	return c
}

// Names lists the block names in processing order.
func (c *Chain) Names() []string { return append([]string(nil), c.names...) }

// Process runs the frame through every block in order.
func (c *Chain) Process(x []complex128) []complex128 {
	for _, b := range c.blocks {
		x = b.Process(x)
	}
	return x
}

// Reset resets every block.
func (c *Chain) Reset() {
	for _, b := range c.blocks {
		b.Reset()
	}
}
