package rf

import (
	"math"
	"math/cmplx"
	"testing"

	"wlansim/internal/dsp"
	"wlansim/internal/units"
)

func toneAt(n int, nu, ampl float64) []complex128 {
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(ampl, 0) * cmplx.Exp(complex(0, 2*math.Pi*nu*float64(i)))
	}
	return x
}

func binPowerDBm(x []complex128, bin int) float64 {
	fx := dsp.FFT(dsp.Clone(x))
	v := fx[bin] / complex(float64(len(x)), 0)
	return units.WattsToDBm(real(v)*real(v) + imag(v)*imag(v))
}

func TestAmplifierSmallSignalGain(t *testing.T) {
	a, err := NewAmplifier(AmplifierConfig{
		Name: "test", GainDB: 20, Model: Cubic, IIP3DBm: 0,
	})
	if err != nil {
		t.Fatal(err)
	}
	// -40 dBm input, 40 dB below IIP3: negligible compression.
	in := toneAt(1024, 1.0/16, units.DBmToAmplitude(-40))
	out := a.Process(in)
	if got := units.MeanPowerDBm(out); math.Abs(got-(-20)) > 0.01 {
		t.Errorf("output power %v dBm, want -20", got)
	}
}

func TestAmplifierCompressionPoint(t *testing.T) {
	// At the configured 1 dB compression point the gain is down by 1 dB.
	for _, cp := range []float64{-20, -10, 0} {
		a, err := NewAmplifier(AmplifierConfig{
			Name: "cp", GainDB: 15, Model: Cubic,
			UseCompression: true, CompressionDBm: cp,
		})
		if err != nil {
			t.Fatal(err)
		}
		in := toneAt(256, 0.25, units.DBmToAmplitude(cp))
		out := a.Process(in)
		gain := units.MeanPowerDBm(out) - cp
		if math.Abs(gain-14) > 0.02 {
			t.Errorf("CP %v dBm: gain %v dB at compression, want 14", cp, gain)
		}
	}
}

func TestAmplifierIIP3TwoTone(t *testing.T) {
	// Classic two-tone test: IM3 relative power must be 2*(IIP3 - Pin) dB
	// below each fundamental.
	const iip3 = -5.0
	a, err := NewAmplifier(AmplifierConfig{
		Name: "ip3", GainDB: 10, Model: Cubic, IIP3DBm: iip3,
	})
	if err != nil {
		t.Fatal(err)
	}
	n := 4096
	pin := -35.0 // per tone, 30 dB below IIP3
	ampl := units.DBmToAmplitude(pin)
	bin1, bin2 := 512, 640 // f2-f1 = 128 bins; IM3 at 2*f1-f2 = 384, 2*f2-f1 = 768
	x := make([]complex128, n)
	for i := range x {
		ph1 := 2 * math.Pi * float64(bin1*i) / float64(n)
		ph2 := 2 * math.Pi * float64(bin2*i) / float64(n)
		x[i] = complex(ampl, 0) * (cmplx.Exp(complex(0, ph1)) + cmplx.Exp(complex(0, ph2)))
	}
	a.Process(x)
	fund := binPowerDBm(x, bin1)
	im3 := binPowerDBm(x, 384)
	suppression := fund - im3
	want := 2 * (iip3 - pin) // 60 dB
	if math.Abs(suppression-want) > 0.5 {
		t.Errorf("IM3 suppression %v dB, want %v", suppression, want)
	}
}

func TestAmplifierSaturationClamp(t *testing.T) {
	// Far beyond compression the cubic would fold over; the clamp must keep
	// the output envelope at its saturation value.
	a, _ := NewAmplifier(AmplifierConfig{
		Name: "sat", GainDB: 10, Model: Cubic, UseCompression: true, CompressionDBm: -20,
	})
	sat := a.OutputSaturationDBm()
	in := toneAt(64, 0.25, units.DBmToAmplitude(+10)) // 30 dB over CP
	out := a.Process(in)
	got := units.MeanPowerDBm(out)
	if math.Abs(got-sat) > 0.01 {
		t.Errorf("saturated output %v dBm, want clamp at %v", got, sat)
	}
	// Monotonicity: harder drive never yields more power.
	a.Reset()
	prev := math.Inf(-1)
	for pin := -40.0; pin <= 10; pin += 2 {
		out := a.Process(toneAt(64, 0.25, units.DBmToAmplitude(pin)))
		p := units.MeanPowerDBm(out)
		if p < prev-1e-9 {
			t.Fatalf("output power fell from %v to %v dBm at Pin %v", prev, p, pin)
		}
		prev = p
	}
}

func TestAmplifierRappModel(t *testing.T) {
	a, err := NewAmplifier(AmplifierConfig{
		Name: "rapp", GainDB: 12, Model: Rapp, UseCompression: true, CompressionDBm: -15,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Gain down 1 dB at the compression point.
	out := a.Process(toneAt(128, 0.25, units.DBmToAmplitude(-15)))
	gain := units.MeanPowerDBm(out) - (-15)
	if math.Abs(gain-11) > 0.05 {
		t.Errorf("Rapp gain at CP %v dB, want 11", gain)
	}
	// Small-signal gain intact.
	a.Reset()
	out = a.Process(toneAt(128, 0.25, units.DBmToAmplitude(-60)))
	gain = units.MeanPowerDBm(out) - (-60)
	if math.Abs(gain-12) > 0.05 {
		t.Errorf("Rapp small-signal gain %v dB, want 12", gain)
	}
	// Hard saturation: output approaches Asat from below.
	out = a.Process(toneAt(128, 0.25, units.DBmToAmplitude(20)))
	if got, sat := units.MeanPowerDBm(out), a.OutputSaturationDBm(); got > sat {
		t.Errorf("Rapp output %v dBm above saturation %v", got, sat)
	}
}

func TestAmplifierNoiseFigure(t *testing.T) {
	// A noiseless input through a NF=6 dB amplifier over fs=20 MHz picks up
	// kTB*(F-1) input-referred noise.
	fs := 20e6
	a, err := NewAmplifier(AmplifierConfig{
		Name: "nf", GainDB: 20, NoiseFigureDB: 6, Model: Linear,
		SampleRateHz: fs, NoiseSeed: 42,
	})
	if err != nil {
		t.Fatal(err)
	}
	in := make([]complex128, 200000)
	out := a.Process(in)
	got := units.MeanPowerDBm(out)
	f := units.DBToLinear(6.0)
	want := units.WattsToDBm(units.Boltzmann*units.RoomTemperature*fs*(f-1)) + 20
	if math.Abs(got-want) > 0.2 {
		t.Errorf("output noise %v dBm, want %v", got, want)
	}
}

func TestAmplifierDisableNoise(t *testing.T) {
	a, err := NewAmplifier(AmplifierConfig{
		Name: "nonoise", GainDB: 20, NoiseFigureDB: 6, Model: Linear,
		SampleRateHz: 20e6, DisableNoise: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	out := a.Process(make([]complex128, 100))
	if units.MeanPower(out) != 0 {
		t.Error("disabled noise source still produced noise")
	}
}

func TestAmplifierNoiseDeterministicAfterReset(t *testing.T) {
	cfg := AmplifierConfig{
		Name: "det", GainDB: 0, NoiseFigureDB: 10, Model: Linear,
		SampleRateHz: 20e6, NoiseSeed: 7,
	}
	a, _ := NewAmplifier(cfg)
	x1 := a.Process(make([]complex128, 16))
	first := dsp.Clone(x1)
	a.Reset()
	x2 := a.Process(make([]complex128, 16))
	for i := range first {
		if first[i] != x2[i] {
			t.Fatal("noise not reproducible after Reset")
		}
	}
}

func TestAmplifierAMPM(t *testing.T) {
	a, err := NewAmplifier(AmplifierConfig{
		Name: "ampm", GainDB: 10, Model: Cubic,
		UseCompression: true, CompressionDBm: -20, AMPMDegPerDB: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Small signal: negligible phase shift.
	small := a.ProcessSample(complex(units.DBmToAmplitude(-60), 0))
	if ph := cmplx.Phase(small); math.Abs(ph) > 0.01 {
		t.Errorf("small-signal phase %v rad", ph)
	}
	// At the compression point the output lags by ~5 degrees per dB of
	// compression (1 dB) = 5 degrees.
	big := a.ProcessSample(complex(units.DBmToAmplitude(-20), 0))
	if ph := cmplx.Phase(big) * 180 / math.Pi; math.Abs(ph-5) > 0.5 {
		t.Errorf("AM/PM phase %v deg, want ~5", ph)
	}
}

func TestAmplifierValidation(t *testing.T) {
	if _, err := NewAmplifier(AmplifierConfig{NoiseFigureDB: 3}); err == nil {
		t.Error("accepted noise figure without sample rate")
	}
	if _, err := NewAmplifier(AmplifierConfig{NoiseFigureDB: -1}); err == nil {
		t.Error("accepted negative noise figure")
	}
	if _, err := NewAmplifier(AmplifierConfig{Model: Rapp}); err == nil {
		t.Error("accepted Rapp without compression point")
	}
	if _, err := NewAmplifier(AmplifierConfig{Model: NonlinearModel(9)}); err == nil {
		t.Error("accepted unknown model")
	}
}

func TestP1dBIIP3Relation(t *testing.T) {
	if got := P1dBFromIIP3(0); math.Abs(got+9.6357) > 1e-9 {
		t.Errorf("P1dB(0 dBm IIP3) = %v", got)
	}
	if got := IIP3FromP1dB(P1dBFromIIP3(-7)); math.Abs(got+7) > 1e-12 {
		t.Errorf("round trip %v", got)
	}
}
