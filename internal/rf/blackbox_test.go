package rf

import (
	"math"
	"math/cmplx"
	"math/rand"
	"sync"
	"testing"
	"time"

	"wlansim/internal/analog"
	"wlansim/internal/dsp"
	"wlansim/internal/units"
)

// deterministicAnalogFE builds the detailed continuous-time receiver with
// all stochastic elements disabled, as required for K-model extraction.
func deterministicAnalogFE(t *testing.T) *analog.FrontEnd {
	t.Helper()
	cfg := analog.DefaultFrontEndConfig()
	cfg.EnableNoise = false
	cfg.LOLinewidthHz = 0
	cfg.SolverOversample = 16 // cheaper extraction; accuracy is unaffected
	fe, err := analog.NewFrontEnd(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return fe
}

var (
	cachedKModel    *KModel
	cachedKModelErr error
	kmodelOnce      sync.Once
)

// extractTestKModel performs the (expensive) extraction once per test run.
func extractTestKModel(t *testing.T) *KModel {
	t.Helper()
	kmodelOnce.Do(func() {
		cfg := DefaultKModelConfig()
		cfg.FilterTaps = 64
		cfg.SettleSamples = 1024
		cfg.MeasureSamples = 1024
		cfg.SweepStepDB = 4
		cachedKModel, cachedKModelErr = ExtractKModel(deterministicAnalogFE(t), cfg)
	})
	if cachedKModelErr != nil {
		t.Fatal(cachedKModelErr)
	}
	return cachedKModel
}

func TestKModelExtractionValidation(t *testing.T) {
	fe := deterministicAnalogFE(t)
	cfg := DefaultKModelConfig()
	cfg.SampleRateHz = 0
	if _, err := ExtractKModel(fe, cfg); err == nil {
		t.Error("accepted zero sample rate")
	}
	cfg = DefaultKModelConfig()
	cfg.FilterTaps = 37
	if _, err := ExtractKModel(fe, cfg); err == nil {
		t.Error("accepted non-power-of-two taps")
	}
	cfg = DefaultKModelConfig()
	cfg.SweepFromDBm = -10
	cfg.SweepToDBm = -40
	if _, err := ExtractKModel(fe, cfg); err == nil {
		t.Error("accepted inverted sweep bounds")
	}
}

func TestKModelCapturesSmallSignalGain(t *testing.T) {
	km := extractTestKModel(t)
	// The analog line-up's nominal small-signal gain is 18 + 15 = 33 dB.
	if math.Abs(km.SmallSignalGainDB-33) > 1 {
		t.Errorf("extracted gain %v dB, want ~33", km.SmallSignalGainDB)
	}
	// The fitted linear response is flat in band and rolls off past the
	// 9.5 MHz channel edge.
	mid := km.ResponseDB(1e6, 20e6)
	edge := km.ResponseDB(9.8e6, 20e6)
	if math.Abs(mid-33) > 1.5 {
		t.Errorf("in-band fitted response %v dB", mid)
	}
	if mid-edge < 1 {
		t.Errorf("no roll-off at the channel edge: mid %v, edge %v", mid, edge)
	}
}

func TestKModelMatchesDetailedModelOnOFDM(t *testing.T) {
	km := extractTestKModel(t)
	fe := deterministicAnalogFE(t)

	// An OFDM-like multitone test signal at a linear drive level.
	rng := rand.New(rand.NewSource(60))
	n := 4096
	x := make([]complex128, n)
	for c := -20; c <= 20; c += 2 {
		if c == 0 {
			continue
		}
		ph := 2 * math.Pi * rng.Float64()
		for i := range x {
			x[i] += cmplx.Exp(complex(0, 2*math.Pi*float64(c)/64*float64(i)+ph))
		}
	}
	units.SetPowerDBm(x, -60)

	fe.Reset()
	detailed := fe.Process(dsp.Clone(x))
	km.Reset()
	black := km.Process(dsp.Clone(x))

	// Compare steady-state regions. The two models have different group
	// delays; align by peak cross-correlation over a +-16 sample window.
	bestLag, bestMag := 0, 0.0
	for lag := -16; lag <= 16; lag++ {
		var acc complex128
		for i := 1000; i < 3000; i++ {
			j := i + lag
			if j < 0 || j >= len(black) {
				continue
			}
			acc += detailed[i] * cmplx.Conj(black[j])
		}
		if m := cmplx.Abs(acc); m > bestMag {
			bestMag, bestLag = m, lag
		}
	}
	var errE, sigE float64
	var rot complex128
	// Estimate the residual constant phase between the models first.
	for i := 1000; i < 3000; i++ {
		rot += detailed[i] * cmplx.Conj(black[i+bestLag])
	}
	rot /= complex(cmplx.Abs(rot), 0)
	for i := 1000; i < 3000; i++ {
		d := detailed[i] - rot*black[i+bestLag]
		errE += real(d)*real(d) + imag(d)*imag(d)
		sigE += real(detailed[i])*real(detailed[i]) + imag(detailed[i])*imag(detailed[i])
	}
	nmse := 10 * math.Log10(errE/sigE)
	if nmse > -20 {
		t.Errorf("K-model NMSE %v dB vs detailed model, want < -20 dB", nmse)
	}
}

func TestKModelCapturesCompression(t *testing.T) {
	km := extractTestKModel(t)
	// Drive at the LNA compression point (-10 dBm): the black box's
	// midband gain must be ~1 dB below small-signal, like the device.
	n := 2048
	gainAt := func(pin float64) float64 {
		km.Reset()
		in := make([]complex128, n)
		a := units.DBmToAmplitude(pin)
		osc := dsp.NewOscillator(0.05, 0)
		for i := range in {
			in[i] = complex(a, 0) * osc.Next()
		}
		out := km.Process(in)
		return units.MeanPowerDBm(out[n/2:]) - pin
	}
	g0 := gainAt(-70)
	gcp := gainAt(-10)
	if d := g0 - gcp; d < 0.6 || d > 1.6 {
		t.Errorf("compression at -10 dBm = %v dB, want ~1", d)
	}
}

func TestKModelMuchFasterThanDetailed(t *testing.T) {
	km := extractTestKModel(t)
	fe := deterministicAnalogFE(t)
	x := make([]complex128, 20000)
	for i := range x {
		x[i] = complex(1e-4, -1e-4)
	}
	t0 := time.Now()
	fe.Process(dsp.Clone(x))
	detailed := time.Since(t0)
	t0 = time.Now()
	km.Process(dsp.Clone(x))
	blackBox := time.Since(t0)
	if blackBox*5 > detailed {
		t.Errorf("K-model (%v) not much faster than detailed model (%v)", blackBox, detailed)
	}
}
