package rf

import (
	"fmt"
	"math"

	"wlansim/internal/dsp"
	"wlansim/internal/kernels"
)

// FrequencyPlan documents the double-conversion architecture of the paper
// (§2.2): the 5.2 GHz RF input is converted twice with the same 2.6 GHz LO;
// the first IF is half the RF frequency and the image falls around 0 Hz
// where no signal is present.
type FrequencyPlan struct {
	RFHz     float64
	LOHz     float64
	FirstIFz float64
}

// DefaultFrequencyPlan returns the paper's 5.2 GHz plan.
func DefaultFrequencyPlan() FrequencyPlan {
	return FrequencyPlan{RFHz: 5.2e9, LOHz: 2.6e9, FirstIFz: 2.6e9}
}

// ReceiverConfig parameterizes the complete double-conversion receiver
// model in the equivalent complex baseband.
type ReceiverConfig struct {
	// SampleRateHz is the input (composite) sample rate; the output is
	// decimated to SampleRateHz / Oversample... see OutputRateHz.
	SampleRateHz float64
	// Oversample is the input oversampling factor relative to the 20 MHz
	// output rate (1 when no interferers are present).
	Oversample int

	// LNA is the low-noise amplifier stage.
	LNA AmplifierConfig
	// Mixer1 is the first down-conversion stage (RF -> RF/2).
	Mixer1 MixerConfig
	// DCBlockCornerHz is the inter-stage high-pass corner; 0 disables it.
	DCBlockCornerHz float64
	// Mixer2 is the second down-conversion stage (RF/2 -> baseband).
	Mixer2 MixerConfig

	// ChannelFilterOrder, ChannelFilterEdgeHz and ChannelFilterRippleDB
	// configure the Chebyshev channel-select low-pass (paper Fig. 5 sweeps
	// the edge frequency).
	ChannelFilterOrder    int
	ChannelFilterEdgeHz   float64
	ChannelFilterRippleDB float64

	// AGC is the baseband output amplifier loop.
	AGC AGCConfig
	// ADC quantizes the output.
	ADC ADCConfig

	// DisableNoise switches off every internal noise source (the AMS
	// co-simulation limitation of §4.3).
	DisableNoise bool
}

// DefaultReceiverConfig returns a line-up tuned for wanted input levels
// around -88..-23 dBm (paper §2.2) at the given oversampling factor.
func DefaultReceiverConfig(oversample int) ReceiverConfig {
	fs := 20e6 * float64(oversample)
	return ReceiverConfig{
		SampleRateHz: fs,
		Oversample:   oversample,
		LNA: AmplifierConfig{
			Name: "LNA1", GainDB: 18, NoiseFigureDB: 2.5,
			Model: Cubic, UseCompression: true, CompressionDBm: -10,
			SampleRateHz: fs, NoiseSeed: 101,
		},
		Mixer1: MixerConfig{
			Name: "MIX1", ConversionGainDB: 9, NoiseFigureDB: 9,
			LO:           &LOConfig{LinewidthHz: 50, Seed: 102},
			SampleRateHz: fs, NoiseSeed: 103,
		},
		DCBlockCornerHz: 150e3,
		Mixer2: MixerConfig{
			Name: "MIX2", ConversionGainDB: 6, NoiseFigureDB: 12,
			IQGainImbalanceDB: 0.2, IQPhaseErrorDeg: 1.0,
			EnableDC: true, DCOffsetDBm: -45,
			LO:           &LOConfig{LinewidthHz: 50, Seed: 104},
			SampleRateHz: fs, NoiseSeed: 105,
		},
		ChannelFilterOrder:    5,
		ChannelFilterEdgeHz:   9.5e6,
		ChannelFilterRippleDB: 0.5,
		AGC: AGCConfig{
			TargetDBm: -10, MinGainDB: -40, MaxGainDB: 40,
			TimeConstantSamples: 96 * float64(oversample), InitialGainDB: 0,
		},
		ADC: ADCConfig{Bits: 10, FullScaleDBm: 0},
	}
}

// Receiver is the assembled double-conversion RF front end. Feed it the
// composite (possibly oversampled) antenna signal; it returns the complex
// baseband at the 20 MHz output rate, including every configured analog
// impairment.
type Receiver struct {
	cfg     ReceiverConfig
	lna     *Amplifier
	mixer1  *Mixer
	dcBlock *DCBlock
	mixer2  *Mixer
	chanSel *ChebyshevLowpass
	agc     *AGC
	adc     *ADC
	decim   *dsp.Downsampler
	out     []complex128 // decimator output, reused across packets
	xv      kernels.Vec  // planar scratch for the fused mixer/filter segment
}

// NewReceiver validates the configuration and assembles the front end.
func NewReceiver(cfg ReceiverConfig) (*Receiver, error) {
	if cfg.Oversample < 1 {
		return nil, fmt.Errorf("rf: receiver oversample %d < 1", cfg.Oversample)
	}
	if cfg.SampleRateHz <= 0 {
		return nil, fmt.Errorf("rf: receiver sample rate %g", cfg.SampleRateHz)
	}
	if cfg.DisableNoise {
		cfg.LNA.DisableNoise = true
		cfg.Mixer1.DisableNoise = true
		cfg.Mixer2.DisableNoise = true
	}
	r := &Receiver{cfg: cfg}
	var err error
	if r.lna, err = NewAmplifier(cfg.LNA); err != nil {
		return nil, err
	}
	if r.mixer1, err = NewMixer(cfg.Mixer1); err != nil {
		return nil, err
	}
	if cfg.DCBlockCornerHz > 0 {
		if r.dcBlock, err = NewDCBlock(cfg.DCBlockCornerHz, cfg.SampleRateHz); err != nil {
			return nil, err
		}
	}
	if r.mixer2, err = NewMixer(cfg.Mixer2); err != nil {
		return nil, err
	}
	if cfg.ChannelFilterOrder > 0 {
		r.chanSel, err = NewChebyshevLowpass(cfg.ChannelFilterOrder,
			cfg.ChannelFilterEdgeHz, cfg.ChannelFilterRippleDB, cfg.SampleRateHz)
		if err != nil {
			return nil, err
		}
	}
	if r.agc, err = NewAGC(cfg.AGC); err != nil {
		return nil, err
	}
	if r.adc, err = NewADC(cfg.ADC); err != nil {
		return nil, err
	}
	// The ADC samples at 20 MHz: decimation with NO extra anti-alias
	// filter — channel selection is the analog Chebyshev filter's job, so
	// an underdimensioned filter lets adjacent-channel energy alias into
	// the band (the failure mode swept in Fig. 5).
	if r.decim, err = dsp.NewDownsampler(cfg.Oversample, 0, false); err != nil {
		return nil, err
	}
	return r, nil
}

// Config returns the receiver configuration.
func (r *Receiver) Config() ReceiverConfig { return r.cfg }

// OutputRateHz returns the ADC output sample rate.
func (r *Receiver) OutputRateHz() float64 {
	return r.cfg.SampleRateHz / float64(r.cfg.Oversample)
}

// ADCClippedSamples reports ADC clipping events since the last Reset.
func (r *Receiver) ADCClippedSamples() int { return r.adc.ClippedSamples() }

// AGCGainDB reports the current AGC gain.
func (r *Receiver) AGCGainDB() float64 { return r.agc.GainDB() }

// Cascade returns the small-signal Friis analysis of the line-up.
func (r *Receiver) Cascade() (CascadeResult, error) {
	lnaIP3 := math.Inf(1)
	if r.cfg.LNA.Model != Linear {
		if r.cfg.LNA.UseCompression {
			lnaIP3 = IIP3FromP1dB(r.cfg.LNA.CompressionDBm)
		} else {
			lnaIP3 = r.cfg.LNA.IIP3DBm
		}
	}
	return Cascade([]Stage{
		{Name: r.cfg.LNA.Name, GainDB: r.cfg.LNA.GainDB, NoiseFigureDB: r.cfg.LNA.NoiseFigureDB, IIP3DBm: lnaIP3},
		{Name: r.cfg.Mixer1.Name, GainDB: r.cfg.Mixer1.ConversionGainDB, NoiseFigureDB: r.cfg.Mixer1.NoiseFigureDB, IIP3DBm: math.Inf(1)},
		{Name: r.cfg.Mixer2.Name, GainDB: r.cfg.Mixer2.ConversionGainDB, NoiseFigureDB: r.cfg.Mixer2.NoiseFigureDB, IIP3DBm: math.Inf(1)},
	})
}

// Process runs the antenna frame through the complete front end and returns
// the 20 MHz baseband output. The input slice is modified in place up to the
// decimation stage, and the returned slice is owned by the receiver (reused
// by the next Process call).
//
// Process is exactly ProcessToFilter followed by ProcessFromFilter: every
// block consumes the whole frame before the next one runs, so the chain can
// be split at any block boundary without changing a single output sample.
func (r *Receiver) Process(x []complex128) []complex128 {
	return r.ProcessFromFilter(r.ProcessToFilter(x))
}

// ProcessToFilter runs the line-up strictly upstream of the channel-select
// filter — LNA, first mixer, inter-stage DC block, second mixer — in place
// and returns x. Sweep harnesses whose swept parameter only affects the
// channel filter or later blocks (e.g. the Fig. 5 passband-edge sweep) cache
// this invariant, deterministic prefix per packet and replay only
// ProcessFromFilter per sweep point. Call Reset first, as with Process.
// The mixer/filter segment runs planar end to end: one deinterleave in, one
// interleave out, with the noise adds, LO mixing and DC-block biquads all
// working the same planes. The conversions are pure data movement and every
// planar block is the bit-exact twin of its interleaved form, so the fused
// segment produces the byte-identical waveform of the block-by-block chain.
func (r *Receiver) ProcessToFilter(x []complex128) []complex128 {
	x = r.lna.Process(x)
	if len(x) == 0 {
		return x
	}
	r.xv.From(x)
	// Both oscillators' trajectories are data-independent; filling them in
	// one interleaved pass overlaps the two serial rotation chains.
	prefillLOPair(r.mixer1, r.mixer2, len(x))
	r.mixer1.processPlanar(r.xv.Re, r.xv.Im)
	if r.dcBlock != nil {
		r.dcBlock.ProcessPlanar(r.xv.Re, r.xv.Im)
	}
	r.mixer2.processPlanar(r.xv.Re, r.xv.Im)
	r.xv.CopyTo(x)
	return x
}

// ProcessFromFilter runs the remainder of the chain — channel-select filter,
// AGC, ADC and decimation — on a waveform produced by ProcessToFilter. The
// returned slice is owned by the receiver (reused by the next call).
func (r *Receiver) ProcessFromFilter(x []complex128) []complex128 {
	if r.chanSel != nil {
		x = r.chanSel.Process(x)
	}
	x = r.agc.Process(x)
	x = r.adc.Process(x)
	r.out = r.decim.ProcessInto(r.out[:0], x)
	return r.out
}

// Reset clears all block states.
func (r *Receiver) Reset() {
	r.lna.Reset()
	r.mixer1.Reset()
	if r.dcBlock != nil {
		r.dcBlock.Reset()
	}
	r.mixer2.Reset()
	if r.chanSel != nil {
		r.chanSel.Reset()
	}
	r.agc.Reset()
	r.adc.Reset()
	r.decim.Reset()
}

// BlockNames lists the processing chain for documentation and probes.
func (r *Receiver) BlockNames() []string {
	names := []string{r.cfg.LNA.Name, r.cfg.Mixer1.Name}
	if r.dcBlock != nil {
		names = append(names, "HPF")
	}
	names = append(names, r.cfg.Mixer2.Name)
	if r.chanSel != nil {
		names = append(names, "CHEB-LPF")
	}
	names = append(names, "AGC", "ADC")
	return names
}

// IdealFrontEnd is the reference "idealized analog part" the paper contrasts
// against: unity gain, perfect channel filtering and decimation, no
// impairments. It implements the same interface as Receiver for drop-in use.
type IdealFrontEnd struct {
	oversample int
	decim      *dsp.Downsampler
	out        []complex128 // decimator output, reused across packets
}

// NewIdealFrontEnd builds a distortion-free front end for the given input
// oversampling factor.
func NewIdealFrontEnd(oversample int) (*IdealFrontEnd, error) {
	if oversample < 1 {
		return nil, fmt.Errorf("rf: ideal front end oversample %d < 1", oversample)
	}
	d, err := dsp.NewDownsampler(oversample, 0, true)
	if err != nil {
		return nil, err
	}
	return &IdealFrontEnd{oversample: oversample, decim: d}, nil
}

// Process decimates the composite signal to 20 MHz with ideal filtering.
// The returned slice is owned by the front end (reused by the next call).
func (f *IdealFrontEnd) Process(x []complex128) []complex128 {
	f.out = f.decim.ProcessInto(f.out[:0], x)
	return f.out
}

// Reset clears the decimator state.
func (f *IdealFrontEnd) Reset() { f.decim.Reset() }

// FrontEnd abstracts the analog receiver models (behavioral baseband, ideal,
// or the analog co-simulation bridge) so measurement harnesses can swap them.
type FrontEnd interface {
	// Process converts the composite antenna signal to 20 MHz baseband.
	Process(x []complex128) []complex128
	// Reset clears streaming state between packets.
	Reset()
}

var (
	_ FrontEnd = (*Receiver)(nil)
	_ FrontEnd = (*IdealFrontEnd)(nil)
)
