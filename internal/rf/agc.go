package rf

import (
	"fmt"
	"math"

	"wlansim/internal/units"
)

// AGCConfig parameterizes the automatic gain controlled baseband amplifier.
type AGCConfig struct {
	// TargetDBm is the desired output power.
	TargetDBm float64
	// MinGainDB and MaxGainDB bound the control range.
	MinGainDB float64
	MaxGainDB float64
	// TimeConstantSamples sets the power-estimator smoothing and loop speed
	// (samples to settle to ~63%).
	TimeConstantSamples float64
	// InitialGainDB is the starting gain.
	InitialGainDB float64
	// Freeze holds the current gain (used after preamble acquisition).
	Freeze bool
}

// AGC is a feedback automatic gain control amplifier with asymmetric
// dynamics: a fast attack pulls the gain down within tens of samples when a
// strong packet arrives (so the short preamble survives), while the release
// toward higher gain is slow, as in practical WLAN front ends. It
// implements Block.
type AGC struct {
	cfg     AGCConfig
	gainDB  float64
	est     float64 // smoothed output power estimate (watts)
	alpha   float64
	attack  float64 // fraction of the (negative) dB error applied per sample
	release float64 // dB per dB of positive error per sample
}

// NewAGC builds the loop.
func NewAGC(cfg AGCConfig) (*AGC, error) {
	if cfg.MinGainDB > cfg.MaxGainDB {
		return nil, fmt.Errorf("rf: AGC gain bounds inverted (%g > %g)", cfg.MinGainDB, cfg.MaxGainDB)
	}
	if cfg.TimeConstantSamples <= 0 {
		cfg.TimeConstantSamples = 64
	}
	a := &AGC{
		cfg:     cfg,
		gainDB:  clamp(cfg.InitialGainDB, cfg.MinGainDB, cfg.MaxGainDB),
		alpha:   4 / cfg.TimeConstantSamples,
		attack:  0.2,
		release: 0.1 / cfg.TimeConstantSamples,
	}
	if a.alpha > 0.5 {
		a.alpha = 0.5
	}
	a.est = units.DBmToWatts(cfg.TargetDBm)
	return a, nil
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// GainDB returns the current loop gain.
func (a *AGC) GainDB() float64 { return a.gainDB }

// SetFreeze holds (true) or releases (false) the gain.
func (a *AGC) SetFreeze(f bool) { a.cfg.Freeze = f }

// Reset restores the initial gain and estimator.
func (a *AGC) Reset() {
	a.gainDB = clamp(a.cfg.InitialGainDB, a.cfg.MinGainDB, a.cfg.MaxGainDB)
	a.est = units.DBmToWatts(a.cfg.TargetDBm)
}

// ProcessSample amplifies one sample and updates the loop.
func (a *AGC) ProcessSample(x complex128) complex128 {
	g := units.DBToVoltageGain(a.gainDB)
	y := x * complex(g, 0)
	if !a.cfg.Freeze {
		p := real(y)*real(y) + imag(y)*imag(y)
		a.est += a.alpha * (p - a.est)
		if a.est > 0 {
			errDB := a.cfg.TargetDBm - units.WattsToDBm(a.est)
			var step float64
			if errDB < 0 {
				// Output too hot: fast attack, bounded slew.
				step = a.attack * errDB
				if step < -1.5 {
					step = -1.5
				}
			} else {
				// Output too quiet: creep up slowly. The release slew is
				// capped far below the attack so idle-channel gain ramps
				// stay gentle (a fast release would turn the residual DC
				// offset into a correlated ramp that confuses packet
				// detection downstream).
				step = a.release * errDB
				if step > 0.01 {
					step = 0.01
				}
			}
			a.gainDB = clamp(a.gainDB+step, a.cfg.MinGainDB, a.cfg.MaxGainDB)
		}
	}
	return y
}

// Process amplifies a frame in place and returns it.
func (a *AGC) Process(x []complex128) []complex128 {
	for i, v := range x {
		x[i] = a.ProcessSample(v)
	}
	return x
}

// ADCConfig parameterizes the analog-to-digital converter model.
type ADCConfig struct {
	// Bits is the resolution per I/Q dimension (0 disables quantization).
	Bits int
	// FullScaleDBm is the clipping level: a complex sample whose I or Q
	// magnitude exceeds the full-scale amplitude sqrt(P_fs) clips.
	FullScaleDBm float64
}

// ADC quantizes and clips the baseband signal. It implements Block.
type ADC struct {
	cfg  ADCConfig
	fs   float64 // full-scale amplitude per dimension
	step float64
	clip int // clipped sample count
}

// NewADC builds the converter model.
func NewADC(cfg ADCConfig) (*ADC, error) {
	if cfg.Bits < 0 || cfg.Bits > 24 {
		return nil, fmt.Errorf("rf: ADC resolution %d bits out of range", cfg.Bits)
	}
	a := &ADC{cfg: cfg, fs: units.DBmToAmplitude(cfg.FullScaleDBm)}
	if cfg.Bits > 0 {
		a.step = 2 * a.fs / float64(int(1)<<cfg.Bits)
	}
	return a, nil
}

// ClippedSamples returns how many samples clipped since the last Reset.
func (a *ADC) ClippedSamples() int { return a.clip }

// Reset clears the clip counter.
func (a *ADC) Reset() { a.clip = 0 }

func (a *ADC) quantize(v float64) (float64, bool) {
	clipped := false
	if v > a.fs {
		v, clipped = a.fs, true
	} else if v < -a.fs {
		v, clipped = -a.fs, true
	}
	if a.step > 0 {
		v = (math.Floor(v/a.step) + 0.5) * a.step
		// Mid-rise quantizer: keep the reconstruction inside full scale.
		if v > a.fs {
			v = a.fs - a.step/2
		}
		if v < -a.fs {
			v = -a.fs + a.step/2
		}
	}
	return v, clipped
}

// ProcessSample converts one sample.
func (a *ADC) ProcessSample(x complex128) complex128 {
	i, ci := a.quantize(real(x))
	q, cq := a.quantize(imag(x))
	if ci || cq {
		a.clip++
	}
	return complex(i, q)
}

// Process converts a frame in place and returns it.
func (a *ADC) Process(x []complex128) []complex128 {
	for i, v := range x {
		x[i] = a.ProcessSample(v)
	}
	return x
}
