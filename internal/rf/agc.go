package rf

import (
	"fmt"
	"math"

	"wlansim/internal/units"
)

// AGCConfig parameterizes the automatic gain controlled baseband amplifier.
type AGCConfig struct {
	// TargetDBm is the desired output power.
	TargetDBm float64
	// MinGainDB and MaxGainDB bound the control range.
	MinGainDB float64
	MaxGainDB float64
	// TimeConstantSamples sets the power-estimator smoothing and loop speed
	// (samples to settle to ~63%).
	TimeConstantSamples float64
	// InitialGainDB is the starting gain.
	InitialGainDB float64
	// Freeze holds the current gain (used after preamble acquisition).
	Freeze bool
}

// AGC is a feedback automatic gain control amplifier with asymmetric
// dynamics: a fast attack pulls the gain down within tens of samples when a
// strong packet arrives (so the short preamble survives), while the release
// toward higher gain is slow, as in practical WLAN front ends. It
// implements Block.
type AGC struct {
	cfg     AGCConfig
	gainDB  float64
	est     float64 // smoothed output power estimate (watts)
	alpha   float64
	attack  float64 // fraction of the (negative) dB error applied per sample
	release float64 // dB per dB of positive error per sample

	// Hot-loop derivatives of the state above, maintained so ProcessSample
	// avoids a Pow per sample (gain) and a Log10 per sample while either
	// slew clamp is active.
	gainLin   float64 // DBToVoltageGain(gainDB), tracked incrementally
	invTarget float64 // 1 / target power in watts
	uAttack   float64 // est/target ratio beyond which the attack slew clamps
	uRelease  float64 // est/target ratio below which the release slew clamps
	resync    int     // incremental gain updates since the last exact one
}

// NewAGC builds the loop.
func NewAGC(cfg AGCConfig) (*AGC, error) {
	if cfg.MinGainDB > cfg.MaxGainDB {
		return nil, fmt.Errorf("rf: AGC gain bounds inverted (%g > %g)", cfg.MinGainDB, cfg.MaxGainDB)
	}
	if cfg.TimeConstantSamples <= 0 {
		cfg.TimeConstantSamples = 64
	}
	a := &AGC{
		cfg:     cfg,
		gainDB:  clamp(cfg.InitialGainDB, cfg.MinGainDB, cfg.MaxGainDB),
		alpha:   4 / cfg.TimeConstantSamples,
		attack:  0.2,
		release: 0.1 / cfg.TimeConstantSamples,
	}
	if a.alpha > 0.5 {
		a.alpha = 0.5
	}
	a.est = units.DBmToWatts(cfg.TargetDBm)
	a.gainLin = units.DBToVoltageGain(a.gainDB)
	a.invTarget = 1 / units.DBmToWatts(cfg.TargetDBm)
	// The slew clamps kick in at fixed error magnitudes; precompute the
	// equivalent est/target power ratios so the clamped regimes need no
	// logarithm: attack clamps at errDB <= -attackClampDB/attack, release at
	// errDB >= releaseClampDB/release.
	a.uAttack = math.Pow(10, attackClampDB/(10*a.attack))
	a.uRelease = math.Pow(10, -releaseClampDB/(10*a.release))
	return a, nil
}

// attackClampDB and releaseClampDB bound the per-sample gain slew in dB.
const (
	attackClampDB  = 1.5
	releaseClampDB = 0.01
)

// lnTenOver20 converts a dB step to a natural-log voltage-gain exponent:
// 10^(dB/20) = e^(dB*lnTenOver20).
const lnTenOver20 = math.Ln10 / 20

// tenOverLn10 converts a natural log of a power ratio to dB.
const tenOverLn10 = 10 / math.Ln10

// agcResyncInterval is how many incremental linear-gain updates the loop
// applies before recomputing the gain exactly from its dB value, bounding
// series-truncation drift.
const agcResyncInterval = 256

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// GainDB returns the current loop gain.
func (a *AGC) GainDB() float64 { return a.gainDB }

// SetFreeze holds (true) or releases (false) the gain.
func (a *AGC) SetFreeze(f bool) { a.cfg.Freeze = f }

// Reset restores the initial gain and estimator.
func (a *AGC) Reset() {
	a.gainDB = clamp(a.cfg.InitialGainDB, a.cfg.MinGainDB, a.cfg.MaxGainDB)
	a.gainLin = units.DBToVoltageGain(a.gainDB)
	a.est = units.DBmToWatts(a.cfg.TargetDBm)
}

// ProcessSample amplifies one sample and updates the loop.
//
// The loop logic is the classical dB-domain control law, but the hot path
// works from cached derivatives: the linear gain is recomputed only when the
// gain actually moves, and the error logarithm is skipped entirely while a
// slew clamp is active (the step is then the clamp constant regardless of
// the error magnitude, tested against the precomputed power ratios).
func (a *AGC) ProcessSample(x complex128) complex128 {
	y := complex(a.gainLin*real(x), a.gainLin*imag(x))
	if !a.cfg.Freeze {
		p := real(y)*real(y) + imag(y)*imag(y)
		a.est += a.alpha * (p - a.est)
		if a.est > 0 {
			u := a.est * a.invTarget // output power as a ratio of the target
			var step float64
			switch {
			case u >= a.uAttack:
				// Output far too hot: the attack slew bound applies.
				step = -attackClampDB
			case u <= a.uRelease:
				// Output far too quiet: creep up at the release slew cap.
				// The cap sits far below the attack so idle-channel gain
				// ramps stay gentle (a fast release would turn the residual
				// DC offset into a correlated ramp that confuses packet
				// detection downstream).
				step = releaseClampDB
			default:
				// Unclamped regime: the step needs the actual error
				// magnitude. Near lock (u close to 1, where the loop spends
				// most samples) the direct series applies; further out the
				// range-reduced series takes over — either way, no library
				// logarithm in the loop.
				var errDB float64
				if u > 0.5 && u < 2 {
					errDB = -tenOverLn10 * lnNear1(u)
				} else {
					errDB = -tenOverLn10 * lnWide(u)
				}
				if errDB < 0 {
					step = a.attack * errDB
				} else {
					step = a.release * errDB
				}
			}
			g := clamp(a.gainDB+step, a.cfg.MinGainDB, a.cfg.MaxGainDB)
			//lint:ignore floateq exact no-movement check: skips the gain update only when the clamp returned the identical value, any tolerance would freeze small steps
			if g != a.gainDB {
				d := g - a.gainDB
				a.gainDB = g
				a.resync++
				if a.resync >= agcResyncInterval || d > 2 || d < -2 {
					a.gainLin = units.DBToVoltageGain(g)
					a.resync = 0
				} else {
					a.gainLin *= expSmall(d * lnTenOver20)
				}
			}
		}
	}
	return y
}

// Process amplifies a frame in place and returns it. The loop body performs
// exactly the arithmetic of ProcessSample, but keeps the loop state (gain,
// power estimate, resync counter) in locals across the frame — the AGC runs
// at the composite oversampled rate, making this the receiver's longest
// per-sample loop.
func (a *AGC) Process(x []complex128) []complex128 {
	if a.cfg.Freeze {
		g := a.gainLin
		for i, v := range x {
			x[i] = complex(g*real(v), g*imag(v))
		}
		return x
	}
	var (
		gainLin = a.gainLin
		gainDB  = a.gainDB
		est     = a.est
		resync  = a.resync
		alpha   = a.alpha
		invT    = a.invTarget
		uAtt    = a.uAttack
		uRel    = a.uRelease
		attack  = a.attack
		release = a.release
		minG    = a.cfg.MinGainDB
		maxG    = a.cfg.MaxGainDB
	)
	for i, v := range x {
		yr := gainLin * real(v)
		yi := gainLin * imag(v)
		x[i] = complex(yr, yi)
		p := yr*yr + yi*yi
		est += alpha * (p - est)
		if est > 0 {
			u := est * invT
			var step float64
			switch {
			case u >= uAtt:
				step = -attackClampDB
			case u <= uRel:
				step = releaseClampDB
			default:
				var errDB float64
				if u > 0.5 && u < 2 {
					errDB = -tenOverLn10 * lnNear1(u)
				} else {
					errDB = -tenOverLn10 * lnWide(u)
				}
				if errDB < 0 {
					step = attack * errDB
				} else {
					step = release * errDB
				}
			}
			g := clamp(gainDB+step, minG, maxG)
			//lint:ignore floateq exact no-movement check: skips the gain update only when the clamp returned the identical value, any tolerance would freeze small steps
			if g != gainDB {
				d := g - gainDB
				gainDB = g
				resync++
				if resync >= agcResyncInterval || d > 2 || d < -2 {
					gainLin = units.DBToVoltageGain(g)
					resync = 0
				} else {
					gainLin *= expSmall(d * lnTenOver20)
				}
			}
		}
	}
	a.gainLin, a.gainDB, a.est, a.resync = gainLin, gainDB, est, resync
	return x
}

// ADCConfig parameterizes the analog-to-digital converter model.
type ADCConfig struct {
	// Bits is the resolution per I/Q dimension (0 disables quantization).
	Bits int
	// FullScaleDBm is the clipping level: a complex sample whose I or Q
	// magnitude exceeds the full-scale amplitude sqrt(P_fs) clips.
	FullScaleDBm float64
}

// ADC quantizes and clips the baseband signal. It implements Block.
type ADC struct {
	cfg  ADCConfig
	fs   float64 // full-scale amplitude per dimension
	step float64
	clip int // clipped sample count
}

// NewADC builds the converter model.
func NewADC(cfg ADCConfig) (*ADC, error) {
	if cfg.Bits < 0 || cfg.Bits > 24 {
		return nil, fmt.Errorf("rf: ADC resolution %d bits out of range", cfg.Bits)
	}
	a := &ADC{cfg: cfg, fs: units.DBmToAmplitude(cfg.FullScaleDBm)}
	if cfg.Bits > 0 {
		a.step = 2 * a.fs / float64(int(1)<<cfg.Bits)
	}
	return a, nil
}

// ClippedSamples returns how many samples clipped since the last Reset.
func (a *ADC) ClippedSamples() int { return a.clip }

// Reset clears the clip counter.
func (a *ADC) Reset() { a.clip = 0 }

func (a *ADC) quantize(v float64) (float64, bool) {
	clipped := false
	if v > a.fs {
		v, clipped = a.fs, true
	} else if v < -a.fs {
		v, clipped = -a.fs, true
	}
	if a.step > 0 {
		v = (math.Floor(v/a.step) + 0.5) * a.step
		// Mid-rise quantizer: keep the reconstruction inside full scale.
		if v > a.fs {
			v = a.fs - a.step/2
		}
		if v < -a.fs {
			v = -a.fs + a.step/2
		}
	}
	return v, clipped
}

// ProcessSample converts one sample.
func (a *ADC) ProcessSample(x complex128) complex128 {
	i, ci := a.quantize(real(x))
	q, cq := a.quantize(imag(x))
	if ci || cq {
		a.clip++
	}
	return complex(i, q)
}

// Process converts a frame in place and returns it.
func (a *ADC) Process(x []complex128) []complex128 {
	for i, v := range x {
		x[i] = a.ProcessSample(v)
	}
	return x
}
