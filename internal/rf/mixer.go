package rf

import (
	"fmt"
	"math"
	"math/cmplx"
	"math/rand"

	"wlansim/internal/kernels"
	"wlansim/internal/randutil"
	"wlansim/internal/units"
)

// LOConfig parameterizes a local oscillator model.
type LOConfig struct {
	// LinewidthHz is the Lorentzian 3 dB linewidth of the oscillator,
	// realized as a Wiener phase process with per-sample variance
	// 2*pi*linewidth/fs. 0 disables phase noise.
	LinewidthHz float64
	// FrequencyOffsetHz is a static LO frequency error.
	FrequencyOffsetHz float64
	// SampleRateHz is the simulation rate.
	SampleRateHz float64
	// Seed seeds the phase noise generator.
	Seed int64
}

// LO models a local oscillator's phase trajectory: static frequency offset
// plus Wiener phase noise.
type LO struct {
	cfg    LOConfig
	phase  float64
	step   float64
	sigma  float64
	rng    *rand.Rand
	rst    *randutil.Restarter
	phasor complex128 // e^{j phase}, advanced incrementally
	renorm int        // samples since the last exact resync

	// table holds the one-period phasor table used by frame fills when the
	// oscillator is noiseless and its offset/sample-rate ratio is rational
	// (every 20 MHz-grid interferer and IF offset at integer oversample):
	// the phase then takes only n distinct values, and the table carries
	// the exact math.Sincos of each — no per-sample transcendental, no
	// incremental-rotation drift to renormalize.
	table *kernels.LOTable
}

// maxLODenominator bounds the period search for the tabled-LO path; 8192
// covers every 20 MHz-grid offset at the simulator's oversample factors
// while keeping worst-case tables small.
const maxLODenominator = 8192

// rationalLORatio reports the offset/sample-rate ratio as k/n when that
// ratio is exactly rational with n <= maxLODenominator in float64 arithmetic
// (the products involved must be exactly representable, which holds for the
// binary-friendly frequency plans the simulator uses). The smallest such n
// is returned.
func rationalLORatio(f0, fs float64) (k, n int, ok bool) {
	if fs <= 0 || math.IsNaN(f0) || math.IsInf(f0, 0) || math.Abs(f0) >= fs*(1<<30) {
		return 0, 0, false
	}
	for n = 1; n <= maxLODenominator; n++ {
		p := f0 * float64(n)
		if math.Mod(p, fs) == 0 {
			return int(p / fs), n, true
		}
	}
	return 0, 0, false
}

// NewLO builds a local oscillator model.
func NewLO(cfg LOConfig) (*LO, error) {
	if cfg.LinewidthHz < 0 {
		return nil, fmt.Errorf("rf: negative LO linewidth")
	}
	if cfg.SampleRateHz <= 0 && (cfg.LinewidthHz > 0 || cfg.FrequencyOffsetHz != 0) {
		return nil, fmt.Errorf("rf: LO requires a sample rate")
	}
	lo := &LO{cfg: cfg}
	if cfg.SampleRateHz > 0 {
		lo.step = 2 * math.Pi * cfg.FrequencyOffsetHz / cfg.SampleRateHz
		lo.sigma = math.Sqrt(2 * math.Pi * cfg.LinewidthHz / cfg.SampleRateHz)
	}
	lo.rng = randutil.NewRand(cfg.Seed) // fixed seed: snapshot-cached construction
	lo.rst = randutil.New(lo.rng, cfg.Seed)
	lo.phasor = 1
	if lo.sigma == 0 && cfg.SampleRateHz > 0 {
		if k, n, ok := rationalLORatio(cfg.FrequencyOffsetHz, cfg.SampleRateHz); ok {
			lo.table = kernels.NewLOTable(k, n)
		}
	}
	return lo, nil
}

// loRenormInterval is how many incremental rotations the LO applies before
// resynchronizing the phasor exactly from the accumulated phase, bounding
// the series-truncation drift to ~512 * 5e-12 rad.
const loRenormInterval = 512

// Next returns the LO phasor for the next sample.
//
// The phasor advances by multiplying with the small-angle rotation of the
// per-sample phase increment instead of evaluating Sincos of the absolute
// phase — one transcendental call per sample removed from the mixing hot
// loop. The absolute phase is still accumulated exactly and the phasor is
// resynchronized from it every loRenormInterval samples (and whenever the
// increment exceeds the small-angle bound), so amplitude and phase drift
// stay below ~3e-9 rad — orders of magnitude under the phase-noise process
// being modeled.
//
//lint:hotpath
func (l *LO) Next() complex128 {
	v := l.phasor
	d := l.step
	if l.sigma > 0 {
		d += l.rng.NormFloat64() * l.sigma
	}
	l.phase += d
	if l.phase > math.Pi || l.phase < -math.Pi {
		l.phase = math.Mod(l.phase, 2*math.Pi)
	}
	l.renorm++
	if d > smallAngleMax || d < -smallAngleMax || l.renorm >= loRenormInterval {
		s, c := math.Sincos(l.phase)
		l.phasor = complex(c, s)
		l.renorm = 0
	} else {
		l.phasor *= rotateSmall(d)
	}
	return v
}

// fill materializes the phasors of the next len(re) samples into planar
// planes, advancing the oscillator. Noiseless rational-ratio oscillators walk
// the precomputed period table (each value the exact Sincos of its rational
// phase); all others run the Next recurrence sample by sample, so frame fills
// and streaming calls draw the identical phase-noise trajectory.
//
//lint:hotpath
func (l *LO) fill(re, im []float64) {
	if l.table != nil {
		l.table.Fill(re, im)
		// Keep the scalar state consistent so a later Next continues the
		// same trajectory: park the recurrence on the table's next phase.
		j, n := l.table.Pos()
		p := 2 * math.Pi * float64(j) / float64(n)
		if p > math.Pi {
			p -= 2 * math.Pi
		}
		l.phase = p
		pr, pi := l.table.Peek()
		l.phasor = complex(pr, pi)
		l.renorm = 0
		return
	}
	for i := range re {
		v := l.Next()
		re[i] = real(v)
		im[i] = imag(v)
	}
}

// Reset restarts the phase trajectory. Restoring the generator snapshot
// restarts the identical phase-noise stream without re-running the seeding
// procedure.
func (l *LO) Reset() {
	l.phase = 0
	l.phasor = 1
	l.renorm = 0
	l.rst.Restart()
	if l.table != nil {
		l.table.Reset()
	}
}

// MixerConfig parameterizes a complex-baseband mixer model. In the
// double-conversion receiver's equivalent baseband the frequency translation
// itself is absorbed into the signal representation; the model carries the
// mixer's imperfections.
type MixerConfig struct {
	// Name identifies the block in cascade reports.
	Name string
	// ConversionGainDB is the conversion power gain.
	ConversionGainDB float64
	// NoiseFigureDB adds input-referred noise like the amplifier model.
	NoiseFigureDB float64
	// LO configures phase noise and frequency error; nil for an ideal LO.
	LO *LOConfig
	// IQGainImbalanceDB is the I/Q amplitude mismatch in dB (power).
	IQGainImbalanceDB float64
	// IQPhaseErrorDeg is the I/Q quadrature phase error in degrees.
	IQPhaseErrorDeg float64
	// DCOffsetDBm injects a static DC term modeling LO self-mixing
	// (paper §2.2: both mixer inputs at the LO frequency). Use
	// math.Inf(-1) or leave zero value DisableDC to disable.
	DCOffsetDBm float64
	// EnableDC turns the self-mixing DC term on.
	EnableDC bool
	// SampleRateHz is the simulation bandwidth for the noise source.
	SampleRateHz float64
	// NoiseSeed seeds the noise generator.
	NoiseSeed int64
	// DisableNoise turns the noise source off (AMS co-sim limitation).
	DisableNoise bool
}

// Mixer is a behavioral down-conversion mixer. It implements Block.
type Mixer struct {
	cfg   MixerConfig
	g     float64
	lo    *LO
	mu    complex128 // direct I/Q term
	nu    complex128 // image (conjugate) term
	dc    complex128
	noise *rand.Rand
	nrst  *randutil.Restarter
	nsig  float64

	xv, lov kernels.Vec // planar frame and LO-trajectory scratch
}

// NewMixer validates the configuration and builds the model.
func NewMixer(cfg MixerConfig) (*Mixer, error) {
	if cfg.NoiseFigureDB < 0 {
		return nil, fmt.Errorf("rf: mixer %q: negative noise figure", cfg.Name)
	}
	if cfg.SampleRateHz <= 0 && cfg.NoiseFigureDB > 0 && !cfg.DisableNoise {
		return nil, fmt.Errorf("rf: mixer %q: noise figure set but no sample rate", cfg.Name)
	}
	m := &Mixer{cfg: cfg, g: units.DBToVoltageGain(cfg.ConversionGainDB)}
	if cfg.LO != nil {
		loCfg := *cfg.LO
		if loCfg.SampleRateHz == 0 {
			loCfg.SampleRateHz = cfg.SampleRateHz
		}
		lo, err := NewLO(loCfg)
		if err != nil {
			return nil, err
		}
		m.lo = lo
	}
	// I/Q imbalance terms: received r = mu*x + nu*conj(x) with
	// mu = (1 + a*e^{-j theta})/2, nu = (1 - a*e^{+j theta})/2,
	// a the linear amplitude mismatch.
	alpha := units.DBToVoltageGain(cfg.IQGainImbalanceDB)
	theta := cfg.IQPhaseErrorDeg * math.Pi / 180
	m.mu = (1 + cmplx.Exp(complex(0, -theta))*complex(alpha, 0)) / 2
	m.nu = (1 - cmplx.Exp(complex(0, theta))*complex(alpha, 0)) / 2
	if cfg.EnableDC {
		m.dc = complex(units.DBmToAmplitude(cfg.DCOffsetDBm), 0)
	}
	if cfg.NoiseFigureDB > 0 && !cfg.DisableNoise {
		f := units.DBToLinear(cfg.NoiseFigureDB)
		np := units.Boltzmann * units.RoomTemperature * cfg.SampleRateHz * (f - 1)
		m.nsig = math.Sqrt(np / 2)
		m.noise = randutil.NewRand(cfg.NoiseSeed) // fixed seed: snapshot-cached construction
		m.nrst = randutil.New(m.noise, cfg.NoiseSeed)
	}
	return m, nil
}

// Config returns the mixer configuration.
func (m *Mixer) Config() MixerConfig { return m.cfg }

// ImageRejectionDB returns the I/Q image rejection ratio implied by the
// imbalance settings (+Inf for a perfectly balanced mixer).
func (m *Mixer) ImageRejectionDB() float64 {
	n := cmplx.Abs(m.nu)
	if n == 0 {
		return math.Inf(1)
	}
	return units.VoltageGainToDB(cmplx.Abs(m.mu) / n)
}

// Reset restarts the LO and noise source.
func (m *Mixer) Reset() {
	if m.lo != nil {
		m.lo.Reset()
	}
	if m.noise != nil {
		m.nrst.Restart()
	}
}

// ProcessSample mixes one sample.
//
//lint:hotpath
func (m *Mixer) ProcessSample(x complex128) complex128 {
	if m.noise != nil {
		x += complex(m.noise.NormFloat64()*m.nsig, m.noise.NormFloat64()*m.nsig)
	}
	y := m.mu*x + m.nu*cmplx.Conj(x)
	if m.lo != nil {
		y *= m.lo.Next()
	}
	y = complex(m.g*real(y), m.g*imag(y))
	return y + m.dc
}

// Process mixes a frame in place and returns it.
//
// The frame is run as three passes — noise injection, LO trajectory fill,
// planar mixer arithmetic — instead of the per-sample pipeline. The split is
// bit-exact against ProcessSample: the noise and phase-noise streams come
// from separate generators, so draining one fully before the other preserves
// each generator's draw order, and the kernels layer mirrors the per-sample
// complex arithmetic operation for operation. (The one intended exception is
// a noiseless rational-ratio LO, whose frame fills use the exact period
// table rather than the incremental recurrence; see LO.fill.)
//
//lint:hotpath
func (m *Mixer) Process(x []complex128) []complex128 {
	if len(x) == 0 {
		return x
	}
	if m.noise != nil {
		for i := range x {
			x[i] += complex(m.noise.NormFloat64()*m.nsig, m.noise.NormFloat64()*m.nsig)
		}
	}
	m.xv.From(x)
	mur, mui := real(m.mu), imag(m.mu)
	nur, nui := real(m.nu), imag(m.nu)
	dcr, dci := real(m.dc), imag(m.dc)
	if m.lo != nil {
		//lint:ignore escape inlined Vec grow: first-use plane allocation, reused afterwards
		m.lov.Grow(len(x))
		m.lo.fill(m.lov.Re, m.lov.Im)
		kernels.MixApplyLO(m.xv.Re, m.xv.Im, m.lov.Re, m.lov.Im,
			mur, mui, nur, nui, m.g, dcr, dci)
	} else {
		kernels.MixApply(m.xv.Re, m.xv.Im, mur, mui, nur, nui, m.g, dcr, dci)
	}
	m.xv.CopyTo(x)
	return x
}
