package rf

import (
	"fmt"
	"math"
	"math/cmplx"

	"wlansim/internal/kernels"
	"wlansim/internal/randutil"
	"wlansim/internal/units"
)

// LOConfig parameterizes a local oscillator model.
type LOConfig struct {
	// LinewidthHz is the Lorentzian 3 dB linewidth of the oscillator,
	// realized as a Wiener phase process with per-sample variance
	// 2*pi*linewidth/fs. 0 disables phase noise.
	LinewidthHz float64
	// FrequencyOffsetHz is a static LO frequency error.
	FrequencyOffsetHz float64
	// SampleRateHz is the simulation rate.
	SampleRateHz float64
	// Seed seeds the phase noise generator.
	Seed int64
}

// LO models a local oscillator's phase trajectory: static frequency offset
// plus Wiener phase noise.
type LO struct {
	cfg    LOConfig
	phase  float64
	step   float64
	sigma  float64
	rng    *randutil.Rand
	phasor complex128 // e^{j phase}, advanced incrementally
	renorm int        // samples since the last exact resync
	dv     []float64  // frame-fill phase-increment scratch

	// table holds the one-period phasor table used by frame fills when the
	// oscillator is noiseless and its offset/sample-rate ratio is rational
	// (every 20 MHz-grid interferer and IF offset at integer oversample):
	// the phase then takes only n distinct values, and the table carries
	// the exact math.Sincos of each — no per-sample transcendental, no
	// incremental-rotation drift to renormalize.
	table *kernels.LOTable
}

// maxLODenominator bounds the period search for the tabled-LO path; 8192
// covers every 20 MHz-grid offset at the simulator's oversample factors
// while keeping worst-case tables small.
const maxLODenominator = 8192

// rationalLORatio reports the offset/sample-rate ratio as k/n when that
// ratio is exactly rational with n <= maxLODenominator in float64 arithmetic
// (the products involved must be exactly representable, which holds for the
// binary-friendly frequency plans the simulator uses). The smallest such n
// is returned.
func rationalLORatio(f0, fs float64) (k, n int, ok bool) {
	if fs <= 0 || math.IsNaN(f0) || math.IsInf(f0, 0) || math.Abs(f0) >= fs*(1<<30) {
		return 0, 0, false
	}
	for n = 1; n <= maxLODenominator; n++ {
		p := f0 * float64(n)
		if math.Mod(p, fs) == 0 {
			return int(p / fs), n, true
		}
	}
	return 0, 0, false
}

// NewLO builds a local oscillator model.
func NewLO(cfg LOConfig) (*LO, error) {
	if cfg.LinewidthHz < 0 {
		return nil, fmt.Errorf("rf: negative LO linewidth")
	}
	if cfg.SampleRateHz <= 0 && (cfg.LinewidthHz > 0 || cfg.FrequencyOffsetHz != 0) {
		return nil, fmt.Errorf("rf: LO requires a sample rate")
	}
	lo := &LO{cfg: cfg}
	if cfg.SampleRateHz > 0 {
		lo.step = 2 * math.Pi * cfg.FrequencyOffsetHz / cfg.SampleRateHz
		lo.sigma = math.Sqrt(2 * math.Pi * cfg.LinewidthHz / cfg.SampleRateHz)
	}
	// Concrete generator: the phase-noise draw sits in the per-sample mixing
	// loop, and the devirtualized ziggurat keeps the register step inlined.
	lo.rng = randutil.NewRandDirect(cfg.Seed)
	lo.phasor = 1
	if lo.sigma == 0 && cfg.SampleRateHz > 0 {
		if k, n, ok := rationalLORatio(cfg.FrequencyOffsetHz, cfg.SampleRateHz); ok {
			lo.table = kernels.NewLOTable(k, n)
		}
	}
	return lo, nil
}

// loRenormInterval is how many incremental rotations the LO applies before
// resynchronizing the phasor exactly from the accumulated phase, bounding
// the series-truncation drift to ~512 * 5e-12 rad.
const loRenormInterval = 512

// Next returns the LO phasor for the next sample.
//
// The phasor advances by multiplying with the small-angle rotation of the
// per-sample phase increment instead of evaluating Sincos of the absolute
// phase — one transcendental call per sample removed from the mixing hot
// loop. The absolute phase is still accumulated exactly and the phasor is
// resynchronized from it every loRenormInterval samples (and whenever the
// increment exceeds the small-angle bound), so amplitude and phase drift
// stay below ~3e-9 rad — orders of magnitude under the phase-noise process
// being modeled.
//
//lint:hotpath
func (l *LO) Next() complex128 {
	v := l.phasor
	d := l.step
	if l.sigma > 0 {
		d += l.rng.NormFloat64() * l.sigma
	}
	l.phase += d
	if l.phase > math.Pi || l.phase < -math.Pi {
		l.phase = math.Mod(l.phase, 2*math.Pi)
	}
	l.renorm++
	if d > smallAngleMax || d < -smallAngleMax || l.renorm >= loRenormInterval {
		s, c := math.Sincos(l.phase)
		l.phasor = complex(c, s)
		l.renorm = 0
	} else {
		l.phasor *= rotateSmall(d)
	}
	return v
}

// fill materializes the phasors of the next len(re) samples into planar
// planes, advancing the oscillator. Noiseless rational-ratio oscillators walk
// the precomputed period table (each value the exact Sincos of its rational
// phase); all others run the Next recurrence sample by sample, so frame fills
// and streaming calls draw the identical phase-noise trajectory.
//
//lint:hotpath
func (l *LO) fill(re, im []float64) {
	if l.table != nil {
		l.table.Fill(re, im)
		// Keep the scalar state consistent so a later Next continues the
		// same trajectory: park the recurrence on the table's next phase.
		j, n := l.table.Pos()
		p := 2 * math.Pi * float64(j) / float64(n)
		if p > math.Pi {
			p -= 2 * math.Pi
		}
		l.phase = p
		pr, pi := l.table.Peek()
		l.phasor = complex(pr, pi)
		l.renorm = 0
		return
	}
	// Split the fill into a draw pass and a rotation pass: the ziggurat loop
	// runs without the phase recurrence interleaved, and the recurrence runs
	// with its state in registers. The increments are the exact values Next
	// would compute (step + draw*sigma, draws in sample order from the same
	// generator), and the rotation pass performs Next's phase/renorm updates,
	// so streaming and frame fills draw one trajectory.
	l.fillIncrements(len(re))
	l.rotateIncrements(re, im)
}

// fillIncrements materializes the next n per-sample phase increments into
// l.dv: step + draw*sigma with the draws in sample order (or the constant
// step for a noiseless oscillator, which consumes no draws — exactly as
// Next's sigma guard).
//
//lint:hotpath
func (l *LO) fillIncrements(n int) {
	if cap(l.dv) < n {
		//lint:ignore escape first-use phase-increment plane, reused afterwards
		l.dv = make([]float64, n)
	}
	d := l.dv[:n]
	if l.sigma > 0 {
		l.rng.FillNormMulAdd(d, l.sigma, l.step)
		return
	}
	for i := range d {
		d[i] = l.step
	}
}

// rotateIncrements runs Next's phase recurrence over the materialized
// increments, emitting the pre-update phasor per sample.
//
//lint:hotpath
func (l *LO) rotateIncrements(re, im []float64) {
	d := l.dv[:len(re)]
	phase, phasor, renorm := l.phase, l.phasor, l.renorm
	for i := range re {
		re[i] = real(phasor)
		im[i] = imag(phasor)
		di := d[i]
		phase += di
		if phase > math.Pi || phase < -math.Pi {
			phase = math.Mod(phase, 2*math.Pi)
		}
		renorm++
		if di > smallAngleMax || di < -smallAngleMax || renorm >= loRenormInterval {
			s, c := math.Sincos(phase)
			phasor = complex(c, s)
			renorm = 0
		} else {
			phasor *= rotateSmall(di)
		}
	}
	l.phase, l.phasor, l.renorm = phase, phasor, renorm
}

// rotateIncrementsPair advances two independent oscillators' recurrences in
// one interleaved loop. Each chain performs exactly its rotateIncrements
// arithmetic on its own state — the interleave only overlaps the two serial
// phasor-multiply dependency chains, which bound the one-at-a-time pass.
//
//lint:hotpath
func rotateIncrementsPair(l1 *LO, re1, im1 []float64, l2 *LO, re2, im2 []float64) {
	d1 := l1.dv[:len(re1)]
	d2 := l2.dv[:len(re1)]
	re2 = re2[:len(re1)]
	im2 = im2[:len(re1)]
	p1, v1, r1 := l1.phase, l1.phasor, l1.renorm
	p2, v2, r2 := l2.phase, l2.phasor, l2.renorm
	for i := range re1 {
		re1[i] = real(v1)
		im1[i] = imag(v1)
		re2[i] = real(v2)
		im2[i] = imag(v2)
		da := d1[i]
		db := d2[i]
		p1 += da
		p2 += db
		if p1 > math.Pi || p1 < -math.Pi {
			p1 = math.Mod(p1, 2*math.Pi)
		}
		if p2 > math.Pi || p2 < -math.Pi {
			p2 = math.Mod(p2, 2*math.Pi)
		}
		r1++
		r2++
		if da > smallAngleMax || da < -smallAngleMax || r1 >= loRenormInterval {
			s, c := math.Sincos(p1)
			v1 = complex(c, s)
			r1 = 0
		} else {
			v1 *= rotateSmall(da)
		}
		if db > smallAngleMax || db < -smallAngleMax || r2 >= loRenormInterval {
			s, c := math.Sincos(p2)
			v2 = complex(c, s)
			r2 = 0
		} else {
			v2 *= rotateSmall(db)
		}
	}
	l1.phase, l1.phasor, l1.renorm = p1, v1, r1
	l2.phase, l2.phasor, l2.renorm = p2, v2, r2
}

// Reset restarts the phase trajectory. Rewinding to the construction mark
// restarts the identical phase-noise stream without re-running the seeding
// procedure.
func (l *LO) Reset() {
	l.phase = 0
	l.phasor = 1
	l.renorm = 0
	l.rng.Rewind()
	if l.table != nil {
		l.table.Reset()
	}
}

// MixerConfig parameterizes a complex-baseband mixer model. In the
// double-conversion receiver's equivalent baseband the frequency translation
// itself is absorbed into the signal representation; the model carries the
// mixer's imperfections.
type MixerConfig struct {
	// Name identifies the block in cascade reports.
	Name string
	// ConversionGainDB is the conversion power gain.
	ConversionGainDB float64
	// NoiseFigureDB adds input-referred noise like the amplifier model.
	NoiseFigureDB float64
	// LO configures phase noise and frequency error; nil for an ideal LO.
	LO *LOConfig
	// IQGainImbalanceDB is the I/Q amplitude mismatch in dB (power).
	IQGainImbalanceDB float64
	// IQPhaseErrorDeg is the I/Q quadrature phase error in degrees.
	IQPhaseErrorDeg float64
	// DCOffsetDBm injects a static DC term modeling LO self-mixing
	// (paper §2.2: both mixer inputs at the LO frequency). Use
	// math.Inf(-1) or leave zero value DisableDC to disable.
	DCOffsetDBm float64
	// EnableDC turns the self-mixing DC term on.
	EnableDC bool
	// SampleRateHz is the simulation bandwidth for the noise source.
	SampleRateHz float64
	// NoiseSeed seeds the noise generator.
	NoiseSeed int64
	// DisableNoise turns the noise source off (AMS co-sim limitation).
	DisableNoise bool
}

// Mixer is a behavioral down-conversion mixer. It implements Block.
type Mixer struct {
	cfg   MixerConfig
	g     float64
	lo    *LO
	mu    complex128 // direct I/Q term
	nu    complex128 // image (conjugate) term
	dc    complex128
	noise *randutil.Rand
	nsig  float64

	xv, lov, nv kernels.Vec // planar frame, LO-trajectory and noise scratch
	loFilled    bool        // lov already holds this frame's trajectory (pair prefill)
}

// NewMixer validates the configuration and builds the model.
func NewMixer(cfg MixerConfig) (*Mixer, error) {
	if cfg.NoiseFigureDB < 0 {
		return nil, fmt.Errorf("rf: mixer %q: negative noise figure", cfg.Name)
	}
	if cfg.SampleRateHz <= 0 && cfg.NoiseFigureDB > 0 && !cfg.DisableNoise {
		return nil, fmt.Errorf("rf: mixer %q: noise figure set but no sample rate", cfg.Name)
	}
	m := &Mixer{cfg: cfg, g: units.DBToVoltageGain(cfg.ConversionGainDB)}
	if cfg.LO != nil {
		loCfg := *cfg.LO
		if loCfg.SampleRateHz == 0 {
			loCfg.SampleRateHz = cfg.SampleRateHz
		}
		lo, err := NewLO(loCfg)
		if err != nil {
			return nil, err
		}
		m.lo = lo
	}
	// I/Q imbalance terms: received r = mu*x + nu*conj(x) with
	// mu = (1 + a*e^{-j theta})/2, nu = (1 - a*e^{+j theta})/2,
	// a the linear amplitude mismatch.
	alpha := units.DBToVoltageGain(cfg.IQGainImbalanceDB)
	theta := cfg.IQPhaseErrorDeg * math.Pi / 180
	m.mu = (1 + cmplx.Exp(complex(0, -theta))*complex(alpha, 0)) / 2
	m.nu = (1 - cmplx.Exp(complex(0, theta))*complex(alpha, 0)) / 2
	if cfg.EnableDC {
		m.dc = complex(units.DBmToAmplitude(cfg.DCOffsetDBm), 0)
	}
	if cfg.NoiseFigureDB > 0 && !cfg.DisableNoise {
		f := units.DBToLinear(cfg.NoiseFigureDB)
		np := units.Boltzmann * units.RoomTemperature * cfg.SampleRateHz * (f - 1)
		m.nsig = math.Sqrt(np / 2)
		m.noise = randutil.NewRandDirect(cfg.NoiseSeed)
	}
	return m, nil
}

// Config returns the mixer configuration.
func (m *Mixer) Config() MixerConfig { return m.cfg }

// ImageRejectionDB returns the I/Q image rejection ratio implied by the
// imbalance settings (+Inf for a perfectly balanced mixer).
func (m *Mixer) ImageRejectionDB() float64 {
	n := cmplx.Abs(m.nu)
	if n == 0 {
		return math.Inf(1)
	}
	return units.VoltageGainToDB(cmplx.Abs(m.mu) / n)
}

// Reset restarts the LO and noise source.
func (m *Mixer) Reset() {
	m.loFilled = false
	if m.lo != nil {
		m.lo.Reset()
	}
	if m.noise != nil {
		m.noise.Rewind()
	}
}

// ProcessSample mixes one sample.
//
//lint:hotpath
func (m *Mixer) ProcessSample(x complex128) complex128 {
	if m.noise != nil {
		x += complex(m.noise.NormFloat64()*m.nsig, m.noise.NormFloat64()*m.nsig)
	}
	y := m.mu*x + m.nu*cmplx.Conj(x)
	if m.lo != nil {
		y *= m.lo.Next()
	}
	y = complex(m.g*real(y), m.g*imag(y))
	return y + m.dc
}

// Process mixes a frame in place and returns it.
//
// The frame is run as three passes — noise injection, LO trajectory fill,
// planar mixer arithmetic — instead of the per-sample pipeline. The split is
// bit-exact against ProcessSample: the noise and phase-noise streams come
// from separate generators, so draining one fully before the other preserves
// each generator's draw order, and the kernels layer mirrors the per-sample
// complex arithmetic operation for operation. (The one intended exception is
// a noiseless rational-ratio LO, whose frame fills use the exact period
// table rather than the incremental recurrence; see LO.fill.)
//
//lint:hotpath
func (m *Mixer) Process(x []complex128) []complex128 {
	if len(x) == 0 {
		return x
	}
	m.xv.From(x)
	m.processPlanar(m.xv.Re, m.xv.Im)
	m.xv.CopyTo(x)
	return x
}

// processPlanar mixes one planar frame in place. It is the single-lane core
// shared by Process and the receiver's fused planar segment: noise plane
// materialized and added component-wise (the same scale-then-add float ops
// the per-sample path performs), LO trajectory filled once, then the planar
// mixer kernel.
//
//lint:hotpath
func (m *Mixer) processPlanar(xr, xi []float64) {
	n := len(xr)
	if n == 0 {
		return
	}
	if m.noise != nil {
		//lint:ignore escape inlined Vec grow: first-use plane allocation, reused afterwards
		m.nv.Grow(n)
		nre, nim := m.nv.Re, m.nv.Im
		m.noise.FillNormPairs(nre, nim)
		kernels.ScalePlane(nre, m.nsig)
		kernels.ScalePlane(nim, m.nsig)
		kernels.AddPlane(xr, nre)
		kernels.AddPlane(xi, nim)
	}
	mur, mui := real(m.mu), imag(m.mu)
	nur, nui := real(m.nu), imag(m.nu)
	dcr, dci := real(m.dc), imag(m.dc)
	if m.lo != nil {
		if m.loFilled && m.lov.Len() == n {
			m.loFilled = false
		} else {
			//lint:ignore escape inlined Vec grow: first-use plane allocation, reused afterwards
			m.lov.Grow(n)
			m.lo.fill(m.lov.Re, m.lov.Im)
		}
		kernels.MixApplyLO(xr, xi, m.lov.Re, m.lov.Im,
			mur, mui, nur, nui, m.g, dcr, dci)
	} else {
		kernels.MixApply(xr, xi, mur, mui, nur, nui, m.g, dcr, dci)
	}
}

// prefillLOPair fills both mixers' LO trajectory planes for an n-sample
// frame in one interleaved rotation pass (see rotateIncrementsPair), marking
// them consumed-once for the following processPlanar calls. It applies only
// when both oscillators run the increment recurrence; table-driven and
// absent LOs keep their own fills.
func prefillLOPair(m1, m2 *Mixer, n int) {
	if n == 0 || m1 == nil || m2 == nil {
		return
	}
	l1, l2 := m1.lo, m2.lo
	if l1 == nil || l2 == nil || l1.table != nil || l2.table != nil {
		return
	}
	m1.lov.Grow(n)
	m2.lov.Grow(n)
	l1.fillIncrements(n)
	l2.fillIncrements(n)
	rotateIncrementsPair(l1, m1.lov.Re, m1.lov.Im, l2, m2.lov.Re, m2.lov.Im)
	m1.loFilled = true
	m2.loFilled = true
}
