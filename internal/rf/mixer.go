package rf

import (
	"fmt"
	"math"
	"math/cmplx"
	"math/rand"

	"wlansim/internal/randutil"
	"wlansim/internal/units"
)

// LOConfig parameterizes a local oscillator model.
type LOConfig struct {
	// LinewidthHz is the Lorentzian 3 dB linewidth of the oscillator,
	// realized as a Wiener phase process with per-sample variance
	// 2*pi*linewidth/fs. 0 disables phase noise.
	LinewidthHz float64
	// FrequencyOffsetHz is a static LO frequency error.
	FrequencyOffsetHz float64
	// SampleRateHz is the simulation rate.
	SampleRateHz float64
	// Seed seeds the phase noise generator.
	Seed int64
}

// LO models a local oscillator's phase trajectory: static frequency offset
// plus Wiener phase noise.
type LO struct {
	cfg    LOConfig
	phase  float64
	step   float64
	sigma  float64
	rng    *rand.Rand
	rst    *randutil.Restarter
	phasor complex128 // e^{j phase}, advanced incrementally
	renorm int        // samples since the last exact resync
}

// NewLO builds a local oscillator model.
func NewLO(cfg LOConfig) (*LO, error) {
	if cfg.LinewidthHz < 0 {
		return nil, fmt.Errorf("rf: negative LO linewidth")
	}
	if cfg.SampleRateHz <= 0 && (cfg.LinewidthHz > 0 || cfg.FrequencyOffsetHz != 0) {
		return nil, fmt.Errorf("rf: LO requires a sample rate")
	}
	lo := &LO{cfg: cfg}
	if cfg.SampleRateHz > 0 {
		lo.step = 2 * math.Pi * cfg.FrequencyOffsetHz / cfg.SampleRateHz
		lo.sigma = math.Sqrt(2 * math.Pi * cfg.LinewidthHz / cfg.SampleRateHz)
	}
	lo.rng = randutil.NewRand(cfg.Seed) // fixed seed: snapshot-cached construction
	lo.rst = randutil.New(lo.rng, cfg.Seed)
	lo.phasor = 1
	return lo, nil
}

// loRenormInterval is how many incremental rotations the LO applies before
// resynchronizing the phasor exactly from the accumulated phase, bounding
// the series-truncation drift to ~512 * 5e-12 rad.
const loRenormInterval = 512

// Next returns the LO phasor for the next sample.
//
// The phasor advances by multiplying with the small-angle rotation of the
// per-sample phase increment instead of evaluating Sincos of the absolute
// phase — one transcendental call per sample removed from the mixing hot
// loop. The absolute phase is still accumulated exactly and the phasor is
// resynchronized from it every loRenormInterval samples (and whenever the
// increment exceeds the small-angle bound), so amplitude and phase drift
// stay below ~3e-9 rad — orders of magnitude under the phase-noise process
// being modeled.
func (l *LO) Next() complex128 {
	v := l.phasor
	d := l.step
	if l.sigma > 0 {
		d += l.rng.NormFloat64() * l.sigma
	}
	l.phase += d
	if l.phase > math.Pi || l.phase < -math.Pi {
		l.phase = math.Mod(l.phase, 2*math.Pi)
	}
	l.renorm++
	if d > smallAngleMax || d < -smallAngleMax || l.renorm >= loRenormInterval {
		s, c := math.Sincos(l.phase)
		l.phasor = complex(c, s)
		l.renorm = 0
	} else {
		l.phasor *= rotateSmall(d)
	}
	return v
}

// Reset restarts the phase trajectory. Restoring the generator snapshot
// restarts the identical phase-noise stream without re-running the seeding
// procedure.
func (l *LO) Reset() {
	l.phase = 0
	l.phasor = 1
	l.renorm = 0
	l.rst.Restart()
}

// MixerConfig parameterizes a complex-baseband mixer model. In the
// double-conversion receiver's equivalent baseband the frequency translation
// itself is absorbed into the signal representation; the model carries the
// mixer's imperfections.
type MixerConfig struct {
	// Name identifies the block in cascade reports.
	Name string
	// ConversionGainDB is the conversion power gain.
	ConversionGainDB float64
	// NoiseFigureDB adds input-referred noise like the amplifier model.
	NoiseFigureDB float64
	// LO configures phase noise and frequency error; nil for an ideal LO.
	LO *LOConfig
	// IQGainImbalanceDB is the I/Q amplitude mismatch in dB (power).
	IQGainImbalanceDB float64
	// IQPhaseErrorDeg is the I/Q quadrature phase error in degrees.
	IQPhaseErrorDeg float64
	// DCOffsetDBm injects a static DC term modeling LO self-mixing
	// (paper §2.2: both mixer inputs at the LO frequency). Use
	// math.Inf(-1) or leave zero value DisableDC to disable.
	DCOffsetDBm float64
	// EnableDC turns the self-mixing DC term on.
	EnableDC bool
	// SampleRateHz is the simulation bandwidth for the noise source.
	SampleRateHz float64
	// NoiseSeed seeds the noise generator.
	NoiseSeed int64
	// DisableNoise turns the noise source off (AMS co-sim limitation).
	DisableNoise bool
}

// Mixer is a behavioral down-conversion mixer. It implements Block.
type Mixer struct {
	cfg   MixerConfig
	g     float64
	lo    *LO
	mu    complex128 // direct I/Q term
	nu    complex128 // image (conjugate) term
	dc    complex128
	noise *rand.Rand
	nrst  *randutil.Restarter
	nsig  float64
}

// NewMixer validates the configuration and builds the model.
func NewMixer(cfg MixerConfig) (*Mixer, error) {
	if cfg.NoiseFigureDB < 0 {
		return nil, fmt.Errorf("rf: mixer %q: negative noise figure", cfg.Name)
	}
	if cfg.SampleRateHz <= 0 && cfg.NoiseFigureDB > 0 && !cfg.DisableNoise {
		return nil, fmt.Errorf("rf: mixer %q: noise figure set but no sample rate", cfg.Name)
	}
	m := &Mixer{cfg: cfg, g: units.DBToVoltageGain(cfg.ConversionGainDB)}
	if cfg.LO != nil {
		loCfg := *cfg.LO
		if loCfg.SampleRateHz == 0 {
			loCfg.SampleRateHz = cfg.SampleRateHz
		}
		lo, err := NewLO(loCfg)
		if err != nil {
			return nil, err
		}
		m.lo = lo
	}
	// I/Q imbalance terms: received r = mu*x + nu*conj(x) with
	// mu = (1 + a*e^{-j theta})/2, nu = (1 - a*e^{+j theta})/2,
	// a the linear amplitude mismatch.
	alpha := units.DBToVoltageGain(cfg.IQGainImbalanceDB)
	theta := cfg.IQPhaseErrorDeg * math.Pi / 180
	m.mu = (1 + cmplx.Exp(complex(0, -theta))*complex(alpha, 0)) / 2
	m.nu = (1 - cmplx.Exp(complex(0, theta))*complex(alpha, 0)) / 2
	if cfg.EnableDC {
		m.dc = complex(units.DBmToAmplitude(cfg.DCOffsetDBm), 0)
	}
	if cfg.NoiseFigureDB > 0 && !cfg.DisableNoise {
		f := units.DBToLinear(cfg.NoiseFigureDB)
		np := units.Boltzmann * units.RoomTemperature * cfg.SampleRateHz * (f - 1)
		m.nsig = math.Sqrt(np / 2)
		m.noise = randutil.NewRand(cfg.NoiseSeed) // fixed seed: snapshot-cached construction
		m.nrst = randutil.New(m.noise, cfg.NoiseSeed)
	}
	return m, nil
}

// Config returns the mixer configuration.
func (m *Mixer) Config() MixerConfig { return m.cfg }

// ImageRejectionDB returns the I/Q image rejection ratio implied by the
// imbalance settings (+Inf for a perfectly balanced mixer).
func (m *Mixer) ImageRejectionDB() float64 {
	n := cmplx.Abs(m.nu)
	if n == 0 {
		return math.Inf(1)
	}
	return units.VoltageGainToDB(cmplx.Abs(m.mu) / n)
}

// Reset restarts the LO and noise source.
func (m *Mixer) Reset() {
	if m.lo != nil {
		m.lo.Reset()
	}
	if m.noise != nil {
		m.nrst.Restart()
	}
}

// ProcessSample mixes one sample.
func (m *Mixer) ProcessSample(x complex128) complex128 {
	if m.noise != nil {
		x += complex(m.noise.NormFloat64()*m.nsig, m.noise.NormFloat64()*m.nsig)
	}
	y := m.mu*x + m.nu*cmplx.Conj(x)
	if m.lo != nil {
		y *= m.lo.Next()
	}
	y = complex(m.g*real(y), m.g*imag(y))
	return y + m.dc
}

// Process mixes a frame in place and returns it.
func (m *Mixer) Process(x []complex128) []complex128 {
	for i, v := range x {
		x[i] = m.ProcessSample(v)
	}
	return x
}
