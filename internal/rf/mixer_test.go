package rf

import (
	"math"
	"math/cmplx"
	"testing"

	"wlansim/internal/dsp"
	"wlansim/internal/randutil"
	"wlansim/internal/units"
)

func TestMixerConversionGain(t *testing.T) {
	m, err := NewMixer(MixerConfig{Name: "m", ConversionGainDB: 8})
	if err != nil {
		t.Fatal(err)
	}
	in := toneAt(512, 0.1, units.DBmToAmplitude(-30))
	out := m.Process(in)
	if got := units.MeanPowerDBm(out); math.Abs(got-(-22)) > 0.01 {
		t.Errorf("output %v dBm, want -22", got)
	}
}

func TestMixerIdealHasInfiniteImageRejection(t *testing.T) {
	m, _ := NewMixer(MixerConfig{Name: "ideal"})
	if !math.IsInf(m.ImageRejectionDB(), 1) {
		t.Errorf("ideal mixer IRR %v, want +Inf", m.ImageRejectionDB())
	}
	// Pass-through at 0 dB gain.
	x := m.ProcessSample(3 + 4i)
	if cmplx.Abs(x-(3+4i)) > 1e-12 {
		t.Errorf("ideal mixer altered the sample: %v", x)
	}
}

func TestMixerIQImbalanceCreatesImage(t *testing.T) {
	m, err := NewMixer(MixerConfig{
		Name: "iq", IQGainImbalanceDB: 0.5, IQPhaseErrorDeg: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	// A tone at +nu acquires an image at -nu whose suppression equals the
	// image rejection ratio.
	n := 1024
	bin := 100
	x := toneAt(n, float64(bin)/float64(n), 1)
	m.Process(x)
	fx := dsp.FFT(x)
	direct := cmplx.Abs(fx[bin])
	image := cmplx.Abs(fx[n-bin])
	gotIRR := 20 * math.Log10(direct/image)
	if math.Abs(gotIRR-m.ImageRejectionDB()) > 0.1 {
		t.Errorf("measured IRR %v dB, computed %v dB", gotIRR, m.ImageRejectionDB())
	}
	// Typical 0.5 dB / 2 deg imbalance gives IRR around 30 dB.
	if m.ImageRejectionDB() < 25 || m.ImageRejectionDB() > 40 {
		t.Errorf("IRR %v dB outside plausible range", m.ImageRejectionDB())
	}
}

func TestMixerDCOffset(t *testing.T) {
	m, err := NewMixer(MixerConfig{Name: "dc", EnableDC: true, DCOffsetDBm: -40})
	if err != nil {
		t.Fatal(err)
	}
	out := m.Process(make([]complex128, 1000))
	if got := units.MeanPowerDBm(out); math.Abs(got-(-40)) > 0.01 {
		t.Errorf("DC power %v dBm, want -40", got)
	}
}

func TestMixerPhaseNoiseGrowsWithLinewidth(t *testing.T) {
	variance := func(lw float64) float64 {
		m, err := NewMixer(MixerConfig{
			Name: "pn", SampleRateHz: 20e6,
			LO: &LOConfig{LinewidthHz: lw, Seed: 5},
		})
		if err != nil {
			t.Fatal(err)
		}
		x := make([]complex128, 20000)
		for i := range x {
			x[i] = 1
		}
		m.Process(x)
		var acc float64
		for _, v := range x {
			p := cmplx.Phase(v)
			acc += p * p
		}
		return acc / float64(len(x))
	}
	v0 := variance(0)
	v1 := variance(100)
	v2 := variance(10000)
	if v0 != 0 {
		t.Errorf("zero linewidth produced phase noise %v", v0)
	}
	if !(v2 > v1*10) {
		t.Errorf("phase variance %v (100 Hz) vs %v (10 kHz): not growing", v1, v2)
	}
}

func TestLOFrequencyOffset(t *testing.T) {
	lo, err := NewLO(LOConfig{FrequencyOffsetHz: 1e5, SampleRateHz: 20e6})
	if err != nil {
		t.Fatal(err)
	}
	a := lo.Next()
	b := lo.Next()
	step := cmplx.Phase(b * cmplx.Conj(a))
	want := 2 * math.Pi * 1e5 / 20e6
	if math.Abs(step-want) > 1e-12 {
		t.Errorf("phase step %v, want %v", step, want)
	}
	lo.Reset()
	if got := lo.Next(); cmplx.Abs(got-a) > 1e-15 {
		t.Error("Reset did not restart the LO phase")
	}
}

func TestMixerNoiseFigure(t *testing.T) {
	fs := 20e6
	m, err := NewMixer(MixerConfig{
		Name: "nf", ConversionGainDB: 10, NoiseFigureDB: 9,
		SampleRateHz: fs, NoiseSeed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	out := m.Process(make([]complex128, 100000))
	f := units.DBToLinear(9.0)
	want := units.WattsToDBm(units.Boltzmann*units.RoomTemperature*fs*(f-1)) + 10
	if got := units.MeanPowerDBm(out); math.Abs(got-want) > 0.3 {
		t.Errorf("mixer noise %v dBm, want %v", got, want)
	}
}

func TestMixerValidation(t *testing.T) {
	if _, err := NewMixer(MixerConfig{NoiseFigureDB: -2}); err == nil {
		t.Error("accepted negative NF")
	}
	if _, err := NewMixer(MixerConfig{NoiseFigureDB: 5}); err == nil {
		t.Error("accepted NF without sample rate")
	}
	if _, err := NewLO(LOConfig{LinewidthHz: -1}); err == nil {
		t.Error("accepted negative linewidth")
	}
	if _, err := NewLO(LOConfig{LinewidthHz: 10}); err == nil {
		t.Error("accepted linewidth without sample rate")
	}
}

// TestMixerProcessMatchesPerSample pins the frame path's pass split (noise,
// LO fill, planar kernel) to the per-sample pipeline bit for bit, phase
// noise and input noise included — the property that makes the kernels
// integration safe for every gated output.
func TestMixerProcessMatchesPerSample(t *testing.T) {
	cfg := MixerConfig{
		Name: "eq", ConversionGainDB: 3, NoiseFigureDB: 7,
		SampleRateHz: 20e6, NoiseSeed: 4,
		IQGainImbalanceDB: 0.4, IQPhaseErrorDeg: 1.5,
		EnableDC: true, DCOffsetDBm: -45,
		// Linewidth > 0 keeps the LO on the recurrence path, which is the
		// one that must match the per-sample stream exactly.
		LO: &LOConfig{LinewidthHz: 200, FrequencyOffsetHz: 1.1e5, Seed: 6},
	}
	mFrame, err := NewMixer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	mSample, err := NewMixer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := randutil.NewRand(11)
	// Odd length exercises any unroll tail in the kernels layer.
	x := make([]complex128, 1021)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	want := make([]complex128, len(x))
	for i, v := range x {
		want[i] = mSample.ProcessSample(v)
	}
	got := mFrame.Process(x)
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("sample %d: frame %v != per-sample %v", i, got[i], want[i])
		}
	}
}

// TestMixerTabledLOMatchesRationalPhase checks the noiseless rational-ratio
// frame path against the independent closed form: the phasor at sample t is
// the exact Sincos of 2*pi*((k*t) mod n)/n.
func TestMixerTabledLOMatchesRationalPhase(t *testing.T) {
	const k, n = 1, 8 // 2.5 MHz on a 20 MHz grid
	cfg := MixerConfig{
		Name: "tab", SampleRateHz: 20e6,
		IQGainImbalanceDB: 0.3, IQPhaseErrorDeg: 1,
		LO: &LOConfig{FrequencyOffsetHz: 2.5e6},
	}
	m, err := NewMixer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m.lo.table == nil {
		t.Fatal("rational noiseless LO did not build a period table")
	}
	rng := randutil.NewRand(12)
	x := make([]complex128, 3*n+5) // non-multiple of the period
	for i := range x {
		x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	in := dsp.Clone(x)
	m.Process(x)
	for i, v := range in {
		s, c := math.Sincos(2 * math.Pi * float64((k*i)%n) / float64(n))
		y := m.mu*v + m.nu*complex(real(v), -imag(v))
		y *= complex(c, s)
		y = complex(m.g*real(y), m.g*imag(y))
		y += m.dc
		if x[i] != y {
			t.Fatalf("sample %d: %v != rational-phase form %v", i, x[i], y)
		}
	}
	// A second frame continues the period walk rather than restarting it.
	y2 := m.Process([]complex128{1})
	idx := (k * len(in)) % n
	s, c := math.Sincos(2 * math.Pi * float64(idx) / float64(n))
	w := m.mu + m.nu
	w *= complex(c, s)
	w = complex(m.g*real(w), m.g*imag(w))
	if y2[0] != w+m.dc {
		t.Fatalf("second frame phasor: %v, want %v", y2[0], w+m.dc)
	}
}

func TestRationalLORatio(t *testing.T) {
	cases := []struct {
		f0, fs float64
		k, n   int
		ok     bool
	}{
		{2.5e6, 20e6, 1, 8, true},
		{-2.5e6, 20e6, -1, 8, true},
		{20e6, 160e6, 1, 8, true},
		{0, 160e6, 0, 1, true},
		{1.1e5, 20e6, 11, 2000, true},
		{math.Pi * 1e6, 20e6, 0, 0, false},
		{1e5, 0, 0, 0, false},
	}
	for _, c := range cases {
		k, n, ok := rationalLORatio(c.f0, c.fs)
		if ok != c.ok || (ok && (k != c.k || n != c.n)) {
			t.Errorf("rationalLORatio(%g, %g) = %d/%d,%v want %d/%d,%v",
				c.f0, c.fs, k, n, ok, c.k, c.n, c.ok)
		}
	}
}

func TestMixerResetReproducible(t *testing.T) {
	m, _ := NewMixer(MixerConfig{
		Name: "rep", NoiseFigureDB: 10, SampleRateHz: 20e6, NoiseSeed: 9,
		LO: &LOConfig{LinewidthHz: 1000, Seed: 8},
	})
	a := dsp.Clone(m.Process(make([]complex128, 32)))
	m.Reset()
	b := m.Process(make([]complex128, 32))
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("mixer not reproducible after Reset")
		}
	}
}
