package rf

import (
	"math"
	"math/cmplx"
	"testing"

	"wlansim/internal/dsp"
	"wlansim/internal/units"
)

func TestMixerConversionGain(t *testing.T) {
	m, err := NewMixer(MixerConfig{Name: "m", ConversionGainDB: 8})
	if err != nil {
		t.Fatal(err)
	}
	in := toneAt(512, 0.1, units.DBmToAmplitude(-30))
	out := m.Process(in)
	if got := units.MeanPowerDBm(out); math.Abs(got-(-22)) > 0.01 {
		t.Errorf("output %v dBm, want -22", got)
	}
}

func TestMixerIdealHasInfiniteImageRejection(t *testing.T) {
	m, _ := NewMixer(MixerConfig{Name: "ideal"})
	if !math.IsInf(m.ImageRejectionDB(), 1) {
		t.Errorf("ideal mixer IRR %v, want +Inf", m.ImageRejectionDB())
	}
	// Pass-through at 0 dB gain.
	x := m.ProcessSample(3 + 4i)
	if cmplx.Abs(x-(3+4i)) > 1e-12 {
		t.Errorf("ideal mixer altered the sample: %v", x)
	}
}

func TestMixerIQImbalanceCreatesImage(t *testing.T) {
	m, err := NewMixer(MixerConfig{
		Name: "iq", IQGainImbalanceDB: 0.5, IQPhaseErrorDeg: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	// A tone at +nu acquires an image at -nu whose suppression equals the
	// image rejection ratio.
	n := 1024
	bin := 100
	x := toneAt(n, float64(bin)/float64(n), 1)
	m.Process(x)
	fx := dsp.FFT(x)
	direct := cmplx.Abs(fx[bin])
	image := cmplx.Abs(fx[n-bin])
	gotIRR := 20 * math.Log10(direct/image)
	if math.Abs(gotIRR-m.ImageRejectionDB()) > 0.1 {
		t.Errorf("measured IRR %v dB, computed %v dB", gotIRR, m.ImageRejectionDB())
	}
	// Typical 0.5 dB / 2 deg imbalance gives IRR around 30 dB.
	if m.ImageRejectionDB() < 25 || m.ImageRejectionDB() > 40 {
		t.Errorf("IRR %v dB outside plausible range", m.ImageRejectionDB())
	}
}

func TestMixerDCOffset(t *testing.T) {
	m, err := NewMixer(MixerConfig{Name: "dc", EnableDC: true, DCOffsetDBm: -40})
	if err != nil {
		t.Fatal(err)
	}
	out := m.Process(make([]complex128, 1000))
	if got := units.MeanPowerDBm(out); math.Abs(got-(-40)) > 0.01 {
		t.Errorf("DC power %v dBm, want -40", got)
	}
}

func TestMixerPhaseNoiseGrowsWithLinewidth(t *testing.T) {
	variance := func(lw float64) float64 {
		m, err := NewMixer(MixerConfig{
			Name: "pn", SampleRateHz: 20e6,
			LO: &LOConfig{LinewidthHz: lw, Seed: 5},
		})
		if err != nil {
			t.Fatal(err)
		}
		x := make([]complex128, 20000)
		for i := range x {
			x[i] = 1
		}
		m.Process(x)
		var acc float64
		for _, v := range x {
			p := cmplx.Phase(v)
			acc += p * p
		}
		return acc / float64(len(x))
	}
	v0 := variance(0)
	v1 := variance(100)
	v2 := variance(10000)
	if v0 != 0 {
		t.Errorf("zero linewidth produced phase noise %v", v0)
	}
	if !(v2 > v1*10) {
		t.Errorf("phase variance %v (100 Hz) vs %v (10 kHz): not growing", v1, v2)
	}
}

func TestLOFrequencyOffset(t *testing.T) {
	lo, err := NewLO(LOConfig{FrequencyOffsetHz: 1e5, SampleRateHz: 20e6})
	if err != nil {
		t.Fatal(err)
	}
	a := lo.Next()
	b := lo.Next()
	step := cmplx.Phase(b * cmplx.Conj(a))
	want := 2 * math.Pi * 1e5 / 20e6
	if math.Abs(step-want) > 1e-12 {
		t.Errorf("phase step %v, want %v", step, want)
	}
	lo.Reset()
	if got := lo.Next(); cmplx.Abs(got-a) > 1e-15 {
		t.Error("Reset did not restart the LO phase")
	}
}

func TestMixerNoiseFigure(t *testing.T) {
	fs := 20e6
	m, err := NewMixer(MixerConfig{
		Name: "nf", ConversionGainDB: 10, NoiseFigureDB: 9,
		SampleRateHz: fs, NoiseSeed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	out := m.Process(make([]complex128, 100000))
	f := units.DBToLinear(9.0)
	want := units.WattsToDBm(units.Boltzmann*units.RoomTemperature*fs*(f-1)) + 10
	if got := units.MeanPowerDBm(out); math.Abs(got-want) > 0.3 {
		t.Errorf("mixer noise %v dBm, want %v", got, want)
	}
}

func TestMixerValidation(t *testing.T) {
	if _, err := NewMixer(MixerConfig{NoiseFigureDB: -2}); err == nil {
		t.Error("accepted negative NF")
	}
	if _, err := NewMixer(MixerConfig{NoiseFigureDB: 5}); err == nil {
		t.Error("accepted NF without sample rate")
	}
	if _, err := NewLO(LOConfig{LinewidthHz: -1}); err == nil {
		t.Error("accepted negative linewidth")
	}
	if _, err := NewLO(LOConfig{LinewidthHz: 10}); err == nil {
		t.Error("accepted linewidth without sample rate")
	}
}

func TestMixerResetReproducible(t *testing.T) {
	m, _ := NewMixer(MixerConfig{
		Name: "rep", NoiseFigureDB: 10, SampleRateHz: 20e6, NoiseSeed: 9,
		LO: &LOConfig{LinewidthHz: 1000, Seed: 8},
	})
	a := dsp.Clone(m.Process(make([]complex128, 32)))
	m.Reset()
	b := m.Process(make([]complex128, 32))
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("mixer not reproducible after Reset")
		}
	}
}
