// Package rf provides complex-baseband behavioral models of the analog RF
// receiver blocks evaluated in the paper: amplifiers with gain, noise figure
// and nonlinearity (compression point / third-order intercept / AM-PM),
// mixers with LO phase noise, I/Q imbalance and self-mixing DC offset,
// inter-stage DC-block high-pass filters, Chebyshev channel-select low-pass
// filters, automatic gain control and ADC quantization — plus the
// double-conversion receiver assembled from them and Friis cascade analysis.
//
// Conventions: signals are complex envelopes whose instantaneous power into
// 1 ohm is |x|^2; absolute powers are dBm. Each block is a streaming
// processor whose state persists across frames.
package rf

import (
	"fmt"
	"math"
	"math/cmplx"

	"wlansim/internal/kernels"
	"wlansim/internal/randutil"
	"wlansim/internal/units"
)

// Block is a streaming complex-baseband signal processor.
type Block interface {
	// Process filters a frame in place and returns it.
	Process(x []complex128) []complex128
	// Reset clears streaming state (filters, oscillators, AGC loops).
	Reset()
}

// NonlinearModel selects the AM/AM characteristic of an amplifier.
type NonlinearModel int

// Supported amplifier nonlinearity models.
const (
	// Linear disables the nonlinearity.
	Linear NonlinearModel = iota
	// Cubic is the classical third-order polynomial y = a1*x - c3*|x|^2*x
	// clamped at its saturation envelope. It reproduces the exact IIP3 and
	// the 1 dB compression point at IIP3 - 9.64 dB.
	Cubic
	// Rapp is the solid-state PA model y = g*x / (1+(|gx|/Asat)^(2p))^(1/2p)
	// with smoothness p = 2, parameterized by its 1 dB compression point.
	Rapp
)

// P1dBFromIIP3 converts an input-referred third-order intercept point to the
// input 1 dB compression point of a cubic nonlinearity (the classical
// 9.64 dB relation).
func P1dBFromIIP3(iip3DBm float64) float64 { return iip3DBm - 9.6357 }

// IIP3FromP1dB is the inverse of P1dBFromIIP3.
func IIP3FromP1dB(p1dBDBm float64) float64 { return p1dBDBm + 9.6357 }

// AmplifierConfig parameterizes an RF amplifier model.
type AmplifierConfig struct {
	// Name identifies the block in cascade reports.
	Name string
	// GainDB is the small-signal power gain.
	GainDB float64
	// NoiseFigureDB adds input-referred thermal noise over the simulation
	// bandwidth; 0 disables the noise source.
	NoiseFigureDB float64
	// Model selects the AM/AM nonlinearity.
	Model NonlinearModel
	// IIP3DBm is the input-referred third-order intercept (Cubic model).
	// Ignored when CompressionDBm is set (non-zero takes precedence is NOT
	// assumed; exactly one of the two should be set, see NewAmplifier).
	IIP3DBm float64
	// CompressionDBm is the input 1 dB compression point (Cubic or Rapp).
	CompressionDBm float64
	// UseCompression selects CompressionDBm instead of IIP3DBm as the
	// nonlinearity parameter.
	UseCompression bool
	// AMPMDegPerDB adds Saleh-like AM/PM conversion: phase shift in degrees
	// per dB of compression depth. 0 disables it.
	AMPMDegPerDB float64
	// SampleRateHz is the simulation bandwidth for the noise source.
	SampleRateHz float64
	// NoiseSeed seeds the noise generator.
	NoiseSeed int64
	// DisableNoise turns the noise source off even with a nonzero noise
	// figure, mirroring the AMS-designer limitation discussed in §4.3.
	DisableNoise bool
}

// Amplifier is a memoryless amplifier with thermal noise and optional
// compression. It implements Block.
type Amplifier struct {
	cfg   AmplifierConfig
	g     float64 // voltage gain
	c3    float64 // cubic coefficient (positive; applied as -c3|x|^2 x)
	aSat  float64 // envelope clamp (Cubic) or Rapp saturation amplitude
	aCrit float64 // input envelope where the cubic peaks (Cubic only)
	noise *randutil.Rand
	nsig  float64     // per-dimension noise sigma at the input
	nv    kernels.Vec // frame-pass noise plane scratch
}

// NewAmplifier validates the configuration and builds the model.
func NewAmplifier(cfg AmplifierConfig) (*Amplifier, error) {
	if cfg.SampleRateHz <= 0 && cfg.NoiseFigureDB > 0 && !cfg.DisableNoise {
		return nil, fmt.Errorf("rf: amplifier %q: noise figure set but no sample rate", cfg.Name)
	}
	if cfg.NoiseFigureDB < 0 {
		return nil, fmt.Errorf("rf: amplifier %q: negative noise figure", cfg.Name)
	}
	a := &Amplifier{cfg: cfg, g: units.DBToVoltageGain(cfg.GainDB)}

	switch cfg.Model {
	case Linear:
	case Cubic:
		iip3 := cfg.IIP3DBm
		if cfg.UseCompression {
			iip3 = IIP3FromP1dB(cfg.CompressionDBm)
		}
		pW := units.DBmToWatts(iip3)
		a.c3 = a.g / pW
		// Beyond the cubic's peak (input sqrt(P/3)) the polynomial folds
		// over; hold the output at the peak envelope instead (hard
		// saturation), preserving phase.
		a.aCrit = math.Sqrt(pW / 3)
		a.aSat = a.g * a.aCrit * (1 - a.aCrit*a.aCrit/pW) // = g*sqrt(P/3)*2/3
	case Rapp:
		if !cfg.UseCompression {
			return nil, fmt.Errorf("rf: amplifier %q: Rapp model requires UseCompression", cfg.Name)
		}
		// Solve |gx|/(1+(|gx|/Asat)^4)^(1/4) = |gx|*10^(-1/20) at the
		// compression input amplitude: (1+(r)^4)^(1/4) = 10^(1/20)
		// -> r = ((10^(4/20)) - 1)^(1/4), Asat = |g*x1dB| / r.
		x1 := units.DBmToAmplitude(cfg.CompressionDBm)
		r := math.Pow(units.DBToVoltageGain(4.0)-1, 0.25)
		a.aSat = a.g * x1 / r
	default:
		return nil, fmt.Errorf("rf: amplifier %q: unknown model %d", cfg.Name, cfg.Model)
	}

	if cfg.NoiseFigureDB > 0 && !cfg.DisableNoise {
		f := units.DBToLinear(cfg.NoiseFigureDB)
		np := units.Boltzmann * units.RoomTemperature * cfg.SampleRateHz * (f - 1)
		a.nsig = math.Sqrt(np / 2)
		// Concrete generator: the thermal-noise draws sit in the per-sample
		// amplifier loop, and the devirtualized ziggurat keeps the register
		// step inlined.
		a.noise = randutil.NewRandDirect(cfg.NoiseSeed)
	}
	return a, nil
}

// Config returns the amplifier configuration.
func (a *Amplifier) Config() AmplifierConfig { return a.cfg }

// Reset restarts the noise source (memoryless otherwise). Rewinding to the
// construction mark restarts the identical noise stream without re-running
// the seeding procedure.
func (a *Amplifier) Reset() {
	if a.noise != nil {
		a.noise.Rewind()
	}
}

// ProcessSample amplifies one sample.
//
//lint:hotpath
func (a *Amplifier) ProcessSample(x complex128) complex128 {
	if a.noise != nil {
		x += complex(a.noise.NormFloat64()*a.nsig, a.noise.NormFloat64()*a.nsig)
	}
	return a.amplify(x)
}

// amplify is the deterministic part of ProcessSample: the AM/AM nonlinearity
// and AM/PM rotation with the input noise already added. Split out so the
// batched front end can share one materialized noise plane across lanes and
// still run the exact per-sample arithmetic.
//
//lint:hotpath
func (a *Amplifier) amplify(x complex128) complex128 {
	switch a.cfg.Model {
	case Linear:
		return x * complex(a.g, 0)
	case Cubic:
		m2 := real(x)*real(x) + imag(x)*imag(x)
		m := math.Sqrt(m2)
		var y complex128
		if m >= a.aCrit {
			y = x * complex(a.aSat/m, 0)
		} else {
			y = x * complex(a.g-a.c3*m2, 0)
		}
		return a.applyAMPM(y, m)
	case Rapp:
		y := x * complex(a.g, 0)
		m := cmplx.Abs(y)
		if m > 0 {
			r := m / a.aSat
			y *= complex(1/math.Pow(1+r*r*r*r, 0.25), 0)
		}
		return a.applyAMPM(y, cmplx.Abs(x))
	}
	return x
}

// applyAMPM rotates the sample by the Saleh-style AM/PM phase: proportional
// to the instantaneous compression depth in dB.
//
//lint:hotpath
func (a *Amplifier) applyAMPM(y complex128, inAmp float64) complex128 {
	if a.cfg.AMPMDegPerDB == 0 || inAmp == 0 {
		return y
	}
	lin := a.g * inAmp
	out := cmplx.Abs(y)
	if out <= 0 || lin <= out {
		return y
	}
	depthDB := units.VoltageGainToDB(lin / out)
	phase := a.cfg.AMPMDegPerDB * depthDB * math.Pi / 180
	return y * cmplx.Exp(complex(0, phase))
}

// Process amplifies a frame in place and returns it.
//
// The noisy path materializes the frame's thermal-noise draws into planes
// first and then runs the deterministic nonlinearity — the same split the
// batched front end uses. It is bit-exact against a ProcessSample loop: the
// draws come from a single generator in the identical re,im-per-sample order,
// and scale-then-add performs the same two rounding steps per component.
//
//lint:hotpath
func (a *Amplifier) Process(x []complex128) []complex128 {
	if a.noise == nil || len(x) == 0 {
		for i, v := range x {
			x[i] = a.amplify(v)
		}
		return x
	}
	n := len(x)
	//lint:ignore escape inlined Vec grow: first-use plane allocation, reused afterwards
	a.nv.Grow(n)
	nre, nim := a.nv.Re, a.nv.Im
	a.noise.FillNormPairs(nre, nim)
	kernels.ScalePlane(nre, a.nsig)
	kernels.ScalePlane(nim, a.nsig)
	for i, v := range x {
		x[i] = a.amplify(v + complex(nre[i], nim[i]))
	}
	return x
}

// OutputSaturationDBm returns the block's maximum output envelope power
// (+Inf for a linear amplifier).
func (a *Amplifier) OutputSaturationDBm() float64 {
	if a.cfg.Model == Linear {
		return math.Inf(1)
	}
	return units.AmplitudeToDBm(a.aSat)
}
