package rf

import (
	"fmt"
	"math"
	"math/cmplx"

	"wlansim/internal/dsp"
	"wlansim/internal/units"
)

// This file provides the RF-specific characterization analyses the paper
// runs in SpectreRF (§3.2): measurement of gain, 1 dB compression point,
// third-order intercept point, noise figure and image rejection of a block
// by driving it with tone test benches — the simulation equivalent of the
// Periodic Steady State analyses.

// Characterizer drives Block test benches.
type Characterizer struct {
	// SampleRateHz is the test-bench rate (must match the block's noise
	// bandwidth configuration for NF measurements).
	SampleRateHz float64
	// ToneLength is the number of samples per tone measurement (a power of
	// two; default 4096).
	ToneLength int
}

// NewCharacterizer returns a test bench at the given rate.
func NewCharacterizer(sampleRateHz float64) *Characterizer {
	return &Characterizer{SampleRateHz: sampleRateHz, ToneLength: 4096}
}

func (c *Characterizer) length() int {
	if c.ToneLength >= 16 && c.ToneLength&(c.ToneLength-1) == 0 {
		return c.ToneLength
	}
	return 4096
}

// toneBinPower measures the power (watts) in a single FFT bin of the block
// output driven by tones; the block is Reset before the run and the first
// half of the record is discarded as transient.
func (c *Characterizer) tonePower(b Block, bins []int, amps []float64, measureBin int) float64 {
	n := c.length()
	x := make([]complex128, 2*n)
	for i := range x {
		for t, bin := range bins {
			ph := 2 * math.Pi * float64(bin) * float64(i) / float64(n)
			//lint:ignore hotpathexp offline tone synthesis for block characterization, not the packet path
			x[i] += complex(amps[t], 0) * cmplx.Exp(complex(0, ph))
		}
	}
	b.Reset()
	y := b.Process(x)
	seg := y[n:]
	fx := dsp.FFT(seg)
	v := fx[((measureBin%n)+n)%n] / complex(float64(n), 0)
	return real(v)*real(v) + imag(v)*imag(v)
}

// MeasureGain returns the small-signal power gain in dB at the given
// input power (dBm), using a single tone at 1/16 of the sample rate.
func (c *Characterizer) MeasureGain(b Block, pinDBm float64) float64 {
	n := c.length()
	bin := n / 16
	amp := units.DBmToAmplitude(pinDBm)
	pout := c.tonePower(b, []int{bin}, []float64{amp}, bin)
	return units.WattsToDBm(pout) - pinDBm
}

// MeasureP1dB sweeps the input power upward until the gain drops 1 dB
// below the small-signal gain and returns the input-referred compression
// point in dBm. The search covers [-80, +20] dBm in the given step (dB).
func (c *Characterizer) MeasureP1dB(b Block, stepDB float64) (float64, error) {
	if stepDB <= 0 {
		stepDB = 0.25
	}
	g0 := c.MeasureGain(b, -80)
	prev := -80.0
	for pin := -80 + stepDB; pin <= 20; pin += stepDB {
		g := c.MeasureGain(b, pin)
		if g0-g >= 1 {
			// Linear interpolation between the last two points.
			gPrev := c.MeasureGain(b, prev)
			frac := (g0 - 1 - gPrev) / (g - gPrev)
			return prev + frac*(pin-prev), nil
		}
		prev = pin
	}
	return 0, fmt.Errorf("rf: no 1 dB compression found up to +20 dBm (linear block?)")
}

// MeasureIIP3 runs the classic two-tone test at the given per-tone input
// power and extrapolates the input-referred third-order intercept:
// IIP3 = Pin + (Pfund - Pim3)/2.
func (c *Characterizer) MeasureIIP3(b Block, pinDBm float64) (float64, error) {
	n := c.length()
	b1, b2 := n/8, n/8+n/32 // two tones spaced n/32 bins
	im3 := 2*b1 - b2
	amp := units.DBmToAmplitude(pinDBm)
	pf := c.tonePower(b, []int{b1, b2}, []float64{amp, amp}, b1)
	pi := c.tonePower(b, []int{b1, b2}, []float64{amp, amp}, im3)
	if pi <= 0 {
		return 0, fmt.Errorf("rf: no IM3 product detected (linear block?)")
	}
	suppression := units.WattsToDBm(pf) - units.WattsToDBm(pi)
	return pinDBm + suppression/2, nil
}

// MeasureNoiseFigure measures the output noise of the silent block and
// returns the noise figure in dB implied by NF = Pout_noise - G - kTB, with
// B the bench sample rate. gainDB must be the block's small-signal gain.
func (c *Characterizer) MeasureNoiseFigure(b Block, gainDB float64) (float64, error) {
	if c.SampleRateHz <= 0 {
		return 0, fmt.Errorf("rf: characterizer needs a sample rate for NF")
	}
	n := c.length() * 8
	b.Reset()
	y := b.Process(make([]complex128, n))
	pn := units.MeanPower(y[n/4:])
	if pn <= 0 {
		return 0, fmt.Errorf("rf: block is noiseless")
	}
	ktb := units.ThermalNoisePower(c.SampleRateHz)
	// Pout = kTB*(F-1)*G for a block with only internal noise (no source
	// noise is injected by this bench).
	f := pn/(ktb*units.DBToLinear(gainDB)) + 1
	return units.LinearToDB(f), nil
}

// MeasureImageRejection drives a tone at +nu and returns the ratio of
// direct to image (-nu) output power in dB.
func (c *Characterizer) MeasureImageRejection(b Block, pinDBm float64) (float64, error) {
	n := c.length()
	bin := n / 8
	amp := units.DBmToAmplitude(pinDBm)
	pd := c.tonePower(b, []int{bin}, []float64{amp}, bin)
	pi := c.tonePower(b, []int{bin}, []float64{amp}, n-bin)
	if pi <= 0 {
		return math.Inf(1), nil
	}
	return units.LinearToDB(pd / pi), nil
}

// BlockReport is a datasheet-style summary of a block.
type BlockReport struct {
	GainDB           float64
	P1dBDBm          float64
	IIP3DBm          float64
	NoiseFigureDB    float64
	ImageRejectionDB float64
}

// String formats the report.
func (r BlockReport) String() string {
	fmtOne := func(v float64, unit string) string {
		if math.IsInf(v, 1) {
			return "inf"
		}
		if math.IsNaN(v) {
			return "n/a"
		}
		return fmt.Sprintf("%.2f %s", v, unit)
	}
	return fmt.Sprintf("gain %s, P1dB %s, IIP3 %s, NF %s, IRR %s",
		fmtOne(r.GainDB, "dB"), fmtOne(r.P1dBDBm, "dBm"), fmtOne(r.IIP3DBm, "dBm"),
		fmtOne(r.NoiseFigureDB, "dB"), fmtOne(r.ImageRejectionDB, "dB"))
}

// Characterize measures a complete datasheet for the block. Measurements
// that do not apply (linear block, noiseless block) come back as NaN/Inf.
func (c *Characterizer) Characterize(b Block) BlockReport {
	rep := BlockReport{GainDB: c.MeasureGain(b, -60)}
	if p1, err := c.MeasureP1dB(b, 0.25); err == nil {
		rep.P1dBDBm = p1
	} else {
		rep.P1dBDBm = math.Inf(1)
	}
	if ip3, err := c.MeasureIIP3(b, -30); err == nil {
		rep.IIP3DBm = ip3
	} else {
		rep.IIP3DBm = math.Inf(1)
	}
	if nf, err := c.MeasureNoiseFigure(b, rep.GainDB); err == nil {
		rep.NoiseFigureDB = nf
	} else {
		rep.NoiseFigureDB = math.NaN()
	}
	if irr, err := c.MeasureImageRejection(b, -60); err == nil {
		rep.ImageRejectionDB = irr
	} else {
		rep.ImageRejectionDB = math.Inf(1)
	}
	return rep
}
