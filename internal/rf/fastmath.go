package rf

import "math"

// smallAngleMax bounds the |angle| (radians) for which rotateSmall's
// truncated series stays within ~5e-12 of math.Sincos. Larger increments
// (possible in principle for extreme LO offsets or linewidths) fall back to
// the exact library call.
const smallAngleMax = 0.3

// rotateSmall returns e^{j d} for a small rotation increment d via truncated
// Taylor series in Horner form. The per-sample LO phase increment — static
// offset plus Wiener phase-noise step — is typically well below 0.1 rad, so
// the hot mixing loop avoids a math.Sincos per sample; callers must check
// |d| <= smallAngleMax and fall back to math.Sincos beyond it.
//
// Series error at the 0.3 rad bound: |sin| term ~4e-12, |cos| term ~2e-12 —
// far below the phase-noise process itself and removed periodically anyway
// by the caller's exact resynchronization from the accumulated phase.
func rotateSmall(d float64) complex128 {
	d2 := d * d
	sin := d * (1 - d2/6*(1-d2/20*(1-d2/42*(1-d2/72))))
	cos := 1 - d2/2*(1-d2/12*(1-d2/30*(1-d2/56)))
	return complex(cos, sin)
}

// expSmallMax bounds the |x| for which expSmall stays within ~1e-7 relative
// of math.Exp; the AGC's per-sample gain steps (at most the attack clamp,
// 1.5 dB = 0.173 in natural log units) fit comfortably.
const expSmallMax = 0.2

// expSmall returns e^x for small |x| <= expSmallMax via truncated series.
// Near the AGC's lock point the step shrinks to ~1e-4, where the truncation
// error is below 1e-27 relative; the caller bounds accumulated drift with a
// periodic exact recomputation regardless.
func expSmall(x float64) float64 {
	return 1 + x*(1+x/2*(1+x/3*(1+x/4*(1+x/5))))
}

// lnWide returns ln(u) for any finite u > 0 via Frexp range reduction: with
// u = m*2^k and m in [0.5, 1), ln(u) = ln(2m) + (k-1) ln 2, and 2m lies in
// [1, 2) where lnNear1's series applies. Max error ~4e-7 at the mantissa
// edge, independent of magnitude — cheaper than math.Log because the AGC's
// control law never needs more than ~1e-4 dB resolution.
func lnWide(u float64) float64 {
	m, k := math.Frexp(u)
	return lnNear1(2*m) + float64(k-1)*math.Ln2
}

// lnNear1 returns ln(u) for u in (0.5, 2) via the atanh series
// ln(u) = 2 atanh((u-1)/(u+1)), accurate to ~4e-7 at the interval edges and
// far better near u = 1 where the AGC spends almost all of its samples.
// Callers must fall back to math.Log outside (0.5, 2).
func lnNear1(u float64) float64 {
	z := (u - 1) / (u + 1)
	z2 := z * z
	return 2 * z * (1 + z2*(1.0/3+z2*(1.0/5+z2*(1.0/7+z2*(1.0/9+z2/11)))))
}
