package rf

import (
	"fmt"
	"math"
	"math/cmplx"
	"sort"

	"wlansim/internal/dsp"
	"wlansim/internal/units"
)

// This file implements the paper's "other solution" (§4, ref [6] — the
// Moult/Chen K-model): extract a black-box behavioral model of the complete
// RF subsystem from the detailed (e.g. continuous-time co-simulated)
// receiver, and instantiate that cheap black box in the system-level
// simulation instead of the expensive detailed model.
//
// The extracted KModel consists of
//   - a static AM/AM + AM/PM lookup table measured with a midband power
//     sweep (captures the front end's compression), applied first, and
//   - a complex FIR filter fitted to the small-signal frequency response
//     (captures channel filtering, droop and group delay).

// KModelConfig controls the extraction.
type KModelConfig struct {
	// SampleRateHz is the black box's I/O rate (20 MHz for the receivers
	// here; extraction probes the device at this rate).
	SampleRateHz float64
	// FilterTaps is the FIR length fitted to the frequency response (a
	// power of two; default 64).
	FilterTaps int
	// ProbeDBm is the small-signal level for the response sweep (default
	// -70 dBm).
	ProbeDBm float64
	// SweepFromDBm/SweepToDBm/SweepStepDB bound the AM/AM power sweep
	// (defaults -90..-10 in 2 dB steps).
	SweepFromDBm float64
	SweepToDBm   float64
	SweepStepDB  float64
	// SettleSamples are discarded before each measurement (default 2048).
	SettleSamples int
	// MeasureSamples are averaged per measurement (default 2048).
	MeasureSamples int
}

// DefaultKModelConfig returns extraction settings for a 20 MHz receiver.
func DefaultKModelConfig() KModelConfig {
	return KModelConfig{
		SampleRateHz:   20e6,
		FilterTaps:     64,
		ProbeDBm:       -70,
		SweepFromDBm:   -90,
		SweepToDBm:     -10,
		SweepStepDB:    2,
		SettleSamples:  2048,
		MeasureSamples: 2048,
	}
}

// amamPoint is one sample of the measured envelope transfer curve.
type amamPoint struct {
	inAmp   float64
	relGain complex128 // complex gain relative to small-signal
}

// KModel is the extracted black-box front end. It implements FrontEnd and
// runs orders of magnitude faster than the detailed model it was extracted
// from.
type KModel struct {
	fir  *dsp.ComplexFIR
	amam []amamPoint
	// SmallSignalGainDB records the measured midband gain for reporting.
	SmallSignalGainDB float64
}

var _ FrontEnd = (*KModel)(nil)

// measureComplexGain drives the device with a tone at normalized frequency
// nu and peak amplitude amp and returns the steady-state complex gain.
func measureComplexGain(fe FrontEnd, nu, amp float64, settle, measure int) complex128 {
	fe.Reset()
	n := settle + measure
	in := make([]complex128, n)
	osc := dsp.NewOscillator(nu, 0)
	for i := range in {
		in[i] = complex(amp, 0) * osc.Next()
	}
	out := fe.Process(in)
	// Correlate against the reference tone over the tail.
	ref := dsp.NewOscillator(nu, 0)
	var acc complex128
	count := 0
	start := len(out) - measure
	if start < 0 {
		start = 0
	}
	for i := 0; i < len(out); i++ {
		r := ref.Next()
		if i >= start {
			acc += out[i] * cmplx.Conj(r)
			count++
		}
	}
	if count == 0 {
		return 0
	}
	return acc / complex(float64(count)*amp, 0)
}

// ExtractKModel measures the detailed front end and builds its black-box
// equivalent. The device must be deterministic during extraction: disable
// its noise sources and phase noise first (extraction of a noisy device
// yields a noisy estimate, exactly as with the real K-model flow).
func ExtractKModel(fe FrontEnd, cfg KModelConfig) (*KModel, error) {
	if cfg.SampleRateHz <= 0 {
		return nil, fmt.Errorf("rf: kmodel sample rate %g", cfg.SampleRateHz)
	}
	taps := cfg.FilterTaps
	if taps == 0 {
		taps = 64
	}
	if taps < 8 || taps&(taps-1) != 0 {
		return nil, fmt.Errorf("rf: kmodel filter taps %d not a power of two >= 8", taps)
	}
	settle := cfg.SettleSamples
	if settle <= 0 {
		settle = 2048
	}
	measure := cfg.MeasureSamples
	if measure <= 0 {
		measure = 2048
	}
	probe := cfg.ProbeDBm
	if probe == 0 {
		probe = -70
	}
	probeAmp := units.DBmToAmplitude(probe)

	// 1. Small-signal frequency response on the FIR's own bin grid.
	h := make([]complex128, taps)
	for k := 0; k < taps; k++ {
		nu := float64(k) / float64(taps)
		if nu >= 0.5 {
			nu -= 1 // negative frequencies
		}
		h[k] = measureComplexGain(fe, nu, probeAmp, settle, measure)
	}
	fir, err := dsp.FIRFromFrequencyResponse(h)
	if err != nil {
		return nil, err
	}

	// 2. Midband AM/AM + AM/PM sweep.
	from, to, step := cfg.SweepFromDBm, cfg.SweepToDBm, cfg.SweepStepDB
	if step <= 0 {
		step = 2
	}
	if from == 0 && to == 0 {
		from, to = -90, -10
	}
	if to <= from {
		return nil, fmt.Errorf("rf: kmodel sweep bounds [%g, %g]", from, to)
	}
	const midbandNu = 0.05 // 1 MHz at 20 MHz: inside every sensible channel filter
	g0 := measureComplexGain(fe, midbandNu, probeAmp, settle, measure)
	if cmplx.Abs(g0) == 0 {
		return nil, fmt.Errorf("rf: device shows no small-signal gain")
	}
	var amam []amamPoint
	for p := from; p <= to+1e-9; p += step {
		amp := units.DBmToAmplitude(p)
		g := measureComplexGain(fe, midbandNu, amp, settle, measure)
		amam = append(amam, amamPoint{inAmp: amp, relGain: g / g0})
	}
	sort.Slice(amam, func(i, j int) bool { return amam[i].inAmp < amam[j].inAmp })

	return &KModel{
		fir:               fir,
		amam:              amam,
		SmallSignalGainDB: units.VoltageGainToDB(cmplx.Abs(g0)),
	}, nil
}

// relGainAt interpolates the relative envelope gain at input amplitude a.
func (k *KModel) relGainAt(a float64) complex128 {
	pts := k.amam
	if len(pts) == 0 {
		return 1
	}
	if a <= pts[0].inAmp {
		return pts[0].relGain // small-signal region: flat
	}
	if a >= pts[len(pts)-1].inAmp {
		// Beyond the sweep: hold the output envelope at the last measured
		// level (saturation), preserving phase behavior.
		last := pts[len(pts)-1]
		return last.relGain * complex(last.inAmp/a, 0)
	}
	i := sort.Search(len(pts), func(j int) bool { return pts[j].inAmp >= a })
	lo, hi := pts[i-1], pts[i]
	frac := (a - lo.inAmp) / (hi.inAmp - lo.inAmp)
	return lo.relGain + complex(frac, 0)*(hi.relGain-lo.relGain)
}

// Process runs the black box: static nonlinearity then the fitted linear
// response.
func (k *KModel) Process(x []complex128) []complex128 {
	for i, v := range x {
		a := cmplx.Abs(v)
		if a > 0 {
			x[i] = v * k.relGainAt(a)
		}
	}
	return k.fir.Process(x)
}

// Reset clears the filter state.
func (k *KModel) Reset() { k.fir.Reset() }

// ResponseDB reports the fitted linear response at freqHz for the given
// sample rate (diagnostics).
func (k *KModel) ResponseDB(freqHz, sampleRateHz float64) float64 {
	m := cmplx.Abs(k.fir.Response(freqHz / sampleRateHz))
	if m <= 0 {
		return math.Inf(-1)
	}
	return units.VoltageGainToDB(m)
}
