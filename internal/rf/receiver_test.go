package rf

import (
	"math"
	"testing"

	"wlansim/internal/units"
)

func TestCascadeFriisKnownValues(t *testing.T) {
	// Classic example: LNA G=20/NF=2 followed by mixer G=10/NF=10.
	res, err := Cascade([]Stage{
		{Name: "lna", GainDB: 20, NoiseFigureDB: 2, IIP3DBm: math.Inf(1)},
		{Name: "mix", GainDB: 10, NoiseFigureDB: 10, IIP3DBm: math.Inf(1)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.GainDB-30) > 1e-9 {
		t.Errorf("gain %v, want 30", res.GainDB)
	}
	// F = 1.5849 + (10-1)/100 = 1.6749 -> 2.24 dB.
	if math.Abs(res.NoiseFigureDB-2.24) > 0.01 {
		t.Errorf("NF %v dB, want 2.24", res.NoiseFigureDB)
	}
	if !math.IsInf(res.IIP3DBm, 1) {
		t.Errorf("IIP3 %v, want +Inf", res.IIP3DBm)
	}
}

func TestCascadeIIP3DominatedByLateStage(t *testing.T) {
	// A nonlinear stage after gain dominates the cascade IIP3.
	res, err := Cascade([]Stage{
		{Name: "lna", GainDB: 20, NoiseFigureDB: 2, IIP3DBm: 10},
		{Name: "pa", GainDB: 0, NoiseFigureDB: 10, IIP3DBm: 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Second stage referred to input: 0 dBm - 20 dB = -20 dBm; it dominates.
	if res.IIP3DBm > -19.5 || res.IIP3DBm < -21 {
		t.Errorf("cascade IIP3 %v dBm, want ~-20", res.IIP3DBm)
	}
}

func TestCascadeValidation(t *testing.T) {
	if _, err := Cascade(nil); err == nil {
		t.Error("accepted empty cascade")
	}
	if _, err := Cascade([]Stage{{NoiseFigureDB: -3}}); err == nil {
		t.Error("accepted NF below 0 dB")
	}
}

func TestCascadeSensitivity(t *testing.T) {
	res := CascadeResult{NoiseFigureDB: 5}
	// kTB(20 MHz) = -101 dBm; +5 NF +10 SNR = -86 dBm.
	got := res.SensitivityDBm(20e6, 10)
	if math.Abs(got+86) > 0.2 {
		t.Errorf("sensitivity %v dBm, want ~-86", got)
	}
}

func TestChebyshevLowpassHzInterface(t *testing.T) {
	f, err := NewChebyshevLowpass(5, 9e6, 0.5, 80e6)
	if err != nil {
		t.Fatal(err)
	}
	if g := f.MagnitudeDB(0, 80e6); math.Abs(g) > 0.6 {
		t.Errorf("DC gain %v dB", g)
	}
	if g := f.MagnitudeDB(9e6, 80e6); math.Abs(g+0.5) > 0.1 {
		t.Errorf("edge gain %v dB, want -0.5", g)
	}
	if g := f.MagnitudeDB(20e6, 80e6); g > -25 {
		t.Errorf("adjacent-channel rejection only %v dB", g)
	}
	if _, err := NewChebyshevLowpass(5, 9e6, 0.5, 0); err == nil {
		t.Error("accepted zero sample rate")
	}
}

func TestDCBlockHzInterface(t *testing.T) {
	f, err := NewDCBlock(150e3, 80e6)
	if err != nil {
		t.Fatal(err)
	}
	// DC decays away.
	var last complex128
	for i := 0; i < 100000; i++ {
		out := f.Process([]complex128{1})
		last = out[0]
	}
	if math.Abs(real(last)) > 1e-3 {
		t.Errorf("DC residual %v", last)
	}
	if _, err := NewDCBlock(150e3, 0); err == nil {
		t.Error("accepted zero sample rate")
	}
}

func TestChainAppliesInOrder(t *testing.T) {
	a1, _ := NewAmplifier(AmplifierConfig{Name: "a", GainDB: 10, Model: Linear})
	a2, _ := NewAmplifier(AmplifierConfig{Name: "b", GainDB: 10, Model: Linear})
	c := NewChain().Append("a", a1).Append("b", a2)
	out := c.Process([]complex128{1})
	if math.Abs(real(out[0])-10) > 1e-12 { // 20 dB total voltage gain = x10
		t.Errorf("chain output %v, want 10", out[0])
	}
	if n := c.Names(); len(n) != 2 || n[0] != "a" {
		t.Errorf("chain names %v", n)
	}
	c.Reset() // must not panic
}

func TestReceiverOutputRateAndGeometry(t *testing.T) {
	cfg := DefaultReceiverConfig(4)
	rx, err := NewReceiver(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := rx.OutputRateHz(); math.Abs(got-20e6) > 1 {
		t.Errorf("output rate %v, want 20 MHz", got)
	}
	in := noiseSignal(8000, -60, 11)
	out := rx.Process(in)
	if len(out) != 2000 {
		t.Errorf("output %d samples from 8000 at 4x, want 2000", len(out))
	}
	names := rx.BlockNames()
	if len(names) != 7 {
		t.Errorf("block chain %v, want 7 stages", names)
	}
}

func TestReceiverAmplifiesWeakSignalAboveNoiseFloor(t *testing.T) {
	cfg := DefaultReceiverConfig(1)
	rx, err := NewReceiver(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// -62 dBm in-band tone: after the chain, the AGC pulls it toward the
	// target power, and the tone dominates the output.
	in := toneAt(60000, 0.05, units.DBmToAmplitude(-62))
	out := rx.Process(in)
	settled := out[40000:]
	got := units.MeanPowerDBm(settled)
	if math.Abs(got-cfg.AGC.TargetDBm) > 2 {
		t.Errorf("output power %v dBm, want ~%v (AGC target)", got, cfg.AGC.TargetDBm)
	}
}

func TestReceiverDisableNoisePropagates(t *testing.T) {
	cfg := DefaultReceiverConfig(1)
	cfg.DisableNoise = true
	cfg.Mixer2.EnableDC = false
	cfg.ADC.Bits = 0
	rx, err := NewReceiver(cfg)
	if err != nil {
		t.Fatal(err)
	}
	out := rx.Process(make([]complex128, 4000))
	if p := units.MeanPower(out); p != 0 {
		t.Errorf("noise-disabled receiver produced %v W from silence", p)
	}
}

func TestReceiverNoiseFloorDominatedByLNA(t *testing.T) {
	// With noise on, silence at the input produces an output noise floor;
	// the cascade NF should be within a few dB of the LNA NF.
	cfg := DefaultReceiverConfig(1)
	rx, _ := NewReceiver(cfg)
	cas, err := rx.Cascade()
	if err != nil {
		t.Fatal(err)
	}
	if cas.NoiseFigureDB < cfg.LNA.NoiseFigureDB {
		t.Errorf("cascade NF %v below LNA NF", cas.NoiseFigureDB)
	}
	if cas.NoiseFigureDB > cfg.LNA.NoiseFigureDB+2 {
		t.Errorf("cascade NF %v dB: LNA no longer dominates", cas.NoiseFigureDB)
	}
}

func TestReceiverValidation(t *testing.T) {
	cfg := DefaultReceiverConfig(1)
	cfg.Oversample = 0
	if _, err := NewReceiver(cfg); err == nil {
		t.Error("accepted zero oversample")
	}
	cfg = DefaultReceiverConfig(1)
	cfg.SampleRateHz = 0
	if _, err := NewReceiver(cfg); err == nil {
		t.Error("accepted zero sample rate")
	}
	cfg = DefaultReceiverConfig(1)
	cfg.ChannelFilterEdgeHz = 50e6 // beyond Nyquist at 20 MHz
	if _, err := NewReceiver(cfg); err == nil {
		t.Error("accepted filter edge beyond Nyquist")
	}
}

func TestIdealFrontEnd(t *testing.T) {
	fe, err := NewIdealFrontEnd(2)
	if err != nil {
		t.Fatal(err)
	}
	out := fe.Process(make([]complex128, 100))
	if len(out) != 50 {
		t.Errorf("ideal front end output %d, want 50", len(out))
	}
	fe.Reset()
	if _, err := NewIdealFrontEnd(0); err == nil {
		t.Error("accepted zero oversample")
	}
}

func TestReceiverResetReproducible(t *testing.T) {
	cfg := DefaultReceiverConfig(1)
	rx, _ := NewReceiver(cfg)
	in := noiseSignal(2000, -50, 13)
	ref := make([]complex128, len(in))
	copy(ref, in)
	out1 := rx.Process(in)
	a := make([]complex128, len(out1))
	copy(a, out1)
	rx.Reset()
	out2 := rx.Process(ref)
	for i := range a {
		if a[i] != out2[i] {
			t.Fatal("receiver not reproducible after Reset")
		}
	}
}
