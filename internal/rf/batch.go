package rf

import (
	"fmt"

	"wlansim/internal/dsp"
	"wlansim/internal/kernels"
	"wlansim/internal/units"
)

// The batched front end runs B equal-length antenna frames — equal-config
// sweep points that differ only in their additive channel noise — through
// the behavioral receiver in lock-step. Exactness is the contract: lane b is
// bit-identical to Reset + Process on the sequential receiver, which the
// differential front-end test pins frame for frame.
//
// The batch wins come from three places, none of which changes a bit:
//
//   - Every internal stochastic stream (amplifier and mixer noise, LO phase
//     noise) restarts from its fixed per-block seed on Reset, so all B lanes
//     would draw the identical sequences; the batch restarts once and
//     materializes each stream into a plane shared across lanes (the
//     randutil batched-draw property).
//   - The channel filters' biquad recurrences are latency-bound; the batch
//     runs them lane-interleaved through kernels.BiquadBatch.
//   - The mixer's planar frame pass amortizes its LO planes across lanes
//     via kernels.MixApplyLOBatch.

// agcBatchState carries the per-lane AGC loop state. Only resync survives
// across packets (AGC.Reset deliberately preserves it; see
// agcResyncInterval); the gain and estimator lanes are scratch reinitialized
// from the Reset values at the top of every batch.
type agcBatchState struct {
	resync  []int
	gainLin []float64
	gainDB  []float64
	est     []float64
}

// processBatch runs the AGC loop over B lanes lane-interleaved: sample i of
// every lane is stepped before sample i+1 of any. Lane state lives in the
// batch arrays and lanes never mix, so lane l performs exactly the scalar
// Process arithmetic in exactly its order — the interleave only overlaps the
// lanes' serial est -> log -> step -> exp -> gain dependency chains, which
// bound the scalar loop's throughput.
//
//lint:hotpath batched AGC loop: per-sample gain recurrence across lanes
func (a *AGC) processBatch(lanes [][]complex128, st *agcBatchState) {
	if a.cfg.Freeze {
		// Frozen gain has no recurrence; the scalar per-lane pass is already
		// throughput-bound.
		for l, lane := range lanes {
			a.Reset()
			a.resync = st.resync[l]
			a.Process(lane)
			st.resync[l] = a.resync
		}
		return
	}
	L := len(lanes)
	n := len(lanes[0])
	// Per-lane Reset: the same three assignments AGC.Reset performs, fanned
	// across the state lanes; resync is carried from the previous packet.
	g0 := clamp(a.cfg.InitialGainDB, a.cfg.MinGainDB, a.cfg.MaxGainDB)
	lin0 := units.DBToVoltageGain(g0)
	est0 := units.DBmToWatts(a.cfg.TargetDBm)
	gainLin, gainDB, est := st.gainLin[:L], st.gainDB[:L], st.est[:L]
	resync := st.resync[:L]
	for l := 0; l < L; l++ {
		gainDB[l] = g0
		gainLin[l] = lin0
		est[l] = est0
	}
	var (
		alpha   = a.alpha
		invT    = a.invTarget
		uAtt    = a.uAttack
		uRel    = a.uRelease
		attack  = a.attack
		release = a.release
		minG    = a.cfg.MinGainDB
		maxG    = a.cfg.MaxGainDB
	)
	for i := 0; i < n; i++ {
		for l := 0; l < L; l++ {
			v := lanes[l][i]
			gl := gainLin[l]
			yr := gl * real(v)
			yi := gl * imag(v)
			lanes[l][i] = complex(yr, yi)
			p := yr*yr + yi*yi
			e := est[l] + alpha*(p-est[l])
			est[l] = e
			if e > 0 {
				u := e * invT
				var step float64
				switch {
				case u >= uAtt:
					step = -attackClampDB
				case u <= uRel:
					step = releaseClampDB
				default:
					var errDB float64
					if u > 0.5 && u < 2 {
						errDB = -tenOverLn10 * lnNear1(u)
					} else {
						errDB = -tenOverLn10 * lnWide(u)
					}
					if errDB < 0 {
						step = attack * errDB
					} else {
						step = release * errDB
					}
				}
				g := clamp(gainDB[l]+step, minG, maxG)
				//lint:ignore floateq exact no-movement check: skips the gain update only when the clamp returned the identical value, any tolerance would freeze small steps
				if g != gainDB[l] {
					d := g - gainDB[l]
					gainDB[l] = g
					resync[l]++
					if resync[l] >= agcResyncInterval || d > 2 || d < -2 {
						gainLin[l] = units.DBToVoltageGain(g)
						resync[l] = 0
					} else {
						gainLin[l] = gl * expSmall(d*lnTenOver20)
					}
				}
			}
		}
	}
}

// processBatch amplifies B lanes, drawing the shared noise stream once and
// applying the exact per-sample nonlinearity per lane.
func (a *Amplifier) processBatch(lanes [][]complex128, nre, nim []float64) {
	if a.noise == nil {
		for _, lane := range lanes {
			for i, v := range lane {
				lane[i] = a.amplify(v)
			}
		}
		return
	}
	n := len(lanes[0])
	nre, nim = nre[:n], nim[:n]
	a.noise.FillNormPairs(nre, nim)
	kernels.ScalePlane(nre, a.nsig)
	kernels.ScalePlane(nim, a.nsig)
	for _, lane := range lanes {
		for i, v := range lane {
			lane[i] = a.amplify(v + complex(nre[i], nim[i]))
		}
	}
}

// processBatchPlanar mixes B planar lanes in place: one materialized noise
// plane added component-wise (the same float adds the scalar path's complex
// add performs), one LO trajectory fill, then the planar batch kernel over
// all lanes.
func (m *Mixer) processBatchPlanar(xr, xi [][]float64, nre, nim []float64) {
	n := len(xr[0])
	if n == 0 {
		return
	}
	L := len(xr)
	if m.noise != nil {
		nre, nim = nre[:n], nim[:n]
		m.noise.FillNormPairs(nre, nim)
		kernels.ScalePlane(nre, m.nsig)
		kernels.ScalePlane(nim, m.nsig)
		for l := 0; l < L; l++ {
			kernels.AddPlane(xr[l][:n], nre)
			kernels.AddPlane(xi[l][:n], nim)
		}
	}
	mur, mui := real(m.mu), imag(m.mu)
	nur, nui := real(m.nu), imag(m.nu)
	dcr, dci := real(m.dc), imag(m.dc)
	if m.lo != nil {
		if m.loFilled && m.lov.Len() == n {
			m.loFilled = false
		} else {
			m.lov.Grow(n)
			m.lo.fill(m.lov.Re, m.lov.Im)
		}
		kernels.MixApplyLOBatch(xr, xi, m.lov.Re, m.lov.Im,
			mur, mui, nur, nui, m.g, dcr, dci)
	} else {
		kernels.MixApplyBatch(xr, xi, mur, mui, nur, nui, m.g, dcr, dci)
	}
}

// BatchReceiver wraps a Receiver with lane-parallel scratch so equal-config
// antenna frames can run the whole front end in lock-step. Each Process
// call is one packet across B lanes: it resets the underlying receiver
// (restarting every fixed-seed stochastic stream once for the batch) and
// produces per-lane baseband owned by the batch receiver.
type BatchReceiver struct {
	rx *Receiver

	nre, nim []float64   // shared per-batch noise plane scratch
	xr, xi   [][]float64 // per-lane planar scratch for the mixer pass
	dcb, chs *dsp.IIRBatch
	agc      agcBatchState
	outs     [][]complex128 // per-lane decimator outputs, reused
}

// NewBatchReceiver builds the lane-parallel driver for rx. The receiver
// remains usable sequentially; the batch driver owns all per-lane state.
func NewBatchReceiver(rx *Receiver) *BatchReceiver {
	b := &BatchReceiver{rx: rx}
	if rx.dcBlock != nil {
		b.dcb = dsp.NewIIRBatch(rx.dcBlock.iir)
	}
	if rx.chanSel != nil {
		b.chs = dsp.NewIIRBatch(rx.chanSel.iir)
	}
	return b
}

func (b *BatchReceiver) grow(lanes, n int) {
	if cap(b.nre) < n {
		b.nre = make([]float64, n)
		b.nim = make([]float64, n)
	}
	b.nre, b.nim = b.nre[:n], b.nim[:n]
	if len(b.xr) < lanes {
		xr := make([][]float64, lanes)
		xi := make([][]float64, lanes)
		copy(xr, b.xr)
		copy(xi, b.xi)
		b.xr, b.xi = xr, xi
		outs := make([][]complex128, lanes)
		copy(outs, b.outs)
		b.outs = outs
		resync := make([]int, lanes)
		copy(resync, b.agc.resync)
		b.agc.resync = resync
		b.agc.gainLin = make([]float64, lanes)
		b.agc.gainDB = make([]float64, lanes)
		b.agc.est = make([]float64, lanes)
	}
	for l := 0; l < lanes; l++ {
		if cap(b.xr[l]) < n {
			b.xr[l] = make([]float64, n)
			b.xi[l] = make([]float64, n)
		}
		b.xr[l] = b.xr[l][:n]
		b.xi[l] = b.xi[l][:n]
	}
}

// Process runs one packet's B antenna frames through the complete front end
// in lock-step and returns the per-lane 20 MHz baseband. All frames must
// have equal length. Inputs are modified in place up to the decimation
// stage; the returned slices are owned by the batch receiver (reused by the
// next call). Lane l is bit-identical to rx.Reset() followed by
// rx.Process(lanes[l]) on a sequential receiver carrying the same per-lane
// history (the AGC resync counter is the only state Reset preserves, and it
// is carried per lane here).
func (b *BatchReceiver) Process(lanes [][]complex128) [][]complex128 {
	L := len(lanes)
	if L == 0 {
		return nil
	}
	n := len(lanes[0])
	for l := 1; l < L; l++ {
		if len(lanes[l]) != n {
			panic(fmt.Sprintf("rf: batch lane %d length %d != lane 0 length %d", l, len(lanes[l]), n))
		}
	}
	b.grow(L, n)

	// One Reset for the batch: every fixed-seed stream restarts once and its
	// draws are shared across lanes (each lane's own restart would produce
	// the identical sequence). The per-lane filter and AGC states live in
	// the batch driver and are reset/carried below.
	b.rx.Reset()
	if b.dcb != nil {
		b.dcb.Reset()
	}
	if b.chs != nil {
		b.chs.Reset()
	}

	b.rx.lna.processBatch(lanes, b.nre, b.nim)
	prefillLOPair(b.rx.mixer1, b.rx.mixer2, n)

	// The mixer/filter segment runs planar end to end: one conversion in,
	// one out, with the noise adds, LO mixing, and biquad cascades all
	// working the same planes. Conversions are pure load/store, so fusing
	// them changes no arithmetic.
	xr, xi := b.xr[:L], b.xi[:L]
	for l, lane := range lanes {
		kernels.Deinterleave(xr[l], xi[l], lane)
	}
	b.rx.mixer1.processBatchPlanar(xr, xi, b.nre, b.nim)
	if b.dcb != nil {
		b.dcb.ProcessPlanar(xr, xi)
	}
	b.rx.mixer2.processBatchPlanar(xr, xi, b.nre, b.nim)
	if b.chs != nil {
		b.chs.ProcessPlanar(xr, xi)
	}
	for l, lane := range lanes {
		kernels.Interleave(lane, xr[l], xi[l])
	}

	b.rx.agc.processBatch(lanes, &b.agc)
	for _, lane := range lanes {
		b.rx.adc.Process(lane)
	}
	for l, lane := range lanes {
		b.rx.decim.Reset()
		b.outs[l] = b.rx.decim.ProcessInto(b.outs[l][:0], lane)
	}
	return b.outs[:L]
}
