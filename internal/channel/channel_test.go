package channel

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"

	"wlansim/internal/dsp"
	"wlansim/internal/units"
)

func constantSignal(n int, v complex128) []complex128 {
	x := make([]complex128, n)
	for i := range x {
		x[i] = v
	}
	return x
}

func TestAWGNPowerAndStatistics(t *testing.T) {
	a := NewAWGN(2.0, 1)
	n := 200000
	var sumP float64
	var sum complex128
	for i := 0; i < n; i++ {
		s := a.Sample()
		sumP += real(s)*real(s) + imag(s)*imag(s)
		sum += s
	}
	meanP := sumP / float64(n)
	if math.Abs(meanP-2) > 0.05 {
		t.Errorf("noise power %v, want 2", meanP)
	}
	if cmplx.Abs(sum)/float64(n) > 0.02 {
		t.Errorf("noise mean %v not ~0", sum)
	}
}

func TestAWGNZeroAndNegativePower(t *testing.T) {
	a := NewAWGN(0, 2)
	if a.Sample() != 0 {
		t.Error("zero-power noise not zero")
	}
	b := NewAWGN(-5, 3)
	if b.Sample() != 0 {
		t.Error("negative power should clamp to zero noise")
	}
}

func TestAddNoiseSNR(t *testing.T) {
	x := constantSignal(100000, 1) // 0 dBW signal
	np := AddNoiseSNR(x, 10, 4)
	if math.Abs(np-0.1) > 1e-12 {
		t.Errorf("noise power %v, want 0.1", np)
	}
	// Realized SNR within 0.3 dB.
	var noiseP float64
	for _, v := range x {
		d := v - 1
		noiseP += real(d)*real(d) + imag(d)*imag(d)
	}
	noiseP /= float64(len(x))
	snr := units.LinearToDB(1 / noiseP)
	if math.Abs(snr-10) > 0.3 {
		t.Errorf("realized SNR %v dB, want 10", snr)
	}
	if got := AddNoiseSNR(nil, 10, 5); got != 0 {
		t.Error("empty signal should add no noise")
	}
}

func TestMultipathImpulseResponse(t *testing.T) {
	taps := []complex128{1, 0.5i, -0.25}
	m, err := NewMultipath(taps)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]complex128, 5)
	x[0] = 1
	m.Process(x)
	want := []complex128{1, 0.5i, -0.25, 0, 0}
	for i := range want {
		if cmplx.Abs(x[i]-want[i]) > 1e-15 {
			t.Fatalf("impulse response %v, want %v", x, want)
		}
	}
}

func TestMultipathStatePersistsAcrossFrames(t *testing.T) {
	taps := []complex128{0.5, 0.5}
	m1, _ := NewMultipath(taps)
	m2, _ := NewMultipath(taps)
	x := []complex128{1, 2, 3, 4}
	batch := m1.Process(dsp.Clone(x))
	var stream []complex128
	stream = append(stream, m2.Process(dsp.Clone(x[:2]))...)
	stream = append(stream, m2.Process(dsp.Clone(x[2:]))...)
	for i := range batch {
		if batch[i] != stream[i] {
			t.Fatalf("frame boundary changed output: %v vs %v", stream, batch)
		}
	}
}

func TestMultipathValidationAndReset(t *testing.T) {
	if _, err := NewMultipath(nil); err == nil {
		t.Error("accepted empty taps")
	}
	m, _ := NewMultipath([]complex128{1, 1})
	m.Process([]complex128{1})
	m.Reset()
	out := m.Process([]complex128{1})
	if out[0] != 1 {
		t.Errorf("state not cleared by Reset: %v", out[0])
	}
}

func TestRayleighChannelNormalization(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		m, err := NewRayleighChannel(8, 3, seed)
		if err != nil {
			t.Fatal(err)
		}
		var p float64
		for _, tap := range m.Taps() {
			p += real(tap)*real(tap) + imag(tap)*imag(tap)
		}
		if math.Abs(p-1) > 1e-12 {
			t.Errorf("seed %d: tap power %v, want 1", seed, p)
		}
	}
	if _, err := NewRayleighChannel(0, 1, 1); err == nil {
		t.Error("accepted zero taps")
	}
}

func TestRayleighChannelExponentialProfile(t *testing.T) {
	// Average over many realizations: later taps carry less power.
	const trials = 300
	powers := make([]float64, 6)
	for seed := int64(0); seed < trials; seed++ {
		m, _ := NewRayleighChannel(6, 2, seed)
		for i, tap := range m.Taps() {
			powers[i] += real(tap)*real(tap) + imag(tap)*imag(tap)
		}
	}
	for i := 1; i < len(powers); i++ {
		if powers[i] >= powers[i-1] {
			t.Errorf("tap %d mean power %v >= tap %d power %v", i, powers[i], i-1, powers[i-1])
		}
	}
}

func TestMultipathFrequencyResponseMatchesProcess(t *testing.T) {
	m, _ := NewRayleighChannel(4, 2, 7)
	// A pure tone through the channel is scaled by H(nu).
	nu := 0.05
	n := 4096
	x := make([]complex128, n)
	for i := range x {
		x[i] = cmplx.Exp(complex(0, 2*math.Pi*nu*float64(i)))
	}
	ref := dsp.Clone(x)
	m.Process(x)
	h := m.FrequencyResponse(nu)
	// Compare steady-state samples.
	for i := 100; i < 200; i++ {
		if cmplx.Abs(x[i]-h*ref[i]) > 1e-9 {
			t.Fatalf("tone response mismatch at %d", i)
		}
	}
}

func TestCFORotatesPhase(t *testing.T) {
	fs := 20e6
	offset := 100e3
	c := NewCFO(offset, fs, 0)
	x := constantSignal(200, 1)
	c.Process(x)
	// Phase advance per sample is 2*pi*offset/fs.
	wantStep := 2 * math.Pi * offset / fs
	for i := 1; i < len(x); i++ {
		d := cmplx.Phase(x[i] * cmplx.Conj(x[i-1]))
		if math.Abs(d-wantStep) > 1e-9 {
			t.Fatalf("phase step %v at %d, want %v", d, i, wantStep)
		}
	}
}

func TestComposerSingleEmitterPower(t *testing.T) {
	c, err := NewComposer(1)
	if err != nil {
		t.Fatal(err)
	}
	sig := constantSignal(1000, 1+1i)
	out, err := c.Compose([]Emitter{{Samples: sig, PowerDBm: -30}})
	if err != nil {
		t.Fatal(err)
	}
	if got := units.MeanPowerDBm(out); math.Abs(got+30) > 0.01 {
		t.Errorf("composite power %v dBm, want -30", got)
	}
}

func TestComposerAdjacentChannelSpectrum(t *testing.T) {
	// Wanted at 0 Hz (-60 dBm), adjacent at +20 MHz (-44 dBm): the PSD must
	// show both humps at the right frequencies with ~16 dB offset.
	c, _ := NewComposer(4) // 80 MHz composite rate
	rng := NewAWGN(1, 9)
	mk := func(n int) []complex128 {
		x := make([]complex128, n)
		for i := range x {
			x[i] = rng.Sample()
		}
		// Bandlimit to ~8 MHz (half band at 20 MHz rate).
		f, _ := dsp.DesignLowpassFIR(63, 0.4, dsp.Blackman)
		return f.Process(x)
	}
	wanted := mk(8192)
	adj := mk(8192)
	out, err := c.Compose([]Emitter{
		{Samples: wanted, OffsetHz: 0, PowerDBm: -60},
		{Samples: adj, OffsetHz: 20e6, PowerDBm: -44},
	})
	if err != nil {
		t.Fatal(err)
	}
	psd, err := dsp.WelchPSD(out, c.CompositeRateHz(), 1024, dsp.Hann)
	if err != nil {
		t.Fatal(err)
	}
	pWanted := psd.BandPowerW(-9e6, 9e6)
	pAdj := psd.BandPowerW(11e6, 29e6)
	ratio := units.LinearToDB(pAdj / pWanted)
	if math.Abs(ratio-16) > 1.5 {
		t.Errorf("adjacent/wanted ratio %v dB, want ~16", ratio)
	}
}

func TestComposerValidation(t *testing.T) {
	if _, err := NewComposer(0); err == nil {
		t.Error("accepted zero oversample")
	}
	c, _ := NewComposer(1)
	if _, err := c.Compose(nil); err == nil {
		t.Error("accepted no emitters")
	}
	if _, err := c.Compose([]Emitter{{}}); err == nil {
		t.Error("accepted empty emitter")
	}
	// 20 MHz offset needs more than 1x oversampling.
	sig := constantSignal(16, 1)
	if _, err := c.Compose([]Emitter{{Samples: sig, OffsetHz: 20e6}}); err == nil {
		t.Error("accepted offset beyond Nyquist")
	}
}

func TestMinOversample(t *testing.T) {
	if got := MinOversample(0); got != 1 {
		t.Errorf("MinOversample(0) = %d", got)
	}
	if got := MinOversample(20e6); got != 3 {
		t.Errorf("MinOversample(20 MHz) = %d, want 3", got)
	}
	if got := MinOversample(40e6); got != 5 {
		t.Errorf("MinOversample(40 MHz) = %d, want 5", got)
	}
}

func TestComposerDelay(t *testing.T) {
	c, _ := NewComposer(2)
	sig := constantSignal(4, 1)
	out, err := c.Compose([]Emitter{{Samples: sig, PowerDBm: 0, DelaySamples: 3}})
	if err != nil {
		t.Fatal(err)
	}
	// Length covers delay + signal + the interpolation filter flush.
	if len(out) < (3+4)*2 {
		t.Fatalf("composite length %d shorter than the delayed signal", len(out))
	}
	// The first 6 composite samples hold only filter transients near zero
	// until the delayed signal starts (the interpolation filter has delay,
	// so just check leading samples are much weaker than the body).
	lead := units.MeanPower(out[:4])
	body := units.MeanPower(out[8:])
	if lead > body/10 {
		t.Errorf("delayed emitter leaks early: lead %v vs body %v", lead, body)
	}
}

func TestSampleClockOffset(t *testing.T) {
	if _, err := NewSampleClockOffset(-1e12); err == nil {
		t.Error("accepted a ratio that goes non-positive")
	}
	s, err := NewSampleClockOffset(100) // +100 ppm
	if err != nil {
		t.Fatal(err)
	}
	n := 100000
	out := s.Process(make([]complex128, n))
	want := float64(n) * (1 + 100e-6)
	if math.Abs(float64(len(out))-want) > 5 {
		t.Errorf("output %d samples, want ~%.0f", len(out), want)
	}
	s.Reset()
	if s.PPM != 100 {
		t.Errorf("PPM field %v", s.PPM)
	}
}

func TestComposerFlushesInterpolatorTail(t *testing.T) {
	// Regression: Compose used to truncate each emitter at
	// len(samples)*oversample, chopping off the interpolation filter's
	// group-delay worth of signal — the tail of the last OFDM symbol.
	// The full upsampled energy must survive composition.
	c, _ := NewComposer(3)
	sig := make([]complex128, 256)
	for i := range sig {
		sig[i] = complex(1, -0.5)
	}
	out, err := c.Compose([]Emitter{{Samples: sig, PowerDBm: 0}})
	if err != nil {
		t.Fatal(err)
	}
	// Energy conservation: the emitter is scaled to 0 dBm mean power over
	// its own extent, so the composite's total energy must be
	// 1 mW x len(sig) x oversample (amplitude preserved, 3x more samples).
	outE := units.MeanPower(out) * float64(len(out))
	wantE := units.DBmToWatts(0) * float64(len(sig)) * 3
	if math.Abs(outE-wantE) > 0.03*wantE {
		t.Errorf("composite energy %v, want ~%v (tail truncated?)", outE, wantE)
	}
}

func TestComposerPowerAccuracyProperty(t *testing.T) {
	// For any requested power, the composed emitter's mean power over its
	// extent matches to within a fraction of a dB (quick-checked).
	f := func(p8 int8, seed int64) bool {
		target := -80 + float64(int(p8)%60+60)/2 // -80..-50 dBm
		rng := rand.New(rand.NewSource(seed))
		sig := make([]complex128, 512)
		for i := range sig {
			sig[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		c, err := NewComposer(2)
		if err != nil {
			return false
		}
		out, err := c.Compose([]Emitter{{Samples: sig, PowerDBm: target}})
		if err != nil {
			return false
		}
		got := units.MeanPowerDBm(out[:len(sig)*2])
		return math.Abs(got-target) < 0.5
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
