// Package channel models the radio channel between transmitter and
// receiver: additive white Gaussian noise, frequency-selective Rayleigh
// multipath fading, static gain/path loss, carrier frequency offset, and the
// composition of adjacent-channel interferers on an oversampled baseband
// grid (paper §4.1: the transmitter is duplicated and its OFDM signal
// shifted by 20 MHz; the baseband is oversampled to satisfy the sampling
// theorem).
package channel

import (
	"fmt"
	"math"
	"math/rand"

	"wlansim/internal/dsp"
	"wlansim/internal/randutil"
	"wlansim/internal/units"
)

// AWGN is a streaming white Gaussian noise source with a fixed per-sample
// noise power (variance split equally between I and Q). It draws from the
// concrete randutil generator — bit-identical to math/rand on the same seed,
// with the register step inlined into the per-sample ziggurat draw.
type AWGN struct {
	sigma float64 // per-dimension standard deviation
	rng   *randutil.Rand
}

// NewAWGN creates a noise source with total noise power powerW per complex
// sample and the given deterministic seed.
func NewAWGN(powerW float64, seed int64) *AWGN {
	if powerW < 0 {
		powerW = 0
	}
	return &AWGN{sigma: math.Sqrt(powerW / 2), rng: randutil.NewRandDirect(seed)}
}

// AWGNFrom creates a noise source with total noise power powerW per complex
// sample that draws from an externally owned generator instead of seeding its
// own. Callers that re-draw noise per packet (the SNR sweeps' stage-split
// pipeline) keep one long-lived stream and rewind it with Mark/Rewind,
// avoiding a costly re-seed per source.
func AWGNFrom(powerW float64, rng *randutil.Rand) *AWGN {
	if powerW < 0 {
		powerW = 0
	}
	return &AWGN{sigma: math.Sqrt(powerW / 2), rng: rng}
}

// Sample returns one noise sample.
func (a *AWGN) Sample() complex128 {
	return complex(a.rng.NormFloat64()*a.sigma, a.rng.NormFloat64()*a.sigma)
}

// AddTo adds noise to x in place and returns x. The draws are materialized
// chunk-wise through the generator's inlined-fast-path fill — the same
// re,im-per-sample draw order as a Sample loop — and the scale-and-add per
// component matches Sample's arithmetic operation for operation.
func (a *AWGN) AddTo(x []complex128) []complex128 {
	const chunk = 256
	var re, im [chunk]float64
	sig := a.sigma
	for off := 0; off < len(x); off += chunk {
		seg := x[off:]
		if len(seg) > chunk {
			seg = seg[:chunk]
		}
		n := len(seg)
		a.rng.FillNormPairs(re[:n], im[:n])
		for i := range seg {
			seg[i] += complex(re[i]*sig, im[i]*sig)
		}
	}
	return x
}

// AddNoiseSNR adds white Gaussian noise to x in place so that the resulting
// signal-to-noise ratio (measured against the current mean power of x)
// equals snrDB. It returns the applied noise power in watts.
func AddNoiseSNR(x []complex128, snrDB float64, seed int64) float64 {
	p := units.MeanPower(x)
	if p <= 0 {
		return 0
	}
	n := p / units.DBToLinear(snrDB)
	NewAWGN(n, seed).AddTo(x)
	return n
}

// Multipath is a static frequency-selective channel realized as a complex
// tapped delay line. Taps persist across frames (block fading).
type Multipath struct {
	taps  []complex128
	delay []complex128
	pos   int
}

// NewMultipath creates a channel with the given complex tap gains
// (taps[0] is the direct path).
func NewMultipath(taps []complex128) (*Multipath, error) {
	if len(taps) == 0 {
		return nil, fmt.Errorf("channel: multipath needs at least one tap")
	}
	t := make([]complex128, len(taps))
	copy(t, taps)
	return &Multipath{taps: t, delay: make([]complex128, len(taps))}, nil
}

// NewRayleighChannel draws a random Rayleigh multipath realization with an
// exponential power delay profile: nTaps taps whose powers decay with the
// given rmsDelaySamples, normalized to unit total power. Tap 0 keeps a
// deterministic unit-energy share so short channels remain well conditioned.
func NewRayleighChannel(nTaps int, rmsDelaySamples float64, seed int64) (*Multipath, error) {
	if nTaps < 1 {
		return nil, fmt.Errorf("channel: nTaps %d < 1", nTaps)
	}
	if rmsDelaySamples <= 0 {
		rmsDelaySamples = 1
	}
	rng := rand.New(rand.NewSource(seed))
	taps := make([]complex128, nTaps)
	var total float64
	for i := range taps {
		p := math.Exp(-float64(i) / rmsDelaySamples)
		s := math.Sqrt(p / 2)
		taps[i] = complex(rng.NormFloat64()*s, rng.NormFloat64()*s)
		total += real(taps[i])*real(taps[i]) + imag(taps[i])*imag(taps[i])
	}
	if total <= 0 {
		taps[0] = 1
		total = 1
	}
	g := complex(1/math.Sqrt(total), 0)
	for i := range taps {
		taps[i] *= g
	}
	return NewMultipath(taps)
}

// Taps returns a copy of the channel tap gains.
func (m *Multipath) Taps() []complex128 {
	out := make([]complex128, len(m.taps))
	copy(out, m.taps)
	return out
}

// FrequencyResponse evaluates the channel response at normalized frequency
// nu (cycles per sample).
func (m *Multipath) FrequencyResponse(nu float64) complex128 {
	var h complex128
	for n, t := range m.taps {
		phase := -2 * math.Pi * nu * float64(n)
		h += t * complex(math.Cos(phase), math.Sin(phase))
	}
	return h
}

// Reset clears the delay line.
func (m *Multipath) Reset() {
	for i := range m.delay {
		m.delay[i] = 0
	}
	m.pos = 0
}

// Process convolves x with the channel taps in place and returns x. State
// persists across frames.
func (m *Multipath) Process(x []complex128) []complex128 {
	for i, v := range x {
		m.delay[m.pos] = v
		var acc complex128
		idx := m.pos
		for _, t := range m.taps {
			acc += m.delay[idx] * t
			idx--
			if idx < 0 {
				idx = len(m.delay) - 1
			}
		}
		m.pos++
		if m.pos == len(m.delay) {
			m.pos = 0
		}
		x[i] = acc
	}
	return x
}

// CFO applies a static carrier frequency offset (in Hz at the given sample
// rate) plus an initial phase, modeling oscillator mismatch between
// transmitter and receiver.
type CFO struct {
	osc *dsp.Oscillator
}

// NewCFO creates a frequency offset of offsetHz at sample rate fsHz.
func NewCFO(offsetHz, fsHz, phase float64) *CFO {
	return &CFO{osc: dsp.NewOscillator(offsetHz/fsHz, phase)}
}

// Process rotates x in place and returns x.
func (c *CFO) Process(x []complex128) []complex128 { return c.osc.MixInto(x) }

// SampleClockOffset models the sampling-clock mismatch between transmitter
// and receiver DACs/ADCs: the waveform is fractionally resampled by
// (1 + ppm*1e-6). Clause 17 allows +-20 ppm per station.
type SampleClockOffset struct {
	res *dsp.FractionalResampler
	// PPM is the configured offset in parts per million.
	PPM float64
}

// NewSampleClockOffset creates the impairment for the given offset in ppm.
func NewSampleClockOffset(ppm float64) (*SampleClockOffset, error) {
	r, err := dsp.NewFractionalResampler(1 + ppm*1e-6)
	if err != nil {
		return nil, err
	}
	return &SampleClockOffset{res: r, PPM: ppm}, nil
}

// Process returns the resampled waveform (length changes by ~ppm).
func (s *SampleClockOffset) Process(x []complex128) []complex128 {
	return s.res.Process(x)
}

// Reset clears the resampler state.
func (s *SampleClockOffset) Reset() { s.res.Reset() }
