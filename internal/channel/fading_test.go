package channel

import (
	"math"
	"math/cmplx"
	"testing"
)

func TestFadingChannelValidation(t *testing.T) {
	if _, err := NewFadingChannel(0, 1, 10, 20e6, 1); err == nil {
		t.Error("accepted zero taps")
	}
	if _, err := NewFadingChannel(3, 1, 10, 0, 1); err == nil {
		t.Error("accepted zero sample rate")
	}
	if _, err := NewFadingChannel(3, 1, -5, 20e6, 1); err == nil {
		t.Error("accepted negative Doppler")
	}
}

func TestFadingChannelMeanPowerNormalized(t *testing.T) {
	// Average received power over many independent realizations ~ input
	// power (unit-normalized profile).
	var acc float64
	const trials = 200
	for seed := int64(0); seed < trials; seed++ {
		f, err := NewFadingChannel(5, 2, 50, 20e6, seed)
		if err != nil {
			t.Fatal(err)
		}
		var p float64
		for _, tap := range f.Taps() {
			p += real(tap)*real(tap) + imag(tap)*imag(tap)
		}
		acc += p
	}
	acc /= trials
	if math.Abs(acc-1) > 0.15 {
		t.Errorf("mean channel power %v, want ~1", acc)
	}
}

func TestFadingChannelStaticWithZeroDoppler(t *testing.T) {
	f, err := NewFadingChannel(3, 2, 0, 20e6, 7)
	if err != nil {
		t.Fatal(err)
	}
	before := f.Taps()
	x := make([]complex128, 5000)
	for i := range x {
		x[i] = 1
	}
	f.Process(x)
	after := f.Taps()
	for i := range before {
		if cmplx.Abs(before[i]-after[i]) > 1e-12 {
			t.Fatalf("taps moved with zero Doppler: %v -> %v", before[i], after[i])
		}
	}
}

func TestFadingChannelTapsEvolveWithDoppler(t *testing.T) {
	f, err := NewFadingChannel(1, 1, 2000, 20e6, 9)
	if err != nil {
		t.Fatal(err)
	}
	before := f.Taps()[0]
	x := make([]complex128, 40000) // 2 ms at 20 MHz, 4 Doppler periods
	f.Process(x)
	after := f.Taps()[0]
	if cmplx.Abs(before-after) < 0.05 {
		t.Errorf("tap barely moved over 4 Doppler periods: %v -> %v", before, after)
	}
}

func TestFadingChannelCoherenceTime(t *testing.T) {
	// Autocorrelation of the tap process must decay over ~1/(2*fd).
	f, _ := NewFadingChannel(1, 1, 1000, 20e6, 11)
	n := 1 << 16
	taps := make([]complex128, n)
	for i := range taps {
		f.updateTaps()
		f.t++
		taps[i] = f.taps[0]
	}
	corr := func(lag int) float64 {
		var num complex128
		var den float64
		for i := 0; i+lag < n; i++ {
			num += taps[i+lag] * cmplx.Conj(taps[i])
			den += real(taps[i])*real(taps[i]) + imag(taps[i])*imag(taps[i])
		}
		return cmplx.Abs(num) / den
	}
	if c := corr(10); c < 0.95 {
		t.Errorf("correlation at tiny lag %v, want ~1", c)
	}
	// Half a Doppler period (10 kHz at 20 MHz = 1000 samples... fd=1 kHz ->
	// coherence ~ 20000 samples*0.4). At lag = fs/(2 fd) = 10000 the
	// correlation must have dropped substantially.
	if c := corr(10000); c > 0.9 {
		t.Errorf("correlation at half Doppler period %v, want decayed", c)
	}
}

func TestFadingChannelResetReplays(t *testing.T) {
	f, _ := NewFadingChannel(2, 1, 500, 20e6, 13)
	x := make([]complex128, 300)
	for i := range x {
		x[i] = complex(float64(i%5), 1)
	}
	a := f.Process(append([]complex128(nil), x...))
	ra := append([]complex128(nil), a...)
	f.Reset()
	b := f.Process(append([]complex128(nil), x...))
	for i := range ra {
		if ra[i] != b[i] {
			t.Fatal("Reset did not replay the fading trajectory")
		}
	}
}
