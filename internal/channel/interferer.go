package channel

import (
	"fmt"
	"math"

	"wlansim/internal/dsp"
	"wlansim/internal/units"
)

// Emitter is one signal entering the air interface: a baseband waveform at
// the native 20 MHz rate, a carrier offset from the receiver's tuned
// channel, and an absolute received power.
type Emitter struct {
	// Samples is the emitter's complex baseband waveform at the native rate.
	Samples []complex128
	// OffsetHz is the emitter's carrier offset from the wanted channel
	// (e.g. +20e6 for the first adjacent channel).
	OffsetHz float64
	// PowerDBm is the received mean power of this emitter.
	PowerDBm float64
	// DelaySamples delays the emitter start on the native 20 MHz grid.
	DelaySamples int
}

// Composer mixes a wanted signal and interferers onto a common oversampled
// baseband grid, reproducing the paper's adjacent-channel test setup. A
// Composer carries reusable scratch, so it must not be shared between
// goroutines.
type Composer struct {
	// Oversample is the integer oversampling factor relative to the native
	// 20 MHz rate. It must be large enough that every emitter's spectrum
	// fits inside the composite Nyquist band.
	Oversample int
	// NativeRateHz is the native baseband rate (20 MHz for 802.11a).
	NativeRateHz float64

	sig []complex128 // per-emitter scaling scratch
}

// NewComposer creates a composer with the given oversampling factor over a
// 20 MHz native rate.
func NewComposer(oversample int) (*Composer, error) {
	if oversample < 1 {
		return nil, fmt.Errorf("channel: oversample factor %d < 1", oversample)
	}
	return &Composer{Oversample: oversample, NativeRateHz: 20e6}, nil
}

// CompositeRateHz returns the sample rate of composed waveforms.
func (c *Composer) CompositeRateHz() float64 {
	return c.NativeRateHz * float64(c.Oversample)
}

// MinOversample returns the smallest integer oversampling factor that keeps
// an emitter at the given carrier offset (with ~18 MHz occupied bandwidth)
// inside the Nyquist band of the composite rate.
func MinOversample(maxOffsetHz float64) int {
	need := (math.Abs(maxOffsetHz) + 10e6) * 2 // edge of occupied band, two-sided
	f := int(math.Ceil(need / 20e6))
	if f < 1 {
		f = 1
	}
	return f
}

// flushNative returns the number of extra native-rate zero samples appended
// to each emitter so the interpolation filter's tail (its group delay) is
// fully flushed into the composite instead of truncated.
func (c *Composer) flushNative() int {
	if c.Oversample == 1 {
		return 0
	}
	// Default interpolator length is 48*os+1 taps at the composite rate.
	taps := 48*c.Oversample + 1
	return (taps + c.Oversample - 1) / c.Oversample
}

// Compose builds the composite received waveform. Each emitter is scaled to
// its received power, upsampled to the composite rate (with the
// interpolation filter fully flushed so no emitter loses its tail),
// frequency shifted to its carrier offset, and summed. The composite length
// covers the longest emitter (delay and filter flush included).
func (c *Composer) Compose(emitters []Emitter) ([]complex128, error) {
	return c.ComposeInto(nil, emitters)
}

// ComposeInto is Compose writing the composite into dst (grown if its
// capacity is short, reused otherwise), the allocation-free form for callers
// that carry a buffer across packets.
func (c *Composer) ComposeInto(dst []complex128, emitters []Emitter) ([]complex128, error) {
	if len(emitters) == 0 {
		return nil, fmt.Errorf("channel: no emitters")
	}
	fs := c.CompositeRateHz()
	flush := c.flushNative()
	maxLen := 0
	for i, e := range emitters {
		if len(e.Samples) == 0 {
			return nil, fmt.Errorf("channel: emitter %d is empty", i)
		}
		if need := math.Abs(e.OffsetHz) + 10e6; need > fs/2 {
			return nil, fmt.Errorf("channel: emitter %d at %+.0f Hz exceeds Nyquist band +-%.0f Hz (oversample more)",
				i, e.OffsetHz, fs/2)
		}
		if l := (e.DelaySamples + len(e.Samples) + flush) * c.Oversample; l > maxLen {
			maxLen = l
		}
	}
	if cap(dst) < maxLen {
		dst = make([]complex128, maxLen)
	}
	out := dst[:maxLen]
	for i := range out {
		out[i] = 0
	}
	for _, e := range emitters {
		need := len(e.Samples) + flush
		if cap(c.sig) < need {
			c.sig = make([]complex128, 0, need)
		}
		sig := append(c.sig[:0], e.Samples...)
		units.SetPowerDBm(sig, e.PowerDBm)
		c.sig = sig
		var hi []complex128
		if c.Oversample == 1 {
			// Factor-1 upsampling is the identity (and flush is 0), so the
			// scaled signal is summed directly.
			hi = sig
		} else {
			sig = append(sig, make([]complex128, flush)...)
			up, err := dsp.NewUpsampler(c.Oversample, 0)
			if err != nil {
				return nil, err
			}
			hi = up.Process(sig)
		}
		if e.OffsetHz != 0 {
			osc := dsp.NewOscillator(e.OffsetHz/fs, 0)
			osc.MixInto(hi)
		}
		start := e.DelaySamples * c.Oversample
		for i, v := range hi {
			if start+i < len(out) {
				out[start+i] += v
			}
		}
	}
	return out, nil
}
