package channel

import (
	"fmt"
	"math"
	"math/rand"
)

// FadingChannel is a time-varying frequency-selective Rayleigh channel: a
// tapped delay line whose complex tap gains evolve according to a
// sum-of-sinusoids (Jakes) Doppler model. With DopplerHz = 0 it degenerates
// to the static block-fading Multipath model.
type FadingChannel struct {
	nTaps int
	// per-tap Jakes oscillators
	freqs  [][]float64 // normalized Doppler frequency per oscillator
	phases [][]float64
	gains  []float64 // rms gain per tap (exponential profile)
	t      float64
	delay  []complex128
	pos    int
	taps   []complex128 // current realization (updated every sample)
}

// jakesOscillators is the number of sinusoids per tap.
const jakesOscillators = 8

// NewFadingChannel creates a channel with nTaps taps, an exponential power
// delay profile with the given rms constant (in samples), a maximum Doppler
// shift dopplerHz at sample rate fsHz, and a deterministic seed. Total mean
// tap power is normalized to one.
func NewFadingChannel(nTaps int, rmsDelaySamples, dopplerHz, fsHz float64, seed int64) (*FadingChannel, error) {
	if nTaps < 1 {
		return nil, fmt.Errorf("channel: nTaps %d < 1", nTaps)
	}
	if fsHz <= 0 {
		return nil, fmt.Errorf("channel: sample rate %g", fsHz)
	}
	if dopplerHz < 0 {
		return nil, fmt.Errorf("channel: negative Doppler %g", dopplerHz)
	}
	if rmsDelaySamples <= 0 {
		rmsDelaySamples = 1
	}
	rng := rand.New(rand.NewSource(seed))
	f := &FadingChannel{
		nTaps: nTaps,
		delay: make([]complex128, nTaps),
		taps:  make([]complex128, nTaps),
	}
	var total float64
	f.gains = make([]float64, nTaps)
	for i := range f.gains {
		p := math.Exp(-float64(i) / rmsDelaySamples)
		f.gains[i] = math.Sqrt(p)
		total += p
	}
	norm := 1 / math.Sqrt(total)
	for i := range f.gains {
		f.gains[i] *= norm
	}
	nu := dopplerHz / fsHz
	f.freqs = make([][]float64, nTaps)
	f.phases = make([][]float64, nTaps)
	for i := 0; i < nTaps; i++ {
		f.freqs[i] = make([]float64, jakesOscillators)
		f.phases[i] = make([]float64, jakesOscillators)
		for k := 0; k < jakesOscillators; k++ {
			// Classic Jakes: arrival angles uniform on the circle give
			// Doppler shifts nu*cos(theta).
			theta := 2 * math.Pi * (float64(k) + rng.Float64()) / jakesOscillators
			f.freqs[i][k] = nu * math.Cos(theta)
			f.phases[i][k] = 2 * math.Pi * rng.Float64()
		}
	}
	f.updateTaps()
	return f, nil
}

// updateTaps evaluates the Jakes sum at the current time.
func (f *FadingChannel) updateTaps() {
	scale := 1 / math.Sqrt(jakesOscillators)
	for i := range f.taps {
		var re, im float64
		for k := 0; k < jakesOscillators; k++ {
			ph := 2*math.Pi*f.freqs[i][k]*f.t + f.phases[i][k]
			re += math.Cos(ph)
			im += math.Sin(ph)
		}
		f.taps[i] = complex(f.gains[i]*scale*re, f.gains[i]*scale*im)
	}
}

// Taps returns the current tap realization.
func (f *FadingChannel) Taps() []complex128 {
	out := make([]complex128, len(f.taps))
	copy(out, f.taps)
	return out
}

// Reset restarts time and clears the delay line (the Doppler trajectory
// replays identically).
func (f *FadingChannel) Reset() {
	f.t = 0
	for i := range f.delay {
		f.delay[i] = 0
	}
	f.pos = 0
	f.updateTaps()
}

// Process convolves x with the evolving channel in place and returns x.
func (f *FadingChannel) Process(x []complex128) []complex128 {
	for i, v := range x {
		f.updateTaps()
		f.t++
		f.delay[f.pos] = v
		var acc complex128
		idx := f.pos
		for _, tap := range f.taps {
			acc += f.delay[idx] * tap
			idx--
			if idx < 0 {
				idx = len(f.delay) - 1
			}
		}
		f.pos++
		if f.pos == len(f.delay) {
			f.pos = 0
		}
		x[i] = acc
	}
	return x
}
