package bits

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFromBytesLSBFirst(t *testing.T) {
	got := FromBytes([]byte{0x01, 0x80})
	want := []byte{1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 1}
	if !Equal(got, want) {
		t.Errorf("FromBytes = %v, want %v", got, want)
	}
}

func TestToBytesRoundTripProperty(t *testing.T) {
	f := func(data []byte) bool {
		back, err := ToBytes(FromBytes(data))
		if err != nil {
			return false
		}
		if len(back) != len(data) {
			return false
		}
		for i := range data {
			if back[i] != data[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestToBytesValidation(t *testing.T) {
	if _, err := ToBytes(make([]byte, 7)); err == nil {
		t.Error("accepted non-multiple-of-8 length")
	}
	if _, err := ToBytes([]byte{0, 1, 2, 0, 0, 0, 0, 0}); err == nil {
		t.Error("accepted non-bit value")
	}
}

func TestCountErrors(t *testing.T) {
	if n := CountErrors([]byte{1, 0, 1}, []byte{1, 1, 1}); n != 1 {
		t.Errorf("CountErrors = %d, want 1", n)
	}
	if n := CountErrors([]byte{1, 0}, []byte{1, 0, 1, 1}); n != 2 {
		t.Errorf("length mismatch errors = %d, want 2", n)
	}
	if n := CountErrors(nil, nil); n != 0 {
		t.Errorf("CountErrors(nil,nil) = %d", n)
	}
}

func TestEqual(t *testing.T) {
	if !Equal([]byte{1, 0}, []byte{1, 0}) {
		t.Error("equal slices reported unequal")
	}
	if Equal([]byte{1}, []byte{1, 0}) {
		t.Error("different lengths reported equal")
	}
}

func TestParity(t *testing.T) {
	if Parity([]byte{1, 1, 0}) != 0 {
		t.Error("even ones should give parity 0")
	}
	if Parity([]byte{1, 0, 0}) != 1 {
		t.Error("odd ones should give parity 1")
	}
	if Parity(nil) != 0 {
		t.Error("empty parity should be 0")
	}
}

func TestUintLSBRoundTrip(t *testing.T) {
	f := func(v uint16) bool {
		return uint16(ParseUintLSB(Uint16LSB(v, 16))) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	// Truncated width keeps only the low bits.
	if got := ParseUintLSB(Uint16LSB(0xABC, 4)); got != 0xC {
		t.Errorf("4-bit field = %#x, want 0xC", got)
	}
}

func TestRandomBits(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	b := Random(r, 1000)
	if len(b) != 1000 {
		t.Fatalf("length %d", len(b))
	}
	ones := 0
	for _, v := range b {
		if v > 1 {
			t.Fatalf("non-bit value %d", v)
		}
		ones += int(v)
	}
	// Roughly balanced (binomial: 500 +- ~5 sigma).
	if ones < 400 || ones > 600 {
		t.Errorf("ones = %d, expected roughly 500", ones)
	}
	if len(RandomBytes(r, 16)) != 16 {
		t.Error("RandomBytes length")
	}
}
