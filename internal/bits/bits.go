// Package bits provides the bit-level utilities shared by the PHY: bit/byte
// packing in 802.11 transmission order (LSB first), pseudo-random payload
// generation, and bit-error counting.
package bits

import (
	"fmt"
	"math/rand"
)

// FromBytes expands data into bits, least-significant bit of each byte first,
// which is the transmission order used by IEEE 802.11.
func FromBytes(data []byte) []byte {
	out := make([]byte, 0, len(data)*8)
	for _, b := range data {
		for i := 0; i < 8; i++ {
			out = append(out, (b>>i)&1)
		}
	}
	return out
}

// ToBytes packs bits (values 0/1, LSB first per byte) into bytes.
// len(bits) must be a multiple of 8.
func ToBytes(bits []byte) ([]byte, error) {
	if len(bits)%8 != 0 {
		return nil, fmt.Errorf("bits: length %d not a multiple of 8", len(bits))
	}
	out := make([]byte, len(bits)/8)
	for i, b := range bits {
		if b > 1 {
			return nil, fmt.Errorf("bits: value %d at index %d is not a bit", b, i)
		}
		out[i/8] |= b << (i % 8)
	}
	return out, nil
}

// Random returns n pseudo-random bits from the given source.
func Random(r *rand.Rand, n int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = byte(r.Intn(2))
	}
	return out
}

// RandomBytes returns n pseudo-random bytes from the given source.
func RandomBytes(r *rand.Rand, n int) []byte {
	return RandomBytesInto(nil, r, n)
}

// RandomBytesInto appends n uniform random octets to dst (usually dst[:0] of
// a reused buffer) and returns the extended slice. It draws exactly the same
// sequence as RandomBytes for the same generator state.
func RandomBytesInto(dst []byte, r *rand.Rand, n int) []byte {
	need := len(dst) + n
	if cap(dst) < need {
		grown := make([]byte, len(dst), need)
		copy(grown, dst)
		dst = grown
	}
	for i := 0; i < n; i++ {
		dst = append(dst, byte(r.Intn(256)))
	}
	return dst
}

// CountErrors returns the number of positions where a and b differ, comparing
// up to the shorter length, plus the length difference (missing bits count as
// errors).
func CountErrors(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	errs := 0
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			errs++
		}
	}
	if len(a) > n {
		errs += len(a) - n
	}
	if len(b) > n {
		errs += len(b) - n
	}
	return errs
}

// Equal reports whether two bit slices are identical.
func Equal(a, b []byte) bool { return CountErrors(a, b) == 0 }

// Parity returns the even parity bit over the given bits (1 if the number of
// ones is odd).
func Parity(bits []byte) byte {
	var p byte
	for _, b := range bits {
		p ^= b & 1
	}
	return p
}

// Uint16LSB converts the low n bits of v into a bit slice, LSB first.
func Uint16LSB(v uint16, n int) []byte {
	out := make([]byte, n)
	for i := 0; i < n; i++ {
		out[i] = byte((v >> i) & 1)
	}
	return out
}

// ParseUintLSB parses an LSB-first bit slice back into an unsigned value.
func ParseUintLSB(bits []byte) uint32 {
	var v uint32
	for i, b := range bits {
		v |= uint32(b&1) << i
	}
	return v
}
