// Package trace stores and loads complex baseband captures — the stand-in
// for the SPW flow's waveform files and viewers (SigCalc, signalscan, §3.1,
// §4.3). The format is a small JSON header line followed by interleaved
// little-endian float64 I/Q samples, so captures are self-describing and
// stream-friendly.
package trace

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"math"
)

// Header describes a stored capture.
type Header struct {
	// Format identifies the container ("wlansim-trace-v1").
	Format string `json:"format"`
	// SampleRateHz is the capture's sample rate.
	SampleRateHz float64 `json:"sample_rate_hz"`
	// CenterFrequencyHz is the RF center the baseband refers to (0 if
	// unknown; 5.2e9 for the paper's channel).
	CenterFrequencyHz float64 `json:"center_frequency_hz,omitempty"`
	// Samples is the number of complex samples that follow.
	Samples int `json:"samples"`
	// Description is free-form provenance text.
	Description string `json:"description,omitempty"`
}

// formatID is the container identifier.
const formatID = "wlansim-trace-v1"

// Write stores a capture: one JSON header line, then len(x) interleaved
// I/Q float64 pairs in little-endian order.
func Write(w io.Writer, hdr Header, x []complex128) error {
	if hdr.SampleRateHz <= 0 {
		return fmt.Errorf("trace: sample rate %g must be positive", hdr.SampleRateHz)
	}
	hdr.Format = formatID
	hdr.Samples = len(x)
	bw := bufio.NewWriter(w)
	enc, err := json.Marshal(hdr)
	if err != nil {
		return err
	}
	if _, err := bw.Write(enc); err != nil {
		return err
	}
	if err := bw.WriteByte('\n'); err != nil {
		return err
	}
	buf := make([]byte, 16)
	for _, v := range x {
		binary.LittleEndian.PutUint64(buf[0:8], math.Float64bits(real(v)))
		binary.LittleEndian.PutUint64(buf[8:16], math.Float64bits(imag(v)))
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Read loads a capture written by Write.
func Read(r io.Reader) (Header, []complex128, error) {
	var hdr Header
	br := bufio.NewReader(r)
	line, err := br.ReadBytes('\n')
	if err != nil {
		return hdr, nil, fmt.Errorf("trace: reading header: %w", err)
	}
	if err := json.Unmarshal(line, &hdr); err != nil {
		return hdr, nil, fmt.Errorf("trace: parsing header: %w", err)
	}
	if hdr.Format != formatID {
		return hdr, nil, fmt.Errorf("trace: unknown format %q", hdr.Format)
	}
	if hdr.Samples < 0 {
		return hdr, nil, fmt.Errorf("trace: negative sample count %d", hdr.Samples)
	}
	if hdr.SampleRateHz <= 0 {
		return hdr, nil, fmt.Errorf("trace: header sample rate %g", hdr.SampleRateHz)
	}
	x := make([]complex128, hdr.Samples)
	buf := make([]byte, 16)
	for i := range x {
		if _, err := io.ReadFull(br, buf); err != nil {
			return hdr, nil, fmt.Errorf("trace: sample %d: %w", i, err)
		}
		re := math.Float64frombits(binary.LittleEndian.Uint64(buf[0:8]))
		im := math.Float64frombits(binary.LittleEndian.Uint64(buf[8:16]))
		x[i] = complex(re, im)
	}
	return hdr, x, nil
}
