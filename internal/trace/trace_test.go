package trace

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x := make([]complex128, 1000)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	var buf bytes.Buffer
	hdr := Header{
		SampleRateHz:      20e6,
		CenterFrequencyHz: 5.2e9,
		Description:       "test capture",
	}
	if err := Write(&buf, hdr, x); err != nil {
		t.Fatal(err)
	}
	got, y, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.SampleRateHz != 20e6 || got.CenterFrequencyHz != 5.2e9 || got.Samples != 1000 {
		t.Errorf("header %+v", got)
	}
	if got.Description != "test capture" {
		t.Errorf("description %q", got.Description)
	}
	for i := range x {
		if x[i] != y[i] {
			t.Fatalf("sample %d differs: %v vs %v", i, x[i], y[i])
		}
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(res, ims []float64) bool {
		n := len(res)
		if len(ims) < n {
			n = len(ims)
		}
		x := make([]complex128, n)
		for i := range x {
			re, im := res[i], ims[i]
			if math.IsNaN(re) || math.IsNaN(im) {
				re, im = 0, 0 // NaN != NaN breaks comparison, not storage
			}
			x[i] = complex(re, im)
		}
		var buf bytes.Buffer
		if err := Write(&buf, Header{SampleRateHz: 1e6}, x); err != nil {
			return false
		}
		_, y, err := Read(&buf)
		if err != nil || len(y) != len(x) {
			return false
		}
		for i := range x {
			if x[i] != y[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestEmptyCapture(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, Header{SampleRateHz: 1}, nil); err != nil {
		t.Fatal(err)
	}
	hdr, x, err := Read(&buf)
	if err != nil || len(x) != 0 || hdr.Samples != 0 {
		t.Errorf("empty capture round trip: %v %v %v", hdr, x, err)
	}
}

func TestWriteValidation(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, Header{}, nil); err == nil {
		t.Error("accepted zero sample rate")
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, _, err := Read(strings.NewReader("not json\n")); err == nil {
		t.Error("accepted garbage header")
	}
	if _, _, err := Read(strings.NewReader(`{"format":"other","sample_rate_hz":1,"samples":0}` + "\n")); err == nil {
		t.Error("accepted unknown format")
	}
	if _, _, err := Read(strings.NewReader(`{"format":"wlansim-trace-v1","sample_rate_hz":1,"samples":5}` + "\n")); err == nil {
		t.Error("accepted truncated payload")
	}
	if _, _, err := Read(strings.NewReader(`{"format":"wlansim-trace-v1","sample_rate_hz":0,"samples":0}` + "\n")); err == nil {
		t.Error("accepted zero sample rate header")
	}
	if _, _, err := Read(strings.NewReader(`{"format":"wlansim-trace-v1","sample_rate_hz":1,"samples":-3}` + "\n")); err == nil {
		t.Error("accepted negative sample count")
	}
	if _, _, err := Read(strings.NewReader("")); err == nil {
		t.Error("accepted empty input")
	}
}
