package lint

import "testing"

func TestHotPathExp(t *testing.T) {
	cases := []struct {
		name string
		path string
		src  string
		want []finding
	}{
		{
			name: "exp in per-sample loop",
			path: "example.com/m/internal/dsp",
			src: `package dsp

import (
	"math"
	"math/cmplx"
)

func filter(x []float64, z []complex128, tau float64) {
	for i := range x {
		x[i] = math.Exp(-x[i] / tau)
	}
	for i := range z {
		z[i] = cmplx.Exp(z[i])
	}
}
`,
			want: []finding{
				{10, "math.Exp inside a loop"},
				{13, "cmplx.Exp inside a loop"},
			},
		},
		{
			name: "hoisted call is clean",
			path: "example.com/m/internal/dsp",
			src: `package dsp

import "math"

func scale(x []float64, tau float64) {
	g := math.Exp(-1 / tau)
	for i := range x {
		x[i] *= g
	}
}
`,
			want: nil,
		},
		{
			name: "ignored with justification",
			path: "example.com/m/internal/rf",
			src: `package rf

import "math"

func table(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		//lint:ignore hotpathexp one-time table construction, not per-sample
		out[i] = math.Exp(float64(i))
	}
	return out
}
`,
			want: nil,
		},
		{
			name: "other packages are exempt",
			path: "example.com/m/internal/measure",
			src: `package measure

import "math"

func decay(x []float64) {
	for i := range x {
		x[i] = math.Exp(x[i])
	}
}
`,
			want: nil,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			diags := analyzeFixture(t, tc.path, tc.src, HotPathExp)
			checkFindings(t, diags, tc.want)
		})
	}
}
