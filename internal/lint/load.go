package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one type-checked, non-test package of the module.
type Package struct {
	// Path is the package's import path.
	Path string
	// Dir is the package's directory on disk.
	Dir string
	// Fset is the file set shared by every package of a load.
	Fset *token.FileSet
	// Files are the parsed non-test source files, sorted by name.
	Files []*ast.File
	// TPkg is the type-checked package.
	TPkg *types.Package
	// Info holds the type-checker's expression and identifier facts.
	Info *types.Info
}

// Loader parses and type-checks module packages using only the standard
// library: module-internal imports are resolved against the source tree and
// everything else is delegated to the go/importer source importer, so the
// tool needs no dependencies beyond the Go installation itself.
type Loader struct {
	fset       *token.FileSet
	moduleDir  string
	modulePath string
	pkgs       map[string]*Package
	loading    map[string]bool
	std        types.Importer
}

// NewLoader locates the module containing dir and prepares a loader for it.
func NewLoader(dir string) (*Loader, error) {
	moduleDir, err := findModuleRoot(dir)
	if err != nil {
		return nil, err
	}
	modulePath, err := readModulePath(filepath.Join(moduleDir, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		fset:       fset,
		moduleDir:  moduleDir,
		modulePath: modulePath,
		pkgs:       make(map[string]*Package),
		loading:    make(map[string]bool),
		std:        importer.ForCompiler(fset, "source", nil),
	}, nil
}

// readModulePath extracts the module path from a go.mod file.
func readModulePath(path string) (string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`), nil
		}
	}
	return "", fmt.Errorf("lint: no module directive in %s", path)
}

// inModule reports whether the import path belongs to the loader's module.
func (l *Loader) inModule(path string) bool {
	return path == l.modulePath || strings.HasPrefix(path, l.modulePath+"/")
}

// dirFor maps a module-internal import path to its directory.
func (l *Loader) dirFor(path string) string {
	rel := strings.TrimPrefix(strings.TrimPrefix(path, l.modulePath), "/")
	return filepath.Join(l.moduleDir, filepath.FromSlash(rel))
}

// importPathFor maps a directory inside the module to its import path.
func (l *Loader) importPathFor(dir string) (string, error) {
	rel, err := filepath.Rel(l.moduleDir, dir)
	if err != nil || strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("lint: %s is outside module %s", dir, l.moduleDir)
	}
	if rel == "." {
		return l.modulePath, nil
	}
	return l.modulePath + "/" + filepath.ToSlash(rel), nil
}

// Import implements types.Importer: module-internal paths are loaded from
// source, everything else comes from the standard-library source importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if !l.inModule(path) {
		return l.std.Import(path)
	}
	p, err := l.load(path)
	if err != nil {
		return nil, err
	}
	return p.TPkg, nil
}

// goFilesIn lists the non-test .go files of dir that a default `go build`
// on the host platform would compile (see fileConstraintSatisfied), sorted
// by name.
func goFilesIn(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") || strings.HasPrefix(name, ".") {
			continue
		}
		if !fileConstraintSatisfied(dir, name) {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

// load parses and type-checks one module-internal package (memoized).
func (l *Loader) load(path string) (*Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("lint: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	dir := l.dirFor(path)
	names, err := goFilesIn(dir)
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("lint: no non-test Go files in %s", dir)
	}
	files := make([]*ast.File, 0, len(names))
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := newInfo()
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", path, err)
	}
	p := &Package{Path: path, Dir: dir, Fset: l.fset, Files: files, TPkg: tpkg, Info: info}
	l.pkgs[path] = p
	return p, nil
}

// newInfo allocates the types.Info maps the analyzers rely on.
func newInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
}

// LoadPackages loads the packages matched by go-style patterns (a directory
// like ./cmd/wlanlint, or a recursive pattern like ./...), resolved relative
// to dir. Directories named testdata or vendor and hidden directories are
// skipped, as are directories with no non-test Go files.
func LoadPackages(dir string, patterns []string) ([]*Package, error) {
	type target struct {
		root      string
		recursive bool
	}
	targets := make([]target, 0, len(patterns))
	for _, pat := range patterns {
		base, recursive := strings.CutSuffix(pat, "...")
		base = strings.TrimSuffix(base, "/")
		if base == "" {
			base = "."
		}
		root := base
		if !filepath.IsAbs(root) {
			root = filepath.Join(dir, base)
		}
		targets = append(targets, target{root: root, recursive: recursive})
	}
	// Anchor the module at the first pattern so absolute patterns into
	// another module work; every pattern must stay inside that module.
	anchor := dir
	if len(targets) > 0 {
		anchor = targets[0].root
	}
	l, err := NewLoader(anchor)
	if err != nil {
		return nil, err
	}
	seen := make(map[string]bool)
	var paths []string
	add := func(d string) error {
		path, err := l.importPathFor(d)
		if err != nil {
			return err
		}
		if !seen[path] {
			seen[path] = true
			paths = append(paths, path)
		}
		return nil
	}
	for _, tg := range targets {
		root := tg.root
		if !tg.recursive {
			if err := add(root); err != nil {
				return nil, err
			}
			continue
		}
		err := filepath.WalkDir(root, func(p string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if p != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
				name == "testdata" || name == "vendor") {
				return filepath.SkipDir
			}
			names, err := goFilesIn(p)
			if err != nil || len(names) == 0 {
				return nil
			}
			return add(p)
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(paths)
	pkgs := make([]*Package, 0, len(paths))
	for _, path := range paths {
		p, err := l.load(path)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}
