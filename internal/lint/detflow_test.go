package lint

import "testing"

func TestDetFlowWallClock(t *testing.T) {
	src := `package sim

import "time"

func run() float64 {
	start := time.Now()
	work()
	return time.Since(start).Seconds()
}

func work() {}
`
	t.Run("flagged in deterministic package", func(t *testing.T) {
		diags := analyzeFixture(t, "example.com/m/internal/sim", src, DetFlow)
		checkFindings(t, diags, []finding{
			{6, "wall-clock read time.Now"},
			{8, "wall-clock read time.Since"},
		})
	})
	t.Run("front-end packages are exempt", func(t *testing.T) {
		diags := analyzeFixture(t, "example.com/m/cmd/tool", src, DetFlow)
		checkFindings(t, diags, nil)
	})
	t.Run("ignore directive suppresses", func(t *testing.T) {
		justified := `package sim

import "time"

func run() float64 {
	//lint:ignore detflow elapsed time is itself the measurement here
	start := time.Now()
	work()
	//lint:ignore detflow elapsed time is itself the measurement here
	return time.Since(start).Seconds()
}

func work() {}
`
		diags := analyzeFixture(t, "example.com/m/internal/sim", justified, DetFlow)
		checkFindings(t, diags, nil)
	})
}

// TestDetFlowAmbientTimer pins the sweep-service scheduling rule: pacing in
// a deterministic package must come through an injected clock, never the
// ambient runtime timers.
func TestDetFlowAmbientTimer(t *testing.T) {
	src := `package service

import "time"

func schedule(jobs chan struct{}) {
	time.Sleep(time.Millisecond)
	select {
	case <-jobs:
	case <-time.After(time.Second):
	}
	t := time.NewTicker(time.Second)
	defer t.Stop()
}
`
	t.Run("flagged in deterministic package", func(t *testing.T) {
		diags := analyzeFixture(t, "example.com/m/internal/service", src, DetFlow)
		checkFindings(t, diags, []finding{
			{6, "ambient timer time.Sleep"},
			{9, "ambient timer time.After"},
			{11, "ambient timer time.NewTicker"},
		})
	})
	t.Run("composition roots are exempt", func(t *testing.T) {
		diags := analyzeFixture(t, "example.com/m/cmd/wlansimd", src, DetFlow)
		checkFindings(t, diags, nil)
	})
	t.Run("injected clock passes", func(t *testing.T) {
		injected := `package service

import "time"

type Clock func() time.Duration

func stamp(clock Clock) time.Duration { return clock() }
`
		diags := analyzeFixture(t, "example.com/m/internal/service", injected, DetFlow)
		checkFindings(t, diags, nil)
	})
}

func TestDetFlowGoroutineCapture(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want []finding
	}{
		{
			name: "captured scalar write flagged",
			src: `package sim

func run() float64 {
	total := 0.0
	done := make(chan struct{})
	go func() {
		total = 1.5
		close(done)
	}()
	<-done
	return total
}
`,
			want: []finding{
				{7, `goroutine closure writes captured variable "total"`},
			},
		},
		{
			name: "captured counter increment flagged",
			src: `package sim

func run() int {
	n := 0
	done := make(chan struct{})
	go func() {
		n++
		close(done)
	}()
	<-done
	return n
}
`,
			want: []finding{
				{7, `goroutine closure writes captured variable "n"`},
			},
		},
		{
			name: "disjoint slot writes are the sanctioned pattern",
			src: `package sim

func run(pts []float64) {
	done := make(chan struct{})
	go func() {
		pts[0] = 1.5
		close(done)
	}()
	<-done
}
`,
			want: nil,
		},
		{
			name: "closure-local variables are fine",
			src: `package sim

func run() {
	done := make(chan struct{})
	go func() {
		local := 0.0
		local = local + 1
		_ = local
		close(done)
	}()
	<-done
}
`,
			want: nil,
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			checkFindings(t, analyzeFixture(t, "example.com/m/internal/sim", c.src, DetFlow), c.want)
		})
	}
}

func TestDetFlowGlobalRNGState(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want []finding
	}{
		{
			name: "package-level generator flagged",
			src: `package sim

import "math/rand"

var rng = rand.New(rand.NewSource(1))
`,
			want: []finding{
				{5, `package-level RNG state "rng"`},
			},
		},
		{
			name: "package-level source flagged",
			src: `package sim

import "math/rand"

var src rand.Source = rand.NewSource(7)
`,
			want: []finding{
				{5, `package-level RNG state "src"`},
			},
		},
		{
			name: "function-local generator is clean",
			src: `package sim

import "math/rand"

func draw(seed int64) float64 {
	rng := rand.New(rand.NewSource(seed))
	return rng.Float64()
}
`,
			want: nil,
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			checkFindings(t, analyzeFixture(t, "example.com/m/internal/sim", c.src, DetFlow), c.want)
		})
	}
}

// TestDetFlowMapRangeSeries needs a real package named measure on the other
// side of an import, so it builds a temp module instead of a single fixture.
func TestDetFlowMapRangeSeries(t *testing.T) {
	measureSrc := `package measure

// Series accumulates points in call order.
type Series struct{ Xs, Ys []float64 }

// AddPoint appends one point.
func (s *Series) AddPoint(x, y float64) {
	s.Xs = append(s.Xs, x)
	s.Ys = append(s.Ys, y)
}
`
	t.Run("map-range feeding AddPoint flagged", func(t *testing.T) {
		_, pkgs := loadTempModule(t, "fixture.example/det", map[string]string{
			"internal/measure/measure.go": measureSrc,
			"internal/sim/sim.go": `package sim

import "fixture.example/det/internal/measure"

func Plot(results map[int]float64, s *measure.Series) {
	for snr, ber := range results {
		s.AddPoint(float64(snr), ber)
	}
}
`,
		})
		diags := Run(pkgs, []*Analyzer{DetFlow})
		checkFindings(t, diags, []finding{
			{7, "Series.AddPoint called from a map-range body"},
		})
	})
	t.Run("slice-range feeding AddPoint is clean", func(t *testing.T) {
		_, pkgs := loadTempModule(t, "fixture.example/det", map[string]string{
			"internal/measure/measure.go": measureSrc,
			"internal/sim/sim.go": `package sim

import "fixture.example/det/internal/measure"

func Plot(results []float64, s *measure.Series) {
	for i, ber := range results {
		s.AddPoint(float64(i), ber)
	}
}
`,
		})
		diags := Run(pkgs, []*Analyzer{DetFlow})
		checkFindings(t, diags, nil)
	})
}
