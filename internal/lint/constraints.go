package lint

import (
	"go/build/constraint"
	"os"
	"path/filepath"
	"runtime"
	"strings"
)

// Build-constraint awareness for the loader. The per-arch SIMD tier of
// internal/kernels splits symbols across //go:build amd64 / !amd64 files, so
// listing every .go file in a directory no longer type-checks: the loader
// must select the same file set the go tool would for the host
// GOOS/GOARCH. Two mechanisms matter, both resolved here with the standard
// library only: _GOOS/_GOARCH filename suffixes and //go:build lines
// (evaluated via go/build/constraint). Tags beyond the host platform — in
// particular the purego escape hatch — are unset, matching a default
// `go build` on the host; the purego configuration is exercised separately
// by the -tags purego CI job, not by the linter.

// knownOS and knownArch mirror the go tool's recognized filename-suffix
// vocabularies (the stable subsets that can appear in this module or its
// toolchain's files).
var knownOS = map[string]bool{
	"aix": true, "android": true, "darwin": true, "dragonfly": true,
	"freebsd": true, "illumos": true, "ios": true, "js": true,
	"linux": true, "netbsd": true, "openbsd": true, "plan9": true,
	"solaris": true, "wasip1": true, "windows": true,
}

var knownArch = map[string]bool{
	"386": true, "amd64": true, "arm": true, "arm64": true,
	"loong64": true, "mips": true, "mips64": true, "mips64le": true,
	"mipsle": true, "ppc64": true, "ppc64le": true, "riscv64": true,
	"s390x": true, "wasm": true,
}

// buildTagSatisfied is the tag environment constraint expressions are
// evaluated in: the host GOOS/GOARCH, the gc toolchain, the unix umbrella
// when applicable, and every go1.N language-version tag (the loader always
// runs under the toolchain that built it). Everything else — purego,
// custom tags — is unset.
func buildTagSatisfied(tag string) bool {
	switch tag {
	case runtime.GOOS, runtime.GOARCH, "gc":
		return true
	case "unix":
		switch runtime.GOOS {
		case "aix", "android", "darwin", "dragonfly", "freebsd", "illumos",
			"ios", "linux", "netbsd", "openbsd", "solaris":
			return true
		}
		return false
	}
	return strings.HasPrefix(tag, "go1.")
}

// filenameConstraintSatisfied applies the go tool's implicit filename rules:
// name_GOOS.go, name_GOARCH.go, and name_GOOS_GOARCH.go restrict a file to
// that platform. A bare suffix with no preceding body ("amd64.go") is a
// plain name, not a constraint.
func filenameConstraintSatisfied(name string) bool {
	base := strings.TrimSuffix(name, ".go")
	parts := strings.Split(base, "_")
	if len(parts) < 2 {
		return true
	}
	last := parts[len(parts)-1]
	if knownArch[last] {
		if last != runtime.GOARCH {
			return false
		}
		if len(parts) >= 3 && knownOS[parts[len(parts)-2]] {
			return parts[len(parts)-2] == runtime.GOOS
		}
		return true
	}
	if knownOS[last] {
		return last == runtime.GOOS
	}
	return true
}

// fileConstraintSatisfied reports whether the file at dir/name would be
// compiled by a default `go build` on the host platform: filename suffix
// rules first, then the //go:build (or legacy // +build) line, which must
// appear in the leading comment block before the package clause. Unreadable
// or malformed files are included — the parser will surface the real error.
func fileConstraintSatisfied(dir, name string) bool {
	if !filenameConstraintSatisfied(name) {
		return false
	}
	data, err := os.ReadFile(filepath.Join(dir, name))
	if err != nil {
		return true
	}
	for _, line := range strings.Split(string(data), "\n") {
		trimmed := strings.TrimSpace(line)
		if trimmed == "" {
			continue
		}
		if !strings.HasPrefix(trimmed, "//") {
			break // package clause (or code): constraints must precede it
		}
		if constraint.IsGoBuild(trimmed) || constraint.IsPlusBuild(trimmed) {
			expr, err := constraint.Parse(trimmed)
			if err != nil {
				return true
			}
			return expr.Eval(buildTagSatisfied)
		}
	}
	return true
}
