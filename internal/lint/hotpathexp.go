package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// HotPathExp guards the per-sample hot paths of the signal-processing and RF
// packages against reintroducing transcendental calls inside loops. The
// packet chain runs these loops once per sample across millions of swept
// packets, and a single math.Exp/cmplx.Exp per iteration measurably moves
// the tracked BENCH_*.json trajectory (the seed code paid ~17% of packet CPU
// to exactly this pattern). Legitimate uses — one-time table construction,
// non-per-sample analysis helpers — carry a //lint:ignore hotpathexp
// directive with the justification.
var HotPathExp = &Analyzer{
	Name: "hotpathexp",
	Doc: "forbid math.Exp/cmplx.Exp (and variants) inside loops in the " +
		"internal/dsp and internal/rf hot-path packages without an explicit " +
		"//lint:ignore justification",
	Run: runHotPathExp,
}

// hotPathPkgSuffixes are the packages whose loops are presumed per-sample.
var hotPathPkgSuffixes = []string{"internal/dsp", "internal/rf"}

// expFuncs are the guarded transcendental entry points, keyed by
// "pkgpath.Name".
var expFuncs = map[string]bool{
	"math.Exp":       true,
	"math.Exp2":      true,
	"math.Expm1":     true,
	"math/cmplx.Exp": true,
}

func isHotPathPackage(path string) bool {
	for _, suf := range hotPathPkgSuffixes {
		if path == suf || strings.HasSuffix(path, "/"+suf) {
			return true
		}
	}
	return false
}

func runHotPathExp(pass *Pass) {
	if !isHotPathPackage(pass.Pkg.Path) {
		return
	}
	// First pass: collect the source spans of every loop body.
	type span struct{ lo, hi token.Pos }
	var loops []span
	inspect(pass, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.ForStmt:
			loops = append(loops, span{s.Body.Pos(), s.Body.End()})
		case *ast.RangeStmt:
			loops = append(loops, span{s.Body.Pos(), s.Body.End()})
		}
		return true
	})
	if len(loops) == 0 {
		return
	}
	inLoop := func(p token.Pos) bool {
		for _, l := range loops {
			if p >= l.lo && p < l.hi {
				return true
			}
		}
		return false
	}
	// Second pass: flag guarded calls whose position falls inside any loop.
	inspect(pass, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := pkgFunc(pass, call.Fun)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		if !expFuncs[fn.Pkg().Path()+"."+fn.Name()] || !inLoop(call.Pos()) {
			return true
		}
		pass.Reportf(call.Pos(),
			"hoist the call out of the loop (incremental rotation, lookup table, or precomputed coefficient), or justify with //lint:ignore hotpathexp <reason>",
			"transcendental %s.%s inside a loop in hot-path package %s",
			fn.Pkg().Name(), fn.Name(), pass.Pkg.Path)
		return true
	})
}
