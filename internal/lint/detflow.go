package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// DetFlow guards the determinism contract the parallel sweep executor (and
// the coming sweep service) is built on: every sweep point must be
// independently computable and bit-identical across worker counts, which
// seededrand enforces for direct RNG draws but which three other routes can
// silently break. DetFlow closes them:
//
//  1. map iteration feeding result series — Go randomizes map order, so a
//     for-range over a map whose body calls measure.Series.Add/AddPoint or
//     Figure.AddSeries produces a different curve layout every run;
//  2. wall-clock reads (time.Now/time.Since) and ambient timers
//     (time.Sleep/After/Tick/NewTimer/NewTicker/AfterFunc) inside the
//     simulation and service packages — a result that depends on the clock
//     cannot reproduce, and scheduling against the runtime clock makes the
//     sweep service's job timing untestable; timing *measurements* are the
//     one legitimate use and carry an ignore directive saying so, while
//     daemons take an injected clock from their cmd/ composition root;
//  3. goroutine closures writing variables captured from the enclosing
//     scope — unsynchronized shared writes race, and even synchronized ones
//     make results depend on goroutine scheduling; the sanctioned pattern
//     (sim.Sweep's executor) writes disjoint pre-allocated slots and
//     collects in deterministic order;
//  4. package-level RNG state (*rand.Rand / rand.Source variables) — a
//     global generator couples supposedly independent simulations through
//     function indirection seededrand's call-site check cannot follow.
var DetFlow = &Analyzer{
	Name: "detflow",
	Doc: "flag nondeterminism routes in simulator code: map iteration " +
		"feeding measure.Series, wall-clock reads in result computation, " +
		"goroutine closures writing captured variables, and package-level " +
		"RNG state",
	Run: runDetFlow,
}

// isDeterministicPackage reports whether the package carries the
// reproducibility contract. All internal simulation packages do; the lint
// tool itself and the CLI front-ends (progress timers, interactive output)
// do not.
func isDeterministicPackage(path string) bool {
	if strings.Contains(path, "internal/lint") {
		return false
	}
	return strings.HasPrefix(path, "internal/") || strings.Contains(path, "/internal/")
}

func runDetFlow(pass *Pass) {
	det := isDeterministicPackage(pass.Pkg.Path)
	inspect(pass, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.RangeStmt:
			checkMapRangeSeries(pass, s)
		case *ast.CallExpr:
			if det {
				checkWallClock(pass, s)
			}
		case *ast.GoStmt:
			if det {
				checkGoroutineCapture(pass, s)
			}
		case *ast.GenDecl:
			checkGlobalRNGState(pass, s)
		}
		return true
	})
}

// seriesOrderingMethods are the measure-package methods whose call order
// determines result layout.
var seriesOrderingMethods = map[string]map[string]bool{
	"Series": {"Add": true, "AddPoint": true},
	"Figure": {"AddSeries": true},
}

// isMeasureOrderingCall reports whether the call appends to a measure.Series
// or measure.Figure (whose point/series order is the result's layout).
func isMeasureOrderingCall(pass *Pass, call *ast.CallExpr) (string, bool) {
	fn := calleeFunc(pass, call)
	if fn == nil || fn.Pkg() == nil {
		return "", false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return "", false
	}
	recv := sig.Recv().Type()
	if p, ok := recv.(*types.Pointer); ok {
		recv = p.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok {
		return "", false
	}
	tn := named.Obj()
	if tn.Pkg() == nil || tn.Pkg().Name() != "measure" {
		return "", false
	}
	methods, ok := seriesOrderingMethods[tn.Name()]
	if !ok || !methods[fn.Name()] {
		return "", false
	}
	return tn.Name() + "." + fn.Name(), true
}

// checkMapRangeSeries flags for-range over a map whose body feeds a
// measure.Series or measure.Figure.
func checkMapRangeSeries(pass *Pass, rng *ast.RangeStmt) {
	tv, ok := pass.Pkg.Info.Types[rng.X]
	if !ok || tv.Type == nil {
		return
	}
	if _, ok := tv.Type.Underlying().(*types.Map); !ok {
		return
	}
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if name, ok := isMeasureOrderingCall(pass, call); ok {
			pass.Reportf(call.Pos(),
				"collect the keys into a slice, sort it, and iterate that instead",
				"%s called from a map-range body: map iteration order is randomized, so the series layout differs run to run", name)
		}
		return true
	})
}

// wallClockFuncs are the time-package entry points that read the clock.
var wallClockFuncs = map[string]bool{"Now": true, "Since": true, "Until": true}

// ambientTimerFuncs are the time-package entry points that schedule against
// the ambient runtime clock. The sweep service's job scheduling lives in a
// deterministic package (internal/service), where pacing must come through
// an injected clock or channel the caller controls — an ambient timer makes
// job timestamps and wake-ups untestable and couples scheduling to the
// machine the daemon happens to run on. The composition roots under cmd/
// construct the real clock and are exempt.
var ambientTimerFuncs = map[string]bool{
	"Sleep": true, "After": true, "Tick": true,
	"NewTimer": true, "NewTicker": true, "AfterFunc": true,
}

// checkWallClock flags clock reads and ambient timers inside the
// deterministic packages.
func checkWallClock(pass *Pass, call *ast.CallExpr) {
	fn := pkgFunc(pass, call.Fun)
	if fn == nil || fn.Pkg().Path() != "time" {
		return
	}
	switch {
	case wallClockFuncs[fn.Name()]:
		pass.Reportf(call.Pos(),
			"results must be a pure function of config and seed; if elapsed time is itself the measurement, justify with //lint:ignore detflow <reason>",
			"wall-clock read time.%s in deterministic package %s", fn.Name(), pass.Pkg.Path)
	case ambientTimerFuncs[fn.Name()]:
		pass.Reportf(call.Pos(),
			"inject a clock (or a caller-owned channel) from the cmd/ composition root instead of scheduling against the ambient runtime clock",
			"ambient timer time.%s in deterministic package %s", fn.Name(), pass.Pkg.Path)
	}
}

// checkGoroutineCapture flags goroutine closures that assign to variables
// declared outside the closure.
func checkGoroutineCapture(pass *Pass, g *ast.GoStmt) {
	lit, ok := unparen(g.Call.Fun).(*ast.FuncLit)
	if !ok {
		return
	}
	report := func(id *ast.Ident) {
		obj, ok := pass.Pkg.Info.Uses[id].(*types.Var)
		if !ok || obj.Pos() == token.NoPos {
			return
		}
		// Declared inside the closure (including its parameters): local.
		if obj.Pos() >= lit.Pos() && obj.Pos() < lit.End() {
			return
		}
		pass.Reportf(id.Pos(),
			"have the goroutine write a disjoint pre-allocated slot or send on a channel, and collect in deterministic order (see sim.Sweep)",
			"goroutine closure writes captured variable %q: result depends on scheduling order", id.Name)
	}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			if s.Tok == token.DEFINE {
				return true
			}
			for _, lhs := range s.Lhs {
				if id, ok := unparen(lhs).(*ast.Ident); ok {
					report(id)
				}
			}
		case *ast.IncDecStmt:
			if id, ok := unparen(s.X).(*ast.Ident); ok {
				report(id)
			}
		}
		return true
	})
}

// checkGlobalRNGState flags package-level variables holding math/rand
// generator or source state.
func checkGlobalRNGState(pass *Pass, decl *ast.GenDecl) {
	if decl.Tok != token.VAR {
		return
	}
	for _, spec := range decl.Specs {
		vs, ok := spec.(*ast.ValueSpec)
		if !ok {
			continue
		}
		for _, name := range vs.Names {
			obj, ok := pass.Pkg.Info.Defs[name].(*types.Var)
			if !ok || obj.Parent() != pass.Pkg.TPkg.Scope() {
				continue // not package-level
			}
			if !isRandStateType(obj.Type()) {
				continue
			}
			pass.Reportf(name.Pos(),
				"thread a rand.New(rand.NewSource(seed)) instance through constructors instead of sharing one globally",
				"package-level RNG state %q: shared generator couples independent simulations and races under parallel sweeps", name.Name)
		}
	}
}

// isRandStateType reports whether the type is math/rand generator or source
// state (possibly behind a pointer).
func isRandStateType(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	tn := named.Obj()
	if tn.Pkg() == nil || !randPkgs[tn.Pkg().Path()] {
		return false
	}
	switch tn.Name() {
	case "Rand", "Source", "Source64", "PCG", "ChaCha8", "Zipf":
		return true
	}
	return false
}
