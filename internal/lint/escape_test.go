package lint

import (
	"strings"
	"testing"
)

// The escape-gate tests invoke the real go toolchain on a temp module, so
// each case costs a compile; they are the fixture-level proof that the gate
// catches what the AST-level hotpathexp analyzer cannot — an actual heap
// escape decided by the compiler.

func TestEscapeCheckFlagsHotpathEscape(t *testing.T) {
	_, pkgs := loadTempModule(t, "fixture.example/esc", map[string]string{
		"hot/hot.go": `package hot

// Leak returns a fresh slice, forcing the make to escape.
//
//lint:hotpath
func Leak(n int) []int {
	return make([]int, n)
}
`,
	})
	diags, err := EscapeCheck(pkgs, Options{})
	if err != nil {
		t.Fatalf("EscapeCheck: %v", err)
	}
	if len(diags) != 1 {
		t.Fatalf("got %d finding(s) %v, want 1", len(diags), diags)
	}
	d := diags[0]
	if d.Analyzer != EscapeAnalyzerName || d.Severity != SeverityError {
		t.Errorf("finding is %s/%s, want escape/error", d.Analyzer, d.Severity)
	}
	if !strings.Contains(d.Message, "heap escape in //lint:hotpath function Leak") {
		t.Errorf("message %q does not name the hotpath function", d.Message)
	}
}

func TestEscapeCheckIgnoreDirective(t *testing.T) {
	src := `package hot

// Leak returns a fresh slice; the escape is the documented contract.
//
//lint:hotpath
func Leak(n int) []int {
	//lint:ignore escape the caller owns the returned slice by design
	return make([]int, n)
}
`
	_, pkgs := loadTempModule(t, "fixture.example/esc", map[string]string{"hot/hot.go": src})
	diags, err := EscapeCheck(pkgs, Options{StaleIgnores: true})
	if err != nil {
		t.Fatalf("EscapeCheck: %v", err)
	}
	// The directive suppresses the escape AND counts as used, so neither an
	// escape nor a staleignore finding survives.
	if len(diags) != 0 {
		t.Fatalf("got %d finding(s) %v, want 0", len(diags), diags)
	}
}

func TestEscapeCheckStaleIgnore(t *testing.T) {
	src := `package hot

// Sum allocates nothing; the directive below it suppresses nothing.
//
//lint:hotpath
func Sum(xs []int) int {
	total := 0
	//lint:ignore escape nothing escapes here anymore
	for _, x := range xs {
		total += x
	}
	return total
}
`
	_, pkgs := loadTempModule(t, "fixture.example/esc", map[string]string{"hot/hot.go": src})
	diags, err := EscapeCheck(pkgs, Options{StaleIgnores: true})
	if err != nil {
		t.Fatalf("EscapeCheck: %v", err)
	}
	if len(diags) != 1 || diags[0].Analyzer != StaleIgnoreAnalyzerName {
		t.Fatalf("got %v, want exactly one staleignore finding", diags)
	}
	// Without StaleIgnores the unused directive is tolerated.
	diags, err = EscapeCheck(pkgs, Options{})
	if err != nil {
		t.Fatalf("EscapeCheck: %v", err)
	}
	if len(diags) != 0 {
		t.Fatalf("got %v, want no findings without StaleIgnores", diags)
	}
}

func TestEscapeCheckStrayHotpathDirective(t *testing.T) {
	src := `package hot

//lint:hotpath

var x = 3
`
	_, pkgs := loadTempModule(t, "fixture.example/esc", map[string]string{"hot/hot.go": src})
	diags, err := EscapeCheck(pkgs, Options{})
	if err != nil {
		t.Fatalf("EscapeCheck: %v", err)
	}
	if len(diags) != 1 || !strings.Contains(diags[0].Message, "not in the doc comment of a function declaration") {
		t.Fatalf("got %v, want one stray-directive finding", diags)
	}
}

func TestEscapeCheckCleanHotpath(t *testing.T) {
	src := `package hot

// Scale multiplies in place: nothing escapes.
//
//lint:hotpath
func Scale(xs []float64, k float64) {
	for i := range xs {
		xs[i] *= k
	}
}
`
	_, pkgs := loadTempModule(t, "fixture.example/esc", map[string]string{"hot/hot.go": src})
	diags, err := EscapeCheck(pkgs, Options{StaleIgnores: true})
	if err != nil {
		t.Fatalf("EscapeCheck: %v", err)
	}
	if len(diags) != 0 {
		t.Fatalf("got %v, want no findings", diags)
	}
}
