package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// analyzeFixture type-checks one fixture file as package path and runs the
// given analyzers over it.
func analyzeFixture(t *testing.T, path, src string, analyzers ...*Analyzer) []Diagnostic {
	t.Helper()
	return analyzeFixtureOpts(t, path, src, Options{}, analyzers...)
}

// analyzeFixtureOpts is analyzeFixture with explicit run options (e.g. stale
// ignore-directive detection).
func analyzeFixtureOpts(t *testing.T, path, src string, opts Options, analyzers ...*Analyzer) []Diagnostic {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "fixture.go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse fixture: %v", err)
	}
	info := newInfo()
	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	tpkg, err := conf.Check(path, fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatalf("type-check fixture: %v", err)
	}
	pkg := &Package{Path: path, Dir: ".", Fset: fset, Files: []*ast.File{f}, TPkg: tpkg, Info: info}
	return RunOpts([]*Package{pkg}, analyzers, opts)
}

// loadTempModule writes the files (paths relative to the module root, which
// gets a go.mod automatically) into a temp directory and loads every package
// in it. Used by the cross-package and escape-gate tests, which need real
// package boundaries rather than a single fixture file.
func loadTempModule(t *testing.T, modpath string, files map[string]string) (string, []*Package) {
	t.Helper()
	dir := t.TempDir()
	all := map[string]string{"go.mod": "module " + modpath + "\n\ngo 1.22\n"}
	for name, src := range files {
		all[name] = src
	}
	for name, src := range all {
		path := filepath.Join(dir, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	pkgs, err := LoadPackages(dir, []string{dir + string(filepath.Separator) + "..."})
	if err != nil {
		t.Fatalf("loading temp module: %v", err)
	}
	return dir, pkgs
}

// finding is one expected diagnostic: the line it lands on and a substring
// of its message.
type finding struct {
	line int
	msg  string
}

// checkFindings asserts the diagnostics exactly match the expectations.
func checkFindings(t *testing.T, diags []Diagnostic, want []finding) {
	t.Helper()
	var got []string
	for _, d := range diags {
		got = append(got, fmt.Sprintf("%d: %s", d.Pos.Line, d.Message))
	}
	if len(diags) != len(want) {
		t.Fatalf("got %d finding(s):\n  %s\nwant %d", len(diags), strings.Join(got, "\n  "), len(want))
	}
	for i, w := range want {
		if diags[i].Pos.Line != w.line || !strings.Contains(diags[i].Message, w.msg) {
			t.Errorf("finding %d = %q, want line %d containing %q", i, got[i], w.line, w.msg)
		}
	}
}

func TestUnitsDiscipline(t *testing.T) {
	cases := []struct {
		name string
		path string
		src  string
		want []finding
	}{
		{
			name: "inline pow conversions",
			path: "example.com/m/internal/rf",
			src: `package rf

import "math"

func conv(db float64) (float64, float64, float64) {
	lin := math.Pow(10, db/10)
	gain := math.Pow(10, db/20)
	neg := math.Pow(10, -db/10)
	return lin, gain, neg
}
`,
			want: []finding{
				{6, "math.Pow(10, x/10)"},
				{7, "math.Pow(10, x/20)"},
				{8, "math.Pow(10, x/10)"},
			},
		},
		{
			name: "inline log conversions",
			path: "example.com/m/internal/rf",
			src: `package rf

import "math"

func conv(lin float64) (float64, float64) {
	db := 10 * math.Log10(lin)
	gdb := 20*math.Log10(lin) + 30
	return db, gdb
}
`,
			want: []finding{
				{6, "10*math.Log10(x)"},
				{7, "20*math.Log10(x)"},
			},
		},
		{
			name: "domain mixing",
			path: "example.com/m/internal/rf",
			src: `package rf

type spec struct{ PowerDBm float64 }

func mix(gainDB, powerWatts, noiseLin float64, s spec) float64 {
	bad := gainDB * powerWatts
	bad2 := s.PowerDBm + noiseLin
	ok := gainDB - 3.0
	return bad + bad2 + ok
}
`,
			want: []finding{
				{6, `mixes dB-domain "gainDB" with linear-domain "powerWatts"`},
				{7, `mixes dB-domain "PowerDBm" with linear-domain "noiseLin"`},
			},
		},
		{
			name: "same domain and unrelated math are clean",
			path: "example.com/m/internal/rf",
			src: `package rf

import "math"

func ok(powerDBm, lossDB, aW, bW, x float64) float64 {
	return powerDBm - lossDB + aW*bW + math.Pow(10, x/3) + 7*math.Log10(x)
}
`,
			want: nil,
		},
		{
			name: "units package itself is exempt",
			path: "example.com/m/internal/units",
			src: `package units

import "math"

func DBToLinear(db float64) float64 { return math.Pow(10, db/10) }
`,
			want: nil,
		},
		{
			name: "ignore directive suppresses",
			path: "example.com/m/internal/rf",
			src: `package rf

import "math"

func conv(db float64) float64 {
	//lint:ignore unitsdiscipline exercising the raw formula on purpose
	return math.Pow(10, db/10)
}
`,
			want: nil,
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			checkFindings(t, analyzeFixture(t, c.path, c.src, UnitsDiscipline), c.want)
		})
	}
}

func TestSeededRand(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want []finding
	}{
		{
			name: "global functions flagged",
			src: `package sim

import "math/rand"

func draw() (float64, int) {
	return rand.Float64(), rand.Intn(8)
}
`,
			want: []finding{
				{6, "rand.Float64"},
				{6, "rand.Intn"},
			},
		},
		{
			name: "global function value flagged",
			src: `package sim

import "math/rand"

var gen func() float64 = rand.NormFloat64
`,
			want: []finding{
				{5, "rand.NormFloat64"},
			},
		},
		{
			name: "explicit seeded source is clean",
			src: `package sim

import "math/rand"

func draw(seed int64) float64 {
	r := rand.New(rand.NewSource(seed))
	return r.Float64()
}
`,
			want: nil,
		},
		{
			name: "time-derived seed flagged",
			src: `package sim

import (
	"math/rand"
	"time"
)

func draw() float64 {
	r := rand.New(rand.NewSource(time.Now().UnixNano()))
	return r.Float64()
}
`,
			want: []finding{
				{9, "derives its seed from time.Now"},
			},
		},
		{
			name: "ignore directive suppresses",
			src: `package sim

import "math/rand"

//lint:ignore seededrand this shuffle is not part of a reproducible experiment
var x = rand.Int()
`,
			want: nil,
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			checkFindings(t, analyzeFixture(t, "example.com/m/internal/sim", c.src, SeededRand), c.want)
		})
	}
}

func TestFloatEq(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want []finding
	}{
		{
			name: "float equality flagged",
			src: `package sim

func cmp(a, b float64, c complex128) bool {
	return a == b || a != 0.1 || c == 1i
}
`,
			want: []finding{
				{4, "compared with =="},
				{4, "compared with !="},
				{4, "compared with =="},
			},
		},
		{
			name: "zero sentinel and integers are clean",
			src: `package sim

func cmp(a float64, n int) bool {
	return a == 0 || a != 0.0 || n == 3
}
`,
			want: nil,
		},
		{
			name: "ignore directive suppresses",
			src: `package sim

func cmp(a, b float64) bool {
	//lint:ignore floateq bit-exact golden comparison is the point here
	return a == b
}
`,
			want: nil,
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			checkFindings(t, analyzeFixture(t, "example.com/m/internal/sim", c.src, FloatEq), c.want)
		})
	}
}

func TestUnkeyedConfig(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want []finding
	}{
		{
			name: "unkeyed config and params flagged",
			src: `package sim

type AmpConfig struct{ GainDB, IIP3DBm float64 }
type SweepParams struct{ Lo, Hi float64 }

var a = AmpConfig{12, -10}
var b = &SweepParams{0, 1}
var c = []AmpConfig{{3, 4}}
`,
			want: []finding{
				{6, "AmpConfig"},
				{7, "SweepParams"},
				{8, "AmpConfig"},
			},
		},
		{
			name: "keyed, unexported and unrelated literals are clean",
			src: `package sim

type AmpConfig struct{ GainDB, IIP3DBm float64 }
type point struct{ X, Y float64 }
type ampConfig struct{ G float64 }

var a = AmpConfig{GainDB: 12, IIP3DBm: -10}
var b = point{1, 2}
var c = ampConfig{3}
var d = AmpConfig{}
`,
			want: nil,
		},
		{
			name: "ignore directive suppresses",
			src: `package sim

type AmpConfig struct{ GainDB, IIP3DBm float64 }

//lint:ignore unkeyedconfig two-field literal in a table kept positional for brevity
var a = AmpConfig{12, -10}
`,
			want: nil,
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			checkFindings(t, analyzeFixture(t, "example.com/m/internal/sim", c.src, UnkeyedConfig), c.want)
		})
	}
}

func TestIgnoreDirectives(t *testing.T) {
	t.Run("all suppresses every analyzer", func(t *testing.T) {
		src := `package sim

func cmp(a, b float64) bool {
	//lint:ignore all demonstration
	return a == b
}
`
		checkFindings(t, analyzeFixture(t, "example.com/m/internal/sim", src, All()...), nil)
	})
	t.Run("wrong analyzer name does not suppress", func(t *testing.T) {
		src := `package sim

func cmp(a, b float64) bool {
	//lint:ignore unitsdiscipline wrong analyzer
	return a == b
}
`
		diags := analyzeFixture(t, "example.com/m/internal/sim", src, All()...)
		checkFindings(t, diags, []finding{{5, "compared with =="}})
	})
	t.Run("malformed directive is reported and suppresses nothing", func(t *testing.T) {
		src := `package sim

func cmp(a, b float64) bool {
	//lint:ignore missing-reason-and-unknown-name
	return a == b
}
`
		diags := analyzeFixture(t, "example.com/m/internal/sim", src, All()...)
		checkFindings(t, diags, []finding{
			{4, "malformed ignore directive"},
			{5, "compared with =="},
		})
	})
	t.Run("trailing same-line directive suppresses", func(t *testing.T) {
		src := `package sim

func cmp(a, b float64) bool {
	return a == b //lint:ignore floateq same-line justification
}
`
		checkFindings(t, analyzeFixture(t, "example.com/m/internal/sim", src, All()...), nil)
	})
}

func TestStaleIgnores(t *testing.T) {
	stale := `package sim

//lint:ignore floateq nothing on this line compares floats anymore
var x = 3
`
	t.Run("unused directive reported with StaleIgnores", func(t *testing.T) {
		diags := analyzeFixtureOpts(t, "example.com/m/internal/sim", stale, Options{StaleIgnores: true}, All()...)
		checkFindings(t, diags, []finding{{3, "suppresses no diagnostic"}})
	})
	t.Run("unused directive tolerated by default", func(t *testing.T) {
		checkFindings(t, analyzeFixture(t, "example.com/m/internal/sim", stale, All()...), nil)
	})
	t.Run("used directive is not stale", func(t *testing.T) {
		src := `package sim

func cmp(a, b float64) bool {
	//lint:ignore floateq bit-exact golden comparison is the point here
	return a == b
}
`
		diags := analyzeFixtureOpts(t, "example.com/m/internal/sim", src, Options{StaleIgnores: true}, All()...)
		checkFindings(t, diags, nil)
	})
	t.Run("escape directives are the escape gate's accounting", func(t *testing.T) {
		// An unused //lint:ignore escape must NOT be reported by the AST
		// run: only EscapeCheck knows whether it suppressed a compiler
		// diagnostic.
		src := `package sim

//lint:ignore escape accounted for by EscapeCheck, not the AST run
var x = 3
`
		diags := analyzeFixtureOpts(t, "example.com/m/internal/sim", src, Options{StaleIgnores: true}, All()...)
		checkFindings(t, diags, nil)
	})
}
