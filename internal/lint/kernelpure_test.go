package lint

import "testing"

func TestKernelPure(t *testing.T) {
	cases := []struct {
		name string
		path string
		src  string
		want []finding
	}{
		{
			name: "foreign import",
			path: "example.com/m/internal/kernels",
			src: `package kernels

import (
	"fmt"
	"math"
)

func describe(x float64) { fmt.Println(math.Abs(x)) }
`,
			want: []finding{
				{4, `imports "fmt"`},
			},
		},
		{
			name: "os import allowed for the dispatch gate",
			path: "example.com/m/internal/kernels",
			src: `package kernels

import "os"

var simdOff = os.Getenv("WLANSIM_SIMD") == "off"
`,
			want: nil,
		},
		{
			name: "allocation in hot function",
			path: "example.com/m/internal/kernels",
			src: `package kernels

func process(x []float64) []float64 {
	out := make([]float64, len(x))
	out = append(out, 1)
	pair := []float64{1, 2}
	return append(out, pair...)
}
`,
			want: []finding{
				{4, "make in kernel function process"},
				{5, "append in kernel function process"},
				{6, "composite literal allocates"},
				{7, "append in kernel function process"},
			},
		},
		{
			name: "constructors init and Grow may allocate",
			path: "example.com/m/internal/kernels",
			src: `package kernels

var table [8]float64

func init() {
	t := make([]float64, 8)
	copy(table[:], t)
}

type Buf struct{ v []float64 }

func NewBuf(n int) *Buf { return &Buf{v: make([]float64, n)} }

func (b *Buf) Grow(n int) {
	if cap(b.v) < n {
		b.v = make([]float64, n)
	}
	b.v = b.v[:n]
}
`,
			want: nil,
		},
		{
			name: "complex arithmetic in loop body",
			path: "example.com/m/internal/kernels",
			src: `package kernels

func rotate(x []complex128, w complex128) complex128 {
	acc := x[0] * w // outside any loop: allowed
	for i := range x {
		x[i] *= w
		x[i] = -x[i]
	}
	return acc
}
`,
			want: []finding{
				{6, "complex arithmetic inside a loop body"},
				{7, "complex arithmetic inside a loop body"},
			},
		},
		{
			name: "plane conversions in loops are clean",
			path: "example.com/m/internal/kernels",
			src: `package kernels

func split(x []complex128, re, im []float64) {
	for i, c := range x {
		re[i] = real(c)
		im[i] = imag(c)
	}
	for i := range re {
		x[i] = complex(re[i], im[i])
	}
}
`,
			want: nil,
		},
		{
			name: "ignore directive suppresses",
			path: "example.com/m/internal/kernels",
			src: `package kernels

func scratch(n int) []float64 {
	//lint:ignore kernelpure cold path used only by tests
	return make([]float64, n)
}
`,
			want: nil,
		},
		{
			name: "other packages are exempt",
			path: "example.com/m/internal/dsp",
			src: `package dsp

import "fmt"

func process(x []complex128, w complex128) {
	for i := range x {
		x[i] *= w
	}
	fmt.Println(make([]float64, 1))
}
`,
			want: nil,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			diags := analyzeFixture(t, tc.path, tc.src, KernelPure)
			checkFindings(t, diags, tc.want)
		})
	}
}
