package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// UnitsFlow is the dataflow upgrade of unitsdiscipline: where that analyzer
// pattern-matches single expressions whose operands carry a unit suffix,
// this one *propagates* dB/linear domains through assignments, composite
// literals, calls and returns — intra-procedurally via a per-function
// fixpoint over assignment edges, and inter-procedurally via per-package
// function facts published in the Run's FactStore (packages are analyzed in
// dependency order, so callee facts from other module packages are visible).
//
// Domains are seeded from three sources: the ground-truth signature table of
// internal/units (the conversions define the unit system), identifier and
// field suffixes (`*DB`, `*dBm`, `*Watts`, `*Hz`, ...), and function names.
// The checks then flag mixed-domain operations the suffix-level analyzer
// cannot see:
//
//   - a dB value laundered through an unsuffixed local (x := gainDB;
//     y := x + noiseWatts) or through a function boundary (x :=
//     pkg.NoiseFloorWatts(); x + marginDB);
//   - products of two dB-domain values (dB quantities compose by addition;
//     a dB×dB product is almost always a missing conversion);
//   - dB-domain arguments passed into linear-domain parameters and vice
//     versa (units.WattsToDBm(snrDB));
//   - composite-literal fields and declared results populated with the
//     opposite domain.
//
// Direct suffix-vs-suffix mixing (gainDB + noiseWatts with both names
// suffixed) stays unitsdiscipline's report; unitsflow only fires when at
// least one side's domain arrived by propagation, so one bug yields one
// finding.
var UnitsFlow = &Analyzer{
	Name: "unitsflow",
	Doc: "propagate dB/linear unit domains through assignments, calls and " +
		"package boundaries, and flag mixed-domain sums, dB×dB products, " +
		"mismatched call arguments, fields and returns",
	Run: runUnitsFlow,
}

func runUnitsFlow(pass *Pass) {
	// The units package converts between the domains by definition; its
	// facts come from the hardcoded table in facts.go.
	if isUnitsPackage(pass.Pkg.Path) {
		return
	}
	// Phase A, round 1: publish name-derived facts for every function in
	// the package, so round 2 and the body checks see intra-package callees
	// regardless of declaration order.
	for _, fd := range packageFuncs(pass) {
		publishFuncFact(pass, fd, false)
	}
	// Round 2: refine result domains from return statements (which may now
	// resolve through round-1 facts).
	for _, fd := range packageFuncs(pass) {
		publishFuncFact(pass, fd, true)
	}
	// Phase B: check every function body against the accumulated facts.
	for _, fd := range packageFuncs(pass) {
		if fd.Body != nil {
			checkUnitsFlow(pass, fd)
		}
	}
}

// packageFuncs lists the package's function declarations in file order.
func packageFuncs(pass *Pass) []*ast.FuncDecl {
	var out []*ast.FuncDecl
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok {
				out = append(out, fd)
			}
		}
	}
	return out
}

// publishFuncFact derives and publishes the unit fact of one function:
// parameter domains from parameter names, result domain from the function
// name or — when withReturns is set and the name is unsuffixed — from the
// joined domains of its return expressions.
func publishFuncFact(pass *Pass, fd *ast.FuncDecl, withReturns bool) {
	obj, ok := pass.Pkg.Info.Defs[fd.Name].(*types.Func)
	if !ok {
		return
	}
	sig, ok := obj.Type().(*types.Signature)
	if !ok {
		return
	}
	fact := FuncFact{Params: make([]Domain, sig.Params().Len())}
	for i := range fact.Params {
		fact.Params[i] = flowDomainOf(sig.Params().At(i).Name())
	}
	if sig.Results().Len() >= 1 && isNumericType(sig.Results().At(0).Type()) {
		fact.Result = flowDomainOf(fd.Name.Name)
		if !fact.Result.known() && withReturns && fd.Body != nil {
			fact.Result = returnedDomain(pass, fd)
		}
	}
	if fact.Result == DomainConflict {
		fact.Result = DomainNone
	}
	pass.Facts.SetFunc(obj, fact)
}

// returnedDomain joins the domains of the function's first return values.
func returnedDomain(pass *Pass, fd *ast.FuncDecl) Domain {
	env := buildFlowEnv(pass, fd)
	dom := DomainNone
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // a closure's returns are not the function's
		}
		ret, ok := n.(*ast.ReturnStmt)
		if ok && len(ret.Results) > 0 {
			d, _ := env.domainOf(ret.Results[0])
			dom = dom.join(d)
		}
		return true
	})
	return dom
}

// flowEnv holds the per-function variable-domain environment. Variables
// whose names carry a unit suffix are classified directly; the environment
// tracks the rest as domains propagate through assignments.
type flowEnv struct {
	pass *Pass
	vars map[types.Object]Domain
}

// buildFlowEnv seeds the environment and iterates the assignment edges to a
// (bounded) fixpoint, so chains like a := gainDB; b := a; c := b resolve.
func buildFlowEnv(pass *Pass, fd *ast.FuncDecl) *flowEnv {
	env := &flowEnv{pass: pass, vars: make(map[types.Object]Domain)}
	// Three rounds bound the propagation depth through unsuffixed locals;
	// deeper chains are vanishingly rare in a single function.
	for i := 0; i < 3; i++ {
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.AssignStmt:
				if (s.Tok == token.ASSIGN || s.Tok == token.DEFINE) && len(s.Lhs) == len(s.Rhs) {
					for i := range s.Lhs {
						env.absorb(s.Lhs[i], s.Rhs[i])
					}
				}
			case *ast.ValueSpec:
				if len(s.Names) == len(s.Values) {
					for i := range s.Names {
						env.absorb(s.Names[i], s.Values[i])
					}
				}
			case *ast.RangeStmt:
				// for _, g := range gainsDB: the element inherits the
				// container's domain.
				if v, ok := s.Value.(*ast.Ident); ok {
					if d, _ := env.domainOf(s.X); d.known() {
						env.set(v, d)
					}
				}
			}
			return true
		})
	}
	return env
}

// absorb records that the identifier lhs received a value of rhs's domain.
func (env *flowEnv) absorb(lhs ast.Expr, rhs ast.Expr) {
	id, ok := unparen(lhs).(*ast.Ident)
	if !ok {
		return
	}
	if d, _ := env.domainOf(rhs); d.known() {
		env.set(id, d)
	}
}

// set joins a domain observation into the identifier's environment entry.
// Identifiers whose names already carry a suffix are authoritative and never
// tracked.
func (env *flowEnv) set(id *ast.Ident, d Domain) {
	if flowDomainOf(id.Name).known() {
		return
	}
	obj := env.pass.Pkg.Info.Defs[id]
	if obj == nil {
		obj = env.pass.Pkg.Info.Uses[id]
	}
	if _, ok := obj.(*types.Var); !ok {
		return
	}
	env.vars[obj] = env.vars[obj].join(d)
}

// domainOf evaluates the unit domain of an expression. The second result
// reports whether the domain came *directly* from the expression's own
// identifier suffix — the case unitsdiscipline already covers — rather than
// from propagation.
func (env *flowEnv) domainOf(e ast.Expr) (Domain, bool) {
	info := env.pass.Pkg.Info
	switch x := e.(type) {
	case *ast.ParenExpr:
		return env.domainOf(x.X)
	case *ast.UnaryExpr:
		if x.Op == token.SUB || x.Op == token.ADD {
			return env.domainOf(x.X)
		}
	case *ast.StarExpr:
		return env.domainOf(x.X)
	case *ast.Ident:
		obj := info.Uses[x]
		if obj == nil {
			obj = info.Defs[x]
		}
		switch obj.(type) {
		case *types.Var, *types.Const:
			if d := flowDomainOf(x.Name); d.known() {
				return d, true
			}
			return env.vars[obj], false
		}
	case *ast.SelectorExpr:
		switch info.Uses[x.Sel].(type) {
		case *types.Var, *types.Const:
			return flowDomainOf(x.Sel.Name), true
		}
	case *ast.IndexExpr:
		// gainsDB[i] carries the container's suffix domain, but reaches it
		// through an index the suffix-level analyzer does not see.
		d, _ := env.domainOf(x.X)
		return d, false
	case *ast.CallExpr:
		if tv, ok := info.Types[x.Fun]; ok && tv.IsType() && len(x.Args) == 1 {
			d, _ := env.domainOf(x.Args[0]) // conversion preserves domain
			return d, false
		}
		if fn := calleeFunc(env.pass, x); fn != nil {
			if fact, ok := env.pass.Facts.Func(fn); ok {
				return fact.Result, false
			}
		}
	case *ast.BinaryExpr:
		return env.binaryDomain(x), false
	}
	return DomainNone, false
}

// binaryDomain propagates a domain through arithmetic. Mixed-domain sums
// and dB×dB products evaluate to DomainNone here; reporting them is the
// checker's job, and collapsing to unknown keeps one error from cascading.
func (env *flowEnv) binaryDomain(x *ast.BinaryExpr) Domain {
	dx, _ := env.domainOf(x.X)
	dy, _ := env.domainOf(x.Y)
	switch x.Op {
	case token.ADD, token.SUB:
		if dx.known() && dy.known() {
			if dx == dy {
				return dx
			}
			return DomainNone // mixed: reported separately
		}
		return dx.join(dy)
	case token.MUL:
		switch {
		case dx == DomainLinear && dy == DomainLinear:
			return DomainLinear
		case dx == DomainDB && !dy.known():
			return DomainDB // scaling a dB quantity by a plain factor
		case dy == DomainDB && !dx.known():
			return DomainDB
		}
	case token.QUO:
		switch {
		case dx == DomainLinear && dy == DomainLinear:
			return DomainLinear
		case dx == DomainDB && !dy.known():
			return DomainDB
		}
	}
	return DomainNone
}

// calleeFunc resolves the function or method a call invokes, if static.
func calleeFunc(pass *Pass, call *ast.CallExpr) *types.Func {
	switch f := unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := pass.Pkg.Info.Uses[f].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := pass.Pkg.Info.Uses[f.Sel].(*types.Func)
		return fn
	}
	return nil
}

// isNumericType reports whether the type is a numeric basic type.
func isNumericType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsNumeric != 0
}

// checkUnitsFlow runs the mixed-domain checks over one function body.
func checkUnitsFlow(pass *Pass, fd *ast.FuncDecl) {
	env := buildFlowEnv(pass, fd)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.BinaryExpr:
			checkFlowBinary(pass, env, e)
		case *ast.AssignStmt:
			checkFlowCompound(pass, env, e)
		case *ast.CallExpr:
			checkFlowCall(pass, env, e)
		case *ast.CompositeLit:
			checkFlowComposite(pass, env, e)
		}
		return true
	})
	checkFlowReturns(pass, env, fd)
}

// exprLabel describes an expression for a diagnostic.
func exprLabel(e ast.Expr) string {
	switch x := unparen(e).(type) {
	case *ast.Ident:
		return "\"" + x.Name + "\""
	case *ast.SelectorExpr:
		return "\"" + x.Sel.Name + "\""
	case *ast.CallExpr:
		if fn := unparen(x.Fun); fn != nil {
			if sel, ok := fn.(*ast.SelectorExpr); ok {
				return "call of " + sel.Sel.Name
			}
			if id, ok := fn.(*ast.Ident); ok {
				return "call of " + id.Name
			}
		}
		return "call result"
	case *ast.UnaryExpr:
		return exprLabel(x.X)
	case *ast.IndexExpr:
		return "element of " + exprLabel(x.X)
	}
	return "expression"
}

// checkFlowBinary flags propagated mixed-domain sums and dB×dB products.
func checkFlowBinary(pass *Pass, env *flowEnv, e *ast.BinaryExpr) {
	switch e.Op {
	case token.ADD, token.SUB:
		dx, directX := env.domainOf(e.X)
		dy, directY := env.domainOf(e.Y)
		if !dx.known() || !dy.known() || dx == dy {
			return
		}
		if directX && directY {
			return // both sides are suffixed identifiers: unitsdiscipline's report
		}
		dbSide, linSide := exprLabel(e.X), exprLabel(e.Y)
		if dx == DomainLinear {
			dbSide, linSide = linSide, dbSide
		}
		pass.Reportf(e.Pos(),
			"convert one side with units.DBToLinear/units.LinearToDB (or the dBm/watts forms) first",
			"arithmetic mixes dB-domain %s with linear-domain %s (tracked through dataflow)",
			dbSide, linSide)
	case token.MUL:
		dx, _ := env.domainOf(e.X)
		dy, _ := env.domainOf(e.Y)
		if dx == DomainDB && dy == DomainDB {
			pass.Reportf(e.Pos(),
				"dB quantities compose by addition; convert to linear with units.DBToLinear before multiplying",
				"product of two dB-domain values (%s × %s)", exprLabel(e.X), exprLabel(e.Y))
		}
	}
}

// checkFlowCompound flags += and -= whose sides carry opposite domains.
func checkFlowCompound(pass *Pass, env *flowEnv, e *ast.AssignStmt) {
	if e.Tok != token.ADD_ASSIGN && e.Tok != token.SUB_ASSIGN {
		return
	}
	if len(e.Lhs) != 1 || len(e.Rhs) != 1 {
		return
	}
	dl, _ := env.domainOf(e.Lhs[0])
	dr, _ := env.domainOf(e.Rhs[0])
	if dl.known() && dr.known() && dl != dr {
		pass.Reportf(e.Pos(),
			"convert one side with units.DBToLinear/units.LinearToDB (or the dBm/watts forms) first",
			"compound assignment mixes %s-domain %s with %s-domain %s",
			dl, exprLabel(e.Lhs[0]), dr, exprLabel(e.Rhs[0]))
	}
}

// checkFlowCall flags arguments whose domain contradicts the callee's
// parameter fact — including callees in other module packages, whose facts
// were published when their package was analyzed.
func checkFlowCall(pass *Pass, env *flowEnv, call *ast.CallExpr) {
	fn := calleeFunc(pass, call)
	if fn == nil {
		return
	}
	fact, ok := pass.Facts.Func(fn)
	if !ok || len(fact.Params) == 0 {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return
	}
	for i, arg := range call.Args {
		pi := i
		if sig.Variadic() && pi >= len(fact.Params)-1 {
			pi = len(fact.Params) - 1
		}
		if pi >= len(fact.Params) {
			break
		}
		pd := fact.Params[pi]
		ad, _ := env.domainOf(arg)
		if pd.known() && ad.known() && pd != ad {
			pass.Reportf(arg.Pos(),
				"convert the argument with units.DBToLinear/units.LinearToDB (or the dBm/watts forms) first",
				"%s-domain argument %s passed to %s-domain parameter %q of %s",
				ad, exprLabel(arg), pd, sig.Params().At(pi).Name(), fn.Name())
		}
	}
}

// checkFlowComposite flags keyed struct-literal fields populated with the
// opposite domain (Config{NoiseFloorDBm: noiseWatts}).
func checkFlowComposite(pass *Pass, env *flowEnv, e *ast.CompositeLit) {
	tv, ok := pass.Pkg.Info.Types[e]
	if !ok || tv.Type == nil {
		return
	}
	if _, ok := tv.Type.Underlying().(*types.Struct); !ok {
		return
	}
	for _, elt := range e.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		key, ok := kv.Key.(*ast.Ident)
		if !ok {
			continue
		}
		fieldD := flowDomainOf(key.Name)
		valD, _ := env.domainOf(kv.Value)
		if fieldD.known() && valD.known() && fieldD != valD {
			pass.Reportf(kv.Pos(),
				"convert the value with units.DBToLinear/units.LinearToDB (or the dBm/watts forms) first",
				"%s-domain value %s assigned to %s-domain field %q",
				valD, exprLabel(kv.Value), fieldD, key.Name)
		}
	}
}

// checkFlowReturns flags return values whose domain contradicts the
// function's declared (name-suffixed) result domain. Only the function's own
// returns count; closures return to their own signatures.
func checkFlowReturns(pass *Pass, env *flowEnv, fd *ast.FuncDecl) {
	declared := flowDomainOf(fd.Name.Name)
	if !declared.known() {
		return
	}
	obj, ok := pass.Pkg.Info.Defs[fd.Name].(*types.Func)
	if !ok {
		return
	}
	sig := obj.Type().(*types.Signature)
	if sig.Results().Len() < 1 || !isNumericType(sig.Results().At(0).Type()) {
		return
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		ret, ok := n.(*ast.ReturnStmt)
		if !ok || len(ret.Results) == 0 {
			return true
		}
		if d, _ := env.domainOf(ret.Results[0]); d.known() && d != declared {
			pass.Reportf(ret.Pos(),
				"convert the return value with units.DBToLinear/units.LinearToDB (or the dBm/watts forms) first",
				"%s-domain value %s returned from %s-suffixed function %q",
				d, exprLabel(ret.Results[0]), declared, fd.Name.Name)
		}
		return true
	})
}
