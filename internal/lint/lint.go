// Package lint implements wlanlint, the simulator's domain-invariant
// static-analysis suite (see cmd/wlanlint/README.md).
//
// The RF subsystem is verified against BER and spectrum curves, and the
// failure class that silently corrupts those curves is not a crash but a
// convention violation: an inline dB↔linear conversion with the wrong
// divisor, a stochastic block drawing from the shared global RNG, an exact
// float comparison on a computed power, or a positional Config literal that
// shifts meaning when the struct grows. Each analyzer in this package
// encodes one such project invariant over the typed AST.
//
// Analyzers operate on packages loaded by LoadPackages, which type-checks
// the module using only the standard library (go/parser, go/types and the
// source importer), keeping the tool as dependency-free as the simulator
// itself. Test files are excluded: the invariants guard simulator code, and
// tests legitimately use exact comparisons and ad-hoc conversions.
//
// Beyond per-expression pattern analyzers, the package carries a small
// dataflow layer: packages are analyzed in dependency order and analyzers
// may publish facts about exported declarations (see FactStore) that
// downstream packages' passes consume, which is how unitsflow tracks dB- and
// linear-domain values across assignments, calls and package boundaries.
// The compiler-backed escape gate (EscapeCheck) is separate from the AST
// analyzers: it shells out to go build -gcflags=-m and holds functions
// annotated //lint:hotpath to a no-heap-escape contract.
//
// Any diagnostic can be suppressed by an explicit, justified directive on
// the offending line or the line above it:
//
//	//lint:ignore <analyzer|all> <reason>
//
// A directive that suppresses nothing is itself reported (staleignore), so
// suppressions cannot outlive the code they were written for.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Severity levels of a diagnostic. Errors fail the build; warnings are
// reported but do not affect the exit status.
const (
	SeverityError   = "error"
	SeverityWarning = "warning"
)

// Diagnostic is one finding reported by an analyzer.
type Diagnostic struct {
	// Pos locates the finding.
	Pos token.Position
	// Analyzer names the analyzer that produced the finding.
	Analyzer string
	// Severity is SeverityError or SeverityWarning.
	Severity string
	// Message states what is wrong.
	Message string
	// Hint states how to fix it.
	Hint string
}

// String formats the diagnostic as "file:line:col: analyzer: message [hint]".
func (d Diagnostic) String() string {
	s := fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
	if d.Hint != "" {
		s += " [" + d.Hint + "]"
	}
	return s
}

// Analyzer is one composable check over a type-checked package.
type Analyzer struct {
	// Name is the short identifier used in output and ignore directives.
	Name string
	// Doc is a one-paragraph description of the invariant enforced.
	Doc string
	// Severity is the severity of this analyzer's findings; empty means
	// SeverityError.
	Severity string
	// Run inspects the package and reports findings through the pass.
	Run func(*Pass)
}

// Pass carries one analyzer's run over one package.
type Pass struct {
	// Pkg is the package under analysis.
	Pkg *Package
	// Facts is the cross-package fact store shared by every pass of a Run.
	// Packages are analyzed in dependency order, so facts published while
	// analyzing an imported package are visible here.
	Facts    *FactStore
	analyzer *Analyzer
	diags    []Diagnostic
}

// Report records a finding at pos with a fix hint.
func (p *Pass) Report(pos token.Pos, message, hint string) {
	sev := p.analyzer.Severity
	if sev == "" {
		sev = SeverityError
	}
	p.diags = append(p.diags, Diagnostic{
		Pos:      p.Pkg.Fset.Position(pos),
		Analyzer: p.analyzer.Name,
		Severity: sev,
		Message:  message,
		Hint:     hint,
	})
}

// Reportf records a finding with a formatted message and a fix hint.
func (p *Pass) Reportf(pos token.Pos, hint, format string, args ...any) {
	p.Report(pos, fmt.Sprintf(format, args...), hint)
}

// All returns the full analyzer suite in a stable order.
func All() []*Analyzer {
	return []*Analyzer{
		UnitsDiscipline, SeededRand, FloatEq, UnkeyedConfig, HotPathExp,
		KernelPure, AsmTwin, UnitsFlow, DetFlow,
	}
}

// EscapeAnalyzerName is the directive name of the compiler-backed escape
// gate (EscapeCheck). It is not part of All() — it needs a go toolchain
// invocation, not an AST walk — but //lint:ignore escape and //lint:hotpath
// are recognized everywhere.
const EscapeAnalyzerName = "escape"

// StaleIgnoreAnalyzerName names the engine's own check that every
// //lint:ignore directive still suppresses at least one diagnostic.
const StaleIgnoreAnalyzerName = "staleignore"

// knownDirectiveNames returns every name valid in a //lint:ignore directive:
// the full suite (regardless of which subset a run selects, so a subset run
// does not misreport other analyzers' suppressions as malformed), the escape
// gate, and "all".
func knownDirectiveNames() map[string]bool {
	known := map[string]bool{"all": true, EscapeAnalyzerName: true}
	for _, a := range All() {
		known[a.Name] = true
	}
	return known
}

// ignoreDirective is one parsed //lint:ignore comment.
type ignoreDirective struct {
	analyzer string // analyzer name or "all"
	reason   string
	pos      token.Position
	used     bool // set when the directive suppresses a diagnostic
}

// ignoreSet maps file name and line number to the directives covering it.
type ignoreSet map[string]map[int][]*ignoreDirective

// suppressed reports whether a directive on the diagnostic's line or the
// line directly above it names the diagnostic's analyzer (or "all"), and
// marks any matching directive used.
func (ig ignoreSet) suppressed(d Diagnostic) bool {
	lines := ig[d.Pos.Filename]
	hit := false
	for _, line := range []int{d.Pos.Line, d.Pos.Line - 1} {
		for _, dir := range lines[line] {
			if dir.analyzer == "all" || dir.analyzer == d.Analyzer {
				dir.used = true
				hit = true
			}
		}
	}
	return hit
}

// stale returns the directives that suppressed nothing, restricted to those
// naming an analyzer for which accept returns true (so the escape gate and
// the AST suite each account only for their own directives).
func (ig ignoreSet) stale(accept func(analyzer string) bool) []Diagnostic {
	var out []Diagnostic
	for _, lines := range ig {
		for _, dirs := range lines {
			for _, dir := range dirs {
				if dir.used || !accept(dir.analyzer) {
					continue
				}
				out = append(out, Diagnostic{
					Pos:      dir.pos,
					Analyzer: StaleIgnoreAnalyzerName,
					Severity: SeverityError,
					Message:  fmt.Sprintf("ignore directive for %q suppresses no diagnostic", dir.analyzer),
					Hint:     "the code it justified has moved or been fixed; delete the directive (or run with -allow-stale-ignores during a transition)",
				})
			}
		}
	}
	return out
}

const ignorePrefix = "//lint:ignore"

// collectIgnores parses the package's //lint:ignore directives. Malformed
// directives (missing analyzer name or reason) suppress nothing and are
// returned separately so the runner can surface them.
func collectIgnores(pkg *Package, known map[string]bool) (ignoreSet, []Diagnostic) {
	ig := make(ignoreSet)
	var bad []Diagnostic
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, ignorePrefix) {
					continue
				}
				pos := pkg.Fset.Position(c.Slash)
				fields := strings.Fields(strings.TrimPrefix(c.Text, ignorePrefix))
				malformed := len(fields) < 2 || !(fields[0] == "all" || known[fields[0]])
				if malformed {
					bad = append(bad, Diagnostic{
						Pos:      pos,
						Analyzer: "lint",
						Severity: SeverityError,
						Message:  fmt.Sprintf("malformed ignore directive %q", c.Text),
						Hint:     "use //lint:ignore <analyzer|all> <reason>",
					})
					continue
				}
				if ig[pos.Filename] == nil {
					ig[pos.Filename] = make(map[int][]*ignoreDirective)
				}
				ig[pos.Filename][pos.Line] = append(ig[pos.Filename][pos.Line], &ignoreDirective{
					analyzer: fields[0],
					reason:   strings.Join(fields[1:], " "),
					pos:      pos,
				})
			}
		}
	}
	return ig, bad
}

// Options configures a Run.
type Options struct {
	// StaleIgnores reports //lint:ignore directives that suppressed no
	// diagnostic. Enable it only when running the full suite: under a
	// subset, directives for unselected analyzers are trivially unused.
	StaleIgnores bool
}

// Run applies the analyzers to every package and returns the surviving
// diagnostics sorted by position. It is RunOpts with default options.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	return RunOpts(pkgs, analyzers, Options{})
}

// RunOpts applies the analyzers to every package, in dependency order so
// that cross-package facts flow from imported packages to their importers,
// and returns the surviving diagnostics sorted by position. Findings
// suppressed by a well-formed //lint:ignore directive are dropped; malformed
// directives are themselves reported, and with opts.StaleIgnores so are
// directives that suppressed nothing.
func RunOpts(pkgs []*Package, analyzers []*Analyzer, opts Options) []Diagnostic {
	known := knownDirectiveNames()
	facts := NewFactStore()
	var out []Diagnostic
	for _, pkg := range dependencyOrder(pkgs) {
		ig, bad := collectIgnores(pkg, known)
		out = append(out, bad...)
		for _, a := range analyzers {
			pass := &Pass{Pkg: pkg, Facts: facts, analyzer: a}
			a.Run(pass)
			for _, d := range pass.diags {
				if !ig.suppressed(d) {
					out = append(out, d)
				}
			}
		}
		if opts.StaleIgnores {
			// The escape gate accounts for its own directives in
			// EscapeCheck; "all" and suite names are accounted here.
			out = append(out, ig.stale(func(name string) bool {
				return name != EscapeAnalyzerName
			})...)
		}
	}
	sortDiagnostics(out)
	return out
}

// sortDiagnostics orders diagnostics by position, then analyzer.
func sortDiagnostics(out []Diagnostic) {
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}

// dependencyOrder returns the packages topologically sorted so that every
// package follows the packages it imports (restricted to the given set).
// Ties keep the input (path-sorted) order, so the result is deterministic.
func dependencyOrder(pkgs []*Package) []*Package {
	byPath := make(map[string]*Package, len(pkgs))
	for _, p := range pkgs {
		byPath[p.Path] = p
	}
	out := make([]*Package, 0, len(pkgs))
	state := make(map[string]int, len(pkgs)) // 0 unvisited, 1 visiting, 2 done
	var visit func(p *Package)
	visit = func(p *Package) {
		if state[p.Path] != 0 {
			return // visiting (cycle: impossible in valid Go) or done
		}
		state[p.Path] = 1
		for _, imp := range p.TPkg.Imports() {
			if dep, ok := byPath[imp.Path()]; ok {
				visit(dep)
			}
		}
		state[p.Path] = 2
		out = append(out, p)
	}
	for _, p := range pkgs {
		visit(p)
	}
	return out
}

// inspect walks every file in the pass's package.
func inspect(pass *Pass, fn func(ast.Node) bool) {
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, fn)
	}
}

// unparen strips any number of enclosing parentheses.
func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}
