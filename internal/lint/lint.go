// Package lint implements wlanlint, the simulator's domain-invariant
// static-analysis suite (see cmd/wlanlint/README.md).
//
// The RF subsystem is verified against BER and spectrum curves, and the
// failure class that silently corrupts those curves is not a crash but a
// convention violation: an inline dB↔linear conversion with the wrong
// divisor, a stochastic block drawing from the shared global RNG, an exact
// float comparison on a computed power, or a positional Config literal that
// shifts meaning when the struct grows. Each analyzer in this package
// encodes one such project invariant over the typed AST.
//
// Analyzers operate on packages loaded by LoadPackages, which type-checks
// the module using only the standard library (go/parser, go/types and the
// source importer), keeping the tool as dependency-free as the simulator
// itself. Test files are excluded: the invariants guard simulator code, and
// tests legitimately use exact comparisons and ad-hoc conversions.
//
// Any diagnostic can be suppressed by an explicit, justified directive on
// the offending line or the line above it:
//
//	//lint:ignore <analyzer|all> <reason>
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Diagnostic is one finding reported by an analyzer.
type Diagnostic struct {
	// Pos locates the finding.
	Pos token.Position
	// Analyzer names the analyzer that produced the finding.
	Analyzer string
	// Message states what is wrong.
	Message string
	// Hint states how to fix it.
	Hint string
}

// String formats the diagnostic as "file:line:col: analyzer: message [hint]".
func (d Diagnostic) String() string {
	s := fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
	if d.Hint != "" {
		s += " [" + d.Hint + "]"
	}
	return s
}

// Analyzer is one composable check over a type-checked package.
type Analyzer struct {
	// Name is the short identifier used in output and ignore directives.
	Name string
	// Doc is a one-paragraph description of the invariant enforced.
	Doc string
	// Run inspects the package and reports findings through the pass.
	Run func(*Pass)
}

// Pass carries one analyzer's run over one package.
type Pass struct {
	// Pkg is the package under analysis.
	Pkg      *Package
	analyzer *Analyzer
	diags    []Diagnostic
}

// Report records a finding at pos with a fix hint.
func (p *Pass) Report(pos token.Pos, message, hint string) {
	p.diags = append(p.diags, Diagnostic{
		Pos:      p.Pkg.Fset.Position(pos),
		Analyzer: p.analyzer.Name,
		Message:  message,
		Hint:     hint,
	})
}

// Reportf records a finding with a formatted message and a fix hint.
func (p *Pass) Reportf(pos token.Pos, hint, format string, args ...any) {
	p.Report(pos, fmt.Sprintf(format, args...), hint)
}

// All returns the full analyzer suite in a stable order.
func All() []*Analyzer {
	return []*Analyzer{UnitsDiscipline, SeededRand, FloatEq, UnkeyedConfig, HotPathExp, KernelPure}
}

// ignoreDirective is one parsed //lint:ignore comment.
type ignoreDirective struct {
	analyzer string // analyzer name or "all"
	reason   string
}

// ignoreSet maps file name and line number to the directives covering it.
type ignoreSet map[string]map[int][]ignoreDirective

// suppressed reports whether a directive on the diagnostic's line or the
// line directly above it names the diagnostic's analyzer (or "all").
func (ig ignoreSet) suppressed(d Diagnostic) bool {
	lines := ig[d.Pos.Filename]
	for _, line := range []int{d.Pos.Line, d.Pos.Line - 1} {
		for _, dir := range lines[line] {
			if dir.analyzer == "all" || dir.analyzer == d.Analyzer {
				return true
			}
		}
	}
	return false
}

const ignorePrefix = "//lint:ignore"

// collectIgnores parses the package's //lint:ignore directives. Malformed
// directives (missing analyzer name or reason) suppress nothing and are
// returned separately so the runner can surface them.
func collectIgnores(pkg *Package, known map[string]bool) (ignoreSet, []Diagnostic) {
	ig := make(ignoreSet)
	var bad []Diagnostic
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, ignorePrefix) {
					continue
				}
				pos := pkg.Fset.Position(c.Slash)
				fields := strings.Fields(strings.TrimPrefix(c.Text, ignorePrefix))
				malformed := len(fields) < 2 || !(fields[0] == "all" || known[fields[0]])
				if malformed {
					bad = append(bad, Diagnostic{
						Pos:      pos,
						Analyzer: "lint",
						Message:  fmt.Sprintf("malformed ignore directive %q", c.Text),
						Hint:     "use //lint:ignore <analyzer|all> <reason>",
					})
					continue
				}
				if ig[pos.Filename] == nil {
					ig[pos.Filename] = make(map[int][]ignoreDirective)
				}
				ig[pos.Filename][pos.Line] = append(ig[pos.Filename][pos.Line], ignoreDirective{
					analyzer: fields[0],
					reason:   strings.Join(fields[1:], " "),
				})
			}
		}
	}
	return ig, bad
}

// Run applies the analyzers to every package and returns the surviving
// diagnostics sorted by position. Findings suppressed by a well-formed
// //lint:ignore directive are dropped; malformed directives are themselves
// reported.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name] = true
	}
	var out []Diagnostic
	for _, pkg := range pkgs {
		ig, bad := collectIgnores(pkg, known)
		out = append(out, bad...)
		for _, a := range analyzers {
			pass := &Pass{Pkg: pkg, analyzer: a}
			a.Run(pass)
			for _, d := range pass.diags {
				if !ig.suppressed(d) {
					out = append(out, d)
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return out
}

// inspect walks every file in the pass's package.
func inspect(pass *Pass, fn func(ast.Node) bool) {
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, fn)
	}
}

// unparen strips any number of enclosing parentheses.
func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}
