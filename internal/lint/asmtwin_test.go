package lint

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"testing"
)

// analyzeAsmTwinFixture type-checks src as an internal/kernels package whose
// directory on disk holds testSrc as a _test.go file (empty testSrc means no
// test files), so the analyzer's test-reference scan sees a real directory.
func analyzeAsmTwinFixture(t *testing.T, src, testSrc string) []Diagnostic {
	t.Helper()
	dir := t.TempDir()
	if testSrc != "" {
		if err := os.WriteFile(filepath.Join(dir, "fixture_test.go"), []byte(testSrc), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "fixture.go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse fixture: %v", err)
	}
	info := newInfo()
	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	path := "example.com/m/internal/kernels"
	tpkg, err := conf.Check(path, fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatalf("type-check fixture: %v", err)
	}
	pkg := &Package{Path: path, Dir: dir, Fset: fset, Files: []*ast.File{f}, TPkg: tpkg, Info: info}
	return Run([]*Package{pkg}, []*Analyzer{AsmTwin})
}

func TestAsmTwin(t *testing.T) {
	const goodTest = `package kernels

import "testing"

func TestFooTwin(t *testing.T) { fooAsm(nil, 0); fooGo(nil, 0) }
`
	cases := []struct {
		name    string
		src     string
		testSrc string
		want    []finding
	}{
		{
			name: "conforming stub passes",
			src: `package kernels

//go:noescape
func fooAsm(dst []float64, s float64)

func fooGo(dst []float64, s float64) {
	for i := range dst {
		dst[i] *= s
	}
}
`,
			testSrc: goodTest,
			want:    nil,
		},
		{
			name: "missing noescape directive",
			src: `package kernels

func fooAsm(dst []float64, s float64)

func fooGo(dst []float64, s float64) {
	for i := range dst {
		dst[i] *= s
	}
}
`,
			testSrc: goodTest,
			want: []finding{
				{3, "lacks a //go:noescape directive"},
			},
		},
		{
			name: "stub not following naming convention",
			src: `package kernels

//go:noescape
func fooVector(dst []float64, s float64)
`,
			testSrc: "",
			want: []finding{
				{4, "does not follow the fooAsm naming convention"},
			},
		},
		{
			name: "missing twin",
			src: `package kernels

//go:noescape
func fooAsm(dst []float64, s float64)
`,
			testSrc: goodTest,
			want: []finding{
				{4, "has no pure-Go twin fooGo"},
			},
		},
		{
			name: "twin signature mismatch",
			src: `package kernels

//go:noescape
func fooAsm(dst []float64, s float64)

func fooGo(dst []float64, s float32) {
	for i := range dst {
		dst[i] *= float64(s)
	}
}
`,
			testSrc: goodTest,
			want: []finding{
				{4, "different signatures"},
			},
		},
		{
			name: "stub without test reference",
			src: `package kernels

//go:noescape
func fooAsm(dst []float64, s float64)

func fooGo(dst []float64, s float64) {
	for i := range dst {
		dst[i] *= s
	}
}
`,
			testSrc: `package kernels

import "testing"

func TestUnrelated(t *testing.T) { fooGo(nil, 0) }
`,
			want: []finding{
				{4, "not referenced by any _test.go file"},
			},
		},
		{
			name: "feature probe exempt",
			src: `package kernels

func cpuHasAVX2() bool
`,
			testSrc: "",
			want:    nil,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			checkFindings(t, analyzeAsmTwinFixture(t, tc.src, tc.testSrc), tc.want)
		})
	}
}

func TestAsmTwinSkipsOtherPackages(t *testing.T) {
	diags := analyzeFixture(t, "example.com/m/internal/dsp", `package dsp

func fooAsm(dst []float64, s float64)
`, AsmTwin)
	checkFindings(t, diags, nil)
}
