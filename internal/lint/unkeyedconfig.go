package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// UnkeyedConfig flags unkeyed composite literals of exported configuration
// structs (names ending in Config or Params). RF parameter structs grow as
// impairments are added; a positional literal then silently shifts every
// later value into the wrong field — a miswired simulator, not a compile
// error, is the result.
var UnkeyedConfig = &Analyzer{
	Name: "unkeyedconfig",
	Doc: "flag unkeyed composite literals of exported *Config/*Params structs, " +
		"which change meaning silently when the struct grows",
	Run: runUnkeyedConfig,
}

func runUnkeyedConfig(pass *Pass) {
	inspect(pass, func(n ast.Node) bool {
		lit, ok := n.(*ast.CompositeLit)
		if !ok || len(lit.Elts) == 0 {
			return true
		}
		unkeyed := false
		for _, elt := range lit.Elts {
			if _, ok := elt.(*ast.KeyValueExpr); !ok {
				unkeyed = true
				break
			}
		}
		if !unkeyed {
			return true
		}
		tv, ok := pass.Pkg.Info.Types[lit]
		if !ok || tv.Type == nil {
			return true
		}
		named, ok := types.Unalias(tv.Type).(*types.Named)
		if !ok {
			return true
		}
		obj := named.Obj()
		name := obj.Name()
		if !obj.Exported() ||
			(!strings.HasSuffix(name, "Config") && !strings.HasSuffix(name, "Params")) {
			return true
		}
		if _, ok := named.Underlying().(*types.Struct); !ok {
			return true
		}
		pass.Reportf(lit.Pos(),
			"write the literal with field names so new fields cannot shift existing values",
			"unkeyed composite literal of configuration struct %s", name)
		return true
	})
}
