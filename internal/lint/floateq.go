package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// FloatEq flags == and != on floating-point (or complex) operands in
// simulator code. Computed powers, gains and metrics accumulate rounding
// error, so exact equality silently stops matching when an algorithm is
// reordered — the same curve-corrupting failure class the paper's
// verification flow exists to catch.
//
// Comparisons against the exact constant zero are exempt: zero is exactly
// representable and is the conventional sentinel for "empty signal" or
// "feature disabled" throughout the simulator.
var FloatEq = &Analyzer{
	Name: "floateq",
	Doc: "flag ==/!= on float or complex operands outside tests " +
		"(comparisons against the constant 0 are allowed as sentinels)",
	Run: runFloatEq,
}

func runFloatEq(pass *Pass) {
	inspect(pass, func(n ast.Node) bool {
		bin, ok := n.(*ast.BinaryExpr)
		if !ok || (bin.Op != token.EQL && bin.Op != token.NEQ) {
			return true
		}
		if !isFloatExpr(pass, bin.X) && !isFloatExpr(pass, bin.Y) {
			return true
		}
		if isZeroConst(pass, bin.X) || isZeroConst(pass, bin.Y) {
			return true
		}
		pass.Reportf(bin.Pos(),
			"compare with a tolerance, e.g. math.Abs(a-b) <= eps, or justify with //lint:ignore floateq <reason>",
			"floating-point operands compared with %s", bin.Op)
		return true
	})
}

// isFloatExpr reports whether the expression has float or complex type.
func isFloatExpr(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.Pkg.Info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&(types.IsFloat|types.IsComplex) != 0
}

// isZeroConst reports whether the expression is the numeric constant 0.
func isZeroConst(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.Pkg.Info.Types[e]
	if !ok || tv.Value == nil {
		return false
	}
	v := constant.ToFloat(tv.Value)
	if v.Kind() == constant.Float {
		return constant.Sign(v) == 0
	}
	if c := constant.ToComplex(tv.Value); c.Kind() == constant.Complex {
		return constant.Sign(constant.Real(c)) == 0 && constant.Sign(constant.Imag(c)) == 0
	}
	return false
}
