package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// The escape gate is the static complement to the runtime AllocsPerRun
// tests: it holds every function annotated //lint:hotpath to a
// no-heap-escape contract, checked against the compiler's own escape
// analysis (go build -gcflags=-m) rather than an AST approximation. The
// runtime gates catch a steady-state allocation only on the configurations
// a test happens to run; the compiler sees every path, including inlined
// callees, closures and error branches the race-instrumented test run never
// takes.
//
// Intended escapes — a lazy buffer grow, an error-path fmt argument —
// carry //lint:ignore escape <reason> on the offending line, which keeps
// each allocation site visible and justified instead of silently tolerated.

// hotpathPrefix is the directive marking a function as part of the declared
// hot-path set. It must appear in the doc comment of a function declaration.
const hotpathPrefix = "//lint:hotpath"

// escapePattern matches one compiler diagnostic line: path:line:col: msg.
var escapePattern = regexp.MustCompile(`^(.+\.go):([0-9]+):([0-9]+): (.*)$`)

// hotSpan is the source range of one annotated function.
type hotSpan struct {
	file       string // absolute path
	start, end int    // line range, inclusive
	name       string // display name for diagnostics
}

// funcDisplayName renders Recv.Name or Name for diagnostics.
func funcDisplayName(fd *ast.FuncDecl) string {
	if fd.Recv != nil && len(fd.Recv.List) == 1 {
		t := fd.Recv.List[0].Type
		if s, ok := t.(*ast.StarExpr); ok {
			t = s.X
		}
		if id, ok := t.(*ast.Ident); ok {
			return id.Name + "." + fd.Name.Name
		}
	}
	return fd.Name.Name
}

// hasHotpathDirective reports whether the doc comment carries the directive.
func hasHotpathDirective(doc *ast.CommentGroup) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if c.Text == hotpathPrefix || strings.HasPrefix(c.Text, hotpathPrefix+" ") {
			return true
		}
	}
	return false
}

// findModuleRoot walks up from dir to the directory containing go.mod.
func findModuleRoot(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(abs, "go.mod")); err == nil {
			return abs, nil
		}
		parent := filepath.Dir(abs)
		if parent == abs {
			return "", fmt.Errorf("lint: no go.mod found above %s", dir)
		}
		abs = parent
	}
}

// EscapeCheck runs the compiler-backed allocation gate over the packages:
// it collects every //lint:hotpath-annotated function, compiles the packages
// that contain one with -gcflags=-m, and reports each "escapes to heap" /
// "moved to heap" diagnostic falling inside an annotated function that is
// not suppressed by a //lint:ignore escape directive. With opts.StaleIgnores
// it also reports escape-ignore directives that suppressed nothing, and it
// always reports //lint:hotpath directives not attached to a function.
// The returned error covers infrastructure failures (the build itself
// failing), not findings.
func EscapeCheck(pkgs []*Package, opts Options) ([]Diagnostic, error) {
	if len(pkgs) == 0 {
		return nil, nil
	}
	known := knownDirectiveNames()
	var (
		out     []Diagnostic
		spans   []hotSpan
		hotPkgs []*Package
		ignores = make(ignoreSet)
	)
	for _, pkg := range pkgs {
		ig, _ := collectIgnores(pkg, known) // malformed directives are the AST run's report
		for file, lines := range ig {
			ignores[file] = lines
		}
		hot := false
		for _, f := range pkg.Files {
			inDoc := make(map[*ast.Comment]bool)
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				if fd.Doc != nil {
					for _, c := range fd.Doc.List {
						inDoc[c] = true
					}
				}
				if !hasHotpathDirective(fd.Doc) {
					continue
				}
				hot = true
				start := pkg.Fset.Position(fd.Pos())
				end := pkg.Fset.Position(fd.End())
				spans = append(spans, hotSpan{
					file:  start.Filename,
					start: start.Line,
					end:   end.Line,
					name:  funcDisplayName(fd),
				})
			}
			// A hotpath directive outside a function doc comment guards
			// nothing — surface it instead of silently skipping.
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					if !inDoc[c] && (c.Text == hotpathPrefix || strings.HasPrefix(c.Text, hotpathPrefix+" ")) {
						out = append(out, Diagnostic{
							Pos:      pkg.Fset.Position(c.Slash),
							Analyzer: EscapeAnalyzerName,
							Severity: SeverityError,
							Message:  "//lint:hotpath directive is not in the doc comment of a function declaration",
							Hint:     "move the directive into the doc comment of the function it guards",
						})
					}
				}
			}
		}
		if hot {
			hotPkgs = append(hotPkgs, pkg)
		}
	}

	if len(hotPkgs) > 0 {
		diags, err := compileEscapes(hotPkgs, spans, ignores)
		if err != nil {
			return nil, err
		}
		out = append(out, diags...)
	}
	if opts.StaleIgnores {
		out = append(out, ignores.stale(func(name string) bool {
			return name == EscapeAnalyzerName
		})...)
	}
	sortDiagnostics(out)
	return out, nil
}

// compileEscapes builds the hot packages with -gcflags=-m and maps the
// compiler's escape diagnostics onto the annotated spans.
func compileEscapes(hotPkgs []*Package, spans []hotSpan, ignores ignoreSet) ([]Diagnostic, error) {
	moduleDir, err := findModuleRoot(hotPkgs[0].Dir)
	if err != nil {
		return nil, err
	}
	args := []string{"build", "-gcflags=-m"}
	for _, pkg := range hotPkgs {
		rel, err := filepath.Rel(moduleDir, pkg.Dir)
		if err != nil {
			return nil, err
		}
		args = append(args, "./"+filepath.ToSlash(rel))
	}
	cmd := exec.Command("go", args...)
	cmd.Dir = moduleDir
	// -m diagnostics go to stderr; so do build errors. The build cache
	// replays diagnostics for cached compiles, so no -a is needed.
	outBytes, runErr := cmd.CombinedOutput()
	if runErr != nil {
		return nil, fmt.Errorf("lint: go %s: %v\n%s", strings.Join(args, " "), runErr, outBytes)
	}

	spansByFile := make(map[string][]hotSpan)
	for _, s := range spans {
		spansByFile[s.file] = append(spansByFile[s.file], s)
	}
	sort.Slice(spans, func(i, j int) bool { return spans[i].file < spans[j].file })

	var out []Diagnostic
	seen := make(map[string]bool)
	for _, line := range strings.Split(string(outBytes), "\n") {
		m := escapePattern.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		msg := m[4]
		if !strings.Contains(msg, "escapes to heap") && !strings.Contains(msg, "moved to heap") {
			continue
		}
		file := m[1]
		if !filepath.IsAbs(file) {
			file = filepath.Join(moduleDir, file)
		}
		lineNo, _ := strconv.Atoi(m[2])
		colNo, _ := strconv.Atoi(m[3])
		key := fmt.Sprintf("%s:%d:%d:%s", file, lineNo, colNo, msg)
		if seen[key] {
			continue // the compiler repeats planar-pair allocations
		}
		seen[key] = true
		for _, s := range spansByFile[file] {
			if lineNo < s.start || lineNo > s.end {
				continue
			}
			d := Diagnostic{
				Pos:      token.Position{Filename: file, Line: lineNo, Column: colNo},
				Analyzer: EscapeAnalyzerName,
				Severity: SeverityError,
				Message:  fmt.Sprintf("heap escape in //lint:hotpath function %s: %s", s.name, msg),
				Hint:     "keep hot-path functions allocation-free (caller-owned buffers, constructors for growth), or justify with //lint:ignore escape <reason>",
			}
			if !ignores.suppressed(d) {
				out = append(out, d)
			}
			break
		}
	}
	return out, nil
}
