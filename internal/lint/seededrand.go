package lint

import (
	"go/ast"
	"go/types"
)

// SeededRand enforces reproducible stochastic blocks: every RNG in
// simulator code must be an explicit rand.New(rand.NewSource(seed)) with a
// deterministic seed. The package-level math/rand functions draw from a
// shared, implicitly seeded global source, which both breaks reproducibility
// of BER curves and races under parallel sweeps.
var SeededRand = &Analyzer{
	Name: "seededrand",
	Doc: "forbid the global math/rand (and math/rand/v2) top-level generator " +
		"functions and time-derived RNG seeds in non-test simulator code",
	Run: runSeededRand,
}

var randPkgs = map[string]bool{
	"math/rand":    true,
	"math/rand/v2": true,
}

// randConstructors are the explicit-source entry points that remain legal.
var randConstructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true,
	"NewChaCha8": true,
}

func runSeededRand(pass *Pass) {
	inspect(pass, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.SelectorExpr:
			checkGlobalRand(pass, e)
		case *ast.CallExpr:
			checkTimeSeed(pass, e)
		}
		return true
	})
}

// checkGlobalRand flags any reference (call or function value) to a
// package-level math/rand function other than the explicit constructors.
// Methods on *rand.Rand have a receiver and are never flagged.
func checkGlobalRand(pass *Pass, sel *ast.SelectorExpr) {
	fn, ok := pass.Pkg.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || !randPkgs[fn.Pkg().Path()] {
		return
	}
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return
	}
	if randConstructors[fn.Name()] {
		return
	}
	pass.Reportf(sel.Pos(),
		"use rand.New(rand.NewSource(seed)) with an explicit seed threaded through the constructor",
		"global math/rand function rand.%s uses the shared implicitly-seeded source", fn.Name())
}

// checkTimeSeed flags RNG constructors whose seed derives from time.Now,
// which makes every run non-reproducible.
func checkTimeSeed(pass *Pass, call *ast.CallExpr) {
	fn := pkgFunc(pass, call.Fun)
	if fn == nil || !randPkgs[fn.Pkg().Path()] || !randConstructors[fn.Name()] {
		return
	}
	for _, arg := range call.Args {
		ast.Inspect(arg, func(n ast.Node) bool {
			// Nested constructors (rand.New(rand.NewSource(...))) are
			// visited on their own; skip them so one bad seed reports once.
			if c, ok := n.(*ast.CallExpr); ok {
				if f := pkgFunc(pass, c.Fun); f != nil && randPkgs[f.Pkg().Path()] && randConstructors[f.Name()] {
					return false
				}
			}
			inner, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if isFunc(pass, inner, "time", "Now") {
				pass.Reportf(call.Pos(),
					"thread a deterministic seed int64 through the enclosing constructor",
					"non-deterministic RNG seed: rand.%s derives its seed from time.Now", fn.Name())
				return false
			}
			return true
		})
	}
}
