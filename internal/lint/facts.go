package lint

import (
	"go/types"
	"strings"
)

// Domain classifies a numeric quantity by unit convention: decibel-domain
// (relative dB or absolute dBm) or linear-domain (ratios, watts, volts,
// hertz). The lattice is flat with a bottom (DomainNone, nothing known) and
// a top (DomainConflict, observed in both domains — treated as unknown by
// the checks so one genuine error does not cascade).
type Domain uint8

const (
	DomainNone Domain = iota
	DomainDB
	DomainLinear
	DomainConflict
)

// String names the domain for diagnostics.
func (d Domain) String() string {
	switch d {
	case DomainDB:
		return "dB"
	case DomainLinear:
		return "linear"
	case DomainConflict:
		return "conflicting"
	}
	return "unknown"
}

// known reports whether the domain carries usable information.
func (d Domain) known() bool { return d == DomainDB || d == DomainLinear }

// join combines two observations of the same quantity.
func (d Domain) join(o Domain) Domain {
	switch {
	case d == DomainNone:
		return o
	case o == DomainNone:
		return d
	case d == o:
		return d
	}
	return DomainConflict
}

// flowDomainOf classifies an identifier (variable, field, constant or
// function name) by its unit suffix. It extends the unitsdiscipline suffix
// conventions with Hz: a frequency or bandwidth is a linear quantity, so
// summing it with a dB value is as wrong as summing watts with dB.
//
// Per-unit rates are handled before plain suffixes: a density like DBmPerHz
// carries its numerator's domain (a PSD in dBm/Hz sums with dB offsets the
// same way dBm does), while a slope per dB (AMPMDegPerDB) is a plain rate
// with no domain — multiplying it by a dB depth is the intended use, not a
// dB×dB error.
func flowDomainOf(name string) Domain {
	if stem, ok := strings.CutSuffix(name, "PerHz"); ok {
		return flowDomainOf(stem)
	}
	if strings.HasSuffix(name, "PerDB") || strings.HasSuffix(name, "PerDBm") {
		return DomainNone
	}
	for _, s := range dbSuffixes {
		if strings.HasSuffix(name, s) {
			return DomainDB
		}
	}
	for _, s := range linSuffixes {
		if strings.HasSuffix(name, s) {
			return DomainLinear
		}
	}
	if strings.HasSuffix(name, "Hz") {
		return DomainLinear
	}
	return DomainNone
}

// FuncFact is the unit-domain summary of one function: the domain of each
// parameter (flattened signature order) and of the first result. DomainNone
// entries claim nothing.
type FuncFact struct {
	Params []Domain
	Result Domain
}

// empty reports whether the fact claims nothing at all.
func (f FuncFact) empty() bool {
	if f.Result.known() {
		return false
	}
	for _, d := range f.Params {
		if d.known() {
			return false
		}
	}
	return true
}

// FactStore accumulates cross-package facts during a Run. Packages are
// analyzed in dependency order, so by the time a pass inspects a call into
// another module package, the callee's facts are already published. Objects
// are shared between packages of one load (one *types.Func per function), so
// the store can key facts directly on them.
type FactStore struct {
	funcs map[*types.Func]FuncFact
}

// NewFactStore returns an empty store.
func NewFactStore() *FactStore {
	return &FactStore{funcs: make(map[*types.Func]FuncFact)}
}

// SetFunc publishes the unit-domain fact for a function. Empty facts are
// dropped.
func (s *FactStore) SetFunc(fn *types.Func, fact FuncFact) {
	if fn == nil || fact.empty() {
		return
	}
	s.funcs[fn] = fact
}

// Func returns the published fact for a function, consulting the built-in
// internal/units table first: the units package is the root of the unit
// system, and its conversions define the domain seeds every other fact
// propagates from.
func (s *FactStore) Func(fn *types.Func) (FuncFact, bool) {
	if fn == nil {
		return FuncFact{}, false
	}
	if fn.Pkg() != nil && isUnitsPackage(fn.Pkg().Path()) {
		if fact, ok := unitsFuncFacts[fn.Name()]; ok {
			return fact, true
		}
	}
	fact, ok := s.funcs[fn]
	return fact, ok
}

// isUnitsPackage reports whether the path names the module's units package.
func isUnitsPackage(path string) bool {
	return path == "internal/units" || strings.HasSuffix(path, "/internal/units")
}

// unitsFuncFacts seeds the dataflow with the ground-truth signatures of
// internal/units: these are the conversions between the two domains, so both
// their parameter and result domains are known exactly (name-suffix
// inference would misread several of them, e.g. DBToVoltageGain returns a
// linear amplitude ratio with no suffix).
var unitsFuncFacts = map[string]FuncFact{
	"DBToLinear":        {Params: []Domain{DomainDB}, Result: DomainLinear},
	"LinearToDB":        {Params: []Domain{DomainLinear}, Result: DomainDB},
	"DBToVoltageGain":   {Params: []Domain{DomainDB}, Result: DomainLinear},
	"VoltageGainToDB":   {Params: []Domain{DomainLinear}, Result: DomainDB},
	"DBmToWatts":        {Params: []Domain{DomainDB}, Result: DomainLinear},
	"WattsToDBm":        {Params: []Domain{DomainLinear}, Result: DomainDB},
	"DBmToAmplitude":    {Params: []Domain{DomainDB}, Result: DomainLinear},
	"AmplitudeToDBm":    {Params: []Domain{DomainLinear}, Result: DomainDB},
	"ThermalNoisePower": {Params: []Domain{DomainLinear}, Result: DomainLinear},
	"ThermalNoiseDBm":   {Params: []Domain{DomainLinear}, Result: DomainDB},
	"MeanPower":         {Params: []Domain{DomainNone}, Result: DomainLinear},
	"MeanPowerDBm":      {Params: []Domain{DomainNone}, Result: DomainDB},
	"PeakPower":         {Params: []Domain{DomainNone}, Result: DomainLinear},
	"PAPRdB":            {Params: []Domain{DomainNone}, Result: DomainDB},
	"SetPowerDBm":       {Params: []Domain{DomainNone, DomainDB}, Result: DomainLinear},
	"Scale":             {Params: []Domain{DomainNone, DomainLinear}},
}
