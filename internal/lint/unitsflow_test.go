package lint

import "testing"

func TestUnitsFlow(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want []finding
	}{
		{
			name: "dB laundered through unsuffixed local",
			src: `package rf

func mix(gainDB, noiseWatts float64) float64 {
	x := gainDB
	return x + noiseWatts
}
`,
			want: []finding{
				{5, "arithmetic mixes dB-domain"},
			},
		},
		{
			name: "direct suffix mixing is unitsdiscipline's report",
			src: `package rf

func mix(gainDB, noiseWatts float64) float64 {
	return gainDB + noiseWatts
}
`,
			want: nil,
		},
		{
			name: "assignment chain resolves over fixpoint rounds",
			src: `package rf

func mix(gainDB, noiseWatts float64) float64 {
	a := gainDB
	b := a
	c := b
	return c + noiseWatts
}
`,
			want: []finding{
				{7, "arithmetic mixes dB-domain"},
			},
		},
		{
			name: "dB times dB product",
			src: `package rf

func gain(aDB, bDB float64) float64 {
	return aDB * bDB
}
`,
			want: []finding{
				{4, "product of two dB-domain values"},
			},
		},
		{
			name: "scaling dB by plain factor is clean",
			src: `package rf

func half(aDB float64) float64 {
	return 0.5 * aDB
}
`,
			want: nil,
		},
		{
			name: "per-dB slope times dB is clean",
			src: `package rf

func phase(ampmDegPerDB, depthDB float64) float64 {
	return ampmDegPerDB * depthDB
}
`,
			want: nil,
		},
		{
			name: "dB argument into linear parameter of intra-package callee",
			src: `package rf

func amp(gLin float64) float64 { return gLin }

func use(gainDB float64) float64 {
	return amp(gainDB)
}
`,
			want: []finding{
				{6, `dB-domain argument "gainDB" passed to linear-domain parameter "gLin" of amp`},
			},
		},
		{
			name: "linear flows out of suffix-named function into dB sum",
			src: `package rf

func noiseFloorWatts() float64 { return 1e-12 }

func margin(snrDB float64) float64 {
	x := noiseFloorWatts()
	return x + snrDB
}
`,
			want: []finding{
				{7, "arithmetic mixes dB-domain"},
			},
		},
		{
			name: "composite-literal field mismatch",
			src: `package rf

type Cfg struct{ NoiseDBm float64 }

func build(noiseWatts float64) Cfg {
	return Cfg{NoiseDBm: noiseWatts}
}
`,
			want: []finding{
				{6, `linear-domain value "noiseWatts" assigned to dB-domain field "NoiseDBm"`},
			},
		},
		{
			name: "return contradicting name-suffixed result",
			src: `package rf

func totalDB(aWatts float64) float64 {
	return aWatts
}
`,
			want: []finding{
				{4, `linear-domain value "aWatts" returned from dB-suffixed function "totalDB"`},
			},
		},
		{
			name: "per-Hz density carries the numerator domain",
			src: `package rf

func densityDBmPerHz(powerDBm float64) float64 {
	return powerDBm
}
`,
			want: nil,
		},
		{
			name: "compound assignment mixing",
			src: `package rf

func acc(lossDB float64) float64 {
	total := lossDB
	sumWatts := 0.0
	sumWatts += total
	return sumWatts
}
`,
			want: []finding{
				{6, "compound assignment mixes"},
			},
		},
		{
			name: "ignore directive suppresses",
			src: `package rf

func mix(gainDB, noiseWatts float64) float64 {
	x := gainDB
	//lint:ignore unitsflow intentional raw mix for the fixture
	return x + noiseWatts
}
`,
			want: nil,
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			checkFindings(t, analyzeFixture(t, "example.com/m/internal/rf", c.src, UnitsFlow), c.want)
		})
	}
}

// TestUnitsFlowCrossPackage proves facts published while analyzing an
// imported package reach the importer's pass: the linear domain of
// a.NoiseFloorWatts crosses the package boundary and collides with a dB term
// in b — a case the single-expression unitsdiscipline analyzer cannot see.
func TestUnitsFlowCrossPackage(t *testing.T) {
	_, pkgs := loadTempModule(t, "fixture.example/flow", map[string]string{
		"a/a.go": `package a

// NoiseFloorWatts reports the receiver noise floor as linear power.
func NoiseFloorWatts() float64 { return 4e-15 }
`,
		"b/b.go": `package b

import "fixture.example/flow/a"

func Margin(snrDB float64) float64 {
	floor := a.NoiseFloorWatts()
	return floor + snrDB
}
`,
	})
	diags := Run(pkgs, []*Analyzer{UnitsFlow})
	checkFindings(t, diags, []finding{
		{7, "arithmetic mixes dB-domain"},
	})
}

// TestUnitsFlowUnitsTableCrossPackage checks the hardcoded internal/units
// fact table: a dB value passed to a linear parameter of a units conversion
// is flagged at the call site in another package.
func TestUnitsFlowUnitsTableCrossPackage(t *testing.T) {
	_, pkgs := loadTempModule(t, "fixture.example/conv", map[string]string{
		"internal/units/units.go": `package units

import "math"

// WattsToDBm converts linear watts to dBm.
func WattsToDBm(w float64) float64 { return 10*math.Log10(w) + 30 }
`,
		"internal/rf/rf.go": `package rf

import "fixture.example/conv/internal/units"

func Wrong(snrDB float64) float64 {
	return units.WattsToDBm(snrDB)
}
`,
	})
	diags := Run(pkgs, []*Analyzer{UnitsFlow})
	checkFindings(t, diags, []finding{
		{6, "dB-domain argument"},
	})
}

func TestFlowDomainOf(t *testing.T) {
	cases := []struct {
		name string
		want Domain
	}{
		{"gainDB", DomainDB},
		{"powerDBm", DomainDB},
		{"noiseWatts", DomainLinear},
		{"snrLin", DomainLinear},
		{"bandwidthHz", DomainLinear},
		{"densityDBmPerHz", DomainDB}, // numerator domain
		{"ampmDegPerDB", DomainNone},  // slope per dB, not a dB value
		{"voltsPerDBm", DomainNone},   // slope per dBm
		{"plain", DomainNone},
	}
	for _, c := range cases {
		if got := flowDomainOf(c.name); got != c.want {
			t.Errorf("flowDomainOf(%q) = %v, want %v", c.name, got, c.want)
		}
	}
}
