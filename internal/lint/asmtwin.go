package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"strings"
)

// AsmTwin enforces the internal/kernels assembly-tier contract: hand-written
// assembly is only admissible behind a pure-Go twin and a differential test.
// For every assembly stub — a bodyless function declaration, which is how a
// TEXT symbol surfaces in the package — three facts must hold, each of which
// would otherwise erode the bit-exactness story silently:
//
//  1. the stub carries //go:noescape. The kernels never retain their
//     arguments, and without the directive every planar slice passed to an
//     assembly body is forced to escape, which the hotpath allocation gates
//     then miss because the allocation moves to the caller;
//  2. the stub is named fooAsm and the package declares a pure-Go twin fooGo
//     with the identical signature and a body. The twin is the semantic
//     definition — the assembly is an implementation of it, the purego build
//     runs it, and the pairing is what the differential suite pins;
//  3. some _test.go file in the package references the stub by name, so a
//     stub cannot land without differential coverage against its twin.
//
// Feature-detection probes (no parameters, e.g. a CPUID wrapper) carry no
// Go-visible data and are exempt from the twin and test requirements.
var AsmTwin = &Analyzer{
	Name: "asmtwin",
	Doc: "require every assembly stub in internal/kernels to carry " +
		"//go:noescape, pair with a pure-Go twin of identical signature " +
		"(fooAsm/fooGo), and be referenced by a differential test",
	Run: runAsmTwin,
}

func runAsmTwin(pass *Pass) {
	if !isKernelPackage(pass.Pkg.Path) {
		return
	}
	// Index the package's function declarations by name.
	decls := make(map[string]*ast.FuncDecl)
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Recv == nil {
				decls[fd.Name.Name] = fd
			}
		}
	}
	var testIdents map[string]bool // lazily loaded: most packages have no stubs
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body != nil || fd.Recv != nil {
				continue
			}
			name := fd.Name.Name
			if fd.Type.Params == nil || len(fd.Type.Params.List) == 0 {
				continue // feature-detection probe: no Go-visible data
			}
			if !hasNoescapeDirective(fd) {
				pass.Reportf(fd.Pos(),
					"add //go:noescape: the kernels never retain their arguments, and without it every slice argument escapes at the call site",
					"assembly stub %s lacks a //go:noescape directive", name)
			}
			base, ok := strings.CutSuffix(name, "Asm")
			if !ok || base == "" {
				pass.Reportf(fd.Pos(),
					"name assembly stubs fooAsm so the fooGo twin pairing is checkable",
					"assembly stub %s does not follow the fooAsm naming convention", name)
				continue
			}
			twinName := base + "Go"
			twin := decls[twinName]
			switch {
			case twin == nil:
				pass.Reportf(fd.Pos(),
					"declare the pure-Go twin: it is the semantic definition the assembly implements and the purego build runs",
					"assembly stub %s has no pure-Go twin %s", name, twinName)
			case twin.Body == nil:
				pass.Reportf(fd.Pos(),
					"the twin must be pure Go: a second assembly symbol defines nothing to verify against",
					"twin %s of assembly stub %s has no body", twinName, name)
			case !signaturesIdentical(pass, fd, twin):
				pass.Reportf(fd.Pos(),
					"keep stub and twin signatures identical so the differential test can drive both through one call shape",
					"assembly stub %s and twin %s have different signatures", name, twinName)
			}
			if testIdents == nil {
				testIdents = testFileIdents(pass.Pkg.Dir)
			}
			if !testIdents[name] {
				pass.Reportf(fd.Pos(),
					"add the stub to the differential suite (see asmtwins_test.go): assembly must not land without bit-exactness coverage against its twin",
					"assembly stub %s is not referenced by any _test.go file in the package", name)
			}
		}
	}
}

// hasNoescapeDirective reports whether the declaration's doc comment group
// carries the //go:noescape compiler directive.
func hasNoescapeDirective(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if c.Text == "//go:noescape" {
			return true
		}
	}
	return false
}

// signaturesIdentical compares the types of two function declarations.
func signaturesIdentical(pass *Pass, a, b *ast.FuncDecl) bool {
	oa := pass.Pkg.Info.Defs[a.Name]
	ob := pass.Pkg.Info.Defs[b.Name]
	if oa == nil || ob == nil {
		return false
	}
	return types.Identical(oa.Type(), ob.Type())
}

// testFileIdents syntactically parses the package's _test.go files and
// collects every identifier they use. Test files are outside the loader's
// type-checked file set by design, so the reference check is name-based: a
// stub name appearing anywhere in a test file counts as coverage (the
// asmtwins suite calls stubs directly through their SIMD wrappers' names or
// via explicit stub references in its kernel tables). Unreadable files are
// skipped; a missing directory yields no identifiers.
func testFileIdents(dir string) map[string]bool {
	idents := make(map[string]bool)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return idents
	}
	fset := token.NewFileSet()
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.SkipObjectResolution)
		if err != nil {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				idents[id.Name] = true
			}
			return true
		})
	}
	return idents
}
