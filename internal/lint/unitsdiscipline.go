package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"
)

// UnitsDiscipline enforces the dB/linear conversion conventions of
// internal/units: power conversions must go through the units helpers, and
// arithmetic must not mix dB-domain and linear-domain quantities without an
// explicit conversion.
var UnitsDiscipline = &Analyzer{
	Name: "unitsdiscipline",
	Doc: "flag inline math.Pow(10, x/10), math.Pow(10, x/20) and 10|20*math.Log10(x) " +
		"conversions outside internal/units, and arithmetic mixing dB-suffixed with " +
		"linear-suffixed identifiers without a units.* conversion",
	Run: runUnitsDiscipline,
}

func runUnitsDiscipline(pass *Pass) {
	// The units package is the one place the raw formulas belong.
	if pass.Pkg.Path == "internal/units" || strings.HasSuffix(pass.Pkg.Path, "/internal/units") {
		return
	}
	inspect(pass, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.CallExpr:
			checkInlinePow(pass, e)
		case *ast.BinaryExpr:
			checkInlineLog(pass, e)
			checkDomainMix(pass, e)
		}
		return true
	})
}

// pkgFunc returns the package-level function an expression refers to, or nil.
func pkgFunc(pass *Pass, e ast.Expr) *types.Func {
	var id *ast.Ident
	switch f := unparen(e).(type) {
	case *ast.Ident:
		id = f
	case *ast.SelectorExpr:
		id = f.Sel
	default:
		return nil
	}
	fn, ok := pass.Pkg.Info.Uses[id].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return nil
	}
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return nil
	}
	return fn
}

// isFunc reports whether the expression refers to pkgPath.name.
func isFunc(pass *Pass, e ast.Expr, pkgPath, name string) bool {
	fn := pkgFunc(pass, e)
	return fn != nil && fn.Pkg().Path() == pkgPath && fn.Name() == name
}

// constFloat returns the expression's constant numeric value, if any.
func constFloat(pass *Pass, e ast.Expr) (float64, bool) {
	tv, ok := pass.Pkg.Info.Types[e]
	if !ok || tv.Value == nil {
		return 0, false
	}
	v := constant.ToFloat(tv.Value)
	if v.Kind() != constant.Float {
		return 0, false
	}
	f, _ := constant.Float64Val(v)
	return f, true
}

// isConst reports whether the expression is the numeric constant want.
func isConst(pass *Pass, e ast.Expr, want float64) bool {
	f, ok := constFloat(pass, e)
	//lint:ignore floateq matching exactly-representable spelled constants (10, 20)
	return ok && f == want
}

// checkInlinePow flags math.Pow(10, x/10) and math.Pow(10, x/20).
func checkInlinePow(pass *Pass, call *ast.CallExpr) {
	if !isFunc(pass, call.Fun, "math", "Pow") || len(call.Args) != 2 {
		return
	}
	if !isConst(pass, call.Args[0], 10) {
		return
	}
	div, ok := unparen(call.Args[1]).(*ast.BinaryExpr)
	if !ok || div.Op != token.QUO {
		return
	}
	switch {
	case isConst(pass, div.Y, 10):
		pass.Report(call.Pos(),
			"inline dB-to-linear conversion math.Pow(10, x/10)",
			"use units.DBToLinear, or units.DBmToWatts for absolute powers")
	case isConst(pass, div.Y, 20):
		pass.Report(call.Pos(),
			"inline dB-to-voltage-gain conversion math.Pow(10, x/20)",
			"use units.DBToVoltageGain")
	}
}

// checkInlineLog flags 10*math.Log10(x) and 20*math.Log10(x).
func checkInlineLog(pass *Pass, bin *ast.BinaryExpr) {
	if bin.Op != token.MUL {
		return
	}
	for _, operands := range [][2]ast.Expr{{bin.X, bin.Y}, {bin.Y, bin.X}} {
		k, other := operands[0], operands[1]
		call, ok := unparen(other).(*ast.CallExpr)
		if !ok || !isFunc(pass, call.Fun, "math", "Log10") {
			continue
		}
		switch {
		case isConst(pass, k, 10):
			pass.Report(bin.Pos(),
				"inline linear-to-dB conversion 10*math.Log10(x)",
				"use units.LinearToDB, or units.WattsToDBm for absolute powers")
		case isConst(pass, k, 20):
			pass.Report(bin.Pos(),
				"inline voltage-gain-to-dB conversion 20*math.Log10(x)",
				"use units.VoltageGainToDB")
		}
		return
	}
}

// Identifier-suffix conventions for the two unit domains. A name carries a
// domain only through its suffix; converted values appear as units.* calls,
// which carry no domain and therefore never trip the mixing check.
var (
	dbSuffixes  = []string{"DB", "dB", "DBm", "dBm"}
	linSuffixes = []string{"Lin", "lin", "Linear", "Watts", "W"}
)

const (
	domainNone = iota
	domainDB
	domainLinear
)

// nameDomain classifies an identifier name by its unit suffix.
func nameDomain(name string) int {
	for _, s := range dbSuffixes {
		if strings.HasSuffix(name, s) {
			return domainDB
		}
	}
	for _, s := range linSuffixes {
		if strings.HasSuffix(name, s) {
			return domainLinear
		}
	}
	return domainNone
}

// exprDomain classifies an operand: only bare identifiers and field
// selections (possibly negated or parenthesized) carry a domain.
func exprDomain(pass *Pass, e ast.Expr) (int, string) {
	switch x := unparen(e).(type) {
	case *ast.UnaryExpr:
		if x.Op == token.SUB || x.Op == token.ADD {
			return exprDomain(pass, x.X)
		}
	case *ast.Ident:
		if _, isVar := pass.Pkg.Info.Uses[x].(*types.Var); isVar {
			return nameDomain(x.Name), x.Name
		}
	case *ast.SelectorExpr:
		if sel, ok := pass.Pkg.Info.Selections[x]; ok && sel.Kind() == types.FieldVal {
			return nameDomain(x.Sel.Name), x.Sel.Name
		}
	}
	return domainNone, ""
}

// checkDomainMix flags arithmetic whose operands carry opposite unit
// domains, e.g. gainDB * powerWatts.
func checkDomainMix(pass *Pass, bin *ast.BinaryExpr) {
	switch bin.Op {
	case token.ADD, token.SUB, token.MUL, token.QUO:
	default:
		return
	}
	dx, nx := exprDomain(pass, bin.X)
	dy, ny := exprDomain(pass, bin.Y)
	if dx == domainNone || dy == domainNone || dx == dy {
		return
	}
	dbName, linName := nx, ny
	if dx == domainLinear {
		dbName, linName = ny, nx
	}
	pass.Reportf(bin.Pos(),
		"convert one side with units.DBToLinear/units.LinearToDB (or the dBm/watts forms) first",
		"arithmetic mixes dB-domain %q with linear-domain %q", dbName, linName)
}
