package lint

import (
	"os"
	"path/filepath"
	"testing"
)

// moduleRoot walks up from the working directory to the go.mod.
func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod found above the test directory")
		}
		dir = parent
	}
}

// TestSuiteCleanOnTree runs the full analyzer suite over the whole module
// and requires zero findings: the repository itself is the largest fixture,
// and this is the same gate scripts/check.sh enforces in CI.
func TestSuiteCleanOnTree(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short mode")
	}
	root := moduleRoot(t)
	pkgs, err := LoadPackages(root, []string{"./..."})
	if err != nil {
		t.Fatalf("loading module packages: %v", err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("loaded only %d packages; pattern expansion is broken", len(pkgs))
	}
	// StaleIgnores on: every //lint:ignore directive in the tree must still
	// be earning its keep.
	for _, d := range RunOpts(pkgs, All(), Options{StaleIgnores: true}) {
		t.Errorf("unexpected finding: %s", d)
	}
}

// TestEscapeCleanOnTree runs the compiler-backed escape gate over the whole
// module and requires zero findings: every //lint:hotpath function either
// triggers no escape diagnostics or justifies each one with an ignore
// directive, and no escape-ignore directive is stale.
func TestEscapeCleanOnTree(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles the hot packages with -gcflags=-m; skipped in -short mode")
	}
	root := moduleRoot(t)
	pkgs, err := LoadPackages(root, []string{"./..."})
	if err != nil {
		t.Fatalf("loading module packages: %v", err)
	}
	diags, err := EscapeCheck(pkgs, Options{StaleIgnores: true})
	if err != nil {
		t.Fatalf("EscapeCheck: %v", err)
	}
	for _, d := range diags {
		t.Errorf("unexpected finding: %s", d)
	}
}

// TestLoadPackagesSingleDir checks non-recursive pattern resolution.
func TestLoadPackagesSingleDir(t *testing.T) {
	root := moduleRoot(t)
	pkgs, err := LoadPackages(root, []string{"./internal/units"})
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 || pkgs[0].Path != "wlansim/internal/units" {
		t.Fatalf("got %+v, want exactly wlansim/internal/units", pkgs)
	}
	if len(pkgs[0].Files) == 0 || pkgs[0].TPkg == nil {
		t.Fatal("package loaded without files or type information")
	}
}
