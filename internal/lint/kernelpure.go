package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"
)

// KernelPure enforces the internal/kernels package contract (see that
// package's doc comment): the ILP kernel layer must stay a leaf of pure
// scalar math. Three invariants are checked, each of which would silently
// erode the layer's guarantees if violated:
//
//  1. the package imports only "math" and "os" — "os" exists solely for the
//     WLANSIM_SIMD dispatch gate read once at init; any other import
//     smuggles in allocation sources, I/O or RNG state the differential
//     harness cannot see;
//  2. hot functions allocate nothing — make/new/append and composite
//     literals are confined to constructors (New*), one-time init, and the
//     Grow convention for caller-owned buffers, so a kernel held across
//     frames stays at a zero-allocation steady state;
//  3. loop bodies contain no complex128 arithmetic — operands arrive split
//     into planes, and a single complex multiply in an inner loop quietly
//     reintroduces the 4-mul/2-add lockstep the planar layout exists to
//     break (the real/imag/complex conversion builtins at plane boundaries
//     are fine).
//
// Legitimate exceptions carry a //lint:ignore kernelpure directive with the
// justification.
var KernelPure = &Analyzer{
	Name: "kernelpure",
	Doc: "enforce the internal/kernels purity contract: imports limited to " +
		"\"math\" and \"os\" (dispatch gate), no allocation outside " +
		"constructors/init, and no complex arithmetic inside loop bodies",
	Run: runKernelPure,
}

// kernelPkgSuffix identifies the one package the contract applies to.
const kernelPkgSuffix = "internal/kernels"

func isKernelPackage(path string) bool {
	return path == kernelPkgSuffix || strings.HasSuffix(path, "/"+kernelPkgSuffix)
}

// kernelAllocExempt reports whether the named function may allocate:
// constructors build the tables they return, init fills package-level tables
// once at startup, and Grow is the caller-owned-buffer convention — the one
// method a Vec-style type resizes through, reached only at frame setup.
func kernelAllocExempt(name string) bool {
	return name == "init" || name == "Grow" || strings.HasPrefix(name, "New")
}

func runKernelPure(pass *Pass) {
	if !isKernelPackage(pass.Pkg.Path) {
		return
	}
	// Invariant 1: imports limited to "math" and "os" (the latter for the
	// WLANSIM_SIMD dispatch gate only).
	for _, f := range pass.Pkg.Files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil || path == "math" || path == "os" {
				continue
			}
			pass.Reportf(imp.Pos(),
				"keep the kernels layer a leaf: pass data in planar slices and let the caller own I/O, RNGs and buffers",
				"kernels package imports %q; the purity contract allows only \"math\" and \"os\"", path)
		}
	}
	// Invariants 2 and 3 are scoped per function declaration.
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkKernelAllocs(pass, fd)
			checkKernelComplexLoops(pass, fd)
		}
	}
}

// checkKernelAllocs flags allocation expressions in non-exempt functions.
func checkKernelAllocs(pass *Pass, fd *ast.FuncDecl) {
	if kernelAllocExempt(fd.Name.Name) {
		return
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.UnaryExpr:
			// &T{...} heap-allocates when it escapes; value array/struct
			// literals below stay on the stack and are allowed.
			if cl, ok := unparen(e.X).(*ast.CompositeLit); ok && e.Op == token.AND {
				pass.Reportf(cl.Pos(),
					"move construction into a New* constructor or grow a caller-owned buffer",
					"address of composite literal allocates in kernel function %s", fd.Name.Name)
				return false
			}
		case *ast.CompositeLit:
			if t, ok := pass.Pkg.Info.Types[e]; ok && t.Type != nil {
				switch t.Type.Underlying().(type) {
				case *types.Slice, *types.Map:
					pass.Reportf(e.Pos(),
						"move construction into a New* constructor or grow a caller-owned buffer",
						"composite literal allocates in kernel function %s", fd.Name.Name)
				}
			}
		case *ast.CallExpr:
			id, ok := unparen(e.Fun).(*ast.Ident)
			if !ok {
				return true
			}
			if _, isBuiltin := pass.Pkg.Info.Uses[id].(*types.Builtin); !isBuiltin {
				return true
			}
			switch id.Name {
			case "make", "new", "append":
				pass.Reportf(e.Pos(),
					"hot kernels must run allocation-free: take caller-owned output slices, or move growth into a constructor",
					"%s in kernel function %s", id.Name, fd.Name.Name)
			}
		}
		return true
	})
}

// checkKernelComplexLoops flags complex-typed arithmetic inside loop bodies.
func checkKernelComplexLoops(pass *Pass, fd *ast.FuncDecl) {
	var walkLoopBody func(n ast.Node) bool
	checkExpr := func(n ast.Node) bool {
		var pos ast.Node
		switch e := n.(type) {
		case *ast.BinaryExpr:
			if isComplexType(pass, e.X) || isComplexType(pass, e.Y) {
				pos = e
			}
		case *ast.UnaryExpr:
			if isComplexType(pass, e.X) {
				pos = e
			}
		case *ast.AssignStmt:
			// Compound arithmetic assignment (x[i] *= w) is an AssignStmt,
			// not a BinaryExpr.
			if e.Tok != token.ASSIGN && e.Tok != token.DEFINE &&
				(isComplexType(pass, e.Lhs[0]) || isComplexType(pass, e.Rhs[0])) {
				pos = e
			}
		case *ast.IncDecStmt:
			if isComplexType(pass, e.X) {
				pos = e
			}
		}
		if pos != nil {
			pass.Reportf(pos.Pos(),
				"split the operands into real/imaginary planes (Vec) so the loop schedules independent scalar chains",
				"complex arithmetic inside a loop body in kernel function %s", fd.Name.Name)
			return false // one report per expression tree
		}
		return true
	}
	walkLoopBody = func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.ForStmt:
			ast.Inspect(s.Body, checkExpr)
			return false
		case *ast.RangeStmt:
			ast.Inspect(s.Body, checkExpr)
			return false
		}
		return true
	}
	ast.Inspect(fd.Body, walkLoopBody)
}

// isComplexType reports whether the expression's type is a complex kind.
func isComplexType(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.Pkg.Info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsComplex != 0
}
