package core

import (
	"sync"
	"testing"

	"wlansim/internal/measure"
	"wlansim/internal/sim"
)

// TestSweepRaceSmoke runs two identical small BER sweeps concurrently
// through the simulation manager (sim.Sweep driving full Bench runs).
// Under `go test -race` this is the gate for the ROADMAP's parallel-sweep
// work: any shared RNG or mutable block state between concurrently built
// benches trips the race detector, and even without -race a divergence
// between the two series exposes hidden shared state.
func TestSweepRaceSmoke(t *testing.T) {
	run := func() (*measure.Series, error) {
		sweep := &sim.Sweep{
			Name:   "ber-vs-power",
			XLabel: "wanted power [dBm]",
			YLabel: "BER",
			Values: []float64{-70, -62},
			Run: func(powerDBm float64) (float64, error) {
				cfg := DefaultConfig()
				cfg.Packets = 1
				cfg.PSDULen = 40
				cfg.WantedPowerDBm = powerDBm
				bench, err := NewBench(cfg)
				if err != nil {
					return 0, err
				}
				res, err := bench.Run()
				if err != nil {
					return 0, err
				}
				return res.BER(), nil
			},
		}
		return sweep.Execute()
	}

	const workers = 2
	series := make([]*measure.Series, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			series[i], errs[i] = run()
		}(i)
	}
	wg.Wait()

	for i, err := range errs {
		if err != nil {
			t.Fatalf("concurrent sweep %d failed: %v", i, err)
		}
	}
	for i := 1; i < workers; i++ {
		if len(series[i].Points) != len(series[0].Points) {
			t.Fatalf("sweep %d returned %d points, sweep 0 returned %d",
				i, len(series[i].Points), len(series[0].Points))
		}
		for j, p := range series[i].Points {
			q := series[0].Points[j]
			if p.X != q.X || p.Y != q.Y {
				t.Errorf("point %d diverges between concurrent sweeps: (%g,%g) vs (%g,%g); shared state suspected",
					j, p.X, p.Y, q.X, q.Y)
			}
		}
	}
}
