package core

import (
	"fmt"
	"math/rand"
	"time"

	"wlansim/internal/analog"
	"wlansim/internal/channel"
	"wlansim/internal/dsp"
	"wlansim/internal/measure"
	"wlansim/internal/phy"
	"wlansim/internal/rf"
	"wlansim/internal/seed"
	"wlansim/internal/sim"
)

// runBERPoint runs one fully configured scenario and packages the measured
// BER with its confidence interval as a sweep point. It is the shared
// RunPoint body of the BER sweeps.
func runBERPoint(cfg Config) (measure.Point, error) {
	bench, err := NewBench(cfg)
	if err != nil {
		return measure.Point{}, err
	}
	res, err := bench.Run()
	if err != nil {
		return measure.Point{}, err
	}
	return res.Counter.Point(), nil
}

// newSweepCache builds the stage cache one sweep's points share, honoring
// the base config's cache knobs: an explicitly provided Cache wins, a nil
// cache disables sharing entirely when DisableStageCache is set, and
// CacheBytes bounds the resident bytes (0 selects sim.DefaultCacheBytes).
func newSweepCache(base Config) *sim.StageCache {
	if base.DisableStageCache {
		return nil
	}
	if base.Cache != nil {
		return base.Cache
	}
	return sim.NewStageCache(base.CacheBytes)
}

// AdjacentChannelSpec returns the paper's first adjacent channel: +20 MHz,
// 16 dB above the wanted level (§2.2).
func AdjacentChannelSpec(wantedDBm float64) InterfererSpec {
	return InterfererSpec{OffsetHz: 20e6, PowerDBm: wantedDBm + 16, RateMbps: 24}
}

// SecondAdjacentChannelSpec returns the second adjacent channel: +40 MHz,
// 32 dB above the wanted level (§2.2).
func SecondAdjacentChannelSpec(wantedDBm float64) InterfererSpec {
	return InterfererSpec{OffsetHz: 40e6, PowerDBm: wantedDBm + 32, RateMbps: 24}
}

// Figure5Config returns the scenario behind Figure 5: BER versus the
// Chebyshev channel-filter passband edge with the adjacent channel present.
func Figure5Config() Config {
	cfg := DefaultConfig()
	cfg.RateMbps = 48
	cfg.PSDULen = 100
	cfg.Packets = 8
	cfg.WantedPowerDBm = -70
	cfg.Interferers = []InterfererSpec{AdjacentChannelSpec(cfg.WantedPowerDBm)}
	// A 7th-order filter gives the sharp band edge of the paper's design,
	// so an underdimensioned passband visibly cuts the outer subcarriers.
	cfg.TuneRF = func(rc *rf.ReceiverConfig) { rc.ChannelFilterOrder = 7 }
	return cfg
}

// FilterBandwidthSweep reproduces Figure 5: it sweeps the channel-select
// filter passband edge (Hz) and measures the BER. The x axis is reported in
// units of 1e8 Hz like the paper's plot. Points run on base.Workers
// goroutines; each point seeds its packets from (base.Seed, edge).
//
// The filter edge first matters inside the front end (StageFrontEnd) — and
// within it, only at the channel-select filter — so the sweep's points share
// not just the TX synthesis and channel composition of every packet but the
// whole front-end segment upstream of the filter (LNA, mixers, DC block)
// through the invariant-prefix stage cache (SweptFrontEndFilterOnly).
func FilterBandwidthSweep(base Config, edgesHz []float64) (*measure.Series, error) {
	cache := newSweepCache(base)
	sweep := &sim.Sweep{
		Name:        "BER vs filter bandwidth",
		XLabel:      "passband edge frequency (1.0e8 Hz)",
		YLabel:      "bit error rate",
		Values:      edgesHz,
		Workers:     base.Workers,
		OnPointDone: base.OnSweepPoint,
		RunPoint: func(edge float64) (measure.Point, error) {
			cfg := base
			cfg.Seed = seed.ForPoint(base.Seed, edge)
			cfg.ContentSeed = base.Seed
			cfg.SweptStage = StageFrontEnd
			cfg.SweptFrontEndFilterOnly = true
			cfg.Cache = cache
			prev := base.TuneRF
			cfg.TuneRF = func(rc *rf.ReceiverConfig) {
				if prev != nil {
					prev(rc)
				}
				rc.ChannelFilterEdgeHz = edge
			}
			return runBERPoint(cfg)
		},
	}
	series, err := sweep.Execute()
	if err != nil {
		return nil, err
	}
	// Report the x axis in units of 1e8 Hz, matching the paper's figure.
	for i := range series.Points {
		series.Points[i].X /= 1e8
	}
	if cache != nil {
		series.Cache = cache.Stats()
	}
	return series, nil
}

// Figure6Config returns the scenario behind Figure 6: BER versus the first
// LNA's compression point, with and without the adjacent channel.
func Figure6Config() Config {
	cfg := DefaultConfig()
	cfg.RateMbps = 24
	cfg.PSDULen = 100
	cfg.Packets = 8
	// High signal level (paper §2.2: wanted up to -23 dBm, adjacent 16 dB
	// hotter): the +16 dB adjacent channel drives the LNA into compression
	// when its 1 dB compression point is set too low.
	cfg.WantedPowerDBm = -40
	return cfg
}

// CompressionPointSweep reproduces one curve of Figure 6: BER versus the
// input 1 dB compression point of the first LNA (dBm). withAdjacent adds the
// +16 dB adjacent channel.
func CompressionPointSweep(base Config, compressionDBm []float64, withAdjacent bool) (*measure.Series, error) {
	label := "non adjacent channel"
	if withAdjacent {
		label = "adjacent channel"
	}
	cache := newSweepCache(base)
	sweep := &sim.Sweep{
		Name:        label,
		XLabel:      "compression point of LNA1 (dBm)",
		YLabel:      "bit error rate",
		Values:      compressionDBm,
		Workers:     base.Workers,
		OnPointDone: base.OnSweepPoint,
		RunPoint: func(cp float64) (measure.Point, error) {
			cfg := base
			cfg.Seed = seed.ForPoint(base.Seed, cp)
			cfg.ContentSeed = base.Seed
			cfg.SweptStage = StageFrontEnd
			cfg.Cache = cache
			if withAdjacent {
				cfg.Interferers = []InterfererSpec{AdjacentChannelSpec(cfg.WantedPowerDBm)}
			} else {
				cfg.Interferers = nil
			}
			prev := base.TuneRF
			cfg.TuneRF = func(rc *rf.ReceiverConfig) {
				if prev != nil {
					prev(rc)
				}
				rc.LNA.Model = rf.Cubic
				rc.LNA.UseCompression = true
				rc.LNA.CompressionDBm = cp
			}
			return runBERPoint(cfg)
		},
	}
	series, err := sweep.Execute()
	if err != nil {
		return nil, err
	}
	if cache != nil {
		series.Cache = cache.Stats()
	}
	return series, nil
}

// IP3Sweep measures BER versus the LNA's input-referred IP3 (dBm), the
// other nonlinearity sweep mentioned in §5.1.
func IP3Sweep(base Config, iip3DBm []float64, withAdjacent bool) (*measure.Series, error) {
	label := "BER vs LNA IIP3"
	cache := newSweepCache(base)
	sweep := &sim.Sweep{
		Name:        label,
		XLabel:      "IIP3 of LNA1 (dBm)",
		YLabel:      "bit error rate",
		Values:      iip3DBm,
		Workers:     base.Workers,
		OnPointDone: base.OnSweepPoint,
		RunPoint: func(ip3 float64) (measure.Point, error) {
			cfg := base
			cfg.Seed = seed.ForPoint(base.Seed, ip3)
			cfg.ContentSeed = base.Seed
			cfg.SweptStage = StageFrontEnd
			cfg.Cache = cache
			if withAdjacent {
				cfg.Interferers = []InterfererSpec{AdjacentChannelSpec(cfg.WantedPowerDBm)}
			}
			prev := base.TuneRF
			cfg.TuneRF = func(rc *rf.ReceiverConfig) {
				if prev != nil {
					prev(rc)
				}
				rc.LNA.Model = rf.Cubic
				rc.LNA.UseCompression = false
				rc.LNA.IIP3DBm = ip3
			}
			return runBERPoint(cfg)
		},
	}
	series, err := sweep.Execute()
	if err != nil {
		return nil, err
	}
	if cache != nil {
		series.Cache = cache.Stats()
	}
	return series, nil
}

// SpectrumExperiment reproduces Figure 4: the PSD of an OFDM burst with the
// first adjacent channel, centered at the 5.2 GHz carrier. The seed makes
// the random payloads of the wanted and adjacent bursts reproducible.
func SpectrumExperiment(wantedDBm float64, withSecondAdjacent bool, seed int64) (*dsp.PSD, measure.ChannelPowerReport, error) {
	rng := rand.New(rand.NewSource(seed))
	total := 6000
	wanted, err := interfererWaveform(24, total, rng)
	if err != nil {
		return nil, measure.ChannelPowerReport{}, err
	}
	adj, err := interfererWaveform(24, total, rng)
	if err != nil {
		return nil, measure.ChannelPowerReport{}, err
	}
	emitters := []channel.Emitter{
		{Samples: wanted, OffsetHz: 0, PowerDBm: wantedDBm},
		{Samples: adj, OffsetHz: 20e6, PowerDBm: wantedDBm + 16},
	}
	maxOff := 20e6
	if withSecondAdjacent {
		adj2, err := interfererWaveform(24, total, rng)
		if err != nil {
			return nil, measure.ChannelPowerReport{}, err
		}
		emitters = append(emitters, channel.Emitter{
			Samples: adj2, OffsetHz: 40e6, PowerDBm: wantedDBm + 32,
		})
		maxOff = 40e6
	}
	comp, err := channel.NewComposer(channel.MinOversample(maxOff))
	if err != nil {
		return nil, measure.ChannelPowerReport{}, err
	}
	x, err := comp.Compose(emitters)
	if err != nil {
		return nil, measure.ChannelPowerReport{}, err
	}
	psd, err := measure.NewSpectrum().Analyze(x, comp.CompositeRateHz())
	if err != nil {
		return nil, measure.ChannelPowerReport{}, err
	}
	return psd, measure.ChannelPowers(psd), nil
}

// EVMvsSNR reproduces the §5.2 methodology: error vector magnitude measured
// with the ideal receiver model over a sweep of channel SNRs.
//
// The SNR first matters at the noise stage, so the points share everything
// up to and including the noiseless post-front-end waveform (the ideal front
// end is the identity, letting the cache store the reusable baseband) and
// re-draw only the noise per point.
func EVMvsSNR(base Config, snrsDB []float64) (*measure.Series, error) {
	cache := newSweepCache(base)
	sweep := &sim.Sweep{
		Name:        "EVM vs SNR (ideal receiver)",
		XLabel:      "channel SNR (dB)",
		YLabel:      "EVM (%)",
		Values:      snrsDB,
		Workers:     base.Workers,
		OnPointDone: base.OnSweepPoint,
		Run: func(snr float64) (float64, error) {
			cfg := base
			cfg.Seed = seed.ForPoint(base.Seed, snr)
			cfg.ContentSeed = base.Seed
			cfg.SweptStage = StageNoise
			cfg.Cache = cache
			cfg.FrontEnd = FrontEndIdeal
			cfg.UseIdealRxTiming = true
			cfg.Interferers = nil
			s := snr
			cfg.ChannelSNRdB = &s
			bench, err := NewBench(cfg)
			if err != nil {
				return 0, err
			}
			res, err := bench.Run()
			if err != nil {
				return 0, err
			}
			return res.EVM.Percent(), nil
		},
	}
	series, err := sweep.Execute()
	if err != nil {
		return nil, err
	}
	if cache != nil {
		series.Cache = cache.Stats()
	}
	return series, nil
}

// TimingRow is one row of the reproduced Table 2.
type TimingRow struct {
	// Packets is the number of OFDM packets simulated.
	Packets int
	// FastSeconds is the wall-clock time of the pure system-level
	// (complex-baseband) simulation.
	FastSeconds float64
	// CoSimSeconds is the wall-clock time of the analog co-simulation.
	CoSimSeconds float64
}

// Ratio returns how many times slower the co-simulation ran.
func (r TimingRow) Ratio() float64 {
	if r.FastSeconds <= 0 {
		return 0
	}
	return r.CoSimSeconds / r.FastSeconds
}

// TimingComparison reproduces Table 2: wall-clock time of the pure
// system-level simulation versus the analog co-simulation for increasing
// packet counts.
//
// Unlike the BER sweeps, rows run serially by default even when
// base.Workers is 0, because concurrent rows contend for the CPU and
// inflate the absolute wall-clock numbers. Setting base.Workers > 1
// explicitly opts into parallel rows; the fast and co-simulated halves of
// one row always run back-to-back in the same goroutine under the same
// load, so the per-row ratio — the paper's 30–40x headline — remains
// meaningful either way.
func TimingComparison(base Config, packetCounts []int) ([]TimingRow, error) {
	for _, n := range packetCounts {
		if n < 1 {
			return nil, fmt.Errorf("core: packet count %d", n)
		}
	}
	run := func(cfg Config) (float64, error) {
		bench, err := NewBench(cfg)
		if err != nil {
			return 0, err
		}
		//lint:ignore detflow elapsed wall-clock time is the measured quantity of the timing comparison
		start := time.Now()
		if _, err := bench.Run(); err != nil {
			return 0, err
		}
		//lint:ignore detflow elapsed wall-clock time is the measured quantity of the timing comparison
		return time.Since(start).Seconds(), nil
	}
	row := func(n int) (TimingRow, error) {
		fast := base
		fast.Packets = n
		fast.FrontEnd = FrontEndBehavioral
		fastSec, err := run(fast)
		if err != nil {
			return TimingRow{}, err
		}
		cosim := base
		cosim.Packets = n
		cosim.FrontEnd = FrontEndCoSim
		cosimSec, err := run(cosim)
		if err != nil {
			return TimingRow{}, err
		}
		return TimingRow{Packets: n, FastSeconds: fastSec, CoSimSeconds: cosimSec}, nil
	}

	rows := make([]TimingRow, len(packetCounts))
	if base.Workers <= 1 || len(packetCounts) == 1 {
		for i, n := range packetCounts {
			r, err := row(n)
			if err != nil {
				return nil, err
			}
			rows[i] = r
		}
		return rows, nil
	}
	// Explicitly requested parallel rows: reuse the sweep executor over the
	// row indices so pooling and error order match the BER sweeps.
	// OnSweepPoint stays unwired here: the values are row indices, not a
	// swept physical parameter, so streaming them as measurement points
	// would be misleading.
	sweep := &sim.Sweep{
		Name:    "timing rows",
		Values:  sim.Linspace(0, float64(len(packetCounts)-1), len(packetCounts)),
		Workers: base.Workers,
		Run: func(idx float64) (float64, error) {
			i := int(idx)
			r, err := row(packetCounts[i])
			if err != nil {
				return 0, err
			}
			rows[i] = r
			return r.Ratio(), nil
		},
	}
	if _, err := sweep.Execute(); err != nil {
		return nil, err
	}
	return rows, nil
}

// NoiseArtifactResult captures the §4.3/§5.1 co-simulation artifact: the AMS
// designer could not run the behavioral models' noise functions in transient
// analysis, so co-simulated BER came out better than the SPW-only result.
type NoiseArtifactResult struct {
	// BehavioralBER is the SPW-style run with all noise sources active.
	BehavioralBER float64
	// CoSimNoNoiseBER is the co-simulation with noise functions
	// unavailable (the artifact).
	CoSimNoNoiseBER float64
	// CoSimWithNoiseBER applies the paper's suggested workaround
	// (Verilog-AMS random functions), restoring the noise.
	CoSimWithNoiseBER float64
}

// NoiseArtifactExperiment measures the artifact at a low wanted power where
// thermal noise dominates the error rate.
func NoiseArtifactExperiment(base Config) (NoiseArtifactResult, error) {
	var out NoiseArtifactResult
	run := func(cfg Config) (float64, error) {
		bench, err := NewBench(cfg)
		if err != nil {
			return 0, err
		}
		res, err := bench.Run()
		if err != nil {
			return 0, err
		}
		return res.BER(), nil
	}
	behav := base
	behav.FrontEnd = FrontEndBehavioral
	var err error
	if out.BehavioralBER, err = run(behav); err != nil {
		return out, err
	}
	noNoise := base
	noNoise.FrontEnd = FrontEndCoSim
	prev := base.TuneCoSim
	noNoise.TuneCoSim = func(c *analog.FrontEndConfig) {
		if prev != nil {
			prev(c)
		}
		c.EnableNoise = false
	}
	if out.CoSimNoNoiseBER, err = run(noNoise); err != nil {
		return out, err
	}
	withNoise := base
	withNoise.FrontEnd = FrontEndCoSim
	withNoise.TuneCoSim = func(c *analog.FrontEndConfig) {
		if prev != nil {
			prev(c)
		}
		c.EnableNoise = true
	}
	if out.CoSimWithNoiseBER, err = run(withNoise); err != nil {
		return out, err
	}
	return out, nil
}

// StandardsTableText renders the paper's Table 1.
func StandardsTableText() string {
	out := fmt.Sprintf("%-10s %-10s %-12s %s\n", "Approval", "Standard", "Band [GHz]", "Data Rate [Mbps]")
	for _, s := range phy.StandardsTable {
		year := "expect."
		if s.Approval > 0 {
			year = fmt.Sprintf("%d", s.Approval)
		}
		rates := ""
		for i, r := range s.RatesMbps {
			if i > 0 {
				rates += ", "
			}
			//lint:ignore floateq table rates are exact small constants; integrality test is intentional
			if r == float64(int(r)) {
				rates += fmt.Sprintf("%d", int(r))
			} else {
				rates += fmt.Sprintf("%.1f", r)
			}
		}
		out += fmt.Sprintf("%-10s %-10s %-12g %s\n", year, s.Name, s.BandGHz, rates)
	}
	return out
}
