package core

import (
	"math"
	"testing"

	"wlansim/internal/kernels"
	"wlansim/internal/phy"
)

// Golden end-to-end BER regression points. Each row runs the full fixed-seed
// pipeline — scrambler, convolutional coder, interleaver, OFDM modulation,
// AWGN channel, synchronizing DSP receiver with soft Viterbi decoding — on
// the ideal front end and compares against the recorded BER.
//
// The simulation is bit-reproducible (per-packet seeds derive from
// (Seed, packet) via internal/seed), so on unchanged code the measured BER
// equals Golden exactly; Tol only leaves room for benign float-level drift
// (e.g. reordered summations in a future vectorization PR). A change that
// shifts any waterfall by even ~1 dB moves these mid-slope points far
// outside Tol, so performance PRs cannot silently change the physics.
//
// Regenerate after an *intended* physics change by running the bench below
// with -v (the failure message prints the measured value for every row).
var goldenBER = []struct {
	RateMbps int
	SNRdB    float64
	Golden   float64
	Tol      float64
}{
	// 6 Mbps (BPSK 1/2): the sensitivity corner. At 3 dB the limiting
	// mechanism is packet synchronization (lost packets count at the 0.5
	// guessing rate), so BER moves in quanta of 1/12 here — a sync change
	// of a single packet breaks the ±0.05 band.
	{RateMbps: 6, SNRdB: 3, Golden: 0.250000, Tol: 0.05},
	{RateMbps: 6, SNRdB: 10, Golden: 0, Tol: 0.001},
	// 24 Mbps (16-QAM 1/2): mid-slope and error-free points.
	{RateMbps: 24, SNRdB: 9, Golden: 0.175833, Tol: 0.03},
	{RateMbps: 24, SNRdB: 12, Golden: 0, Tol: 0.001},
	// 54 Mbps (64-QAM 3/4): the steep high-rate waterfall.
	{RateMbps: 54, SNRdB: 17, Golden: 0.150208, Tol: 0.03},
	{RateMbps: 54, SNRdB: 20, Golden: 0, Tol: 0.001},
}

// goldenConfig is the fixed scenario behind every golden row.
func goldenConfig(rate int, snr float64) Config {
	cfg := DefaultConfig()
	cfg.FrontEnd = FrontEndIdeal
	cfg.Packets = 6
	cfg.PSDULen = 100
	cfg.Seed = 1
	cfg.RateMbps = rate
	cfg.ChannelSNRdB = &snr
	return cfg
}

func TestGoldenBERWaterfallPoints(t *testing.T) {
	for _, row := range goldenBER {
		cfg := goldenConfig(row.RateMbps, row.SNRdB)
		bench, err := NewBench(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := bench.Run()
		if err != nil {
			t.Fatal(err)
		}
		if got := res.BER(); math.Abs(got-row.Golden) > row.Tol {
			t.Errorf("%d Mbps at %g dB: BER %.6f, golden %.6f ± %g (%d/%d bits, %d lost)",
				row.RateMbps, row.SNRdB, got, row.Golden, row.Tol,
				res.Counter.Errors, res.Counter.Bits, res.Counter.LostPackets)
		}
		if res.Counter.Bits != cfg.Packets*cfg.PSDULen*8 {
			t.Errorf("%d Mbps at %g dB: compared %d bits, want %d — early stop or packet loss accounting changed",
				row.RateMbps, row.SNRdB, res.Counter.Bits, cfg.Packets*cfg.PSDULen*8)
		}
	}
}

// TestGoldenBERExactReplay pins bit-exact reproducibility (not just
// tolerance-level agreement): two runs of the same golden scenario must
// agree error-for-error, and the result must not depend on the worker count
// of an enclosing sweep — here emulated by replaying one scenario between
// other runs.
// TestGoldenBERDispatchInvariant pins the assembly tier's acceptance
// criterion end to end: the golden fixed-seed scenarios at 6/24/54 Mbit/s
// must produce byte-identical error counts, packet accounting and EVM with
// the SIMD kernel tier on and off. The ideal front end exercises the Viterbi
// ACS and receiver DSP kernels; the behavioral front end adds the RF chain
// (mixers, FIR resamplers, biquads). Any lane that rounded differently under
// the assembly tier would shift at least one mid-slope error count here.
func TestGoldenBERDispatchInvariant(t *testing.T) {
	if !kernels.SIMDAvailable() {
		t.Skip("no assembly tier on this machine: both dispatch settings run pure Go")
	}
	prev := kernels.DispatchName() != "purego"
	defer kernels.SetDispatch(prev)

	run := func(rate int, snr float64, fe FrontEndKind) *Result {
		t.Helper()
		cfg := goldenConfig(rate, snr)
		cfg.FrontEnd = fe
		bench, err := NewBench(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := bench.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	rows := []struct {
		rate int
		snr  float64
	}{{6, 3}, {24, 9}, {54, 17}}
	for _, fe := range []FrontEndKind{FrontEndIdeal, FrontEndBehavioral} {
		for _, row := range rows {
			kernels.SetDispatch(true)
			on := run(row.rate, row.snr, fe)
			kernels.SetDispatch(false)
			off := run(row.rate, row.snr, fe)
			if on.Counter != off.Counter {
				t.Errorf("front end %d, %d Mbps at %g dB: counter %+v with SIMD != %+v pure Go",
					fe, row.rate, row.snr, on.Counter, off.Counter)
			}
			if math.Float64bits(on.EVM.RMS) != math.Float64bits(off.EVM.RMS) ||
				on.EVM.Symbols != off.EVM.Symbols {
				t.Errorf("front end %d, %d Mbps at %g dB: EVM %+v with SIMD != %+v pure Go",
					fe, row.rate, row.snr, on.EVM, off.EVM)
			}
		}
	}
}

// TestGoldenBERSymbolMajorInvariant pins the symbol-major OFDM restructure's
// acceptance criterion end to end: the golden fixed-seed scenarios must
// produce byte-identical error counts, packet accounting and EVM with the
// symbol-major mod/demod path on and off, on both front ends and under both
// kernel dispatch tiers. The batched four-lane transforms and the whole-field
// TX/RX restructure must therefore be bit-transparent.
func TestGoldenBERSymbolMajorInvariant(t *testing.T) {
	prevSM := phy.SetSymbolMajor(true)
	defer phy.SetSymbolMajor(prevSM)
	prevSIMD := kernels.DispatchName() != "purego"
	defer kernels.SetDispatch(prevSIMD)

	run := func(rate int, snr float64, fe FrontEndKind) *Result {
		t.Helper()
		cfg := goldenConfig(rate, snr)
		cfg.FrontEnd = fe
		bench, err := NewBench(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := bench.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	rows := []struct {
		rate int
		snr  float64
	}{{6, 3}, {24, 9}, {54, 17}}
	for _, simd := range []bool{true, false} {
		kernels.SetDispatch(simd)
		for _, fe := range []FrontEndKind{FrontEndIdeal, FrontEndBehavioral} {
			for _, row := range rows {
				phy.SetSymbolMajor(true)
				on := run(row.rate, row.snr, fe)
				phy.SetSymbolMajor(false)
				off := run(row.rate, row.snr, fe)
				if on.Counter != off.Counter {
					t.Errorf("tier %s front end %d, %d Mbps at %g dB: counter %+v symbol-major != %+v per-symbol",
						kernels.DispatchName(), fe, row.rate, row.snr, on.Counter, off.Counter)
				}
				if math.Float64bits(on.EVM.RMS) != math.Float64bits(off.EVM.RMS) ||
					on.EVM.Symbols != off.EVM.Symbols {
					t.Errorf("tier %s front end %d, %d Mbps at %g dB: EVM %+v symbol-major != %+v per-symbol",
						kernels.DispatchName(), fe, row.rate, row.snr, on.EVM, off.EVM)
				}
			}
		}
	}
}

func TestGoldenBERExactReplay(t *testing.T) {
	run := func() int {
		cfg := goldenConfig(54, 17)
		bench, err := NewBench(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := bench.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res.Counter.Errors
	}
	first := run()
	// Interleave an unrelated scenario to perturb any hidden shared state.
	if _, err := NewBench(goldenConfig(6, 4)); err != nil {
		t.Fatal(err)
	}
	if second := run(); second != first {
		t.Errorf("replay diverged: %d vs %d bit errors", first, second)
	}
}
