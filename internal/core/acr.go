package core

import (
	"fmt"
	"strings"
)

// Adjacent-channel rejection measurement, the receiver-side counterpart of
// the paper's adjacent-channel experiments: clause 17.3.10.2 specifies, per
// rate, how much stronger an adjacent-channel signal may be than a wanted
// signal 3 dB above sensitivity while the link still meets 10% PER.

// ACRResult is the measured rejection for one rate.
type ACRResult struct {
	// RateMbps is the wanted link's rate.
	RateMbps int
	// WantedPowerDBm is the wanted level used (3 dB above the standard's
	// sensitivity for the rate).
	WantedPowerDBm float64
	// RejectionDB is the highest tolerated adjacent-to-wanted power ratio.
	RejectionDB float64
	// RequiredDB is the clause-17.3.10.2 minimum.
	RequiredDB float64
	// BaselineFails reports that the link already misses 10% PER with no
	// interferer at all — the rejection number is then meaningless and the
	// verdict points at the front end's impairment floor, not selectivity.
	BaselineFails bool
}

// Pass reports whether the measured rejection meets the requirement.
func (r ACRResult) Pass() bool { return !r.BaselineFails && r.RejectionDB >= r.RequiredDB }

// String formats the result.
func (r ACRResult) String() string {
	if r.BaselineFails {
		return fmt.Sprintf("%2d Mbps: FAIL — link misses 10%% PER at %g dBm even without an interferer (impairment floor)",
			r.RateMbps, r.WantedPowerDBm)
	}
	verdict := "FAIL"
	if r.Pass() {
		verdict = "PASS"
	}
	return fmt.Sprintf("%2d Mbps: ACR %+5.1f dB (required %+5.1f) %s",
		r.RateMbps, r.RejectionDB, r.RequiredDB, verdict)
}

// acrRequirements lists the clause-17.3.10.2 adjacent channel rejection
// minima (dB) per rate, and the corresponding sensitivity levels (dBm).
var acrRequirements = map[int]struct{ sensitivity, acr float64 }{
	6:  {-82, 16},
	9:  {-81, 15},
	12: {-79, 13},
	18: {-77, 11},
	24: {-74, 8},
	36: {-70, 4},
	48: {-66, 0},
	54: {-65, -1},
}

// MeasureACR bisects the maximum adjacent-channel power (relative to the
// wanted signal, which sits 3 dB above the standard's sensitivity) at which
// the packet error rate stays at or below 10%.
func MeasureACR(base Config, rateMbps int) (ACRResult, error) {
	req, ok := acrRequirements[rateMbps]
	if !ok {
		return ACRResult{}, fmt.Errorf("core: no ACR requirement for %d Mbps", rateMbps)
	}
	res := ACRResult{
		RateMbps:       rateMbps,
		WantedPowerDBm: req.sensitivity + 3,
		RequiredDB:     req.acr,
	}
	per := func(rejectionDB float64, withInterferer bool) (float64, error) {
		cfg := base
		cfg.RateMbps = rateMbps
		cfg.WantedPowerDBm = res.WantedPowerDBm
		if withInterferer {
			cfg.Interferers = []InterfererSpec{{
				OffsetHz: 20e6,
				PowerDBm: res.WantedPowerDBm + rejectionDB,
				RateMbps: 24,
			}}
		} else {
			cfg.Interferers = nil
		}
		bench, err := NewBench(cfg)
		if err != nil {
			return 0, err
		}
		r, err := bench.Run()
		if err != nil {
			return 0, err
		}
		return r.Counter.PER(), nil
	}
	// Baseline: the interferer-free link must meet the PER target first.
	p0, err := per(0, false)
	if err != nil {
		return res, err
	}
	if p0 > 0.1 {
		res.BaselineFails = true
		return res, nil
	}
	// Establish brackets: lo passes, hi fails.
	lo, hi := -10.0, 50.0
	pLo, err := per(lo, true)
	if err != nil {
		return res, err
	}
	if pLo > 0.1 {
		res.RejectionDB = lo
		return res, nil // fails even with a weak interferer
	}
	pHi, err := per(hi, true)
	if err != nil {
		return res, err
	}
	if pHi <= 0.1 {
		res.RejectionDB = hi
		return res, nil // tolerates anything in the search range
	}
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		p, err := per(mid, true)
		if err != nil {
			return res, err
		}
		if p <= 0.1 {
			lo = mid
		} else {
			hi = mid
		}
	}
	res.RejectionDB = lo
	return res, nil
}

// ACRReport measures the adjacent channel rejection for the given rates.
func ACRReport(base Config, rates []int) ([]ACRResult, error) {
	out := make([]ACRResult, 0, len(rates))
	for _, r := range rates {
		res, err := MeasureACR(base, r)
		if err != nil {
			return nil, err
		}
		out = append(out, res)
	}
	return out, nil
}

// FormatACR renders the report.
func FormatACR(rows []ACRResult) string {
	var b strings.Builder
	for _, r := range rows {
		fmt.Fprintln(&b, r.String())
	}
	return b.String()
}
