package core

import (
	"testing"
)

func TestSystemGraphMatchesDirectRun(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Packets = 2
	cfg.PSDULen = 80
	bench, err := NewBench(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := bench.BuildSystemGraph()
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.BER() != 0 {
		t.Errorf("graph-executed scenario BER %v", res.BER())
	}
	if res.Counter.Packets != 2 {
		t.Errorf("decoded %d packets", res.Counter.Packets)
	}
}

func TestSystemGraphWithAdjacentChannel(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Packets = 1
	cfg.PSDULen = 60
	cfg.Interferers = []InterfererSpec{AdjacentChannelSpec(cfg.WantedPowerDBm)}
	bench, err := NewBench(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := bench.BuildSystemGraph()
	if err != nil {
		t.Fatal(err)
	}
	names, err := sys.Graph.BlockNames()
	if err != nil {
		t.Fatal(err)
	}
	// The schematic contains the duplicated shifted transmitter (§4.1).
	found := map[string]bool{}
	for _, n := range names {
		found[n] = true
	}
	for _, want := range []string{"tx-wanted", "tx-adjacent-0", "shift-tx-adjacent-0", "air-sum", "rf-frontend", "adc-capture"} {
		if !found[want] {
			t.Errorf("schematic missing block %q (have %v)", want, names)
		}
	}
	res, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.BER() > 0.01 {
		t.Errorf("graph run with adjacent channel BER %v", res.BER())
	}
}

func TestSystemGraphProbesDeselectedByDefault(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Packets = 1
	cfg.PSDULen = 40
	bench, _ := NewBench(cfg)
	sys, err := bench.BuildSystemGraph()
	if err != nil {
		t.Fatal(err)
	}
	// Enable the baseband probe, run, and expect samples.
	sys.BasebandProbe.Enabled = true
	if _, err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if len(sys.BasebandProbe.Samples) == 0 {
		t.Error("enabled probe recorded nothing")
	}
	if len(sys.AntennaProbe.Samples) != 0 {
		t.Error("deselected probe recorded samples")
	}
}

func TestSystemGraphRejectsUnsupportedOptions(t *testing.T) {
	cfg := DefaultConfig()
	cfg.FrontEnd = FrontEndIdeal
	cfg.UseIdealRxTiming = true
	bench, err := NewBench(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bench.BuildSystemGraph(); err == nil {
		t.Error("accepted ideal RX timing in graph form")
	}
	cfg = DefaultConfig()
	cfg.MultipathTaps = 3
	bench, _ = NewBench(cfg)
	if _, err := bench.BuildSystemGraph(); err == nil {
		t.Error("accepted multipath in graph form")
	}
}

func TestSystemGraphChannelNoiseBlock(t *testing.T) {
	cfg := DefaultConfig()
	cfg.FrontEnd = FrontEndIdeal
	cfg.Packets = 1
	cfg.PSDULen = 40
	snr := 3.0
	cfg.ChannelSNRdB = &snr
	bench, _ := NewBench(cfg)
	sys, err := bench.BuildSystemGraph()
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.BER() < 0.05 {
		t.Errorf("graph run at 3 dB SNR gave BER %v", res.BER())
	}
}
