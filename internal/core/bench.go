// Package core assembles the paper's verification flow: an IEEE 802.11a
// transmission system (transmitter, channel with optional adjacent-channel
// interferers, RF receiver front end at a selectable abstraction level, and
// the DSP receiver) plus the measurement harnesses that regenerate every
// figure and table of the paper's evaluation (§5).
package core

import (
	"fmt"
	"math"
	"math/rand"

	"wlansim/internal/analog"
	"wlansim/internal/bits"
	"wlansim/internal/channel"
	"wlansim/internal/measure"
	"wlansim/internal/phy"
	"wlansim/internal/rf"
	"wlansim/internal/rxdsp"
	"wlansim/internal/seed"
	"wlansim/internal/units"
)

// FrontEndKind selects the abstraction level of the analog receiver model,
// mirroring the paper's three simulation setups.
type FrontEndKind int

// Supported front-end abstraction levels.
const (
	// FrontEndIdeal is the idealized analog part (perfect channel
	// filtering, no impairments) used for EVM reference measurements.
	FrontEndIdeal FrontEndKind = iota
	// FrontEndBehavioral is the complex-baseband rflib-style model inside
	// the system simulator (the pure-SPW setup).
	FrontEndBehavioral
	// FrontEndCoSim is the continuous-time analog solver (the SPW-AMS
	// co-simulation setup).
	FrontEndCoSim
	// FrontEndBlackBox is a K-model (Moult/Chen, the paper's ref [6])
	// extracted from the continuous-time solver and instantiated in the
	// system simulation: near co-simulation fidelity at system-level speed.
	// Extraction happens once per Bench; like the real flow it captures the
	// deterministic behavior only (no noise sources).
	FrontEndBlackBox
)

// String names the abstraction level.
func (k FrontEndKind) String() string {
	switch k {
	case FrontEndIdeal:
		return "ideal"
	case FrontEndBehavioral:
		return "behavioral-baseband"
	case FrontEndCoSim:
		return "analog-cosim"
	case FrontEndBlackBox:
		return "kmodel-blackbox"
	default:
		return "?"
	}
}

// InterfererSpec describes one interfering 802.11a emitter (paper §4.1: a
// duplicated transmitter shifted in frequency).
type InterfererSpec struct {
	// OffsetHz is the carrier offset (+20e6 for the first adjacent channel,
	// +40e6 for the second).
	OffsetHz float64
	// PowerDBm is the interferer's received power.
	PowerDBm float64
	// RateMbps selects the interferer's modulation (default 24).
	RateMbps int
}

// Config describes one measurement scenario.
type Config struct {
	// RateMbps is the wanted link's data rate.
	RateMbps int
	// PSDULen is the payload length per packet in octets.
	PSDULen int
	// Packets is the number of packets to simulate.
	Packets int
	// Seed makes the run reproducible.
	Seed int64
	// WantedPowerDBm is the wanted signal's received power (paper §2.2:
	// -88..-23 dBm).
	WantedPowerDBm float64
	// ChannelSNRdB, if non-nil, adds AWGN at the antenna with the given
	// in-band SNR relative to the wanted signal.
	ChannelSNRdB *float64
	// CFOHz applies a carrier frequency offset to the composite signal.
	CFOHz float64
	// MultipathTaps > 0 enables a Rayleigh channel with that many taps.
	MultipathTaps int
	// MultipathRMSSamples is the exponential delay profile constant.
	MultipathRMSSamples float64
	// DopplerHz > 0 makes the multipath channel time-varying (Jakes model).
	DopplerHz float64
	// SampleClockPPM applies a TX/RX sampling-clock offset in ppm.
	SampleClockPPM float64
	// Interferers places adjacent/non-adjacent channels.
	Interferers []InterfererSpec
	// FrontEnd selects the analog model abstraction level.
	FrontEnd FrontEndKind
	// TuneRF, if set, adjusts the behavioral receiver configuration after
	// defaults are applied (used by the parameter sweeps).
	TuneRF func(*rf.ReceiverConfig)
	// TuneCoSim likewise adjusts the analog solver configuration.
	TuneCoSim func(*analog.FrontEndConfig)
	// UseIdealRxTiming decodes with genie timing instead of the
	// synchronizing receiver (only valid without interferers and with the
	// ideal front end; used for the paper's EVM methodology).
	UseIdealRxTiming bool
	// HardDecisions disables soft Viterbi metrics in the DSP receiver
	// (ablation).
	HardDecisions bool
	// DisableCSI disables channel-state weighting of the soft metrics
	// (ablation).
	DisableCSI bool
	// Workers is the number of sweep points the experiment harnesses
	// evaluate concurrently (0 = all CPUs, 1 = serial). Results are
	// identical for every value: each point and each packet derives its
	// seeds from Seed via internal/seed, never from execution order.
	Workers int
	// TargetErrors, when > 0, stops a bench run early once the accumulated
	// bit-error count reaches it (Packets stays the upper bound). Sweep
	// points record the confidence interval of the bits actually
	// simulated, so early-stopped points carry visibly wider intervals.
	TargetErrors int
}

// DefaultConfig returns a baseline scenario: 24 Mbps, 100-byte packets,
// -62 dBm wanted power, behavioral front end, no interferers.
func DefaultConfig() Config {
	return Config{
		RateMbps:       24,
		PSDULen:        100,
		Packets:        10,
		Seed:           1,
		WantedPowerDBm: -62,
		FrontEnd:       FrontEndBehavioral,
	}
}

// Result summarizes one scenario run.
type Result struct {
	// Counter accumulates bit/packet error statistics over all packets.
	Counter measure.BERCounter
	// EVM is the mean decision-directed EVM over delivered packets.
	EVM measure.EVMResult
	// OversampleFactor is the composite-rate factor that was used.
	OversampleFactor int
	// FrontEnd echoes the abstraction level.
	FrontEnd FrontEndKind
}

// BER returns the measured bit error rate.
func (r *Result) BER() float64 { return r.Counter.BER() }

// leadInSamples is the silence/interferer-only time before the wanted packet
// at the native 20 MHz rate, letting filters and the AGC settle.
const leadInSamples = 600

// tailSamples pads after the packet so group delays don't truncate it.
const tailSamples = 300

// Bench runs measurement scenarios. The zero value is not usable; use
// NewBench. A Bench caches the constructed front end, transmitter, receiver
// and channel buffers across packets and Run calls (every stateful block is
// reset per packet, so results are identical to rebuilding them); it must
// not be shared between goroutines.
type Bench struct {
	cfg Config

	fe       rf.FrontEnd
	tx       *phy.Transmitter
	rx       *rxdsp.Receiver
	irx      *rxdsp.IdealReceiver
	comp     *channel.Composer
	rng      *rand.Rand
	emitters []channel.Emitter
	antenna  []complex128
}

// NewBench validates the scenario.
func NewBench(cfg Config) (*Bench, error) {
	if cfg.PSDULen < 1 || cfg.PSDULen > 4095 {
		return nil, fmt.Errorf("core: PSDU length %d", cfg.PSDULen)
	}
	if cfg.Packets < 1 {
		return nil, fmt.Errorf("core: packet count %d", cfg.Packets)
	}
	if _, err := phy.ModeByRate(cfg.RateMbps); err != nil {
		return nil, err
	}
	if cfg.UseIdealRxTiming && (len(cfg.Interferers) > 0 || cfg.FrontEnd != FrontEndIdeal) {
		return nil, fmt.Errorf("core: ideal RX timing requires the ideal front end and no interferers")
	}
	for _, i := range cfg.Interferers {
		rate := i.RateMbps
		if rate == 0 {
			rate = 24
		}
		if _, err := phy.ModeByRate(rate); err != nil {
			return nil, err
		}
	}
	return &Bench{cfg: cfg}, nil
}

// oversample computes the composite oversampling factor for the scenario.
func (b *Bench) oversample() int {
	maxOffset := 0.0
	for _, i := range b.cfg.Interferers {
		if o := i.OffsetHz; o > maxOffset {
			maxOffset = o
		} else if -o > maxOffset {
			maxOffset = -o
		}
	}
	if maxOffset == 0 {
		return 1
	}
	return channel.MinOversample(maxOffset)
}

// buildFrontEnd constructs the configured analog model.
func (b *Bench) buildFrontEnd(os int) (rf.FrontEnd, error) {
	switch b.cfg.FrontEnd {
	case FrontEndIdeal:
		return rf.NewIdealFrontEnd(os)
	case FrontEndBehavioral:
		cfg := rf.DefaultReceiverConfig(os)
		// Calibrate the AGC starting point to the expected wanted level so
		// the loop only has to track.
		smallSignal := cfg.LNA.GainDB + cfg.Mixer1.ConversionGainDB + cfg.Mixer2.ConversionGainDB
		cfg.AGC.InitialGainDB = cfg.AGC.TargetDBm - (b.cfg.WantedPowerDBm + smallSignal)
		if b.cfg.TuneRF != nil {
			b.cfg.TuneRF(&cfg)
		}
		return rf.NewReceiver(cfg)
	case FrontEndCoSim:
		cfg := analog.DefaultFrontEndConfig()
		cfg.InputRateHz = 20e6 * float64(os)
		cfg.Seed = b.cfg.Seed + 7
		if b.cfg.TuneCoSim != nil {
			b.cfg.TuneCoSim(&cfg)
		}
		return analog.NewFrontEnd(cfg)
	case FrontEndBlackBox:
		cfg := analog.DefaultFrontEndConfig()
		cfg.InputRateHz = 20e6 * float64(os)
		cfg.EnableNoise = false
		cfg.LOLinewidthHz = 0
		// A coarser solver step suffices for the deterministic extraction
		// sweeps and keeps the one-off extraction cost low.
		cfg.SolverOversample = 16
		if b.cfg.TuneCoSim != nil {
			b.cfg.TuneCoSim(&cfg)
		}
		detailed, err := analog.NewFrontEnd(cfg)
		if err != nil {
			return nil, err
		}
		kCfg := rf.DefaultKModelConfig()
		kCfg.SampleRateHz = cfg.InputRateHz
		kCfg.SettleSamples = 1024
		kCfg.MeasureSamples = 1024
		kCfg.SweepStepDB = 4
		return rf.ExtractKModel(detailed, kCfg)
	default:
		return nil, fmt.Errorf("core: unknown front end %d", b.cfg.FrontEnd)
	}
}

// interfererPSDULen is the fixed payload length of interferer frames.
const interfererPSDULen = 200

// interfererWaveform produces a continuous stream of back-to-back frames
// covering at least total native samples. One transmitter is reused for all
// frames, and the stream is allocated once up front (the frame length is
// fixed by the rate and the constant payload size).
func interfererWaveform(rateMbps int, total int, rng *rand.Rand) ([]complex128, error) {
	if rateMbps == 0 {
		rateMbps = 24
	}
	tx, err := phy.NewTransmitter(rateMbps)
	if err != nil {
		return nil, err
	}
	nBits := phy.ServiceBits + interfererPSDULen*8 + phy.TailBits
	nSym := (nBits + tx.Mode.NDBPS() - 1) / tx.Mode.NDBPS()
	frameLen := phy.PreambleLen + (1+nSym)*phy.SymbolLen
	frames := (total + frameLen - 1) / frameLen
	out := make([]complex128, 0, frames*frameLen)
	for len(out) < total {
		tx.ScramblerSeed = byte(1 + rng.Intn(127))
		frame, err := tx.Transmit(bits.RandomBytes(rng, interfererPSDULen))
		if err != nil {
			return nil, err
		}
		out = append(out, frame.Samples...)
	}
	return out[:total], nil
}

// composePacket builds the composite antenna waveform for one wanted frame.
func (b *Bench) composePacket(frame *phy.Frame, os int, rng *rand.Rand) ([]complex128, error) {
	totalNative := leadInSamples + len(frame.Samples) + tailSamples
	emitters := append(b.emitters[:0], channel.Emitter{
		Samples:      frame.Samples,
		OffsetHz:     0,
		PowerDBm:     b.cfg.WantedPowerDBm,
		DelaySamples: leadInSamples,
	})
	for _, spec := range b.cfg.Interferers {
		wave, err := interfererWaveform(spec.RateMbps, totalNative, rng)
		if err != nil {
			return nil, err
		}
		emitters = append(emitters, channel.Emitter{
			Samples:  wave,
			OffsetHz: spec.OffsetHz,
			PowerDBm: spec.PowerDBm,
		})
	}
	b.emitters = emitters
	if b.comp == nil {
		comp, err := channel.NewComposer(os)
		if err != nil {
			return nil, err
		}
		b.comp = comp
	}
	comp := b.comp
	x, err := comp.ComposeInto(b.antenna[:0], emitters)
	if err != nil {
		return nil, err
	}
	// Pad to the full scenario duration (Compose sizes the output to the
	// longest emitter): the tail absorbs the analog chain's group delay so
	// the last OFDM symbols are not truncated.
	if want := totalNative * os; len(x) < want {
		if cap(x) < want {
			grown := make([]complex128, len(x), want)
			copy(grown, x)
			x = grown
		}
		pad := x[len(x):want]
		for i := range pad {
			pad[i] = 0
		}
		x = x[:want]
	}
	b.antenna = x

	fs := comp.CompositeRateHz()
	if b.cfg.MultipathTaps > 0 {
		if b.cfg.DopplerHz > 0 {
			fc, err := channel.NewFadingChannel(b.cfg.MultipathTaps,
				b.cfg.MultipathRMSSamples, b.cfg.DopplerHz, fs, rng.Int63())
			if err != nil {
				return nil, err
			}
			fc.Process(x)
		} else {
			mp, err := channel.NewRayleighChannel(b.cfg.MultipathTaps, b.cfg.MultipathRMSSamples, rng.Int63())
			if err != nil {
				return nil, err
			}
			mp.Process(x)
		}
	}
	if b.cfg.SampleClockPPM != 0 {
		sco, err := channel.NewSampleClockOffset(b.cfg.SampleClockPPM)
		if err != nil {
			return nil, err
		}
		x = sco.Process(x)
	}
	if b.cfg.CFOHz != 0 {
		channel.NewCFO(b.cfg.CFOHz, fs, rng.Float64()).Process(x)
	}
	if b.cfg.ChannelSNRdB != nil {
		// White noise across the composite band; the in-band (20 MHz) SNR
		// equals the requested value.
		wantedW := units.DBmToWatts(b.cfg.WantedPowerDBm)
		noiseW := wantedW / units.DBToLinear(*b.cfg.ChannelSNRdB) * float64(os)
		channel.NewAWGN(noiseW, rng.Int63()).AddTo(x)
	}
	return x, nil
}

// Run simulates the configured number of packets and returns the measured
// statistics.
func (b *Bench) Run() (*Result, error) {
	os := b.oversample()
	if b.fe == nil {
		fe, err := b.buildFrontEnd(os)
		if err != nil {
			return nil, err
		}
		b.fe = fe
	}
	fe := b.fe
	mode, err := phy.ModeByRate(b.cfg.RateMbps)
	if err != nil {
		return nil, err
	}
	if b.tx == nil {
		b.tx = &phy.Transmitter{Mode: mode}
	}
	tx := b.tx
	if b.rng == nil {
		b.rng = rand.New(rand.NewSource(0))
	}
	res := &Result{OversampleFactor: os, FrontEnd: b.cfg.FrontEnd}
	var evmAcc float64
	var evmSymbols, evmRuns int

	for p := 0; p < b.cfg.Packets; p++ {
		// Every packet draws from its own derived stream, so trial p is the
		// same realization no matter how many packets ran before it (the
		// enabling property for early stopping and, later, intra-point
		// parallelism). Re-seeding the cached generator is equivalent to
		// constructing a fresh one from the same source seed.
		rng := b.rng
		rng.Seed(seed.ForPacket(b.cfg.Seed, p))
		tx.ScramblerSeed = byte(1 + rng.Intn(127))
		psdu := bits.RandomBytes(rng, b.cfg.PSDULen)
		frame, err := tx.Transmit(psdu)
		if err != nil {
			return nil, err
		}
		antenna, err := b.composePacket(frame, os, rng)
		if err != nil {
			return nil, err
		}
		fe.Reset()
		baseband := fe.Process(antenna)

		var pkt *rxdsp.PacketResult
		var rxErr error
		if b.cfg.UseIdealRxTiming {
			if b.irx == nil {
				b.irx = &rxdsp.IdealReceiver{Mode: mode, PSDULen: b.cfg.PSDULen}
			}
			pkt, rxErr = b.irx.Receive(baseband, leadInSamples)
		} else {
			if b.rx == nil {
				b.rx = rxdsp.NewReceiver()
				b.rx.HardDecisions = b.cfg.HardDecisions
				b.rx.DisableCSI = b.cfg.DisableCSI
			}
			b.rx.Reset()
			pkt, rxErr = b.rx.Receive(baseband, 0)
		}
		refBits := bits.FromBytes(psdu)
		if rxErr != nil {
			res.Counter.AddLostPacket(len(refBits))
			if b.cfg.TargetErrors > 0 && res.Counter.Errors >= b.cfg.TargetErrors {
				break
			}
			continue
		}
		res.Counter.AddPacket(refBits, bits.FromBytes(pkt.PSDU))
		if ev, err := measure.EVM(pkt.EqualizedCarriers, mode.Modulation); err == nil {
			evmAcc += ev.RMS * ev.RMS * float64(ev.Symbols)
			evmSymbols += ev.Symbols
			evmRuns++
		}
		if b.cfg.TargetErrors > 0 && res.Counter.Errors >= b.cfg.TargetErrors {
			break
		}
	}
	if evmSymbols > 0 {
		res.EVM = measure.EVMResult{
			RMS:     math.Sqrt(evmAcc / float64(evmSymbols)),
			Symbols: evmSymbols,
		}
	}
	return res, nil
}
