// Package core assembles the paper's verification flow: an IEEE 802.11a
// transmission system (transmitter, channel with optional adjacent-channel
// interferers, RF receiver front end at a selectable abstraction level, and
// the DSP receiver) plus the measurement harnesses that regenerate every
// figure and table of the paper's evaluation (§5).
package core

import (
	"fmt"
	"math"
	"math/rand"

	"wlansim/internal/analog"
	"wlansim/internal/bits"
	"wlansim/internal/channel"
	"wlansim/internal/measure"
	"wlansim/internal/phy"
	"wlansim/internal/randutil"
	"wlansim/internal/rf"
	"wlansim/internal/rxdsp"
	"wlansim/internal/seed"
	"wlansim/internal/sim"
	"wlansim/internal/units"
)

// FrontEndKind selects the abstraction level of the analog receiver model,
// mirroring the paper's three simulation setups.
type FrontEndKind int

// Supported front-end abstraction levels.
const (
	// FrontEndIdeal is the idealized analog part (perfect channel
	// filtering, no impairments) used for EVM reference measurements.
	FrontEndIdeal FrontEndKind = iota
	// FrontEndBehavioral is the complex-baseband rflib-style model inside
	// the system simulator (the pure-SPW setup).
	FrontEndBehavioral
	// FrontEndCoSim is the continuous-time analog solver (the SPW-AMS
	// co-simulation setup).
	FrontEndCoSim
	// FrontEndBlackBox is a K-model (Moult/Chen, the paper's ref [6])
	// extracted from the continuous-time solver and instantiated in the
	// system simulation: near co-simulation fidelity at system-level speed.
	// Extraction happens once per Bench; like the real flow it captures the
	// deterministic behavior only (no noise sources).
	FrontEndBlackBox
)

// String names the abstraction level.
func (k FrontEndKind) String() string {
	switch k {
	case FrontEndIdeal:
		return "ideal"
	case FrontEndBehavioral:
		return "behavioral-baseband"
	case FrontEndCoSim:
		return "analog-cosim"
	case FrontEndBlackBox:
		return "kmodel-blackbox"
	default:
		return "?"
	}
}

// InterfererSpec describes one interfering 802.11a emitter (paper §4.1: a
// duplicated transmitter shifted in frequency).
type InterfererSpec struct {
	// OffsetHz is the carrier offset (+20e6 for the first adjacent channel,
	// +40e6 for the second).
	OffsetHz float64
	// PowerDBm is the interferer's received power.
	PowerDBm float64
	// RateMbps selects the interferer's modulation (default 24).
	RateMbps int
}

// Config describes one measurement scenario.
type Config struct {
	// RateMbps is the wanted link's data rate.
	RateMbps int
	// PSDULen is the payload length per packet in octets.
	PSDULen int
	// Packets is the number of packets to simulate.
	Packets int
	// Seed makes the run reproducible.
	Seed int64
	// WantedPowerDBm is the wanted signal's received power (paper §2.2:
	// -88..-23 dBm).
	WantedPowerDBm float64
	// ChannelSNRdB, if non-nil, adds AWGN at the antenna with the given
	// in-band SNR relative to the wanted signal.
	ChannelSNRdB *float64
	// CFOHz applies a carrier frequency offset to the composite signal.
	CFOHz float64
	// MultipathTaps > 0 enables a Rayleigh channel with that many taps.
	MultipathTaps int
	// MultipathRMSSamples is the exponential delay profile constant.
	MultipathRMSSamples float64
	// DopplerHz > 0 makes the multipath channel time-varying (Jakes model).
	DopplerHz float64
	// SampleClockPPM applies a TX/RX sampling-clock offset in ppm.
	SampleClockPPM float64
	// Interferers places adjacent/non-adjacent channels.
	Interferers []InterfererSpec
	// FrontEnd selects the analog model abstraction level.
	FrontEnd FrontEndKind
	// TuneRF, if set, adjusts the behavioral receiver configuration after
	// defaults are applied (used by the parameter sweeps).
	TuneRF func(*rf.ReceiverConfig)
	// SweptFrontEndFilterOnly is a sweep harness's promise that its swept
	// front-end parameter (applied through TuneRF) only alters the behavioral
	// receiver's channel-select filter or blocks after it. TuneRF is a
	// function and cannot be content-hashed, so this explicit declaration is
	// what authorizes caching the front-end segment upstream of the filter
	// (LNA, mixers, DC block) across the sweep's points — exact because each
	// block consumes the whole frame before the next runs and every front-end
	// noise/LO stream restarts identically per packet. Only meaningful with
	// SweptStage == StageFrontEnd and FrontEnd == FrontEndBehavioral.
	SweptFrontEndFilterOnly bool
	// TuneCoSim likewise adjusts the analog solver configuration.
	TuneCoSim func(*analog.FrontEndConfig)
	// UseIdealRxTiming decodes with genie timing instead of the
	// synchronizing receiver (only valid without interferers and with the
	// ideal front end; used for the paper's EVM methodology).
	UseIdealRxTiming bool
	// HardDecisions disables soft Viterbi metrics in the DSP receiver
	// (ablation).
	HardDecisions bool
	// DisableCSI disables channel-state weighting of the soft metrics
	// (ablation).
	DisableCSI bool
	// Workers is the number of sweep points the experiment harnesses
	// evaluate concurrently (0 = all CPUs, 1 = serial). Results are
	// identical for every value: each point and each packet derives its
	// seeds from Seed via internal/seed, never from execution order.
	Workers int
	// Batch, when > 1, lets sweep harnesses dispatch that many equal-config
	// points (noise-only sweeps over the behavioral front end) through the
	// lock-step batched pipeline (RunBenchBatch). Results are bit-identical
	// for every value — batching changes wall-clock only, as the batch
	// differential tests pin. Ragged tail groups and unsupported sweep shapes
	// fall back to the sequential path automatically.
	Batch int
	// TargetErrors, when > 0, stops a bench run early once the accumulated
	// bit-error count reaches it (Packets stays the upper bound). Sweep
	// points record the confidence interval of the bits actually
	// simulated, so early-stopped points carry visibly wider intervals.
	TargetErrors int
	// SweptStage declares the first pipeline stage the sweep's swept
	// parameter affects (see Stage and StageParams). Stages strictly before
	// it are invariant across the sweep's points: they derive their
	// randomness from ContentSeed instead of Seed and may be served from
	// Cache. The zero value (StageTX) means everything depends on Seed —
	// the right default for standalone runs.
	SweptStage Stage
	// ContentSeed is the seed root of the invariant prefix stages (usually
	// the sweep's base seed, never the per-point derived Seed). Zero falls
	// back to Seed.
	ContentSeed int64
	// Cache, if non-nil, memoizes invariant prefix waveforms across the
	// Benches of one sweep run. Results are bit-identical with and without
	// it; only wall-clock changes.
	Cache *sim.StageCache
	// CacheBytes bounds the stage cache the sweep harnesses create (<= 0
	// selects sim.DefaultCacheBytes).
	CacheBytes int64
	// DisableStageCache makes the sweep harnesses run without a stage
	// cache (every point recomputes its full pipeline).
	DisableStageCache bool
	// OnSweepPoint, if set, is invoked by the single-series sweep harnesses
	// for each completed point, in Values order for each completed prefix
	// (sim.Sweep.OnPointDone). The point carries the raw swept value as X,
	// before any figure-axis rescaling the harness applies to the returned
	// series. The sweep service streams completed prefixes through this.
	OnSweepPoint func(measure.Point)
}

// DefaultConfig returns a baseline scenario: 24 Mbps, 100-byte packets,
// -62 dBm wanted power, behavioral front end, no interferers.
func DefaultConfig() Config {
	return Config{
		RateMbps:       24,
		PSDULen:        100,
		Packets:        10,
		Seed:           1,
		WantedPowerDBm: -62,
		FrontEnd:       FrontEndBehavioral,
	}
}

// Result summarizes one scenario run.
type Result struct {
	// Counter accumulates bit/packet error statistics over all packets.
	Counter measure.BERCounter
	// EVM is the mean decision-directed EVM over delivered packets.
	EVM measure.EVMResult
	// OversampleFactor is the composite-rate factor that was used.
	OversampleFactor int
	// FrontEnd echoes the abstraction level.
	FrontEnd FrontEndKind
}

// BER returns the measured bit error rate.
func (r *Result) BER() float64 { return r.Counter.BER() }

// leadInSamples is the silence/interferer-only time before the wanted packet
// at the native 20 MHz rate, letting filters and the AGC settle.
const leadInSamples = 600

// tailSamples pads after the packet so group delays don't truncate it.
const tailSamples = 300

// Bench runs measurement scenarios. The zero value is not usable; use
// NewBench. A Bench caches the constructed front end, transmitter, receiver
// and channel buffers across packets and Run calls (every stateful block is
// reset per packet, so results are identical to rebuilding them); it must
// not be shared between goroutines.
type Bench struct {
	cfg Config

	fe       rf.FrontEnd
	tx       *phy.Transmitter
	rx       *rxdsp.Receiver
	irx      *rxdsp.IdealReceiver
	comp     *channel.Composer
	emitters []channel.Emitter
	antenna  []complex128

	// Stage RNG streams. txRNG and chRNG are re-seeded per packet and per
	// stage (seed.ForStage), so each stage's realization is a pure function
	// of (stage root, packet index) — the property that makes cached stage
	// outputs order-independent; both ride the arithmetic-reseed source so
	// the per-packet re-seed computes the register directly instead of
	// walking math/rand's seeding LCG. In suffix-noise mode the noise stream
	// is sequential across the packets of one Run and rewound to its mark at
	// the top of each Run, so SNR sweeps re-draw only the noise; noiseMarked
	// records that the mark was planted at the Run-level point seed.
	txRNG       *rand.Rand
	chRNG       *rand.Rand
	noiseRNG    *randutil.Rand
	noiseMarked bool

	// frame is the reused wanted-PPDU assembly target; scratch receives the
	// copy-on-read clone of cached waveforms before mutation.
	frame   phy.Frame
	scratch []complex128

	// keyContent caches the content-key fold of the invariant configuration
	// (one kind/noise combination per Bench, so one fold suffices).
	keyContent uint64
}

// NewBench validates the scenario.
func NewBench(cfg Config) (*Bench, error) {
	if cfg.PSDULen < 1 || cfg.PSDULen > 4095 {
		return nil, fmt.Errorf("core: PSDU length %d", cfg.PSDULen)
	}
	if cfg.Packets < 1 {
		return nil, fmt.Errorf("core: packet count %d", cfg.Packets)
	}
	if _, err := phy.ModeByRate(cfg.RateMbps); err != nil {
		return nil, err
	}
	if cfg.UseIdealRxTiming && (len(cfg.Interferers) > 0 || cfg.FrontEnd != FrontEndIdeal) {
		return nil, fmt.Errorf("core: ideal RX timing requires the ideal front end and no interferers")
	}
	for _, i := range cfg.Interferers {
		rate := i.RateMbps
		if rate == 0 {
			rate = 24
		}
		if _, err := phy.ModeByRate(rate); err != nil {
			return nil, err
		}
	}
	return &Bench{cfg: cfg}, nil
}

// oversample computes the composite oversampling factor for the scenario.
func (b *Bench) oversample() int {
	maxOffset := 0.0
	for _, i := range b.cfg.Interferers {
		if o := i.OffsetHz; o > maxOffset {
			maxOffset = o
		} else if -o > maxOffset {
			maxOffset = -o
		}
	}
	if maxOffset == 0 {
		return 1
	}
	return channel.MinOversample(maxOffset)
}

// buildFrontEnd constructs the configured analog model.
func (b *Bench) buildFrontEnd(os int) (rf.FrontEnd, error) {
	switch b.cfg.FrontEnd {
	case FrontEndIdeal:
		return rf.NewIdealFrontEnd(os)
	case FrontEndBehavioral:
		cfg := rf.DefaultReceiverConfig(os)
		// Calibrate the AGC starting point to the expected wanted level so
		// the loop only has to track.
		smallSignal := cfg.LNA.GainDB + cfg.Mixer1.ConversionGainDB + cfg.Mixer2.ConversionGainDB
		cfg.AGC.InitialGainDB = cfg.AGC.TargetDBm - (b.cfg.WantedPowerDBm + smallSignal)
		if b.cfg.TuneRF != nil {
			b.cfg.TuneRF(&cfg)
		}
		return rf.NewReceiver(cfg)
	case FrontEndCoSim:
		cfg := analog.DefaultFrontEndConfig()
		cfg.InputRateHz = 20e6 * float64(os)
		cfg.Seed = b.cfg.Seed + 7
		if b.cfg.TuneCoSim != nil {
			b.cfg.TuneCoSim(&cfg)
		}
		return analog.NewFrontEnd(cfg)
	case FrontEndBlackBox:
		cfg := analog.DefaultFrontEndConfig()
		cfg.InputRateHz = 20e6 * float64(os)
		cfg.EnableNoise = false
		cfg.LOLinewidthHz = 0
		// A coarser solver step suffices for the deterministic extraction
		// sweeps and keeps the one-off extraction cost low.
		cfg.SolverOversample = 16
		if b.cfg.TuneCoSim != nil {
			b.cfg.TuneCoSim(&cfg)
		}
		detailed, err := analog.NewFrontEnd(cfg)
		if err != nil {
			return nil, err
		}
		kCfg := rf.DefaultKModelConfig()
		kCfg.SampleRateHz = cfg.InputRateHz
		kCfg.SettleSamples = 1024
		kCfg.MeasureSamples = 1024
		kCfg.SweepStepDB = 4
		return rf.ExtractKModel(detailed, kCfg)
	default:
		return nil, fmt.Errorf("core: unknown front end %d", b.cfg.FrontEnd)
	}
}

// interfererPSDULen is the fixed payload length of interferer frames.
const interfererPSDULen = 200

// interfererWaveform produces a continuous stream of back-to-back frames
// covering at least total native samples. One transmitter is reused for all
// frames, and the stream is allocated once up front (the frame length is
// fixed by the rate and the constant payload size).
func interfererWaveform(rateMbps int, total int, rng *rand.Rand) ([]complex128, error) {
	if rateMbps == 0 {
		rateMbps = 24
	}
	tx, err := phy.NewTransmitter(rateMbps)
	if err != nil {
		return nil, err
	}
	nBits := phy.ServiceBits + interfererPSDULen*8 + phy.TailBits
	nSym := (nBits + tx.Mode.NDBPS() - 1) / tx.Mode.NDBPS()
	frameLen := phy.PreambleLen + (1+nSym)*phy.SymbolLen
	frames := (total + frameLen - 1) / frameLen
	out := make([]complex128, 0, frames*frameLen)
	for len(out) < total {
		tx.ScramblerSeed = byte(1 + rng.Intn(127))
		frame, err := tx.Transmit(bits.RandomBytes(rng, interfererPSDULen))
		if err != nil {
			return nil, err
		}
		out = append(out, frame.Samples...)
	}
	return out[:total], nil
}

// synthTX runs StageTX for packet p: it re-seeds the TX stream, draws the
// scrambler seed and payload, and assembles the PPDU into the bench's reused
// frame. The returned psdu and frame alias bench-owned buffers valid until
// the next synthTX call.
func (b *Bench) synthTX(p int) ([]byte, *phy.Frame, error) {
	if b.txRNG == nil {
		b.txRNG = randutil.NewReseedingRand(0)
	}
	rng := b.txRNG
	rng.Seed(seed.ForStage(b.stageRoot(StageTX), int(StageTX), p))
	b.tx.ScramblerSeed = byte(1 + rng.Intn(127))
	psdu := bits.RandomBytesInto(b.frame.PSDU[:0], rng, b.cfg.PSDULen)
	if err := b.tx.TransmitInto(&b.frame, psdu); err != nil {
		return nil, nil, err
	}
	return b.frame.PSDU, &b.frame, nil
}

// composeChannel runs StageChannel for packet p: interferer synthesis,
// oversampled composition, multipath, sample-clock offset and CFO — the
// noiseless antenna waveform. The result is written over dst (pass nil for a
// fresh allocation the caller will own).
func (b *Bench) composeChannel(dst []complex128, frame *phy.Frame, os, p int) ([]complex128, error) {
	if b.chRNG == nil {
		b.chRNG = randutil.NewReseedingRand(0)
	}
	rng := b.chRNG
	rng.Seed(seed.ForStage(b.stageRoot(StageChannel), int(StageChannel), p))

	totalNative := leadInSamples + len(frame.Samples) + tailSamples
	emitters := append(b.emitters[:0], channel.Emitter{
		Samples:      frame.Samples,
		OffsetHz:     0,
		PowerDBm:     b.cfg.WantedPowerDBm,
		DelaySamples: leadInSamples,
	})
	for _, spec := range b.cfg.Interferers {
		wave, err := interfererWaveform(spec.RateMbps, totalNative, rng)
		if err != nil {
			return nil, err
		}
		emitters = append(emitters, channel.Emitter{
			Samples:  wave,
			OffsetHz: spec.OffsetHz,
			PowerDBm: spec.PowerDBm,
		})
	}
	b.emitters = emitters
	if b.comp == nil {
		comp, err := channel.NewComposer(os)
		if err != nil {
			return nil, err
		}
		b.comp = comp
	}
	comp := b.comp
	x, err := comp.ComposeInto(dst, emitters)
	if err != nil {
		return nil, err
	}
	// Pad to the full scenario duration (Compose sizes the output to the
	// longest emitter): the tail absorbs the analog chain's group delay so
	// the last OFDM symbols are not truncated.
	if want := totalNative * os; len(x) < want {
		if cap(x) < want {
			grown := make([]complex128, len(x), want)
			copy(grown, x)
			x = grown
		}
		pad := x[len(x):want]
		for i := range pad {
			pad[i] = 0
		}
		x = x[:want]
	}

	fs := comp.CompositeRateHz()
	if b.cfg.MultipathTaps > 0 {
		if b.cfg.DopplerHz > 0 {
			fc, err := channel.NewFadingChannel(b.cfg.MultipathTaps,
				b.cfg.MultipathRMSSamples, b.cfg.DopplerHz, fs, rng.Int63())
			if err != nil {
				return nil, err
			}
			fc.Process(x)
		} else {
			mp, err := channel.NewRayleighChannel(b.cfg.MultipathTaps, b.cfg.MultipathRMSSamples, rng.Int63())
			if err != nil {
				return nil, err
			}
			mp.Process(x)
		}
	}
	if b.cfg.SampleClockPPM != 0 {
		sco, err := channel.NewSampleClockOffset(b.cfg.SampleClockPPM)
		if err != nil {
			return nil, err
		}
		x = sco.Process(x)
	}
	if b.cfg.CFOHz != 0 {
		channel.NewCFO(b.cfg.CFOHz, fs, rng.Float64()).Process(x)
	}
	return x, nil
}

// addNoise runs StageNoise: white noise across the composite band so the
// in-band (20 MHz) SNR equals the requested value, drawn from the given
// stream.
func (b *Bench) addNoise(x []complex128, os int, rng *randutil.Rand) {
	wantedW := units.DBmToWatts(b.cfg.WantedPowerDBm)
	noiseW := wantedW / units.DBToLinear(*b.cfg.ChannelSNRdB) * float64(os)
	channel.AWGNFrom(noiseW, rng).AddTo(x)
}

// noiseAfterFrontEnd reports whether the antenna AWGN may be applied after
// the front end instead of before it. This is exact — not an approximation —
// only for the identity chain: the ideal front end at oversample 1 is a
// sample-for-sample copy, so adding the same noise realization before or
// after it yields bit-identical basebands. SNR sweeps over that chain (the
// EVM and waterfall experiments) then share the noiseless post-front-end
// waveform across points and re-draw only the noise. The predicate depends
// on configuration alone, never on cache state, so cached and uncached runs
// place the noise identically.
func (b *Bench) noiseAfterFrontEnd(os int) bool {
	return b.cfg.SweptStage == StageNoise &&
		b.cfg.FrontEnd == FrontEndIdeal &&
		os == 1 &&
		b.cfg.ChannelSNRdB != nil
}

// suffixNoise reports whether the antenna noise belongs to the point-variant
// suffix (drawn from the sequential per-Run stream) rather than the cached
// invariant prefix (drawn from a per-packet stage stream).
func (b *Bench) suffixNoise() bool {
	return b.cfg.ChannelSNRdB != nil && b.cfg.SweptStage <= StageNoise
}

// preFilterPrefix reports whether the cached prefix may extend through the
// behavioral front end up to (but excluding) the channel-select filter. The
// sweep harness vouches via SweptFrontEndFilterOnly that the swept parameter
// only touches the filter or later blocks; the predicate itself depends on
// configuration alone, never on cache state.
func (b *Bench) preFilterPrefix() bool {
	return b.cfg.SweptStage == StageFrontEnd &&
		b.cfg.SweptFrontEndFilterOnly &&
		b.cfg.FrontEnd == FrontEndBehavioral
}

// fullPrefix computes TX + channel (+ prefix noise when withNoise) for packet
// p into a freshly allocated, caller-owned stage entry.
func (b *Bench) fullPrefix(p, os int, withNoise bool) (*stageEntry, error) {
	psdu, frame, err := b.synthTX(p)
	if err != nil {
		return nil, err
	}
	wave, err := b.composeChannel(nil, frame, os, p)
	if err != nil {
		return nil, err
	}
	if withNoise {
		if b.noiseRNG == nil {
			b.noiseRNG = randutil.NewRandDirect(0)
		}
		b.noiseRNG.Seed(seed.ForStage(b.stageRoot(StageNoise), int(StageNoise), p))
		b.addNoise(wave, os, b.noiseRNG)
	}
	return &stageEntry{refBits: bits.FromBytes(psdu), wave: wave}, nil
}

// prefixBoundary tells Run where packetPrefix's returned waveform sits in the
// pipeline, i.e. which suffix still has to run.
type prefixBoundary int

const (
	// prefixAntenna: the waveform is the antenna signal; noise (when in the
	// suffix) and the full front end still apply.
	prefixAntenna prefixBoundary = iota
	// prefixPreFilter: the waveform is inside the behavioral front end, just
	// upstream of the channel-select filter; ProcessFromFilter still applies.
	prefixPreFilter
	// prefixBaseband: the waveform is the noiseless post-front-end baseband;
	// only the per-point noise still applies (the SNR-sweep fast path).
	prefixBaseband
)

// packetPrefix produces packet p's waveform at the prefix boundary along
// with its reference payload bits, serving the invariant prefix from the
// cache when one is attached. The returned boundary tells Run which pipeline
// suffix still has to execute; the waveform is safe to mutate (cache hits are
// copied out).
func (b *Bench) packetPrefix(p, os int) (refBits []byte, wave []complex128, boundary prefixBoundary, err error) {
	cloneWave := func(e *stageEntry) []complex128 {
		b.scratch = append(b.scratch[:0], e.wave...)
		return b.scratch
	}
	rxFE, behavioral := b.fe.(*rf.Receiver)
	switch {
	case b.noiseAfterFrontEnd(os):
		// Baseband prefix: TX + channel + identity front end, noiseless.
		v, err := b.cfg.Cache.GetOrCompute(b.stageKey(cacheKindBaseband, p, os, false),
			func() (any, int64, error) {
				e, err := b.fullPrefix(p, os, false)
				if err != nil {
					return nil, 0, err
				}
				b.fe.Reset()
				e.wave = append([]complex128(nil), b.fe.Process(e.wave)...)
				return e, e.sizeBytes(), nil
			})
		if err != nil {
			return nil, nil, prefixAntenna, err
		}
		e := v.(*stageEntry)
		return e.refBits, cloneWave(e), prefixBaseband, nil

	case b.preFilterPrefix() && behavioral:
		// Pre-filter prefix: TX + channel (+ invariant noise) + the front-end
		// segment upstream of the channel-select filter. Bit-exact because
		// Receiver.Process is ProcessToFilter∘ProcessFromFilter and every
		// front-end noise/LO stream restarts per packet from fixed seeds.
		withNoise := b.cfg.ChannelSNRdB != nil
		v, err := b.cfg.Cache.GetOrCompute(b.stageKey(cacheKindPreFilter, p, os, withNoise),
			func() (any, int64, error) {
				e, err := b.fullPrefix(p, os, withNoise)
				if err != nil {
					return nil, 0, err
				}
				rxFE.Reset()
				e.wave = rxFE.ProcessToFilter(e.wave)
				return e, e.sizeBytes(), nil
			})
		if err != nil {
			return nil, nil, prefixAntenna, err
		}
		e := v.(*stageEntry)
		return e.refBits, cloneWave(e), prefixPreFilter, nil

	case b.cfg.SweptStage >= StageNoise:
		// Antenna prefix: TX + channel, including the noise only when it is
		// invariant too (front-end sweeps with an explicit channel SNR).
		withNoise := b.cfg.ChannelSNRdB != nil && !b.suffixNoise()
		v, err := b.cfg.Cache.GetOrCompute(b.stageKey(cacheKindAntenna, p, os, withNoise),
			func() (any, int64, error) {
				e, err := b.fullPrefix(p, os, withNoise)
				if err != nil {
					return nil, 0, err
				}
				return e, e.sizeBytes(), nil
			})
		if err != nil {
			return nil, nil, prefixAntenna, err
		}
		e := v.(*stageEntry)
		return e.refBits, cloneWave(e), prefixAntenna, nil

	case b.cfg.SweptStage == StageChannel:
		// TX prefix only: the channel is swept, the frame is not.
		v, err := b.cfg.Cache.GetOrCompute(b.stageKey(cacheKindTX, p, os, false),
			func() (any, int64, error) {
				psdu, frame, err := b.synthTX(p)
				if err != nil {
					return nil, 0, err
				}
				e := &stageEntry{
					refBits: bits.FromBytes(psdu),
					wave:    append([]complex128(nil), frame.Samples...),
				}
				return e, e.sizeBytes(), nil
			})
		if err != nil {
			return nil, nil, prefixAntenna, err
		}
		e := v.(*stageEntry)
		// The composer only reads emitter samples, so the cached frame
		// waveform is aliased, not copied.
		txFrame := phy.Frame{Samples: e.wave}
		x, err := b.composeChannel(b.antenna[:0], &txFrame, os, p)
		if err != nil {
			return nil, nil, prefixAntenna, err
		}
		b.antenna = x
		return e.refBits, x, prefixAntenna, nil

	default:
		// Everything depends on the swept parameter (or no sweep at all):
		// run the full chain into the bench's reused antenna buffer.
		psdu, frame, err := b.synthTX(p)
		if err != nil {
			return nil, nil, prefixAntenna, err
		}
		x, err := b.composeChannel(b.antenna[:0], frame, os, p)
		if err != nil {
			return nil, nil, prefixAntenna, err
		}
		b.antenna = x
		return bits.FromBytes(psdu), x, prefixAntenna, nil
	}
}

// Run simulates the configured number of packets and returns the measured
// statistics. The pipeline is the five-stage chain documented on Stage; each
// packet's prefix (the stages before Config.SweptStage) may be served from
// Config.Cache, with identical results either way.
func (b *Bench) Run() (*Result, error) {
	os := b.oversample()
	if b.fe == nil {
		fe, err := b.buildFrontEnd(os)
		if err != nil {
			return nil, err
		}
		b.fe = fe
	}
	fe := b.fe
	mode, err := phy.ModeByRate(b.cfg.RateMbps)
	if err != nil {
		return nil, err
	}
	if b.tx == nil {
		b.tx = &phy.Transmitter{Mode: mode}
	}
	suffixNoise := b.suffixNoise()
	if suffixNoise {
		// The point-variant noise is one sequential stream per Run, rewound
		// by snapshot restore instead of a costly re-seed. Draw counts per
		// packet are fixed by the configuration, so packet p's noise is
		// independent of how many packets run after it.
		if !b.noiseMarked {
			// The mark snapshots the generator's current state, so it must be
			// planted right after seeding with the point's noise seed —
			// marking a differently seeded generator would hand every sweep
			// point the same noise realization.
			s := seed.ForStage(b.stageRoot(StageNoise), int(StageNoise), 0)
			if b.noiseRNG == nil {
				b.noiseRNG = randutil.NewRandDirect(s)
			} else {
				b.noiseRNG.Seed(s)
				b.noiseRNG.Mark()
			}
			b.noiseMarked = true
		}
		b.noiseRNG.Rewind()
	}
	res := &Result{OversampleFactor: os, FrontEnd: b.cfg.FrontEnd}
	var evm evmAccum

	for p := 0; p < b.cfg.Packets; p++ {
		refBits, wave, boundary, err := b.packetPrefix(p, os)
		if err != nil {
			return nil, err
		}
		var baseband []complex128
		switch boundary {
		case prefixBaseband:
			// SNR-sweep fast path: wave is the noiseless post-front-end
			// baseband; only the noise is re-drawn per point.
			b.addNoise(wave, os, b.noiseRNG)
			baseband = wave
		case prefixPreFilter:
			// Filter-sweep fast path: wave already passed the pre-filter
			// front-end segment; only the channel-select filter and the
			// blocks after it run per point. Reset restores every block, but
			// the pre-filter ones are simply not used again this packet.
			rx := fe.(*rf.Receiver)
			rx.Reset()
			baseband = rx.ProcessFromFilter(wave)
		default:
			if suffixNoise {
				b.addNoise(wave, os, b.noiseRNG)
			}
			fe.Reset()
			baseband = fe.Process(wave)
		}

		if b.receivePacket(baseband, refBits, mode, res, &evm) {
			break
		}
	}
	evm.finish(res)
	return res, nil
}

// evmAccum accumulates per-packet decision-directed EVM measurements across
// one run; finish folds the accumulation into the result.
type evmAccum struct {
	acc     float64
	symbols int
}

func (e *evmAccum) finish(res *Result) {
	if e.symbols > 0 {
		res.EVM = measure.EVMResult{
			RMS:     math.Sqrt(e.acc / float64(e.symbols)),
			Symbols: e.symbols,
		}
	}
}

// receivePacket runs the DSP receiver over one packet's baseband and folds
// the outcome (errors, loss, EVM) into res/evm. It reports whether
// TargetErrors stops the run. Shared by the sequential Run loop and the
// batched sweep runner so both paths count packets identically.
func (b *Bench) receivePacket(baseband []complex128, refBits []byte, mode phy.Mode, res *Result, evm *evmAccum) bool {
	pkt, rxErr := b.receiveDSP(baseband, mode)
	return b.accountPacket(pkt, rxErr, refBits, mode, res, evm)
}

// receiveDSP runs the configured DSP receiver over one packet's baseband,
// creating it lazily on first use (RunBenchBatch pre-creates it to opt the
// lanes into the deferred-decode batch path).
func (b *Bench) receiveDSP(baseband []complex128, mode phy.Mode) (*rxdsp.PacketResult, error) {
	if b.cfg.UseIdealRxTiming {
		if b.irx == nil {
			b.irx = &rxdsp.IdealReceiver{Mode: mode, PSDULen: b.cfg.PSDULen, ReuseBuffers: true}
		}
		return b.irx.Receive(baseband, leadInSamples)
	}
	if b.rx == nil {
		b.rx = rxdsp.NewReceiver()
		b.rx.HardDecisions = b.cfg.HardDecisions
		b.rx.DisableCSI = b.cfg.DisableCSI
		b.rx.ReuseBuffers = true
	}
	b.rx.Reset()
	return b.rx.Receive(baseband, 0)
}

// accountPacket folds one packet's receive outcome into the result and EVM
// accumulator, returning whether the configured error target is reached.
func (b *Bench) accountPacket(pkt *rxdsp.PacketResult, rxErr error, refBits []byte, mode phy.Mode, res *Result, evm *evmAccum) bool {
	if rxErr != nil {
		res.Counter.AddLostPacket(len(refBits))
		return b.cfg.TargetErrors > 0 && res.Counter.Errors >= b.cfg.TargetErrors
	}
	res.Counter.AddPacket(refBits, bits.FromBytes(pkt.PSDU))
	if ev, err := measure.EVM(pkt.EqualizedCarriers, mode.Modulation); err == nil {
		evm.acc += ev.RMS * ev.RMS * float64(ev.Symbols)
		evm.symbols += ev.Symbols
	}
	return b.cfg.TargetErrors > 0 && res.Counter.Errors >= b.cfg.TargetErrors
}
