package core

import (
	"fmt"

	"wlansim/internal/measure"
	"wlansim/internal/phy"
	"wlansim/internal/randutil"
	"wlansim/internal/rf"
	"wlansim/internal/rxdsp"
	"wlansim/internal/seed"
)

// This file is the system-level end of the batched pipeline: RunBenchBatch
// takes B sweep-point configurations that differ only in their noise (Seed
// and ChannelSNRdB) and pushes all B points through the behavioral front end
// in lock-step, one packet at a time, via rf.BatchReceiver. Lane l's Result
// is bit-identical to running its Bench sequentially: the invariant prefix
// is the same cached waveform either way, each lane's antenna noise comes
// from the lane's own restarted stream, the front end is exact by the batch
// differential tests, and the DSP receiver runs per lane unchanged.

// batchableConfigs validates that cfgs form one batch group: a noise-only
// sweep over the behavioral front end whose lanes agree on every field that
// shapes the pipeline. Seed, ChannelSNRdB and the cache wiring may differ
// per lane; everything else must match lane 0.
func batchableConfigs(cfgs []Config) error {
	if len(cfgs) < 2 {
		return fmt.Errorf("core: batch of %d points (need >= 2)", len(cfgs))
	}
	c0 := cfgs[0]
	for i, c := range cfgs {
		if c.SweptStage != StageNoise {
			return fmt.Errorf("core: batch lane %d sweeps stage %v, not noise", i, c.SweptStage)
		}
		if c.FrontEnd != FrontEndBehavioral {
			return fmt.Errorf("core: batch lane %d front end %v is not behavioral", i, c.FrontEnd)
		}
		if c.ChannelSNRdB == nil {
			return fmt.Errorf("core: batch lane %d has no channel SNR", i)
		}
		if c.UseIdealRxTiming {
			return fmt.Errorf("core: batch lane %d uses ideal RX timing", i)
		}
		same := c.RateMbps == c0.RateMbps && c.PSDULen == c0.PSDULen &&
			c.Packets == c0.Packets && c.MultipathTaps == c0.MultipathTaps &&
			len(c.Interferers) == len(c0.Interferers) &&
			c.HardDecisions == c0.HardDecisions && c.DisableCSI == c0.DisableCSI &&
			c.TargetErrors == c0.TargetErrors && c.ContentSeed == c0.ContentSeed
		//lint:ignore floateq lanes must agree on the exact configured values — a tolerance would batch distinct configs together
		same = same && c.WantedPowerDBm == c0.WantedPowerDBm && c.CFOHz == c0.CFOHz && c.MultipathRMSSamples == c0.MultipathRMSSamples && c.DopplerHz == c0.DopplerHz && c.SampleClockPPM == c0.SampleClockPPM
		if !same {
			return fmt.Errorf("core: batch lane %d differs from lane 0 beyond Seed/ChannelSNRdB", i)
		}
		for j := range c.Interferers {
			if c.Interferers[j] != c0.Interferers[j] {
				return fmt.Errorf("core: batch lane %d interferer %d differs from lane 0", i, j)
			}
		}
	}
	return nil
}

// RunBenchBatch runs B equal-config noise-sweep points in lock-step and
// returns one Result per lane, each bit-identical to NewBench(cfgs[l]).Run().
//
// Per packet, every lane's invariant prefix (TX + channel) is served through
// the shared stage cache (lane 0 synthesizes, the rest hit), each lane adds
// its own antenna noise from its own per-point stream, and the B noisy
// antenna frames run through one rf.BatchReceiver — sharing the front end's
// internal noise/LO draws, which are identical across lanes by the fixed
// per-block reseeding contract. The DSP receiver then decodes each lane
// sequentially (its state is reset per packet, so lanes cannot interact).
// Early stopping (TargetErrors) is tracked per lane: finished lanes drop out
// of subsequent batches exactly as their sequential runs would have stopped.
func RunBenchBatch(cfgs []Config) ([]*Result, error) {
	if err := batchableConfigs(cfgs); err != nil {
		return nil, err
	}
	L := len(cfgs)
	benches := make([]*Bench, L)
	for i := range cfgs {
		b, err := NewBench(cfgs[i])
		if err != nil {
			return nil, err
		}
		benches[i] = b
	}

	b0 := benches[0]
	os := b0.oversample()
	mode, err := phy.ModeByRate(b0.cfg.RateMbps)
	if err != nil {
		return nil, err
	}
	fe, err := b0.buildFrontEnd(os)
	if err != nil {
		return nil, err
	}
	rx, ok := fe.(*rf.Receiver)
	if !ok {
		return nil, fmt.Errorf("core: behavioral front end built %T, not *rf.Receiver", fe)
	}
	batchRx := rf.NewBatchReceiver(rx)

	results := make([]*Result, L)
	evms := make([]evmAccum, L)
	stopped := make([]bool, L)
	for l, b := range benches {
		b.tx = &phy.Transmitter{Mode: mode}
		// Each lane's point-variant noise is its own sequential per-run
		// stream, exactly as in Run (suffixNoise holds for every lane).
		s := seed.ForStage(b.stageRoot(StageNoise), int(StageNoise), 0)
		b.noiseRNG = randutil.NewRandDirect(s)
		b.noiseMarked = true
		results[l] = &Result{OversampleFactor: os, FrontEnd: b.cfg.FrontEnd}
		// Pre-build the lane's DSP receiver opted into the deferred decode:
		// the packet loop below completes all lanes' Viterbi passes in
		// lock-step (ignored for hard decisions, where the lane decodes
		// eagerly and the batch completion skips it).
		b.rx = rxdsp.NewReceiver()
		b.rx.HardDecisions = b.cfg.HardDecisions
		b.rx.DisableCSI = b.cfg.DisableCSI
		b.rx.ReuseBuffers = true
		b.rx.DeferDataDecode = true
	}

	waves := make([][]complex128, 0, L)
	refs := make([][]byte, 0, L)
	active := make([]int, 0, L)
	pkts := make([]*rxdsp.PacketResult, 0, L)
	rxErrs := make([]error, 0, L)
	laneRxs := make([]*rxdsp.Receiver, 0, L)

	for p := 0; p < b0.cfg.Packets; p++ {
		waves, refs, active = waves[:0], refs[:0], active[:0]
		for l, b := range benches {
			if stopped[l] {
				continue
			}
			refBits, wave, boundary, err := b.packetPrefix(p, os)
			if err != nil {
				return nil, err
			}
			if boundary != prefixAntenna {
				return nil, fmt.Errorf("core: batch lane %d prefix boundary %d, want antenna", l, boundary)
			}
			b.addNoise(wave, os, b.noiseRNG)
			waves = append(waves, wave)
			refs = append(refs, refBits)
			active = append(active, l)
		}
		if len(active) == 0 {
			break
		}
		basebands := batchRx.Process(waves)
		pkts, rxErrs, laneRxs = pkts[:0], rxErrs[:0], laneRxs[:0]
		for k, l := range active {
			pkt, err := benches[l].receiveDSP(basebands[k], mode)
			pkts = append(pkts, pkt)
			rxErrs = append(rxErrs, err)
			laneRxs = append(laneRxs, benches[l].rx)
		}
		// One lock-step Viterbi pass over every lane that synchronized; a
		// lane's decode error is exactly the error its sequential Receive
		// would have returned, so it folds into the lane outcome below.
		derrs := rxdsp.DecodeDeferredBatch(laneRxs, pkts)
		for k, l := range active {
			rxErr := rxErrs[k]
			if rxErr == nil {
				rxErr = derrs[k]
			}
			if benches[l].accountPacket(pkts[k], rxErr, refs[k], mode, results[l], &evms[l]) {
				stopped[l] = true
			}
		}
	}
	for l := range results {
		evms[l].finish(results[l])
	}
	return results, nil
}

// runBERPointBatch is the batched analogue of runBERPoint: one fully
// configured scenario per lane in, one measurement point per lane out.
func runBERPointBatch(cfgs []Config) ([]measure.Point, error) {
	results, err := RunBenchBatch(cfgs)
	if err != nil {
		return nil, err
	}
	pts := make([]measure.Point, len(results))
	for i, res := range results {
		pts[i] = res.Counter.Point()
	}
	return pts, nil
}
