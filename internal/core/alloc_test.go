package core

import (
	"testing"

	"wlansim/internal/race"
)

// packetRunAllocBudget is the steady-state allocation budget for one
// behavioral packet simulation (one Bench.Run with warm buffers). The real
// figure is ~14–17 objects — receiver result assembly and a handful of
// unavoidable interface boxes — and, critically, it must not scale with the
// symbol count: 6 Mbit/s sends ~4x the OFDM symbols of 54 Mbit/s, so a
// per-symbol allocation shows up as a rate-dependent blow-up long before it
// trips the shared budget.
const packetRunAllocBudget = 24

// TestPacketRunAllocBounded gates every rate's packet hot path under one
// shared AllocsPerRun budget. Before the TransmitInto/ReuseBuffers work the
// 6 Mbit/s path allocated ~4x the other rates (fresh per-symbol and
// per-frame buffers); this test keeps all rates on the reuse path.
func TestPacketRunAllocBounded(t *testing.T) {
	if testing.Short() {
		t.Skip("behavioral chain too slow for -short")
	}
	if race.Enabled {
		// The receive chain rides the FFT plan's sync.Pool scratch, and the
		// race detector intentionally drops pool Puts, inflating the count
		// past the budget. check.sh enforces this gate without -race.
		t.Skip("sync.Pool drops Puts under the race detector; the non-race alloc gate enforces this budget")
	}
	for _, rate := range []int{6, 24, 54} {
		bench, err := NewBench(packetBenchConfig(rate))
		if err != nil {
			t.Fatal(err)
		}
		// Warm every reused buffer (front end, frame, scratch, receiver).
		if _, err := bench.Run(); err != nil {
			t.Fatal(err)
		}
		n := testing.AllocsPerRun(5, func() {
			if _, err := bench.Run(); err != nil {
				panic(err)
			}
		})
		if n > packetRunAllocBudget {
			t.Errorf("%d Mbit/s: %v allocations per packet run, budget %d — a hot-path buffer stopped being reused",
				rate, n, packetRunAllocBudget)
		}
	}
}
