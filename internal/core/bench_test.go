package core

import (
	"math"
	"strings"
	"testing"

	"wlansim/internal/analog"
	"wlansim/internal/rf"
)

func TestNewBenchValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PSDULen = 0
	if _, err := NewBench(cfg); err == nil {
		t.Error("accepted zero PSDU length")
	}
	cfg = DefaultConfig()
	cfg.Packets = 0
	if _, err := NewBench(cfg); err == nil {
		t.Error("accepted zero packets")
	}
	cfg = DefaultConfig()
	cfg.RateMbps = 17
	if _, err := NewBench(cfg); err == nil {
		t.Error("accepted invalid rate")
	}
	cfg = DefaultConfig()
	cfg.Interferers = []InterfererSpec{{OffsetHz: 20e6, RateMbps: 5}}
	if _, err := NewBench(cfg); err == nil {
		t.Error("accepted interferer with invalid rate")
	}
	cfg = DefaultConfig()
	cfg.UseIdealRxTiming = true // requires ideal front end
	if _, err := NewBench(cfg); err == nil {
		t.Error("accepted ideal timing with behavioral front end")
	}
}

func TestBenchIdealFrontEndErrorFree(t *testing.T) {
	cfg := DefaultConfig()
	cfg.FrontEnd = FrontEndIdeal
	cfg.Packets = 3
	bench, err := NewBench(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := bench.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.BER() != 0 {
		t.Errorf("ideal front end BER %v", res.BER())
	}
	if res.Counter.Packets != 3 {
		t.Errorf("packets %d", res.Counter.Packets)
	}
	if res.OversampleFactor != 1 {
		t.Errorf("oversample %d without interferers", res.OversampleFactor)
	}
}

func TestBenchBehavioralDecodesAtNominalPower(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Packets = 3
	bench, err := NewBench(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := bench.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.BER() != 0 {
		t.Errorf("behavioral BER %v at -62 dBm (well above sensitivity)", res.BER())
	}
	// The behavioral chain adds impairments: EVM must be nonzero but sane.
	if res.EVM.RMS <= 0 || res.EVM.Percent() > 15 {
		t.Errorf("EVM %v implausible", res.EVM)
	}
}

func TestBenchCoSimDecodesAtNominalPower(t *testing.T) {
	cfg := DefaultConfig()
	cfg.FrontEnd = FrontEndCoSim
	cfg.Packets = 2
	bench, err := NewBench(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := bench.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.BER() != 0 {
		t.Errorf("cosim BER %v at -62 dBm", res.BER())
	}
}

func TestBenchAdjacentChannelOversamples(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Packets = 2
	cfg.Interferers = []InterfererSpec{AdjacentChannelSpec(cfg.WantedPowerDBm)}
	bench, err := NewBench(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := bench.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.OversampleFactor != 3 {
		t.Errorf("oversample %d for a 20 MHz offset, want 3", res.OversampleFactor)
	}
	// Default filter handles the adjacent channel at nominal power.
	if res.BER() > 0.01 {
		t.Errorf("BER %v with adjacent channel at nominal settings", res.BER())
	}
}

func TestBenchBelowSensitivityFails(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Packets = 2
	cfg.WantedPowerDBm = -97
	bench, err := NewBench(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := bench.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.BER() < 0.05 {
		t.Errorf("BER %v at -97 dBm: receiver noise seems missing", res.BER())
	}
}

func TestBenchDeterministicBySeed(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Packets = 2
	cfg.WantedPowerDBm = -90 // noisy regime so randomness matters
	run := func() float64 {
		bench, err := NewBench(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := bench.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res.BER()
	}
	if a, b := run(), run(); a != b {
		t.Errorf("same seed gave different BER: %v vs %v", a, b)
	}
}

func TestBenchReportsEVMDegradationWithImpairments(t *testing.T) {
	clean := DefaultConfig()
	clean.FrontEnd = FrontEndIdeal
	clean.Packets = 2
	b1, _ := NewBench(clean)
	r1, err := b1.Run()
	if err != nil {
		t.Fatal(err)
	}
	dirty := DefaultConfig()
	dirty.Packets = 2
	b2, _ := NewBench(dirty)
	r2, err := b2.Run()
	if err != nil {
		t.Fatal(err)
	}
	if r2.EVM.RMS <= r1.EVM.RMS {
		t.Errorf("behavioral EVM %v not worse than ideal %v", r2.EVM.RMS, r1.EVM.RMS)
	}
}

func TestFrontEndKindString(t *testing.T) {
	if FrontEndIdeal.String() != "ideal" ||
		FrontEndBehavioral.String() != "behavioral-baseband" ||
		FrontEndCoSim.String() != "analog-cosim" ||
		FrontEndKind(9).String() != "?" {
		t.Error("FrontEndKind names wrong")
	}
}

func TestInterfererSpecs(t *testing.T) {
	a := AdjacentChannelSpec(-60)
	if a.OffsetHz != 20e6 || a.PowerDBm != -44 {
		t.Errorf("adjacent spec %+v", a)
	}
	s := SecondAdjacentChannelSpec(-60)
	if s.OffsetHz != 40e6 || s.PowerDBm != -28 {
		t.Errorf("second adjacent spec %+v", s)
	}
}

func TestTuneRFAndCoSimHooksApplied(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Packets = 1
	called := false
	cfg.TuneRF = func(rc *rf.ReceiverConfig) { called = true }
	bench, _ := NewBench(cfg)
	if _, err := bench.Run(); err != nil {
		t.Fatal(err)
	}
	if !called {
		t.Error("TuneRF not invoked")
	}
	cfg = DefaultConfig()
	cfg.FrontEnd = FrontEndCoSim
	cfg.Packets = 1
	calledCS := false
	cfg.TuneCoSim = func(c *analog.FrontEndConfig) { calledCS = true }
	bench, _ = NewBench(cfg)
	if _, err := bench.Run(); err != nil {
		t.Fatal(err)
	}
	if !calledCS {
		t.Error("TuneCoSim not invoked")
	}
}

func TestStandardsTableText(t *testing.T) {
	txt := StandardsTableText()
	for _, want := range []string{"802.11a", "5.2", "54", "1999", "expect."} {
		if !strings.Contains(txt, want) {
			t.Errorf("table text missing %q", want)
		}
	}
}

func TestBenchHardDecisionsWorseAtLowSNR(t *testing.T) {
	base := DefaultConfig()
	base.Packets = 3
	base.WantedPowerDBm = -90 // near the decode cliff
	soft := base
	hard := base
	hard.HardDecisions = true
	bs, _ := NewBench(soft)
	rs, err := bs.Run()
	if err != nil {
		t.Fatal(err)
	}
	bh, _ := NewBench(hard)
	rh, err := bh.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rh.BER() < rs.BER() {
		t.Errorf("hard decisions (%v) beat soft decisions (%v)", rh.BER(), rs.BER())
	}
}

func TestBenchChannelSNRApplied(t *testing.T) {
	cfg := DefaultConfig()
	cfg.FrontEnd = FrontEndIdeal
	cfg.Packets = 2
	low := 3.0
	cfg.ChannelSNRdB = &low
	bench, _ := NewBench(cfg)
	res, err := bench.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.BER() < 0.05 {
		t.Errorf("BER %v at 3 dB SNR should be high", res.BER())
	}
}

func TestBenchCFOTolerated(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Packets = 2
	cfg.CFOHz = 120e3 // ~23 ppm at 5.2 GHz, within 802.11a tolerance
	bench, _ := NewBench(cfg)
	res, err := bench.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.BER() != 0 {
		t.Errorf("BER %v with a tolerable CFO", res.BER())
	}
}

func TestBenchMultipathTolerated(t *testing.T) {
	cfg := DefaultConfig()
	cfg.FrontEnd = FrontEndIdeal
	cfg.Packets = 4
	cfg.RateMbps = 12 // robust mode over fading
	cfg.MultipathTaps = 4
	cfg.MultipathRMSSamples = 1.5
	bench, _ := NewBench(cfg)
	res, err := bench.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Block-fading Rayleigh: occasional deep fades may lose a packet, but
	// the majority must survive at 12 Mbps.
	if res.Counter.PER() > 0.5 {
		t.Errorf("PER %v over mild multipath", res.Counter.PER())
	}
}

func TestResultBERAccessor(t *testing.T) {
	var r Result
	if r.BER() != 0 {
		t.Error("empty result BER != 0")
	}
	if math.IsNaN(r.BER()) {
		t.Error("NaN BER")
	}
}

func TestBenchDopplerFadingTolerated(t *testing.T) {
	cfg := DefaultConfig()
	cfg.FrontEnd = FrontEndIdeal
	cfg.Packets = 4
	cfg.RateMbps = 12
	cfg.MultipathTaps = 3
	cfg.MultipathRMSSamples = 1.5
	cfg.DopplerHz = 200 // pedestrian-speed fading at 5.2 GHz
	bench, err := NewBench(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := bench.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Counter.PER() > 0.5 {
		t.Errorf("PER %v under slow Doppler fading", res.Counter.PER())
	}
}

func TestBenchSampleClockOffsetTolerated(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Packets = 2
	cfg.SampleClockPPM = 40 // clause-17 worst-case mismatch
	bench, err := NewBench(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := bench.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.BER() != 0 {
		t.Errorf("BER %v under +-40 ppm clock offset", res.BER())
	}
}

func TestEVMBudgetDecomposition(t *testing.T) {
	if testing.Short() {
		t.Skip("budget too slow for -short")
	}
	base := DefaultConfig()
	base.Packets = 2
	base.PSDULen = 60
	rows, err := EVMBudget(base)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]EVMBudgetRow{}
	for _, r := range rows {
		byName[r.Impairment] = r
	}
	residual := byName["none (residual)"]
	all := byName["all impairments"]
	if residual.EVMPercent <= 0 {
		t.Error("residual EVM should be positive (AGC/filter effects)")
	}
	if all.EVMPercent <= residual.EVMPercent {
		t.Errorf("all-impairments EVM %v not above residual %v",
			all.EVMPercent, residual.EVMPercent)
	}
	// Each single impairment lies between residual and all-on.
	for _, name := range []string{"thermal noise", "LO phase noise", "I/Q imbalance"} {
		r := byName[name]
		if r.EVMPercent < residual.EVMPercent-0.3 || r.EVMPercent > all.EVMPercent+0.3 {
			t.Errorf("%s EVM %v outside [residual %v, all %v]",
				name, r.EVMPercent, residual.EVMPercent, all.EVMPercent)
		}
	}
	if !strings.Contains(FormatEVMBudget(rows), "impairment") {
		t.Error("budget formatting broken")
	}
}

func TestBenchBlackBoxFrontEndDecodes(t *testing.T) {
	if testing.Short() {
		t.Skip("extraction too slow for -short")
	}
	cfg := DefaultConfig()
	cfg.FrontEnd = FrontEndBlackBox
	cfg.Packets = 2
	cfg.PSDULen = 60
	bench, err := NewBench(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := bench.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.BER() != 0 {
		t.Errorf("black-box front end BER %v at nominal power", res.BER())
	}
	if res.FrontEnd.String() != "kmodel-blackbox" {
		t.Errorf("front end kind %v", res.FrontEnd)
	}
}
