package core

import (
	"strings"
	"testing"

	"wlansim/internal/kernels"
)

// TestBatchLaneWidth pins the lane-width rounding under both kernel tiers:
// with the assembly tier active a configured batch rounds up to the next
// multiple of the vector width; under pure Go it passes through unchanged.
func TestBatchLaneWidth(t *testing.T) {
	prev := kernels.DispatchName() != "purego"
	defer kernels.SetDispatch(prev)

	kernels.SetDispatch(false)
	for _, b := range []int{2, 3, 4, 7} {
		if got := batchLaneWidth(b); got != b {
			t.Errorf("pure-Go tier: batchLaneWidth(%d) = %d, want %d", b, got, b)
		}
	}

	if kernels.SetDispatch(true) == "purego" {
		return // no assembly tier on this machine
	}
	w := kernels.SIMDWidth()
	for _, b := range []int{2, 3, 4, 7} {
		got := batchLaneWidth(b)
		if got%w != 0 || got < b || got-b >= w {
			t.Errorf("SIMD tier (width %d): batchLaneWidth(%d) = %d, want next multiple of %d",
				w, b, got, w)
		}
	}
}

func TestWaterfallOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("waterfall too slow for -short")
	}
	base := DefaultConfig()
	base.Packets = 2
	base.PSDULen = 60
	fig, err := WaterfallBERvsSNR(base, []int{6, 54}, []float64{5, 15, 30})
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 2 {
		t.Fatalf("%d series", len(fig.Series))
	}
	s6, s54 := fig.Series[0], fig.Series[1]
	// At 5 dB SNR, 6 Mbps decodes but 54 Mbps cannot.
	b6, _ := s6.YAt(5)
	b54, _ := s54.YAt(5)
	if !(b6 < 0.01 && b54 > 0.2) {
		t.Errorf("at 5 dB: BER(6 Mbps)=%v, BER(54 Mbps)=%v", b6, b54)
	}
	// At 30 dB both are clean.
	b6, _ = s6.YAt(30)
	b54, _ = s54.YAt(30)
	if b6 != 0 || b54 != 0 {
		t.Errorf("at 30 dB: BER(6)=%v BER(54)=%v", b6, b54)
	}
	if !strings.Contains(fig.String(), "54 Mbps") {
		t.Error("figure rendering lost series labels")
	}
	if _, err := WaterfallBERvsSNR(base, []int{7}, []float64{10}); err == nil {
		t.Error("accepted invalid rate")
	}
}

func TestSensitivitySearchFindsPaperRange(t *testing.T) {
	if testing.Short() {
		t.Skip("search too slow for -short")
	}
	base := DefaultConfig()
	base.Packets = 2
	base.PSDULen = 60
	base.RateMbps = 6
	sens, err := SensitivitySearch(base, 0.5, 1)
	if err != nil {
		t.Fatal(err)
	}
	// The paper specifies operation down to -88 dBm; the 6 Mbps mode of
	// the modeled line-up must reach at least that, and physics (kTB+NF)
	// bounds it above -102 dBm.
	if sens > -88 {
		t.Errorf("6 Mbps sensitivity %v dBm misses the paper's -88 dBm corner", sens)
	}
	if sens < -102 {
		t.Errorf("6 Mbps sensitivity %v dBm beats the thermal limit", sens)
	}
}

func TestSensitivitySearchValidation(t *testing.T) {
	base := DefaultConfig()
	if _, err := SensitivitySearch(base, 0, 1); err == nil {
		t.Error("accepted PER target 0")
	}
	if _, err := SensitivitySearch(base, 1.5, 1); err == nil {
		t.Error("accepted PER target > 1")
	}
}

func TestInputRangeCheckPasses(t *testing.T) {
	if testing.Short() {
		t.Skip("range check too slow for -short")
	}
	base := DefaultConfig()
	base.Packets = 2
	base.PSDULen = 60
	res, err := InputRangeCheck(base)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Pass() {
		t.Errorf("input range check failed: %v", res)
	}
	if !strings.Contains(res.String(), "PASS") {
		t.Errorf("String() = %q", res.String())
	}
}

func TestACRMeetsStandardRequirements(t *testing.T) {
	if testing.Short() {
		t.Skip("ACR bisection too slow for -short")
	}
	base := DefaultConfig()
	base.Packets = 3
	base.PSDULen = 60
	for _, rate := range []int{6, 54} {
		res, err := MeasureACR(base, rate)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Pass() {
			t.Errorf("%d Mbps: %v", rate, res)
		}
		if !strings.Contains(res.String(), "Mbps") {
			t.Error("formatting")
		}
	}
	// Robust rates tolerate more interference than fragile ones.
	r6, _ := MeasureACR(base, 6)
	r54, _ := MeasureACR(base, 54)
	if r6.RejectionDB <= r54.RejectionDB {
		t.Errorf("6 Mbps ACR %v not above 54 Mbps ACR %v", r6.RejectionDB, r54.RejectionDB)
	}
	if _, err := MeasureACR(base, 11); err == nil {
		t.Error("accepted a rate without an ACR requirement")
	}
}

func TestSpectralRegrowthSweep(t *testing.T) {
	pts, err := SpectralRegrowthSweep(54, []float64{-6, 0, 4}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("%d points", len(pts))
	}
	// Monotone: more backoff, fewer violations.
	if !(pts[0].MaskViolations > pts[1].MaskViolations) {
		t.Errorf("overdrive (%d) not worse than 0 dB (%d)",
			pts[0].MaskViolations, pts[1].MaskViolations)
	}
	if pts[2].MaskViolations != 0 {
		t.Errorf("4 dB backoff still violates the mask (%d bins)", pts[2].MaskViolations)
	}
	if pts[0].WorstExcessDB <= pts[2].WorstExcessDB {
		t.Error("worst excess not decreasing with backoff")
	}
	// OFDM PAPR around 9-11 dB.
	if pts[0].PAPRdB < 7 || pts[0].PAPRdB > 13 {
		t.Errorf("PAPR %v dB implausible", pts[0].PAPRdB)
	}
	need, err := RequiredBackoffDB(pts)
	if err != nil || need != 4 {
		t.Errorf("required backoff %v (err %v), want 4 from this grid", need, err)
	}
	if _, err := RequiredBackoffDB(pts[:1]); err == nil {
		t.Error("reported a backoff when none meets the mask")
	}
	if _, err := SpectralRegrowthSweep(54, nil, 1); err == nil {
		t.Error("accepted empty sweep")
	}
	if _, err := SpectralRegrowthSweep(7, []float64{0}, 1); err == nil {
		t.Error("accepted invalid rate")
	}
}

func TestRunVerificationReport(t *testing.T) {
	if testing.Short() {
		t.Skip("report too slow for -short")
	}
	base := DefaultConfig()
	base.Packets = 2
	base.PSDULen = 60
	rep, err := RunVerificationReport(base)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Items) != 5 {
		t.Fatalf("%d report items", len(rep.Items))
	}
	if !rep.Pass() {
		t.Errorf("default line-up fails its own sign-off:\n%s", rep.String())
	}
	for _, want := range []string{"link budget", "nominal link", "input range", "adjacent rejection", "transmit mask", "overall: PASS"} {
		if !strings.Contains(rep.String(), want) {
			t.Errorf("report missing %q", want)
		}
	}
}
