package core

import (
	"testing"
)

// Canonical perf scenarios for scripts/bench.sh. The ns/op, B/op and
// allocs/op of these benchmarks are the tracked perf trajectory recorded in
// BENCH_*.json; treat name changes as a breaking change to that pipeline.
//
// Each packet benchmark runs exactly one packet (Packets=1) through the full
// behavioral chain — transmitter, composite channel, RF front end, DSP
// receiver — so ns/op reads directly as ns/packet.

func packetBenchConfig(rate int) Config {
	cfg := DefaultConfig()
	cfg.RateMbps = rate
	cfg.Packets = 1
	cfg.PSDULen = 100
	cfg.FrontEnd = FrontEndBehavioral
	return cfg
}

func runPacketBench(b *testing.B, rate int) {
	b.Helper()
	bench, err := NewBench(packetBenchConfig(rate))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := bench.Run()
		if err != nil {
			b.Fatal(err)
		}
		if res.Counter.Packets != 1 {
			b.Fatalf("simulated %d packets, want 1", res.Counter.Packets)
		}
	}
}

func BenchmarkPacketBehavioral6(b *testing.B)  { runPacketBench(b, 6) }
func BenchmarkPacketBehavioral24(b *testing.B) { runPacketBench(b, 24) }
func BenchmarkPacketBehavioral54(b *testing.B) { runPacketBench(b, 54) }

// BenchmarkSweepExecutor measures the parallel sweep engine end to end on a
// cheap ideal-front-end waterfall (3 SNR points, 1 packet each, 4 workers):
// the per-point dispatch/collect overhead plus the hot packet chain.
func BenchmarkSweepExecutor(b *testing.B) {
	base := DefaultConfig()
	base.FrontEnd = FrontEndIdeal
	base.Packets = 1
	base.PSDULen = 100
	base.Workers = 4
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fig, err := WaterfallBERvsSNR(base, []int{24}, []float64{8, 12, 16})
		if err != nil {
			b.Fatal(err)
		}
		if len(fig.Series) != 1 {
			b.Fatalf("got %d series", len(fig.Series))
		}
	}
}

// BenchmarkSweepFilterBW measures a real RF-parameter sweep end to end: the
// Figure 5 filter-bandwidth scenario (48 Mbit/s wanted + adjacent channel at
// 3x oversampling, behavioral front end) over 6 passband edges with 2 packets
// per point on 4 workers. The swept parameter only affects the front end, so
// this is the canonical beneficiary of the invariant-prefix stage cache.
func BenchmarkSweepFilterBW(b *testing.B) {
	base := Figure5Config()
	base.Packets = 2
	base.PSDULen = 100
	base.Workers = 4
	edges := []float64{6e6, 7.6e6, 9.2e6, 10.8e6, 12.4e6, 14e6}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		series, err := FilterBandwidthSweep(base, edges)
		if err != nil {
			b.Fatal(err)
		}
		if len(series.Points) != len(edges) {
			b.Fatalf("got %d points", len(series.Points))
		}
	}
}

// sweepBatchedConfig is the canonical batched-sweep scenario: a behavioral
// front-end waterfall at 24 Mbit/s, 8 SNR points, 2 packets per point, one
// worker (so the measurement isolates batching, not goroutine parallelism).
func sweepBatchedConfig() (Config, []float64) {
	base := DefaultConfig()
	base.FrontEnd = FrontEndBehavioral
	base.Packets = 2
	base.PSDULen = 100
	base.Workers = 1
	return base, []float64{8, 10, 12, 14, 16, 18, 20, 22}
}

func runSweepBatched(b *testing.B, batch int) {
	b.Helper()
	base, snrs := sweepBatchedConfig()
	base.Batch = batch
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fig, err := WaterfallBERvsSNROnFrontEnd(base, FrontEndBehavioral, []int{24}, snrs)
		if err != nil {
			b.Fatal(err)
		}
		if len(fig.Series) != 1 || len(fig.Series[0].Points) != len(snrs) {
			b.Fatalf("unexpected figure shape")
		}
	}
}

// BenchmarkSweepBatched runs the canonical batched-sweep scenario through
// the lock-step batch pipeline (Batch=8: all points in one batch group).
// Compare against BenchmarkSweepBatchedSeq — identical workload, identical
// results, sequential dispatch — for the batching speedup.
func BenchmarkSweepBatched(b *testing.B) { runSweepBatched(b, 8) }

// BenchmarkSweepBatchedSeq is the sequential-dispatch control for
// BenchmarkSweepBatched.
func BenchmarkSweepBatchedSeq(b *testing.B) { runSweepBatched(b, 0) }

// BenchmarkPacketIdeal24 isolates the DSP chain (no RF impairment models):
// transmitter, AWGN, synchronizing receiver, soft Viterbi.
func BenchmarkPacketIdeal24(b *testing.B) {
	cfg := packetBenchConfig(24)
	cfg.FrontEnd = FrontEndIdeal
	snr := 30.0
	cfg.ChannelSNRdB = &snr
	bench, err := NewBench(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := bench.Run()
		if err != nil {
			b.Fatal(err)
		}
		if res.BER() != 0 {
			b.Fatalf("BER %g at 30 dB", res.BER())
		}
	}
}

// Guard: the benchmark scenarios decode cleanly, so the timed loop measures
// the success path (a failing sync would silently skip the decode cost).
func TestPacketBenchScenariosDecode(t *testing.T) {
	for _, rate := range []int{6, 24, 54} {
		bench, err := NewBench(packetBenchConfig(rate))
		if err != nil {
			t.Fatal(err)
		}
		res, err := bench.Run()
		if err != nil {
			t.Fatal(err)
		}
		if res.Counter.LostPackets != 0 || res.BER() != 0 {
			t.Errorf("%d Mbps: BER %g, %d lost — benchmark scenario no longer on the success path",
				rate, res.BER(), res.Counter.LostPackets)
		}
	}
}
