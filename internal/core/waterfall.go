package core

import (
	"fmt"

	"wlansim/internal/kernels"
	"wlansim/internal/measure"
	"wlansim/internal/phy"
	"wlansim/internal/seed"
	"wlansim/internal/sim"
)

// This file adds the link-budget verifications implied by §2.2 of the
// paper: the receiver must handle wanted input levels from -88 to -23 dBm.
// WaterfallBERvsSNR produces the classical per-mode BER-versus-SNR curves
// on the ideal front end; SensitivitySearch finds the minimum wanted power
// the full behavioral receiver still decodes (the -88 dBm corner);
// InputRangeCheck verifies both corners of the specified range.

// WaterfallBERvsSNR measures BER versus channel SNR for each given rate
// using the ideal front end (pure PHY performance). Each curve draws from
// its own seed stream (derived from base.Seed and the rate) and its points
// run on base.Workers goroutines.
//
// Only the noise depends on the swept SNR, so each curve's points share the
// per-packet noiseless baseband through a per-curve stage cache (the cached
// content differs per rate, hence per-curve rather than per-figure caches)
// and re-draw only the AWGN.
func WaterfallBERvsSNR(base Config, ratesMbps []int, snrsDB []float64) (*measure.Figure, error) {
	return WaterfallBERvsSNROnFrontEnd(base, FrontEndIdeal, ratesMbps, snrsDB)
}

// WaterfallBERvsSNROnFrontEnd is WaterfallBERvsSNR with a selectable analog
// abstraction level, so waterfalls can also be taken through the behavioral
// front end (the paper's pure-SPW setup). On the behavioral front end with
// base.Batch > 1, groups of base.Batch SNR points run through the lock-step
// batched pipeline (RunBenchBatch); the series is bit-identical for every
// Batch and Workers value — only wall-clock changes.
func WaterfallBERvsSNROnFrontEnd(base Config, fe FrontEndKind, ratesMbps []int, snrsDB []float64) (*measure.Figure, error) {
	fig := &measure.Figure{Title: fmt.Sprintf("BER vs channel SNR (%v front end)", fe)}
	for _, rate := range ratesMbps {
		if _, err := phy.ModeByRate(rate); err != nil {
			return nil, err
		}
		r := rate
		rateSeed := seed.ForSeries(base.Seed, uint64(r))
		cache := newSweepCache(base)
		pointCfg := func(snr float64) Config {
			cfg := base
			cfg.Seed = seed.ForPoint(rateSeed, snr)
			cfg.ContentSeed = rateSeed
			cfg.SweptStage = StageNoise
			cfg.Cache = cache
			cfg.RateMbps = r
			cfg.FrontEnd = fe
			cfg.Interferers = nil
			s := snr
			cfg.ChannelSNRdB = &s
			return cfg
		}
		sweep := &sim.Sweep{
			Name:        fmt.Sprintf("%d Mbps", r),
			XLabel:      "channel SNR (dB)",
			YLabel:      "bit error rate",
			Values:      snrsDB,
			Workers:     base.Workers,
			OnPointDone: base.OnSweepPoint,
			RunPoint: func(snr float64) (measure.Point, error) {
				return runBERPoint(pointCfg(snr))
			},
		}
		if fe == FrontEndBehavioral && base.Batch > 1 {
			sweep.BatchSize = batchLaneWidth(base.Batch)
			sweep.RunPointBatch = func(snrs []float64) ([]measure.Point, error) {
				cfgs := make([]Config, len(snrs))
				for i, snr := range snrs {
					cfgs[i] = pointCfg(snr)
				}
				return runBERPointBatch(cfgs)
			}
		}
		series, err := sweep.Execute()
		if err != nil {
			return nil, err
		}
		if cache != nil {
			series.Cache = cache.Stats()
		}
		fig.Series = append(fig.Series, series)
	}
	return fig, nil
}

// batchLaneWidth rounds a configured batch width up to the next multiple of
// the kernel tier's SIMD lane width, so every vector instruction in the
// batched pipeline runs with full lanes (the sweep executor pads ragged value
// tails with dummy lanes, so a widened batch never falls back to the scalar
// path). With the pure-Go tier active the width is 1 and the configured value
// passes through unchanged. The series itself is width-independent — pinned
// by TestGoldenBERBatchingInvariant — so this only affects wall-clock.
func batchLaneWidth(b int) int {
	w := kernels.SIMDWidth()
	if w <= 1 {
		return b
	}
	return (b + w - 1) / w * w
}

// SensitivitySearch bisects the wanted power until the packet error rate
// crosses maxPER, returning the sensitivity in dBm (within tolDB). The
// search runs on the configured front end, so it captures the full analog
// noise/impairment budget.
func SensitivitySearch(base Config, maxPER, tolDB float64) (float64, error) {
	if maxPER <= 0 || maxPER >= 1 {
		return 0, fmt.Errorf("core: target PER %g outside (0,1)", maxPER)
	}
	if tolDB <= 0 {
		tolDB = 0.5
	}
	per := func(power float64) (float64, error) {
		cfg := base
		cfg.WantedPowerDBm = power
		bench, err := NewBench(cfg)
		if err != nil {
			return 0, err
		}
		res, err := bench.Run()
		if err != nil {
			return 0, err
		}
		return res.Counter.PER(), nil
	}
	lo, hi := -110.0, -50.0 // lo fails, hi passes (checked below)
	pHi, err := per(hi)
	if err != nil {
		return 0, err
	}
	if pHi > maxPER {
		return 0, fmt.Errorf("core: receiver fails even at %g dBm (PER %g)", hi, pHi)
	}
	pLo, err := per(lo)
	if err != nil {
		return 0, err
	}
	if pLo <= maxPER {
		return lo, nil // better than the search floor
	}
	for hi-lo > tolDB {
		mid := (lo + hi) / 2
		p, err := per(mid)
		if err != nil {
			return 0, err
		}
		if p <= maxPER {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi, nil
}

// InputRangeResult reports the §2.2 corner verification.
type InputRangeResult struct {
	// LowCornerDBm / LowCornerBER exercise the -88 dBm sensitivity corner
	// at the most robust rate (6 Mbps).
	LowCornerDBm float64
	LowCornerBER float64
	// HighCornerDBm / HighCornerBER exercise the -23 dBm overload corner.
	HighCornerDBm float64
	HighCornerBER float64
}

// Pass reports whether both corners decode essentially error-free.
func (r InputRangeResult) Pass() bool {
	return r.LowCornerBER < 1e-3 && r.HighCornerBER < 1e-3
}

// String formats the result.
func (r InputRangeResult) String() string {
	verdict := "FAIL"
	if r.Pass() {
		verdict = "PASS"
	}
	return fmt.Sprintf("input range check %s: BER %.2g at %g dBm, BER %.2g at %g dBm",
		verdict, r.LowCornerBER, r.LowCornerDBm, r.HighCornerBER, r.HighCornerDBm)
}

// InputRangeCheck verifies the receiver across the paper's specified wanted
// input range: -88 dBm at 6 Mbps (sensitivity) and -23 dBm at 24 Mbps
// (overload; the AGC must back the gain off and the LNA headroom must
// suffice).
func InputRangeCheck(base Config) (InputRangeResult, error) {
	out := InputRangeResult{LowCornerDBm: -88, HighCornerDBm: -23}
	low := base
	low.RateMbps = 6
	low.WantedPowerDBm = out.LowCornerDBm
	bench, err := NewBench(low)
	if err != nil {
		return out, err
	}
	res, err := bench.Run()
	if err != nil {
		return out, err
	}
	out.LowCornerBER = res.BER()

	high := base
	high.RateMbps = 24
	high.WantedPowerDBm = out.HighCornerDBm
	bench, err = NewBench(high)
	if err != nil {
		return out, err
	}
	res, err = bench.Run()
	if err != nil {
		return out, err
	}
	out.HighCornerBER = res.BER()
	return out, nil
}
