package core

import (
	"fmt"
	"math/rand"
	"strings"

	"wlansim/internal/bits"
	"wlansim/internal/dsp"
	"wlansim/internal/phy"
	"wlansim/internal/rf"
)

// VerificationReport aggregates the receiver sign-off checks the paper's
// methodology is built for: the Friis link budget, the wanted input range,
// nominal BER/EVM through the behavioral front end, a spot adjacent-channel
// rejection check, and the transmit-side spectral mask — one pass/fail
// summary per item.

// ReportItem is one line of the verification report.
type ReportItem struct {
	// Name identifies the check.
	Name string
	// Pass is the verdict.
	Pass bool
	// Detail carries the measured numbers.
	Detail string
}

// VerificationReport is the aggregated sign-off summary.
type VerificationReport struct {
	Items []ReportItem
}

// Pass reports whether every item passed.
func (r *VerificationReport) Pass() bool {
	for _, i := range r.Items {
		if !i.Pass {
			return false
		}
	}
	return true
}

// String renders the report.
func (r *VerificationReport) String() string {
	var b strings.Builder
	for _, i := range r.Items {
		verdict := "FAIL"
		if i.Pass {
			verdict = "PASS"
		}
		fmt.Fprintf(&b, "[%s] %-24s %s\n", verdict, i.Name, i.Detail)
	}
	overall := "FAIL"
	if r.Pass() {
		overall = "PASS"
	}
	fmt.Fprintf(&b, "overall: %s\n", overall)
	return b.String()
}

// RunVerificationReport executes the sign-off suite with the given base
// scenario (its Packets/PSDULen bound each check's cost).
func RunVerificationReport(base Config) (*VerificationReport, error) {
	rep := &VerificationReport{}
	add := func(name string, pass bool, detail string) {
		rep.Items = append(rep.Items, ReportItem{Name: name, Pass: pass, Detail: detail})
	}

	// 1. Link budget: Friis sensitivity at or below the paper's -88 dBm.
	rxCfg := rf.DefaultReceiverConfig(1)
	rx, err := rf.NewReceiver(rxCfg)
	if err != nil {
		return nil, err
	}
	cas, err := rx.Cascade()
	if err != nil {
		return nil, err
	}
	sens := cas.SensitivityDBm(20e6, 10)
	add("link budget", sens <= -88,
		fmt.Sprintf("NF %.2f dB, IIP3 %.1f dBm, sensitivity %.1f dBm (spec -88)",
			cas.NoiseFigureDB, cas.IIP3DBm, sens))

	// 2. Nominal link: behavioral front end at the default operating point.
	bench, err := NewBench(base)
	if err != nil {
		return nil, err
	}
	res, err := bench.Run()
	if err != nil {
		return nil, err
	}
	add("nominal link", res.BER() == 0,
		fmt.Sprintf("%d Mbps at %g dBm: BER %.3g, EVM %.2f%%",
			base.RateMbps, base.WantedPowerDBm, res.BER(), res.EVM.Percent()))

	// 3. Input range corners (§2.2).
	rng, err := InputRangeCheck(base)
	if err != nil {
		return nil, err
	}
	add("input range -88..-23", rng.Pass(),
		fmt.Sprintf("BER %.2g at -88 dBm (6 Mbps), %.2g at -23 dBm (24 Mbps)",
			rng.LowCornerBER, rng.HighCornerBER))

	// 4. Adjacent channel rejection spot check at the base rate.
	acr, err := MeasureACR(base, base.RateMbps)
	if err != nil {
		return nil, err
	}
	add("adjacent rejection", acr.Pass(),
		fmt.Sprintf("%.1f dB measured vs %.1f dB required (17.3.10.2)",
			acr.RejectionDB, acr.RequiredDB))

	// 5. Transmit spectral mask of a clean burst.
	tx, err := phy.NewTransmitter(base.RateMbps)
	if err != nil {
		return nil, err
	}
	frame, err := tx.Transmit(bits.RandomBytes(rand.New(rand.NewSource(base.Seed)), 400))
	if err != nil {
		return nil, err
	}
	up, err := dsp.NewUpsampler(4, 255)
	if err != nil {
		return nil, err
	}
	viol, err := phy.TransmitMask().CheckMask(up.Process(frame.Samples), 80e6)
	if err != nil {
		return nil, err
	}
	add("transmit mask", len(viol) == 0, fmt.Sprintf("%d violating bins", len(viol)))

	return rep, nil
}
