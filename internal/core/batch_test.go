package core

import (
	"math"
	"testing"

	"wlansim/internal/measure"
	"wlansim/internal/seed"
)

// batchSweepConfigs builds B equal-config behavioral noise-sweep points
// exactly the way the waterfall harness does, sharing one stage cache.
func batchSweepConfigs(base Config, rate int, snrs []float64) []Config {
	rateSeed := seed.ForSeries(base.Seed, uint64(rate))
	cache := newSweepCache(base)
	cfgs := make([]Config, len(snrs))
	for i, snr := range snrs {
		cfg := base
		cfg.Seed = seed.ForPoint(rateSeed, snr)
		cfg.ContentSeed = rateSeed
		cfg.SweptStage = StageNoise
		cfg.Cache = cache
		cfg.RateMbps = rate
		cfg.FrontEnd = FrontEndBehavioral
		cfg.Interferers = nil
		s := snr
		cfg.ChannelSNRdB = &s
		cfgs[i] = cfg
	}
	return cfgs
}

func batchBase() Config {
	base := DefaultConfig()
	base.Packets = 2
	base.PSDULen = 40
	base.Seed = 1
	return base
}

// TestRunBenchBatchMatchesSequential is the system-level differential test:
// every lane of RunBenchBatch must reproduce NewBench(cfg).Run() exactly —
// error counts, packet accounting and EVM, at the golden rates 6/24/54.
func TestRunBenchBatchMatchesSequential(t *testing.T) {
	base := batchBase()
	snrs := []float64{8, 12, 16, 20}
	for _, rate := range []int{6, 24, 54} {
		cfgs := batchSweepConfigs(base, rate, snrs)
		got, err := RunBenchBatch(cfgs)
		if err != nil {
			t.Fatal(err)
		}
		for l, cfg := range cfgs {
			bench, err := NewBench(cfg)
			if err != nil {
				t.Fatal(err)
			}
			want, err := bench.Run()
			if err != nil {
				t.Fatal(err)
			}
			if got[l].Counter != want.Counter {
				t.Errorf("%d Mbps lane %d (SNR %g): batch counter %+v != sequential %+v",
					rate, l, snrs[l], got[l].Counter, want.Counter)
			}
			if math.Float64bits(got[l].EVM.RMS) != math.Float64bits(want.EVM.RMS) ||
				got[l].EVM.Symbols != want.EVM.Symbols {
				t.Errorf("%d Mbps lane %d (SNR %g): batch EVM %+v != sequential %+v",
					rate, l, snrs[l], got[l].EVM, want.EVM)
			}
		}
	}
}

// TestRunBenchBatchEarlyStop pins the per-lane TargetErrors accounting: a
// lane that reaches its error target drops out of later batches at exactly
// the packet its sequential run would have stopped, without disturbing the
// remaining lanes.
func TestRunBenchBatchEarlyStop(t *testing.T) {
	base := batchBase()
	base.Packets = 4
	base.TargetErrors = 1
	snrs := []float64{0, 4, 25, 30} // low-SNR lanes stop early, high-SNR lanes run out
	cfgs := batchSweepConfigs(base, 24, snrs)
	got, err := RunBenchBatch(cfgs)
	if err != nil {
		t.Fatal(err)
	}
	for l, cfg := range cfgs {
		bench, err := NewBench(cfg)
		if err != nil {
			t.Fatal(err)
		}
		want, err := bench.Run()
		if err != nil {
			t.Fatal(err)
		}
		if got[l].Counter != want.Counter {
			t.Errorf("lane %d (SNR %g): batch counter %+v != sequential %+v",
				l, snrs[l], got[l].Counter, want.Counter)
		}
	}
}

// TestRunBenchBatchRejectsMixedConfigs pins the gate: lanes differing beyond
// Seed/ChannelSNRdB, or outside the noise-sweep/behavioral shape, are
// rejected rather than silently mis-batched.
func TestRunBenchBatchRejectsMixedConfigs(t *testing.T) {
	base := batchBase()
	good := batchSweepConfigs(base, 24, []float64{10, 14})

	rateMix := batchSweepConfigs(base, 24, []float64{10, 14})
	rateMix[1].RateMbps = 6
	ideal := batchSweepConfigs(base, 24, []float64{10, 14})
	ideal[0].FrontEnd = FrontEndIdeal
	noSNR := batchSweepConfigs(base, 24, []float64{10, 14})
	noSNR[1].ChannelSNRdB = nil
	wrongStage := batchSweepConfigs(base, 24, []float64{10, 14})
	wrongStage[0].SweptStage = StageFrontEnd

	for name, cfgs := range map[string][]Config{
		"single lane": good[:1], "rate mix": rateMix, "ideal front end": ideal,
		"missing SNR": noSNR, "wrong stage": wrongStage,
	} {
		if _, err := RunBenchBatch(cfgs); err == nil {
			t.Errorf("%s: batch accepted", name)
		}
	}
}

// TestGoldenBERBatchingInvariant is the golden fixed-seed regression for the
// batch dispatch: the behavioral waterfall at 6/24/54 Mbit/s must be
// byte-identical with batching off, batching on (full and ragged groups),
// and across worker counts 1 and 8 under the same batch width.
func TestGoldenBERBatchingInvariant(t *testing.T) {
	base := batchBase()
	rates := []int{6, 24, 54}
	snrs := []float64{8, 12, 16, 20}

	run := func(batch, workers int) *measure.Figure {
		t.Helper()
		cfg := base
		cfg.Batch = batch
		cfg.Workers = workers
		fig, err := WaterfallBERvsSNROnFrontEnd(cfg, FrontEndBehavioral, rates, snrs)
		if err != nil {
			t.Fatal(err)
		}
		return fig
	}

	ref := run(0, 1)
	for _, v := range []struct {
		name           string
		batch, workers int
	}{
		{"batch=4 workers=1", 4, 1},
		{"batch=3 workers=1 (ragged tail)", 3, 1},
		{"batch=4 workers=8", 4, 8},
		{"batch=0 workers=8", 0, 8},
	} {
		fig := run(v.batch, v.workers)
		if len(fig.Series) != len(ref.Series) {
			t.Fatalf("%s: %d series, want %d", v.name, len(fig.Series), len(ref.Series))
		}
		for si, series := range fig.Series {
			want := ref.Series[si].Points
			if len(series.Points) != len(want) {
				t.Fatalf("%s series %d: %d points, want %d", v.name, si, len(series.Points), len(want))
			}
			for pi, p := range series.Points {
				// Point is a struct of float64/int fields; == is bit-level
				// equality apart from distinguishing -0 (none are produced).
				if p != want[pi] {
					t.Errorf("%s: rate %d point %d: %+v != reference %+v",
						v.name, rates[si], pi, p, want[pi])
				}
			}
		}
	}
}
