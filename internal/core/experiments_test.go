package core

import (
	"math"
	"testing"
)

// fastFigure5 shrinks the Figure 5 scenario for test runtimes. The payload
// stays at 100 octets so the narrow-filter arm has enough symbols to show
// its band-edge degradation.
func fastFigure5() Config {
	cfg := Figure5Config()
	cfg.Packets = 3
	return cfg
}

func TestFilterBandwidthSweepShape(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep too slow for -short")
	}
	series, err := FilterBandwidthSweep(fastFigure5(), []float64{6e6, 9.5e6, 14e6})
	if err != nil {
		t.Fatal(err)
	}
	if len(series.Points) != 3 {
		t.Fatalf("%d points", len(series.Points))
	}
	// X axis reported in 1e8 Hz units.
	if series.Points[0].X != 0.06 {
		t.Errorf("x unit conversion wrong: %v", series.Points[0].X)
	}
	narrow, _ := series.YAt(0.06)
	good, _ := series.YAt(0.095)
	wide, _ := series.YAt(0.14)
	// The paper's shape: both extremes worse than the design point.
	if !(narrow > good) {
		t.Errorf("narrow filter BER %v not worse than design point %v", narrow, good)
	}
	if !(wide > good) {
		t.Errorf("wide filter BER %v not worse than design point %v", wide, good)
	}
	if wide < 0.3 {
		t.Errorf("wide filter BER %v: adjacent channel should break the link", wide)
	}
}

func TestCompressionPointSweepShape(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep too slow for -short")
	}
	base := Figure6Config()
	base.Packets = 2
	base.PSDULen = 60
	cps := []float64{-30, -5}
	with, err := CompressionPointSweep(base, cps, true)
	if err != nil {
		t.Fatal(err)
	}
	without, err := CompressionPointSweep(base, cps, false)
	if err != nil {
		t.Fatal(err)
	}
	lowCP, _ := with.YAt(-30)
	highCP, _ := with.YAt(-5)
	if !(lowCP > 0.2 && highCP < 0.05) {
		t.Errorf("with adjacent: BER(-30)=%v BER(-5)=%v, want high->low", lowCP, highCP)
	}
	// Without the adjacent channel the link is clean across the sweep.
	for _, p := range without.Points {
		if p.Y > 0.05 {
			t.Errorf("without adjacent: BER %v at CP %v", p.Y, p.X)
		}
	}
}

func TestIP3SweepShape(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep too slow for -short")
	}
	base := Figure6Config()
	base.Packets = 2
	base.PSDULen = 60
	series, err := IP3Sweep(base, []float64{-20, 5}, true)
	if err != nil {
		t.Fatal(err)
	}
	low, _ := series.YAt(-20)
	high, _ := series.YAt(5)
	if !(low > 0.2 && high < 0.05) {
		t.Errorf("IP3 sweep BER(-20)=%v BER(5)=%v", low, high)
	}
}

func TestSpectrumExperimentLevels(t *testing.T) {
	psd, rep, err := SpectrumExperiment(-62, false, 42)
	if err != nil {
		t.Fatal(err)
	}
	if psd == nil || len(psd.FreqHz) == 0 {
		t.Fatal("no PSD")
	}
	if math.Abs(rep.WantedDBm-(-62)) > 1.5 {
		t.Errorf("wanted channel power %v dBm, want ~-62", rep.WantedDBm)
	}
	if d := rep.AdjacentDBm - rep.WantedDBm; math.Abs(d-16) > 1.5 {
		t.Errorf("adjacent offset %v dB, want 16", d)
	}
	// Without the second interferer that channel holds only leakage.
	if rep.SecondAdjacentDBm > rep.WantedDBm {
		t.Errorf("second adjacent %v dBm unexpectedly hot", rep.SecondAdjacentDBm)
	}

	_, rep2, err := SpectrumExperiment(-62, true, 42)
	if err != nil {
		t.Fatal(err)
	}
	if d := rep2.SecondAdjacentDBm - rep2.WantedDBm; math.Abs(d-32) > 1.5 {
		t.Errorf("second adjacent offset %v dB, want 32", d)
	}
}

func TestEVMvsSNRMonotone(t *testing.T) {
	base := DefaultConfig()
	base.Packets = 2
	base.PSDULen = 60
	series, err := EVMvsSNR(base, []float64{10, 20, 30})
	if err != nil {
		t.Fatal(err)
	}
	prev := math.Inf(1)
	for _, p := range series.Points {
		if p.Y >= prev {
			t.Errorf("EVM not decreasing with SNR: %v%% at %v dB", p.Y, p.X)
		}
		prev = p.Y
	}
	// At 20 dB SNR the EVM is noise-dominated plus the channel-estimation
	// penalty: the estimate from the two LTS symbols adds half the noise
	// variance to every equalized carrier, so
	// EVM ~ 10^(-SNR/20) * sqrt(1 + 1/2) = 12.25% at 20 dB.
	if y, ok := series.YAt(20); !ok || math.Abs(y-12.25) > 1.5 {
		t.Errorf("EVM at 20 dB = %v%%, want ~12.25%%", y)
	}
}

func TestTimingComparisonRatio(t *testing.T) {
	if testing.Short() {
		t.Skip("timing run too slow for -short")
	}
	base := DefaultConfig()
	base.PSDULen = 60
	rows, err := TimingComparison(base, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.CoSimSeconds <= r.FastSeconds {
			t.Errorf("co-simulation (%vs) not slower than system level (%vs)", r.CoSimSeconds, r.FastSeconds)
		}
		if r.Ratio() < 3 {
			t.Errorf("co-sim ratio %v implausibly low", r.Ratio())
		}
	}
	if _, err := TimingComparison(base, []int{0}); err == nil {
		t.Error("accepted zero packet count")
	}
}

func TestTimingRowRatioZeroDivision(t *testing.T) {
	r := TimingRow{Packets: 1, FastSeconds: 0, CoSimSeconds: 1}
	if r.Ratio() != 0 {
		t.Error("zero fast time should give ratio 0")
	}
}

func TestNoiseArtifactExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("artifact run too slow for -short")
	}
	base := DefaultConfig()
	base.Packets = 3
	base.PSDULen = 60
	base.WantedPowerDBm = -95 // below sensitivity
	res, err := NoiseArtifactExperiment(base)
	if err != nil {
		t.Fatal(err)
	}
	// The artifact: without noise functions the co-simulation reports a
	// (misleadingly) better BER than the noise-accurate behavioral run.
	if !(res.CoSimNoNoiseBER < res.BehavioralBER) {
		t.Errorf("artifact absent: cosim-no-noise %v vs behavioral %v",
			res.CoSimNoNoiseBER, res.BehavioralBER)
	}
	// With the workaround the co-simulation degrades again.
	if !(res.CoSimWithNoiseBER > res.CoSimNoNoiseBER) {
		t.Errorf("noise workaround had no effect: %v vs %v",
			res.CoSimWithNoiseBER, res.CoSimNoNoiseBER)
	}
}
