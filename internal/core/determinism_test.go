package core

import (
	"reflect"
	"testing"

	"wlansim/internal/measure"
)

// This file is the parallel-sweep gate (it supersedes and extends the PR 1
// TestSweepRaceSmoke): every core sweep must produce a byte-identical
// measure.Series whether its points run serially or fanned out across
// goroutines. Under `go test -race` any shared RNG or mutable block state
// between concurrently running benches additionally trips the race
// detector. Determinism holds by construction — each point derives its
// seed from (base.Seed, value) and each packet from (point seed, index) via
// internal/seed — and this test is the executable proof.

// deepEqualSeries fails the test when two series differ anywhere, including
// the confidence-interval and sample-count annotations.
func deepEqualSeries(t *testing.T, name string, serial, parallel *measure.Series) {
	t.Helper()
	if !reflect.DeepEqual(serial, parallel) {
		t.Errorf("%s: parallel series differs from serial:\nserial:   %+v\nparallel: %+v",
			name, serial, parallel)
	}
}

func TestFilterBandwidthSweepDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep too slow for -short")
	}
	base := Figure5Config()
	base.Packets = 1
	base.PSDULen = 40
	edges := []float64{6e6, 9.5e6, 14e6}

	base.Workers = 1
	serial, err := FilterBandwidthSweep(base, edges)
	if err != nil {
		t.Fatal(err)
	}
	base.Workers = 8
	parallel, err := FilterBandwidthSweep(base, edges)
	if err != nil {
		t.Fatal(err)
	}
	deepEqualSeries(t, "FilterBandwidthSweep", serial, parallel)
}

func TestCompressionPointSweepDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep too slow for -short")
	}
	base := Figure6Config()
	base.Packets = 1
	base.PSDULen = 40
	cps := []float64{-30, -18, -5}

	for _, withAdjacent := range []bool{true, false} {
		base.Workers = 1
		serial, err := CompressionPointSweep(base, cps, withAdjacent)
		if err != nil {
			t.Fatal(err)
		}
		base.Workers = 8
		parallel, err := CompressionPointSweep(base, cps, withAdjacent)
		if err != nil {
			t.Fatal(err)
		}
		deepEqualSeries(t, serial.Label, serial, parallel)
	}
}

func TestIP3SweepDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep too slow for -short")
	}
	base := Figure6Config()
	base.Packets = 1
	base.PSDULen = 40

	base.Workers = 1
	serial, err := IP3Sweep(base, []float64{-20, -8, 5}, true)
	if err != nil {
		t.Fatal(err)
	}
	base.Workers = 8
	parallel, err := IP3Sweep(base, []float64{-20, -8, 5}, true)
	if err != nil {
		t.Fatal(err)
	}
	deepEqualSeries(t, "IP3Sweep", serial, parallel)
}

func TestEVMvsSNRDeterministic(t *testing.T) {
	base := DefaultConfig()
	base.Packets = 2
	base.PSDULen = 40

	base.Workers = 1
	serial, err := EVMvsSNR(base, []float64{10, 18, 26, 34})
	if err != nil {
		t.Fatal(err)
	}
	base.Workers = 8
	parallel, err := EVMvsSNR(base, []float64{10, 18, 26, 34})
	if err != nil {
		t.Fatal(err)
	}
	deepEqualSeries(t, "EVMvsSNR", serial, parallel)
}

func TestWaterfallDeterministic(t *testing.T) {
	base := DefaultConfig()
	base.Packets = 1
	base.PSDULen = 40

	base.Workers = 1
	serial, err := WaterfallBERvsSNR(base, []int{6, 54}, []float64{5, 30})
	if err != nil {
		t.Fatal(err)
	}
	base.Workers = 8
	parallel, err := WaterfallBERvsSNR(base, []int{6, 54}, []float64{5, 30})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Errorf("waterfall figure differs between Workers=1 and Workers=8")
	}
}

// TestBenchSeedIndependentOfPacketCount pins the per-packet derivation
// property that future intra-point parallelism depends on: packet p is the
// same random realization no matter how many packets the run simulates, so
// a 2-packet run is a strict prefix of a 4-packet run.
func TestBenchSeedIndependentOfPacketCount(t *testing.T) {
	run := func(packets int) *Result {
		cfg := DefaultConfig()
		cfg.FrontEnd = FrontEndIdeal
		cfg.Packets = packets
		cfg.PSDULen = 40
		snr := 4.0
		cfg.RateMbps = 54
		cfg.ChannelSNRdB = &snr
		bench, err := NewBench(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := bench.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	two, four := run(2), run(4)
	if four.Counter.Bits <= two.Counter.Bits {
		t.Fatalf("bit counts %d vs %d", two.Counter.Bits, four.Counter.Bits)
	}
	// The 4-packet run replays packets 0 and 1 bit-exactly, so its error
	// count over the shared prefix cannot be smaller than the 2-packet
	// run's total (errors only accumulate).
	if four.Counter.Errors < two.Counter.Errors {
		t.Errorf("4-packet run has fewer errors (%d) than its 2-packet prefix (%d): per-packet seeding broken",
			four.Counter.Errors, two.Counter.Errors)
	}
}

// TestTargetErrorsEarlyStop verifies the per-point early-stop contract: the
// run ends once the error budget is met, simulates no further packets, and
// the recorded confidence interval reflects the bits actually compared.
func TestTargetErrorsEarlyStop(t *testing.T) {
	cfg := DefaultConfig()
	cfg.FrontEnd = FrontEndIdeal
	cfg.Packets = 50
	cfg.PSDULen = 40
	cfg.RateMbps = 54
	snr := 2.0 // far below the 54 Mbps threshold: every packet is errorful
	cfg.ChannelSNRdB = &snr
	cfg.TargetErrors = 10
	bench, err := NewBench(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := bench.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Counter.Errors < cfg.TargetErrors {
		t.Fatalf("stopped with %d errors, target %d", res.Counter.Errors, cfg.TargetErrors)
	}
	if res.Counter.Packets >= cfg.Packets {
		t.Errorf("ran all %d packets despite reaching the target after the first", res.Counter.Packets)
	}
	lo, hi := res.Counter.ConfidenceInterval95()
	if !(lo < res.BER() && res.BER() < hi) {
		t.Errorf("confidence interval [%g, %g] does not bracket BER %g", lo, hi, res.BER())
	}
	pt := res.Counter.Point()
	if pt.Bits != res.Counter.Bits || pt.Errors != res.Counter.Errors {
		t.Errorf("point annotation %+v does not match counter %+v", pt, res.Counter)
	}
}
