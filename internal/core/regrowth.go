package core

import (
	"fmt"
	"math/rand"

	"wlansim/internal/bits"
	"wlansim/internal/dsp"
	"wlansim/internal/phy"
	"wlansim/internal/rf"
	"wlansim/internal/units"
)

// Transmit-side spectral regrowth: how much PA backoff the OFDM waveform
// needs before the clause-17 transmit mask is met. This is the TX-side
// counterpart of the paper's receiver nonlinearity studies — the same cubic
// PA model, the same mask instrument.

// RegrowthPoint is one backoff setting of the sweep.
type RegrowthPoint struct {
	// BackoffDB is the PA input backoff from its 1 dB compression point
	// (output-power head-room; larger is more linear).
	BackoffDB float64
	// MaskViolations counts mask bins exceeded after the PA.
	MaskViolations int
	// WorstExcessDB is the largest mask overshoot (0 when compliant).
	WorstExcessDB float64
	// PAPRdB is the waveform's peak-to-average ratio at the PA input.
	PAPRdB float64
}

// SpectralRegrowthSweep drives an oversampled 802.11a burst through a cubic
// PA at decreasing backoff and checks the clause-17 mask at each point. It
// returns the sweep (ascending backoff) — the crossover where violations
// reach zero is the required PA headroom.
func SpectralRegrowthSweep(rateMbps int, backoffsDB []float64, seed int64) ([]RegrowthPoint, error) {
	if len(backoffsDB) == 0 {
		return nil, fmt.Errorf("core: no backoff points")
	}
	tx, err := phy.NewTransmitter(rateMbps)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	frame, err := tx.Transmit(bits.RandomBytes(rng, 500))
	if err != nil {
		return nil, err
	}
	up, err := dsp.NewUpsampler(4, 255)
	if err != nil {
		return nil, err
	}
	base := up.Process(frame.Samples)
	const fs = 80e6
	const paCP = 0.0 // PA input 1 dB compression point, dBm (arbitrary ref)
	mask := phy.TransmitMask()

	out := make([]RegrowthPoint, 0, len(backoffsDB))
	for _, bo := range backoffsDB {
		x := dsp.Clone(base)
		units.SetPowerDBm(x, paCP-bo)
		pt := RegrowthPoint{BackoffDB: bo, PAPRdB: units.PAPRdB(x)}
		pa, err := rf.NewAmplifier(rf.AmplifierConfig{
			Name: "PA", GainDB: 20, Model: rf.Rapp,
			UseCompression: true, CompressionDBm: paCP,
		})
		if err != nil {
			return nil, err
		}
		pa.Process(x)
		viol, err := mask.CheckMask(x, fs)
		if err != nil {
			return nil, err
		}
		pt.MaskViolations = len(viol)
		for _, v := range viol {
			if e := v.ExcessDB(); e > pt.WorstExcessDB {
				pt.WorstExcessDB = e
			}
		}
		out = append(out, pt)
	}
	return out, nil
}

// RequiredBackoffDB returns the smallest backoff in the sweep that meets the
// mask, or an error when none does.
func RequiredBackoffDB(points []RegrowthPoint) (float64, error) {
	best := 0.0
	found := false
	for _, p := range points {
		if p.MaskViolations == 0 && (!found || p.BackoffDB < best) {
			best = p.BackoffDB
			found = true
		}
	}
	if !found {
		return 0, fmt.Errorf("core: no swept backoff meets the mask")
	}
	return best, nil
}
