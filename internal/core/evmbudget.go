package core

import (
	"fmt"
	"strings"

	"wlansim/internal/rf"
)

// EVMBudgetRow is one line of the impairment budget: the link EVM with only
// one analog impairment active.
type EVMBudgetRow struct {
	// Impairment names the active effect.
	Impairment string
	// EVMPercent is the measured rms EVM.
	EVMPercent float64
	// BER is the measured bit error rate (usually 0 for single impairments
	// at nominal power).
	BER float64
}

// EVMBudget measures the receiver's error-vector budget by running the
// scenario repeatedly with exactly one impairment enabled at a time, plus
// the all-on reference — the standard way an RF systems engineer validates
// where the EVM of Figure-5/6-style scenarios comes from.
func EVMBudget(base Config) ([]EVMBudgetRow, error) {
	// Start from a clean slate: every switchable impairment off.
	clean := func(rc *rf.ReceiverConfig) {
		rc.DisableNoise = true
		rc.LNA.Model = rf.Linear
		rc.Mixer1.LO = nil
		rc.Mixer2.LO = nil
		rc.Mixer2.IQGainImbalanceDB = 0
		rc.Mixer2.IQPhaseErrorDeg = 0
		rc.Mixer2.EnableDC = false
		rc.ADC.Bits = 0
	}
	defaults := rf.DefaultReceiverConfig(1)

	cases := []struct {
		name  string
		apply func(rc *rf.ReceiverConfig)
	}{
		{"none (residual)", func(rc *rf.ReceiverConfig) {}},
		{"thermal noise", func(rc *rf.ReceiverConfig) {
			rc.DisableNoise = false
		}},
		{"LNA compression", func(rc *rf.ReceiverConfig) {
			rc.LNA.Model = defaults.LNA.Model
			rc.LNA.UseCompression = defaults.LNA.UseCompression
			rc.LNA.CompressionDBm = defaults.LNA.CompressionDBm
		}},
		{"LO phase noise", func(rc *rf.ReceiverConfig) {
			rc.Mixer1.LO = defaults.Mixer1.LO
			rc.Mixer2.LO = defaults.Mixer2.LO
		}},
		{"I/Q imbalance", func(rc *rf.ReceiverConfig) {
			rc.Mixer2.IQGainImbalanceDB = defaults.Mixer2.IQGainImbalanceDB
			rc.Mixer2.IQPhaseErrorDeg = defaults.Mixer2.IQPhaseErrorDeg
		}},
		{"DC offset", func(rc *rf.ReceiverConfig) {
			rc.Mixer2.EnableDC = true
			rc.Mixer2.DCOffsetDBm = defaults.Mixer2.DCOffsetDBm
		}},
		{"ADC quantization", func(rc *rf.ReceiverConfig) {
			rc.ADC.Bits = defaults.ADC.Bits
		}},
		{"all impairments", func(rc *rf.ReceiverConfig) {
			rc.DisableNoise = false
			rc.LNA.Model = defaults.LNA.Model
			rc.LNA.UseCompression = defaults.LNA.UseCompression
			rc.LNA.CompressionDBm = defaults.LNA.CompressionDBm
			rc.Mixer1.LO = defaults.Mixer1.LO
			rc.Mixer2.LO = defaults.Mixer2.LO
			rc.Mixer2.IQGainImbalanceDB = defaults.Mixer2.IQGainImbalanceDB
			rc.Mixer2.IQPhaseErrorDeg = defaults.Mixer2.IQPhaseErrorDeg
			rc.Mixer2.EnableDC = true
			rc.ADC.Bits = defaults.ADC.Bits
		}},
	}

	rows := make([]EVMBudgetRow, 0, len(cases))
	for _, c := range cases {
		cfg := base
		cfg.FrontEnd = FrontEndBehavioral
		prev := base.TuneRF
		apply := c.apply
		cfg.TuneRF = func(rc *rf.ReceiverConfig) {
			clean(rc)
			apply(rc)
			if prev != nil {
				prev(rc)
			}
		}
		bench, err := NewBench(cfg)
		if err != nil {
			return nil, err
		}
		res, err := bench.Run()
		if err != nil {
			return nil, fmt.Errorf("core: EVM budget %q: %w", c.name, err)
		}
		rows = append(rows, EVMBudgetRow{
			Impairment: c.name,
			EVMPercent: res.EVM.Percent(),
			BER:        res.BER(),
		})
	}
	return rows, nil
}

// FormatEVMBudget renders the budget as an aligned table.
func FormatEVMBudget(rows []EVMBudgetRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-20s %-10s %s\n", "impairment", "EVM [%]", "BER")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-20s %-10.2f %.3g\n", r.Impairment, r.EVMPercent, r.BER)
	}
	return b.String()
}
