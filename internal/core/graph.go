package core

import (
	"fmt"
	"math"
	"math/rand"

	"wlansim/internal/bits"
	"wlansim/internal/channel"
	"wlansim/internal/dsp"
	"wlansim/internal/measure"
	"wlansim/internal/phy"
	"wlansim/internal/rxdsp"
	"wlansim/internal/sim"
	"wlansim/internal/units"
)

// This file realizes the paper's Figure 3 as an explicit block diagram: the
// wanted transmitter, the duplicated frequency-shifted interferer
// transmitters, the channel summation and the double-conversion RF receiver
// are wired as sim.Graph blocks and executed by the frame scheduler — the
// SPW-style top-level schematic, as opposed to Bench.Run's direct calls.

// SystemGraph is a runnable block-diagram realization of a scenario.
type SystemGraph struct {
	// Graph is the wired diagram (inspect BlockNames for the schedule).
	Graph *sim.Graph
	// AntennaProbe records the composite antenna signal.
	AntennaProbe *sim.Probe
	// BasebandProbe records the 20 MHz front-end output.
	BasebandProbe *sim.Probe

	frameLen int
	frames   []*phy.Frame
	baseband *[]complex128
	cfg      Config
}

// BuildSystemGraph wires the scenario as a block diagram. Multipath and
// ideal-timing options are not supported in graph form (use Bench.Run).
func (b *Bench) BuildSystemGraph() (*SystemGraph, error) {
	cfg := b.cfg
	if cfg.UseIdealRxTiming {
		return nil, fmt.Errorf("core: graph execution needs the synchronizing receiver")
	}
	if cfg.MultipathTaps > 0 {
		return nil, fmt.Errorf("core: multipath not supported in graph form")
	}
	os := b.oversample()
	fe, err := b.buildFrontEnd(os)
	if err != nil {
		return nil, err
	}
	mode, err := phy.ModeByRate(cfg.RateMbps)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	tx := &phy.Transmitter{Mode: mode}

	g := sim.NewGraph()
	sys := &SystemGraph{Graph: g, frameLen: 200, cfg: cfg}

	// Wanted transmitter: all packets back to back with lead-in/tail gaps.
	var wanted []complex128
	wanted = append(wanted, make([]complex128, leadInSamples)...)
	for p := 0; p < cfg.Packets; p++ {
		tx.ScramblerSeed = byte(1 + rng.Intn(127))
		frame, err := tx.Transmit(bits.RandomBytes(rng, cfg.PSDULen))
		if err != nil {
			return nil, err
		}
		sys.frames = append(sys.frames, frame)
		wanted = append(wanted, frame.Samples...)
		wanted = append(wanted, make([]complex128, leadInSamples)...)
	}
	total := len(wanted) + tailSamples
	wantedGain := math.Sqrt(units.DBmToWatts(cfg.WantedPowerDBm))
	// Frame power of the PPDU is ~1 by construction; derive the exact gain
	// from the first frame for accuracy.
	if len(sys.frames) > 0 {
		p := units.MeanPower(sys.frames[0].Samples)
		if p > 0 {
			wantedGain = math.Sqrt(units.DBmToWatts(cfg.WantedPowerDBm) / p)
		}
	}

	if err := g.AddSource("tx-wanted", sim.SliceSource(wanted, total)); err != nil {
		return nil, err
	}
	if err := g.AddBlock("scale-wanted", 1, 1, sim.GainBlock(complex(wantedGain, 0))); err != nil {
		return nil, err
	}
	up, err := dsp.NewUpsampler(os, 0)
	if err != nil {
		return nil, err
	}
	if err := g.AddBlock("up-wanted", 1, 1, sim.UpsamplerBlock(up)); err != nil {
		return nil, err
	}
	if err := g.Connect("tx-wanted", 0, "scale-wanted", 0); err != nil {
		return nil, err
	}
	if err := g.Connect("scale-wanted", 0, "up-wanted", 0); err != nil {
		return nil, err
	}

	fsComposite := 20e6 * float64(os)
	nIn := 1 + len(cfg.Interferers)
	if err := g.AddBlock("air-sum", nIn, 1, sim.AdderBlock(nIn)); err != nil {
		return nil, err
	}
	if err := g.Connect("up-wanted", 0, "air-sum", 0); err != nil {
		return nil, err
	}

	for k, spec := range cfg.Interferers {
		wave, err := interfererWaveform(spec.RateMbps, total, rng)
		if err != nil {
			return nil, err
		}
		p := units.MeanPower(wave)
		gI := math.Sqrt(units.DBmToWatts(spec.PowerDBm) / p)
		name := fmt.Sprintf("tx-adjacent-%d", k)
		if err := g.AddSource(name, sim.SliceSource(wave, total)); err != nil {
			return nil, err
		}
		if err := g.AddBlock("scale-"+name, 1, 1, sim.GainBlock(complex(gI, 0))); err != nil {
			return nil, err
		}
		upI, err := dsp.NewUpsampler(os, 0)
		if err != nil {
			return nil, err
		}
		if err := g.AddBlock("up-"+name, 1, 1, sim.UpsamplerBlock(upI)); err != nil {
			return nil, err
		}
		if err := g.AddBlock("shift-"+name, 1, 1, sim.FrequencyShiftBlock(spec.OffsetHz/fsComposite)); err != nil {
			return nil, err
		}
		for _, c := range [][2]string{
			{name, "scale-" + name}, {"scale-" + name, "up-" + name},
			{"up-" + name, "shift-" + name},
		} {
			if err := g.Connect(c[0], 0, c[1], 0); err != nil {
				return nil, err
			}
		}
		if err := g.Connect("shift-"+name, 0, "air-sum", k+1); err != nil {
			return nil, err
		}
	}

	// Optional channel noise on the composite.
	antennaOut := "air-sum"
	if cfg.ChannelSNRdB != nil {
		noiseW := units.DBmToWatts(cfg.WantedPowerDBm) / units.DBToLinear(*cfg.ChannelSNRdB) * float64(os)
		if err := g.AddBlock("awgn", 1, 1, sim.AWGNBlock(channel.NewAWGN(noiseW, rng.Int63()))); err != nil {
			return nil, err
		}
		if err := g.Connect("air-sum", 0, "awgn", 0); err != nil {
			return nil, err
		}
		antennaOut = "awgn"
	}

	if err := g.AddBlock("rf-frontend", 1, 1, sim.ProcessorBlock(fe)); err != nil {
		return nil, err
	}
	if err := g.Connect(antennaOut, 0, "rf-frontend", 0); err != nil {
		return nil, err
	}

	var baseband []complex128
	sys.baseband = &baseband
	if err := g.AddSink("adc-capture", func(f []complex128) error {
		baseband = append(baseband, f...)
		return nil
	}); err != nil {
		return nil, err
	}
	if err := g.Connect("rf-frontend", 0, "adc-capture", 0); err != nil {
		return nil, err
	}

	if sys.AntennaProbe, err = g.AddProbe("antenna", antennaOut, 0); err != nil {
		return nil, err
	}
	sys.AntennaProbe.Enabled = false // deselected by default (§5.1)
	if sys.BasebandProbe, err = g.AddProbe("baseband", "rf-frontend", 0); err != nil {
		return nil, err
	}
	sys.BasebandProbe.Enabled = false
	return sys, nil
}

// Run schedules the diagram to completion and decodes the captured
// baseband, returning the same statistics as Bench.Run.
func (s *SystemGraph) Run() (*Result, error) {
	if _, err := s.Graph.Run(s.frameLen, 0); err != nil {
		return nil, err
	}
	res := &Result{FrontEnd: s.cfg.FrontEnd}
	rx := rxdsp.NewReceiver()
	rx.HardDecisions = s.cfg.HardDecisions
	rx.DisableCSI = s.cfg.DisableCSI
	from := 0
	for _, frame := range s.frames {
		refBits := bits.FromBytes(frame.PSDU)
		pkt, err := rx.Receive(*s.baseband, from)
		if err != nil {
			res.Counter.AddLostPacket(len(refBits))
			continue
		}
		from = pkt.EndIndex
		res.Counter.AddPacket(refBits, bits.FromBytes(pkt.PSDU))
		if ev, err := measure.EVM(pkt.EqualizedCarriers, frame.Mode.Modulation); err == nil && ev.RMS > res.EVM.RMS {
			res.EVM = ev
		}
	}
	return res, nil
}
