package core

import (
	"fmt"
	"testing"
)

// BenchmarkCompressionPointSweepWorkers measures the wall-clock scaling of
// the parallel sweep executor on the Figure 6 compression-point sweep. The
// acceptance bar for the parallel-sweep work is >= 2x at 4 workers:
//
//	go test -bench BenchmarkCompressionPointSweepWorkers -benchtime 2x ./internal/core
//
// The series is identical across sub-benchmarks (asserted by the
// determinism tests), so the sub-benchmark times are directly comparable.
// Points here are pure CPU work, so the scaling only materializes with at
// least that many cores (GOMAXPROCS >= workers); on constrained machines use
// BenchmarkSweepWorkersLatencyBound (internal/sim), which isolates the
// executor's point overlap from the core count.
func BenchmarkCompressionPointSweepWorkers(b *testing.B) {
	cps := []float64{-30, -25, -20, -15, -10, -5, -2, 0}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			base := Figure6Config()
			base.Packets = 2
			base.PSDULen = 60
			base.Workers = workers
			for i := 0; i < b.N; i++ {
				if _, err := CompressionPointSweep(base, cps, true); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
