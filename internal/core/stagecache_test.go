package core

import (
	"reflect"
	"testing"

	"wlansim/internal/measure"
	"wlansim/internal/sim"
)

// This file is the executable contract of the invariant-prefix stage cache:
// caching is a pure wall-clock optimization, never a physics change. Every
// test compares full result structures (error counters, EVM accumulations,
// confidence annotations) with reflect.DeepEqual — byte-identity, not
// tolerance-level agreement.

// runGoldenWithCache runs one golden scenario as an SNR-sweep point would,
// with the given cache attachment.
func runGoldenWithCache(t *testing.T, rate int, snr float64, cache *sim.StageCache) *Result {
	t.Helper()
	cfg := goldenConfig(rate, snr)
	cfg.SweptStage = StageNoise
	cfg.ContentSeed = cfg.Seed
	cfg.Cache = cache
	bench, err := NewBench(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := bench.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestGoldenBERCacheOnOffIdentical pins the cache's central invariant on the
// golden regression table: every golden point measures byte-identically with
// the stage cache disabled, on a cache miss, and on a cache hit.
func TestGoldenBERCacheOnOffIdentical(t *testing.T) {
	for _, row := range goldenBER {
		uncached := runGoldenWithCache(t, row.RateMbps, row.SNRdB, nil)
		cache := sim.NewStageCache(0)
		miss := runGoldenWithCache(t, row.RateMbps, row.SNRdB, cache)
		hit := runGoldenWithCache(t, row.RateMbps, row.SNRdB, cache)
		if cache.Stats().Hits == 0 {
			t.Fatalf("%d Mbps at %g dB: second cached run produced no hits", row.RateMbps, row.SNRdB)
		}
		if !reflect.DeepEqual(uncached, miss) {
			t.Errorf("%d Mbps at %g dB: cache-miss result differs from uncached:\nuncached: %+v\ncached:   %+v",
				row.RateMbps, row.SNRdB, uncached, miss)
		}
		if !reflect.DeepEqual(uncached, hit) {
			t.Errorf("%d Mbps at %g dB: cache-hit result differs from uncached:\nuncached: %+v\ncached:   %+v",
				row.RateMbps, row.SNRdB, uncached, hit)
		}
	}
}

// stripCacheStats zeroes the cache counters so cache-on and cache-off series
// can be compared for the physics content alone (the counters legitimately
// differ: that is what the toggle changes).
func stripCacheStats(fig *measure.Figure) {
	for i := range fig.Series {
		fig.Series[i].Cache = measure.CacheStats{}
	}
}

// TestSweepsCacheOnOffIdentical toggles DisableStageCache on representative
// sweeps of each swept stage — front-end filter (pre-filter prefix), LNA
// nonlinearity (antenna prefix) and SNR (post-front-end baseband prefix) —
// and requires byte-identical measurement series.
func TestSweepsCacheOnOffIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("sweeps too slow for -short")
	}
	type variant struct {
		name string
		run  func(base Config) (*measure.Series, error)
		base func() Config
	}
	variants := []variant{
		{
			name: "FilterBandwidthSweep",
			base: Figure5Config,
			run: func(base Config) (*measure.Series, error) {
				return FilterBandwidthSweep(base, []float64{6e6, 9.5e6, 14e6})
			},
		},
		{
			name: "IP3Sweep",
			base: Figure6Config,
			run: func(base Config) (*measure.Series, error) {
				return IP3Sweep(base, []float64{-20, -8, 5}, true)
			},
		},
		{
			name: "EVMvsSNR",
			base: DefaultConfig,
			run: func(base Config) (*measure.Series, error) {
				return EVMvsSNR(base, []float64{10, 18, 26})
			},
		},
	}
	for _, v := range variants {
		base := v.base()
		base.Packets = 1
		base.PSDULen = 40
		base.Workers = 2

		base.DisableStageCache = false
		cached, err := v.run(base)
		if err != nil {
			t.Fatal(err)
		}
		base.DisableStageCache = true
		uncached, err := v.run(base)
		if err != nil {
			t.Fatal(err)
		}
		if !cached.Cache.Enabled {
			t.Errorf("%s: cached run reports no cache stats", v.name)
		}
		if uncached.Cache.Enabled {
			t.Errorf("%s: DisableStageCache run still reports cache stats", v.name)
		}
		cached.Cache = measure.CacheStats{}
		uncached.Cache = measure.CacheStats{}
		if !reflect.DeepEqual(cached, uncached) {
			t.Errorf("%s: cache-on series differs from cache-off:\non:  %+v\noff: %+v",
				v.name, cached, uncached)
		}
	}
}

// TestWaterfallCacheOnOffIdentical covers the multi-curve figure harness
// (per-rate caches) the same way.
func TestWaterfallCacheOnOffIdentical(t *testing.T) {
	base := DefaultConfig()
	base.Packets = 1
	base.PSDULen = 40
	base.Workers = 2
	rates := []int{6, 54}
	snrs := []float64{5, 30}

	base.DisableStageCache = false
	cached, err := WaterfallBERvsSNR(base, rates, snrs)
	if err != nil {
		t.Fatal(err)
	}
	base.DisableStageCache = true
	uncached, err := WaterfallBERvsSNR(base, rates, snrs)
	if err != nil {
		t.Fatal(err)
	}
	stripCacheStats(cached)
	stripCacheStats(uncached)
	if !reflect.DeepEqual(cached, uncached) {
		t.Errorf("waterfall figure differs between cache on and off")
	}
}

// TestFilterSweepCacheHitRate pins the cache efficiency of the flagship
// RF-parameter sweep at its theoretical maximum: with P packets and E edges,
// each packet's pre-filter prefix is computed exactly once (P misses) and
// served to every other point (P*(E-1) hits), with no evictions under the
// default budget.
func TestFilterSweepCacheHitRate(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep too slow for -short")
	}
	base := Figure5Config()
	base.Packets = 2
	base.PSDULen = 40
	base.Workers = 2
	edges := []float64{6e6, 8e6, 10e6, 14e6}
	series, err := FilterBandwidthSweep(base, edges)
	if err != nil {
		t.Fatal(err)
	}
	st := series.Cache
	if !st.Enabled {
		t.Fatal("sweep did not attach a stage cache")
	}
	wantMisses := int64(base.Packets)
	wantHits := int64(base.Packets * (len(edges) - 1))
	if st.Misses != wantMisses || st.Hits != wantHits {
		t.Errorf("cache stats %d hits / %d misses, want %d / %d (hit-rate regression: the swept-stage declaration or key derivation changed)",
			st.Hits, st.Misses, wantHits, wantMisses)
	}
	if st.Evictions != 0 {
		t.Errorf("unexpected evictions (%d) under the default budget", st.Evictions)
	}
	if st.PeakBytes <= 0 || st.BytesInUse <= 0 {
		t.Errorf("byte accounting missing: peak %d, in use %d", st.PeakBytes, st.BytesInUse)
	}
}

// TestSNRSweepNoiseNotReused is the negative control for the SNR fast path:
// the cached noiseless baseband is shared across points, but the noise itself
// must be re-drawn from each point's own seed. Two points at the same SNR
// with different point seeds share every cached stage, so if the noise were
// (incorrectly) part of the cached content — or drawn from the shared content
// seed — their continuous-valued EVM measurements would coincide exactly.
func TestSNRSweepNoiseNotReused(t *testing.T) {
	cache := sim.NewStageCache(0)
	run := func(pointSeed int64) *Result {
		cfg := DefaultConfig()
		cfg.FrontEnd = FrontEndIdeal
		cfg.Packets = 2
		cfg.PSDULen = 40
		cfg.Seed = pointSeed
		cfg.ContentSeed = 12345
		cfg.SweptStage = StageNoise
		cfg.Cache = cache
		snr := 15.0
		cfg.ChannelSNRdB = &snr
		bench, err := NewBench(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := bench.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a := run(111)
	b := run(222)
	if cache.Stats().Hits == 0 {
		t.Fatal("points did not share the cached baseband — the test no longer exercises the fast path")
	}
	if a.EVM.RMS == b.EVM.RMS {
		t.Errorf("EVM identical (%.12g) across points with different seeds: noise realization is being reused",
			a.EVM.RMS)
	}
	if a.EVM.RMS <= 0 || b.EVM.RMS <= 0 {
		t.Errorf("EVM not measured (a=%g, b=%g): noise test has no discriminating power", a.EVM.RMS, b.EVM.RMS)
	}
}

// TestPreFilterPrefixEquivalence pins the newest and most aggressive prefix —
// the behavioral front-end segment upstream of the channel-select filter —
// against the unsplit chain: with SweptFrontEndFilterOnly the cached run must
// reproduce the flag-off run byte-identically, on both the miss and the hit
// path.
func TestPreFilterPrefixEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("behavioral front end too slow for -short")
	}
	run := func(filterOnly bool, cache *sim.StageCache) *Result {
		cfg := Figure5Config()
		cfg.Packets = 1
		cfg.PSDULen = 40
		cfg.Seed = 42
		cfg.ContentSeed = 7
		cfg.SweptStage = StageFrontEnd
		cfg.SweptFrontEndFilterOnly = filterOnly
		cfg.Cache = cache
		bench, err := NewBench(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := bench.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	plain := run(false, nil)
	cache := sim.NewStageCache(0)
	miss := run(true, cache)
	hit := run(true, cache)
	if cache.Stats().Hits == 0 {
		t.Fatal("second run did not hit the pre-filter cache")
	}
	if !reflect.DeepEqual(plain, miss) {
		t.Errorf("pre-filter split (miss) differs from unsplit chain:\nunsplit: %+v\nsplit:   %+v", plain, miss)
	}
	if !reflect.DeepEqual(plain, hit) {
		t.Errorf("pre-filter replay (hit) differs from unsplit chain:\nunsplit: %+v\nreplay:  %+v", plain, hit)
	}
}

// TestStageParamsCoverConfig pins the stage dependency tags against the
// Config struct: every field must be claimed by exactly one stage, so a new
// configuration knob cannot silently join a cached prefix without an explicit
// decision about which stage it first affects.
func TestStageParamsCoverConfig(t *testing.T) {
	claimed := map[string]Stage{}
	for stage, fields := range StageParams {
		for _, f := range fields {
			if prev, dup := claimed[f]; dup {
				t.Errorf("field %q tagged at both %v and %v", f, prev, stage)
			}
			claimed[f] = stage
		}
	}
	cfgType := reflect.TypeOf(Config{})
	for i := 0; i < cfgType.NumField(); i++ {
		name := cfgType.Field(i).Name
		if _, ok := claimed[name]; !ok {
			t.Errorf("Config.%s is not tagged in StageParams: declare which stage it first affects", name)
		}
		delete(claimed, name)
	}
	for f := range claimed {
		t.Errorf("StageParams tags %q, which is not a Config field", f)
	}
}
