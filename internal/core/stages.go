package core

import (
	"math"

	"wlansim/internal/seed"
	"wlansim/internal/sim"
)

// Stage enumerates the packet pipeline's composable stages in execution
// order. A sweep declares the first stage its swept parameter affects
// (Config.SweptStage); every stage strictly before it is invariant across
// the sweep's points, derives its randomness from Config.ContentSeed instead
// of the per-point Config.Seed, and is therefore shareable through the
// invariant-prefix stage cache.
type Stage int

// The pipeline stages and the configuration parameters each depends on (the
// dependency tags; see StageParams).
const (
	// StageTX synthesizes the wanted PPDU waveform.
	StageTX Stage = iota
	// StageChannel composes the antenna signal: interferer synthesis,
	// oversampled channel composition, multipath, sample-clock and carrier
	// frequency offsets.
	StageChannel
	// StageNoise draws the antenna AWGN requested by ChannelSNRdB.
	StageNoise
	// StageFrontEnd runs the analog front-end model.
	StageFrontEnd
	// StageRxDSP synchronizes, equalizes, decodes and counts.
	StageRxDSP
)

// String names the stage.
func (s Stage) String() string {
	switch s {
	case StageTX:
		return "tx"
	case StageChannel:
		return "channel"
	case StageNoise:
		return "noise"
	case StageFrontEnd:
		return "frontend"
	case StageRxDSP:
		return "rxdsp"
	default:
		return "?"
	}
}

// StageParams declares which Config parameters each stage depends on — the
// dependency tags behind SweptStage. A sweep over a parameter tagged at
// stage k sets SweptStage=k and may then share stages < k across its points.
// TestStageParamsCoverConfig pins this table against the Config struct so a
// new field cannot silently join the cached prefix.
var StageParams = map[Stage][]string{
	StageTX:       {"RateMbps", "PSDULen", "Seed", "ContentSeed"},
	StageChannel:  {"WantedPowerDBm", "CFOHz", "MultipathTaps", "MultipathRMSSamples", "DopplerHz", "SampleClockPPM", "Interferers"},
	StageNoise:    {"ChannelSNRdB"},
	StageFrontEnd: {"FrontEnd", "TuneRF", "TuneCoSim", "SweptFrontEndFilterOnly"},
	StageRxDSP:    {"UseIdealRxTiming", "HardDecisions", "DisableCSI", "Packets", "TargetErrors", "Workers", "Batch", "Cache", "CacheBytes", "DisableStageCache", "SweptStage", "OnSweepPoint"},
}

// stageRoot returns the seed root a stage derives its randomness from:
// ContentSeed for stages strictly before the swept stage (so every sweep
// point sees the same realization, whichever point computes it first), the
// per-point Seed otherwise.
func (b *Bench) stageRoot(s Stage) int64 {
	if s < b.cfg.SweptStage && b.cfg.ContentSeed != 0 {
		return b.cfg.ContentSeed
	}
	return b.cfg.Seed
}

// contentRoot is the root that keys cached content. Falls back to Seed so a
// cacheless Bench still has well-defined stage seeds.
func (b *Bench) contentRoot() int64 {
	if b.cfg.ContentSeed != 0 {
		return b.cfg.ContentSeed
	}
	return b.cfg.Seed
}

// cacheKind labels what pipeline prefix a cache entry holds.
const (
	cacheKindTX        uint8 = 1 // wanted frame waveform (stages < StageChannel)
	cacheKindAntenna   uint8 = 2 // composite antenna waveform (stages < min(SweptStage, StageFrontEnd))
	cacheKindBaseband  uint8 = 3 // noiseless post-front-end waveform (SNR sweeps on the identity front end)
	cacheKindPreFilter uint8 = 4 // behavioral front-end output upstream of the channel-select filter (SweptFrontEndFilterOnly sweeps)
)

// stageKey builds the content-addressed cache key for one packet's cached
// prefix. Every invariant configuration field the prefix depends on is folded
// in — and never the swept parameter or the per-point Seed, which is exactly
// what lets the points of one sweep agree on the key.
func (b *Bench) stageKey(kind uint8, p, os int, withNoise bool) sim.CacheKey {
	if b.keyContent == 0 {
		labels := []uint64{
			uint64(kind),
			uint64(b.cfg.RateMbps),
			uint64(b.cfg.PSDULen),
			uint64(os),
			math.Float64bits(b.cfg.WantedPowerDBm),
			math.Float64bits(b.cfg.CFOHz),
			uint64(b.cfg.MultipathTaps),
			math.Float64bits(b.cfg.MultipathRMSSamples),
			math.Float64bits(b.cfg.DopplerHz),
			math.Float64bits(b.cfg.SampleClockPPM),
			uint64(len(b.cfg.Interferers)),
		}
		for _, spec := range b.cfg.Interferers {
			labels = append(labels,
				math.Float64bits(spec.OffsetHz),
				math.Float64bits(spec.PowerDBm),
				uint64(spec.RateMbps))
		}
		if withNoise && b.cfg.ChannelSNRdB != nil {
			labels = append(labels, 1, math.Float64bits(*b.cfg.ChannelSNRdB))
		} else {
			labels = append(labels, 0, 0)
		}
		b.keyContent = seed.ContentKey(b.contentRoot(), labels...)
	}
	return sim.CacheKey{Kind: kind, Packet: p, Content: b.keyContent}
}

// stageEntry is the payload of one cached prefix: the packet's reference
// payload bits (for error counting) and the waveform at the prefix boundary.
// Both are shared across sweep points; wave is copied on read before any
// mutation (noise addition, front-end processing), refBits is read-only by
// contract.
type stageEntry struct {
	refBits []byte
	wave    []complex128
}

// sizeBytes reports the entry's payload size for the cache's byte budget.
func (e *stageEntry) sizeBytes() int64 {
	return int64(len(e.refBits)) + int64(len(e.wave)*16)
}
