//go:build race

package race

// Enabled reports whether the race detector is compiled into this binary.
const Enabled = true
