// Package race exposes whether the Go race detector is enabled in this
// build, mirroring the standard library's internal/race flag.
//
// Its one consumer class is the steady-state allocation gates: under the
// race detector, sync.Pool intentionally drops a fraction of Puts (to shake
// out lifetime races), so code whose hot path is allocation-free through a
// warm pool — the planar FFT scratch, most prominently — observes spurious
// allocations in testing.AllocsPerRun. Those gates skip under -race with an
// explicit message; scripts/check.sh runs them again without the race
// detector, where the zero-allocation contract is enforced for real.
package race
