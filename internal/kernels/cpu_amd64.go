//go:build amd64 && !purego

package kernels

// The amd64 SIMD tier is AVX2: 4 float64 lanes per ymm vector, selected only
// when the CPU and the OS both support it (see cpu_amd64.s).
const (
	simdTier  = "avx2"
	simdWidth = 4
)

// cpuHasAVX2 probes, in assembly and without any third-party cpu package:
// CPUID leaf 1 ECX for OSXSAVE+AVX, XGETBV XCR0 for OS-managed xmm/ymm
// state, and CPUID leaf 7 EBX for AVX2. See cpu_amd64.s.
func cpuHasAVX2() bool

var simdAvailable = cpuHasAVX2()
