package kernels

import (
	"math"
	"math/rand"
	"testing"
)

// acsInitBank sets up the decoder's canonical starting bank: state 0 reached
// with metric 0, every other state unreached (-Inf).
func acsInitBank(m *[64]float64) {
	m[0] = 0
	nInf := math.Inf(-1)
	for i := 1; i < 64; i++ {
		m[i] = nInf
	}
}

// acsRandSoft fills a soft-metric stream with Gaussian values plus the
// occasional adversarial NaN/Inf, which must push ACSRun onto its exact
// reference path for the remainder of the run.
func acsRandSoft(rng *rand.Rand, soft []float64, adversarial bool) {
	for i := range soft {
		soft[i] = rng.NormFloat64()
		if adversarial {
			switch rng.Intn(40) {
			case 0:
				soft[i] = math.NaN()
			case 1:
				soft[i] = math.Inf(1)
			case 2:
				soft[i] = math.Inf(-1)
			}
		}
	}
}

// acsRunRef is the oracle for ACSRun: the same ping-pong loop with every step
// taken by the frozen reference kernel.
func acsRunRef(decisions []uint64, soft []float64, metric, scratch *[64]float64) *[64]float64 {
	cur, next := metric, scratch
	for t := range decisions {
		decisions[t] = ACSStepRef(next, cur, soft[2*t], soft[2*t+1])
		cur, next = next, cur
	}
	return cur
}

// TestACSRunMatchesRef drives ACSRun and the reference over random and
// adversarial soft-metric streams, asserting bit equality of every decision
// word and of every final path metric.
func TestACSRunMatchesRef(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 300; trial++ {
		steps := 1 + rng.Intn(96)
		soft := make([]float64, 2*steps)
		acsRandSoft(rng, soft, trial%2 == 1)

		var bankA, scratchA, bankB, scratchB [64]float64
		acsInitBank(&bankA)
		acsInitBank(&bankB)
		decA := make([]uint64, steps)
		decB := make([]uint64, steps)

		finalA := ACSRun(decA, soft, &bankA, &scratchA)
		finalB := acsRunRef(decB, soft, &bankB, &scratchB)

		for i := range decA {
			if decA[i] != decB[i] {
				t.Fatalf("trial %d step %d: decision word %#x != ref %#x", trial, i, decA[i], decB[i])
			}
		}
		for s := range finalA {
			if math.Float64bits(finalA[s]) != math.Float64bits(finalB[s]) {
				t.Fatalf("trial %d state %d: metric %x != ref %x", trial, s,
					math.Float64bits(finalA[s]), math.Float64bits(finalB[s]))
			}
		}
	}
}

// TestACSStepGoMatchesRef checks the unrolled step kernel directly against
// the reference on its contract domain: finite branch metrics, banks free of
// NaN and +Inf (finite values and -Inf only).
func TestACSStepGoMatchesRef(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	var metric, nextA, nextB [64]float64
	for trial := 0; trial < 5000; trial++ {
		for i := range metric {
			if rng.Intn(10) == 0 {
				metric[i] = math.Inf(-1)
			} else {
				metric[i] = rng.NormFloat64() * 10
			}
		}
		mA := rng.NormFloat64()
		mB := rng.NormFloat64()
		if trial%7 == 1 {
			mA = 0
		}
		decA := acsStepGo(&nextA, &metric, mA, mB)
		decB := ACSStepRef(&nextB, &metric, mA, mB)
		if decA != decB {
			t.Fatalf("trial %d: decision word %#x != ref %#x (mA=%g mB=%g)", trial, decA, decB, mA, mB)
		}
		for s := range nextA {
			if math.Float64bits(nextA[s]) != math.Float64bits(nextB[s]) {
				t.Fatalf("trial %d state %d: metric %x != ref %x", trial, s,
					math.Float64bits(nextA[s]), math.Float64bits(nextB[s]))
			}
		}
	}
}

func benchACS(b *testing.B, run func(decisions []uint64, soft []float64, metric, scratch *[64]float64) *[64]float64) {
	rng := rand.New(rand.NewSource(2))
	var bank, scratch [64]float64
	acsInitBank(&bank)
	soft := make([]float64, 2*1024)
	acsRandSoft(rng, soft, false)
	decisions := make([]uint64, 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run(decisions, soft, &bank, &scratch)
	}
}

func BenchmarkACSRun(b *testing.B)    { benchACS(b, ACSRun) }
func BenchmarkACSRunRef(b *testing.B) { benchACS(b, acsRunRef) }
