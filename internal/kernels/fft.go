package kernels

// Planar split-complex FFT kernels. A radix-2 decimation-in-time transform
// factors into a bit-reversal permutation followed by log2(n) butterfly
// stages; within one stage every butterfly is independent, so the SIMD tier
// packs four butterflies (or, in the lane-interleaved X4 layout, the same
// butterfly of four independent transforms) per vector with the scalar
// operation order preserved lane for lane: the twiddle product is the Go
// compiler's complex128 lowering (re = br*wr - bi*wi, im = br*wi + bi*wr,
// one rounding per operation, no FMA), and the butterfly sum/difference
// follow in the same order. The permutation, the final inverse scaling pass
// (a complex multiply by (s, 0), kept in its exact four-multiply form so
// ±0/NaN/Inf propagation matches the interleaved scalar code), and the
// spectral pointwise product used by overlap-save convolution are planar
// kernels of the same contract.
//
// Twiddle factors arrive as per-stage planes (wr/wi of length half): the
// caller precomputes them once per plan — forward and conjugate (exactly
// negated wi) tables — so the stage loop carries no index arithmetic and no
// inverse branch.

// FFTStageRef is the retained naive reference for FFTStage. Frozen as the
// differential-test oracle.
func FFTStageRef(re, im []float64, wr, wi []float64, half int) {
	for base := 0; base+2*half <= len(re); base += 2 * half {
		for k := 0; k < half; k++ {
			i, j := base+k, base+k+half
			br, bi := re[j], im[j]
			tr := br*wr[k] - bi*wi[k]
			ti := br*wi[k] + bi*wr[k]
			ar, ai := re[i], im[i]
			re[i], im[i] = ar+tr, ai+ti
			re[j], im[j] = ar-tr, ai-ti
		}
	}
}

// FFTStage applies one radix-2 DIT butterfly stage in place over the planar
// frame re/im: blocks of 2*half elements, the k-th butterfly of every block
// combining elements k and k+half with twiddle (wr[k], wi[k]). len(wr) and
// len(wi) must be at least half and len(re) == len(im) a multiple of
// 2*half. Bit-identical to FFTStageRef on either tier.
//
//lint:hotpath
func FFTStage(re, im []float64, wr, wi []float64, half int) {
	if useSIMD {
		fftStageSIMD(re, im, wr, wi, half)
		return
	}
	fftStageGo(re, im, wr, wi, half)
}

// fftStageGo is the pure-Go tier of FFTStage and the twin of fftStageAsm.
//
//lint:hotpath
func fftStageGo(re, im []float64, wr, wi []float64, half int) {
	wr = wr[:half]
	wi = wi[:half]
	for base := 0; base+2*half <= len(re); base += 2 * half {
		for k := 0; k < half; k++ {
			i, j := base+k, base+k+half
			br, bi := re[j], im[j]
			tr := br*wr[k] - bi*wi[k]
			ti := br*wi[k] + bi*wr[k]
			ar, ai := re[i], im[i]
			re[i], im[i] = ar+tr, ai+ti
			re[j], im[j] = ar-tr, ai-ti
		}
	}
}

// FFTStageX4Ref is the retained naive reference for FFTStageX4. Frozen as
// the differential-test oracle.
func FFTStageX4Ref(re, im []float64, wr, wi []float64, half int) {
	n := len(re) / 4
	for base := 0; base+2*half <= n; base += 2 * half {
		for k := 0; k < half; k++ {
			for l := 0; l < 4; l++ {
				i, j := 4*(base+k)+l, 4*(base+k+half)+l
				br, bi := re[j], im[j]
				tr := br*wr[k] - bi*wi[k]
				ti := br*wi[k] + bi*wr[k]
				ar, ai := re[i], im[i]
				re[i], im[i] = ar+tr, ai+ti
				re[j], im[j] = ar-tr, ai-ti
			}
		}
	}
}

// FFTStageX4 applies one radix-2 DIT butterfly stage to four independent
// transforms held lane-interleaved: element e of lane l lives at index
// 4*e+l, so each vector holds the same element of all four transforms and
// the twiddle broadcasts. Every stage vectorizes fully this way, including
// half == 1 and half == 2 which the planar single-transform kernel must run
// scalar. len(re) == len(im) must be 4 times a multiple of 2*half.
// Bit-identical to FFTStageX4Ref on either tier.
//
//lint:hotpath
func FFTStageX4(re, im []float64, wr, wi []float64, half int) {
	if useSIMD {
		fftStageX4SIMD(re, im, wr, wi, half)
		return
	}
	fftStageX4Go(re, im, wr, wi, half)
}

// fftStageX4Go is the pure-Go tier of FFTStageX4 and the twin of
// fftStageX4Asm.
//
//lint:hotpath
func fftStageX4Go(re, im []float64, wr, wi []float64, half int) {
	n := len(re) / 4
	wr = wr[:half]
	wi = wi[:half]
	for base := 0; base+2*half <= n; base += 2 * half {
		for k := 0; k < half; k++ {
			twr, twi := wr[k], wi[k]
			for l := 0; l < 4; l++ {
				i, j := 4*(base+k)+l, 4*(base+k+half)+l
				br, bi := re[j], im[j]
				tr := br*twr - bi*twi
				ti := br*twi + bi*twr
				ar, ai := re[i], im[i]
				re[i], im[i] = ar+tr, ai+ti
				re[j], im[j] = ar-tr, ai-ti
			}
		}
	}
}

// FFTPermuteRef is the retained naive reference for FFTPermute. Frozen as
// the differential-test oracle.
func FFTPermuteRef(dst, src []float64, idx []int64) {
	for i, j := range idx {
		dst[i] = src[j]
	}
}

// FFTPermute gathers src through the index table into dst:
// dst[i] = src[idx[i]] for i < len(idx). dst must have at least len(idx)
// elements and every index must be within src. dst and src must not
// overlap (bit reversal is applied out of place). Pure data movement,
// bit-identical to FFTPermuteRef on either tier.
//
//lint:hotpath
func FFTPermute(dst, src []float64, idx []int64) {
	if useSIMD {
		fftPermuteSIMD(dst, src, idx)
		return
	}
	fftPermuteGo(dst, src, idx)
}

// fftPermuteGo is the pure-Go tier of FFTPermute and the twin of
// fftPermuteAsm.
//
//lint:hotpath
func fftPermuteGo(dst, src []float64, idx []int64) {
	dst = dst[:len(idx)]
	for i, j := range idx {
		dst[i] = src[j]
	}
}

// ScaleCplxRef is the retained naive reference for ScaleCplx. Frozen as the
// differential-test oracle.
func ScaleCplxRef(re, im []float64, s float64) {
	for i := range re {
		xr, xi := re[i], im[i]
		re[i] = xr*s - xi*0
		im[i] = xr*0 + xi*s
	}
}

// ScaleCplx multiplies the planar frame by the real scalar s as a complex
// multiply by (s, 0): re' = re*s - im*0, im' = re*0 + im*s. The zero
// products are kept — they are what the interleaved x[i] *= complex(s, 0)
// computes, and they carry the ±0/NaN/Inf propagation that a plain
// per-plane scale would lose. len(im) must be at least len(re).
// Bit-identical to ScaleCplxRef on either tier.
//
//lint:hotpath
func ScaleCplx(re, im []float64, s float64) {
	if useSIMD {
		scaleCplxSIMD(re, im, s)
		return
	}
	scaleCplxGo(re, im, s)
}

// scaleCplxGo is the pure-Go tier of ScaleCplx and the twin of
// scaleCplxAsm.
//
//lint:hotpath
func scaleCplxGo(re, im []float64, s float64) {
	im = im[:len(re)]
	for i := range re {
		xr, xi := re[i], im[i]
		re[i] = xr*s - xi*0
		im[i] = xr*0 + xi*s
	}
}

// MulCplxRef is the retained naive reference for MulCplx. Frozen as the
// differential-test oracle.
func MulCplxRef(ar, ai, br, bi []float64) {
	for i := range ar {
		xr, xi := ar[i], ai[i]
		yr, yi := br[i], bi[i]
		ar[i] = xr*yr - xi*yi
		ai[i] = xr*yi + xi*yr
	}
}

// MulCplx multiplies the planar frame a by the planar frame b pointwise,
// a[i] *= b[i], in the compiler's complex128 lowering order
// (re = xr*yr - xi*yi, im = xr*yi + xi*yr) — the overlap-save spectral
// product. br/bi/ai must have at least len(ar) elements. Bit-identical to
// MulCplxRef on either tier.
//
//lint:hotpath
func MulCplx(ar, ai, br, bi []float64) {
	if useSIMD {
		mulCplxSIMD(ar, ai, br, bi)
		return
	}
	mulCplxGo(ar, ai, br, bi)
}

// mulCplxGo is the pure-Go tier of MulCplx and the twin of mulCplxAsm.
//
//lint:hotpath
func mulCplxGo(ar, ai, br, bi []float64) {
	ai = ai[:len(ar)]
	br = br[:len(ar)]
	bi = bi[:len(ar)]
	for i := range ar {
		xr, xi := ar[i], ai[i]
		yr, yi := br[i], bi[i]
		ar[i] = xr*yr - xi*yi
		ai[i] = xr*yi + xi*yr
	}
}

// FFTPackX4 gathers four equal-length complex frames into the
// lane-interleaved planar layout through the index table (fusing the
// bit-reversal permutation with the transpose): plane element 4*i+l is
// frame l's element idx[i]. re/im must have at least 4*len(idx) elements
// and xs at least four frames each covering every index. Pure data
// movement.
//
//lint:hotpath
func FFTPackX4(re, im []float64, xs [][]complex128, idx []int64) {
	x0, x1, x2, x3 := xs[0], xs[1], xs[2], xs[3]
	for i, j := range idx {
		base := 4 * i
		c0, c1, c2, c3 := x0[j], x1[j], x2[j], x3[j]
		re[base+0], im[base+0] = real(c0), imag(c0)
		re[base+1], im[base+1] = real(c1), imag(c1)
		re[base+2], im[base+2] = real(c2), imag(c2)
		re[base+3], im[base+3] = real(c3), imag(c3)
	}
}

// FFTUnpackX4 scatters the lane-interleaved planar layout back into four
// equal-length complex frames: frame l's element i is
// complex(re[4*i+l], im[4*i+l]). The inverse transpose of FFTPackX4 (with
// the identity index). Pure data movement.
//
//lint:hotpath
func FFTUnpackX4(xs [][]complex128, re, im []float64) {
	x0, x1, x2, x3 := xs[0], xs[1], xs[2], xs[3]
	n := len(x0)
	for i := 0; i < n; i++ {
		base := 4 * i
		x0[i] = complex(re[base+0], im[base+0])
		x1[i] = complex(re[base+1], im[base+1])
		x2[i] = complex(re[base+2], im[base+2])
		x3[i] = complex(re[base+3], im[base+3])
	}
}
