//go:build amd64 && !purego

package kernels

// AVX2 tier: //go:noescape stubs for the hand-written kernels in
// simd_amd64.s, plus the thin wrappers that feed the vector bodies whole
// quads and run the shared scalar tails on the ragged remainder. Every stub
// fooAsm has a pure-Go twin fooGo with the identical signature; the wlanlint
// asmtwin analyzer enforces the pairing and the asmtwins differential suite
// pins the two bit-identical on adversarial inputs under both tiers.
//
// The vector bodies never combine values from different chains: one ymm lane
// carries one scalar dependency chain (a FIR output, a biquad lane, a mixer
// sample, an ACS butterfly), with no FMA contraction and no reassociation,
// so per-chain arithmetic — operation order and one rounding per operation —
// is exactly the Go twin's.

// acsMaskA/acsMaskB hold, per butterfly s, the IEEE sign mask (0 or 1<<63)
// of the even edge's A/B branch metric: XORing the broadcast branch metric
// with the mask yields the signed operand, and XORing again with 1<<63 its
// exact negation — the odd edge and the upper-target signs are complements
// (see ACSStepRef). Filled from acsSelA/acsSelB at init; read only by
// acsStepAsm.
var acsMaskA, acsMaskB [32]uint64

func init() {
	// Runs after acs.go's init (file-name order) — acsSelA/acsSelB are
	// already populated.
	for s := 0; s < 32; s++ {
		acsMaskA[s] = uint64(acsSelA[2*s]) << 63
		acsMaskB[s] = uint64(acsSelB[2*s]) << 63
	}
}

// acsStepAsm advances one clean trellis step, four butterflies per vector;
// requires the acsStepGo precondition (finite mA/mB, no NaN/+Inf metrics).
//
//go:noescape
func acsStepAsm(next, metric *[64]float64, mA, mB float64) uint64

// firRealAsm computes len(yr) outputs, four per vector; len(yr) must be a
// positive multiple of 4 and yi must have at least len(yr) elements.
//
//go:noescape
func firRealAsm(yr, yi, xr, xi, taps []float64)

// firCplxAsm computes len(yr) outputs, four per vector; len(yr) must be a
// positive multiple of 4 and yi must have at least len(yr) elements.
//
//go:noescape
func firCplxAsm(yr, yi, xr, xi, tr, ti []float64)

// mixApplyAsm processes len(xr) samples, four per vector; len(xr) must be a
// positive multiple of 4 and xi at least as long.
//
//go:noescape
func mixApplyAsm(xr, xi []float64, mur, mui, nur, nui, gain, dcr, dci float64)

// mixApplyLOAsm processes len(xr) samples, four per vector; len(xr) must be
// a positive multiple of 4 and xi/lor/loi at least as long.
//
//go:noescape
func mixApplyLOAsm(xr, xi, lor, loi []float64, mur, mui, nur, nui, gain, dcr, dci float64)

// biquadQuadAsm advances exactly four lanes (re[0..3]/im[0..3], equal
// lengths) with one recurrence per vector lane; s1r/s1i/s2r/s2i carry the
// four delay states in their first four elements.
//
//go:noescape
func biquadQuadAsm(re, im [][]float64, b0, b1, b2, a1, a2 float64, s1r, s1i, s2r, s2i []float64)

// corrPairAsm accumulates the four correlation chains in one vector over
// len(ref) taps; x1/x2 must have at least len(ref) elements.
//
//go:noescape
func corrPairAsm(x1, x2, ref []complex128) (s1r, s1im, s2r, s2im float64)

// addPlaneAsm adds src into dst over len(dst) elements; len(dst) must be a
// positive multiple of 4 and src at least as long.
//
//go:noescape
func addPlaneAsm(dst, src []float64)

// scalePlaneAsm scales dst over len(dst) elements; len(dst) must be a
// positive multiple of 4.
//
//go:noescape
func scalePlaneAsm(dst []float64, s float64)

// interleaveAsm packs len(x) elements; len(x) must be a positive multiple
// of 4 and re/im at least as long.
//
//go:noescape
func interleaveAsm(x []complex128, re, im []float64)

// deinterleaveAsm unpacks len(x) elements; len(x) must be a positive
// multiple of 4 and re/im at least as long.
//
//go:noescape
func deinterleaveAsm(re, im []float64, x []complex128)

// fftStageAsm applies one butterfly stage, four butterflies per vector;
// half must be a positive multiple of 4 and len(re) a positive multiple of
// 2*half, with im/wr/wi sized as for FFTStage.
//
//go:noescape
func fftStageAsm(re, im []float64, wr, wi []float64, half int)

// fftStageX4Asm applies one lane-interleaved butterfly stage, one butterfly
// of four independent transforms per vector; half must be positive and
// len(re) a positive multiple of 8*half.
//
//go:noescape
func fftStageX4Asm(re, im []float64, wr, wi []float64, half int)

// fftPermuteAsm gathers len(idx) elements, four per vector; len(idx) must
// be a positive multiple of 4, every index within src, and dst disjoint
// from src.
//
//go:noescape
func fftPermuteAsm(dst, src []float64, idx []int64)

// scaleCplxAsm scales len(re) planar elements as a complex multiply by
// (s, 0), four per vector; len(re) must be a positive multiple of 4 and im
// at least as long.
//
//go:noescape
func scaleCplxAsm(re, im []float64, s float64)

// mulCplxAsm multiplies len(ar) planar elements pointwise, four per vector;
// len(ar) must be a positive multiple of 4 and ai/br/bi at least as long.
//
//go:noescape
func mulCplxAsm(ar, ai, br, bi []float64)

//lint:hotpath
func acsStepSIMD(next, metric *[64]float64, mA, mB float64) uint64 {
	return acsStepAsm(next, metric, mA, mB)
}

//lint:hotpath
func firRealSIMD(yr, yi, xr, xi, taps []float64) {
	q := len(yr) &^ 3
	if q > 0 {
		firRealAsm(yr[:q], yi, xr, xi, taps)
	}
	firRealTail(q, yr, yi, xr, xi, taps)
}

//lint:hotpath
func firCplxSIMD(yr, yi, xr, xi, tr, ti []float64) {
	q := len(yr) &^ 3
	if q > 0 {
		firCplxAsm(yr[:q], yi, xr, xi, tr, ti)
	}
	firCplxTail(q, yr, yi, xr, xi, tr, ti)
}

//lint:hotpath
func mixApplySIMD(xr, xi []float64, mur, mui, nur, nui, g, dcr, dci float64) {
	q := len(xr) &^ 3
	if q > 0 {
		mixApplyAsm(xr[:q], xi, mur, mui, nur, nui, g, dcr, dci)
	}
	mixApplyTail(q, xr, xi, mur, mui, nur, nui, g, dcr, dci)
}

//lint:hotpath
func mixApplyLOSIMD(xr, xi, lor, loi []float64, mur, mui, nur, nui, g, dcr, dci float64) {
	q := len(xr) &^ 3
	if q > 0 {
		mixApplyLOAsm(xr[:q], xi, lor, loi, mur, mui, nur, nui, g, dcr, dci)
	}
	mixApplyLOTail(q, xr, xi, lor, loi, mur, mui, nur, nui, g, dcr, dci)
}

//lint:hotpath
func biquadBatchSIMD(re, im [][]float64, b0, b1, b2, a1, a2 float64, s1r, s1i, s2r, s2i []float64) {
	b := 0
	for ; b+4 <= len(re); b += 4 {
		biquadQuadAsm(re[b:b+4], im[b:b+4], b0, b1, b2, a1, a2,
			s1r[b:b+4], s1i[b:b+4], s2r[b:b+4], s2i[b:b+4])
	}
	for ; b+2 <= len(re); b += 2 {
		biquadPair(re[b], im[b], re[b+1], im[b+1], b0, b1, b2, a1, a2, s1r[b:], s1i[b:], s2r[b:], s2i[b:])
	}
	if b < len(re) {
		biquadLane(re[b], im[b], b0, b1, b2, a1, a2, s1r[b:], s1i[b:], s2r[b:], s2i[b:])
	}
}

//lint:hotpath
func corrPairSIMD(x1, x2, ref []complex128) (s1r, s1im, s2r, s2im float64) {
	return corrPairAsm(x1, x2, ref)
}

//lint:hotpath
func addPlaneSIMD(dst, src []float64) {
	q := len(dst) &^ 3
	if q > 0 {
		addPlaneAsm(dst[:q], src)
	}
	for i := q; i < len(dst); i++ {
		dst[i] += src[i]
	}
}

//lint:hotpath
func scalePlaneSIMD(dst []float64, s float64) {
	q := len(dst) &^ 3
	if q > 0 {
		scalePlaneAsm(dst[:q], s)
	}
	for i := q; i < len(dst); i++ {
		dst[i] *= s
	}
}

//lint:hotpath
func interleaveSIMD(x []complex128, re, im []float64) {
	q := len(x) &^ 3
	if q > 0 {
		interleaveAsm(x[:q], re, im)
	}
	for i := q; i < len(x); i++ {
		x[i] = complex(re[i], im[i])
	}
}

//lint:hotpath
func deinterleaveSIMD(re, im []float64, x []complex128) {
	q := len(x) &^ 3
	if q > 0 {
		deinterleaveAsm(re, im, x[:q])
	}
	for i := q; i < len(x); i++ {
		re[i] = real(x[i])
		im[i] = imag(x[i])
	}
}

//lint:hotpath
func fftStageSIMD(re, im []float64, wr, wi []float64, half int) {
	// The vector body packs four butterflies of one block per ymm, so it
	// needs whole quads inside each block: the half < 4 stages (and any
	// ragged shape) run the scalar twin outright — no per-block tails.
	if half&3 != 0 || len(re) == 0 || len(re)%(2*half) != 0 {
		fftStageGo(re, im, wr, wi, half)
		return
	}
	fftStageAsm(re, im, wr, wi, half)
}

//lint:hotpath
func fftStageX4SIMD(re, im []float64, wr, wi []float64, half int) {
	if len(re) == 0 || len(re)%(8*half) != 0 {
		fftStageX4Go(re, im, wr, wi, half)
		return
	}
	fftStageX4Asm(re, im, wr, wi, half)
}

//lint:hotpath
func fftPermuteSIMD(dst, src []float64, idx []int64) {
	q := len(idx) &^ 3
	if q > 0 {
		fftPermuteAsm(dst, src, idx[:q])
	}
	for i := q; i < len(idx); i++ {
		dst[i] = src[idx[i]]
	}
}

//lint:hotpath
func scaleCplxSIMD(re, im []float64, s float64) {
	q := len(re) &^ 3
	if q > 0 {
		scaleCplxAsm(re[:q], im, s)
	}
	for i := q; i < len(re); i++ {
		xr, xi := re[i], im[i]
		re[i] = xr*s - xi*0
		im[i] = xr*0 + xi*s
	}
}

//lint:hotpath
func mulCplxSIMD(ar, ai, br, bi []float64) {
	q := len(ar) &^ 3
	if q > 0 {
		mulCplxAsm(ar[:q], ai, br, bi)
	}
	for i := q; i < len(ar); i++ {
		xr, xi := ar[i], ai[i]
		yr, yi := br[i], bi[i]
		ar[i] = xr*yr - xi*yi
		ai[i] = xr*yi + xi*yr
	}
}
