package kernels

import (
	"encoding/binary"
	"math"
	"testing"
)

// Fuzz differential targets for the two kernels with the widest input
// domains: the fuzzer owns the raw float64 bit patterns, so it explores
// NaN payloads, infinities, denormals and huge magnitudes that the seeded
// Gaussian tests only sample. Both targets assert the unrolled kernel is
// bit-identical to its retained reference (modulo NaN payload bits, which
// IEEE-754 leaves unspecified — see bitsEqual). Seed corpora are checked
// in under testdata/fuzz/<FuzzName>/; scripts/check.sh runs each target
// for a short fixed duration on top of the seed-corpus replay that plain
// `go test` already performs.

// fuzzFloats reinterprets the fuzz payload as little-endian float64 words,
// capped at max values to bound per-input work.
func fuzzFloats(data []byte, max int) []float64 {
	n := len(data) / 8
	if n > max {
		n = max
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(data[8*i:]))
	}
	return out
}

// FuzzACSRun drives the dispatching ACS runner and the frozen per-step
// reference over the same fuzzer-chosen soft-metric stream from the
// decoder's standard 0/-Inf bank. Any non-finite metric must flip ACSRun
// onto the reference path for the rest of the run, so decisions and final
// metrics stay bit-identical even mid-stream of adversarial values.
func FuzzACSRun(f *testing.F) {
	seed := func(vals ...float64) []byte {
		b := make([]byte, 8*len(vals))
		for i, v := range vals {
			binary.LittleEndian.PutUint64(b[8*i:], math.Float64bits(v))
		}
		return b
	}
	f.Add(seed(1.5, -0.5, 0.25, 2.0))
	f.Add(seed(math.Inf(1), 1, -1, math.NaN(), 3, -3))
	f.Add(seed(0, 0, math.SmallestNonzeroFloat64, -1e308))
	f.Fuzz(func(t *testing.T, data []byte) {
		vals := fuzzFloats(data, 2*96)
		steps := len(vals) / 2
		if steps == 0 {
			return
		}
		soft := vals[:2*steps]

		var m0, s0, m1, s1 [64]float64
		acsInitBank(&m0)
		acsInitBank(&m1)
		got := make([]uint64, steps)
		want := make([]uint64, steps)
		gm := ACSRun(got, soft, &m0, &s0)
		wm := acsRunRef(want, soft, &m1, &s1)
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("decision word %d: %#x != ref %#x", i, got[i], want[i])
			}
		}
		bitsEqual(t, "metric", gm[:], wm[:])
	})
}

// FuzzACSBatch splits the fuzzer payload across a fuzzer-chosen batch width
// and asserts the lock-step batched trellis is bit-identical, lane for lane,
// to independent sequential ACSRun calls — decisions and final metric banks
// both, including lanes that trip the non-finite reference fallback while
// their batch-mates stay on the fast path.
func FuzzACSBatch(f *testing.F) {
	seed := func(width byte, vals ...float64) []byte {
		b := make([]byte, 1+8*len(vals))
		b[0] = width
		for i, v := range vals {
			binary.LittleEndian.PutUint64(b[1+8*i:], math.Float64bits(v))
		}
		return b
	}
	f.Add(seed(2, 1.5, -0.5, 0.25, 2.0, -1, 1, 0.5, -2))
	f.Add(seed(4, math.Inf(1), 1, -1, math.NaN(), 3, -3, 0, 0, 1, 2, 3, 4, 5, 6, 7, 8))
	f.Add(seed(1, 0, 0, math.SmallestNonzeroFloat64, -1e308))
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 1 {
			return
		}
		B := int(data[0])%16 + 1
		vals := fuzzFloats(data[1:], B*2*64)
		steps := len(vals) / (2 * B)
		if steps == 0 {
			return
		}

		soft := make([][]float64, B)
		decSeq := make([][]uint64, B)
		finalSeq := make([][64]float64, B)
		for b := 0; b < B; b++ {
			soft[b] = vals[b*2*steps : (b+1)*2*steps]
			decSeq[b] = make([]uint64, steps)

			var m, s [64]float64
			acsInitBank(&m)
			finalSeq[b] = *ACSRun(decSeq[b], soft[b], &m, &s)
		}

		// Run the batched trellis under both kernel tiers: decisions and
		// final banks must be bit-identical to sequential either way.
		prev := DispatchName() != "purego"
		defer SetDispatch(prev)
		for _, simd := range []bool{true, false} {
			SetDispatch(simd)
			decBatch := make([][]uint64, B)
			metric := make([]*[64]float64, B)
			scratch := make([]*[64]float64, B)
			clean := make([]bool, B)
			for b := 0; b < B; b++ {
				decBatch[b] = make([]uint64, steps)
				metric[b] = new([64]float64)
				scratch[b] = new([64]float64)
				acsInitBank(metric[b])
			}

			ACSRunBatch(decBatch, soft, metric, scratch, clean)

			for b := 0; b < B; b++ {
				for i := range decBatch[b] {
					if decBatch[b][i] != decSeq[b][i] {
						t.Fatalf("tier %s lane %d decision word %d: %#x != sequential %#x",
							DispatchName(), b, i, decBatch[b][i], decSeq[b][i])
					}
				}
				final := metric[b]
				if steps%2 == 1 {
					final = scratch[b]
				}
				bitsEqual(t, "metric", final[:], finalSeq[b][:])
			}
		}
	})
}

// FuzzFIRBatch splits the payload into a shared real tap set and a
// fuzzer-chosen number of lanes, asserting the batched FIR equals per-lane
// sequential FIRReal calls bit for bit across tap counts, lane widths and
// raw float64 bit patterns.
func FuzzFIRBatch(f *testing.F) {
	f.Add([]byte{3, 2, 0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15})
	f.Add(append([]byte{1, 1}, make([]byte, 8*8)...))
	f.Add(append([]byte{24, 3}, make([]byte, 8*200)...))
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 2 {
			return
		}
		tapN := int(data[0])%24 + 1
		B := int(data[1])%16 + 1
		vals := fuzzFloats(data[2:], tapN+B*(tapN-1+48))
		if len(vals) < tapN+B*tapN {
			return // need taps plus one output sample per lane
		}
		taps := vals[:tapN]
		rest := vals[tapN:]
		extN := len(rest) / B
		n := extN - (tapN - 1)
		if n < 1 {
			return
		}

		xr := make([][]float64, B)
		xi := make([][]float64, B)
		gr := make([][]float64, B)
		gi := make([][]float64, B)
		for b := 0; b < B; b++ {
			lane := rest[b*extN : (b+1)*extN]
			xr[b] = lane
			// Reuse the same plane reversed for the imaginary part so the
			// payload budget is spent on distinct real planes across lanes.
			rev := make([]float64, extN)
			for i := range rev {
				rev[i] = lane[extN-1-i]
			}
			xi[b] = rev
			gr[b] = make([]float64, n)
			gi[b] = make([]float64, n)
		}

		// Sequential oracle once, then the batched kernel under both tiers:
		// per-lane outputs must match bit for bit on each.
		wr := make([][]float64, B)
		wi := make([][]float64, B)
		for b := 0; b < B; b++ {
			wr[b] = make([]float64, n)
			wi[b] = make([]float64, n)
			FIRReal(wr[b], wi[b], xr[b], xi[b], taps)
		}
		prev := DispatchName() != "purego"
		defer SetDispatch(prev)
		for _, simd := range []bool{true, false} {
			SetDispatch(simd)
			FIRRealBatch(gr, gi, xr, xi, taps)
			for b := 0; b < B; b++ {
				bitsEqual(t, "re", gr[b], wr[b])
				bitsEqual(t, "im", gi[b], wi[b])
			}
		}
	})
}

// FuzzFFTStage drives the planar FFT butterfly stage — single-transform and
// lane-interleaved X4 — against the frozen references under both dispatch
// tiers. The fuzzer owns the stage geometry (half and block count, so the
// vector body, the half < 4 Go fallback and ragged shapes all get hit) and
// the raw float64 bit patterns of both the twiddle planes and the data
// planes, so the no-FMA / ordered-rounding contract is checked on NaN
// payloads, infinities and denormals the seeded tests only sample.
func FuzzFFTStage(f *testing.F) {
	seed := func(halfExp, blocks byte, vals ...float64) []byte {
		b := make([]byte, 2+8*len(vals))
		b[0], b[1] = halfExp, blocks
		for i, v := range vals {
			binary.LittleEndian.PutUint64(b[2+8*i:], math.Float64bits(v))
		}
		return b
	}
	f.Add(seed(2, 0, 1, 0, 0, -1, 0.5, -0.5, 0.25, 1.5, 2, -2, 3, -3, 4, -4, 5, -5))
	f.Add(seed(0, 1, math.Inf(1), math.NaN(), 1, -1, math.SmallestNonzeroFloat64, -1e308))
	f.Add(seed(5, 2, 0.7071067811865476, -0.7071067811865476, 1, 1))
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 2 {
			return
		}
		half := 1 << (int(data[0]) % 6)
		blocks := int(data[1])%3 + 1
		n := 2 * half * blocks
		vals := fuzzFloats(data[2:], 2*half+2*n)
		if len(vals) < 2*half+2*n {
			return
		}
		wr, wi := vals[:half], vals[half:2*half]
		re0, im0 := vals[2*half:2*half+n], vals[2*half+n:2*half+2*n]

		// Lane-interleaved planes: four rotations of the payload frame so the
		// X4 lanes carry distinct chains.
		qre0 := make([]float64, 4*n)
		qim0 := make([]float64, 4*n)
		for i := 0; i < n; i++ {
			for l := 0; l < 4; l++ {
				qre0[4*i+l] = re0[(i+l)%n]
				qim0[4*i+l] = im0[(i+l)%n]
			}
		}

		prev := DispatchName() != "purego"
		defer SetDispatch(prev)
		for _, simd := range []bool{true, false} {
			SetDispatch(simd)

			gre := append([]float64(nil), re0...)
			gim := append([]float64(nil), im0...)
			wre := append([]float64(nil), re0...)
			wim := append([]float64(nil), im0...)
			FFTStage(gre, gim, wr, wi, half)
			FFTStageRef(wre, wim, wr, wi, half)
			bitsEqual(t, "stage re", gre, wre)
			bitsEqual(t, "stage im", gim, wim)

			qre := append([]float64(nil), qre0...)
			qim := append([]float64(nil), qim0...)
			qre2 := append([]float64(nil), qre0...)
			qim2 := append([]float64(nil), qim0...)
			FFTStageX4(qre, qim, wr, wi, half)
			FFTStageX4Ref(qre2, qim2, wr, wi, half)
			bitsEqual(t, "x4 re", qre, qre2)
			bitsEqual(t, "x4 im", qim, qim2)
		}
	})
}

// FuzzFIRCplx runs the 4-way-unrolled planar complex FIR and its reference
// over the same fuzzer-chosen taps and extended input. The fuzzer controls
// the tap count (first byte), so the unroll main body, the scalar tail and
// single-tap degenerate shapes all get exercised.
func FuzzFIRCplx(f *testing.F) {
	f.Add([]byte{3, 0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15})
	f.Add(append([]byte{1}, make([]byte, 8*8)...))
	f.Add(append([]byte{24}, make([]byte, 8*120)...))
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 1 {
			return
		}
		tapN := int(data[0])%24 + 1
		vals := fuzzFloats(data[1:], 2*tapN+2*(tapN-1+64))
		if len(vals) < 2*tapN+2*tapN {
			return // need taps plus at least one output sample of history+frame
		}
		tr, ti := vals[:tapN], vals[tapN:2*tapN]
		rest := vals[2*tapN:]
		extN := len(rest) / 2
		n := extN - (tapN - 1)
		if n < 1 {
			return
		}
		xr, xi := rest[:extN], rest[extN:2*extN]

		gr := make([]float64, n)
		gi := make([]float64, n)
		wr := make([]float64, n)
		wi := make([]float64, n)
		FIRCplx(gr, gi, xr, xi, tr, ti)
		FIRCplxRef(wr, wi, xr, xi, tr, ti)
		bitsEqual(t, "re", gr, wr)
		bitsEqual(t, "im", gi, wi)
	})
}
