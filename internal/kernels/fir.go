package kernels

// The FIR kernels compute block linear convolution over an extended input:
// the caller lays out xr/xi as a history prefix of len(taps)-1 samples
// followed by the frame, and output i is the dot product of the taps with the
// window ending at extended sample i+len(taps)-1, newest sample first
// (taps[0] multiplies the newest) — the same schedule as a per-sample direct
// filter.
//
// The optimized kernels unroll across four *outputs* per iteration: each tap
// is loaded once and feeds eight independent accumulator chains (four real,
// four imaginary). Every output's own accumulation order is untouched — tap
// index ascending, one rounding per multiply and per add — so each output is
// bit-identical to the reference's, not merely close. The AVX2 tier maps the
// same four output chains onto the four lanes of one ymm vector (see
// simd_amd64.s); per-output arithmetic is unchanged, so it is bit-identical
// too.

// FIRRealRef is the retained naive reference for FIRReal: one output at a
// time, tap index ascending over the newest-first window. Frozen as the
// differential-test oracle.
func FIRRealRef(yr, yi, xr, xi, taps []float64) {
	last := len(taps) - 1
	for i := range yr {
		var re, im float64
		base := i + last
		for d, t := range taps {
			re += xr[base-d] * t
			im += xi[base-d] * t
		}
		yr[i] = re
		yi[i] = im
	}
}

// FIRReal filters the planar extended input xr/xi (history prefix of
// len(taps)-1 samples, then the frame) with real taps, writing len(yr)
// outputs. yr/yi must not alias the tail of xr/xi that the remaining windows
// still read. Bit-identical to FIRRealRef on either dispatch tier.
//
//lint:hotpath
func FIRReal(yr, yi, xr, xi, taps []float64) {
	if useSIMD {
		firRealSIMD(yr, yi, xr, xi, taps)
		return
	}
	firRealGo(yr, yi, xr, xi, taps)
}

// firRealGo is the pure-Go tier of FIRReal and the twin of firRealAsm: four
// unrolled output chains per iteration, scalar tail.
//
//lint:hotpath
func firRealGo(yr, yi, xr, xi, taps []float64) {
	last := len(taps) - 1
	n := len(yr)
	i := 0
	for ; i+4 <= n; i += 4 {
		var r0, r1, r2, r3 float64
		var s0, s1, s2, s3 float64
		base := i + last
		for d, t := range taps {
			k := base - d
			r0 += xr[k] * t
			r1 += xr[k+1] * t
			r2 += xr[k+2] * t
			r3 += xr[k+3] * t
			s0 += xi[k] * t
			s1 += xi[k+1] * t
			s2 += xi[k+2] * t
			s3 += xi[k+3] * t
		}
		yr[i], yr[i+1], yr[i+2], yr[i+3] = r0, r1, r2, r3
		yi[i], yi[i+1], yi[i+2], yi[i+3] = s0, s1, s2, s3
	}
	firRealTail(i, yr, yi, xr, xi, taps)
}

// firRealTail computes outputs [i, len(yr)) one at a time — the shared
// scalar remainder of the Go and SIMD tiers.
//
//lint:hotpath
func firRealTail(i int, yr, yi, xr, xi, taps []float64) {
	last := len(taps) - 1
	for ; i < len(yr); i++ {
		var re, im float64
		base := i + last
		for d, t := range taps {
			re += xr[base-d] * t
			im += xi[base-d] * t
		}
		yr[i] = re
		yi[i] = im
	}
}

// FIRCplxRef is the retained naive reference for FIRCplx: complex taps
// tr/ti, one output at a time. Each product mirrors Go's complex128 multiply
// lowering — re = wr·tr − wi·ti and im = wr·ti + wi·tr, each of the two
// multiplies rounded individually before the combine — followed by one add
// into the accumulator, exactly the interleaved form's sequence. Frozen as
// the differential-test oracle.
func FIRCplxRef(yr, yi, xr, xi, tr, ti []float64) {
	last := len(tr) - 1
	for i := range yr {
		var re, im float64
		base := i + last
		for d := range tr {
			wr, wi := xr[base-d], xi[base-d]
			cr, ci := tr[d], ti[d]
			re += wr*cr - wi*ci
			im += wr*ci + wi*cr
		}
		yr[i] = re
		yi[i] = im
	}
}

// FIRCplx filters the planar extended input with complex taps split into
// tr/ti. Bit-identical to FIRCplxRef on either dispatch tier.
//
//lint:hotpath
func FIRCplx(yr, yi, xr, xi, tr, ti []float64) {
	if useSIMD {
		firCplxSIMD(yr, yi, xr, xi, tr, ti)
		return
	}
	firCplxGo(yr, yi, xr, xi, tr, ti)
}

// firCplxGo is the pure-Go tier of FIRCplx and the twin of firCplxAsm: four
// output chains per iteration, scalar tail.
//
//lint:hotpath
func firCplxGo(yr, yi, xr, xi, tr, ti []float64) {
	last := len(tr) - 1
	n := len(yr)
	i := 0
	for ; i+4 <= n; i += 4 {
		var r0, r1, r2, r3 float64
		var s0, s1, s2, s3 float64
		base := i + last
		for d := range tr {
			cr, ci := tr[d], ti[d]
			k := base - d
			w0r, w0i := xr[k], xi[k]
			w1r, w1i := xr[k+1], xi[k+1]
			w2r, w2i := xr[k+2], xi[k+2]
			w3r, w3i := xr[k+3], xi[k+3]
			r0 += w0r*cr - w0i*ci
			r1 += w1r*cr - w1i*ci
			r2 += w2r*cr - w2i*ci
			r3 += w3r*cr - w3i*ci
			s0 += w0r*ci + w0i*cr
			s1 += w1r*ci + w1i*cr
			s2 += w2r*ci + w2i*cr
			s3 += w3r*ci + w3i*cr
		}
		yr[i], yr[i+1], yr[i+2], yr[i+3] = r0, r1, r2, r3
		yi[i], yi[i+1], yi[i+2], yi[i+3] = s0, s1, s2, s3
	}
	firCplxTail(i, yr, yi, xr, xi, tr, ti)
}

// firCplxTail computes outputs [i, len(yr)) one at a time — the shared
// scalar remainder of the Go and SIMD tiers.
//
//lint:hotpath
func firCplxTail(i int, yr, yi, xr, xi, tr, ti []float64) {
	last := len(tr) - 1
	for ; i < len(yr); i++ {
		var re, im float64
		base := i + last
		for d := range tr {
			wr, wi := xr[base-d], xi[base-d]
			cr, ci := tr[d], ti[d]
			re += wr*cr - wi*ci
			im += wr*ci + wi*cr
		}
		yr[i] = re
		yi[i] = im
	}
}
