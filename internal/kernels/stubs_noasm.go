//go:build !amd64 || purego

package kernels

// Builds without the assembly tier alias every SIMD entry point to its
// pure-Go twin. They are unreachable (useSIMD is constant false here —
// simdAvailable never becomes true in cpu_noasm.go) but keep the shared
// dispatchers compiling identically on every build.

//lint:hotpath
func acsStepSIMD(next, metric *[64]float64, mA, mB float64) uint64 {
	return acsStepGo(next, metric, mA, mB)
}

//lint:hotpath
func firRealSIMD(yr, yi, xr, xi, taps []float64) {
	firRealGo(yr, yi, xr, xi, taps)
}

//lint:hotpath
func firCplxSIMD(yr, yi, xr, xi, tr, ti []float64) {
	firCplxGo(yr, yi, xr, xi, tr, ti)
}

//lint:hotpath
func mixApplySIMD(xr, xi []float64, mur, mui, nur, nui, g, dcr, dci float64) {
	mixApplyGo(xr, xi, mur, mui, nur, nui, g, dcr, dci)
}

//lint:hotpath
func mixApplyLOSIMD(xr, xi, lor, loi []float64, mur, mui, nur, nui, g, dcr, dci float64) {
	mixApplyLOGo(xr, xi, lor, loi, mur, mui, nur, nui, g, dcr, dci)
}

//lint:hotpath
func biquadBatchSIMD(re, im [][]float64, b0, b1, b2, a1, a2 float64, s1r, s1i, s2r, s2i []float64) {
	biquadBatchGo(re, im, b0, b1, b2, a1, a2, s1r, s1i, s2r, s2i)
}

//lint:hotpath
func corrPairSIMD(x1, x2, ref []complex128) (s1r, s1im, s2r, s2im float64) {
	return corrPairGo(x1, x2, ref)
}

//lint:hotpath
func addPlaneSIMD(dst, src []float64) {
	addPlaneGo(dst, src)
}

//lint:hotpath
func scalePlaneSIMD(dst []float64, s float64) {
	scalePlaneGo(dst, s)
}

//lint:hotpath
func interleaveSIMD(x []complex128, re, im []float64) {
	interleaveGo(x, re, im)
}

//lint:hotpath
func deinterleaveSIMD(re, im []float64, x []complex128) {
	deinterleaveGo(re, im, x)
}

//lint:hotpath
func fftStageSIMD(re, im []float64, wr, wi []float64, half int) {
	fftStageGo(re, im, wr, wi, half)
}

//lint:hotpath
func fftStageX4SIMD(re, im []float64, wr, wi []float64, half int) {
	fftStageX4Go(re, im, wr, wi, half)
}

//lint:hotpath
func fftPermuteSIMD(dst, src []float64, idx []int64) {
	fftPermuteGo(dst, src, idx)
}

//lint:hotpath
func scaleCplxSIMD(re, im []float64, s float64) {
	scaleCplxGo(re, im, s)
}

//lint:hotpath
func mulCplxSIMD(ar, ai, br, bi []float64) {
	mulCplxGo(ar, ai, br, bi)
}
