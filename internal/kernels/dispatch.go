package kernels

import "os"

// SIMD dispatch. The assembly tier (simd_*.s) reimplements the hot kernels
// with one vector lane per independent scalar dependency chain — no FMA, no
// reassociation, one rounding per operation in the scalar order — so its
// results are bit-identical to the pure-Go twins by construction, and the
// asm/Go pair is pinned by the asmtwins differential suite on every build.
//
// Selection is two-layered:
//
//   - compile time: the asm tier exists only on supported architectures and
//     vanishes under the `purego` build tag (stubs_noasm.go aliases every
//     SIMD entry point to its Go twin);
//   - run time: simdAvailable is probed once at startup (CPUID on amd64; no
//     third-party cpu package), the WLANSIM_SIMD environment variable can
//     veto it, and SetDispatch flips the active path so differential tests
//     force both.
//
// useSIMD is a plain bool read on every kernel call: flipping it is not
// synchronized and is meant for startup and for tests that own all kernel
// callers, not for concurrent toggling mid-run.
var useSIMD = simdAvailable && envSIMDEnabled()

// envSIMDEnabled consults the WLANSIM_SIMD environment variable: "off", "0"
// and "false" force the pure-Go tier; anything else (including unset) keeps
// the probed default.
func envSIMDEnabled() bool {
	switch os.Getenv("WLANSIM_SIMD") {
	case "off", "0", "false":
		return false
	}
	return true
}

// SIMDAvailable reports whether this binary carries an assembly kernel tier
// usable on this CPU (regardless of whether it is currently selected).
func SIMDAvailable() bool { return simdAvailable }

// SetDispatch selects the kernel tier: on requests the SIMD tier (granted
// only when available), false forces the pure-Go tier. It returns the name
// of the tier now active, and is intended for startup configuration and for
// differential tests that must exercise both paths — it is not safe to call
// concurrently with running kernels.
func SetDispatch(on bool) string {
	useSIMD = on && simdAvailable
	return DispatchName()
}

// DispatchName names the active kernel tier: the architecture tier ("avx2")
// when SIMD is selected, "purego" otherwise.
func DispatchName() string {
	if useSIMD {
		return simdTier
	}
	return "purego"
}

// SIMDWidth returns the number of independent float64 chains one vector of
// the active tier carries: 4 on AVX2, 1 on the pure-Go tier. Batch schedulers
// use it to round batch widths up to a multiple of the vector width.
func SIMDWidth() int {
	if useSIMD {
		return simdWidth
	}
	return 1
}
