//go:build amd64 && !purego

#include "textflag.h"

// func cpuHasAVX2() bool
//
// AVX2 usability requires all of:
//   - CPUID.0 max basic leaf >= 7 (leaf 7 exists at all);
//   - CPUID.1:ECX bit 27 (OSXSAVE) and bit 28 (AVX);
//   - XGETBV(0) XCR0 bits 1 and 2 (the OS saves xmm and ymm state);
//   - CPUID.7.0:EBX bit 5 (AVX2).
TEXT ·cpuHasAVX2(SB), NOSPLIT, $0-1
	// Max basic leaf.
	XORL AX, AX
	CPUID
	CMPL AX, $7
	JL   no

	// OSXSAVE + AVX.
	MOVL $1, AX
	CPUID
	MOVL CX, R8
	ANDL $(1<<27 | 1<<28), R8
	CMPL R8, $(1<<27 | 1<<28)
	JNE  no

	// XCR0: xmm (bit 1) and ymm (bit 2) state enabled by the OS.
	XORL CX, CX
	XGETBV
	ANDL $6, AX
	CMPL AX, $6
	JNE  no

	// AVX2.
	MOVL $7, AX
	XORL CX, CX
	CPUID
	ANDL $(1<<5), BX
	JZ   no

	MOVB $1, ret+0(FP)
	RET

no:
	MOVB $0, ret+0(FP)
	RET
