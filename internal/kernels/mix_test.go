package kernels

import (
	"math"
	"math/rand"
	"testing"
)

// TestMixApplyMatchesRef drives the in-place mix kernels and their
// references over random and adversarial frames, asserting bit equality.
func TestMixApplyMatchesRef(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(40)
		adv := trial%2 == 1
		xr := make([]float64, n)
		xi := make([]float64, n)
		firRandVals(rng, xr, adv)
		firRandVals(rng, xi, adv)
		lor := make([]float64, n)
		loi := make([]float64, n)
		firRandVals(rng, lor, adv)
		firRandVals(rng, loi, adv)
		mur, mui := rng.NormFloat64(), rng.NormFloat64()
		nur, nui := rng.NormFloat64(), rng.NormFloat64()
		g := rng.NormFloat64()
		dcr, dci := rng.NormFloat64(), 0.0
		if trial%3 == 0 {
			dcr, dci = 0, 0 // the common DC-disabled case must still add
		}

		ar := append([]float64(nil), xr...)
		ai := append([]float64(nil), xi...)
		br := append([]float64(nil), xr...)
		bi := append([]float64(nil), xi...)
		MixApplyLO(ar, ai, lor, loi, mur, mui, nur, nui, g, dcr, dci)
		MixApplyLORef(br, bi, lor, loi, mur, mui, nur, nui, g, dcr, dci)
		bitsEqual(t, "lo re", ar, br)
		bitsEqual(t, "lo im", ai, bi)

		copy(ar, xr)
		copy(ai, xi)
		copy(br, xr)
		copy(bi, xi)
		MixApply(ar, ai, mur, mui, nur, nui, g, dcr, dci)
		MixApplyRef(br, bi, mur, mui, nur, nui, g, dcr, dci)
		bitsEqual(t, "re", ar, br)
		bitsEqual(t, "im", ai, bi)
	}
}

// TestMixApplyMatchesComplexForm pins the kernels' scalar schedule to Go's
// complex128 lowering of the mixer expression they replace.
func TestMixApplyMatchesComplexForm(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const n = 64
	x := make([]complex128, n)
	lo := make([]complex128, n)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		lo[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	mu := complex(rng.NormFloat64(), rng.NormFloat64())
	nu := complex(rng.NormFloat64(), rng.NormFloat64())
	g := rng.NormFloat64()
	dc := complex(rng.NormFloat64(), rng.NormFloat64())

	var v Vec
	var loV Vec
	v.From(x)
	loV.From(lo)
	MixApplyLO(v.Re, v.Im, loV.Re, loV.Im,
		real(mu), imag(mu), real(nu), imag(nu), g, real(dc), imag(dc))

	for i, xv := range x {
		y := mu*xv + nu*complex(real(xv), -imag(xv))
		y *= lo[i]
		y = complex(g*real(y), g*imag(y))
		y += dc
		if math.Float64bits(v.Re[i]) != math.Float64bits(real(y)) ||
			math.Float64bits(v.Im[i]) != math.Float64bits(imag(y)) {
			t.Fatalf("sample %d: kernel (%g,%g) != complex form (%g,%g)",
				i, v.Re[i], v.Im[i], real(y), imag(y))
		}
	}
}

// TestLOTableFillMatchesRef checks the table walk against the exact Sincos
// reference across ratios, including negative and non-reduced ones, and
// across frame-boundary positions.
func TestLOTableFillMatchesRef(t *testing.T) {
	cases := []struct{ k, n int }{
		{1, 8}, {3, 8}, {-1, 8}, {5, 64}, {7, 3}, {2, 6}, {0, 4}, {255, 256},
	}
	for _, c := range cases {
		tab := NewLOTable(c.k, c.n)
		re := make([]float64, 23)
		im := make([]float64, 23)
		abs := 0
		for frame := 0; frame < 7; frame++ {
			tab.Fill(re, im)
			for i := range re {
				wr, wi := tab.PhasorRef(abs)
				if math.Float64bits(re[i]) != math.Float64bits(wr) ||
					math.Float64bits(im[i]) != math.Float64bits(wi) {
					t.Fatalf("k/n=%d/%d sample %d: (%g,%g) != ref (%g,%g)",
						c.k, c.n, abs, re[i], im[i], wr, wi)
				}
				abs++
			}
		}
		tab.Reset()
		tab.Fill(re[:1], im[:1])
		wr, wi := tab.PhasorRef(0)
		if re[0] != wr || im[0] != wi {
			t.Fatalf("k/n=%d/%d: Reset did not rewind to sample 0", c.k, c.n)
		}
	}
}

func BenchmarkMixApplyLO(b *testing.B) {
	rng := rand.New(rand.NewSource(8))
	const n = 1024
	xr := make([]float64, n)
	xi := make([]float64, n)
	lor := make([]float64, n)
	loi := make([]float64, n)
	firRandVals(rng, xr, false)
	firRandVals(rng, xi, false)
	firRandVals(rng, lor, false)
	firRandVals(rng, loi, false)
	b.SetBytes(n * 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MixApplyLO(xr, xi, lor, loi, 0.9, 0.05, 0.02, -0.01, 1.1, 0, 0)
	}
}
