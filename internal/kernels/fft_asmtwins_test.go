//go:build amd64 && !purego

package kernels

import (
	"math"
	"math/rand"
	"testing"
)

// Differential suite for the FFT-engine assembly tier: each stub is driven
// directly against its pure-Go twin on random and adversarial inputs under
// the stub's preconditions (quad shapes, positive lengths). The exported
// kernels' ragged tails and half < 4 fallbacks are covered by the
// both-tiers suite in fft_equiv_test.go.

// twinStageTwiddles builds a twiddle plane pair of length half: unit-circle
// values plus adversarial bit patterns when requested.
func twinStageTwiddles(rng *rand.Rand, half int, adversarial bool) (wr, wi []float64) {
	wr = make([]float64, half)
	wi = make([]float64, half)
	for k := range wr {
		ang := -2 * math.Pi * float64(k) / float64(2*half)
		wi[k], wr[k] = math.Sincos(ang)
		if adversarial && rng.Intn(8) == 0 {
			wr[k] = math.Inf(1 - 2*rng.Intn(2))
			wi[k] = math.NaN()
		}
	}
	return wr, wi
}

func TestFFTStageAsmMatchesGo(t *testing.T) {
	requireAsmTier(t)
	rng := rand.New(rand.NewSource(41))
	for _, half := range []int{4, 8, 16, 32} {
		for _, blocks := range []int{1, 2, 3} {
			for trial := 0; trial < 6; trial++ {
				adv := trial%2 == 1
				n := 2 * half * blocks
				wr, wi := twinStageTwiddles(rng, half, adv)
				re := twinRandPlane(rng, n, adv)
				im := twinRandPlane(rng, n, adv)
				re2 := append([]float64(nil), re...)
				im2 := append([]float64(nil), im...)
				fftStageAsm(re, im, wr, wi, half)
				fftStageGo(re2, im2, wr, wi, half)
				bitsEqual(t, "re", re, re2)
				bitsEqual(t, "im", im, im2)
			}
		}
	}
}

func TestFFTStageX4AsmMatchesGo(t *testing.T) {
	requireAsmTier(t)
	rng := rand.New(rand.NewSource(42))
	for _, half := range []int{1, 2, 4, 8, 16} {
		for _, blocks := range []int{1, 2, 3} {
			for trial := 0; trial < 6; trial++ {
				adv := trial%2 == 1
				n := 4 * 2 * half * blocks
				wr, wi := twinStageTwiddles(rng, half, adv)
				re := twinRandPlane(rng, n, adv)
				im := twinRandPlane(rng, n, adv)
				re2 := append([]float64(nil), re...)
				im2 := append([]float64(nil), im...)
				fftStageX4Asm(re, im, wr, wi, half)
				fftStageX4Go(re2, im2, wr, wi, half)
				bitsEqual(t, "re", re, re2)
				bitsEqual(t, "im", im, im2)
			}
		}
	}
}

func TestFFTPermuteAsmMatchesGo(t *testing.T) {
	requireAsmTier(t)
	rng := rand.New(rand.NewSource(43))
	for _, n := range []int{4, 8, 64, 256} {
		for trial := 0; trial < 8; trial++ {
			src := twinRandPlane(rng, n+3, trial%2 == 1)
			idx := make([]int64, n)
			for i := range idx {
				idx[i] = int64(rng.Intn(len(src)))
			}
			dst := make([]float64, n)
			dst2 := make([]float64, n)
			fftPermuteAsm(dst, src, idx)
			fftPermuteGo(dst2, src, idx)
			bitsEqual(t, "dst", dst, dst2)
		}
	}
}

func TestScaleCplxAsmMatchesGo(t *testing.T) {
	requireAsmTier(t)
	rng := rand.New(rand.NewSource(44))
	scales := []float64{1.0 / 64, 64 / 7.211102550927978, 0, math.Copysign(0, -1),
		math.Inf(1), math.NaN(), -1e308, math.SmallestNonzeroFloat64}
	for _, n := range []int{4, 16, 64} {
		for trial := 0; trial < 8; trial++ {
			adv := trial%2 == 1
			s := scales[trial%len(scales)]
			re := twinRandPlane(rng, n, adv)
			im := twinRandPlane(rng, n, adv)
			re2 := append([]float64(nil), re...)
			im2 := append([]float64(nil), im...)
			scaleCplxAsm(re, im, s)
			scaleCplxGo(re2, im2, s)
			bitsEqual(t, "re", re, re2)
			bitsEqual(t, "im", im, im2)
		}
	}
}

func TestMulCplxAsmMatchesGo(t *testing.T) {
	requireAsmTier(t)
	rng := rand.New(rand.NewSource(45))
	for _, n := range []int{4, 16, 128} {
		for trial := 0; trial < 8; trial++ {
			adv := trial%2 == 1
			ar := twinRandPlane(rng, n, adv)
			ai := twinRandPlane(rng, n, adv)
			br := twinRandPlane(rng, n, adv)
			bi := twinRandPlane(rng, n, adv)
			ar2 := append([]float64(nil), ar...)
			ai2 := append([]float64(nil), ai...)
			mulCplxAsm(ar, ai, br, bi)
			mulCplxGo(ar2, ai2, br, bi)
			bitsEqual(t, "re", ar, ar2)
			bitsEqual(t, "im", ai, ai2)
		}
	}
}
