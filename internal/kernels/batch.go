package kernels

import "math"

// The batch kernels push B independent lanes — packets, or equal-config
// sweep points — through one kernel invocation in lock-step. The contract is
// the same bit-exactness bar as the scalar kernels, stated lane-wise: lane b
// of every batch kernel produces exactly the bits the corresponding scalar
// kernel produces on lane b alone, for every B including 1 and for ragged
// final batches (a ragged tail is just a smaller B). No operation ever mixes
// values across lanes, so the proof obligation per lane reduces to "same
// per-lane operation sequence as the scalar kernel", which the differential
// batch test suite pins on adversarial (NaN/±Inf) inputs as well.
//
// Two kernels do genuinely new lock-step work. ACSRunBatch runs one
// trellis-step loop updating B metric planes, keeping the branch-sign tables
// and decision machinery hot across lanes. BiquadBatch lane-interleaves a
// latency-bound IIR recurrence: the scalar biquad's ~3-add critical path per
// sample leaves the pipeline mostly idle, and B independent recurrences fill
// it (measured ~2x at B=8). The FIR and mixer batch kernels are
// amortization APIs: taps and LO planes are loaded once per batch and shared
// across lanes, which is what lets the caller materialize one stochastic LO
// trajectory per batch instead of one per lane.

// ACSRunBatch advances B independent trellises len(decisions[b]) steps in
// lock-step: one step loop updates all B metric planes before moving to step
// t+1. Lane b consumes soft[b][2t], soft[b][2t+1] at step t and stores its
// survivor bits in decisions[b][t]. All lanes must have the same step count.
// metric[b]/scratch[b] are lane b's ping-pong banks and clean is a
// caller-owned scratch of len B (contents ignored on entry); after the run,
// lane b's final metrics are in metric[b] when the step count is even and in
// scratch[b] when odd — the same parity ACSRun's returned pointer encodes.
//
// Each lane is bit-identical to ACSRun on that lane alone: the per-step
// body, including the non-finite fallback to ACSStepRef and its permanent
// per-lane latching, is the same code in the same order; steps of other
// lanes touch disjoint banks.
//
//lint:hotpath
func ACSRunBatch(decisions [][]uint64, soft [][]float64, metric, scratch []*[64]float64, clean []bool) {
	if len(decisions) == 0 {
		return
	}
	steps := len(decisions[0])
	for b := range clean {
		clean[b] = true
	}
	for t := 0; t < steps; t++ {
		for b := range decisions {
			cur, next := metric[b], scratch[b]
			if t&1 == 1 {
				cur, next = next, cur
			}
			mA, mB := soft[b][2*t], soft[b][2*t+1]
			if clean[b] && !math.IsNaN(mA) && !math.IsInf(mA, 0) && !math.IsNaN(mB) && !math.IsInf(mB, 0) {
				decisions[b][t] = acsStep(next, cur, mA, mB)
			} else {
				clean[b] = false
				decisions[b][t] = ACSStepRef(next, cur, mA, mB)
			}
		}
	}
}

// FIRRealBatch filters B planar extended inputs with one shared real tap
// set, loading the taps once per batch. Lane b is bit-identical to
// FIRReal(yr[b], yi[b], xr[b], xi[b], taps).
//
//lint:hotpath
func FIRRealBatch(yr, yi, xr, xi [][]float64, taps []float64) {
	for b := range yr {
		FIRReal(yr[b], yi[b], xr[b], xi[b], taps)
	}
}

// FIRCplxBatch filters B planar extended inputs with one shared complex tap
// set. Lane b is bit-identical to FIRCplx(yr[b], yi[b], xr[b], xi[b], tr, ti).
//
//lint:hotpath
func FIRCplxBatch(yr, yi, xr, xi [][]float64, tr, ti []float64) {
	for b := range yr {
		FIRCplx(yr[b], yi[b], xr[b], xi[b], tr, ti)
	}
}

// MixApplyLOBatch applies the mixer frame pass to B planar frames sharing
// one materialized LO trajectory — the amortization that lets a batched
// front end draw the stochastic LO once per batch. Lane b is bit-identical
// to MixApplyLO on that lane with the same planes.
//
//lint:hotpath
func MixApplyLOBatch(xr, xi [][]float64, lor, loi []float64, mur, mui, nur, nui, g, dcr, dci float64) {
	for b := range xr {
		MixApplyLO(xr[b], xi[b], lor, loi, mur, mui, nur, nui, g, dcr, dci)
	}
}

// MixApplyBatch applies the LO-free mixer frame pass to B planar frames.
// Lane b is bit-identical to MixApply on that lane.
//
//lint:hotpath
func MixApplyBatch(xr, xi [][]float64, mur, mui, nur, nui, g, dcr, dci float64) {
	for b := range xr {
		MixApply(xr[b], xi[b], mur, mui, nur, nui, g, dcr, dci)
	}
}

// BiquadBatch advances one direct-form-II-transposed biquad section over B
// planar lanes in lock-step, sample-major: the B recurrences are independent,
// so interleaving them fills the pipeline stalls of the scalar section's
// latency-bound update chain. s1r/s1i/s2r/s2i hold lane b's two delay states
// at index b and are updated in place. Lane b is bit-identical to
// BiquadBatchRef on that lane alone: the per-sample update is the same five
// multiplies and four adds in the same order, and lanes never mix.
//
//lint:hotpath
func BiquadBatch(re, im [][]float64, b0, b1, b2, a1, a2 float64, s1r, s1i, s2r, s2i []float64) {
	if useSIMD {
		biquadBatchSIMD(re, im, b0, b1, b2, a1, a2, s1r, s1i, s2r, s2i)
		return
	}
	biquadBatchGo(re, im, b0, b1, b2, a1, a2, s1r, s1i, s2r, s2i)
}

// biquadBatchGo is the pure-Go tier of BiquadBatch: lane pairs with the four
// recurrences in registers, single-lane remainder.
//
//lint:hotpath
func biquadBatchGo(re, im [][]float64, b0, b1, b2, a1, a2 float64, s1r, s1i, s2r, s2i []float64) {
	b := 0
	for ; b+2 <= len(re); b += 2 {
		biquadPair(re[b], im[b], re[b+1], im[b+1], b0, b1, b2, a1, a2, s1r[b:], s1i[b:], s2r[b:], s2i[b:])
	}
	if b < len(re) {
		biquadLane(re[b], im[b], b0, b1, b2, a1, a2, s1r[b:], s1i[b:], s2r[b:], s2i[b:])
	}
}

// biquadQuadGo advances four lanes as two register-resident pairs. It is the
// pure-Go twin of biquadQuadAsm, which runs the same four recurrences one
// lane per ymm vector lane with the per-lane update order unchanged; both
// advance lane b exactly as biquadLane would.
//
//lint:hotpath
func biquadQuadGo(re, im [][]float64, b0, b1, b2, a1, a2 float64, s1r, s1i, s2r, s2i []float64) {
	biquadPair(re[0], im[0], re[1], im[1], b0, b1, b2, a1, a2, s1r, s1i, s2r, s2i)
	biquadPair(re[2], im[2], re[3], im[3], b0, b1, b2, a1, a2, s1r[2:], s1i[2:], s2r[2:], s2i[2:])
}

// biquadPair advances two lanes (four independent recurrences) with all four
// delay-state pairs held in registers across the sample loop. Each lane's
// per-sample update is the exact scalar sequence; the two lanes never mix.
//
//lint:hotpath
func biquadPair(r0, i0, r1, i1 []float64, b0, b1, b2, a1, a2 float64, s1r, s1i, s2r, s2i []float64) {
	p1r, p1i, p2r, p2i := s1r[0], s1i[0], s2r[0], s2i[0]
	q1r, q1i, q2r, q2i := s1r[1], s1i[1], s2r[1], s2i[1]
	i1 = i1[:len(r0)]
	r1 = r1[:len(r0)]
	i0 = i0[:len(r0)]
	for k := range r0 {
		xr0, xi0 := r0[k], i0[k]
		xr1, xi1 := r1[k], i1[k]
		yr0 := b0*xr0 + p1r
		yi0 := b0*xi0 + p1i
		yr1 := b0*xr1 + q1r
		yi1 := b0*xi1 + q1i
		p1r = b1*xr0 - a1*yr0 + p2r
		p1i = b1*xi0 - a1*yi0 + p2i
		q1r = b1*xr1 - a1*yr1 + q2r
		q1i = b1*xi1 - a1*yi1 + q2i
		p2r = b2*xr0 - a2*yr0
		p2i = b2*xi0 - a2*yi0
		q2r = b2*xr1 - a2*yr1
		q2i = b2*xi1 - a2*yi1
		r0[k] = yr0
		i0[k] = yi0
		r1[k] = yr1
		i1[k] = yi1
	}
	s1r[0], s1i[0], s2r[0], s2i[0] = p1r, p1i, p2r, p2i
	s1r[1], s1i[1], s2r[1], s2i[1] = q1r, q1i, q2r, q2i
}

// biquadLane advances the single remaining lane with its states in
// registers — the scalar recurrence, bit-identical per sample to the pair
// kernel's per-lane update.
//
//lint:hotpath
func biquadLane(r0, i0 []float64, b0, b1, b2, a1, a2 float64, s1r, s1i, s2r, s2i []float64) {
	p1r, p1i, p2r, p2i := s1r[0], s1i[0], s2r[0], s2i[0]
	i0 = i0[:len(r0)]
	for k := range r0 {
		xr0, xi0 := r0[k], i0[k]
		yr0 := b0*xr0 + p1r
		yi0 := b0*xi0 + p1i
		p1r = b1*xr0 - a1*yr0 + p2r
		p1i = b1*xi0 - a1*yi0 + p2i
		p2r = b2*xr0 - a2*yr0
		p2i = b2*xi0 - a2*yi0
		r0[k] = yr0
		i0[k] = yi0
	}
	s1r[0], s1i[0], s2r[0], s2i[0] = p1r, p1i, p2r, p2i
}

// BiquadBatchRef is the retained naive reference for BiquadBatch: one lane
// at a time through the textbook transposed direct-form-II update. It is the
// differential-test oracle and must stay semantically frozen; it is also, by
// construction, the arithmetic of dsp.Biquad applied lane-wise.
func BiquadBatchRef(re, im [][]float64, b0, b1, b2, a1, a2 float64, s1r, s1i, s2r, s2i []float64) {
	for b := range re {
		for i := range re[b] {
			xr, xi := re[b][i], im[b][i]
			yr := b0*xr + s1r[b]
			yi := b0*xi + s1i[b]
			s1r[b] = b1*xr - a1*yr + s2r[b]
			s1i[b] = b1*xi - a1*yi + s2i[b]
			s2r[b] = b2*xr - a2*yr
			s2i[b] = b2*xi - a2*yi
			re[b][i] = yr
			im[b][i] = yi
		}
	}
}
