package kernels

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
)

// Both-tiers differential suite for the exported FFT-engine kernels: every
// entry point is run under SIMD dispatch on and off (no build tag — the
// purego CI job runs this file too, where both tiers are the Go twin) and
// compared bit for bit against the frozen references, including the ragged
// shapes the SIMD wrappers route to scalar tails or the Go twin outright.
// The composed-transform test additionally pins the planar butterfly
// arithmetic to a scalar complex128 radix-2 loop — the compiler's own
// complex multiply lowering — on Gaussian and adversarial inputs.

// fftRestoreDispatch reverts any SetDispatch flips when the test ends.
func fftRestoreDispatch(t *testing.T) {
	t.Helper()
	prev := DispatchName() != "purego"
	t.Cleanup(func() { SetDispatch(prev) })
}

// fftRandPlane fills a plane with Gaussian values plus occasional
// adversarial bit patterns when requested.
func fftRandPlane(rng *rand.Rand, n int, adversarial bool) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = rng.NormFloat64()
		if adversarial {
			switch rng.Intn(24) {
			case 0:
				out[i] = math.NaN()
			case 1:
				out[i] = math.Inf(1)
			case 2:
				out[i] = math.Inf(-1)
			case 3:
				out[i] = math.SmallestNonzeroFloat64
			case 4:
				out[i] = -1e308
			}
		}
	}
	return out
}

// fftStageTwiddles builds the per-stage twiddle planes for an n-point
// forward transform stage of the given half size: w_k = e^{-2πik/(2·half)}.
func fftStageTwiddles(half int) (wr, wi []float64) {
	wr = make([]float64, half)
	wi = make([]float64, half)
	for k := range wr {
		w := cmplx.Exp(complex(0, -2*math.Pi*float64(k)/float64(2*half)))
		wr[k], wi[k] = real(w), imag(w)
	}
	return wr, wi
}

func TestExportedFFTKernelsMatchRefBothTiers(t *testing.T) {
	fftRestoreDispatch(t)
	rng := rand.New(rand.NewSource(51))
	for _, simd := range []bool{true, false} {
		SetDispatch(simd)

		// FFTStage: power-of-two halves exercise the vector body, the
		// rest the Go fallback inside the SIMD wrapper.
		for _, half := range []int{1, 2, 3, 4, 6, 8, 16, 32} {
			for _, blocks := range []int{1, 2, 3} {
				for trial := 0; trial < 4; trial++ {
					adv := trial%2 == 1
					n := 2 * half * blocks
					wr, wi := fftStageTwiddles(half)
					re := fftRandPlane(rng, n, adv)
					im := fftRandPlane(rng, n, adv)
					re2 := append([]float64(nil), re...)
					im2 := append([]float64(nil), im...)
					FFTStage(re, im, wr, wi, half)
					FFTStageRef(re2, im2, wr, wi, half)
					bitsEqual(t, "stage re", re, re2)
					bitsEqual(t, "stage im", im, im2)

					re = fftRandPlane(rng, 4*n, adv)
					im = fftRandPlane(rng, 4*n, adv)
					re2 = append([]float64(nil), re...)
					im2 = append([]float64(nil), im...)
					FFTStageX4(re, im, wr, wi, half)
					FFTStageX4Ref(re2, im2, wr, wi, half)
					bitsEqual(t, "stagex4 re", re, re2)
					bitsEqual(t, "stagex4 im", im, im2)
				}
			}
		}

		// Permute / ScaleCplx / MulCplx over ragged lengths (scalar
		// tails) and quad lengths (vector body).
		for _, n := range []int{1, 3, 4, 5, 17, 64} {
			for trial := 0; trial < 4; trial++ {
				adv := trial%2 == 1

				src := fftRandPlane(rng, n+5, adv)
				idx := make([]int64, n)
				for i := range idx {
					idx[i] = int64(rng.Intn(len(src)))
				}
				dst := make([]float64, n)
				dst2 := make([]float64, n)
				FFTPermute(dst, src, idx)
				FFTPermuteRef(dst2, src, idx)
				bitsEqual(t, "permute", dst, dst2)

				s := []float64{1.0 / 64, 0, math.Inf(-1), math.NaN()}[trial%4]
				re := fftRandPlane(rng, n, adv)
				im := fftRandPlane(rng, n, adv)
				re2 := append([]float64(nil), re...)
				im2 := append([]float64(nil), im...)
				ScaleCplx(re, im, s)
				ScaleCplxRef(re2, im2, s)
				bitsEqual(t, "scalecplx re", re, re2)
				bitsEqual(t, "scalecplx im", im, im2)

				ar := fftRandPlane(rng, n, adv)
				ai := fftRandPlane(rng, n, adv)
				br := fftRandPlane(rng, n, adv)
				bi := fftRandPlane(rng, n, adv)
				ar2 := append([]float64(nil), ar...)
				ai2 := append([]float64(nil), ai...)
				MulCplx(ar, ai, br, bi)
				MulCplxRef(ar2, ai2, br, bi)
				bitsEqual(t, "mulcplx re", ar, ar2)
				bitsEqual(t, "mulcplx im", ai, ai2)
			}
		}
	}
}

// fftBitrevIndex builds the bit-reversal permutation table for size n.
func fftBitrevIndex(n int) []int64 {
	idx := make([]int64, n)
	for i, j := 0, 0; i < n; i++ {
		idx[i] = int64(j)
		bit := n >> 1
		for ; j&bit != 0; bit >>= 1 {
			j ^= bit
		}
		j |= bit
	}
	return idx
}

// fftScalarOracle is a scalar complex128 radix-2 DIT transform over the
// same bit-reversal table and per-stage twiddles the planar path uses: the
// butterfly product b*w is written as a native complex128 multiply, so the
// comparison pins the planar kernels to the compiler's own lowering —
// including NaN/±Inf propagation through the zero-product terms.
func fftScalarOracle(x []complex128, idx []int64) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	for i, j := range idx {
		out[i] = x[j]
	}
	for half := 1; half < n; half *= 2 {
		wr, wi := fftStageTwiddles(half)
		for base := 0; base < n; base += 2 * half {
			for k := 0; k < half; k++ {
				w := complex(wr[k], wi[k])
				a := out[base+k]
				b := out[base+k+half] * w
				out[base+k] = a + b
				out[base+k+half] = a - b
			}
		}
	}
	return out
}

// TestFFTComposedMatchesComplexTransform composes the planar kernels into
// full transforms (permute, then every stage) and asserts bit equality with
// the scalar complex128 oracle on Gaussian and adversarial frames, under
// both dispatch tiers.
func TestFFTComposedMatchesComplexTransform(t *testing.T) {
	fftRestoreDispatch(t)
	rng := rand.New(rand.NewSource(53))
	for _, simd := range []bool{true, false} {
		SetDispatch(simd)
		for _, n := range []int{2, 8, 64, 256} {
			idx := fftBitrevIndex(n)
			for trial := 0; trial < 8; trial++ {
				adv := trial%2 == 1
				x := make([]complex128, n)
				for i := range x {
					x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
				}
				if adv {
					for i := range x {
						if rng.Intn(16) == 0 {
							x[i] = complex(math.Inf(1), math.NaN())
						}
					}
				}
				want := fftScalarOracle(x, idx)

				sre := make([]float64, n)
				sim := make([]float64, n)
				pre := make([]float64, n)
				pim := make([]float64, n)
				Deinterleave(sre, sim, x)
				FFTPermute(pre, sre, idx)
				FFTPermute(pim, sim, idx)
				for half := 1; half < n; half *= 2 {
					wr, wi := fftStageTwiddles(half)
					FFTStage(pre, pim, wr, wi, half)
				}
				got := make([]complex128, n)
				Interleave(got, pre, pim)
				for i := range got {
					gr, gi := real(got[i]), imag(got[i])
					wr, wi := real(want[i]), imag(want[i])
					if math.IsNaN(gr) && math.IsNaN(wr) {
						gr, wr = 0, 0
					}
					if math.IsNaN(gi) && math.IsNaN(wi) {
						gi, wi = 0, 0
					}
					if math.Float64bits(gr) != math.Float64bits(wr) ||
						math.Float64bits(gi) != math.Float64bits(wi) {
						t.Fatalf("tier %s n=%d trial %d bin %d: planar %v != oracle %v",
							DispatchName(), n, trial, i, got[i], want[i])
					}
				}
			}
		}
	}
}

// TestFFTStageX4MatchesFourSingles packs four independent frames into the
// lane-interleaved layout, runs the X4 stage pipeline, unpacks, and asserts
// each lane is bit-identical to the single-transform planar pipeline on the
// same frame — the invariant that makes batched transforms byte-identical
// to sequential ones. Both dispatch tiers.
func TestFFTStageX4MatchesFourSingles(t *testing.T) {
	fftRestoreDispatch(t)
	rng := rand.New(rand.NewSource(54))
	for _, simd := range []bool{true, false} {
		SetDispatch(simd)
		for _, n := range []int{8, 64, 128} {
			idx := fftBitrevIndex(n)
			for trial := 0; trial < 6; trial++ {
				adv := trial%2 == 1
				frames := make([][]complex128, 4)
				singles := make([][]complex128, 4)
				for l := range frames {
					frames[l] = make([]complex128, n)
					for i := range frames[l] {
						frames[l][i] = complex(rng.NormFloat64(), rng.NormFloat64())
						if adv && rng.Intn(16) == 0 {
							frames[l][i] = complex(math.Inf(-1), math.NaN())
						}
					}
					singles[l] = append([]complex128(nil), frames[l]...)
				}

				// Lane-interleaved pipeline.
				qre := make([]float64, 4*n)
				qim := make([]float64, 4*n)
				FFTPackX4(qre, qim, frames, idx)
				for half := 1; half < n; half *= 2 {
					wr, wi := fftStageTwiddles(half)
					FFTStageX4(qre, qim, wr, wi, half)
				}
				FFTUnpackX4(frames, qre, qim)

				// Four independent single-transform pipelines.
				for l := range singles {
					sre := make([]float64, n)
					sim := make([]float64, n)
					pre := make([]float64, n)
					pim := make([]float64, n)
					Deinterleave(sre, sim, singles[l])
					FFTPermute(pre, sre, idx)
					FFTPermute(pim, sim, idx)
					for half := 1; half < n; half *= 2 {
						wr, wi := fftStageTwiddles(half)
						FFTStage(pre, pim, wr, wi, half)
					}
					Interleave(singles[l], pre, pim)
				}

				for l := range frames {
					for i := range frames[l] {
						g, w := frames[l][i], singles[l][i]
						gr, gi := real(g), imag(g)
						wr, wi := real(w), imag(w)
						if math.IsNaN(gr) && math.IsNaN(wr) {
							gr, wr = 0, 0
						}
						if math.IsNaN(gi) && math.IsNaN(wi) {
							gi, wi = 0, 0
						}
						if math.Float64bits(gr) != math.Float64bits(wr) ||
							math.Float64bits(gi) != math.Float64bits(wi) {
							t.Fatalf("tier %s n=%d lane %d bin %d: x4 %v != single %v",
								DispatchName(), n, l, i, g, w)
						}
					}
				}
			}
		}
	}
}
