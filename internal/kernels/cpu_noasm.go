//go:build !amd64 || purego

package kernels

// Builds without an assembly tier (non-amd64 architectures, or any build
// with the purego tag) run the pure-Go kernels unconditionally; the tier
// name below is never surfaced because DispatchName reports "purego"
// whenever useSIMD is false.
const (
	simdTier  = "purego"
	simdWidth = 1
)

var simdAvailable = false
