package kernels

import (
	"math"
	"math/rand"
	"testing"
)

// The batch differential suite pins every batch kernel batch≡sequential at
// the bit level: lane b of the batch call must equal the scalar kernel run
// on lane b alone, across widths B ∈ {1..8, 16} (a ragged final batch is a
// smaller B, so the sweep over widths covers tails) and across adversarial
// NaN/±Inf inputs, reusing the scalar harness's generators.

var batchWidths = []int{1, 2, 3, 4, 5, 6, 7, 8, 16}

// fillPlanes fills B lane planes with Gaussian values, optionally salted
// with NaN/±Inf like acsRandSoft.
func fillPlanes(rng *rand.Rand, lanes [][]float64, adversarial bool) {
	for _, l := range lanes {
		acsRandSoft(rng, l, adversarial)
	}
}

func makePlanes(b, n int) [][]float64 {
	p := make([][]float64, b)
	for i := range p {
		p[i] = make([]float64, n)
	}
	return p
}

func clonePlanes(src [][]float64) [][]float64 {
	dst := make([][]float64, len(src))
	for i := range src {
		dst[i] = append([]float64(nil), src[i]...)
	}
	return dst
}

// bitsEqualLane is bitsEqual with the lane index in the failure message; it
// inherits the same NaN-payload equivalence (a NaN must be NaN in both
// kernels, but its payload bits are unspecified — see bitsEqual).
func bitsEqualLane(t *testing.T, name string, lane int, got, want []float64) {
	t.Helper()
	for i := range got {
		if math.IsNaN(got[i]) && math.IsNaN(want[i]) {
			continue
		}
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("%s lane %d sample %d: %x != sequential %x", name, lane, i,
				math.Float64bits(got[i]), math.Float64bits(want[i]))
		}
	}
}

// TestACSRunBatchMatchesSequential runs the lock-step batched trellis and B
// independent sequential ACSRun calls over the same per-lane streams,
// asserting bit equality of every decision word and final metric, with the
// final-bank parity rule checked against ACSRun's returned pointer.
func TestACSRunBatchMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, B := range batchWidths {
		for trial := 0; trial < 40; trial++ {
			steps := 1 + rng.Intn(96)
			adversarial := trial%2 == 1

			soft := makePlanes(B, 2*steps)
			fillPlanes(rng, soft, adversarial)

			decBatch := make([][]uint64, B)
			decSeq := make([][]uint64, B)
			metric := make([]*[64]float64, B)
			scratch := make([]*[64]float64, B)
			clean := make([]bool, B)
			finalSeq := make([]*[64]float64, B)
			for b := 0; b < B; b++ {
				decBatch[b] = make([]uint64, steps)
				decSeq[b] = make([]uint64, steps)
				metric[b] = new([64]float64)
				scratch[b] = new([64]float64)
				acsInitBank(metric[b])

				var m, s [64]float64
				acsInitBank(&m)
				finalSeq[b] = &[64]float64{}
				*finalSeq[b] = *ACSRun(decSeq[b], soft[b], &m, &s)
			}

			ACSRunBatch(decBatch, soft, metric, scratch, clean)

			for b := 0; b < B; b++ {
				for i := range decBatch[b] {
					if decBatch[b][i] != decSeq[b][i] {
						t.Fatalf("B=%d trial %d lane %d step %d: decision %#x != sequential %#x",
							B, trial, b, i, decBatch[b][i], decSeq[b][i])
					}
				}
				finalBatch := metric[b]
				if steps%2 == 1 {
					finalBatch = scratch[b]
				}
				bitsEqualLane(t, "metric", b, finalBatch[:], finalSeq[b][:])
			}
		}
	}
}

// TestFIRBatchMatchesSequential checks both FIR batch kernels lane-for-lane
// against per-lane scalar calls, over random tap counts including the
// single-tap degenerate shape and unroll tails, with adversarial values.
func TestFIRBatchMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for _, B := range batchWidths {
		for trial := 0; trial < 20; trial++ {
			tapN := 1 + rng.Intn(24)
			n := 1 + rng.Intn(70)
			extN := n + tapN - 1
			adversarial := trial%2 == 1

			taps := make([]float64, tapN)
			ti := make([]float64, tapN)
			acsRandSoft(rng, taps, adversarial)
			acsRandSoft(rng, ti, adversarial)

			xr := makePlanes(B, extN)
			xi := makePlanes(B, extN)
			fillPlanes(rng, xr, adversarial)
			fillPlanes(rng, xi, adversarial)

			gr, gi := makePlanes(B, n), makePlanes(B, n)
			wr, wi := make([]float64, n), make([]float64, n)

			FIRRealBatch(gr, gi, xr, xi, taps)
			for b := 0; b < B; b++ {
				FIRReal(wr, wi, xr[b], xi[b], taps)
				bitsEqualLane(t, "fir-real re", b, gr[b], wr)
				bitsEqualLane(t, "fir-real im", b, gi[b], wi)
			}

			FIRCplxBatch(gr, gi, xr, xi, taps, ti)
			for b := 0; b < B; b++ {
				FIRCplx(wr, wi, xr[b], xi[b], taps, ti)
				bitsEqualLane(t, "fir-cplx re", b, gr[b], wr)
				bitsEqualLane(t, "fir-cplx im", b, gi[b], wi)
			}
		}
	}
}

// TestMixBatchMatchesSequential checks the mixer frame batch kernels, with
// and without a shared LO trajectory, lane-for-lane against the scalar
// kernels, including adversarial lane contents.
func TestMixBatchMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, B := range batchWidths {
		for trial := 0; trial < 20; trial++ {
			n := 1 + rng.Intn(100)
			adversarial := trial%2 == 1
			mur, mui := rng.NormFloat64(), rng.NormFloat64()
			nur, nui := rng.NormFloat64(), rng.NormFloat64()
			g, dcr, dci := rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()

			lor := make([]float64, n)
			loi := make([]float64, n)
			acsRandSoft(rng, lor, false)
			acsRandSoft(rng, loi, false)

			xr := makePlanes(B, n)
			xi := makePlanes(B, n)
			fillPlanes(rng, xr, adversarial)
			fillPlanes(rng, xi, adversarial)

			gr, gi := clonePlanes(xr), clonePlanes(xi)
			MixApplyLOBatch(gr, gi, lor, loi, mur, mui, nur, nui, g, dcr, dci)
			for b := 0; b < B; b++ {
				wr := append([]float64(nil), xr[b]...)
				wi := append([]float64(nil), xi[b]...)
				MixApplyLO(wr, wi, lor, loi, mur, mui, nur, nui, g, dcr, dci)
				bitsEqualLane(t, "mix-lo re", b, gr[b], wr)
				bitsEqualLane(t, "mix-lo im", b, gi[b], wi)
			}

			gr, gi = clonePlanes(xr), clonePlanes(xi)
			MixApplyBatch(gr, gi, mur, mui, nur, nui, g, dcr, dci)
			for b := 0; b < B; b++ {
				wr := append([]float64(nil), xr[b]...)
				wi := append([]float64(nil), xi[b]...)
				MixApply(wr, wi, mur, mui, nur, nui, g, dcr, dci)
				bitsEqualLane(t, "mix re", b, gr[b], wr)
				bitsEqualLane(t, "mix im", b, gi[b], wi)
			}
		}
	}
}

// TestBiquadBatchMatchesRef drives the lane-interleaved biquad and its
// frozen lane-major reference over identical lanes, states and
// coefficients, asserting bit equality of every output sample and every
// final delay state — including NaN/±Inf lane contents, which each lane
// must propagate exactly as its own scalar recurrence would.
func TestBiquadBatchMatchesRef(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for _, B := range batchWidths {
		for trial := 0; trial < 20; trial++ {
			n := 1 + rng.Intn(200)
			adversarial := trial%2 == 1
			// Plausible-magnitude section coefficients; stability is
			// irrelevant to bit equality.
			b0, b1, b2 := rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()
			a1, a2 := rng.NormFloat64()*0.5, rng.NormFloat64()*0.5

			re := makePlanes(B, n)
			im := makePlanes(B, n)
			fillPlanes(rng, re, adversarial)
			fillPlanes(rng, im, adversarial)
			s1r, s1i := make([]float64, B), make([]float64, B)
			s2r, s2i := make([]float64, B), make([]float64, B)
			acsRandSoft(rng, s1r, false)
			acsRandSoft(rng, s1i, false)
			acsRandSoft(rng, s2r, false)
			acsRandSoft(rng, s2i, false)

			gre, gim := clonePlanes(re), clonePlanes(im)
			g1r := append([]float64(nil), s1r...)
			g1i := append([]float64(nil), s1i...)
			g2r := append([]float64(nil), s2r...)
			g2i := append([]float64(nil), s2i...)
			BiquadBatch(gre, gim, b0, b1, b2, a1, a2, g1r, g1i, g2r, g2i)

			wre, wim := clonePlanes(re), clonePlanes(im)
			BiquadBatchRef(wre, wim, b0, b1, b2, a1, a2, s1r, s1i, s2r, s2i)

			for b := 0; b < B; b++ {
				bitsEqualLane(t, "biquad re", b, gre[b], wre[b])
				bitsEqualLane(t, "biquad im", b, gim[b], wim[b])
			}
			bitsEqual(t, "biquad s1r", g1r, s1r)
			bitsEqual(t, "biquad s1i", g1i, s1i)
			bitsEqual(t, "biquad s2r", g2r, s2r)
			bitsEqual(t, "biquad s2i", g2i, s2i)
		}
	}
}

// TestBatchKernelsEmptyBatch pins the B=0 degenerate shape: a no-op, not a
// panic, so ragged dispatch logic upstream can stay branch-free.
func TestBatchKernelsEmptyBatch(t *testing.T) {
	ACSRunBatch(nil, nil, nil, nil, nil)
	FIRRealBatch(nil, nil, nil, nil, []float64{1})
	FIRCplxBatch(nil, nil, nil, nil, []float64{1}, []float64{0})
	MixApplyLOBatch(nil, nil, nil, nil, 1, 0, 0, 0, 1, 0, 0)
	MixApplyBatch(nil, nil, 1, 0, 0, 0, 1, 0, 0)
	BiquadBatch(nil, nil, 1, 0, 0, 0, 0, nil, nil, nil, nil)
	BiquadBatchRef(nil, nil, 1, 0, 0, 0, 0, nil, nil, nil, nil)
}

// benchBiquadBatch measures the lane-interleaved biquad against the
// lane-major reference at B=8 — the latency-bound recurrence the batch
// layer exists to fill.
func benchBiquadBatch(b *testing.B, run func(re, im [][]float64, b0, b1, b2, a1, a2 float64, s1r, s1i, s2r, s2i []float64)) {
	const B, n = 8, 4096
	rng := rand.New(rand.NewSource(11))
	src := makePlanes(B, 2*n) // one backing set: first B are re, next B are im
	fillPlanes(rng, src, false)
	re := makePlanes(B, n)
	im := makePlanes(B, n)
	s1r, s1i := make([]float64, B), make([]float64, B)
	s2r, s2i := make([]float64, B), make([]float64, B)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Refill from the pristine source each iteration: filtering in place
		// repeatedly would decay the signal into denormals and poison timing.
		for k := 0; k < B; k++ {
			copy(re[k], src[k][:n])
			copy(im[k], src[k][n:])
			s1r[k], s1i[k], s2r[k], s2i[k] = 0, 0, 0, 0
		}
		run(re, im, 0.067455, 0.134911, 0.067455, -1.142981, 0.412802, s1r, s1i, s2r, s2i)
	}
}

func BenchmarkBiquadBatch(b *testing.B)    { benchBiquadBatch(b, BiquadBatch) }
func BenchmarkBiquadBatchRef(b *testing.B) { benchBiquadBatch(b, BiquadBatchRef) }
