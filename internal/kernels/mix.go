package kernels

import "math"

// The mix kernels apply the behavioral mixer's per-sample arithmetic — I/Q
// imbalance (y = mu·x + nu·conj(x)), optional LO rotation, conversion gain
// and DC offset — on planar frames. Each operation mirrors Go's complex128
// lowering exactly: every multiply's two products are rounded individually
// before their combine, conjugation negates the imaginary plane, and the
// final "+ dc" is applied unconditionally (adding a zero dc is not the
// identity for negative-zero components, so it cannot be skipped).
//
// The stochastic parts of the mixer (input-referred noise, phase-noise LO
// trajectories) stay with the caller: the frame arrives with noise already
// added and the LO trajectory materialized into planes, which is what makes
// the pass split bit-exact — the two random streams come from separate
// generators, so draining them in separate passes preserves each draw order.

// MixApplyLORef is the retained naive reference for MixApplyLO. Frozen as
// the differential-test oracle.
func MixApplyLORef(xr, xi, lor, loi []float64, mur, mui, nur, nui, g, dcr, dci float64) {
	for i := range xr {
		vr, vi := xr[i], xi[i]
		ci := -vi
		yr := (mur*vr - mui*vi) + (nur*vr - nui*ci)
		yi := (mur*vi + mui*vr) + (nur*ci + nui*vr)
		lr, li := lor[i], loi[i]
		zr := yr*lr - yi*li
		zi := yr*li + yi*lr
		xr[i] = g*zr + dcr
		xi[i] = g*zi + dci
	}
}

// MixApplyLO applies imbalance, LO rotation, gain and DC in place on the
// planar frame xr/xi, with the LO trajectory in lor/loi. Bit-identical to
// MixApplyLORef on either dispatch tier (every sample is an independent
// chain, so the AVX2 tier processes four per vector with per-sample
// arithmetic unchanged).
//
//lint:hotpath
func MixApplyLO(xr, xi, lor, loi []float64, mur, mui, nur, nui, g, dcr, dci float64) {
	if useSIMD {
		mixApplyLOSIMD(xr, xi, lor, loi, mur, mui, nur, nui, g, dcr, dci)
		return
	}
	mixApplyLOGo(xr, xi, lor, loi, mur, mui, nur, nui, g, dcr, dci)
}

// mixApplyLOGo is the pure-Go tier of MixApplyLO and the twin of
// mixApplyLOAsm.
//
//lint:hotpath
func mixApplyLOGo(xr, xi, lor, loi []float64, mur, mui, nur, nui, g, dcr, dci float64) {
	mixApplyLOTail(0, xr, xi, lor, loi, mur, mui, nur, nui, g, dcr, dci)
}

// mixApplyLOTail runs the scalar per-sample pass from index i — the whole
// frame on the Go tier, the ragged remainder after the vector quads on the
// SIMD tier.
//
//lint:hotpath
func mixApplyLOTail(i int, xr, xi, lor, loi []float64, mur, mui, nur, nui, g, dcr, dci float64) {
	for ; i < len(xr); i++ {
		vr, vi := xr[i], xi[i]
		ci := -vi
		yr := (mur*vr - mui*vi) + (nur*vr - nui*ci)
		yi := (mur*vi + mui*vr) + (nur*ci + nui*vr)
		lr, li := lor[i], loi[i]
		zr := yr*lr - yi*li
		zi := yr*li + yi*lr
		xr[i] = g*zr + dcr
		xi[i] = g*zi + dci
	}
}

// MixApplyRef is the retained naive reference for MixApply (no LO rotation).
// Frozen as the differential-test oracle.
func MixApplyRef(xr, xi []float64, mur, mui, nur, nui, g, dcr, dci float64) {
	for i := range xr {
		vr, vi := xr[i], xi[i]
		ci := -vi
		yr := (mur*vr - mui*vi) + (nur*vr - nui*ci)
		yi := (mur*vi + mui*vr) + (nur*ci + nui*vr)
		xr[i] = g*yr + dcr
		xi[i] = g*yi + dci
	}
}

// MixApply applies imbalance, gain and DC in place on the planar frame
// xr/xi. Bit-identical to MixApplyRef on either dispatch tier.
//
//lint:hotpath
func MixApply(xr, xi []float64, mur, mui, nur, nui, g, dcr, dci float64) {
	if useSIMD {
		mixApplySIMD(xr, xi, mur, mui, nur, nui, g, dcr, dci)
		return
	}
	mixApplyGo(xr, xi, mur, mui, nur, nui, g, dcr, dci)
}

// mixApplyGo is the pure-Go tier of MixApply and the twin of mixApplyAsm.
//
//lint:hotpath
func mixApplyGo(xr, xi []float64, mur, mui, nur, nui, g, dcr, dci float64) {
	mixApplyTail(0, xr, xi, mur, mui, nur, nui, g, dcr, dci)
}

// mixApplyTail runs the scalar per-sample pass from index i.
//
//lint:hotpath
func mixApplyTail(i int, xr, xi []float64, mur, mui, nur, nui, g, dcr, dci float64) {
	for ; i < len(xr); i++ {
		vr, vi := xr[i], xi[i]
		ci := -vi
		yr := (mur*vr - mui*vi) + (nur*vr - nui*ci)
		yi := (mur*vi + mui*vr) + (nur*ci + nui*vr)
		xr[i] = g*yr + dcr
		xi[i] = g*yi + dci
	}
}

// LOTable is a precomputed one-period table of LO phasors for a rational
// offset/sample-rate ratio k/n (in lowest terms or not — the table size is
// n). Sample t carries the phasor at table index (k·t) mod n, whose value is
// the exact math.Sincos of the rational phase 2π·((k·t) mod n)/n — the phase
// a drift-free recurrence would resynchronize to. A table replaces one
// transcendental evaluation (or one incremental rotation plus periodic
// renormalization) per sample with a load.
type LOTable struct {
	re, im []float64
	k, n   int
	idx    int // table index of the next sample
}

// NewLOTable builds the phasor table for offset/sample-rate ratio k/n.
// n must be positive; k may be any integer (negative offsets wrap).
func NewLOTable(k, n int) *LOTable {
	t := &LOTable{
		re: make([]float64, n),
		im: make([]float64, n),
		k:  ((k % n) + n) % n,
		n:  n,
	}
	for j := 0; j < n; j++ {
		s, c := math.Sincos(2 * math.Pi * float64(j) / float64(n))
		t.re[j] = c
		t.im[j] = s
	}
	return t
}

// PhasorRef returns the exact reference phasor for absolute sample index t:
// math.Sincos of the rational phase. It is the differential-test oracle for
// Fill and must stay frozen.
func (l *LOTable) PhasorRef(t int) (re, im float64) {
	j := ((l.k*t)%l.n + l.n) % l.n
	s, c := math.Sincos(2 * math.Pi * float64(j) / float64(l.n))
	return c, s
}

// Fill writes the next len(re) phasors into the planes re/im, advancing the
// table position. Bit-identical to PhasorRef at the corresponding absolute
// sample indices (the table entries are those exact Sincos values).
//
//lint:hotpath
func (l *LOTable) Fill(re, im []float64) {
	j, k, n := l.idx, l.k, l.n
	tr, ti := l.re, l.im
	for i := range re {
		re[i] = tr[j]
		im[i] = ti[j]
		j += k
		if j >= n {
			j -= n
		}
	}
	l.idx = j
}

// Reset rewinds the table to sample index zero.
func (l *LOTable) Reset() { l.idx = 0 }

// Pos returns the table index of the next sample and the table size, letting
// a caller that interleaves tabled frames with a scalar recurrence
// resynchronize its own phase state.
func (l *LOTable) Pos() (idx, n int) { return l.idx, l.n }

// Peek returns the next sample's phasor without advancing the table.
func (l *LOTable) Peek() (re, im float64) { return l.re[l.idx], l.im[l.idx] }
