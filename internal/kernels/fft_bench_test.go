package kernels

import (
	"math/rand"
	"testing"
)

// Benchmarks of the planar FFT stage kernels under the current dispatch
// tier, tracked by scripts/bench.sh (BENCH_*.json). Frame sizes mirror the
// OFDM engine: a 64-point transform's widest stage repeated across a
// packet-sized plane, and the lane-interleaved X4 layout the batched
// transforms use.

func fftBenchPlane(n int, seed int64) ([]float64, []float64) {
	rng := rand.New(rand.NewSource(seed))
	re := make([]float64, n)
	im := make([]float64, n)
	for i := range re {
		re[i] = rng.NormFloat64()
		im[i] = rng.NormFloat64()
	}
	return re, im
}

func BenchmarkFFTStage(b *testing.B) {
	const n, half = 4096, 32
	re, im := fftBenchPlane(n, 21)
	wr, wi := fftBenchPlane(half, 22)
	b.SetBytes(n * 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FFTStage(re, im, wr, wi, half)
	}
}

func BenchmarkFFTStageX4(b *testing.B) {
	const n, half = 4096, 32 // 4 lanes x 1024-element planes
	re, im := fftBenchPlane(n, 23)
	wr, wi := fftBenchPlane(half, 24)
	b.SetBytes(n * 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FFTStageX4(re, im, wr, wi, half)
	}
}
