package kernels

// Plane kernels: elementwise passes over float64 planes and the pack/unpack
// transposes between interleaved complex128 frames and the planar layout.
// Every element is an independent one- or zero-operation chain, so the SIMD
// tier is trivially bit-exact; the wins are pure bandwidth (4 elements per
// vector instead of per-element scalar loads and the complex128 two-phase
// load/store the compiler emits for interleaved frames).

// AddPlaneRef is the retained naive reference for AddPlane. Frozen as the
// differential-test oracle.
func AddPlaneRef(dst, src []float64) {
	for i := range dst {
		dst[i] += src[i]
	}
}

// AddPlane adds src into dst elementwise: dst[i] += src[i]. src must have at
// least len(dst) elements. Bit-identical to AddPlaneRef on either tier.
//
//lint:hotpath
func AddPlane(dst, src []float64) {
	if useSIMD {
		addPlaneSIMD(dst, src)
		return
	}
	addPlaneGo(dst, src)
}

// addPlaneGo is the pure-Go tier of AddPlane and the twin of addPlaneAsm.
//
//lint:hotpath
func addPlaneGo(dst, src []float64) {
	src = src[:len(dst)]
	for i := range dst {
		dst[i] += src[i]
	}
}

// ScalePlaneRef is the retained naive reference for ScalePlane. Frozen as
// the differential-test oracle.
func ScalePlaneRef(dst []float64, s float64) {
	for i := range dst {
		dst[i] *= s
	}
}

// ScalePlane scales dst elementwise: dst[i] *= s. Bit-identical to
// ScalePlaneRef on either tier.
//
//lint:hotpath
func ScalePlane(dst []float64, s float64) {
	if useSIMD {
		scalePlaneSIMD(dst, s)
		return
	}
	scalePlaneGo(dst, s)
}

// scalePlaneGo is the pure-Go tier of ScalePlane and the twin of
// scalePlaneAsm.
//
//lint:hotpath
func scalePlaneGo(dst []float64, s float64) {
	for i := range dst {
		dst[i] *= s
	}
}

// DeinterleaveRef is the retained naive reference for Deinterleave. Frozen
// as the differential-test oracle.
func DeinterleaveRef(re, im []float64, x []complex128) {
	for i, c := range x {
		re[i] = real(c)
		im[i] = imag(c)
	}
}

// Deinterleave unpacks the interleaved complex frame x into planes:
// re[i], im[i] = real(x[i]), imag(x[i]). re/im must have at least len(x)
// elements. Pure data movement, bit-identical to DeinterleaveRef on either
// tier.
//
//lint:hotpath
func Deinterleave(re, im []float64, x []complex128) {
	if useSIMD {
		deinterleaveSIMD(re, im, x)
		return
	}
	deinterleaveGo(re, im, x)
}

// deinterleaveGo is the pure-Go tier of Deinterleave and the twin of
// deinterleaveAsm.
//
//lint:hotpath
func deinterleaveGo(re, im []float64, x []complex128) {
	re = re[:len(x)]
	im = im[:len(x)]
	for i, c := range x {
		re[i] = real(c)
		im[i] = imag(c)
	}
}

// InterleaveRef is the retained naive reference for Interleave. Frozen as
// the differential-test oracle.
func InterleaveRef(x []complex128, re, im []float64) {
	for i := range x {
		x[i] = complex(re[i], im[i])
	}
}

// Interleave packs the planes re/im into the interleaved complex frame x:
// x[i] = complex(re[i], im[i]). re/im must have at least len(x) elements.
// Pure data movement, bit-identical to InterleaveRef on either tier.
//
//lint:hotpath
func Interleave(x []complex128, re, im []float64) {
	if useSIMD {
		interleaveSIMD(x, re, im)
		return
	}
	interleaveGo(x, re, im)
}

// interleaveGo is the pure-Go tier of Interleave and the twin of
// interleaveAsm.
//
//lint:hotpath
func interleaveGo(x []complex128, re, im []float64) {
	re = re[:len(x)]
	im = im[:len(x)]
	for i := range x {
		x[i] = complex(re[i], im[i])
	}
}
