package kernels

import "math"

//go:generate sh -c "go run ./gen > acs_gen.go"

// The 802.11a rate-1/2 mother code: constraint length 7, generators 133/171
// octal. The add-compare-select step iterates over target states; target s
// has the two predecessors p(r) = ((s<<1)|r)&63, both transitions shifting
// in input bit s>>5. The branch outputs depend only on the 7-bit register
// (s>>5)<<6 | p(r), so they collapse into per-edge sign selectors indexed by
// (s<<1)|r.
const (
	acsConstraint = 7
	// ACSStates is the trellis state count (64) shared with the decoder.
	ACSStates = 1 << (acsConstraint - 1)
	acsGenA   = 0o133
	acsGenB   = 0o171
)

// acsSelA/acsSelB select, per edge, the sign of the step's A/B branch
// metric: 0 keeps +m (the encoder emits coded bit 0 there), 1 selects -m.
var acsSelA, acsSelB [2 * ACSStates]uint8

func acsParity7(v int) uint8 {
	v &= 0x7F
	v ^= v >> 4
	v ^= v >> 2
	v ^= v >> 1
	return uint8(v & 1)
}

func init() {
	for s := 0; s < ACSStates; s++ {
		for r := 0; r < 2; r++ {
			p := ((s << 1) | r) & (ACSStates - 1)
			reg := (s>>5)<<6 | p
			acsSelA[s<<1|r] = acsParity7(reg & acsGenA)
			acsSelB[s<<1|r] = acsParity7(reg & acsGenB)
		}
	}
}

// ACSRun advances the trellis len(decisions) steps, consuming the soft branch
// metric pair soft[2t], soft[2t+1] at step t and storing that step's 64
// survivor bits in decisions[t]. metric is the input path-metric bank and
// scratch a second bank of the same shape; the two are ping-ponged, and the
// returned pointer is the bank holding the final metrics (one of the two
// arguments). The run is bit-identical to calling ACSStepRef step by step.
//
// Steps execute in the unrolled branchless kernel as long as no NaN candidate
// can arise — the common case for every real decode. A non-finite branch
// metric routes that step (and, since it may poison the bank with +Inf or
// NaN, every later step) through ACSStepRef, whose NaN guards are exact.
// metric itself must not contain NaN or +Inf on entry; the decoder's
// 0/-Inf initialization satisfies this.
//
//lint:hotpath
func ACSRun(decisions []uint64, soft []float64, metric, scratch *[64]float64) *[64]float64 {
	cur, next := metric, scratch
	clean := true
	for t := range decisions {
		mA, mB := soft[2*t], soft[2*t+1]
		if clean && !math.IsNaN(mA) && !math.IsInf(mA, 0) && !math.IsNaN(mB) && !math.IsInf(mB, 0) {
			decisions[t] = acsStep(next, cur, mA, mB)
		} else {
			clean = false
			decisions[t] = ACSStepRef(next, cur, mA, mB)
		}
		cur, next = next, cur
	}
	return cur
}

// acsStep dispatches one clean trellis step to the active tier. The AVX2
// tier runs the same 32-butterfly schedule four butterflies per vector; each
// butterfly is an unchanged scalar chain (see simd_amd64.s), so both tiers
// are bit-identical to acsStepGo.
//
//lint:hotpath
func acsStep(next, metric *[64]float64, mA, mB float64) uint64 {
	if useSIMD {
		return acsStepSIMD(next, metric, mA, mB)
	}
	return acsStepGo(next, metric, mA, mB)
}

// ACSStepRef is the retained naive reference for the unrolled ACS kernel: the
// table-driven butterfly loop the decoder shipped with before internal/kernels
// existed. It is the differential-test oracle and must stay semantically
// frozen.
//
// Selecting the negated value -m is bit-identical to the textbook "bm -= m"
// formulation because -1.0*m and m-x == m+(-x) are exact in IEEE-754. Per
// target the even edge is visited first with a strict >, so metric ties keep
// the lower predecessor; starting from -Inf reproduces unreached-predecessor
// and NaN-metric handling (never selected).
func ACSStepRef(next, metric *[64]float64, mA, mB float64) uint64 {
	av := [2]float64{mA, -mA}
	bv := [2]float64{mB, -mB}
	nInf := math.Inf(-1)
	var dec uint64
	for s := 0; s < ACSStates/2; s++ {
		// Butterfly: targets s and s+32 share the predecessor pair
		// p0 = 2s, p0|1, and their branch outputs are exact complements
		// (both generators include the top register bit, so flipping the
		// shifted-in bit flips both coded bits).
		p0 := s << 1
		m0, m1 := metric[p0], metric[p0|1]
		a0, b0 := av[acsSelA[p0]&1], bv[acsSelB[p0]&1]
		a1, b1 := av[acsSelA[p0|1]&1], bv[acsSelB[p0|1]&1]

		c0 := (m0 + a0) + b0
		c1 := (m1 + a1) + b1
		best := nInf
		if c0 > best {
			best = c0
		}
		if c1 > best {
			best = c1
			dec |= 1 << uint(s)
		}
		next[s] = best

		d0 := (m0 - a0) - b0
		d1 := (m1 - a1) - b1
		best = nInf
		if d0 > best {
			best = d0
		}
		if d1 > best {
			best = d1
			dec |= 1 << uint(s+ACSStates/2)
		}
		next[s+ACSStates/2] = best
	}
	return dec
}
