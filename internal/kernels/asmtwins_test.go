//go:build amd64 && !purego

package kernels

import (
	"math"
	"math/rand"
	"testing"
)

// Differential suite for the assembly tier: every fooAsm stub is driven
// directly against its pure-Go twin fooGo on random and adversarial
// (NaN/±Inf/denormal) inputs and must agree bit for bit (NaN payload bits
// excepted, as everywhere in this package — see bitsEqual). The wlanlint
// asmtwin analyzer requires each stub to be referenced here, so assembly
// cannot land without this coverage. Stub preconditions (quad lengths,
// positive n) are honored by construction; the ragged-tail composition is
// covered by the exported-kernel suites running under both dispatch tiers.

// restoreDispatch reverts any SetDispatch flips when the test ends.
func restoreDispatch(t *testing.T) {
	t.Helper()
	prev := DispatchName() != "purego"
	t.Cleanup(func() { SetDispatch(prev) })
}

// requireAsmTier skips the test when the probe rejected the CPU (no AVX2):
// the stubs must not be called at all in that case.
func requireAsmTier(t *testing.T) {
	t.Helper()
	if !SIMDAvailable() {
		t.Skip("assembly tier not available on this CPU")
	}
}

// twinRandPlane fills a plane with Gaussian values plus occasional
// adversarial bit patterns when requested.
func twinRandPlane(rng *rand.Rand, n int, adversarial bool) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = rng.NormFloat64()
		if adversarial {
			switch rng.Intn(24) {
			case 0:
				out[i] = math.NaN()
			case 1:
				out[i] = math.Inf(1)
			case 2:
				out[i] = math.Inf(-1)
			case 3:
				out[i] = math.SmallestNonzeroFloat64
			case 4:
				out[i] = -1e308
			}
		}
	}
	return out
}

// twinRandCplx builds an interleaved complex frame from two fresh planes.
func twinRandCplx(rng *rand.Rand, n int, adversarial bool) []complex128 {
	re := twinRandPlane(rng, n, adversarial)
	im := twinRandPlane(rng, n, adversarial)
	out := make([]complex128, n)
	for i := range out {
		out[i] = complex(re[i], im[i])
	}
	return out
}

// TestACSStepAsmMatchesGo drives single trellis steps with both step kernels
// from identical banks — the canonical 0/-Inf start and banks evolved several
// steps in — asserting decision-word and full-bank bit equality. Metrics stay
// in the clean-path domain (finite branch metrics, no NaN/+Inf in the bank),
// which is the only domain the dispatcher routes to these kernels.
func TestACSStepAsmMatchesGo(t *testing.T) {
	requireAsmTier(t)
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		var bank [64]float64
		if trial%3 == 0 {
			acsInitBank(&bank) // includes the -Inf unreached states
		} else {
			for i := range bank {
				bank[i] = rng.NormFloat64() * 10
			}
		}
		// Evolve a few steps so banks include survivor-structured values.
		var scratch [64]float64
		cur, next := &bank, &scratch
		for s := 0; s < trial%4; s++ {
			acsStepGo(next, cur, rng.NormFloat64(), rng.NormFloat64())
			cur, next = next, cur
		}

		mA, mB := rng.NormFloat64(), rng.NormFloat64()
		var nextAsm, nextGo [64]float64
		dAsm := acsStepAsm(&nextAsm, cur, mA, mB)
		dGo := acsStepGo(&nextGo, cur, mA, mB)
		if dAsm != dGo {
			t.Fatalf("trial %d: decision word %#x != go %#x", trial, dAsm, dGo)
		}
		bitsEqual(t, "next bank", nextAsm[:], nextGo[:])
	}
}

// TestFIRRealAsmMatchesGo runs the vector FIR body against the Go twin over
// quad output counts, tap counts spanning the unroll shapes, and adversarial
// payloads.
func TestFIRRealAsmMatchesGo(t *testing.T) {
	requireAsmTier(t)
	rng := rand.New(rand.NewSource(12))
	for _, n := range []int{4, 8, 32, 64} {
		for _, tapN := range []int{1, 2, 7, 13} {
			for trial := 0; trial < 8; trial++ {
				adv := trial%2 == 1
				taps := twinRandPlane(rng, tapN, adv)
				xr := twinRandPlane(rng, n+tapN-1, adv)
				xi := twinRandPlane(rng, n+tapN-1, adv)
				ar, ai := make([]float64, n), make([]float64, n)
				gr, gi := make([]float64, n), make([]float64, n)
				firRealAsm(ar, ai, xr, xi, taps)
				firRealGo(gr, gi, xr, xi, taps)
				bitsEqual(t, "re", ar, gr)
				bitsEqual(t, "im", ai, gi)
			}
		}
	}
}

// TestFIRCplxAsmMatchesGo is the complex-tap variant of the FIR twin test.
func TestFIRCplxAsmMatchesGo(t *testing.T) {
	requireAsmTier(t)
	rng := rand.New(rand.NewSource(13))
	for _, n := range []int{4, 16, 48} {
		for _, tapN := range []int{1, 3, 11} {
			for trial := 0; trial < 8; trial++ {
				adv := trial%2 == 1
				tr := twinRandPlane(rng, tapN, adv)
				ti := twinRandPlane(rng, tapN, adv)
				xr := twinRandPlane(rng, n+tapN-1, adv)
				xi := twinRandPlane(rng, n+tapN-1, adv)
				ar, ai := make([]float64, n), make([]float64, n)
				gr, gi := make([]float64, n), make([]float64, n)
				firCplxAsm(ar, ai, xr, xi, tr, ti)
				firCplxGo(gr, gi, xr, xi, tr, ti)
				bitsEqual(t, "re", ar, gr)
				bitsEqual(t, "im", ai, gi)
			}
		}
	}
}

// TestMixApplyAsmMatchesGo runs the in-place mixer pass through both tiers
// from identical copies of the same frame.
func TestMixApplyAsmMatchesGo(t *testing.T) {
	requireAsmTier(t)
	rng := rand.New(rand.NewSource(14))
	for _, n := range []int{4, 8, 64, 256} {
		for trial := 0; trial < 10; trial++ {
			adv := trial%2 == 1
			xr := twinRandPlane(rng, n, adv)
			xi := twinRandPlane(rng, n, adv)
			ar := append([]float64(nil), xr...)
			ai := append([]float64(nil), xi...)
			mur, mui := rng.NormFloat64(), rng.NormFloat64()
			nur, nui := rng.NormFloat64(), rng.NormFloat64()
			g, dcr, dci := rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()
			mixApplyAsm(ar, ai, mur, mui, nur, nui, g, dcr, dci)
			mixApplyGo(xr, xi, mur, mui, nur, nui, g, dcr, dci)
			bitsEqual(t, "re", ar, xr)
			bitsEqual(t, "im", ai, xi)
		}
	}
}

// TestMixApplyLOAsmMatchesGo adds the LO rotation planes to the mixer twin
// test.
func TestMixApplyLOAsmMatchesGo(t *testing.T) {
	requireAsmTier(t)
	rng := rand.New(rand.NewSource(15))
	for _, n := range []int{4, 8, 64, 256} {
		for trial := 0; trial < 10; trial++ {
			adv := trial%2 == 1
			xr := twinRandPlane(rng, n, adv)
			xi := twinRandPlane(rng, n, adv)
			lor := twinRandPlane(rng, n, adv)
			loi := twinRandPlane(rng, n, adv)
			ar := append([]float64(nil), xr...)
			ai := append([]float64(nil), xi...)
			mur, mui := rng.NormFloat64(), rng.NormFloat64()
			nur, nui := rng.NormFloat64(), rng.NormFloat64()
			g, dcr, dci := rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()
			mixApplyLOAsm(ar, ai, lor, loi, mur, mui, nur, nui, g, dcr, dci)
			mixApplyLOGo(xr, xi, lor, loi, mur, mui, nur, nui, g, dcr, dci)
			bitsEqual(t, "re", ar, xr)
			bitsEqual(t, "im", ai, xi)
		}
	}
}

// TestBiquadQuadAsmMatchesGo advances four IIR lanes through both tiers from
// identical planes and delay states, asserting outputs and final states
// agree bit for bit.
func TestBiquadQuadAsmMatchesGo(t *testing.T) {
	requireAsmTier(t)
	rng := rand.New(rand.NewSource(16))
	for _, n := range []int{0, 1, 7, 64} {
		for trial := 0; trial < 10; trial++ {
			adv := trial%2 == 1
			mk := func() ([][]float64, [][]float64) {
				re := make([][]float64, 4)
				im := make([][]float64, 4)
				for l := range re {
					re[l] = twinRandPlane(rng, n, adv)
					im[l] = twinRandPlane(rng, n, adv)
				}
				return re, im
			}
			re, im := mk()
			reA := make([][]float64, 4)
			imA := make([][]float64, 4)
			for l := range re {
				reA[l] = append([]float64(nil), re[l]...)
				imA[l] = append([]float64(nil), im[l]...)
			}
			b0, b1, b2 := rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()
			a1, a2 := rng.NormFloat64()*0.5, rng.NormFloat64()*0.5
			s1r := twinRandPlane(rng, 4, false)
			s1i := twinRandPlane(rng, 4, false)
			s2r := twinRandPlane(rng, 4, false)
			s2i := twinRandPlane(rng, 4, false)
			s1rA := append([]float64(nil), s1r...)
			s1iA := append([]float64(nil), s1i...)
			s2rA := append([]float64(nil), s2r...)
			s2iA := append([]float64(nil), s2i...)

			biquadQuadAsm(reA, imA, b0, b1, b2, a1, a2, s1rA, s1iA, s2rA, s2iA)
			biquadQuadGo(re, im, b0, b1, b2, a1, a2, s1r, s1i, s2r, s2i)
			for l := range re {
				bitsEqualLane(t, "re", l, reA[l], re[l])
				bitsEqualLane(t, "im", l, imA[l], im[l])
			}
			bitsEqual(t, "s1r", s1rA, s1r)
			bitsEqual(t, "s1i", s1iA, s1i)
			bitsEqual(t, "s2r", s2rA, s2r)
			bitsEqual(t, "s2i", s2iA, s2i)
		}
	}
}

// TestCorrPairAsmMatchesGo runs both correlators over shared frames,
// including the zero-tap degenerate shape and adversarial payloads.
func TestCorrPairAsmMatchesGo(t *testing.T) {
	requireAsmTier(t)
	rng := rand.New(rand.NewSource(17))
	for _, tapN := range []int{0, 1, 5, 33, 64} {
		for trial := 0; trial < 10; trial++ {
			adv := trial%2 == 1
			x1 := twinRandCplx(rng, tapN, adv)
			x2 := twinRandCplx(rng, tapN, adv)
			ref := twinRandCplx(rng, tapN, adv)
			a1, a2, a3, a4 := corrPairAsm(x1, x2, ref)
			g1, g2, g3, g4 := corrPairGo(x1, x2, ref)
			bitsEqual(t, "corr", []float64{a1, a2, a3, a4}, []float64{g1, g2, g3, g4})
		}
	}
}

// TestPlaneAsmMatchesGo covers the elementwise and transpose kernels:
// addPlaneAsm/scalePlaneAsm against their twins, and the interleave /
// deinterleave pair, which is pure data movement and must preserve even NaN
// payload bits exactly.
func TestPlaneAsmMatchesGo(t *testing.T) {
	requireAsmTier(t)
	rng := rand.New(rand.NewSource(18))
	for _, n := range []int{4, 8, 64, 252} {
		for trial := 0; trial < 10; trial++ {
			adv := trial%2 == 1

			dst := twinRandPlane(rng, n, adv)
			src := twinRandPlane(rng, n, adv)
			dstA := append([]float64(nil), dst...)
			addPlaneAsm(dstA, src)
			addPlaneGo(dst, src)
			bitsEqual(t, "add", dstA, dst)

			s := rng.NormFloat64()
			dst = twinRandPlane(rng, n, adv)
			dstA = append([]float64(nil), dst...)
			scalePlaneAsm(dstA, s)
			scalePlaneGo(dst, s)
			bitsEqual(t, "scale", dstA, dst)

			// Transposes: strict bit equality, NaN payloads included.
			re := twinRandPlane(rng, n, adv)
			im := twinRandPlane(rng, n, adv)
			xA := make([]complex128, n)
			xG := make([]complex128, n)
			interleaveAsm(xA, re, im)
			interleaveGo(xG, re, im)
			for i := range xA {
				if math.Float64bits(real(xA[i])) != math.Float64bits(real(xG[i])) ||
					math.Float64bits(imag(xA[i])) != math.Float64bits(imag(xG[i])) {
					t.Fatalf("interleave sample %d: %v != go %v", i, xA[i], xG[i])
				}
			}
			reA := make([]float64, n)
			imA := make([]float64, n)
			reG := make([]float64, n)
			imG := make([]float64, n)
			deinterleaveAsm(reA, imA, xG)
			deinterleaveGo(reG, imG, xG)
			for i := range reA {
				if math.Float64bits(reA[i]) != math.Float64bits(reG[i]) ||
					math.Float64bits(imA[i]) != math.Float64bits(imG[i]) {
					t.Fatalf("deinterleave sample %d: (%x,%x) != go (%x,%x)", i,
						math.Float64bits(reA[i]), math.Float64bits(imA[i]),
						math.Float64bits(reG[i]), math.Float64bits(imG[i]))
				}
			}
		}
	}
}

// TestSetDispatchToggles pins the dispatch API: forcing the pure-Go tier
// always succeeds, requesting SIMD is granted exactly when the probe
// accepted the CPU, and the reported name and lane width follow.
func TestSetDispatchToggles(t *testing.T) {
	restoreDispatch(t)
	if name := SetDispatch(false); name != "purego" {
		t.Fatalf("SetDispatch(false) = %q, want purego", name)
	}
	if w := SIMDWidth(); w != 1 {
		t.Fatalf("SIMDWidth on purego tier = %d, want 1", w)
	}
	name := SetDispatch(true)
	if SIMDAvailable() {
		if name != "avx2" {
			t.Fatalf("SetDispatch(true) = %q, want avx2", name)
		}
		if w := SIMDWidth(); w != 4 {
			t.Fatalf("SIMDWidth on avx2 tier = %d, want 4", w)
		}
	} else if name != "purego" {
		t.Fatalf("SetDispatch(true) without SIMD = %q, want purego", name)
	}
}

// TestExportedKernelsMatchRefBothTiers sweeps the exported dispatching
// kernels against their frozen references under both dispatch settings,
// covering the SIMD quad bodies plus the shared scalar tails on ragged
// lengths that the direct stub tests cannot reach.
func TestExportedKernelsMatchRefBothTiers(t *testing.T) {
	restoreDispatch(t)
	rng := rand.New(rand.NewSource(19))
	for _, simd := range []bool{true, false} {
		SetDispatch(simd)
		for _, n := range []int{1, 3, 4, 5, 17, 63} {
			for trial := 0; trial < 6; trial++ {
				adv := trial%2 == 1
				tapN := 1 + rng.Intn(12)

				taps := twinRandPlane(rng, tapN, adv)
				xr := twinRandPlane(rng, n+tapN-1, adv)
				xi := twinRandPlane(rng, n+tapN-1, adv)
				gr, gi := make([]float64, n), make([]float64, n)
				wr, wi := make([]float64, n), make([]float64, n)
				FIRReal(gr, gi, xr, xi, taps)
				FIRRealRef(wr, wi, xr, xi, taps)
				bitsEqual(t, "firreal re", gr, wr)
				bitsEqual(t, "firreal im", gi, wi)

				ar := twinRandPlane(rng, n, adv)
				ai := twinRandPlane(rng, n, adv)
				br := append([]float64(nil), ar...)
				bi := append([]float64(nil), ai...)
				lor := twinRandPlane(rng, n, adv)
				loi := twinRandPlane(rng, n, adv)
				mur, mui := rng.NormFloat64(), rng.NormFloat64()
				nur, nui := rng.NormFloat64(), rng.NormFloat64()
				g, dcr, dci := rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()
				MixApplyLO(ar, ai, lor, loi, mur, mui, nur, nui, g, dcr, dci)
				MixApplyLORef(br, bi, lor, loi, mur, mui, nur, nui, g, dcr, dci)
				bitsEqual(t, "mixlo re", ar, br)
				bitsEqual(t, "mixlo im", ai, bi)

				x1 := twinRandCplx(rng, n, adv)
				x2 := twinRandCplx(rng, n, adv)
				ref := twinRandCplx(rng, n, adv)
				s1, s2 := CorrPair(x1, x2, ref)
				w1, w2 := CorrPairRef(x1, x2, ref)
				bitsEqual(t, "corr", []float64{real(s1), imag(s1), real(s2), imag(s2)},
					[]float64{real(w1), imag(w1), real(w2), imag(w2)})

				dst := twinRandPlane(rng, n, adv)
				src := twinRandPlane(rng, n, adv)
				dstW := append([]float64(nil), dst...)
				AddPlane(dst, src)
				AddPlaneRef(dstW, src)
				bitsEqual(t, "addplane", dst, dstW)

				s := rng.NormFloat64()
				dst = twinRandPlane(rng, n, adv)
				dstW = append([]float64(nil), dst...)
				ScalePlane(dst, s)
				ScalePlaneRef(dstW, s)
				bitsEqual(t, "scaleplane", dst, dstW)

				x := twinRandCplx(rng, n, adv)
				reG := make([]float64, n)
				imG := make([]float64, n)
				reW := make([]float64, n)
				imW := make([]float64, n)
				Deinterleave(reG, imG, x)
				DeinterleaveRef(reW, imW, x)
				bitsEqual(t, "deinterleave re", reG, reW)
				bitsEqual(t, "deinterleave im", imG, imW)
				xG := make([]complex128, n)
				xW := make([]complex128, n)
				Interleave(xG, reG, imG)
				InterleaveRef(xW, reW, imW)
				for i := range xG {
					if math.Float64bits(real(xG[i])) != math.Float64bits(real(xW[i])) ||
						math.Float64bits(imag(xG[i])) != math.Float64bits(imag(xW[i])) {
						t.Fatalf("interleave sample %d: %v != ref %v", i, xG[i], xW[i])
					}
				}
			}
		}
	}
}
