package kernels

// CorrPairRef is the retained naive reference for CorrPair: the two
// conjugate dot products in complex arithmetic, one accumulator each. Frozen
// as the differential-test oracle.
//
// The split-complex kernels below are bit-identical to it because each tap
// of s += z*conj(r) expands to re += a*rr - b*(-ri), im += a*(-ri) + b*rr,
// and IEEE-754 negation is exact, so each expression rounds identically to
// the single-rounding forms a*rr + b*ri and b*rr - a*ri the kernels use.
func CorrPairRef(x1, x2, ref []complex128) (s1, s2 complex128) {
	for k, r := range ref {
		//lint:ignore kernelpure naive complex-arithmetic oracle, deliberately kept in the serialized complex form the optimized kernels are verified against
		s1 += x1[k] * complex(real(r), -imag(r))
		//lint:ignore kernelpure naive complex-arithmetic oracle, second accumulator of the same frozen reference
		s2 += x2[k] * complex(real(r), -imag(r))
	}
	return s1, s2
}

// CorrPair evaluates the two conjugate dot products sum(x1[k]*conj(ref[k]))
// and sum(x2[k]*conj(ref[k])) over len(ref) taps in split-complex form. x1
// and x2 must have at least len(ref) elements. The four accumulators are
// independent dependency chains: the Go tier overlaps them as scalar ILP,
// the AVX2 tier maps them onto the four lanes of one ymm accumulator.
// Bit-identical to CorrPairRef on either tier.
//
//lint:hotpath
func CorrPair(x1, x2, ref []complex128) (s1, s2 complex128) {
	var s1r, s1i, s2r, s2i float64
	if useSIMD {
		s1r, s1i, s2r, s2i = corrPairSIMD(x1, x2, ref)
	} else {
		s1r, s1i, s2r, s2i = corrPairGo(x1, x2, ref)
	}
	return complex(s1r, s1i), complex(s2r, s2i)
}

// corrPairGo is the pure-Go tier of CorrPair and the twin of corrPairAsm:
// four independent accumulator chains, one rounding per multiply and per
// add-pair, accumulated in tap order.
//
//lint:hotpath
func corrPairGo(x1, x2, ref []complex128) (s1r, s1im, s2r, s2im float64) {
	x1 = x1[:len(ref)]
	x2 = x2[:len(ref)]
	for k, r := range ref {
		rr, ri := real(r), imag(r)
		a, b := real(x1[k]), imag(x1[k])
		c, d := real(x2[k]), imag(x2[k])
		s1r += a*rr + b*ri
		s1im += b*rr - a*ri
		s2r += c*rr + d*ri
		s2im += d*rr - c*ri
	}
	return s1r, s1im, s2r, s2im
}
