//go:build amd64 && !purego

#include "textflag.h"

// AVX2 kernel tier. Bit-exactness is by construction: every ymm lane carries
// one scalar dependency chain of the pure-Go twin (one FIR output, one
// biquad lane, one mixer sample, one ACS butterfly, one correlation
// accumulator), the operation order within each chain is the twin's, there
// is no FMA contraction (multiplies and adds stay separate, rounding once
// each, exactly like the Go compiler's lowering, which never fuses), and
// sign flips use IEEE sign-bit XOR, which is exact negation. Comparisons use
// the ordered non-signaling predicate GT_OQ ($30), the vector equivalent of
// Go's > on the same operands.

DATA signBit<>+0(SB)/8, $0x8000000000000000
GLOBL signBit<>(SB), RODATA|NOPTR, $8

// {+0, -0, +0, -0}: XOR flips the sign of lanes 1 and 3 only (corrPairAsm's
// {+ri, -ri, +ri, -ri} operand).
DATA corrSign<>+0(SB)/8, $0x0000000000000000
DATA corrSign<>+8(SB)/8, $0x8000000000000000
DATA corrSign<>+16(SB)/8, $0x0000000000000000
DATA corrSign<>+24(SB)/8, $0x8000000000000000
GLOBL corrSign<>(SB), RODATA|NOPTR, $32

// func acsStepAsm(next, metric *[64]float64, mA, mB float64) uint64
//
// One trellis step, four butterflies per iteration, eight unrolled
// iterations. Butterfly s (targets s and s+32, predecessors 2s and 2s+1)
// computes, with (a,b) the sign-masked branch metrics of the even edge
// (acsMaskA/acsMaskB XOR the broadcast mA/mB) and (-a,-b) their exact
// negations (sign-bit XOR):
//
//	c0 = (m[2s] + a) + b      c1 = (m[2s+1] - a) - b     -> next[s]
//	d0 = (m[2s] - a) - b      d1 = (m[2s+1] + a) + b     -> next[s+32]
//
// survivor = blend on c1 > c0 (GT_OQ), decision bit = the compare mask —
// the same strict > on the same operands as the Go twin, and the blend
// copies the exact candidate bit pattern. Even/odd predecessor metrics are
// deinterleaved with VSHUFPD+VPERMPD (pure data movement).
//
// Register plan: DI next, SI metric, R8/R9 mask tables, R10/R11 decision
// accumulators (targets 0-31 / 32-63), Y8 mA, Y9 mB, Y10 sign bit.
#define ACSQUAD(MOFF, KOFF, COFF, DOFF, SHC, SHD) \
	VMOVUPD   MOFF(SI), Y0       \ // metric[8j .. 8j+3]
	VMOVUPD   (MOFF+32)(SI), Y1  \ // metric[8j+4 .. 8j+7]
	VSHUFPD   $0, Y1, Y0, Y2     \
	VPERMPD   $0xD8, Y2, Y2      \ // m0 = even predecessors
	VSHUFPD   $15, Y1, Y0, Y3    \
	VPERMPD   $0xD8, Y3, Y3      \ // m1 = odd predecessors
	VMOVUPD   ·acsMaskA+KOFF(SB), Y4 \
	VXORPD    Y8, Y4, Y4         \ // a  (even-edge signed mA)
	VMOVUPD   ·acsMaskB+KOFF(SB), Y5 \
	VXORPD    Y9, Y5, Y5         \ // b
	VXORPD    Y10, Y4, Y6        \ // -a
	VXORPD    Y10, Y5, Y7        \ // -b
	VADDPD    Y4, Y2, Y11        \
	VADDPD    Y5, Y11, Y11       \ // c0 = (m0 + a) + b
	VADDPD    Y6, Y3, Y12        \
	VADDPD    Y7, Y12, Y12       \ // c1 = (m1 - a) - b
	VCMPPD    $30, Y11, Y12, Y13 \ // c1 > c0
	VBLENDVPD Y13, Y12, Y11, Y14 \
	VMOVUPD   Y14, COFF(DI)      \ // next[s..s+3]
	VMOVMSKPD Y13, AX            \
	SHLQ      $SHC, AX           \
	ORQ       AX, R10            \
	VADDPD    Y6, Y2, Y11        \
	VADDPD    Y7, Y11, Y11       \ // d0 = (m0 - a) - b
	VADDPD    Y4, Y3, Y12        \
	VADDPD    Y5, Y12, Y12       \ // d1 = (m1 + a) + b
	VCMPPD    $30, Y11, Y12, Y13 \
	VBLENDVPD Y13, Y12, Y11, Y14 \
	VMOVUPD   Y14, DOFF(DI)      \ // next[s+32..s+35]
	VMOVMSKPD Y13, AX            \
	SHLQ      $SHD, AX           \
	ORQ       AX, R11

TEXT ·acsStepAsm(SB), NOSPLIT, $0-40
	MOVQ         next+0(FP), DI
	MOVQ         metric+8(FP), SI
	VBROADCASTSD mA+16(FP), Y8
	VBROADCASTSD mB+24(FP), Y9
	VBROADCASTSD signBit<>(SB), Y10
	XORQ         R10, R10
	XORQ         R11, R11

	ACSQUAD(0, 0, 0, 256, 0, 32)
	ACSQUAD(64, 32, 32, 288, 4, 36)
	ACSQUAD(128, 64, 64, 320, 8, 40)
	ACSQUAD(192, 96, 96, 352, 12, 44)
	ACSQUAD(256, 128, 128, 384, 16, 48)
	ACSQUAD(320, 160, 160, 416, 20, 52)
	ACSQUAD(384, 192, 192, 448, 24, 56)
	ACSQUAD(448, 224, 224, 480, 28, 60)

	ORQ  R11, R10
	MOVQ R10, ret+32(FP)
	VZEROUPPER
	RET

// func firRealAsm(yr, yi, xr, xi, taps []float64)
//
// Four outputs per iteration: lane L of the accumulator is output i+L, taps
// broadcast, windows loaded as contiguous quads walking downward (output
// i+L reads xr[i+L+last-d]). Accumulation order per output is tap-ascending,
// exactly the Go twin's chain. len(yr) > 0 and a multiple of 4.
TEXT ·firRealAsm(SB), NOSPLIT, $0-120
	MOVQ yr_base+0(FP), DI
	MOVQ yr_len+8(FP), CX
	MOVQ yi_base+24(FP), R8
	MOVQ xr_base+48(FP), SI
	MOVQ xi_base+72(FP), R9
	MOVQ taps_base+96(FP), R10
	MOVQ taps_len+104(FP), BX

	// Point SI/R9 at extended sample last = len(taps)-1, the window end of
	// output 0 (address arithmetic only; never dereferenced when BX == 0).
	LEAQ -8(SI)(BX*8), SI
	LEAQ -8(R9)(BX*8), R9
	XORQ DX, DX

firreal_outer:
	VXORPD Y0, Y0, Y0
	VXORPD Y1, Y1, Y1
	LEAQ   (SI)(DX*8), R12
	LEAQ   (R9)(DX*8), R13
	MOVQ   R10, R14
	MOVQ   BX, R15
	TESTQ  R15, R15
	JE     firreal_store

firreal_inner:
	VBROADCASTSD (R14), Y2
	VMOVUPD      (R12), Y3
	VMULPD       Y2, Y3, Y4
	VADDPD       Y4, Y0, Y0
	VMOVUPD      (R13), Y5
	VMULPD       Y2, Y5, Y6
	VADDPD       Y6, Y1, Y1
	ADDQ         $8, R14
	SUBQ         $8, R12
	SUBQ         $8, R13
	DECQ         R15
	JNE          firreal_inner

firreal_store:
	VMOVUPD Y0, (DI)(DX*8)
	VMOVUPD Y1, (R8)(DX*8)
	ADDQ    $4, DX
	CMPQ    DX, CX
	JLT     firreal_outer
	VZEROUPPER
	RET

// func firCplxAsm(yr, yi, xr, xi, tr, ti []float64)
//
// Complex-tap variant: per tap, re += wr*cr - wi*ci and im += wr*ci + wi*cr
// with each multiply rounded individually before the combine — the Go twin's
// exact sequence. len(yr) > 0 and a multiple of 4.
TEXT ·firCplxAsm(SB), NOSPLIT, $0-144
	MOVQ yr_base+0(FP), DI
	MOVQ yr_len+8(FP), CX
	MOVQ yi_base+24(FP), R8
	MOVQ xr_base+48(FP), SI
	MOVQ xi_base+72(FP), R9
	MOVQ tr_base+96(FP), R10
	MOVQ ti_base+120(FP), R11
	MOVQ tr_len+104(FP), BX
	LEAQ -8(SI)(BX*8), SI
	LEAQ -8(R9)(BX*8), R9
	XORQ DX, DX

fircplx_outer:
	VXORPD Y0, Y0, Y0
	VXORPD Y1, Y1, Y1
	LEAQ   (SI)(DX*8), R12
	LEAQ   (R9)(DX*8), R13
	MOVQ   R10, R14
	MOVQ   R11, R15
	MOVQ   BX, AX
	TESTQ  AX, AX
	JE     fircplx_store

fircplx_inner:
	VBROADCASTSD (R14), Y2 // cr
	VBROADCASTSD (R15), Y3 // ci
	VMOVUPD      (R12), Y4 // wr
	VMOVUPD      (R13), Y5 // wi
	VMULPD       Y2, Y4, Y6
	VMULPD       Y3, Y5, Y7
	VSUBPD       Y7, Y6, Y6 // wr*cr - wi*ci
	VADDPD       Y6, Y0, Y0
	VMULPD       Y3, Y4, Y6
	VMULPD       Y2, Y5, Y7
	VADDPD       Y7, Y6, Y6 // wr*ci + wi*cr
	VADDPD       Y6, Y1, Y1
	ADDQ         $8, R14
	ADDQ         $8, R15
	SUBQ         $8, R12
	SUBQ         $8, R13
	DECQ         AX
	JNE          fircplx_inner

fircplx_store:
	VMOVUPD Y0, (DI)(DX*8)
	VMOVUPD Y1, (R8)(DX*8)
	ADDQ    $4, DX
	CMPQ    DX, CX
	JLT     fircplx_outer
	VZEROUPPER
	RET

// func mixApplyAsm(xr, xi []float64, mur, mui, nur, nui, g, dcr, dci float64)
//
// Four independent samples per iteration; ci = -vi via sign-bit XOR, then
// the twin's exact sequence: yr = (mur*vr - mui*vi) + (nur*vr - nui*ci),
// yi = (mur*vi + mui*vr) + (nur*ci + nui*vr), out = g*y + dc.
// len(xr) > 0 and a multiple of 4.
TEXT ·mixApplyAsm(SB), NOSPLIT, $0-104
	MOVQ         xr_base+0(FP), SI
	MOVQ         xr_len+8(FP), CX
	MOVQ         xi_base+24(FP), DI
	VBROADCASTSD mur+48(FP), Y9
	VBROADCASTSD mui+56(FP), Y10
	VBROADCASTSD nur+64(FP), Y11
	VBROADCASTSD nui+72(FP), Y12
	VBROADCASTSD gain+80(FP), Y13
	VBROADCASTSD dcr+88(FP), Y14
	VBROADCASTSD dci+96(FP), Y15
	VBROADCASTSD signBit<>(SB), Y8
	XORQ         DX, DX

mixapply_loop:
	VMOVUPD (SI)(DX*8), Y0  // vr
	VMOVUPD (DI)(DX*8), Y1  // vi
	VXORPD  Y8, Y1, Y2      // ci = -vi
	VMULPD  Y9, Y0, Y3
	VMULPD  Y10, Y1, Y4
	VSUBPD  Y4, Y3, Y3      // mur*vr - mui*vi
	VMULPD  Y11, Y0, Y4
	VMULPD  Y12, Y2, Y5
	VSUBPD  Y5, Y4, Y4      // nur*vr - nui*ci
	VADDPD  Y4, Y3, Y3      // yr
	VMULPD  Y9, Y1, Y4
	VMULPD  Y10, Y0, Y5
	VADDPD  Y5, Y4, Y4      // mur*vi + mui*vr
	VMULPD  Y11, Y2, Y5
	VMULPD  Y12, Y0, Y6
	VADDPD  Y6, Y5, Y5      // nur*ci + nui*vr
	VADDPD  Y5, Y4, Y4      // yi
	VMULPD  Y13, Y3, Y3
	VADDPD  Y14, Y3, Y3     // g*yr + dcr
	VMOVUPD Y3, (SI)(DX*8)
	VMULPD  Y13, Y4, Y4
	VADDPD  Y15, Y4, Y4     // g*yi + dci
	VMOVUPD Y4, (DI)(DX*8)
	ADDQ    $4, DX
	CMPQ    DX, CX
	JLT     mixapply_loop
	VZEROUPPER
	RET

// func mixApplyLOAsm(xr, xi, lor, loi []float64, mur, mui, nur, nui, g, dcr, dci float64)
//
// mixApplyAsm plus the LO rotation zr = yr*lr - yi*li, zi = yr*li + yi*lr
// before the gain/DC stage. len(xr) > 0 and a multiple of 4.
TEXT ·mixApplyLOAsm(SB), NOSPLIT, $0-152
	MOVQ         xr_base+0(FP), SI
	MOVQ         xr_len+8(FP), CX
	MOVQ         xi_base+24(FP), DI
	MOVQ         lor_base+48(FP), R8
	MOVQ         loi_base+72(FP), R9
	VBROADCASTSD mur+96(FP), Y9
	VBROADCASTSD mui+104(FP), Y10
	VBROADCASTSD nur+112(FP), Y11
	VBROADCASTSD nui+120(FP), Y12
	VBROADCASTSD gain+128(FP), Y13
	VBROADCASTSD dcr+136(FP), Y14
	VBROADCASTSD dci+144(FP), Y15
	VBROADCASTSD signBit<>(SB), Y8
	XORQ         DX, DX

mixapplylo_loop:
	VMOVUPD (SI)(DX*8), Y0
	VMOVUPD (DI)(DX*8), Y1
	VXORPD  Y8, Y1, Y2
	VMULPD  Y9, Y0, Y3
	VMULPD  Y10, Y1, Y4
	VSUBPD  Y4, Y3, Y3
	VMULPD  Y11, Y0, Y4
	VMULPD  Y12, Y2, Y5
	VSUBPD  Y5, Y4, Y4
	VADDPD  Y4, Y3, Y3      // yr
	VMULPD  Y9, Y1, Y4
	VMULPD  Y10, Y0, Y5
	VADDPD  Y5, Y4, Y4
	VMULPD  Y11, Y2, Y5
	VMULPD  Y12, Y0, Y6
	VADDPD  Y6, Y5, Y5
	VADDPD  Y5, Y4, Y4      // yi
	VMOVUPD (R8)(DX*8), Y5  // lr
	VMOVUPD (R9)(DX*8), Y6  // li
	VMULPD  Y5, Y3, Y0
	VMULPD  Y6, Y4, Y1
	VSUBPD  Y1, Y0, Y0      // zr = yr*lr - yi*li
	VMULPD  Y6, Y3, Y1
	VMULPD  Y5, Y4, Y2
	VADDPD  Y2, Y1, Y1      // zi = yr*li + yi*lr
	VMULPD  Y13, Y0, Y0
	VADDPD  Y14, Y0, Y0
	VMOVUPD Y0, (SI)(DX*8)
	VMULPD  Y13, Y1, Y1
	VADDPD  Y15, Y1, Y1
	VMOVUPD Y1, (DI)(DX*8)
	ADDQ    $4, DX
	CMPQ    DX, CX
	JLT     mixapplylo_loop
	VZEROUPPER
	RET

// func biquadQuadAsm(re, im [][]float64, b0, b1, b2, a1, a2 float64, s1r, s1i, s2r, s2i []float64)
//
// Four lanes, one per vector lane, sample-major; the four delay-state pairs
// live in Y0-Y3 across the whole sample loop. Per sample the update is the
// scalar sequence: yr = b0*xr + s1, s1' = (b1*xr - a1*yr) + s2,
// s2' = b2*xr - a2*yr (same for the imaginary plane). Lane gathers and
// scatters are scalar 8-byte moves (pure data movement).
TEXT ·biquadQuadAsm(SB), NOSPLIT, $0-184
	MOVQ re_base+0(FP), AX
	MOVQ 0(AX), R8   // re[0] data
	MOVQ 24(AX), R9  // re[1]
	MOVQ 48(AX), R10 // re[2]
	MOVQ 72(AX), R11 // re[3]
	MOVQ im_base+24(FP), BX
	MOVQ 0(BX), R12
	MOVQ 24(BX), R13
	MOVQ 48(BX), R14
	MOVQ 72(BX), R15
	MOVQ 8(AX), DX   // n = len(re[0])

	VBROADCASTSD b0+48(FP), Y11
	VBROADCASTSD b1+56(FP), Y12
	VBROADCASTSD b2+64(FP), Y13
	VBROADCASTSD a1+72(FP), Y14
	VBROADCASTSD a2+80(FP), Y15

	MOVQ    s1r_base+88(FP), AX
	VMOVUPD (AX), Y0
	MOVQ    s1i_base+112(FP), AX
	VMOVUPD (AX), Y1
	MOVQ    s2r_base+136(FP), AX
	VMOVUPD (AX), Y2
	MOVQ    s2i_base+160(FP), AX
	VMOVUPD (AX), Y3
	XORQ    CX, CX

biquad_loop:
	CMPQ CX, DX
	JGE  biquad_done

	// Gather xr = {re[0][k], re[1][k], re[2][k], re[3][k]}, likewise xi.
	VMOVSD       (R8)(CX*8), X4
	VMOVHPD      (R9)(CX*8), X4, X4
	VMOVSD       (R10)(CX*8), X10
	VMOVHPD      (R11)(CX*8), X10, X10
	VINSERTF128  $1, X10, Y4, Y4
	VMOVSD       (R12)(CX*8), X5
	VMOVHPD      (R13)(CX*8), X5, X5
	VMOVSD       (R14)(CX*8), X10
	VMOVHPD      (R15)(CX*8), X10, X10
	VINSERTF128  $1, X10, Y5, Y5

	VMULPD Y4, Y11, Y6
	VADDPD Y0, Y6, Y6  // yr = b0*xr + s1r
	VMULPD Y5, Y11, Y7
	VADDPD Y1, Y7, Y7  // yi = b0*xi + s1i
	VMULPD Y4, Y12, Y8
	VMULPD Y6, Y14, Y9
	VSUBPD Y9, Y8, Y8
	VADDPD Y2, Y8, Y0  // s1r' = (b1*xr - a1*yr) + s2r
	VMULPD Y5, Y12, Y8
	VMULPD Y7, Y14, Y9
	VSUBPD Y9, Y8, Y8
	VADDPD Y3, Y8, Y1  // s1i' = (b1*xi - a1*yi) + s2i
	VMULPD Y4, Y13, Y8
	VMULPD Y6, Y15, Y9
	VSUBPD Y9, Y8, Y2  // s2r' = b2*xr - a2*yr
	VMULPD Y5, Y13, Y8
	VMULPD Y7, Y15, Y9
	VSUBPD Y9, Y8, Y3  // s2i' = b2*xi - a2*yi

	// Scatter yr/yi back to the four lanes in place.
	VMOVSD       X6, (R8)(CX*8)
	VMOVHPD      X6, (R9)(CX*8)
	VEXTRACTF128 $1, Y6, X10
	VMOVSD       X10, (R10)(CX*8)
	VMOVHPD      X10, (R11)(CX*8)
	VMOVSD       X7, (R12)(CX*8)
	VMOVHPD      X7, (R13)(CX*8)
	VEXTRACTF128 $1, Y7, X10
	VMOVSD       X10, (R14)(CX*8)
	VMOVHPD      X10, (R15)(CX*8)

	INCQ CX
	JMP  biquad_loop

biquad_done:
	MOVQ    s1r_base+88(FP), AX
	VMOVUPD Y0, (AX)
	MOVQ    s1i_base+112(FP), AX
	VMOVUPD Y1, (AX)
	MOVQ    s2r_base+136(FP), AX
	VMOVUPD Y2, (AX)
	MOVQ    s2i_base+160(FP), AX
	VMOVUPD Y3, (AX)
	VZEROUPPER
	RET

// func corrPairAsm(x1, x2, ref []complex128) (s1r, s1im, s2r, s2im float64)
//
// The four accumulator chains s1re/s1im/s2re/s2im ride the four lanes of
// Y0. Per tap: {a,b,c,d} = x1[k] ++ x2[k] (interleaved re/im pairs),
// swapped copy {b,a,d,c} via VPERMILPD, broadcast rr and {+ri,-ri,+ri,-ri},
// then acc += lane*rr + swapped*(+/-ri) — per lane exactly the twin's
// a*rr + b*ri, b*rr - a*ri, c*rr + d*ri, d*rr - c*ri (multiplying by the
// exactly-negated ri rounds identically to subtracting the product).
TEXT ·corrPairAsm(SB), NOSPLIT, $0-104
	MOVQ    x1_base+0(FP), SI
	MOVQ    x2_base+24(FP), DI
	MOVQ    ref_base+48(FP), R8
	MOVQ    ref_len+56(FP), CX
	VXORPD  Y0, Y0, Y0
	VMOVUPD corrSign<>(SB), Y7
	TESTQ   CX, CX
	JE      corrpair_done

corrpair_loop:
	VMOVUPD      (SI), X1
	VINSERTF128  $1, (DI), Y1, Y1 // {a, b, c, d}
	VPERMILPD    $5, Y1, Y2       // {b, a, d, c}
	VBROADCASTSD (R8), Y3         // rr
	VBROADCASTSD 8(R8), Y4        // ri
	VXORPD       Y7, Y4, Y4       // {+ri, -ri, +ri, -ri}
	VMULPD       Y3, Y1, Y5
	VMULPD       Y4, Y2, Y6
	VADDPD       Y6, Y5, Y5
	VADDPD       Y5, Y0, Y0
	ADDQ         $16, SI
	ADDQ         $16, DI
	ADDQ         $16, R8
	DECQ         CX
	JNE          corrpair_loop

corrpair_done:
	VMOVSD       X0, s1r+72(FP)
	VMOVHPD      X0, s1im+80(FP)
	VEXTRACTF128 $1, Y0, X1
	VMOVSD       X1, s2r+88(FP)
	VMOVHPD      X1, s2im+96(FP)
	VZEROUPPER
	RET

// func addPlaneAsm(dst, src []float64)
//
// dst[i] += src[i], four per iteration. len(dst) > 0 and a multiple of 4.
TEXT ·addPlaneAsm(SB), NOSPLIT, $0-48
	MOVQ dst_base+0(FP), DI
	MOVQ dst_len+8(FP), CX
	MOVQ src_base+24(FP), SI
	XORQ DX, DX

addplane_loop:
	VMOVUPD (DI)(DX*8), Y0
	VMOVUPD (SI)(DX*8), Y1
	VADDPD  Y1, Y0, Y0
	VMOVUPD Y0, (DI)(DX*8)
	ADDQ    $4, DX
	CMPQ    DX, CX
	JLT     addplane_loop
	VZEROUPPER
	RET

// func scalePlaneAsm(dst []float64, s float64)
//
// dst[i] *= s, four per iteration. len(dst) > 0 and a multiple of 4.
TEXT ·scalePlaneAsm(SB), NOSPLIT, $0-32
	MOVQ         dst_base+0(FP), DI
	MOVQ         dst_len+8(FP), CX
	VBROADCASTSD s+24(FP), Y1
	XORQ         DX, DX

scaleplane_loop:
	VMOVUPD (DI)(DX*8), Y0
	VMULPD  Y1, Y0, Y0
	VMOVUPD Y0, (DI)(DX*8)
	ADDQ    $4, DX
	CMPQ    DX, CX
	JLT     scaleplane_loop
	VZEROUPPER
	RET

// func interleaveAsm(x []complex128, re, im []float64)
//
// Pack four complex elements per iteration: permute each plane quad to
// {0,2,1,3} order, then unpack lo/hi to produce the two interleaved pairs.
// Pure data movement. len(x) > 0 and a multiple of 4.
TEXT ·interleaveAsm(SB), NOSPLIT, $0-72
	MOVQ x_base+0(FP), DI
	MOVQ x_len+8(FP), CX
	MOVQ re_base+24(FP), SI
	MOVQ im_base+48(FP), R8
	XORQ DX, DX

interleave_loop:
	VMOVUPD   (SI)(DX*8), Y0
	VMOVUPD   (R8)(DX*8), Y1
	VPERMPD   $0xD8, Y0, Y0
	VPERMPD   $0xD8, Y1, Y1
	VUNPCKLPD Y1, Y0, Y2 // {r0, i0, r1, i1}
	VUNPCKHPD Y1, Y0, Y3 // {r2, i2, r3, i3}
	VMOVUPD   Y2, (DI)
	VMOVUPD   Y3, 32(DI)
	ADDQ      $64, DI
	ADDQ      $4, DX
	CMPQ      DX, CX
	JLT       interleave_loop
	VZEROUPPER
	RET

// func deinterleaveAsm(re, im []float64, x []complex128)
//
// Unpack four complex elements per iteration: the inverse shuffle of
// interleaveAsm. Pure data movement. len(x) > 0 and a multiple of 4.
TEXT ·deinterleaveAsm(SB), NOSPLIT, $0-72
	MOVQ re_base+0(FP), DI
	MOVQ im_base+24(FP), R8
	MOVQ x_base+48(FP), SI
	MOVQ x_len+56(FP), CX
	XORQ DX, DX

deinterleave_loop:
	VMOVUPD (SI), Y0        // {r0, i0, r1, i1}
	VMOVUPD 32(SI), Y1      // {r2, i2, r3, i3}
	VSHUFPD $0, Y1, Y0, Y2
	VPERMPD $0xD8, Y2, Y2   // {r0, r1, r2, r3}
	VSHUFPD $15, Y1, Y0, Y3
	VPERMPD $0xD8, Y3, Y3   // {i0, i1, i2, i3}
	VMOVUPD Y2, (DI)(DX*8)
	VMOVUPD Y3, (R8)(DX*8)
	ADDQ    $64, SI
	ADDQ    $4, DX
	CMPQ    DX, CX
	JLT     deinterleave_loop
	VZEROUPPER
	RET

// func fftStageAsm(re, im []float64, wr, wi []float64, half int)
//
// One radix-2 DIT butterfly stage over the planar frame, four butterflies
// per vector. Each lane is one scalar butterfly chain in the twin's order:
// tr = br*wr - bi*wi, ti = br*wi + bi*wr (the compiler's complex128
// lowering, one rounding per operation, no FMA), then a+t / a-t. half is a
// positive multiple of 4 and len(re) a positive multiple of 2*half, so
// every block holds whole quads and quads never straddle blocks.
//
// Register plan: DI re, SI im, R8 wr, R9 wi, BX half, CX len, DX block
// base, AX k, R10/R11 the i/j element indices.
TEXT ·fftStageAsm(SB), NOSPLIT, $0-104
	MOVQ re_base+0(FP), DI
	MOVQ re_len+8(FP), CX
	MOVQ im_base+24(FP), SI
	MOVQ wr_base+48(FP), R8
	MOVQ wi_base+72(FP), R9
	MOVQ half+96(FP), BX
	XORQ DX, DX

fftstage_block:
	XORQ AX, AX

fftstage_quad:
	LEAQ    (DX)(AX*1), R10    // i = base + k
	LEAQ    (R10)(BX*1), R11   // j = i + half
	VMOVUPD (DI)(R11*8), Y0    // br
	VMOVUPD (SI)(R11*8), Y1    // bi
	VMOVUPD (R8)(AX*8), Y2     // wr[k..k+3]
	VMOVUPD (R9)(AX*8), Y3     // wi[k..k+3]
	VMULPD  Y2, Y0, Y4         // br*wr
	VMULPD  Y3, Y1, Y5         // bi*wi
	VSUBPD  Y5, Y4, Y4         // tr = br*wr - bi*wi
	VMULPD  Y3, Y0, Y5         // br*wi
	VMULPD  Y2, Y1, Y6         // bi*wr
	VADDPD  Y6, Y5, Y5         // ti = br*wi + bi*wr
	VMOVUPD (DI)(R10*8), Y6    // ar
	VMOVUPD (SI)(R10*8), Y7    // ai
	VADDPD  Y4, Y6, Y8         // ar + tr
	VADDPD  Y5, Y7, Y9         // ai + ti
	VSUBPD  Y4, Y6, Y10        // ar - tr
	VSUBPD  Y5, Y7, Y11        // ai - ti
	VMOVUPD Y8, (DI)(R10*8)
	VMOVUPD Y9, (SI)(R10*8)
	VMOVUPD Y10, (DI)(R11*8)
	VMOVUPD Y11, (SI)(R11*8)
	ADDQ    $4, AX
	CMPQ    AX, BX
	JLT     fftstage_quad
	LEAQ    (DX)(BX*2), DX     // base += 2*half
	CMPQ    DX, CX
	JLT     fftstage_block
	VZEROUPPER
	RET

// func fftStageX4Asm(re, im []float64, wr, wi []float64, half int)
//
// The lane-interleaved variant: element e of transform l lives at 4*e+l,
// so one vector holds the same butterfly element of four independent
// transforms and the twiddle broadcasts — every stage vectorizes fully,
// including half 1 and 2. Same per-lane operation order as fftStageAsm.
// half is positive and len(re) a positive multiple of 8*half.
//
// Register plan: DI re, SI im, R8 wr, R9 wi, BX half, CX len (floats),
// DX block base (floats), AX k, R10/R11 the i/j float offsets, R12 4*half.
TEXT ·fftStageX4Asm(SB), NOSPLIT, $0-104
	MOVQ re_base+0(FP), DI
	MOVQ re_len+8(FP), CX
	MOVQ im_base+24(FP), SI
	MOVQ wr_base+48(FP), R8
	MOVQ wi_base+72(FP), R9
	MOVQ half+96(FP), BX
	MOVQ BX, R12
	SHLQ $2, R12               // lane hop between butterfly halves
	XORQ DX, DX

fftx4_block:
	XORQ AX, AX

fftx4_bfly:
	VBROADCASTSD (R8)(AX*8), Y2 // wr[k]
	VBROADCASTSD (R9)(AX*8), Y3 // wi[k]
	LEAQ         (DX)(AX*4), R10  // i4 = base4 + 4k
	LEAQ         (R10)(R12*1), R11 // j4 = i4 + 4*half
	VMOVUPD      (DI)(R11*8), Y0  // br
	VMOVUPD      (SI)(R11*8), Y1  // bi
	VMULPD       Y2, Y0, Y4
	VMULPD       Y3, Y1, Y5
	VSUBPD       Y5, Y4, Y4       // tr
	VMULPD       Y3, Y0, Y5
	VMULPD       Y2, Y1, Y6
	VADDPD       Y6, Y5, Y5       // ti
	VMOVUPD      (DI)(R10*8), Y6  // ar
	VMOVUPD      (SI)(R10*8), Y7  // ai
	VADDPD       Y4, Y6, Y8
	VADDPD       Y5, Y7, Y9
	VSUBPD       Y4, Y6, Y10
	VSUBPD       Y5, Y7, Y11
	VMOVUPD      Y8, (DI)(R10*8)
	VMOVUPD      Y9, (SI)(R10*8)
	VMOVUPD      Y10, (DI)(R11*8)
	VMOVUPD      Y11, (SI)(R11*8)
	INCQ         AX
	CMPQ         AX, BX
	JLT          fftx4_bfly
	LEAQ         (DX)(R12*2), DX  // base4 += 8*half
	CMPQ         DX, CX
	JLT          fftx4_block
	VZEROUPPER
	RET

// func fftPermuteAsm(dst, src []float64, idx []int64)
//
// The bit-reversal gather: dst[i] = src[idx[i]], four elements per
// VGATHERQPD. Pure data movement (the gather copies exact bit patterns).
// len(idx) is a positive multiple of 4; dst and src are disjoint. The
// all-ones gather mask is refreshed each iteration (VGATHERQPD consumes
// it).
TEXT ·fftPermuteAsm(SB), NOSPLIT, $0-72
	MOVQ     dst_base+0(FP), DI
	MOVQ     src_base+24(FP), SI
	MOVQ     idx_base+48(FP), R8
	MOVQ     idx_len+56(FP), CX
	XORQ     DX, DX
	VPCMPEQD Y2, Y2, Y2

fftpermute_loop:
	VMOVDQU    (R8)(DX*8), Y1
	VMOVDQA    Y2, Y3
	VGATHERQPD Y3, (SI)(Y1*8), Y0
	VMOVUPD    Y0, (DI)(DX*8)
	ADDQ       $4, DX
	CMPQ       DX, CX
	JLT        fftpermute_loop
	VZEROUPPER
	RET

// func scaleCplxAsm(re, im []float64, s float64)
//
// The inverse-scale pass: a complex multiply by (s, 0) on planes,
// re' = re*s - im*0, im' = re*0 + im*s, four elements per vector. The zero
// products are kept so ±0/NaN/Inf propagate exactly as in the interleaved
// x[i] *= complex(s, 0). len(re) is a positive multiple of 4.
TEXT ·scaleCplxAsm(SB), NOSPLIT, $0-56
	MOVQ         re_base+0(FP), DI
	MOVQ         re_len+8(FP), CX
	MOVQ         im_base+24(FP), SI
	VBROADCASTSD s+48(FP), Y8
	VXORPD       Y9, Y9, Y9    // +0.0
	XORQ         DX, DX

scalecplx_loop:
	VMOVUPD (DI)(DX*8), Y0     // xr
	VMOVUPD (SI)(DX*8), Y1     // xi
	VMULPD  Y8, Y0, Y2         // xr*s
	VMULPD  Y9, Y1, Y3         // xi*0
	VSUBPD  Y3, Y2, Y2         // re' = xr*s - xi*0
	VMULPD  Y9, Y0, Y4         // xr*0
	VMULPD  Y8, Y1, Y5         // xi*s
	VADDPD  Y5, Y4, Y4         // im' = xr*0 + xi*s
	VMOVUPD Y2, (DI)(DX*8)
	VMOVUPD Y4, (SI)(DX*8)
	ADDQ    $4, DX
	CMPQ    DX, CX
	JLT     scalecplx_loop
	VZEROUPPER
	RET

// func mulCplxAsm(ar, ai, br, bi []float64)
//
// Pointwise planar complex product a[i] *= b[i] in the compiler's lowering
// order: re' = xr*yr - xi*yi, im' = xr*yi + xi*yr, four elements per
// vector — the overlap-save spectral product. len(ar) is a positive
// multiple of 4.
TEXT ·mulCplxAsm(SB), NOSPLIT, $0-96
	MOVQ ar_base+0(FP), DI
	MOVQ ar_len+8(FP), CX
	MOVQ ai_base+24(FP), SI
	MOVQ br_base+48(FP), R8
	MOVQ bi_base+72(FP), R9
	XORQ DX, DX

mulcplx_loop:
	VMOVUPD (DI)(DX*8), Y0     // xr
	VMOVUPD (SI)(DX*8), Y1     // xi
	VMOVUPD (R8)(DX*8), Y2     // yr
	VMOVUPD (R9)(DX*8), Y3     // yi
	VMULPD  Y2, Y0, Y4         // xr*yr
	VMULPD  Y3, Y1, Y5         // xi*yi
	VSUBPD  Y5, Y4, Y4         // re'
	VMULPD  Y3, Y0, Y5         // xr*yi
	VMULPD  Y2, Y1, Y6         // xi*yr
	VADDPD  Y6, Y5, Y5         // im'
	VMOVUPD Y4, (DI)(DX*8)
	VMOVUPD Y5, (SI)(DX*8)
	ADDQ    $4, DX
	CMPQ    DX, CX
	JLT     mulcplx_loop
	VZEROUPPER
	RET
