package kernels

import (
	"math"
	"math/rand"
	"testing"
)

// firRandVals fills a slice with Gaussian values plus occasional adversarial
// zeros, denormals, huge magnitudes and non-finite values.
func firRandVals(rng *rand.Rand, v []float64, adversarial bool) {
	for i := range v {
		v[i] = rng.NormFloat64()
		if adversarial {
			switch rng.Intn(32) {
			case 0:
				v[i] = 0
			case 1:
				v[i] = math.Inf(1 - 2*rng.Intn(2))
			case 2:
				v[i] = math.NaN()
			case 3:
				v[i] = rng.NormFloat64() * 1e300
			case 4:
				v[i] = rng.NormFloat64() * 5e-324
			}
		}
	}
}

func bitsEqual(t *testing.T, name string, got, want []float64) {
	t.Helper()
	for i := range got {
		if math.IsNaN(got[i]) && math.IsNaN(want[i]) {
			// A NaN output must be NaN in both kernels, but its payload
			// bits are unspecified: the hardware propagates the payload of
			// whichever NaN operand the compiler scheduled first, and
			// addition/multiplication operand order is not part of the
			// bit-exactness contract (IEEE-754 leaves it free).
			continue
		}
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("%s[%d]: %x != ref %x (%g vs %g)", name, i,
				math.Float64bits(got[i]), math.Float64bits(want[i]), got[i], want[i])
		}
	}
}

// TestFIRRealMatchesRef sweeps tap counts and frame lengths (covering the
// unrolled body, the scalar tail, and frames shorter than the unroll width)
// with random and adversarial data, asserting bit equality per output.
func TestFIRRealMatchesRef(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		tapN := 1 + rng.Intn(24)
		n := 1 + rng.Intn(50)
		taps := make([]float64, tapN)
		firRandVals(rng, taps, false)
		ext := n + tapN - 1
		xr := make([]float64, ext)
		xi := make([]float64, ext)
		firRandVals(rng, xr, trial%2 == 1)
		firRandVals(rng, xi, trial%2 == 1)
		yr := make([]float64, n)
		yi := make([]float64, n)
		wr := make([]float64, n)
		wi := make([]float64, n)
		FIRReal(yr, yi, xr, xi, taps)
		FIRRealRef(wr, wi, xr, xi, taps)
		bitsEqual(t, "re", yr, wr)
		bitsEqual(t, "im", yi, wi)
	}
}

// TestFIRCplxMatchesRef is the complex-tap analogue of TestFIRRealMatchesRef.
func TestFIRCplxMatchesRef(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 200; trial++ {
		tapN := 1 + rng.Intn(24)
		n := 1 + rng.Intn(50)
		tr := make([]float64, tapN)
		ti := make([]float64, tapN)
		firRandVals(rng, tr, false)
		firRandVals(rng, ti, false)
		ext := n + tapN - 1
		xr := make([]float64, ext)
		xi := make([]float64, ext)
		firRandVals(rng, xr, trial%2 == 1)
		firRandVals(rng, xi, trial%2 == 1)
		yr := make([]float64, n)
		yi := make([]float64, n)
		wr := make([]float64, n)
		wi := make([]float64, n)
		FIRCplx(yr, yi, xr, xi, tr, ti)
		FIRCplxRef(wr, wi, xr, xi, tr, ti)
		bitsEqual(t, "re", yr, wr)
		bitsEqual(t, "im", yi, wi)
	}
}

func benchFIR(b *testing.B, cplx bool, kernel func(yr, yi, xr, xi, tr, ti []float64)) {
	rng := rand.New(rand.NewSource(5))
	const tapN, n = 23, 1024
	tr := make([]float64, tapN)
	ti := make([]float64, tapN)
	firRandVals(rng, tr, false)
	firRandVals(rng, ti, false)
	xr := make([]float64, n+tapN-1)
	xi := make([]float64, n+tapN-1)
	firRandVals(rng, xr, false)
	firRandVals(rng, xi, false)
	yr := make([]float64, n)
	yi := make([]float64, n)
	b.SetBytes(n * 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		kernel(yr, yi, xr, xi, tr, ti)
	}
}

func BenchmarkFIRReal(b *testing.B) {
	benchFIR(b, false, func(yr, yi, xr, xi, tr, _ []float64) { FIRReal(yr, yi, xr, xi, tr) })
}
func BenchmarkFIRRealRef(b *testing.B) {
	benchFIR(b, false, func(yr, yi, xr, xi, tr, _ []float64) { FIRRealRef(yr, yi, xr, xi, tr) })
}
func BenchmarkFIRCplx(b *testing.B)    { benchFIR(b, true, FIRCplx) }
func BenchmarkFIRCplxRef(b *testing.B) { benchFIR(b, true, FIRCplxRef) }
