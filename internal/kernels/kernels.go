// Package kernels is the instruction-level-parallelism layer of the
// simulator: the handful of numeric inner loops that dominate packet run
// time — Viterbi add-compare-select, FIR convolution, mixer/LO rotation —
// rewritten on a planar (structure-of-arrays) split-complex representation
// with explicit unrolling, and nothing else.
//
// The package carries two execution tiers behind one API. Every exported
// kernel dispatches between a pure-Go twin (fooGo) and, on amd64 with AVX2,
// a hand-written assembly body (fooAsm in simd_amd64.s) that maps one ymm
// lane to one independent scalar chain — same operations, same order, one
// rounding per operation, no FMA — so the tiers are bit-identical by
// construction, not by tolerance. Selection is runtime CPU detection
// (cpu_amd64.s, no external deps) gated by the WLANSIM_SIMD environment
// variable and SetDispatch; building with -tags purego removes the assembly
// tier entirely.
//
// Contract, enforced by the wlanlint kernelpure and asmtwin analyzers and
// the package's differential test suite:
//
//   - every kernel is bit-exact against a retained naive reference
//     implementation (the *Ref functions) on all inputs, adversarial values
//     included — callers may switch between the two freely;
//   - every assembly stub fooAsm has a pure-Go twin fooGo of identical
//     signature, bit-identical on all inputs, exercised differentially by
//     the asmtwins suite under both dispatch settings;
//   - the package imports only "math" (kernels) and "os" (the dispatch
//     gate): no allocation sources, no I/O, no RNGs (stochastic inputs are
//     produced by the caller and passed in);
//   - hot functions allocate nothing — buffers are owned by the caller,
//     typically as Vec fields grown once via Grow;
//   - Go loop bodies contain no complex128 arithmetic: operands arrive
//     split into real and imaginary planes so the compiler schedules
//     independent scalar chains instead of the 4-mul/2-add complex lockstep.
package kernels

// Vec is a split-complex vector: Re[i] + i*Im[i]. The planar layout is the
// package's working representation; convert at stage boundaries with From
// and CopyTo, amortizing the transpose once per frame instead of paying
// interleaved access in every inner loop.
type Vec struct {
	Re, Im []float64
}

// Len returns the vector length.
func (v *Vec) Len() int { return len(v.Re) }

// Grow resizes the vector to n elements, reusing capacity when possible.
// Contents are unspecified after growth; only Grow allocates, so a Vec held
// across frames reaches a zero-allocation steady state.
func (v *Vec) Grow(n int) {
	if cap(v.Re) < n {
		v.Re = make([]float64, n)
		v.Im = make([]float64, n)
	}
	v.Re = v.Re[:n]
	v.Im = v.Im[:n]
}

// From fills the vector with the planes of x, growing it to len(x).
func (v *Vec) From(x []complex128) {
	v.Grow(len(x))
	Deinterleave(v.Re, v.Im, x)
}

// CopyTo interleaves the vector back into x, which must have length Len.
//
//lint:hotpath
func (v *Vec) CopyTo(x []complex128) {
	Interleave(x[:len(v.Re)], v.Re, v.Im)
}
