// Package kernels is the instruction-level-parallelism layer of the
// simulator: the handful of numeric inner loops that dominate packet run
// time — Viterbi add-compare-select, FIR convolution, mixer/LO rotation —
// rewritten on a planar (structure-of-arrays) split-complex representation
// with explicit unrolling, and nothing else.
//
// Contract, enforced by the wlanlint kernelpure analyzer and the package's
// differential test suite:
//
//   - every kernel is bit-exact against a retained naive reference
//     implementation (the *Ref functions) on all inputs, adversarial values
//     included — callers may switch between the two freely;
//   - the package imports only "math": no allocation sources, no I/O, no
//     RNGs (stochastic inputs are produced by the caller and passed in);
//   - hot functions allocate nothing — buffers are owned by the caller,
//     typically as Vec fields grown once via Grow;
//   - loop bodies contain no complex128 arithmetic: operands arrive split
//     into real and imaginary planes so the compiler schedules independent
//     scalar chains instead of the 4-mul/2-add complex lockstep.
package kernels

// Vec is a split-complex vector: Re[i] + i*Im[i]. The planar layout is the
// package's working representation; convert at stage boundaries with From
// and CopyTo, amortizing the transpose once per frame instead of paying
// interleaved access in every inner loop.
type Vec struct {
	Re, Im []float64
}

// Len returns the vector length.
func (v *Vec) Len() int { return len(v.Re) }

// Grow resizes the vector to n elements, reusing capacity when possible.
// Contents are unspecified after growth; only Grow allocates, so a Vec held
// across frames reaches a zero-allocation steady state.
func (v *Vec) Grow(n int) {
	if cap(v.Re) < n {
		v.Re = make([]float64, n)
		v.Im = make([]float64, n)
	}
	v.Re = v.Re[:n]
	v.Im = v.Im[:n]
}

// From fills the vector with the planes of x, growing it to len(x).
func (v *Vec) From(x []complex128) {
	v.Grow(len(x))
	re, im := v.Re, v.Im
	for i, c := range x {
		re[i] = real(c)
		im[i] = imag(c)
	}
}

// CopyTo interleaves the vector back into x, which must have length Len.
//
//lint:hotpath
func (v *Vec) CopyTo(x []complex128) {
	re, im := v.Re, v.Im
	x = x[:len(re)]
	for i := range re {
		x[i] = complex(re[i], im[i])
	}
}
