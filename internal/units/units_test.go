package units

import (
	"math"
	"testing"
	"testing/quick"
)

func approx(t *testing.T, got, want, tol float64, msg string) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Errorf("%s: got %v, want %v (tol %v)", msg, got, want, tol)
	}
}

func TestDBConversionsKnownValues(t *testing.T) {
	approx(t, DBToLinear(0), 1, 1e-12, "0 dB")
	approx(t, DBToLinear(3), 1.9952623, 1e-6, "3 dB")
	approx(t, DBToLinear(10), 10, 1e-9, "10 dB")
	approx(t, DBToLinear(-10), 0.1, 1e-12, "-10 dB")
	approx(t, LinearToDB(100), 20, 1e-12, "ratio 100")
	approx(t, DBToVoltageGain(20), 10, 1e-9, "20 dB voltage")
	approx(t, VoltageGainToDB(2), 6.0205999, 1e-6, "gain 2")
}

func TestDBmWattsKnownValues(t *testing.T) {
	approx(t, DBmToWatts(0), 1e-3, 1e-15, "0 dBm")
	approx(t, DBmToWatts(30), 1, 1e-12, "30 dBm")
	approx(t, DBmToWatts(-30), 1e-6, 1e-18, "-30 dBm")
	approx(t, WattsToDBm(1e-3), 0, 1e-12, "1 mW")
	approx(t, WattsToDBm(2e-3), 3.0103, 1e-4, "2 mW")
}

func TestNonPositiveInputsReturnNegInf(t *testing.T) {
	for _, v := range []float64{0, -1, -1e9} {
		if !math.IsInf(LinearToDB(v), -1) {
			t.Errorf("LinearToDB(%v) not -Inf", v)
		}
		if !math.IsInf(WattsToDBm(v), -1) {
			t.Errorf("WattsToDBm(%v) not -Inf", v)
		}
		if !math.IsInf(VoltageGainToDB(v), -1) {
			t.Errorf("VoltageGainToDB(%v) not -Inf", v)
		}
	}
}

func TestDBRoundTripProperty(t *testing.T) {
	f := func(db float64) bool {
		db = math.Mod(db, 200) // keep within float range after exponentiation
		return math.Abs(LinearToDB(DBToLinear(db))-db) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDBmRoundTripProperty(t *testing.T) {
	f := func(dbm float64) bool {
		dbm = math.Mod(dbm, 200)
		return math.Abs(WattsToDBm(DBmToWatts(dbm))-dbm) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestThermalNoise(t *testing.T) {
	// kT at 290 K is -174 dBm/Hz (to within 0.1 dB).
	approx(t, ThermalNoiseDBm(1), -173.975, 0.05, "kT per Hz")
	// 20 MHz channel: -174 + 73 = -101 dBm.
	approx(t, ThermalNoiseDBm(20e6), -100.96, 0.05, "kTB 20 MHz")
}

func TestMeanAndPeakPower(t *testing.T) {
	x := []complex128{1, 1i, -1, -1i}
	approx(t, MeanPower(x), 1, 1e-15, "unit circle power")
	approx(t, PeakPower(x), 1, 1e-15, "unit circle peak")
	y := []complex128{complex(3, 4)}
	approx(t, MeanPower(y), 25, 1e-12, "3+4i power")
	if MeanPower(nil) != 0 {
		t.Error("MeanPower(nil) != 0")
	}
	if PeakPower(nil) != 0 {
		t.Error("PeakPower(nil) != 0")
	}
}

func TestPAPR(t *testing.T) {
	// Constant-envelope signal has 0 dB PAPR.
	x := []complex128{1, 1i, -1, -1i}
	approx(t, PAPRdB(x), 0, 1e-12, "constant envelope")
	// One sample at amplitude 2 among three zeros: peak 4, mean 1 -> 6.02 dB.
	y := []complex128{2, 0, 0, 0}
	approx(t, PAPRdB(y), 6.0206, 1e-3, "impulse PAPR")
	if PAPRdB(nil) != 0 {
		t.Error("PAPRdB(nil) != 0")
	}
}

func TestSetPowerDBm(t *testing.T) {
	x := make([]complex128, 256)
	for i := range x {
		x[i] = complex(float64(i%7)-3, float64(i%5)-2)
	}
	SetPowerDBm(x, -40)
	approx(t, MeanPowerDBm(x), -40, 1e-9, "scaled power")

	zero := make([]complex128, 8)
	if g := SetPowerDBm(zero, -10); g != 1 {
		t.Errorf("zero signal gain = %v, want 1", g)
	}
}

func TestSetPowerDBmProperty(t *testing.T) {
	f := func(seed uint8, target int8) bool {
		x := make([]complex128, 64)
		for i := range x {
			v := float64((int(seed)+i*37)%19) - 9
			x[i] = complex(v, -v/2+1)
		}
		dbm := float64(target%80) - 40
		SetPowerDBm(x, dbm)
		return math.Abs(MeanPowerDBm(x)-dbm) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestScale(t *testing.T) {
	x := []complex128{1 + 1i, 2}
	Scale(x, 0.5)
	if x[0] != 0.5+0.5i || x[1] != 1 {
		t.Errorf("Scale result %v", x)
	}
}
