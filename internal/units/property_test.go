package units

import (
	"math"
	"math/rand"
	"testing"
)

// closeRel fails unless got is within relative tolerance of want.
func closeRel(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	scale := math.Abs(want)
	if scale < 1 {
		scale = 1
	}
	if math.Abs(got-want) > tol*scale {
		t.Errorf("%s = %g, want %g (tol %g)", name, got, want, tol)
	}
}

// TestDBRoundTrips drives every conversion pair through randomized
// round trips across the dynamic range the simulator actually uses
// (roughly -174 dBm noise floor to +30 dBm transmit power).
func TestDBRoundTrips(t *testing.T) {
	rng := rand.New(rand.NewSource(1234))
	const tol = 1e-12
	for i := 0; i < 2000; i++ {
		db := -200 + 400*rng.Float64()
		closeRel(t, "LinearToDB(DBToLinear(db))", LinearToDB(DBToLinear(db)), db, tol)
		closeRel(t, "WattsToDBm(DBmToWatts(db))", WattsToDBm(DBmToWatts(db)), db, tol)
		closeRel(t, "VoltageGainToDB(DBToVoltageGain(db))", VoltageGainToDB(DBToVoltageGain(db)), db, tol)
		closeRel(t, "AmplitudeToDBm(DBmToAmplitude(db))", AmplitudeToDBm(DBmToAmplitude(db)), db, tol)

		// A power ratio and its voltage-gain form must agree: 10^(db/10) ==
		// (10^(db/20))^2.
		g := DBToVoltageGain(db)
		closeRel(t, "DBToVoltageGain^2 vs DBToLinear", g*g, DBToLinear(db), 1e-9)
	}
	for i := 0; i < 2000; i++ {
		// Log-uniform linear ratios across ~40 decades.
		lin := math.Pow(10, -20+40*rng.Float64())
		closeRel(t, "DBToLinear(LinearToDB(lin))", DBToLinear(LinearToDB(lin)), lin, 1e-9)
		closeRel(t, "DBmToWatts(WattsToDBm(w))", DBmToWatts(WattsToDBm(lin)), lin, 1e-9)
		closeRel(t, "DBToVoltageGain(VoltageGainToDB(g))", DBToVoltageGain(VoltageGainToDB(lin)), lin, 1e-9)
	}
}

// TestNonPositiveInputs pins the -Inf convention for every logarithmic
// conversion on empty or unphysical input.
func TestNonPositiveInputs(t *testing.T) {
	for _, v := range []float64{0, -1e-12, -1, math.Inf(-1)} {
		for name, fn := range map[string]func(float64) float64{
			"LinearToDB":      LinearToDB,
			"WattsToDBm":      WattsToDBm,
			"VoltageGainToDB": VoltageGainToDB,
		} {
			if got := fn(v); !math.IsInf(got, -1) {
				t.Errorf("%s(%g) = %g, want -Inf", name, v, got)
			}
		}
	}
	if got := AmplitudeToDBm(0); !math.IsInf(got, -1) {
		t.Errorf("AmplitudeToDBm(0) = %g, want -Inf", got)
	}
	if got := PAPRdB(nil); got != 0 {
		t.Errorf("PAPRdB(nil) = %g, want 0", got)
	}
	if got := PAPRdB(make([]complex128, 16)); got != 0 {
		t.Errorf("PAPRdB(zero signal) = %g, want 0", got)
	}
}

// TestNoiseFloorAndNoiseFigure checks the kTB anchor points the RF noise
// models are built on: -174 dBm/Hz at T0 and the textbook noise-figure
// excess-power identity.
func TestNoiseFloorAndNoiseFigure(t *testing.T) {
	if got := ThermalNoiseDBm(1); math.Abs(got-(-173.975)) > 0.01 {
		t.Errorf("ThermalNoiseDBm(1 Hz) = %g, want about -173.975", got)
	}
	// 20 MHz channel: -174 + 10 log10(2e7) = about -100.9 dBm.
	if got := ThermalNoiseDBm(20e6); math.Abs(got-(-100.96)) > 0.05 {
		t.Errorf("ThermalNoiseDBm(20 MHz) = %g, want about -100.96", got)
	}
	// A noise figure F multiplies kTB: floor(NF) = floor(0) + NF in dB.
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 100; i++ {
		nfDB := 12 * rng.Float64()
		bw := math.Pow(10, 3+6*rng.Float64())
		withNF := WattsToDBm(ThermalNoisePower(bw) * DBToLinear(nfDB))
		closeRel(t, "noise floor with NF", withNF, ThermalNoiseDBm(bw)+nfDB, 1e-9)
	}
	// Bandwidth doubling raises the floor by exactly 3.0103 dB.
	d := ThermalNoiseDBm(2e6) - ThermalNoiseDBm(1e6)
	closeRel(t, "floor delta per bandwidth doubling", d, 10*math.Log10(2), 1e-9)
}

// TestSetPowerDBmRoundTrip scales random signals to random target powers
// and verifies the measured power lands on the target.
func TestSetPowerDBmRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 50; i++ {
		x := make([]complex128, 256)
		for j := range x {
			x[j] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		target := -90 + 80*rng.Float64()
		g := SetPowerDBm(x, target)
		if g <= 0 {
			t.Fatalf("SetPowerDBm returned non-positive gain %g", g)
		}
		closeRel(t, "MeanPowerDBm after SetPowerDBm", MeanPowerDBm(x), target, 1e-9)
	}
	// Zero signal: unchanged, gain 1.
	z := make([]complex128, 8)
	if g := SetPowerDBm(z, -10); g != 1 {
		t.Errorf("SetPowerDBm(zero signal) gain = %g, want 1", g)
	}
}
