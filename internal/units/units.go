// Package units provides the decibel, power and noise conversions used
// throughout the simulator.
//
// Conventions:
//   - Powers are referred to a 1 ohm load unless stated otherwise, so the
//     instantaneous power of a complex baseband sample x is |x|^2 and the
//     mean power of a signal is E[|x|^2].
//   - dBm values are absolute powers referenced to one milliwatt.
//   - dB values are dimensionless ratios.
package units

import "math"

// Boltzmann is the Boltzmann constant in joules per kelvin.
const Boltzmann = 1.380649e-23

// RoomTemperature is the standard noise reference temperature T0 in kelvin.
const RoomTemperature = 290.0

// DBToLinear converts a power ratio in dB to a linear power ratio.
func DBToLinear(db float64) float64 { return math.Pow(10, db/10) }

// LinearToDB converts a linear power ratio to dB.
// It returns -Inf for a non-positive ratio.
func LinearToDB(lin float64) float64 {
	if lin <= 0 {
		return math.Inf(-1)
	}
	return 10 * math.Log10(lin)
}

// DBToVoltageGain converts a power gain in dB to the equivalent voltage
// (amplitude) gain.
func DBToVoltageGain(db float64) float64 { return math.Pow(10, db/20) }

// VoltageGainToDB converts a voltage (amplitude) gain to a power gain in dB.
func VoltageGainToDB(g float64) float64 {
	if g <= 0 {
		return math.Inf(-1)
	}
	return 20 * math.Log10(g)
}

// DBmToWatts converts an absolute power in dBm to watts.
func DBmToWatts(dbm float64) float64 { return 1e-3 * math.Pow(10, dbm/10) }

// WattsToDBm converts an absolute power in watts to dBm.
// It returns -Inf for a non-positive power.
func WattsToDBm(w float64) float64 {
	if w <= 0 {
		return math.Inf(-1)
	}
	return 10*math.Log10(w) + 30
}

// DBmToAmplitude returns the rms amplitude of a signal whose mean power into
// a 1 ohm load equals the given dBm value. For a complex baseband signal of
// mean power P, the rms amplitude is sqrt(P).
func DBmToAmplitude(dbm float64) float64 { return math.Sqrt(DBmToWatts(dbm)) }

// AmplitudeToDBm returns the power in dBm of a signal with the given rms
// amplitude into a 1 ohm load.
func AmplitudeToDBm(a float64) float64 { return WattsToDBm(a * a) }

// ThermalNoisePower returns the thermal noise power kTB in watts for the
// given bandwidth in hertz at the standard reference temperature.
func ThermalNoisePower(bandwidthHz float64) float64 {
	return Boltzmann * RoomTemperature * bandwidthHz
}

// ThermalNoiseDBm returns the thermal noise floor kTB in dBm for the given
// bandwidth in hertz (about -174 dBm/Hz at T0).
func ThermalNoiseDBm(bandwidthHz float64) float64 {
	return WattsToDBm(ThermalNoisePower(bandwidthHz))
}

// MeanPower returns the average instantaneous power of a complex signal into
// a 1 ohm load. It returns 0 for an empty slice.
func MeanPower(x []complex128) float64 {
	if len(x) == 0 {
		return 0
	}
	var sum float64
	for _, v := range x {
		sum += real(v)*real(v) + imag(v)*imag(v)
	}
	return sum / float64(len(x))
}

// MeanPowerDBm returns the average power of a complex signal in dBm.
func MeanPowerDBm(x []complex128) float64 { return WattsToDBm(MeanPower(x)) }

// PeakPower returns the maximum instantaneous power of a complex signal.
func PeakPower(x []complex128) float64 {
	var peak float64
	for _, v := range x {
		if p := real(v)*real(v) + imag(v)*imag(v); p > peak {
			peak = p
		}
	}
	return peak
}

// PAPRdB returns the peak-to-average power ratio of the signal in dB.
// It returns 0 for an empty or all-zero signal.
func PAPRdB(x []complex128) float64 {
	mean := MeanPower(x)
	if mean <= 0 {
		return 0
	}
	return LinearToDB(PeakPower(x) / mean)
}

// Scale multiplies the signal in place by the real gain g and returns it.
func Scale(x []complex128, g float64) []complex128 {
	for i := range x {
		x[i] *= complex(g, 0)
	}
	return x
}

// SetPowerDBm scales the signal in place so that its mean power equals the
// given dBm value, and returns the applied voltage gain. A zero signal is
// returned unchanged with gain 1.
func SetPowerDBm(x []complex128, dbm float64) float64 {
	p := MeanPower(x)
	if p <= 0 {
		return 1
	}
	g := math.Sqrt(DBmToWatts(dbm) / p)
	Scale(x, g)
	return g
}
