// Package randutil accelerates deterministic restarts of math/rand
// generators. The RF block models restart their fixed-seed noise streams on
// every packet; math/rand's Seed regenerates a 607-entry lagged-Fibonacci
// feedback register from scratch (~tens of microseconds), which dominated the
// per-packet reset cost. A Restarter snapshots the freshly seeded generator
// state once and restores it by copy, producing the bit-identical stream.
package randutil

import (
	"math/rand"
	"reflect"
	"unsafe"
)

// rngLen is math/rand's feedback register length (stable since Go 1).
const rngLen = 607

// sourceState mirrors math/rand.rngSource. The layout is verified
// field-by-field against the runtime type before any unsafe access; on
// mismatch the Restarter falls back to the documented Seed path.
type sourceState struct {
	tap  int
	feed int
	vec  [rngLen]int64
}

// Restarter restarts a *rand.Rand to its state right after construction.
// Restart is bit-identical to rng.Seed(seed) — same source state, same
// cleared Read remainder — but avoids re-running the seeding procedure when
// the generator internals match the expected layout. The zero value is not
// usable; build one with New.
type Restarter struct {
	rng  *rand.Rand
	seed int64

	src   *sourceState // live generator state, nil when layout is unknown
	saved sourceState  // snapshot taken at New
}

// New snapshots rng, which must have just been built as
// rand.New(rand.NewSource(seed)) (or equivalently reset with rng.Seed(seed)).
// The seed is kept for the fallback path.
func New(rng *rand.Rand, seed int64) *Restarter {
	r := &Restarter{rng: rng, seed: seed}
	if src := sourceStateOf(rng); src != nil {
		r.src = src
		r.saved = *src
	}
	return r
}

// Restart rewinds the generator to the snapshot, equivalent to
// rng.Seed(seed).
func (r *Restarter) Restart() {
	if r.src == nil {
		r.rng.Seed(r.seed)
		return
	}
	*r.src = r.saved
	// Seed also discards the remainder of the most recent Read call.
	clearReadState(r.rng)
}

// fastPath reports whether the snapshot/restore path is active (used by
// tests to ensure the layout probe matches this Go version).
func (r *Restarter) fastPath() bool { return r.src != nil }

// sourceStateOf returns a direct view of rng's internal rngSource, or nil if
// the runtime layout does not match sourceState exactly.
func sourceStateOf(rng *rand.Rand) *sourceState {
	if rng == nil {
		return nil
	}
	srcField := reflect.ValueOf(rng).Elem().FieldByName("src")
	if !srcField.IsValid() || srcField.Kind() != reflect.Interface || srcField.IsNil() {
		return nil
	}
	ptr := srcField.Elem()
	if ptr.Kind() != reflect.Pointer || ptr.IsNil() {
		return nil
	}
	typ := ptr.Elem().Type()
	// fibSource (this package's snapshot-constructed clone) shares the exact
	// field layout and passes the same field-by-field verification below.
	if (typ.Name() != "rngSource" && typ.Name() != "fibSource") || typ.Kind() != reflect.Struct {
		return nil
	}
	want := reflect.TypeOf(sourceState{})
	if typ.NumField() != want.NumField() || typ.Size() != want.Size() {
		return nil
	}
	for i := 0; i < want.NumField(); i++ {
		got, exp := typ.Field(i), want.Field(i)
		if got.Name != exp.Name || got.Type != exp.Type || got.Offset != exp.Offset {
			return nil
		}
	}
	return (*sourceState)(unsafe.Pointer(ptr.Pointer()))
}

// readValOffset/readPosOffset locate rand.Rand's Read remainder fields;
// readStateOK gates the unsafe writes on the expected field types.
var (
	readValOffset, readPosOffset uintptr
	readStateOK                  bool
)

func init() {
	typ := reflect.TypeOf(rand.Rand{})
	fv, okV := typ.FieldByName("readVal")
	fp, okP := typ.FieldByName("readPos")
	if okV && okP && fv.Type.Kind() == reflect.Int64 && fp.Type.Kind() == reflect.Int8 {
		readValOffset, readPosOffset = fv.Offset, fp.Offset
		readStateOK = true
	}
}

func clearReadState(rng *rand.Rand) {
	if !readStateOK {
		return
	}
	base := unsafe.Pointer(rng)
	*(*int64)(unsafe.Pointer(uintptr(base) + readValOffset)) = 0
	*(*int8)(unsafe.Pointer(uintptr(base) + readPosOffset)) = 0
}
