package randutil

import "math/rand"

// The batched-draw path: a batch of B packets (or B equal-config sweep
// points) whose RF blocks restart their fixed-seed noise streams per packet
// would draw B identical sequences. Restarting the one generator once per
// batch and materializing its draws into planes preserves the exact
// per-packet draw order — lane b of the batch consumes the same values, in
// the same order, as its own restarted generator would — while paying for
// the stream once instead of B times. FillNormPairs is the materializer;
// the property test pins plane k against the k-th per-packet draw bit for
// bit.

// FillNormPairs fills re[i], im[i] with successive NormFloat64 draws in
// per-sample order — re[i] first, then im[i] — the draw order of a block
// model that adds complex Gaussian noise sample by sample. re and im must
// have equal length.
func FillNormPairs(rng *rand.Rand, re, im []float64) {
	im = im[:len(re)]
	for i := range re {
		re[i] = rng.NormFloat64()
		im[i] = rng.NormFloat64()
	}
}
