package randutil

import (
	"math/rand"
	"sync"
)

// fibSource is a drop-in replacement for math/rand's unexported rngSource:
// the same additive lagged-Fibonacci generator over a 607-entry register,
// stepping bit-identically, but constructed by copying a cached post-seeding
// register snapshot instead of re-running the seeding procedure (which walks
// the full register through a multiplicative generator and dominates
// rand.NewSource at ~tens of microseconds). The field layout mirrors
// sourceState exactly so Restarter's snapshot/restore path applies to it
// unchanged.
type fibSource struct {
	tap  int
	feed int
	vec  [rngLen]int64
}

// Uint64 replicates rngSource.Uint64: decrement both register walkers and
// feed the sum back. Signed overflow wraps, as in the original.
func (s *fibSource) Uint64() uint64 {
	s.tap--
	if s.tap < 0 {
		s.tap += rngLen
	}
	s.feed--
	if s.feed < 0 {
		s.feed += rngLen
	}
	x := s.vec[s.feed] + s.vec[s.tap]
	s.vec[s.feed] = x
	return uint64(x)
}

// Int63 replicates rngSource.Int63: the full step with the sign bit masked.
func (s *fibSource) Int63() int64 {
	return int64(s.Uint64() &^ (1 << 63))
}

// Seed reproduces rngSource.Seed's post-seeding register bit for bit. The
// arithmetic reseed computes it directly (no per-seed cache), so arbitrary
// derived seeds — the per-packet stage seeds — reseed in a few microseconds
// without pinning snapshots; the snapshot cache remains as the fallback when
// the reseed self-check failed.
func (s *fibSource) Seed(seed int64) {
	if reseedOK {
		s.reseed(seed)
		return
	}
	st := snapshotFor(seed)
	if st == nil {
		// Unreachable by construction: a fibSource is only built after the
		// layout probe succeeded once, and snapshots persist for the process.
		panic("randutil: rngSource layout probe regressed after construction")
	}
	s.tap, s.feed, s.vec = st.tap, st.feed, st.vec
}

// seedSnapshots caches the post-seeding register per seed value. Entries are
// immutable once stored and live for the process; at ~5 KB each, callers
// should reserve NewRand for small fixed seed sets.
var seedSnapshots sync.Map // int64 -> *sourceState

// snapshotFor returns the post-seeding generator state for seed, seeding a
// throwaway math/rand source on first use. It returns nil when the runtime's
// rngSource layout does not match (the unsafe view is unavailable).
func snapshotFor(seed int64) *sourceState {
	if v, ok := seedSnapshots.Load(seed); ok {
		return v.(*sourceState)
	}
	src := sourceStateOf(rand.New(rand.NewSource(seed)))
	if src == nil {
		return nil
	}
	cp := *src
	v, _ := seedSnapshots.LoadOrStore(seed, &cp)
	return v.(*sourceState)
}

// NewRand returns a generator seeded with seed whose every stream is
// bit-identical to rand.New(rand.NewSource(seed)). The post-seeding register
// is cached per seed value, so repeated constructions with the same seed —
// the RF blocks' fixed noise seeds, rebuilt for every sweep point — cost a
// register copy instead of math/rand's full seeding pass. Each distinct seed
// pins a ~5 KB snapshot for the process lifetime, so thread per-run derived
// seeds through rand.NewSource directly and keep NewRand for fixed seeds.
func NewRand(seed int64) *rand.Rand {
	if st := snapshotFor(seed); st != nil {
		return rand.New(&fibSource{tap: st.tap, feed: st.feed, vec: st.vec})
	}
	return rand.New(rand.NewSource(seed))
}
