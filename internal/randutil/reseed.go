package randutil

import "math/rand"

// The arithmetic reseed path. rngSource.Seed walks a MINSTD linear
// congruential generator (x ← 48271·x mod 2³¹−1, in Schrage form with a
// hardware divide per step) 20 warmup steps plus three steps per register
// entry, folding each triple into the entry together with a baked-in
// "cooked" mask — ~1800 sequential divides per reseed. Per-packet derived
// seeds turned that walk into a per-packet cost. reseed computes the
// identical register directly: the three LCG draws entering entry i sit at
// advance counts 21+3i, 22+3i and 23+3i from the folded seed, so three
// lanes starting at x₀·48271²¹, x₀·48271²² and x₀·48271²³ (mod M) and each
// stepping by 48271³ per entry produce exactly those draws with three
// Mersenne-prime modular multiplies per entry — no division, and the three
// lanes' dependency chains overlap. The cooked mask is recovered once at
// init by seeding a throwaway stdlib source and XORing the computed lane
// chain back off its register; a multi-seed self-check gates the path, so a
// future stdlib that changes its seeding procedure falls back to the
// snapshot cache instead of diverging.

const (
	// minstdM is the MINSTD modulus 2³¹−1 — a Mersenne prime, which is what
	// makes the reduction in mulmod31 two folds and a conditional subtract.
	minstdM = (1 << 31) - 1
	// minstdA is the multiplier of math/rand's seeding LCG.
	minstdA = 48271
)

// mulmod31 returns a·b mod 2³¹−1 for a, b < 2³¹. The 62-bit product is
// reduced by two Mersenne folds (p ≡ (p & M) + (p >> 31) mod M) and one
// conditional subtract; the result is exact because M is prime and both
// factors are nonzero residues, so the true residue is never the ambiguous
// 0 ≡ M.
func mulmod31(a, b uint64) uint64 {
	p := a * b
	r := (p & minstdM) + (p >> 31)
	r = (r & minstdM) + (r >> 31)
	if r >= minstdM {
		r -= minstdM
	}
	return r
}

// powmod31 returns base^exp mod 2³¹−1 by square-and-multiply.
func powmod31(base, exp uint64) uint64 {
	r := uint64(1)
	for ; exp > 0; exp >>= 1 {
		if exp&1 == 1 {
			r = mulmod31(r, base)
		}
		base = mulmod31(base, base)
	}
	return r
}

var (
	// laneStart is 48271²¹ mod M — the LCG advance count of the first draw
	// after the 20 warmup steps. laneStep is 48271³, one register entry's
	// worth of draws.
	laneStart = powmod31(minstdA, 21)
	laneStep  = powmod31(minstdA, 3)

	// reseedCooked holds math/rand's baked-in seeding mask, recovered by the
	// init probe; reseedTap/reseedFeed are the post-Seed walker positions.
	// reseedOK gates the arithmetic path on the probe and its self-check.
	reseedCooked [rngLen]uint64
	reseedTap    int
	reseedFeed   int
	reseedOK     bool
)

// seedLanes folds seed the way rngSource.Seed does (mod 2³¹−1, shifted
// positive, zero mapped to 89482311) and returns the three lane start
// values.
func seedLanes(seed int64) (a, b, c uint64) {
	x := seed % minstdM
	if x < 0 {
		x += minstdM
	}
	if x == 0 {
		x = 89482311
	}
	a = mulmod31(uint64(x), laneStart)
	b = mulmod31(a, minstdA)
	c = mulmod31(b, minstdA)
	return
}

// reseed initializes s to seed's post-seeding state, bit-identical to
// rngSource.Seed. Callers must have checked reseedOK.
func (s *fibSource) reseed(seed int64) {
	s.tap, s.feed = reseedTap, reseedFeed
	a, b, c := seedLanes(seed)
	for i := range s.vec {
		s.vec[i] = int64(a<<40 ^ b<<20 ^ c ^ reseedCooked[i])
		a = mulmod31(a, laneStep)
		b = mulmod31(b, laneStep)
		c = mulmod31(c, laneStep)
	}
}

func init() {
	src := sourceStateOf(rand.New(rand.NewSource(1)))
	if src == nil {
		return // layout probe failed; Seed keeps the snapshot-cache path
	}
	a, b, c := seedLanes(1)
	for i := range reseedCooked {
		reseedCooked[i] = uint64(src.vec[i]) ^ (a<<40 ^ b<<20 ^ c)
		a = mulmod31(a, laneStep)
		b = mulmod31(b, laneStep)
		c = mulmod31(c, laneStep)
	}
	reseedTap, reseedFeed = src.tap, src.feed
	// Self-check on seeds the derivation did not see — a zero, a negative,
	// a multiple of the modulus and a large 63-bit value — before enabling
	// the path for everyone.
	for _, s := range []int64{0, 42, -9, 3 * minstdM, 1 << 62} {
		ref := sourceStateOf(rand.New(rand.NewSource(s)))
		var got fibSource
		got.reseed(s)
		if ref == nil || got.tap != ref.tap || got.feed != ref.feed || got.vec != ref.vec {
			return
		}
	}
	reseedOK = true
}

// NewReseedingRand returns a generator bit-identical to
// rand.New(rand.NewSource(seed)) whose Seed method recomputes the register
// arithmetically instead of caching per-seed snapshots. Use it for per-run
// derived seeds: NewRand's cache pins ~5 KB per distinct seed for the
// process lifetime, which the sweep executor's per-point seeds would grow
// without bound. Falls back to the stock source when the layout probe or
// the reseed self-check failed.
func NewReseedingRand(seed int64) *rand.Rand {
	if reseedOK {
		s := &fibSource{}
		s.reseed(seed)
		return rand.New(s)
	}
	return rand.New(rand.NewSource(seed))
}
