package randutil

import (
	"math/rand"
	"testing"
)

// reseedTestSeeds covers the seed-folding corners: zero (mapped to the fixed
// constant), negatives, exact multiples of the modulus (which fold to zero),
// values just around the modulus, and large 63-bit hash-like values — the
// shape of the per-packet stage seeds.
var reseedTestSeeds = []int64{
	0, 1, 2, 42, -1, -7, 1<<31 - 1, 1 << 31, -(1<<31 - 1),
	3 * (1<<31 - 1), 1<<31 - 2, 1 << 40, -(1 << 40), 1<<63 - 1, -1 << 62,
	7316732536662113123, -4181792142133755926,
}

// TestReseedSelfCheckEnabled pins that the arithmetic reseed derivation
// succeeded on this runtime — otherwise every per-packet Seed silently pays
// the snapshot-cache path this package exists to avoid.
func TestReseedSelfCheckEnabled(t *testing.T) {
	if !reseedOK {
		t.Fatal("arithmetic reseed disabled: the init derivation or its self-check failed on this Go runtime")
	}
}

// TestReseedMatchesMathRandState compares the full register — walker
// positions and all 607 entries — against a freshly seeded stdlib source for
// every corner seed.
func TestReseedMatchesMathRandState(t *testing.T) {
	if !reseedOK {
		t.Skip("arithmetic reseed unavailable")
	}
	for _, seed := range reseedTestSeeds {
		ref := sourceStateOf(rand.New(rand.NewSource(seed)))
		if ref == nil {
			t.Fatal("stdlib layout probe failed")
		}
		var got fibSource
		got.reseed(seed)
		if got.tap != ref.tap || got.feed != ref.feed {
			t.Fatalf("seed %d: walkers (%d,%d), want (%d,%d)", seed, got.tap, got.feed, ref.tap, ref.feed)
		}
		for i := range got.vec {
			if got.vec[i] != ref.vec[i] {
				t.Fatalf("seed %d: vec[%d] = %d, want %d", seed, i, got.vec[i], ref.vec[i])
			}
		}
	}
}

// TestFibSourceSeedStreamEquality reseeds one fibSource through a sequence of
// derived-style seeds mid-stream — the per-packet usage — and pins the
// resulting draw streams against reference generators.
func TestFibSourceSeedStreamEquality(t *testing.T) {
	fast := NewRand(0)
	for _, seed := range reseedTestSeeds {
		// Draw a little first so the reseed has state to overwrite.
		fast.Int63()
		fast.Seed(seed)
		ref := rand.New(rand.NewSource(seed))
		for i := 0; i < 700; i++ { // past one full register wrap
			if g, w := fast.Uint64(), ref.Uint64(); g != w {
				t.Fatalf("seed %d draw %d: %d, want %d", seed, i, g, w)
			}
		}
	}
}

// TestNewReseedingRandMatchesMathRand pins the cache-free constructor.
func TestNewReseedingRandMatchesMathRand(t *testing.T) {
	for _, seed := range reseedTestSeeds {
		fast := NewReseedingRand(seed)
		ref := rand.New(rand.NewSource(seed))
		for i := 0; i < 100; i++ {
			if g, w := fast.Int63(), ref.Int63(); g != w {
				t.Fatalf("seed %d draw %d: %d, want %d", seed, i, g, w)
			}
		}
		//lint:ignore floateq bit-identity contract: both generators must emit the same bits
		if g, w := fast.NormFloat64(), ref.NormFloat64(); g != w {
			t.Fatalf("seed %d: NormFloat64 %v, want %v", seed, g, w)
		}
	}
}

func BenchmarkFibSourceReseed(b *testing.B) {
	rng := NewRand(0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rng.Seed(int64(i)*2654435761 + 12345)
	}
}

func BenchmarkMathRandReseed(b *testing.B) {
	rng := rand.New(rand.NewSource(0))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rng.Seed(int64(i)*2654435761 + 12345)
	}
}
