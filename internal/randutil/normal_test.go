package randutil

import (
	"math"
	"math/rand"
	"testing"
)

// TestRandDirectStreamEquality pins every concrete-receiver draw method
// against math/rand on the same seed. The interleaved method mix walks all
// branch combinations; the long pure-NormFloat64 run afterwards makes the
// rare ziggurat paths (tail loop, wedge rejection) statistically certain to
// be exercised — at ~1% rejection rate, 200k draws miss them with
// probability ~e^-2000.
func TestRandDirectStreamEquality(t *testing.T) {
	for _, seed := range []int64{0, 1, 5, 42, -13, 1 << 50, 7316732536662113123} {
		fast := NewRandDirect(seed)
		ref := rand.New(rand.NewSource(seed))
		for i := 0; i < 4000; i++ {
			switch i % 4 {
			case 0:
				if g, w := fast.Uint64(), ref.Uint64(); g != w {
					t.Fatalf("seed %d draw %d: Uint64 %d, want %d", seed, i, g, w)
				}
			case 1:
				if g, w := fast.Int63(), ref.Int63(); g != w {
					t.Fatalf("seed %d draw %d: Int63 %d, want %d", seed, i, g, w)
				}
			case 2:
				if g, w := math.Float64bits(fast.Float64()), math.Float64bits(ref.Float64()); g != w {
					t.Fatalf("seed %d draw %d: Float64 bits %x, want %x", seed, i, g, w)
				}
			case 3:
				if g, w := math.Float64bits(fast.NormFloat64()), math.Float64bits(ref.NormFloat64()); g != w {
					t.Fatalf("seed %d draw %d: NormFloat64 bits %x, want %x", seed, i, g, w)
				}
			}
		}
		for i := 0; i < 200000; i++ {
			if g, w := math.Float64bits(fast.NormFloat64()), math.Float64bits(ref.NormFloat64()); g != w {
				t.Fatalf("seed %d long-run draw %d: NormFloat64 bits %x, want %x", seed, i, g, w)
			}
		}
	}
}

// TestRandDirectSeedMidStream reseeds mid-stream with derived-style seeds —
// the per-packet noise usage — and pins the stream after each reseed.
func TestRandDirectSeedMidStream(t *testing.T) {
	fast := NewRandDirect(0)
	ref := rand.New(rand.NewSource(0))
	for _, seed := range []int64{9, -4, 1 << 45, 6148914691236517205} {
		fast.NormFloat64()
		ref.NormFloat64()
		fast.Seed(seed)
		ref.Seed(seed)
		for i := 0; i < 2000; i++ {
			if g, w := math.Float64bits(fast.NormFloat64()), math.Float64bits(ref.NormFloat64()); g != w {
				t.Fatalf("seed %d draw %d: NormFloat64 bits %x, want %x", seed, i, g, w)
			}
		}
	}
}

// TestRandDirectMarkRewind pins the restart contract: Rewind reproduces the
// draw stream from the marked state, like Restarter.Restart on *rand.Rand.
func TestRandDirectMarkRewind(t *testing.T) {
	rng := NewRandDirect(17)
	want := make([]uint64, 200)
	for i := range want {
		want[i] = math.Float64bits(rng.NormFloat64())
	}
	rng.Rewind()
	for i := range want {
		if g := math.Float64bits(rng.NormFloat64()); g != want[i] {
			t.Fatalf("draw %d after Rewind: bits %x, want %x", i, g, want[i])
		}
	}
	// A mid-stream Mark moves the rewind point.
	rng.Seed(23)
	for i := 0; i < 50; i++ {
		rng.NormFloat64()
	}
	rng.Mark()
	a := rng.NormFloat64()
	rng.Rewind()
	if b := rng.NormFloat64(); math.Float64bits(a) != math.Float64bits(b) {
		t.Fatalf("draw after mid-stream Mark/Rewind: %v, want %v", b, a)
	}
}

// TestRandDirectFillNormPairs pins the batched materializer against the
// package-level function on a *rand.Rand with the same seed.
func TestRandDirectFillNormPairs(t *testing.T) {
	fast := NewRandDirect(29)
	ref := rand.New(rand.NewSource(29))
	re, im := make([]float64, 333), make([]float64, 333)
	wre, wim := make([]float64, 333), make([]float64, 333)
	fast.FillNormPairs(re, im)
	FillNormPairs(ref, wre, wim)
	for i := range re {
		if math.Float64bits(re[i]) != math.Float64bits(wre[i]) ||
			math.Float64bits(im[i]) != math.Float64bits(wim[i]) {
			t.Fatalf("pair %d: (%v,%v), want (%v,%v)", i, re[i], im[i], wre[i], wim[i])
		}
	}
}

func BenchmarkNormFloat64Direct(b *testing.B) {
	rng := NewRandDirect(3)
	for i := 0; i < b.N; i++ {
		rng.NormFloat64()
	}
}

func BenchmarkNormFloat64MathRand(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < b.N; i++ {
		rng.NormFloat64()
	}
}
