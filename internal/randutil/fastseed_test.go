package randutil

import (
	"math/rand"
	"testing"
)

// TestNewRandMatchesMathRand pins the bit-identity contract: every stream a
// NewRand generator produces must equal rand.New(rand.NewSource(seed)),
// across the raw source outputs and the distribution methods layered on top.
func TestNewRandMatchesMathRand(t *testing.T) {
	for _, seed := range []int64{0, 1, 42, 101, -7, 1 << 40} {
		fast := NewRand(seed)
		ref := rand.New(rand.NewSource(seed))
		for i := 0; i < 2000; i++ {
			switch i % 5 {
			case 0:
				if g, w := fast.Uint64(), ref.Uint64(); g != w {
					t.Fatalf("seed %d draw %d: Uint64 %d, want %d", seed, i, g, w)
				}
			case 1:
				if g, w := fast.Int63(), ref.Int63(); g != w {
					t.Fatalf("seed %d draw %d: Int63 %d, want %d", seed, i, g, w)
				}
			case 2:
				//lint:ignore floateq bit-identity contract: both generators must emit the same bits
				if g, w := fast.Float64(), ref.Float64(); g != w {
					t.Fatalf("seed %d draw %d: Float64 %v, want %v", seed, i, g, w)
				}
			case 3:
				//lint:ignore floateq bit-identity contract: both generators must emit the same bits
				if g, w := fast.NormFloat64(), ref.NormFloat64(); g != w {
					t.Fatalf("seed %d draw %d: NormFloat64 %v, want %v", seed, i, g, w)
				}
			case 4:
				if g, w := fast.Intn(1000), ref.Intn(1000); g != w {
					t.Fatalf("seed %d draw %d: Intn %d, want %d", seed, i, g, w)
				}
			}
		}
	}
}

// TestNewRandSeedMatchesMathRand verifies that reseeding a NewRand generator
// mid-stream lands on the same state as reseeding the reference.
func TestNewRandSeedMatchesMathRand(t *testing.T) {
	fast := NewRand(5)
	ref := rand.New(rand.NewSource(5))
	for i := 0; i < 100; i++ {
		fast.Int63()
		ref.Int63()
	}
	fast.Seed(9)
	ref.Seed(9)
	for i := 0; i < 500; i++ {
		if g, w := fast.Int63(), ref.Int63(); g != w {
			t.Fatalf("draw %d after reseed: %d, want %d", i, g, w)
		}
	}
}

// TestRestarterFastPathOnNewRand checks that the layout probe accepts the
// fibSource clone, so RF blocks built on NewRand keep the snapshot restart.
func TestRestarterFastPathOnNewRand(t *testing.T) {
	rng := NewRand(7)
	r := New(rng, 7)
	if !r.fastPath() {
		t.Fatal("Restarter fell back to Seed for a NewRand generator; fibSource layout probe failed")
	}
	want := make([]int64, 50)
	for i := range want {
		want[i] = rng.Int63()
	}
	r.Restart()
	for i := range want {
		if g := rng.Int63(); g != want[i] {
			t.Fatalf("draw %d after Restart: %d, want %d", i, g, want[i])
		}
	}
}

// TestNewRandAllocCheap pins the point of the snapshot cache: after the first
// construction for a seed, building another generator must not re-run
// math/rand's seeding pass (measured indirectly — the construction must not
// allocate the throwaway template generator).
func TestNewRandAllocCheap(t *testing.T) {
	NewRand(11) // populate the snapshot
	n := testing.AllocsPerRun(100, func() {
		NewRand(11)
	})
	// rand.New + fibSource: two allocations. The uncached path adds the
	// template *rand.Rand and rngSource.
	if n > 2 {
		t.Errorf("cached NewRand construction allocates %v objects, want <= 2", n)
	}
}

func BenchmarkNewRandCached(b *testing.B) {
	NewRand(13)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		NewRand(13)
	}
}

func BenchmarkNewSourceReference(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = rand.New(rand.NewSource(13))
	}
}
