package randutil

import (
	"math/rand"
	"testing"
)

// TestFastPathActive pins the layout probe to the toolchain: if math/rand's
// internals ever change shape, this fails loudly instead of silently taking
// the slow path in every benchmark.
func TestFastPathActive(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	r := New(rng, 42)
	if !r.fastPath() {
		t.Fatal("randutil: snapshot fast path inactive for this math/rand layout")
	}
	if !readStateOK {
		t.Fatal("randutil: rand.Rand read-state fields not located")
	}
}

// TestRestartMatchesSeed verifies the restored stream is bit-identical to a
// freshly seeded generator across every draw kind the RF models use.
func TestRestartMatchesSeed(t *testing.T) {
	const seed = 12345
	rng := rand.New(rand.NewSource(seed))
	r := New(rng, seed)

	// Advance the generator by a mixed workload, including Read (which
	// leaves a remainder that Seed must discard).
	for i := 0; i < 1000; i++ {
		rng.NormFloat64()
		rng.Float64()
		rng.Int63()
	}
	var buf [7]byte
	if _, err := rng.Read(buf[:]); err != nil {
		t.Fatal(err)
	}

	r.Restart()
	ref := rand.New(rand.NewSource(seed))
	for i := 0; i < 2000; i++ {
		if got, want := rng.NormFloat64(), ref.NormFloat64(); got != want {
			t.Fatalf("NormFloat64 diverged at draw %d: got %v want %v", i, got, want)
		}
	}
	var gotB, wantB [16]byte
	if _, err := rng.Read(gotB[:]); err != nil {
		t.Fatal(err)
	}
	if _, err := ref.Read(wantB[:]); err != nil {
		t.Fatal(err)
	}
	if gotB != wantB {
		t.Fatalf("Read diverged after restart: got %x want %x", gotB, wantB)
	}
}

// TestRestartMatchesSeedCall cross-checks Restart against rng.Seed itself.
func TestRestartMatchesSeedCall(t *testing.T) {
	const seed = -987654321
	a := rand.New(rand.NewSource(seed))
	b := rand.New(rand.NewSource(seed))
	r := New(a, seed)
	for i := 0; i < 500; i++ {
		a.NormFloat64()
		b.NormFloat64()
	}
	r.Restart()
	b.Seed(seed)
	for i := 0; i < 1000; i++ {
		if got, want := a.Int63(), b.Int63(); got != want {
			t.Fatalf("Int63 diverged at draw %d: got %v want %v", i, got, want)
		}
	}
}

// TestRestartAllocs pins the zero-allocation restart.
func TestRestartAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	r := New(rng, 7)
	if n := testing.AllocsPerRun(100, func() {
		rng.NormFloat64()
		r.Restart()
	}); n != 0 {
		t.Fatalf("Restart allocates %v objects per run, want 0", n)
	}
}

func BenchmarkSeed(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rng.Seed(1)
	}
}

func BenchmarkRestart(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	r := New(rng, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Restart()
	}
}
