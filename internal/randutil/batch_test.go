package randutil

import (
	"math"
	"math/rand"
	"testing"
)

// TestFillNormPairsMatchesPerPacketRestart is the batched-RNG property test:
// one Restarter restart plus one materialized draw sequence must reproduce,
// bit for bit, the draws each of B per-packet-restarted lanes would make on
// its own. This is the exactness argument for sharing one noise/LO plane
// across a batch of equal-config lanes.
func TestFillNormPairsMatchesPerPacketRestart(t *testing.T) {
	const seed = 103 // a mixer noise-stream seed
	const n = 257
	rng := rand.New(rand.NewSource(seed))
	rst := New(rng, seed)

	// The batch path: restart once, materialize once.
	rst.Restart()
	re := make([]float64, n)
	im := make([]float64, n)
	FillNormPairs(rng, re, im)

	// The sequential path: every lane restarts the same stream and draws
	// per sample. Every lane must see exactly the materialized planes.
	for lane := 0; lane < 8; lane++ {
		rst.Restart()
		for i := 0; i < n; i++ {
			d1, d2 := rng.NormFloat64(), rng.NormFloat64()
			if math.Float64bits(d1) != math.Float64bits(re[i]) ||
				math.Float64bits(d2) != math.Float64bits(im[i]) {
				t.Fatalf("lane %d sample %d: per-packet draws (%x,%x) != materialized (%x,%x)",
					lane, i, math.Float64bits(d1), math.Float64bits(d2),
					math.Float64bits(re[i]), math.Float64bits(im[i]))
			}
		}
	}
}

// TestFillNormPairsAdvancesStream pins that materializing consumes exactly
// 2n draws: the next draw after FillNormPairs equals the 2n+1-th draw of a
// freshly restarted stream, so interleaving materialized frames with scalar
// draws preserves the stream position.
func TestFillNormPairsAdvancesStream(t *testing.T) {
	const seed, n = 42, 63
	rng := rand.New(rand.NewSource(seed))
	rst := New(rng, seed)

	rst.Restart()
	re := make([]float64, n)
	im := make([]float64, n)
	FillNormPairs(rng, re, im)
	next := rng.NormFloat64()

	rst.Restart()
	for i := 0; i < 2*n; i++ {
		rng.NormFloat64()
	}
	want := rng.NormFloat64()
	if math.Float64bits(next) != math.Float64bits(want) {
		t.Fatalf("stream position after FillNormPairs: next draw %x != %x", math.Float64bits(next), math.Float64bits(want))
	}
}
