// Package rxdsp implements the digital receiver of the 802.11a physical
// layer: packet detection and timing synchronization on the short preamble,
// coarse and fine carrier-frequency-offset estimation and correction,
// channel estimation from the long preamble, one-tap equalization with
// pilot-based common-phase-error tracking, SIGNAL decoding, and the full
// packet receive chain. A genie-aided ideal receiver is provided for EVM
// measurements (paper §5.2).
package rxdsp

import (
	"fmt"
	"math"
	"math/cmplx"

	"wlansim/internal/kernels"
	"wlansim/internal/phy"
)

// DetectResult describes a detected packet.
type DetectResult struct {
	// StartIndex is the estimated first sample of the short preamble.
	StartIndex int
	// CoarseCFO is the estimated carrier frequency offset in cycles per
	// sample from the short preamble autocorrelation.
	CoarseCFO float64
	// Metric is the peak normalized autocorrelation (0..1).
	Metric float64
}

// Detector finds 802.11a packets by delay-and-correlate over the 16-sample
// periodic short training sequence, gated by an energy-rise condition so
// that idle-channel residue (noise shaped by the channel filter, wandering
// DC offsets) cannot fake a plateau.
type Detector struct {
	// Threshold is the normalized autocorrelation level treated as signal
	// (default 0.6; the plateau metric saturates at SNR/(1+SNR), so 0.6
	// keeps packets near 4 dB SNR detectable).
	Threshold float64
	// MinPlateau is the number of consecutive above-threshold lags required
	// (default 64; the short preamble provides ~128).
	MinPlateau int
	// EnergyRise is the factor by which the window energy must exceed the
	// tracked idle floor (default 2.5, about 4 dB). Set to 1 to disable
	// the gate.
	EnergyRise float64
}

// NewDetector returns a detector with default parameters.
func NewDetector() *Detector {
	return &Detector{Threshold: 0.6, MinPlateau: 64, EnergyRise: 2.5}
}

const shortLag = phy.ShortSymbolPeriod // 16

// Detect scans x for the first packet at or after index from. It returns an
// error when no plateau satisfies the threshold.
func (d *Detector) Detect(x []complex128, from int) (DetectResult, error) {
	threshold := d.Threshold
	if threshold <= 0 || threshold >= 1 {
		threshold = 0.6
	}
	plateau := d.MinPlateau
	if plateau <= 0 {
		plateau = 64
	}
	const window = 32 // correlation window length
	need := shortLag + window + 1
	if from < 0 {
		from = 0
	}
	if len(x)-from < need+plateau {
		return DetectResult{}, fmt.Errorf("rxdsp: signal too short for detection (%d samples)", len(x)-from)
	}

	// Sliding sums of c[n] = sum_k x[n+k] conj(x[n+k+16]) and the energy
	// e[n] = sum_k |x[n+k+16]|^2.
	var c complex128
	var e float64
	abs2 := func(v complex128) float64 { return real(v)*real(v) + imag(v)*imag(v) }
	for k := 0; k < window; k++ {
		c += x[from+k] * cmplx.Conj(x[from+k+shortLag])
		e += abs2(x[from+k+shortLag])
	}

	rise := d.EnergyRise
	if rise < 1 {
		rise = 2.5
	}

	run := 0
	runStart := -1
	var accC complex128
	floor := math.Inf(1) // decaying minimum tracker of the idle energy
	limit := len(x) - need
	thr2 := threshold * threshold
	for n := from; n <= limit; n++ {
		if e < floor {
			floor = e
		} else {
			floor *= 1.0005 // let the floor recover slowly
		}
		// The threshold test |c|/e > threshold is evaluated on squares so the
		// scan pays no square root or division per sample; the actual metric
		// is only materialized on the return path.
		above := e > 1e-30 && abs2(c) > thr2*e*e
		if above && (rise <= 1 || e > rise*floor) {
			if run == 0 {
				runStart = n
				accC = 0
			}
			run++
			accC += c
			if run >= plateau {
				cfo := -cmplx.Phase(accC) / (2 * math.Pi * shortLag)
				m := math.Sqrt(abs2(c)) / e
				return DetectResult{StartIndex: runStart, CoarseCFO: cfo, Metric: m}, nil
			}
		} else {
			run = 0
		}
		// Slide the window by one sample.
		if n+window <= limit+need-1 && n+window+shortLag < len(x) {
			c -= x[n] * cmplx.Conj(x[n+shortLag])
			c += x[n+window] * cmplx.Conj(x[n+window+shortLag])
			e -= abs2(x[n+shortLag])
			e += abs2(x[n+window+shortLag])
		}
	}
	return DetectResult{}, fmt.Errorf("rxdsp: no packet detected")
}

// FineTiming locates the start of the long training symbols by
// cross-correlating with the known time-domain long symbol. searchFrom is an
// index near the expected long-preamble guard start; the search spans
// searchLen samples. It returns the index of the first sample of T1 (the
// first full long symbol).
func FineTiming(x []complex128, searchFrom, searchLen int) (int, error) {
	ref := longSymbolTD()
	if searchFrom < 0 {
		searchFrom = 0
	}
	end := searchFrom + searchLen + len(ref) + 64
	if end > len(x) {
		end = len(x)
	}
	if end-searchFrom < len(ref)+64 {
		return 0, fmt.Errorf("rxdsp: fine timing window too small")
	}
	seg := x[searchFrom:end]
	best, bestMag := -1, 0.0
	// Look for the combined peak of two correlations 64 samples apart
	// (T1 and T2), which is unambiguous against the 16-periodic short
	// preamble.
	for l := 0; l+len(ref)+64 <= len(seg); l++ {
		s1, s2 := corrPair(seg, ref, l)
		if m := cmplx.Abs(s1) + cmplx.Abs(s2); m > bestMag {
			best, bestMag = l, m
		}
	}
	if best < 0 {
		return 0, fmt.Errorf("rxdsp: fine timing failed")
	}
	return searchFrom + best, nil
}

// corrPair evaluates the two conjugate dot products sum(seg[l+k]*conj(ref[k]))
// and sum(seg[l+64+k]*conj(ref[k])) via kernels.CorrPair, which runs the four
// accumulator chains split-complex (scalar ILP on the Go tier, one ymm lane
// each on the AVX2 tier) and is bit-exact against the naive complex form.
// Bit-exact vs corrPairRef (TestCorrPairEquivalence).
func corrPair(seg, ref []complex128, l int) (s1, s2 complex128) {
	return kernels.CorrPair(seg[l:], seg[l+64:], ref)
}

// corrPairRef is the retained naive complex-arithmetic reference for corrPair;
// the differential test asserts bit equality between the two on random and
// adversarial inputs.
func corrPairRef(seg, ref []complex128, l int) (s1, s2 complex128) {
	for k, r := range ref {
		s1 += seg[l+k] * cmplx.Conj(r)
		s2 += seg[l+64+k] * cmplx.Conj(r)
	}
	return s1, s2
}

// FineCFO estimates the residual frequency offset (cycles per sample) from
// the two long training symbols starting at t1Start.
func FineCFO(x []complex128, t1Start int) (float64, error) {
	if t1Start < 0 || t1Start+128 > len(x) {
		return 0, fmt.Errorf("rxdsp: long symbols out of range")
	}
	c := dotConj64(x[t1Start:], x[t1Start+64:])
	return -cmplx.Phase(c) / (2 * math.Pi * 64), nil
}

// dotConj64 returns sum over k<64 of u[k]*conj(v[k]) in split-complex form,
// bit-exact vs dotConj64Ref by the same exact-negation argument as corrPair.
func dotConj64(u, v []complex128) complex128 {
	u = u[:64]
	v = v[:64]
	var cre, cim float64
	for k := range u {
		a, b := real(u[k]), imag(u[k])
		c, d := real(v[k]), imag(v[k])
		cre += a*c + b*d
		cim += b*c - a*d
	}
	return complex(cre, cim)
}

// dotConj64Ref is the retained naive reference for dotConj64.
func dotConj64Ref(u, v []complex128) complex128 {
	var c complex128
	for k := 0; k < 64; k++ {
		c += u[k] * cmplx.Conj(v[k])
	}
	return c
}

var longTD []complex128

func longSymbolTD() []complex128 {
	if longTD == nil {
		lp := phy.LongPreamble()
		longTD = lp[32:96] // the first full long symbol
	}
	return longTD
}
