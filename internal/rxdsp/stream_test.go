package rxdsp

import (
	"math"
	"testing"

	"wlansim/internal/bits"
	"wlansim/internal/channel"
	"wlansim/internal/phy"
)

func TestReceiveAllDecodesBurstOfPackets(t *testing.T) {
	frames := []*phy.Frame{
		makeFrame(t, 6, 40, 101),
		makeFrame(t, 24, 80, 102),
		makeFrame(t, 54, 60, 103),
	}
	gap := 350
	total := 200
	for _, f := range frames {
		total += len(f.Samples) + gap
	}
	x := make([]complex128, total)
	pos := 200
	for _, f := range frames {
		copy(x[pos:], f.Samples)
		pos += len(f.Samples) + gap
	}
	channel.AddNoiseSNR(x, 30, 104)

	results := NewReceiver().ReceiveAll(x)
	if len(results) != len(frames) {
		t.Fatalf("decoded %d packets, want %d", len(results), len(frames))
	}
	for i, res := range results {
		if res.Signal.Mode.RateMbps != frames[i].Mode.RateMbps {
			t.Errorf("packet %d rate %d, want %d", i, res.Signal.Mode.RateMbps, frames[i].Mode.RateMbps)
		}
		if !bits.Equal(bits.FromBytes(res.PSDU), bits.FromBytes(frames[i].PSDU)) {
			t.Errorf("packet %d payload corrupted", i)
		}
	}
}

func TestReceiveAllSkipsCorruptedPacket(t *testing.T) {
	good1 := makeFrame(t, 12, 50, 110)
	bad := makeFrame(t, 12, 50, 111)
	good2 := makeFrame(t, 12, 50, 112)
	gap := 300
	x := make([]complex128, 200+3*(len(good1.Samples)+gap)+200)
	pos := 200
	copy(x[pos:], good1.Samples)
	pos += len(good1.Samples) + gap
	// Corrupt the bad frame's data field completely (keep its preamble so
	// the detector fires and the receiver must skip it).
	start := pos
	copy(x[pos:], bad.Samples)
	for i := start + phy.PreambleLen; i < start+len(bad.Samples); i++ {
		x[i] = 0
	}
	pos += len(bad.Samples) + gap
	copy(x[pos:], good2.Samples)

	results := NewReceiver().ReceiveAll(x)
	if len(results) != 2 {
		t.Fatalf("decoded %d packets, want 2 (skipping the corrupted one)", len(results))
	}
	if !bits.Equal(bits.FromBytes(results[0].PSDU), bits.FromBytes(good1.PSDU)) {
		t.Error("first packet corrupted")
	}
	if !bits.Equal(bits.FromBytes(results[1].PSDU), bits.FromBytes(good2.PSDU)) {
		t.Error("second good packet not recovered after the corrupted one")
	}
}

func TestReceiveAllEmptyStream(t *testing.T) {
	if got := NewReceiver().ReceiveAll(make([]complex128, 5000)); len(got) != 0 {
		t.Errorf("decoded %d packets from silence", len(got))
	}
	if got := NewReceiver().ReceiveAll(nil); len(got) != 0 {
		t.Error("nil stream decoded packets")
	}
}

func TestSmoothChannelEstimate(t *testing.T) {
	frame := makeFrame(t, 6, 40, 120)
	x := withPadding(frame, 0, 0)
	channel.AddNoiseSNR(x, 15, 121)
	est, err := EstimateChannel(x, phy.ShortPreambleLen+32)
	if err != nil {
		t.Fatal(err)
	}
	// Count occupied carriers before and after: smoothing must not create
	// or destroy carriers.
	occupied := func(h []complex128) int {
		n := 0
		for _, v := range h {
			if v != 0 {
				n++
			}
		}
		return n
	}
	before := occupied(est.H)
	// Measure deviation from the known flat channel H=1.
	dev := func(h []complex128) float64 {
		var acc float64
		for _, v := range h {
			if v != 0 {
				d := v - 1
				acc += real(d)*real(d) + imag(d)*imag(d)
			}
		}
		return acc
	}
	devBefore := dev(est.H)
	est.Smooth()
	if occupied(est.H) != before {
		t.Errorf("smoothing changed carrier count: %d -> %d", before, occupied(est.H))
	}
	if devAfter := dev(est.H); devAfter >= devBefore {
		t.Errorf("smoothing did not reduce estimation noise: %v -> %v", devBefore, devAfter)
	}
}

func TestEstimationSNRTracksChannelNoise(t *testing.T) {
	frame := makeFrame(t, 6, 40, 130)
	t1 := phy.ShortPreambleLen + 32

	clean := withPadding(frame, 0, 0)
	snrClean, err := EstimationSNR(clean, t1)
	if err != nil {
		t.Fatal(err)
	}
	if snrClean < 100 {
		t.Errorf("clean estimation SNR %v dB, want numerically huge", snrClean)
	}

	noisy := withPadding(frame, 0, 0)
	channel.AddNoiseSNR(noisy, 20, 131)
	snrNoisy, err := EstimationSNR(noisy, t1)
	if err != nil {
		t.Fatal(err)
	}
	// The per-symbol SNR estimate should land near the true 20 dB.
	if math.Abs(snrNoisy-20) > 3 {
		t.Errorf("estimation SNR %v dB at true 20 dB", snrNoisy)
	}
	if _, err := EstimationSNR(clean, len(clean)); err == nil {
		t.Error("accepted out-of-range t1")
	}
}
