package rxdsp

import (
	"math"
	"testing"

	"wlansim/internal/channel"
)

// Regression tests for two false-detection modes found while integrating
// the RF front end: a static DC offset autocorrelates perfectly at the
// short-preamble lag, and a slow gain ramp on that offset sneaks past a
// naive energy gate. The detector's energy-rise gate plus the receiver's
// digital DC notch must defeat both.

func TestDetectorRejectsStaticDCOffset(t *testing.T) {
	// Pure DC at a healthy level, no packet: the correlation metric is ~1
	// but the energy never rises, so detection must fail.
	x := make([]complex128, 4000)
	for i := range x {
		x[i] = complex(0.01, 0.005)
	}
	if _, err := NewDetector().Detect(x, 0); err == nil {
		t.Error("static DC offset faked a packet")
	}
}

func TestDetectorRejectsSlowGainRamp(t *testing.T) {
	// DC with a slow exponential ramp (an AGC releasing during idle): the
	// energy grows, but far too slowly to pass the rise gate before the
	// floor recovers.
	x := make([]complex128, 8000)
	g := 1.0
	for i := range x {
		x[i] = complex(0.005*g, 0)
		g *= 1.000115 // ~0.001 dB/sample, the capped AGC release slew
	}
	if _, err := NewDetector().Detect(x, 0); err == nil {
		t.Error("slow gain ramp faked a packet")
	}
}

func TestDetectorAcceptsPacketOverDCOffset(t *testing.T) {
	// A real packet riding on a DC offset must still be detected once the
	// receiver's notch removes the offset (exercised via Receiver.Receive
	// in receiver_test.go); at the raw detector level the energy rise at
	// the packet start must fire even with the DC present.
	frame := makeFrame(t, 6, 40, 200)
	x := make([]complex128, 600+len(frame.Samples)+100)
	copy(x[600:], frame.Samples)
	for i := range x {
		x[i] += complex(0.002, 0) // DC well below the packet level
	}
	d, err := NewDetector().Detect(x, 0)
	if err != nil {
		t.Fatalf("packet over DC not detected: %v", err)
	}
	if d.StartIndex < 560 || d.StartIndex > 680 {
		t.Errorf("detected at %d, want ~600", d.StartIndex)
	}
}

func TestDetectorLowSNRDetection(t *testing.T) {
	// The plateau metric saturates at SNR/(1+SNR); the default threshold
	// must keep 5 dB SNR packets detectable.
	frame := makeFrame(t, 6, 40, 201)
	x := make([]complex128, 500+len(frame.Samples)+100)
	copy(x[500:], frame.Samples)
	channel.AddNoiseSNR(x, 5, 202)
	d, err := NewDetector().Detect(x, 0)
	if err != nil {
		t.Fatalf("5 dB SNR packet not detected: %v", err)
	}
	if d.StartIndex < 400 || d.StartIndex > 660 {
		t.Errorf("detected at %d, want ~500", d.StartIndex)
	}
}

func TestDetectorEnergyGateDisable(t *testing.T) {
	// With the gate disabled (EnergyRise = 1) the static DC case detects
	// again — documenting why the gate exists.
	x := make([]complex128, 4000)
	for i := range x {
		x[i] = complex(0.01, 0)
	}
	det := NewDetector()
	det.EnergyRise = 1
	if _, err := det.Detect(x, 0); err != nil {
		t.Errorf("gate-disabled detector should fire on DC: %v", err)
	}
}

func TestDetectorCFORange(t *testing.T) {
	// The 16-sample lag resolves CFOs up to +-1/32 cycles/sample
	// (+-625 kHz at 20 MHz). Verify estimation accuracy near the edge.
	frame := makeFrame(t, 6, 40, 203)
	x := make([]complex128, 300+len(frame.Samples)+100)
	copy(x[300:], frame.Samples)
	cfo := 500e3 / 20e6
	channel.NewCFO(500e3, 20e6, 0).Process(x)
	d, err := NewDetector().Detect(x, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d.CoarseCFO-cfo) > 2e-4 {
		t.Errorf("coarse CFO %v, want %v", d.CoarseCFO, cfo)
	}
}

func TestReceiverRejectsBadStartIndex(t *testing.T) {
	r := NewReceiver()
	if _, err := r.Receive(make([]complex128, 100), 200); err == nil {
		t.Error("accepted start index beyond the signal")
	}
	frame := makeFrame(t, 6, 20, 204)
	x := withPadding(frame, 100, 50)
	if res, err := r.Receive(x, -5); err != nil {
		t.Errorf("negative start index should clamp to 0: %v", err)
	} else if res.Signal.Mode.RateMbps != 6 {
		t.Error("clamped receive decoded wrong packet")
	}
}

func TestReceiverDecodesOverStrongDCOffset(t *testing.T) {
	// A strong static DC offset (comparable to the signal amplitude) lands
	// on the unused center subcarrier; the notch-enabled receiver must
	// sync at the true packet position and decode cleanly. (A *static* DC
	// is also defeated by the detector's energy gate alone; the notch
	// earns its keep against slowly-ramping offsets — see
	// TestDetectorRejectsSlowGainRamp.)
	frame := makeFrame(t, 12, 60, 205)
	base := make([]complex128, 800+len(frame.Samples)+200)
	copy(base[800:], frame.Samples)
	for i := range base {
		base[i] += complex(0.08, -0.05)
	}
	res, err := NewReceiver().Receive(append([]complex128(nil), base...), 0)
	if err != nil {
		t.Fatalf("notch-enabled receiver failed: %v", err)
	}
	if res.Signal.Mode.RateMbps != 12 {
		t.Errorf("decoded rate %d", res.Signal.Mode.RateMbps)
	}
	if res.Detection.StartIndex < 700 {
		t.Errorf("synced at %d, want ~800 (not the DC plateau)", res.Detection.StartIndex)
	}
	if !bitsEqual(res.PSDU, frame.PSDU) {
		t.Error("payload corrupted by the DC offset")
	}
}

func bitsEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
