package rxdsp

import (
	"math"
	"math/rand"
	"testing"

	"wlansim/internal/bits"
	"wlansim/internal/channel"
	"wlansim/internal/dsp"
	"wlansim/internal/phy"
)

// makeFrame builds a test frame with a payload derived from the seed.
func makeFrame(t testing.TB, rateMbps, psduLen int, seed int64) *phy.Frame {
	t.Helper()
	tx, err := phy.NewTransmitter(rateMbps)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(seed))
	tx.ScramblerSeed = byte(1 + r.Intn(127))
	frame, err := tx.Transmit(bits.RandomBytes(r, psduLen))
	if err != nil {
		t.Fatal(err)
	}
	return frame
}

// withPadding places the frame after `lead` zero samples and appends a tail.
func withPadding(frame *phy.Frame, lead, tail int) []complex128 {
	out := make([]complex128, lead+len(frame.Samples)+tail)
	copy(out[lead:], frame.Samples)
	return out
}

func TestDetectCleanPreamble(t *testing.T) {
	frame := makeFrame(t, 6, 50, 1)
	x := withPadding(frame, 500, 100)
	d, err := NewDetector().Detect(x, 0)
	if err != nil {
		t.Fatal(err)
	}
	if d.StartIndex < 480 || d.StartIndex > 560 {
		t.Errorf("detected start %d, want ~500", d.StartIndex)
	}
	if math.Abs(d.CoarseCFO) > 1e-4 {
		t.Errorf("coarse CFO %v on clean signal", d.CoarseCFO)
	}
	if d.Metric < 0.9 {
		t.Errorf("plateau metric %v", d.Metric)
	}
}

func TestDetectWithNoiseAndCFO(t *testing.T) {
	frame := makeFrame(t, 12, 100, 2)
	x := withPadding(frame, 300, 100)
	// 200 kHz CFO at 20 MHz = 0.01 cycles/sample.
	channel.NewCFO(200e3, 20e6, 0.3).Process(x)
	channel.AddNoiseSNR(x[300:300+len(frame.Samples)], 15, 3)
	d, err := NewDetector().Detect(x, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d.CoarseCFO-0.01) > 0.001 {
		t.Errorf("coarse CFO %v, want 0.01", d.CoarseCFO)
	}
}

func TestDetectNoSignal(t *testing.T) {
	x := make([]complex128, 2000)
	r := rand.New(rand.NewSource(4))
	for i := range x {
		x[i] = complex(r.NormFloat64(), r.NormFloat64())
	}
	if _, err := NewDetector().Detect(x, 0); err == nil {
		t.Error("detected a packet in pure noise")
	}
	if _, err := NewDetector().Detect(x[:10], 0); err == nil {
		t.Error("accepted too-short input")
	}
}

func TestFineTimingExact(t *testing.T) {
	frame := makeFrame(t, 6, 40, 5)
	lead := 777
	x := withPadding(frame, lead, 50)
	wantT1 := lead + phy.ShortPreambleLen + 32
	t1, err := FineTiming(x, wantT1-80, 160)
	if err != nil {
		t.Fatal(err)
	}
	if t1 != wantT1 {
		t.Errorf("fine timing %d, want %d", t1, wantT1)
	}
}

func TestFineCFOAccuracy(t *testing.T) {
	frame := makeFrame(t, 6, 40, 6)
	x := withPadding(frame, 0, 0)
	// Small residual CFO: 30 kHz.
	channel.NewCFO(30e3, 20e6, 0).Process(x)
	got, err := FineCFO(x, phy.ShortPreambleLen+32)
	if err != nil {
		t.Fatal(err)
	}
	want := 30e3 / 20e6
	if math.Abs(got-want) > 1e-5 {
		t.Errorf("fine CFO %v, want %v", got, want)
	}
	if _, err := FineCFO(x, len(x)); err == nil {
		t.Error("accepted out-of-range index")
	}
}

func TestEstimateChannelFlat(t *testing.T) {
	frame := makeFrame(t, 6, 40, 7)
	x := frame.Samples
	est, err := EstimateChannel(x, phy.ShortPreambleLen+32)
	if err != nil {
		t.Fatal(err)
	}
	// Perfect channel: H = 1 on the 52 occupied carriers.
	n := 0
	for _, h := range est.H {
		if h != 0 {
			if math.Abs(real(h)-1) > 1e-9 || math.Abs(imag(h)) > 1e-9 {
				t.Fatalf("flat-channel estimate %v, want 1", h)
			}
			n++
		}
	}
	if n != 52 {
		t.Errorf("%d estimated carriers, want 52", n)
	}
	if g := est.MeanGain(); math.Abs(g-1) > 1e-9 {
		t.Errorf("mean gain %v", g)
	}
}

func TestEstimateChannelScaled(t *testing.T) {
	frame := makeFrame(t, 6, 40, 8)
	x := dsp.Clone(frame.Samples)
	for i := range x {
		x[i] *= complex(0.5, 0)
	}
	est, err := EstimateChannel(x, phy.ShortPreambleLen+32)
	if err != nil {
		t.Fatal(err)
	}
	if g := est.MeanGain(); math.Abs(g-0.5) > 1e-9 {
		t.Errorf("mean gain %v, want 0.5", g)
	}
}

func TestReceiveCleanLoopbackAllModes(t *testing.T) {
	for _, mode := range phy.Modes {
		frame := makeFrame(t, mode.RateMbps, 120, int64(10+mode.RateMbps))
		x := withPadding(frame, 250, 250)
		res, err := NewReceiver().Receive(x, 0)
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if res.Signal.Mode.RateMbps != mode.RateMbps {
			t.Errorf("%v: SIGNAL decoded rate %d", mode, res.Signal.Mode.RateMbps)
		}
		if bits.CountErrors(bits.FromBytes(res.PSDU), bits.FromBytes(frame.PSDU)) != 0 {
			t.Errorf("%v: payload errors in clean loopback", mode)
		}
		if res.EndIndex <= res.T1Index {
			t.Errorf("%v: bogus frame geometry", mode)
		}
	}
}

func TestReceiveWithCFOAndNoise(t *testing.T) {
	frame := makeFrame(t, 24, 200, 20)
	x := withPadding(frame, 400, 100)
	channel.NewCFO(-150e3, 20e6, 1.1).Process(x) // -150 kHz CFO
	channel.AddNoiseSNR(x, 25, 21)
	res, err := NewReceiver().Receive(x, 0)
	if err != nil {
		t.Fatal(err)
	}
	if n := bits.CountErrors(bits.FromBytes(res.PSDU), bits.FromBytes(frame.PSDU)); n != 0 {
		t.Errorf("%d bit errors with CFO and 25 dB SNR", n)
	}
	want := -150e3 / 20e6
	if math.Abs(res.CFO-want) > 2e-4 {
		t.Errorf("estimated CFO %v, want %v", res.CFO, want)
	}
}

func TestReceiveThroughMultipath(t *testing.T) {
	frame := makeFrame(t, 12, 150, 22)
	x := withPadding(frame, 300, 100)
	// Mild 4-tap channel well inside the cyclic prefix.
	mp, err := channel.NewMultipath([]complex128{0.9, 0.3i, -0.15, 0.08i})
	if err != nil {
		t.Fatal(err)
	}
	mp.Process(x)
	channel.AddNoiseSNR(x, 28, 23)
	res, err := NewReceiver().Receive(x, 0)
	if err != nil {
		t.Fatal(err)
	}
	if n := bits.CountErrors(bits.FromBytes(res.PSDU), bits.FromBytes(frame.PSDU)); n != 0 {
		t.Errorf("%d bit errors through multipath", n)
	}
}

func TestReceiveAtLowSNRProducesErrorsOrFails(t *testing.T) {
	// At 0 dB SNR a 54 Mbps packet cannot survive; the receiver must either
	// fail sync/SIGNAL or deliver a payload with many errors — never panic.
	frame := makeFrame(t, 54, 100, 24)
	x := withPadding(frame, 200, 100)
	channel.AddNoiseSNR(x, 0, 25)
	res, err := NewReceiver().Receive(x, 0)
	if err != nil {
		return // acceptable: detection or SIGNAL failed
	}
	n := bits.CountErrors(bits.FromBytes(res.PSDU), bits.FromBytes(frame.PSDU))
	if n == 0 && res.Signal.Mode.RateMbps == 54 {
		t.Error("error-free 54 Mbps decoding at 0 dB SNR is implausible")
	}
}

func TestIdealReceiverLoopback(t *testing.T) {
	frame := makeFrame(t, 36, 180, 26)
	lead := 123
	x := withPadding(frame, lead, 50)
	ir := &IdealReceiver{Mode: frame.Mode, PSDULen: len(frame.PSDU)}
	res, err := ir.Receive(x, lead)
	if err != nil {
		t.Fatal(err)
	}
	if bits.CountErrors(bits.FromBytes(res.PSDU), bits.FromBytes(frame.PSDU)) != 0 {
		t.Error("ideal receiver loopback failed")
	}
	if len(res.EqualizedCarriers) != frame.NumDataSymbols {
		t.Errorf("%d equalized symbols, want %d", len(res.EqualizedCarriers), frame.NumDataSymbols)
	}
	// Equalized carriers sit on the constellation grid.
	for _, sym := range res.EqualizedCarriers {
		for _, v := range sym {
			if math.Abs(real(v)) > 1.3 || math.Abs(imag(v)) > 1.3 {
				t.Fatalf("equalized point %v far off the unit-energy grid", v)
			}
		}
	}
}

func TestIdealReceiverValidation(t *testing.T) {
	ir := &IdealReceiver{Mode: phy.Modes[0]}
	if _, err := ir.Receive(make([]complex128, 1000), 0); err == nil {
		t.Error("accepted zero PSDU length")
	}
	ir.PSDULen = 10
	if _, err := ir.Receive(make([]complex128, 100), 0); err == nil {
		t.Error("accepted truncated input")
	}
}

func TestReceiveSecondPacket(t *testing.T) {
	f1 := makeFrame(t, 6, 40, 30)
	f2 := makeFrame(t, 12, 60, 31)
	gap := 400
	x := make([]complex128, 200+len(f1.Samples)+gap+len(f2.Samples)+100)
	copy(x[200:], f1.Samples)
	copy(x[200+len(f1.Samples)+gap:], f2.Samples)
	rx := NewReceiver()
	r1, err := rx.Receive(x, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bits.Equal(bits.FromBytes(r1.PSDU), bits.FromBytes(f1.PSDU)) {
		t.Error("first packet corrupted")
	}
	r2, err := rx.Receive(x, r1.EndIndex)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Signal.Mode.RateMbps != 12 {
		t.Errorf("second packet rate %d, want 12", r2.Signal.Mode.RateMbps)
	}
	if !bits.Equal(bits.FromBytes(r2.PSDU), bits.FromBytes(f2.PSDU)) {
		t.Error("second packet corrupted")
	}
}

func TestReceiveWithSampleClockOffset(t *testing.T) {
	// Clause 17 allows +-20 ppm per station (+-40 ppm total mismatch).
	// Short packets must survive the worst case without explicit SCO
	// tracking (the drift over ~50 symbols stays well inside the CP).
	for _, ppm := range []float64{-40, 40} {
		frame := makeFrame(t, 24, 200, 300+int64(ppm))
		x := withPadding(frame, 300, 300)
		sco, err := channel.NewSampleClockOffset(ppm)
		if err != nil {
			t.Fatal(err)
		}
		y := sco.Process(x)
		channel.AddNoiseSNR(y, 30, 301)
		res, err := NewReceiver().Receive(y, 0)
		if err != nil {
			t.Fatalf("%+.0f ppm: %v", ppm, err)
		}
		if n := bits.CountErrors(bits.FromBytes(res.PSDU), bits.FromBytes(frame.PSDU)); n != 0 {
			t.Errorf("%+.0f ppm: %d bit errors", ppm, n)
		}
	}
}

func TestReceiveReportsLinkSNR(t *testing.T) {
	frame := makeFrame(t, 24, 100, 400)
	x := withPadding(frame, 300, 100)
	channel.AddNoiseSNR(x, 18, 401)
	res, err := NewReceiver().Receive(x, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.LinkSNRdB-18) > 4 {
		t.Errorf("link SNR estimate %v dB at true 18 dB", res.LinkSNRdB)
	}
	// Clean signal: numerically enormous SNR.
	clean := withPadding(frame, 300, 100)
	res, err = NewReceiver().Receive(clean, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.LinkSNRdB < 40 {
		t.Errorf("clean link SNR %v dB unexpectedly low", res.LinkSNRdB)
	}
}

func TestMMSEEqualizerMatchesZFOnGoodLinks(t *testing.T) {
	frame := makeFrame(t, 24, 120, 500)
	x := withPadding(frame, 300, 100)
	channel.AddNoiseSNR(x, 22, 501)
	zf := NewReceiver()
	rz, err := zf.Receive(dsp.Clone(x), 0)
	if err != nil {
		t.Fatal(err)
	}
	mmse := NewReceiver()
	mmse.MMSE = true
	rm, err := mmse.Receive(dsp.Clone(x), 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bits.Equal(bits.FromBytes(rz.PSDU), bits.FromBytes(frame.PSDU)) {
		t.Error("ZF failed the clean link")
	}
	if !bits.Equal(bits.FromBytes(rm.PSDU), bits.FromBytes(frame.PSDU)) {
		t.Error("MMSE failed the clean link")
	}
}

func TestMMSEEqualizerHelpsHardDecisionsOnFadedChannel(t *testing.T) {
	// A deep notch inside the band: MMSE suppresses the noise blow-up on
	// the faded carriers that ZF hands to a hard-decision decoder.
	zfErrs, mmseErrs := 0, 0
	trials := 6
	for trial := 0; trial < trials; trial++ {
		frame := makeFrame(t, 12, 100, 510+int64(trial))
		x := withPadding(frame, 300, 100)
		mp, err := channel.NewMultipath([]complex128{0.7, 0, 0, 0, 0, 0, 0.65}) // deep comb
		if err != nil {
			t.Fatal(err)
		}
		mp.Process(x)
		channel.AddNoiseSNR(x, 14, 511+int64(trial))

		run := func(useMMSE bool) int {
			rx := NewReceiver()
			rx.HardDecisions = true
			rx.MMSE = useMMSE
			res, err := rx.Receive(dsp.Clone(x), 0)
			if err != nil {
				return len(frame.PSDU) * 8 / 2
			}
			return bits.CountErrors(bits.FromBytes(res.PSDU), bits.FromBytes(frame.PSDU))
		}
		zfErrs += run(false)
		mmseErrs += run(true)
	}
	if mmseErrs > zfErrs {
		t.Errorf("MMSE (%d errors) worse than ZF (%d) with hard decisions on a faded channel",
			mmseErrs, zfErrs)
	}
}
