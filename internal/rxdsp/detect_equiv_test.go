package rxdsp

import (
	"math"
	"math/rand"
	"testing"
)

// Differential suite for the split-complex synchronization kernels: the
// ILP-friendly scalar forms in corrPair and dotConj64 must be bit-identical
// to the retained naive complex-arithmetic references on random and
// adversarial inputs, because FineCFO's estimate feeds a second rotation
// pass over the whole packet — a one-ulp drift there would move the golden
// BER tables.

func bitsEq(a, b complex128) bool {
	re := math.Float64bits(real(a)) == math.Float64bits(real(b)) ||
		(math.IsNaN(real(a)) && math.IsNaN(real(b)))
	im := math.Float64bits(imag(a)) == math.Float64bits(imag(b)) ||
		(math.IsNaN(imag(a)) && math.IsNaN(imag(b)))
	return re && im
}

func randCplx(rng *rand.Rand, scale float64) complex128 {
	return complex(scale*(2*rng.Float64()-1), scale*(2*rng.Float64()-1))
}

func TestCorrPairEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	ref := longSymbolTD()
	for trial := 0; trial < 200; trial++ {
		scale := math.Pow(10, float64(rng.Intn(9)-4)) // 1e-4 .. 1e4
		seg := make([]complex128, len(ref)+64+rng.Intn(200))
		for i := range seg {
			seg[i] = randCplx(rng, scale)
		}
		// Adversarial cancellation: make a stretch nearly equal to the
		// reference so partial sums pass close to zero.
		if trial%3 == 0 {
			off := rng.Intn(len(seg) - len(ref) - 64)
			for k, r := range ref {
				seg[off+k] = r + randCplx(rng, 1e-9)
			}
		}
		for l := 0; l+len(ref)+64 <= len(seg); l++ {
			s1, s2 := corrPair(seg, ref, l)
			r1, r2 := corrPairRef(seg, ref, l)
			if !bitsEq(s1, r1) || !bitsEq(s2, r2) {
				t.Fatalf("trial %d lag %d: corrPair (%v,%v) != ref (%v,%v)",
					trial, l, s1, s2, r1, r2)
			}
		}
	}
}

func TestCorrPairEquivalenceSpecials(t *testing.T) {
	ref := longSymbolTD()
	seg := make([]complex128, len(ref)+64)
	specials := []complex128{
		complex(math.Inf(1), 0),
		complex(0, math.Inf(-1)),
		complex(math.NaN(), 1),
		complex(math.MaxFloat64, -math.MaxFloat64),
		complex(math.SmallestNonzeroFloat64, 5e-324),
		complex(math.Copysign(0, -1), 0),
	}
	rng := rand.New(rand.NewSource(52))
	for _, sp := range specials {
		for i := range seg {
			seg[i] = randCplx(rng, 1)
		}
		seg[rng.Intn(len(seg))] = sp
		s1, s2 := corrPair(seg, ref, 0)
		r1, r2 := corrPairRef(seg, ref, 0)
		if !bitsEq(s1, r1) || !bitsEq(s2, r2) {
			t.Fatalf("special %v: corrPair (%v,%v) != ref (%v,%v)", sp, s1, s2, r1, r2)
		}
	}
}

func TestDotConj64Equivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	for trial := 0; trial < 500; trial++ {
		scale := math.Pow(10, float64(rng.Intn(9)-4))
		u := make([]complex128, 64)
		v := make([]complex128, 64)
		for i := range u {
			u[i] = randCplx(rng, scale)
			v[i] = randCplx(rng, scale)
		}
		if trial%4 == 0 {
			// Correlated halves exercise near-cancellation in the imag part.
			copy(v, u)
		}
		got, want := dotConj64(u, v), dotConj64Ref(u, v)
		if !bitsEq(got, want) {
			t.Fatalf("trial %d: dotConj64 %v != ref %v", trial, got, want)
		}
	}
}

func TestFineTimingMatchesReferenceSearch(t *testing.T) {
	// End-to-end: the lag FineTiming picks must equal the one a pure
	// reference-arithmetic search picks on a realistic noisy preamble.
	rng := rand.New(rand.NewSource(54))
	ref := longSymbolTD()
	lp := make([]complex128, 0, 400)
	for i := 0; i < 100; i++ {
		lp = append(lp, randCplx(rng, 0.3))
	}
	lp = append(lp, ref...)
	lp = append(lp, ref...)
	for i := 0; i < 100; i++ {
		lp = append(lp, randCplx(rng, 0.3))
	}
	for i := range lp {
		lp[i] += randCplx(rng, 0.05)
	}
	got, err := FineTiming(lp, 0, len(lp)-len(ref)-64)
	if err != nil {
		t.Fatal(err)
	}
	best, bestMag := -1, 0.0
	for l := 0; l+len(ref)+64 <= len(lp); l++ {
		s1, s2 := corrPairRef(lp, ref, l)
		if m := cmplxAbs(s1) + cmplxAbs(s2); m > bestMag {
			best, bestMag = l, m
		}
	}
	if got != best {
		t.Fatalf("FineTiming picked %d, reference search picked %d", got, best)
	}
}

func cmplxAbs(z complex128) float64 { return math.Hypot(real(z), imag(z)) }
