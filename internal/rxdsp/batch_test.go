package rxdsp

import (
	"math/rand"
	"testing"

	"wlansim/internal/bits"
	"wlansim/internal/channel"
	"wlansim/internal/dsp"
	"wlansim/internal/phy"
)

// The deferred-decode differential layer: every path through
// DecodeDeferredBatch (and phy.DecodeDataCarriersBatch beneath it) must leave
// each lane byte-identical to the non-deferred sequential Receive — PSDU
// bytes, error presence and error text alike.

// noisyWave builds a padded, noise-impaired waveform for one lane.
func noisyWave(t *testing.T, rateMbps, psduLen int, seed int64, snrDB float64) ([]complex128, *phy.Frame) {
	t.Helper()
	frame := makeFrame(t, rateMbps, psduLen, seed)
	x := withPadding(frame, 300, 100)
	channel.AddNoiseSNR(x, snrDB, seed+7777)
	return x, frame
}

// receiveLanes runs each waveform through its own receiver and returns the
// per-lane packets and Receive errors. deferData selects the deferred path.
func receiveLanes(waves [][]complex128, deferData, hard bool) ([]*Receiver, []*PacketResult, []error) {
	rxs := make([]*Receiver, len(waves))
	pkts := make([]*PacketResult, len(waves))
	errs := make([]error, len(waves))
	for l, w := range waves {
		rx := NewReceiver()
		rx.DeferDataDecode = deferData
		rx.HardDecisions = hard
		rxs[l] = rx
		pkts[l], errs[l] = rx.Receive(dsp.Clone(w), 0)
	}
	return rxs, pkts, errs
}

// checkLaneEquivalence pins the deferred-batch outcome of every lane to its
// sequential outcome at byte and error-text level.
func checkLaneEquivalence(t *testing.T, seqPkts []*PacketResult, seqErrs []error, batchPkts []*PacketResult, batchErrs []error) {
	t.Helper()
	for l := range seqPkts {
		if (seqErrs[l] == nil) != (batchErrs[l] == nil) {
			t.Fatalf("lane %d: sequential err %v, deferred err %v", l, seqErrs[l], batchErrs[l])
		}
		if seqErrs[l] != nil {
			if seqErrs[l].Error() != batchErrs[l].Error() {
				t.Errorf("lane %d: error text diverged:\n seq: %v\n bat: %v", l, seqErrs[l], batchErrs[l])
			}
			continue
		}
		if !bits.Equal(bits.FromBytes(seqPkts[l].PSDU), bits.FromBytes(batchPkts[l].PSDU)) {
			t.Errorf("lane %d: deferred-batch PSDU differs from sequential", l)
		}
	}
}

// runDeferredDifferential receives every waveform twice — sequentially and
// deferred+batched — and checks lane equivalence.
func runDeferredDifferential(t *testing.T, waves [][]complex128) {
	t.Helper()
	_, seqPkts, seqErrs := receiveLanes(waves, false, false)
	rxs, pkts, errs := receiveLanes(waves, true, false)
	derrs := DecodeDeferredBatch(rxs, pkts)
	for l := range errs {
		if errs[l] == nil {
			errs[l] = derrs[l]
		} else if pkts[l] != nil {
			t.Fatalf("lane %d: failed Receive returned a packet", l)
		}
	}
	checkLaneEquivalence(t, seqPkts, seqErrs, pkts, errs)
}

func TestDeferredBatchMatchesSequential(t *testing.T) {
	for _, rate := range []int{6, 24, 54} {
		for _, B := range []int{1, 2, 3, 5, 8} {
			waves := make([][]complex128, B)
			for l := range waves {
				waves[l], _ = noisyWave(t, rate, 80, int64(1000*rate+l), 24)
			}
			runDeferredDifferential(t, waves)
		}
	}
}

func TestDeferredBatchMatchesSequentialAtLowSNR(t *testing.T) {
	// Near the waterfall some lanes decode garbage, some fail sync or SIGNAL,
	// and lanes can announce divergent rates/lengths — whatever happens, the
	// deferred batch must reproduce the sequential outcome exactly.
	for _, snr := range []float64{2, 4, 6} {
		waves := make([][]complex128, 6)
		for l := range waves {
			waves[l], _ = noisyWave(t, 24, 60, int64(31*int(snr)+l), snr)
		}
		runDeferredDifferential(t, waves)
	}
}

func TestDeferredBatchDivergentSignalGrouping(t *testing.T) {
	// Clean lanes of two different rates: the lead group batches, the other
	// rate takes the straggler path. Both must decode perfectly.
	frames := make([]*phy.Frame, 0, 4)
	waves := make([][]complex128, 0, 4)
	for l, rate := range []int{24, 6, 24, 6} {
		frame := makeFrame(t, rate, 90, int64(500+l))
		frames = append(frames, frame)
		waves = append(waves, withPadding(frame, 250, 100))
	}
	rxs, pkts, errs := receiveLanes(waves, true, false)
	for l, err := range errs {
		if err != nil {
			t.Fatalf("lane %d: clean Receive failed: %v", l, err)
		}
		if pkts[l].PSDU != nil {
			t.Fatalf("lane %d: deferred Receive decoded the PSDU eagerly", l)
		}
	}
	derrs := DecodeDeferredBatch(rxs, pkts)
	for l := range pkts {
		if derrs[l] != nil {
			t.Fatalf("lane %d: deferred decode failed: %v", l, derrs[l])
		}
		if !bits.Equal(bits.FromBytes(pkts[l].PSDU), bits.FromBytes(frames[l].PSDU)) {
			t.Errorf("lane %d: PSDU corrupted across divergent-SIGNAL grouping", l)
		}
	}
}

func TestDeferredBatchSkipsHardDecisionLanes(t *testing.T) {
	// HardDecisions decodes eagerly; the batch completion must leave those
	// lanes untouched and still complete interleaved soft lanes.
	waves := make([][]complex128, 4)
	frames := make([]*phy.Frame, 4)
	for l := range waves {
		waves[l], frames[l] = noisyWave(t, 12, 70, int64(900+l), 28)
	}
	rxs := make([]*Receiver, len(waves))
	pkts := make([]*PacketResult, len(waves))
	for l, w := range waves {
		rx := NewReceiver()
		rx.DeferDataDecode = true
		rx.HardDecisions = l%2 == 0
		rxs[l] = rx
		var err error
		pkts[l], err = rx.Receive(dsp.Clone(w), 0)
		if err != nil {
			t.Fatalf("lane %d: %v", l, err)
		}
	}
	hardPSDUs := [][]byte{append([]byte(nil), pkts[0].PSDU...), append([]byte(nil), pkts[2].PSDU...)}
	derrs := DecodeDeferredBatch(rxs, pkts)
	for l := range pkts {
		if derrs[l] != nil {
			t.Fatalf("lane %d: %v", l, derrs[l])
		}
		if !bits.Equal(bits.FromBytes(pkts[l].PSDU), bits.FromBytes(frames[l].PSDU)) {
			t.Errorf("lane %d: PSDU errors", l)
		}
	}
	if !bits.Equal(bits.FromBytes(pkts[0].PSDU), bits.FromBytes(hardPSDUs[0])) ||
		!bits.Equal(bits.FromBytes(pkts[2].PSDU), bits.FromBytes(hardPSDUs[1])) {
		t.Error("batch completion rewrote an eagerly-decoded hard lane")
	}
}

func TestDeferredBatchSkipsNilLanes(t *testing.T) {
	wave, frame := noisyWave(t, 24, 50, 77, 26)
	rxs, pkts, errs := receiveLanes([][]complex128{wave}, true, false)
	if errs[0] != nil {
		t.Fatal(errs[0])
	}
	// Surround the real lane with nil packets (failed Receives) and a nil
	// receiver slot, as RunBenchBatch produces for lost lanes.
	rxs = []*Receiver{nil, rxs[0], NewReceiver()}
	pkts = []*PacketResult{nil, pkts[0], nil}
	derrs := DecodeDeferredBatch(rxs, pkts)
	if derrs[0] != nil || derrs[2] != nil {
		t.Errorf("nil lanes reported errors: %v %v", derrs[0], derrs[2])
	}
	if derrs[1] != nil {
		t.Fatalf("live lane failed: %v", derrs[1])
	}
	if !bits.Equal(bits.FromBytes(pkts[1].PSDU), bits.FromBytes(frame.PSDU)) {
		t.Error("live lane PSDU corrupted by nil neighbors")
	}
}

// TestDecodeDataCarriersBatchMatchesSequential pins the phy-layer batch decode
// directly: B decoders over ideal-receiver carrier grids, with and without
// CSI, against per-lane DecodeDataCarriers on fresh decoders.
func TestDecodeDataCarriersBatchMatchesSequential(t *testing.T) {
	for _, rate := range []int{6, 24, 54} {
		for _, B := range []int{1, 2, 4, 7} {
			mode, err := phy.ModeByRate(rate)
			if err != nil {
				t.Fatal(err)
			}
			psduLen := 60
			carrs := make([][][]complex128, B)
			csis := make([][][]float64, B)
			want := make([][]byte, B)
			r := rand.New(rand.NewSource(int64(100*rate + B)))
			for l := 0; l < B; l++ {
				frame := makeFrame(t, rate, psduLen, int64(40*B+l))
				x := withPadding(frame, 50, 50)
				channel.AddNoiseSNR(x, 22, int64(41*B+l))
				ir := &IdealReceiver{Mode: frame.Mode, PSDULen: psduLen}
				res, err := ir.Receive(x, 50)
				if err != nil {
					t.Fatal(err)
				}
				carrs[l] = res.EqualizedCarriers
				csi := make([][]float64, len(res.EqualizedCarriers))
				for s := range csi {
					csi[s] = make([]float64, len(res.EqualizedCarriers[s]))
					for k := range csi[s] {
						csi[s][k] = 0.25 + r.Float64()
					}
				}
				if l%2 == 1 {
					csis[l] = csi // alternate weighted and unweighted lanes
				}
				want[l], err = phy.NewPacketDecoder().DecodeDataCarriers(carrs[l], csis[l], mode, psduLen)
				if err != nil {
					t.Fatalf("lane %d sequential: %v", l, err)
				}
			}
			ds := make([]*phy.PacketDecoder, B)
			for l := range ds {
				ds[l] = phy.NewPacketDecoder()
			}
			psdus, errs := phy.DecodeDataCarriersBatch(ds, carrs, csis, mode, psduLen)
			for l := 0; l < B; l++ {
				if errs[l] != nil {
					t.Fatalf("rate %d B %d lane %d: %v", rate, B, l, errs[l])
				}
				if !bits.Equal(bits.FromBytes(psdus[l]), bits.FromBytes(want[l])) {
					t.Errorf("rate %d B %d lane %d: batch PSDU differs from sequential", rate, B, l)
				}
			}
			// Scratch reuse: a second pass over the same inputs must reproduce
			// itself (decoder state fully reset between packets).
			again, errs2 := phy.DecodeDataCarriersBatch(ds, carrs, csis, mode, psduLen)
			for l := 0; l < B; l++ {
				if errs2[l] != nil {
					t.Fatalf("second pass lane %d: %v", l, errs2[l])
				}
				if !bits.Equal(bits.FromBytes(again[l]), bits.FromBytes(want[l])) {
					t.Errorf("second pass lane %d: scratch reuse changed the decode", l)
				}
			}
		}
	}
}
