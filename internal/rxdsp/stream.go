package rxdsp

import (
	"fmt"

	"wlansim/internal/phy"
	"wlansim/internal/units"
)

// ReceiveAll decodes every packet found in the baseband stream x, resuming
// the search after each decoded frame. Sync or decode failures of individual
// packets are skipped by advancing past the failed detection point, so one
// corrupted burst does not hide later traffic. It returns the successfully
// decoded packets in stream order.
func (r *Receiver) ReceiveAll(x []complex128) []*PacketResult {
	var out []*PacketResult
	from := 0
	for from < len(x)-phy.PreambleLen {
		res, err := r.Receive(x, from)
		if err == nil {
			out = append(out, res)
			from = res.EndIndex
			continue
		}
		// Find where detection last triggered (if at all) so we can skip
		// past a packet that detected but failed to decode; otherwise
		// nothing further is detectable.
		det := r.Detector
		if det == nil {
			det = NewDetector()
		}
		d, derr := det.Detect(x, from)
		if derr != nil {
			break
		}
		from = d.StartIndex + phy.PreambleLen
	}
	return out
}

// SmoothChannelEstimate applies a three-tap frequency-domain smoother to the
// channel estimate in place and returns it. Smoothing trades delay-spread
// robustness for ~2 dB lower estimation noise on near-flat channels — the
// kind of accuracy/robustness knob the paper's receiver exposes.
func (c *ChannelEstimate) Smooth() *ChannelEstimate {
	h := c.H
	smoothed := make([]complex128, len(h))
	occupied := func(i int) bool { return h[i] != 0 }
	for i := range h {
		if !occupied(i) {
			continue
		}
		sum := h[i]
		n := 1.0
		// Neighbors in subcarrier order: FFT bins wrap, and bin neighbors
		// adjacent across the DC/guard gap must not smear, so only use
		// occupied immediate neighbors.
		prev := (i - 1 + len(h)) % len(h)
		next := (i + 1) % len(h)
		if occupied(prev) {
			sum += h[prev]
			n++
		}
		if occupied(next) {
			sum += h[next]
			n++
		}
		smoothed[i] = sum / complex(n, 0)
	}
	c.H = smoothed
	return c
}

// EstimationSNR estimates the channel-estimate quality by comparing the two
// individual long-training-symbol estimates: their difference is twice the
// per-symbol noise. It returns the estimated SNR in dB of the averaged
// estimate (useful as a link-quality indicator).
func EstimationSNR(x []complex128, t1 int) (float64, error) {
	if t1 < 0 || t1+128 > len(x) {
		return 0, fmt.Errorf("rxdsp: long training symbols out of range")
	}
	var sig, noise float64
	for k := 0; k < 64; k++ {
		a := x[t1+k]
		b := x[t1+64+k]
		s := (a + b) / 2
		d := (a - b) / 2
		sig += real(s)*real(s) + imag(s)*imag(s)
		noise += real(d)*real(d) + imag(d)*imag(d)
	}
	if noise <= 0 {
		return 300, nil // numerically noiseless
	}
	// sig estimates S + N/2 and noise estimates N/2, so the unbiased SNR is
	// (sig/noise - 1) / 2.
	snr := (sig/noise - 1) / 2
	if snr <= 0 {
		return -300, nil
	}
	return units.LinearToDB(snr), nil
}
