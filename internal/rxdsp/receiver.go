package rxdsp

import (
	"fmt"
	"math"
	"math/cmplx"

	"wlansim/internal/dsp"
	"wlansim/internal/phy"
	"wlansim/internal/units"
)

// ChannelEstimate holds the per-subcarrier complex channel gains derived
// from the long training symbols.
type ChannelEstimate struct {
	// H is indexed by FFT bin (64 entries); unoccupied bins are zero.
	H []complex128
}

// chanEstimator carries the FFT scratch of the long-training channel
// estimation so repeated estimates allocate nothing.
type chanEstimator struct {
	sum []complex128
	sym []complex128
}

// estimateInto computes the channel estimate from the two long training
// symbols starting at t1 within x, writing the result into est.H (grown on
// first use, reused afterwards).
//
//lint:hotpath
func (ce *chanEstimator) estimateInto(est *ChannelEstimate, x []complex128, t1 int) error {
	if t1 < 0 || t1+128 > len(x) {
		return fmt.Errorf("rxdsp: long training symbols out of range")
	}
	ref := phy.LongTrainingSpectrum()
	plan, err := dsp.PlanFor(phy.FFTSize)
	if err != nil {
		return err
	}
	if cap(ce.sum) < phy.FFTSize {
		//lint:ignore escape first-use scratch growth, reused afterwards
		ce.sum = make([]complex128, phy.FFTSize)
		//lint:ignore escape first-use scratch growth, reused afterwards
		ce.sym = make([]complex128, phy.FFTSize)
	}
	sum := ce.sum[:phy.FFTSize]
	for i := range sum {
		sum[i] = 0
	}
	for s := 0; s < 2; s++ {
		buf := ce.sym[:phy.FFTSize]
		copy(buf, x[t1+64*s:t1+64*(s+1)])
		plan.Forward(buf)
		for i := range sum {
			sum[i] += buf[i]
		}
	}
	if cap(est.H) < phy.FFTSize {
		//lint:ignore escape first-use estimate buffer growth, reused afterwards
		est.H = make([]complex128, phy.FFTSize)
	}
	h := est.H[:phy.FFTSize]
	scale := complex(sqrt52/float64(phy.FFTSize), 0)
	for i := range h {
		h[i] = 0
		if ref[i] != 0 {
			h[i] = sum[i] / 2 * scale / ref[i]
		}
	}
	est.H = h
	return nil
}

// EstimateChannel averages the two received long training symbols (64
// samples each, starting at t1 within x) and divides by the known training
// spectrum.
func EstimateChannel(x []complex128, t1 int) (*ChannelEstimate, error) {
	var ce chanEstimator
	est := &ChannelEstimate{}
	if err := ce.estimateInto(est, x, t1); err != nil {
		return nil, err
	}
	return est, nil
}

const sqrt52 = 7.211102550927978

// MeanGain returns the rms channel magnitude over the occupied carriers.
func (c *ChannelEstimate) MeanGain() float64 {
	var acc float64
	n := 0
	for _, v := range c.H {
		if v != 0 {
			acc += real(v)*real(v) + imag(v)*imag(v)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Sqrt(acc / float64(n))
}

// eqScratch carries the per-symbol demodulation buffers of the one-tap
// equalizer so each symbol is processed without allocation.
type eqScratch struct {
	spec   []complex128
	pilots []complex128
	data   []complex128
}

// equalize FFTs one 80-sample OFDM symbol (starting at its cyclic prefix),
// equalizes by the channel estimate, corrects the pilot common phase error
// for the given symbol index, and writes the 48 equalized data carriers into
// out and their CSI weights (|H|^2) into csi (both of length
// phy.NumDataCarriers). mmseReg is the MMSE regularization term
// (noise-to-signal power ratio); 0 selects zero-forcing.
//
//lint:hotpath
func (q *eqScratch) equalize(out []complex128, csi []float64, sym []complex128, est *ChannelEstimate, symbolIndex int, mmseReg float64) error {
	spec, err := phy.DemodulateSymbolInto(q.spec, sym)
	if err != nil {
		return err
	}
	q.spec = spec
	return q.equalizeSpec(out, csi, spec, est, symbolIndex, mmseReg)
}

// equalizeSpec is the post-FFT half of equalize, operating on an already
// demodulated 64-bin spectrum — the entry point of the symbol-major receive
// path, which demodulates the whole DATA field in one batched pass first.
//
//lint:hotpath
func (q *eqScratch) equalizeSpec(out []complex128, csi []float64, spec []complex128, est *ChannelEstimate, symbolIndex int, mmseReg float64) error {
	// Pilot-aided common phase error: compare received pilots against
	// expected pilots through the channel.
	pilots, err := phy.ExtractPilotsInto(q.pilots, spec)
	if err != nil {
		return err
	}
	q.pilots = pilots
	expected := phy.ExpectedPilots(symbolIndex)
	var acc complex128
	var refE float64
	for i, c := range phy.PilotCarriers {
		bin := (c + phy.FFTSize) % phy.FFTSize
		ref := expected[i] * est.H[bin]
		acc += pilots[i] * cmplx.Conj(ref)
		refE += real(ref)*real(ref) + imag(ref)*imag(ref)
	}
	// Least-squares residual flat-channel term: corrects both the common
	// phase error and slow amplitude drift (e.g. a still-settling AGC).
	cpe := complex(1, 0)
	if refE > 0 && cmplx.Abs(acc) > 0 {
		cpe = acc / complex(refE, 0)
	}

	data, err := phy.ExtractDataInto(q.data, spec)
	if err != nil {
		return err
	}
	q.data = data
	for i, c := range phy.DataCarriers {
		bin := (c + phy.FFTSize) % phy.FFTSize
		h := est.H[bin] * cpe
		m2 := real(h)*real(h) + imag(h)*imag(h)
		if m2 < 1e-20 {
			out[i] = 0
			csi[i] = 0
			continue
		}
		if mmseReg > 0 {
			// MMSE one-tap: conj(H)/(|H|^2 + sigma^2/sigma_s^2), followed
			// by bias removal so constellation decisions stay centered.
			w := cmplx.Conj(h) / complex(m2+mmseReg, 0)
			bias := m2 / (m2 + mmseReg)
			out[i] = data[i] * w / complex(bias, 0)
		} else {
			out[i] = data[i] / h
		}
		csi[i] = m2
	}
	return nil
}

// PacketResult reports a decoded packet and receiver diagnostics.
type PacketResult struct {
	// PSDU is the decoded payload.
	PSDU []byte
	// Signal is the decoded SIGNAL field.
	Signal phy.SignalField
	// Detection reports the packet detector output.
	Detection DetectResult
	// CFO is the total corrected frequency offset in cycles per sample.
	CFO float64
	// T1Index is the sample index of the first long training symbol.
	T1Index int
	// EqualizedCarriers holds the 48 equalized data carriers of each DATA
	// symbol (for EVM and constellation analysis).
	EqualizedCarriers [][]complex128
	// CSI holds the matching channel-state weights when the DATA decode was
	// deferred (Receiver.DeferDataDecode) and CSI weighting is enabled; nil
	// otherwise. It aliases receiver scratch and is only valid until the
	// next Receive call.
	CSI [][]float64
	// LinkSNRdB estimates the receive SNR from the two long training
	// symbols (a link-quality indicator).
	LinkSNRdB float64
	// EndIndex is the first sample after the decoded frame.
	EndIndex int
}

// Receiver is the complete synchronizing 802.11a receiver. A Receiver
// carries reusable scratch buffers, so reusing one Receiver across packets
// reaches a near-zero-allocation steady state. Each PacketResult it returns
// owns its PSDU and EqualizedCarriers and remains valid across subsequent
// Receive calls — unless ReuseBuffers is set. A Receiver must not be shared
// between goroutines.
type Receiver struct {
	// Detector configures packet detection.
	Detector *Detector
	// DisableCSI turns off channel-state weighting of the soft metrics.
	DisableCSI bool
	// HardDecisions replaces soft Viterbi metrics with hard slicer
	// decisions (an ablation: costs ~2 dB of coding gain).
	HardDecisions bool
	// MMSE replaces the zero-forcing one-tap equalizer with the MMSE
	// variant regularized by the link's estimated noise level. With
	// CSI-weighted soft metrics both perform alike; MMSE keeps hard
	// decisions and blind EVM sane on deeply faded carriers.
	MMSE bool
	// DisableDCRemoval skips the digital DC-offset notch ahead of packet
	// detection. The notch is required with real front ends: the second
	// mixer's self-mixing DC offset otherwise autocorrelates perfectly at
	// the short-preamble lag and fakes a detection plateau.
	DisableDCRemoval bool
	// ReuseBuffers makes Receive reuse the PacketResult and the equalized-
	// carrier backing store across calls instead of allocating them fresh
	// per packet. The returned result (including EqualizedCarriers) is then
	// only valid until the next Receive call — opt in only when each packet
	// is fully consumed before the next is received.
	ReuseBuffers bool
	// DeferDataDecode makes Receive stop after equalizing the DATA field:
	// the result carries the equalized carriers, CSI weights and SIGNAL
	// field but a nil PSDU, to be completed by DecodeDeferredBatch (which
	// pushes many packets through one lock-step Viterbi pass). Ignored with
	// HardDecisions (the batched decode path is soft-only).
	DeferDataDecode bool

	// Reusable scratch; see Reset.
	notch    *dsp.IIR
	buf      []complex128
	work     []complex128
	ce       chanEstimator
	est      ChannelEstimate
	q        eqScratch
	sigData  []complex128
	sigCSI   []float64
	csiBack  []float64
	csis     [][]float64
	carrBack []complex128
	carriers [][]complex128
	specBack []complex128
	specs    [][]complex128
	symViews [][]complex128
	res      PacketResult
	dec      *phy.PacketDecoder
}

// NewReceiver returns a receiver with default settings.
func NewReceiver() *Receiver { return &Receiver{Detector: NewDetector()} }

// Reset clears the receiver's internal filter state. Receive already starts
// every packet from a clean state, so Reset is only needed to drop carried
// state explicitly (e.g. between unrelated signal captures).
func (r *Receiver) Reset() {
	if r.notch != nil {
		r.notch.Reset()
	}
}

// dcNotchCutoff is the digital DC-removal corner as a fraction of the
// sample rate (40 kHz at 20 MHz — far below the first subcarrier).
const dcNotchCutoff = 0.002

// growSpecSlices sizes the symbol-major scratch: nSym per-symbol spectrum
// buffers carved out of one backing store, plus the matching symbol-view
// slice header scratch.
func growSpecSlices(back *[]complex128, specs, views *[][]complex128, nSym int) ([][]complex128, [][]complex128) {
	if cap(*back) < nSym*phy.FFTSize {
		*back = make([]complex128, nSym*phy.FFTSize)
	}
	if cap(*specs) < nSym {
		*specs = make([][]complex128, nSym)
	}
	if cap(*views) < nSym {
		*views = make([][]complex128, nSym)
	}
	b := (*back)[:nSym*phy.FFTSize]
	s := (*specs)[:nSym]
	for n := 0; n < nSym; n++ {
		s[n] = b[n*phy.FFTSize : (n+1)*phy.FFTSize]
	}
	return s, (*views)[:nSym]
}

// growSpecs returns the receiver's symbol-major spectrum and symbol-view
// scratch sized for nSym DATA symbols.
func (r *Receiver) growSpecs(nSym int) ([][]complex128, [][]complex128) {
	return growSpecSlices(&r.specBack, &r.specs, &r.symViews, nSym)
}

// Receive synchronizes to and decodes the first packet at or after index
// from in the 20 MHz baseband signal x.
func (r *Receiver) Receive(x []complex128, from int) (*PacketResult, error) {
	det := r.Detector
	if det == nil {
		det = NewDetector()
	}
	if from < 0 {
		from = 0
	}
	if from >= len(x) {
		return nil, fmt.Errorf("rxdsp: start index %d beyond signal", from)
	}
	r.buf = append(r.buf[:0], x[from:]...)
	buf := r.buf
	if !r.DisableDCRemoval {
		if r.notch == nil {
			notch, err := dsp.DesignDCBlock(dcNotchCutoff)
			if err != nil {
				return nil, err
			}
			r.notch = notch
		} else {
			r.notch.Reset()
		}
		r.notch.Process(buf)
	}
	d, err := det.Detect(buf, 0)
	if err != nil {
		return nil, err
	}

	// Correct the coarse CFO from the detection point onward.
	r.work = append(r.work[:0], buf[d.StartIndex:]...)
	work := r.work
	d.StartIndex += from
	osc := dsp.NewOscillator(-d.CoarseCFO, 0)
	osc.MixInto(work)

	// The first long training symbol nominally starts 192 samples after the
	// short preamble start; the detector's plateau start can be tens of
	// samples off, so search a generous window around the nominal position.
	nominalT1 := phy.ShortPreambleLen + 32
	t1, err := FineTiming(work, nominalT1-80, 160)
	if err != nil {
		return nil, err
	}

	fine, err := FineCFO(work, t1)
	if err != nil {
		return nil, err
	}
	// Apply the residual CFO (re-derive from the original to avoid double
	// rotation complexities: just rotate work again by the fine estimate).
	osc2 := dsp.NewOscillator(-fine, 0)
	osc2.MixInto(work)

	if err := r.ce.estimateInto(&r.est, work, t1); err != nil {
		return nil, err
	}
	est := &r.est
	linkSNR, err := EstimationSNR(work, t1)
	if err != nil {
		return nil, err
	}

	// SIGNAL symbol follows the long preamble: CP at t1+128, data at +144.
	sigStart := t1 + 128
	if sigStart+phy.SymbolLen > len(work) {
		return nil, fmt.Errorf("rxdsp: truncated before SIGNAL symbol")
	}
	mmseReg := 0.0
	if r.MMSE {
		mmseReg = units.DBToLinear(-linkSNR)
	}
	if r.sigData == nil {
		r.sigData = make([]complex128, phy.NumDataCarriers)
		r.sigCSI = make([]float64, phy.NumDataCarriers)
	}
	if err := r.q.equalize(r.sigData, r.sigCSI, work[sigStart:sigStart+phy.SymbolLen], est, 0, mmseReg); err != nil {
		return nil, err
	}
	if r.dec == nil {
		r.dec = phy.NewPacketDecoder()
	}
	sf, err := r.dec.DecodeSignal(r.sigData)
	if err != nil {
		return nil, fmt.Errorf("rxdsp: SIGNAL decode: %w", err)
	}

	nBits := phy.ServiceBits + sf.Length*8 + phy.TailBits
	nSym := (nBits + sf.Mode.NDBPS() - 1) / sf.Mode.NDBPS()
	dataStart := sigStart + phy.SymbolLen
	if dataStart+nSym*phy.SymbolLen > len(work) {
		return nil, fmt.Errorf("rxdsp: truncated DATA field (%d symbols announced)", nSym)
	}

	// The equalized carriers escape into the PacketResult, so their backing
	// is allocated fresh per packet unless the caller opted into
	// ReuseBuffers; the CSI weights stay internal and always reuse the
	// receiver's scratch.
	var carrBack []complex128
	var carriers [][]complex128
	if r.ReuseBuffers {
		if cap(r.carrBack) < nSym*phy.NumDataCarriers {
			r.carrBack = make([]complex128, nSym*phy.NumDataCarriers)
		}
		if cap(r.carriers) < nSym {
			r.carriers = make([][]complex128, nSym)
		}
		carrBack = r.carrBack[:nSym*phy.NumDataCarriers]
		carriers = r.carriers[:nSym]
	} else {
		carrBack = make([]complex128, nSym*phy.NumDataCarriers)
		carriers = make([][]complex128, nSym)
	}
	if cap(r.csiBack) < nSym*phy.NumDataCarriers {
		r.csiBack = make([]float64, nSym*phy.NumDataCarriers)
	}
	if cap(r.csis) < nSym {
		r.csis = make([][]float64, nSym)
	}
	csis := r.csis[:nSym]
	if phy.SymbolMajorEnabled() {
		// Symbol-major: slice every DATA symbol, demodulate the whole field
		// through the batched four-lane forward transform, then equalize each
		// spectrum. Byte-identical to the per-symbol branch below.
		specs, symViews := r.growSpecs(nSym)
		for n := 0; n < nSym; n++ {
			s := dataStart + n*phy.SymbolLen
			symViews[n] = work[s : s+phy.SymbolLen]
		}
		if err := phy.DemodulateSymbols(specs, symViews); err != nil {
			return nil, err
		}
		for n := 0; n < nSym; n++ {
			carriers[n] = carrBack[n*phy.NumDataCarriers : (n+1)*phy.NumDataCarriers]
			csis[n] = r.csiBack[n*phy.NumDataCarriers : (n+1)*phy.NumDataCarriers]
			if err := r.q.equalizeSpec(carriers[n], csis[n], specs[n], est, n+1, mmseReg); err != nil {
				return nil, err
			}
		}
	} else {
		for n := 0; n < nSym; n++ {
			carriers[n] = carrBack[n*phy.NumDataCarriers : (n+1)*phy.NumDataCarriers]
			csis[n] = r.csiBack[n*phy.NumDataCarriers : (n+1)*phy.NumDataCarriers]
			s := dataStart + n*phy.SymbolLen
			if err := r.q.equalize(carriers[n], csis[n], work[s:s+phy.SymbolLen], est, n+1, mmseReg); err != nil {
				return nil, err
			}
		}
	}
	var csiArg [][]float64
	if !r.DisableCSI {
		csiArg = csis
	}
	var psdu []byte
	var deferredCSI [][]float64
	switch {
	case r.HardDecisions:
		psdu, err = r.dec.DecodeDataCarriersHard(carriers, nil, sf.Mode, sf.Length)
	case r.DeferDataDecode:
		// The bit-level decode happens later, across packets, in
		// DecodeDeferredBatch; hand it the CSI weights alongside the
		// carriers.
		deferredCSI = csiArg
	default:
		psdu, err = r.dec.DecodeDataCarriers(carriers, csiArg, sf.Mode, sf.Length)
	}
	if err != nil {
		return nil, err
	}
	out := &PacketResult{}
	if r.ReuseBuffers {
		out = &r.res
	}
	*out = PacketResult{
		PSDU:              psdu,
		Signal:            sf,
		Detection:         d,
		CFO:               d.CoarseCFO + fine,
		T1Index:           d.StartIndex + t1,
		EqualizedCarriers: carriers,
		CSI:               deferredCSI,
		LinkSNRdB:         linkSNR,
		EndIndex:          d.StartIndex + dataStart + nSym*phy.SymbolLen,
	}
	return out, nil
}

// IdealReceiver decodes a frame with genie knowledge of its exact start
// index, mode and PSDU length, bypassing detection and synchronization. The
// paper's EVM measurement (§5.2) used exactly this kind of ideal receiver
// model. Like Receiver, it carries reusable scratch and must not be shared
// between goroutines; each returned PacketResult owns its buffers unless
// ReuseBuffers is set.
type IdealReceiver struct {
	// Mode and PSDULen describe the expected frame.
	Mode    phy.Mode
	PSDULen int
	// ReuseBuffers makes Receive reuse the PacketResult and the equalized-
	// carrier backing store across calls; the returned result is then only
	// valid until the next Receive call.
	ReuseBuffers bool

	ce       chanEstimator
	est      ChannelEstimate
	q        eqScratch
	csiBack  []float64
	csis     [][]float64
	carrBack []complex128
	carriers [][]complex128
	specBack []complex128
	specs    [][]complex128
	symViews [][]complex128
	res      PacketResult
	dec      *phy.PacketDecoder
}

// growSpecs returns the receiver's symbol-major spectrum and symbol-view
// scratch sized for nSym DATA symbols.
func (r *IdealReceiver) growSpecs(nSym int) ([][]complex128, [][]complex128) {
	return growSpecSlices(&r.specBack, &r.specs, &r.symViews, nSym)
}

// Receive decodes the frame whose short preamble begins exactly at start.
// The input signal is only read, never mutated.
func (r *IdealReceiver) Receive(x []complex128, start int) (*PacketResult, error) {
	if r.PSDULen < 1 {
		return nil, fmt.Errorf("rxdsp: ideal receiver needs a PSDU length")
	}
	t1 := start + phy.ShortPreambleLen + 32
	if t1 < 0 || t1+128 > len(x) {
		return nil, fmt.Errorf("rxdsp: frame start out of range")
	}
	// The genie chain applies no CFO mixing or notch, so it reads the
	// signal in place instead of cloning it.
	work := x[start:]
	t1 -= start

	if err := r.ce.estimateInto(&r.est, work, t1); err != nil {
		return nil, err
	}
	est := &r.est
	nBits := phy.ServiceBits + r.PSDULen*8 + phy.TailBits
	nSym := (nBits + r.Mode.NDBPS() - 1) / r.Mode.NDBPS()
	dataStart := t1 + 128 + phy.SymbolLen
	if dataStart+nSym*phy.SymbolLen > len(work) {
		return nil, fmt.Errorf("rxdsp: truncated DATA field")
	}
	var carrBack []complex128
	var carriers [][]complex128
	if r.ReuseBuffers {
		if cap(r.carrBack) < nSym*phy.NumDataCarriers {
			r.carrBack = make([]complex128, nSym*phy.NumDataCarriers)
		}
		if cap(r.carriers) < nSym {
			r.carriers = make([][]complex128, nSym)
		}
		carrBack = r.carrBack[:nSym*phy.NumDataCarriers]
		carriers = r.carriers[:nSym]
	} else {
		carrBack = make([]complex128, nSym*phy.NumDataCarriers)
		carriers = make([][]complex128, nSym)
	}
	if cap(r.csiBack) < nSym*phy.NumDataCarriers {
		r.csiBack = make([]float64, nSym*phy.NumDataCarriers)
	}
	if cap(r.csis) < nSym {
		r.csis = make([][]float64, nSym)
	}
	csis := r.csis[:nSym]
	if phy.SymbolMajorEnabled() {
		// Symbol-major: batched demodulation of the whole DATA field, then
		// per-spectrum equalization. Byte-identical to the branch below.
		specs, symViews := r.growSpecs(nSym)
		for n := 0; n < nSym; n++ {
			s := dataStart + n*phy.SymbolLen
			symViews[n] = work[s : s+phy.SymbolLen]
		}
		if err := phy.DemodulateSymbols(specs, symViews); err != nil {
			return nil, err
		}
		for n := 0; n < nSym; n++ {
			carriers[n] = carrBack[n*phy.NumDataCarriers : (n+1)*phy.NumDataCarriers]
			csis[n] = r.csiBack[n*phy.NumDataCarriers : (n+1)*phy.NumDataCarriers]
			if err := r.q.equalizeSpec(carriers[n], csis[n], specs[n], est, n+1, 0); err != nil {
				return nil, err
			}
		}
	} else {
		for n := 0; n < nSym; n++ {
			carriers[n] = carrBack[n*phy.NumDataCarriers : (n+1)*phy.NumDataCarriers]
			csis[n] = r.csiBack[n*phy.NumDataCarriers : (n+1)*phy.NumDataCarriers]
			s := dataStart + n*phy.SymbolLen
			if err := r.q.equalize(carriers[n], csis[n], work[s:s+phy.SymbolLen], est, n+1, 0); err != nil {
				return nil, err
			}
		}
	}
	if r.dec == nil {
		r.dec = phy.NewPacketDecoder()
	}
	psdu, err := r.dec.DecodeDataCarriers(carriers, csis, r.Mode, r.PSDULen)
	if err != nil {
		return nil, err
	}
	out := &PacketResult{}
	if r.ReuseBuffers {
		out = &r.res
	}
	*out = PacketResult{
		PSDU:              psdu,
		Signal:            phy.SignalField{Mode: r.Mode, Length: r.PSDULen},
		T1Index:           start + t1,
		EqualizedCarriers: carriers,
		EndIndex:          start + dataStart + nSym*phy.SymbolLen,
	}
	return out, nil
}
