package rxdsp

import "wlansim/internal/phy"

// DecodeDeferredBatch completes the DATA-field decode of deferred Receive
// results (Receiver.DeferDataDecode) in lock-step: the packets' soft streams
// run through one batched Viterbi pass, the hot half of the bit-level chain.
// Each lane's PSDU and error are bit-identical to what its non-deferred
// Receive would have produced — the pre- and post-Viterbi halves run per
// lane on the lane's own decoder scratch, and the batched Viterbi is pinned
// lane≡sequential by its differential tests.
//
// rxs[l] must be the receiver whose Receive produced pkts[l]. Lanes whose
// entry is nil or already decoded (non-nil PSDU, e.g. hard decisions) are
// skipped. Deferred lanes are grouped by their decoded SIGNAL shape — at low
// SNR, lanes can announce divergent rates or lengths — with the leading
// group decoded as one batch and any stragglers decoded sequentially.
//
// The returned slice holds, per lane, the error the sequential Receive would
// have returned (nil on success); a failed lane's packet is lost exactly as
// in sequential operation.
func DecodeDeferredBatch(rxs []*Receiver, pkts []*PacketResult) []error {
	errs := make([]error, len(pkts))
	idx := make([]int, 0, len(pkts))
	for l, pkt := range pkts {
		if pkt == nil || pkt.PSDU != nil || rxs[l] == nil || rxs[l].dec == nil {
			continue
		}
		idx = append(idx, l)
	}
	if len(idx) == 0 {
		return errs
	}
	lead := pkts[idx[0]]
	mode, psduLen, nSym := lead.Signal.Mode, lead.Signal.Length, len(lead.EqualizedCarriers)
	ds := make([]*phy.PacketDecoder, 0, len(idx))
	carrs := make([][][]complex128, 0, len(idx))
	csis := make([][][]float64, 0, len(idx))
	lanes := make([]int, 0, len(idx))
	for _, l := range idx {
		pkt := pkts[l]
		if pkt.Signal.Mode == mode && pkt.Signal.Length == psduLen && len(pkt.EqualizedCarriers) == nSym {
			ds = append(ds, rxs[l].dec)
			carrs = append(carrs, pkt.EqualizedCarriers)
			csis = append(csis, pkt.CSI)
			lanes = append(lanes, l)
			continue
		}
		// Straggler with a divergent SIGNAL decode: run exactly the call
		// its Receive would have made.
		psdu, err := rxs[l].dec.DecodeDataCarriers(pkt.EqualizedCarriers, pkt.CSI, pkt.Signal.Mode, pkt.Signal.Length)
		if err != nil {
			errs[l] = err
			continue
		}
		pkt.PSDU = psdu
	}
	psdus, derrs := phy.DecodeDataCarriersBatch(ds, carrs, csis, mode, psduLen)
	for k, l := range lanes {
		if derrs[k] != nil {
			errs[l] = derrs[k]
			continue
		}
		pkts[l].PSDU = psdus[k]
	}
	return errs
}
