// Package seed derives reproducible, statistically independent RNG seeds
// for parallel Monte-Carlo work. A sweep that fans points out across
// goroutines must not share one sequential RNG between points — the stream
// position would then depend on scheduling and the results on the worker
// count. Instead every unit of work (a sweep point, a packet within a
// point) derives its own seed from the experiment's root seed and a stable
// label, so `Workers=1` and `Workers=N` visit exactly the same random
// realizations.
//
// The mixing function is the SplitMix64 finalizer (Steele, Lea, Flood:
// "Fast Splittable Pseudorandom Number Generators", OOPSLA 2014), whose
// output is equidistributed over the 64-bit state space: adjacent labels
// (packet 0, 1, 2, ...) map to uncorrelated seeds, unlike `root+i` schemes
// that hand correlated states to math/rand's lagged-Fibonacci source.
package seed

import "math"

// splitmix64 is the SplitMix64 state advance + finalizer for one step.
func splitmix64(z uint64) uint64 {
	z += 0x9E3779B97F4A7C15 // golden-ratio increment
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Derive mixes a root seed with an ordered sequence of labels into a new
// seed. The chaining is order-sensitive: Derive(r, a, b) != Derive(r, b, a)
// in general, so hierarchical derivations (sweep -> point -> packet) do not
// collide across levels.
func Derive(root int64, labels ...uint64) int64 {
	s := splitmix64(uint64(root))
	for _, l := range labels {
		s = splitmix64(s ^ splitmix64(l))
	}
	return int64(s)
}

// Domain-separation labels keep the per-point, per-packet, per-stage and
// content-key derivation trees disjoint even when their numeric labels
// coincide.
const (
	domainPoint   uint64 = 0x706F696E74 // "point"
	domainPacket  uint64 = 0x70616B6574 // "paket"
	domainSeries  uint64 = 0x7365726965 // "serie"
	domainStage   uint64 = 0x7374616765 // "stage"
	domainContent uint64 = 0x636F6E7465 // "conte"
)

// ForPoint derives the seed of one sweep point from the sweep's root seed
// and the swept parameter value. Using the value (not the point index)
// makes the seed independent of how the sweep grid is ordered or refined:
// re-running a single value reproduces exactly the point from the full
// sweep. The value is identified by its IEEE-754 bit pattern, so 0.0 and
// -0.0 count as different labels.
func ForPoint(root int64, value float64) int64 {
	return Derive(root, domainPoint, math.Float64bits(value))
}

// ForPacket derives the seed of one Monte-Carlo packet (trial) from the
// enclosing run's seed and the packet index.
func ForPacket(root int64, packet int) int64 {
	return Derive(root, domainPacket, uint64(packet))
}

// ForSeries derives a per-series root from an experiment seed and a series
// label index (e.g. the rate of one waterfall curve), so curves sharing a
// figure draw independent noise.
func ForSeries(root int64, label uint64) int64 {
	return Derive(root, domainSeries, label)
}

// ForStage derives the seed of one pipeline stage of one packet. Seeding each
// stage of each packet independently (instead of advancing one sequential
// stream through the whole chain) makes a stage's realization a pure function
// of (root, stage, packet): a cached stage output computed by whichever sweep
// point gets there first is bit-identical to what any other point would have
// computed, regardless of execution order or of which stages ran before it.
func ForStage(root int64, stage int, packet int) int64 {
	return Derive(root, domainStage, uint64(stage), uint64(packet))
}

// ContentKey folds an ordered sequence of labels describing simulation
// content (configuration fields, stage identity, packet index) into a stable
// 64-bit key for content-addressed caching. It lives in the same SplitMix64
// hierarchy as the seeds but under its own domain, so keys never collide with
// seed values. Callers must label invariant configuration only — never the
// swept parameter's float bits — so one sweep's points agree on the key of
// shared work.
func ContentKey(root int64, labels ...uint64) uint64 {
	return uint64(Derive(root, append([]uint64{domainContent}, labels...)...))
}
