package seed

import (
	"math"
	"testing"
)

func TestDeriveDeterministic(t *testing.T) {
	a := Derive(1, 2, 3)
	b := Derive(1, 2, 3)
	if a != b {
		t.Fatalf("Derive not deterministic: %d vs %d", a, b)
	}
}

func TestDeriveOrderSensitive(t *testing.T) {
	if Derive(1, 2, 3) == Derive(1, 3, 2) {
		t.Error("Derive ignores label order")
	}
	if Derive(1, 2) == Derive(2, 2) {
		t.Error("Derive ignores the root")
	}
	if Derive(1) == Derive(1, 0) {
		t.Error("appending a label is a no-op")
	}
}

func TestDeriveZeroRootUsable(t *testing.T) {
	// A zero root must still spread: math/rand.NewSource(0) is legal, and
	// derived children of root 0 must not collapse onto each other.
	if Derive(0, 0) == Derive(0, 1) {
		t.Error("children of the zero root collide")
	}
	if Derive(0) == 0 {
		t.Error("zero root maps to zero seed (mixer is the identity at 0)")
	}
}

// TestNoCollisionsOnGrid checks that the derivation tree of a realistic
// sweep (several roots x points x packets, plus domain separation) is
// collision-free. SplitMix64 is a bijection per step, so collisions over a
// few thousand nodes would indicate a broken chaining scheme.
func TestNoCollisionsOnGrid(t *testing.T) {
	seen := map[int64][2]int{}
	id := 0
	add := func(s int64) {
		if prev, dup := seen[s]; dup {
			t.Fatalf("seed collision: node %d and node %v both map to %d", id, prev, s)
		}
		seen[s] = [2]int{id, id}
		id++
	}
	for root := int64(0); root < 5; root++ {
		for p := 0; p < 20; p++ {
			value := -70.0 + float64(p)*0.5
			ps := ForPoint(root, value)
			add(ps)
			for k := 0; k < 10; k++ {
				add(ForPacket(ps, k))
			}
		}
		for r := uint64(0); r < 8; r++ {
			add(ForSeries(root, r))
		}
	}
}

func TestDomainSeparation(t *testing.T) {
	// The same numeric label through different domains must give different
	// seeds; otherwise point 3 and packet 3 of the same root would share a
	// noise realization.
	if ForPacket(7, 3) == ForSeries(7, 3) {
		t.Error("packet and series domains collide")
	}
	if ForPoint(7, 3) == ForPacket(7, int(math.Float64bits(3))) {
		t.Error("point and packet domains collide")
	}
}

func TestForPointValueIdentity(t *testing.T) {
	// The point seed depends on the value's bit pattern, not on grid
	// position: the same value in any sweep ordering draws the same seed.
	if ForPoint(42, 9.5e6) != ForPoint(42, 9.5e6) {
		t.Error("ForPoint not reproducible")
	}
	if ForPoint(42, 9.5e6) == ForPoint(42, 9.5000001e6) {
		t.Error("nearby values collide")
	}
	if ForPoint(42, 0.0) == ForPoint(42, math.Copysign(0, -1)) {
		t.Error("0.0 and -0.0 should be distinct labels (documented)")
	}
}

func TestAvalanche(t *testing.T) {
	// Flipping one bit of the label should flip roughly half the output
	// bits (SplitMix64's finalizer avalanches); accept a generous band.
	total, n := 0, 0
	for bit := uint(0); bit < 64; bit++ {
		a := uint64(Derive(1, 0))
		b := uint64(Derive(1, 1<<bit))
		total += popcount(a ^ b)
		n++
	}
	mean := float64(total) / float64(n)
	if mean < 24 || mean > 40 {
		t.Errorf("avalanche mean %.1f bits, want ~32", mean)
	}
}

func popcount(x uint64) int {
	n := 0
	for ; x != 0; x &= x - 1 {
		n++
	}
	return n
}
