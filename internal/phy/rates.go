// Package phy implements the IEEE 802.11a (clause 17) OFDM physical layer:
// scrambling, convolutional coding with puncturing, interleaving,
// constellation mapping, OFDM modulation with pilots and cyclic prefix,
// PLCP preamble and SIGNAL field, and full PPDU assembly.
//
// All bit slices use one byte per bit (values 0/1) in 802.11 transmission
// order. All waveforms are complex baseband at the native 20 MHz chip rate
// unless stated otherwise.
package phy

import (
	"fmt"

	"wlansim/internal/units"
)

// Fundamental clause-17 OFDM dimensions.
const (
	// FFTSize is the OFDM transform length (64 subcarriers at 312.5 kHz).
	FFTSize = 64
	// CPLen is the cyclic-prefix length in samples (0.8 us at 20 MHz).
	CPLen = 16
	// SymbolLen is the full OFDM symbol length in samples (4 us at 20 MHz).
	SymbolLen = FFTSize + CPLen
	// NumDataCarriers is the number of data subcarriers per symbol.
	NumDataCarriers = 48
	// NumPilots is the number of pilot subcarriers per symbol.
	NumPilots = 4
	// SampleRate is the native baseband sample rate in Hz.
	SampleRate = 20e6
	// ChannelSpacing is the 802.11a channel raster in Hz.
	ChannelSpacing = 20e6
	// CarrierFrequency is the paper's RF carrier in Hz (5.2 GHz band).
	CarrierFrequency = 5.2e9
)

// CodeRate identifies a convolutional code rate after puncturing.
type CodeRate int

// Supported code rates.
const (
	Rate1_2 CodeRate = iota
	Rate2_3
	Rate3_4
)

// String returns "1/2", "2/3" or "3/4".
func (r CodeRate) String() string {
	switch r {
	case Rate1_2:
		return "1/2"
	case Rate2_3:
		return "2/3"
	case Rate3_4:
		return "3/4"
	default:
		return "?"
	}
}

// Modulation identifies the subcarrier constellation.
type Modulation int

// Supported subcarrier modulations.
const (
	BPSK Modulation = iota
	QPSK
	QAM16
	QAM64
)

// String returns the constellation name.
func (m Modulation) String() string {
	switch m {
	case BPSK:
		return "BPSK"
	case QPSK:
		return "QPSK"
	case QAM16:
		return "16-QAM"
	case QAM64:
		return "64-QAM"
	default:
		return "?"
	}
}

// BitsPerSymbol returns the number of coded bits carried by one subcarrier.
func (m Modulation) BitsPerSymbol() int {
	switch m {
	case BPSK:
		return 1
	case QPSK:
		return 2
	case QAM16:
		return 4
	case QAM64:
		return 6
	default:
		return 0
	}
}

// Mode describes one clause-17 transmission rate.
type Mode struct {
	// RateMbps is the nominal data rate in megabits per second.
	RateMbps int
	// Modulation is the subcarrier constellation.
	Modulation Modulation
	// CodeRate is the punctured convolutional code rate.
	CodeRate CodeRate
	// RateBits is the 4-bit RATE field value of the SIGNAL symbol
	// (transmission order R1..R4, stored R4..R1 as an integer).
	RateBits byte
}

// NBPSC returns the coded bits per subcarrier.
func (m Mode) NBPSC() int { return m.Modulation.BitsPerSymbol() }

// NCBPS returns the coded bits per OFDM symbol.
func (m Mode) NCBPS() int { return m.NBPSC() * NumDataCarriers }

// NDBPS returns the data bits per OFDM symbol.
func (m Mode) NDBPS() int {
	switch m.CodeRate {
	case Rate1_2:
		return m.NCBPS() / 2
	case Rate2_3:
		return m.NCBPS() * 2 / 3
	case Rate3_4:
		return m.NCBPS() * 3 / 4
	default:
		return 0
	}
}

// String returns e.g. "24 Mbps (16-QAM, rate 1/2)".
func (m Mode) String() string {
	return fmt.Sprintf("%d Mbps (%s, rate %s)", m.RateMbps, m.Modulation, m.CodeRate)
}

// Modes lists all eight clause-17 rates in ascending order. The RATE field
// encodings follow IEEE Std 802.11a-1999 table 80.
var Modes = []Mode{
	{6, BPSK, Rate1_2, 0b1101},
	{9, BPSK, Rate3_4, 0b1111},
	{12, QPSK, Rate1_2, 0b0101},
	{18, QPSK, Rate3_4, 0b0111},
	{24, QAM16, Rate1_2, 0b1001},
	{36, QAM16, Rate3_4, 0b1011},
	{48, QAM64, Rate2_3, 0b0001},
	{54, QAM64, Rate3_4, 0b0011},
}

// ModeByRate returns the mode for the given nominal rate in Mbps.
func ModeByRate(mbps int) (Mode, error) {
	for _, m := range Modes {
		if m.RateMbps == mbps {
			return m, nil
		}
	}
	return Mode{}, fmt.Errorf("phy: no 802.11a mode with rate %d Mbps", mbps)
}

// ModeByRateBits returns the mode for a decoded 4-bit RATE field.
func ModeByRateBits(bits byte) (Mode, error) {
	for _, m := range Modes {
		if m.RateBits == bits {
			return m, nil
		}
	}
	return Mode{}, fmt.Errorf("phy: invalid RATE field %04b", bits)
}

// Standard describes one row of the paper's Table 1 (IEEE WLAN standards).
type Standard struct {
	Approval  int       // year of approval (0 for "expected")
	Name      string    // e.g. "802.11a"
	BandGHz   float64   // frequency band in GHz
	RatesMbps []float64 // supported data rates, descending
}

// StandardsTable reproduces Table 1 of the paper.
var StandardsTable = []Standard{
	{1997, "802.11", 2.4, []float64{2, 1}},
	{1999, "802.11a", 5.2, []float64{54, 48, 36, 24, 18, 12, 9, 6}},
	{1999, "802.11b", 2.4, []float64{11, 5.5, 2, 1}},
	{0, "802.11g", 2.4, []float64{54, 48, 36, 24, 18, 12, 9, 6, 5.5, 2, 1}},
}

// SpectralEfficiency returns the mode's data rate per occupied bandwidth in
// bits/s/Hz (NDBPS per 4 us symbol over the 20 MHz channel raster).
func (m Mode) SpectralEfficiency() float64 {
	return float64(m.NDBPS()) / 4e-6 / ChannelSpacing
}

// SNRFromEbN0 converts an information-bit Eb/N0 (dB) to the equivalent
// in-band SNR (dB) over the 20 MHz channel: SNR = Eb/N0 + 10 log10(R/B).
func (m Mode) SNRFromEbN0(ebn0DB float64) float64 {
	return ebn0DB + units.LinearToDB(m.SpectralEfficiency())
}

// EbN0FromSNR is the inverse of SNRFromEbN0.
func (m Mode) EbN0FromSNR(snrDB float64) float64 {
	return snrDB - units.LinearToDB(m.SpectralEfficiency())
}

// PPDU timing constants (clause 17.4.3).
const (
	// PreambleDurationSec is the 16 us PLCP preamble.
	PreambleDurationSec = 16e-6
	// SignalDurationSec is the 4 us SIGNAL symbol.
	SignalDurationSec = 4e-6
	// SymbolDurationSec is the 4 us OFDM symbol.
	SymbolDurationSec = 4e-6
)

// NumDataSymbols returns the number of DATA OFDM symbols for a PSDU of the
// given length in octets (SERVICE + PSDU + tail, padded to a whole symbol).
func (m Mode) NumDataSymbols(psduOctets int) int {
	nBits := 16 + 8*psduOctets + 6
	return (nBits + m.NDBPS() - 1) / m.NDBPS()
}

// TXTime returns the clause-17.4.3 frame duration in seconds:
// preamble + SIGNAL + 4 us per data symbol.
func (m Mode) TXTime(psduOctets int) float64 {
	return PreambleDurationSec + SignalDurationSec +
		SymbolDurationSec*float64(m.NumDataSymbols(psduOctets))
}

// Throughput returns the effective MAC-payload throughput in bits per
// second for back-to-back frames of the given PSDU size (payload bits over
// air time, preamble overhead included).
func (m Mode) Throughput(psduOctets int) float64 {
	t := m.TXTime(psduOctets)
	if t <= 0 {
		return 0
	}
	return float64(8*psduOctets) / t
}
