package phy

import (
	"math/rand"
	"testing"

	"wlansim/internal/bits"
	"wlansim/internal/phy/viterbi"
)

func TestConvolutionalEncodeKnownVector(t *testing.T) {
	// Impulse response of the 133/171 code: input 1 followed by zeros
	// produces the generator taps as outputs.
	in := []byte{1, 0, 0, 0, 0, 0, 0}
	out := ConvolutionalEncode(in)
	// g0 = 1011011, g1 = 1111001 read from current bit to oldest:
	// step k output A = coefficient of x^k in g0 (MSB-first: 1,0,1,1,0,1,1).
	wantA := []byte{1, 0, 1, 1, 0, 1, 1}
	wantB := []byte{1, 1, 1, 1, 0, 0, 1}
	for k := 0; k < 7; k++ {
		if out[2*k] != wantA[k] {
			t.Errorf("A[%d] = %d, want %d", k, out[2*k], wantA[k])
		}
		if out[2*k+1] != wantB[k] {
			t.Errorf("B[%d] = %d, want %d", k, out[2*k+1], wantB[k])
		}
	}
}

func TestConvolutionalEncodeLinearity(t *testing.T) {
	// Convolutional codes are linear: enc(a XOR b) = enc(a) XOR enc(b).
	r := rand.New(rand.NewSource(1))
	a := bits.Random(r, 64)
	b := bits.Random(r, 64)
	sum := make([]byte, 64)
	for i := range sum {
		sum[i] = a[i] ^ b[i]
	}
	ea, eb, es := ConvolutionalEncode(a), ConvolutionalEncode(b), ConvolutionalEncode(sum)
	for i := range es {
		if es[i] != ea[i]^eb[i] {
			t.Fatalf("linearity violated at %d", i)
		}
	}
}

func TestPunctureRates(t *testing.T) {
	coded := make([]byte, 24)
	for i := range coded {
		coded[i] = byte(i % 2)
	}
	p12, err := Puncture(coded, Rate1_2)
	if err != nil || len(p12) != 24 {
		t.Fatalf("rate 1/2: len %d err %v", len(p12), err)
	}
	p23, err := Puncture(coded, Rate2_3)
	if err != nil || len(p23) != 18 {
		t.Fatalf("rate 2/3: len %d err %v", len(p23), err)
	}
	p34, err := Puncture(coded, Rate3_4)
	if err != nil || len(p34) != 16 {
		t.Fatalf("rate 3/4: len %d err %v", len(p34), err)
	}
	if _, err := Puncture(coded, CodeRate(9)); err == nil {
		t.Error("accepted unknown rate")
	}
}

func TestPunctureKeepsRightPositions(t *testing.T) {
	// Mark each position with its index to verify which ones survive.
	coded := make([]byte, 12)
	for i := range coded {
		coded[i] = byte(i)
	}
	p34, _ := Puncture(coded, Rate3_4)
	// Period 6: keep 0,1,3,4 (A1 B1 B2 A3); stolen 2 (A2) and 5 (B3).
	want := []byte{0, 1, 3, 4, 6, 7, 9, 10}
	for i, w := range want {
		if p34[i] != w {
			t.Fatalf("rate 3/4 kept %v, want %v", p34, want)
		}
	}
	p23, _ := Puncture(coded, Rate2_3)
	want23 := []byte{0, 1, 2, 4, 5, 6, 8, 9, 10}
	for i, w := range want23 {
		if p23[i] != w {
			t.Fatalf("rate 2/3 kept %v, want %v", p23, want23)
		}
	}
}

func TestDepunctureRestoresPositions(t *testing.T) {
	soft := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	out, err := Depuncture(soft, Rate3_4)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 2, 0, 3, 4, 0, 5, 6, 0, 7, 8, 0}
	if len(out) != len(want) {
		t.Fatalf("length %d, want %d", len(out), len(want))
	}
	for i, w := range want {
		if out[i] != w {
			t.Fatalf("Depuncture = %v, want %v", out, want)
		}
	}
}

func TestDepunctureValidation(t *testing.T) {
	if _, err := Depuncture(make([]float64, 7), Rate3_4); err == nil {
		t.Error("accepted length not matching puncture period")
	}
}

func TestPunctureDepunctureRoundTripDecodes(t *testing.T) {
	// Full code path: encode, puncture, depuncture with erasures, Viterbi.
	r := rand.New(rand.NewSource(2))
	for _, rate := range []CodeRate{Rate1_2, Rate2_3, Rate3_4} {
		n := 144 // divisible by all puncture periods after encoding
		data := append(bits.Random(r, n), make([]byte, TailBits)...)
		coded := ConvolutionalEncode(data)
		punct, err := Puncture(coded, rate)
		if err != nil {
			t.Fatal(err)
		}
		soft := make([]float64, len(punct))
		for i, b := range punct {
			if b == 0 {
				soft[i] = 1
			} else {
				soft[i] = -1
			}
		}
		dep, err := Depuncture(soft, rate)
		if err != nil {
			t.Fatal(err)
		}
		if len(dep) != len(coded) {
			t.Fatalf("rate %v: depunctured %d, want %d", rate, len(dep), len(coded))
		}
		dec, err := viterbi.New().DecodeSoft(dep)
		if err != nil {
			t.Fatal(err)
		}
		if !bits.Equal(dec, data) {
			t.Errorf("rate %v: punctured round trip failed", rate)
		}
	}
}

func TestCodedLength(t *testing.T) {
	if CodedLength(24, Rate1_2) != 48 {
		t.Error("1/2")
	}
	if CodedLength(32, Rate2_3) != 48 {
		t.Error("2/3")
	}
	if CodedLength(36, Rate3_4) != 48 {
		t.Error("3/4")
	}
	if CodedLength(10, CodeRate(9)) != 0 {
		t.Error("unknown rate should give 0")
	}
}
