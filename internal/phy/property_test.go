package phy

import (
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"

	"wlansim/internal/bits"
)

// Property-based invariants over the PHY's core data transforms, driven by
// testing/quick.

func TestPropertyInterleaveRoundTripAllModes(t *testing.T) {
	rng := rand.New(rand.NewSource(40))
	f := func(modeIdx uint8, seed int64) bool {
		mode := Modes[int(modeIdx)%len(Modes)]
		rng.Seed(seed)
		in := bits.Random(rng, mode.NCBPS())
		inter, err := Interleave(in, mode)
		if err != nil {
			return false
		}
		out, err := Deinterleave(inter, mode)
		if err != nil {
			return false
		}
		return bits.Equal(in, out)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestPropertyInterleavePreservesMultiset(t *testing.T) {
	// Interleaving permutes: the number of ones is invariant.
	rng := rand.New(rand.NewSource(41))
	f := func(modeIdx uint8, seed int64) bool {
		mode := Modes[int(modeIdx)%len(Modes)]
		rng.Seed(seed)
		in := bits.Random(rng, mode.NCBPS())
		inter, err := Interleave(in, mode)
		if err != nil {
			return false
		}
		ones := func(b []byte) int {
			n := 0
			for _, v := range b {
				n += int(v)
			}
			return n
		}
		return ones(in) == ones(inter)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestPropertyMapDemapRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	mods := []Modulation{BPSK, QPSK, QAM16, QAM64}
	f := func(mIdx uint8, seed int64) bool {
		m := mods[int(mIdx)%len(mods)]
		rng.Seed(seed)
		in := bits.Random(rng, m.BitsPerSymbol()*16)
		syms, err := MapBits(in, m)
		if err != nil {
			return false
		}
		out, err := DemapHard(syms, m)
		if err != nil {
			return false
		}
		return bits.Equal(in, out)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestPropertyOFDMSymbolRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	f := func(seed int64, symIdx uint8) bool {
		rng.Seed(seed)
		data, err := MapBits(bits.Random(rng, 48*2), QPSK)
		if err != nil {
			return false
		}
		spec, err := AssembleSpectrum(data, int(symIdx))
		if err != nil {
			return false
		}
		td, err := ModulateSymbol(spec)
		if err != nil {
			return false
		}
		back, err := DemodulateSymbol(td)
		if err != nil {
			return false
		}
		got, err := ExtractData(back)
		if err != nil {
			return false
		}
		for i := range data {
			if cmplx.Abs(got[i]-data[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestPropertyPunctureLengths(t *testing.T) {
	// For any input length that is a multiple of 12 (after encoding), the
	// punctured lengths follow the exact rate ratios.
	rng := rand.New(rand.NewSource(44))
	f := func(blocks uint8, seed int64) bool {
		n := (int(blocks)%20 + 1) * 6 // data bits, multiple of 6
		rng.Seed(seed)
		coded := ConvolutionalEncode(bits.Random(rng, n)) // 12*blocks bits
		for _, rate := range []CodeRate{Rate1_2, Rate2_3, Rate3_4} {
			p, err := Puncture(coded, rate)
			if err != nil {
				return false
			}
			if len(p) != CodedLength(n, rate) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestPropertyConvolutionalCodeLinearity(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	f := func(seed int64, n uint8) bool {
		rng.Seed(seed)
		length := int(n)%96 + 8
		a := bits.Random(rng, length)
		b := bits.Random(rng, length)
		sum := make([]byte, length)
		for i := range sum {
			sum[i] = a[i] ^ b[i]
		}
		ea, eb, es := ConvolutionalEncode(a), ConvolutionalEncode(b), ConvolutionalEncode(sum)
		for i := range es {
			if es[i] != ea[i]^eb[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestPropertyFrameLengthFormula(t *testing.T) {
	// For any rate and PSDU length, the frame sample count follows the
	// clause-17 duration formula.
	rng := rand.New(rand.NewSource(46))
	f := func(modeIdx uint8, lenSeed uint16) bool {
		mode := Modes[int(modeIdx)%len(Modes)]
		psduLen := int(lenSeed)%1000 + 1
		tx := &Transmitter{Mode: mode, ScramblerSeed: byte(1 + rng.Intn(127))}
		frame, err := tx.Transmit(make([]byte, psduLen))
		if err != nil {
			return false
		}
		nBits := ServiceBits + psduLen*8 + TailBits
		nSym := (nBits + mode.NDBPS() - 1) / mode.NDBPS()
		want := PreambleLen + SymbolLen*(1+nSym)
		return len(frame.Samples) == want && frame.NumDataSymbols == nSym
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestPropertySignalFieldRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	f := func(modeIdx uint8, lenSeed uint16) bool {
		mode := Modes[int(modeIdx)%len(Modes)]
		length := int(lenSeed)%4095 + 1
		_ = rng
		sym, err := EncodeSignal(mode, length)
		if err != nil {
			return false
		}
		spec, err := DemodulateSymbol(sym)
		if err != nil {
			return false
		}
		data, err := ExtractData(spec)
		if err != nil {
			return false
		}
		sf, err := DecodeSignal(data)
		if err != nil {
			return false
		}
		return sf.Mode.RateMbps == mode.RateMbps && sf.Length == length
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestPropertyScramblerSeedRecovery(t *testing.T) {
	f := func(seed byte) bool {
		s := NewScrambler(seed)
		first7 := make([]byte, 7)
		for i := range first7 {
			first7[i] = s.NextBit()
		}
		rec := recoverScramblerSeed(first7)
		// The recovered seed must regenerate the same sequence (the seed
		// value itself is canonical up to the zero-seed remap).
		s2 := NewScrambler(rec)
		for _, want := range first7 {
			if s2.NextBit() != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
