package phy

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"math"
	"testing"
)

// Golden-vector regression: a deterministic frame's waveform is pinned by a
// checksum over coarsely quantized samples, so any accidental change to the
// scrambler, coder, interleaver, mapper, pilots, preamble or OFDM scaling
// trips this test. The quantization (1e-9) keeps the hash stable across
// legitimate floating-point noise while catching any real change.
func waveformDigest(x []complex128) string {
	h := sha256.New()
	var buf [16]byte
	for _, v := range x {
		binary.LittleEndian.PutUint64(buf[0:8], uint64(int64(math.Round(real(v)*1e9))))
		binary.LittleEndian.PutUint64(buf[8:16], uint64(int64(math.Round(imag(v)*1e9))))
		h.Write(buf[:])
	}
	return hex.EncodeToString(h.Sum(nil))[:16]
}

func TestGoldenFrameWaveform(t *testing.T) {
	tx := &Transmitter{Mode: Modes[4], ScramblerSeed: 0x5A} // 24 Mbps
	psdu := make([]byte, 64)
	for i := range psdu {
		psdu[i] = byte(i * 7)
	}
	frame, err := tx.Transmit(psdu)
	if err != nil {
		t.Fatal(err)
	}
	const want = "9896ebad5bfccadd"
	if got := waveformDigest(frame.Samples); got != want {
		t.Errorf("golden 24 Mbps frame digest %s, want %s — the PHY waveform changed; "+
			"if intentional, update the golden value", got, want)
	}
}

func TestGoldenPreambleWaveform(t *testing.T) {
	const want = "d90e43908606cee8"
	if got := waveformDigest(Preamble()); got != want {
		t.Errorf("golden preamble digest %s, want %s", got, want)
	}
}

func TestGoldenSignalSymbol(t *testing.T) {
	sym, err := EncodeSignal(Modes[7], 1500) // 54 Mbps, 1500 octets
	if err != nil {
		t.Fatal(err)
	}
	const want = "57330e20c5595d85"
	if got := waveformDigest(sym); got != want {
		t.Errorf("golden SIGNAL digest %s, want %s", got, want)
	}
}
